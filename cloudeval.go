// Package cloudeval is the public API of the CloudEval-YAML benchmark
// reproduction: a hand-written multi-family dataset for cloud
// configuration generation (the paper's 337 Kubernetes/Envoy/Istio
// problems plus Docker Compose and Helm extension families, tripled by
// augmentation), a six-metric scoring pipeline (text-level,
// YAML-aware and function-level via simulated Kubernetes/Envoy
// clusters), a unified parallel evaluation engine with in-process and
// distributed executors, and the paper's full evaluation study over a
// twelve-model zoo.
//
// Quick start:
//
//	bench := cloudeval.New()
//	fmt.Println(bench.Table4()) // the zero-shot leaderboard
//
// Score a single answer functionally:
//
//	p := bench.Originals[0]
//	result := cloudeval.RunUnitTest(p, myYAML)
//	fmt.Println(result.Passed)
//
// See DESIGN.md for the system inventory, the engine architecture and
// the index mapping experiment IDs to the paper's tables and figures.
package cloudeval

import (
	"cloudeval/internal/core"
	"cloudeval/internal/dataset"
	"cloudeval/internal/engine"
	"cloudeval/internal/llm"
	"cloudeval/internal/score"
	"cloudeval/internal/store"
	"cloudeval/internal/unittest"
	"cloudeval/internal/yamlmatch"
)

// Benchmark is a configured CloudEval-YAML instance; see core.Benchmark
// for the full method set (Table1..Table9, Figure5..Figure9, ZeroShot).
type Benchmark = core.Benchmark

// Engine is the parallel evaluation engine every campaign submits
// through: a work-stealing scheduler over a pluggable executor (the
// in-process pool by default, the distributed evalcluster path via
// cmd/evalnode) with answer memoization. Benchmark.Engine exposes a
// benchmark's engine; see DESIGN.md §2.
type Engine = engine.Engine

// Problem is one benchmark entry: question, optional YAML context,
// labeled reference answer and bash unit test.
type Problem = dataset.Problem

// Model is one entry of the simulated model zoo.
type Model = llm.Model

// ProblemScore holds the six metrics for one (model, problem) pair.
type ProblemScore = score.ProblemScore

// UnitTestResult is the outcome of one functional evaluation.
type UnitTestResult = unittest.Result

// Store is the persistent, content-addressed evaluation store: an
// append-only on-disk log of unit-test results keyed by
// (unit-test-script digest, answer digest), the second cache tier
// under the engine. See DESIGN.md §2.5.
type Store = store.Store

// New builds the default benchmark: the hand-written problems of every
// registered workload family, their simplified and translated
// variants, and the twelve-model zoo of Table 4.
func New() *Benchmark { return core.New() }

// OpenStore opens (or creates) a persistent evaluation store at path,
// replaying every intact record and dropping a crash-torn tail.
func OpenStore(path string) (*Store, error) { return store.Open(path) }

// NewPersistent builds a benchmark whose engine is backed by the
// persistent store at storePath: unit-test results survive the
// process, so a repeated campaign executes nothing. The caller owns
// closing the returned store after the last evaluation.
func NewPersistent(storePath string) (*Benchmark, *Store, error) {
	st, err := store.Open(storePath)
	if err != nil {
		return nil, nil, err
	}
	return core.NewWith(engine.New(engine.WithStore(st))), st, nil
}

// Dataset returns the original problems of every workload family (the
// paper's 337 plus the Compose and Helm extensions).
func Dataset() []Problem { return dataset.Generate() }

// Models returns the model zoo in the paper's ranking order.
func Models() []Model { return llm.Models }

// RunUnitTest executes a problem's unit test against a candidate YAML
// answer in a fresh simulated cluster.
func RunUnitTest(p Problem, answerYAML string) UnitTestResult {
	return unittest.Run(p, answerYAML)
}

// ScoreAnswer computes all six metrics for a candidate answer.
func ScoreAnswer(p Problem, answerYAML string) ProblemScore {
	return score.ScoreAnswer(p, answerYAML)
}

// Postprocess extracts clean YAML from a raw LLM response using the
// paper's §3.1 policies.
func Postprocess(response string) string { return llm.Postprocess(response) }

// CleanReference returns a problem's reference answer with match labels
// stripped — the text a perfect model would produce.
func CleanReference(p Problem) string { return yamlmatch.StripLabels(p.ReferenceYAML) }
