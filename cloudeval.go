// Package cloudeval is the public API of the CloudEval-YAML benchmark
// reproduction: a hand-written multi-family dataset for cloud
// configuration generation (the paper's 337 Kubernetes/Envoy/Istio
// problems plus Docker Compose and Helm extension families, tripled by
// augmentation), a six-metric scoring pipeline (text-level,
// YAML-aware and function-level via simulated Kubernetes/Envoy
// clusters), a unified parallel evaluation engine with in-process and
// distributed executors, and the paper's full evaluation study over a
// twelve-model zoo.
//
// Quick start:
//
//	bench := cloudeval.New()
//	fmt.Println(bench.Table4()) // the zero-shot leaderboard
//
// Score a single answer functionally:
//
//	p := bench.Originals[0]
//	result := cloudeval.RunUnitTest(p, myYAML)
//	fmt.Println(result.Passed)
//
// See DESIGN.md for the system inventory, the engine architecture and
// the index mapping experiment IDs to the paper's tables and figures.
package cloudeval

import (
	"cloudeval/internal/core"
	"cloudeval/internal/dataset"
	"cloudeval/internal/engine"
	"cloudeval/internal/inference"
	"cloudeval/internal/llm"
	"cloudeval/internal/score"
	"cloudeval/internal/store"
	"cloudeval/internal/unittest"
	"cloudeval/internal/yamlmatch"
)

// Benchmark is a configured CloudEval-YAML instance; see core.Benchmark
// for the full method set (Table1..Table9, Figure5..Figure9, ZeroShot).
type Benchmark = core.Benchmark

// Engine is the parallel evaluation engine every campaign submits
// through: a work-stealing scheduler over a pluggable executor (the
// in-process pool by default, the distributed evalcluster path via
// cmd/evalnode) with answer memoization. Benchmark.Engine exposes a
// benchmark's engine; see DESIGN.md §2.
type Engine = engine.Engine

// Problem is one benchmark entry: question, optional YAML context,
// labeled reference answer and bash unit test.
type Problem = dataset.Problem

// Model is one entry of the simulated model zoo.
type Model = llm.Model

// ProblemScore holds the six metrics for one (model, problem) pair.
type ProblemScore = score.ProblemScore

// UnitTestResult is the outcome of one functional evaluation.
type UnitTestResult = unittest.Result

// Store is the persistent, content-addressed evaluation store: an
// append-only on-disk log of unit-test results keyed by
// (unit-test-script digest, answer digest), the second cache tier
// under the engine. See DESIGN.md §2.5.
type Store = store.Store

// New builds the default benchmark: the hand-written problems of every
// registered workload family, their simplified and translated
// variants, and the twelve-model zoo of Table 4.
func New() *Benchmark { return core.New() }

// OpenStore opens (or creates) a persistent evaluation store at path,
// replaying every intact record and dropping a crash-torn tail.
func OpenStore(path string) (*Store, error) { return store.Open(path) }

// NewPersistent builds a benchmark whose engine and inference
// dispatcher are both backed by the persistent store at storePath:
// unit-test results and generations survive the process, so a
// repeated campaign neither executes nor generates anything. The
// caller owns closing the returned store after the last evaluation.
func NewPersistent(storePath string) (*Benchmark, *Store, error) {
	st, err := store.Open(storePath)
	if err != nil {
		return nil, nil, err
	}
	disp := inference.NewDispatcher(inference.NewSim(llm.Models), inference.WithGenStore(st))
	return core.NewVia(engine.New(engine.WithStore(st)), disp), st, nil
}

// Provider is the pluggable inference seam: one Generate call per
// (model, problem, options) request, returning text, metered token
// usage and latency. See DESIGN.md §2.8.
type Provider = inference.Provider

// Dispatcher is the batched inference front-end over a Provider:
// per-provider concurrency limits, a content-addressed generation
// cache (in-memory + store-backed), and metered usage accounting.
type Dispatcher = inference.Dispatcher

// GenRequest and GenResponse are one generation exchange.
type (
	GenRequest  = inference.Request
	GenResponse = inference.Response
)

// NewSimProvider wraps the simulated zoo as a provider, byte-identical
// to the models' direct Generate.
func NewSimProvider(models []Model) Provider { return inference.NewSim(models) }

// NewHTTPProvider speaks the OpenAI-compatible chat-completions
// protocol to the endpoint rooted at baseURL, authenticating with
// apiKey when non-empty.
func NewHTTPProvider(baseURL, apiKey string) Provider {
	return inference.NewHTTP(baseURL, inference.WithAPIKey(apiKey))
}

// NewRecordProvider wraps inner, recording every generation to the
// JSONL trace at path; OpenReplayProvider serves a recorded trace
// with zero live calls.
func NewRecordProvider(path string, inner Provider) (Provider, error) {
	return inference.NewRecord(path, inner)
}

// OpenReplayProvider loads the JSONL trace at path as a provider.
func OpenReplayProvider(path string) (Provider, error) { return inference.OpenReplay(path) }

// NewDispatcher builds the batched, cached front-end over a provider.
func NewDispatcher(p Provider) *Dispatcher { return inference.NewDispatcher(p) }

// NewWithProvider builds the default benchmark generating through the
// given dispatcher (e.g. a replayed real-API trace) on the
// process-wide engine.
func NewWithProvider(d *Dispatcher) *Benchmark { return core.NewVia(engine.Default(), d) }

// Dataset returns the original problems of every workload family (the
// paper's 337 plus the Compose and Helm extensions).
func Dataset() []Problem { return dataset.Generate() }

// Models returns the model zoo in the paper's ranking order.
func Models() []Model { return llm.Models }

// RunUnitTest executes a problem's unit test against a candidate YAML
// answer in a fresh simulated cluster.
func RunUnitTest(p Problem, answerYAML string) UnitTestResult {
	return unittest.Run(p, answerYAML)
}

// ScoreAnswer computes all six metrics for a candidate answer.
func ScoreAnswer(p Problem, answerYAML string) ProblemScore {
	return score.ScoreAnswer(p, answerYAML)
}

// Postprocess extracts clean YAML from a raw LLM response using the
// paper's §3.1 policies.
func Postprocess(response string) string { return llm.Postprocess(response) }

// CleanReference returns a problem's reference answer with match labels
// stripped — the text a perfect model would produce.
func CleanReference(p Problem) string { return yamlmatch.StripLabels(p.ReferenceYAML) }
