// k8s-service-eval walks the paper's Appendix C sample #2 end to end:
// a LoadBalancer-service problem with YAML context, three candidate
// answers of different quality, each run through post-processing, all
// six metrics, and the simulated cluster's unit test.
//
// Run: go run ./examples/k8s-service-eval
package main

import (
	"fmt"
	"strings"

	"cloudeval"
)

func main() {
	// Find the LoadBalancer service problem (it ships a deployment as
	// YAML context).
	var p cloudeval.Problem
	for _, cand := range cloudeval.Dataset() {
		if cand.Subcategory == "service" && cand.HasContext() &&
			strings.Contains(cand.Question, "load balancer") {
			p = cand
			break
		}
	}
	fmt.Printf("Problem %s:\n%s\n\nContext:\n%s\n", p.ID, p.Question, p.ContextYAML)

	reference := cloudeval.CleanReference(p)

	candidates := map[string]string{
		// A chatty but correct model response.
		"correct-with-preamble": "Here is the Service you asked for:\n" + reference,
		// Forgot the LoadBalancer type: YAML-valid, functionally wrong.
		"clusterip-instead": strings.ReplaceAll(reference, "type: LoadBalancer", "type: ClusterIP"),
		// Wrong kind entirely.
		"wrong-kind": strings.ReplaceAll(reference, "kind: Service", "kind: ConfigMap"),
	}

	fmt.Printf("%-24s %6s %6s %9s %9s %9s\n", "candidate", "bleu", "edit", "kv_wild", "unit_test", "verdict")
	for _, name := range []string{"correct-with-preamble", "clusterip-instead", "wrong-kind"} {
		raw := candidates[name]
		answer := cloudeval.Postprocess(raw)
		s := cloudeval.ScoreAnswer(p, answer)
		verdict := "FAIL"
		if s.UnitTest == 1 {
			verdict = "PASS"
		}
		fmt.Printf("%-24s %6.3f %6.3f %9.3f %9.0f %9s\n", name, s.BLEU, s.EditDist, s.KVWildcard, s.UnitTest, verdict)
	}

	fmt.Println("\nNote how the ClusterIP answer keeps high text similarity but fails the")
	fmt.Println("functional test — the gap the paper built unit tests to expose.")
}
