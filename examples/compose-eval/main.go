// compose-eval walks a Docker Compose problem — the first extension
// family of the scenario-backend registry — end to end: three candidate
// answers of different quality, each run through post-processing, all
// six metrics, and the composesim project's unit test, mirroring
// examples/k8s-service-eval for the new family.
//
// Run: go run ./examples/compose-eval
package main

import (
	"fmt"
	"strings"

	"cloudeval"
)

func main() {
	// Find a compose problem that depends on a Redis cache.
	var p cloudeval.Problem
	for _, cand := range cloudeval.Dataset() {
		if cand.Subcategory == "compose" && strings.Contains(cand.ReferenceYAML, "redis:7") {
			p = cand
			break
		}
	}
	fmt.Printf("Problem %s:\n%s\n\n", p.ID, p.Question)

	reference := cloudeval.CleanReference(p)

	candidates := map[string]string{
		// A chatty but correct model response.
		"correct-with-preamble": "Here is the Compose file you asked for:\n" + reference,
		// Swapped the cache image: YAML-valid, functionally wrong.
		"wrong-cache-image": strings.ReplaceAll(reference, "redis:7", "memcached:1.6"),
		// Answered with a Kubernetes manifest for a Compose question.
		"k8s-manifest-instead": "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\nspec:\n  containers:\n  - name: web\n    image: nginx:latest\n",
	}

	fmt.Printf("%-24s %6s %6s %9s %9s %9s\n", "candidate", "bleu", "edit", "kv_wild", "unit_test", "verdict")
	for _, name := range []string{"correct-with-preamble", "wrong-cache-image", "k8s-manifest-instead"} {
		raw := candidates[name]
		answer := cloudeval.Postprocess(raw)
		s := cloudeval.ScoreAnswer(p, answer)
		verdict := "FAIL"
		if s.UnitTest == 1 {
			verdict = "PASS"
		}
		fmt.Printf("%-24s %6.3f %6.3f %9.3f %9.0f %9s\n", name, s.BLEU, s.EditDist, s.KVWildcard, s.UnitTest, verdict)
	}

	fmt.Println("\nThe wrong-image answer keeps high text similarity but fails the")
	fmt.Println("functional test inside the simulated Compose project — the same gap")
	fmt.Println("the paper's unit tests expose for Kubernetes, now per workload family.")
}
