// multisample reproduces the §4.2 pass@k study on a slice of the
// corpus: generating k samples per problem at temperature and counting
// problems where any sample passes, plus the cost-effectiveness
// comparison behind "GPT-3.5 with 6 samples can beat GPT-4 with one".
//
// Run: go run ./examples/multisample
package main

import (
	"fmt"

	"cloudeval/internal/analysis"
	"cloudeval/internal/dataset"
	"cloudeval/internal/llm"
)

func main() {
	problems := dataset.Generate()[:120]
	const maxK = 8
	const temperature = 0.75

	fmt.Printf("pass@k over %d problems (temperature %.2f)\n\n", len(problems), temperature)
	fmt.Printf("%-20s", "k")
	for k := 1; k <= maxK; k++ {
		fmt.Printf("%5d", k)
	}
	fmt.Println()

	series := map[string][]int{}
	for _, name := range []string{"gpt-4", "gpt-3.5", "llama-2-70b-chat"} {
		m, _ := llm.ByName(name)
		s := analysis.PassAtK(m, problems, maxK, temperature)
		series[name] = s
		fmt.Printf("%-20s", name)
		for _, v := range s {
			fmt.Printf("%5d", v)
		}
		fmt.Println()
	}

	// Cost-effectiveness: GPT-4 is roughly 30x the per-token price of
	// GPT-3.5 (§4.2 footnote), so compare gpt-3.5@k against gpt-4@1.
	gpt4At1 := series["gpt-4"][0]
	fmt.Printf("\ngpt-4 pass@1 = %d\n", gpt4At1)
	for k := 1; k <= maxK; k++ {
		v := series["gpt-3.5"][k-1]
		marker := ""
		if v >= gpt4At1 {
			marker = "  <- matches gpt-4@1 at ~1/30 the per-sample price"
		}
		fmt.Printf("gpt-3.5 pass@%d = %d%s\n", k, v, marker)
		if marker != "" {
			break
		}
	}
}
