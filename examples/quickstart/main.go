// Quickstart: load the dataset, evaluate one candidate YAML answer with
// all six metrics, and print the zero-shot scores of one model on a
// problem slice.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"cloudeval"
	"cloudeval/internal/llm"
	"cloudeval/internal/score"
)

func main() {
	problems := cloudeval.Dataset()
	fmt.Printf("CloudEval-YAML: %d hand-written problems\n\n", len(problems))

	// Pick the Figure 1-style RoleBinding problem and score a candidate.
	var p cloudeval.Problem
	for _, cand := range problems {
		if cand.Subcategory == "others" {
			p = cand
			break
		}
	}
	fmt.Printf("Problem %s (%s):\n%s\n\n", p.ID, p.Source, p.Question)

	answer := cloudeval.CleanReference(p) // a perfect answer
	s := cloudeval.ScoreAnswer(p, answer)
	fmt.Println("Scores for the reference answer:")
	fmt.Printf("  bleu=%.3f edit=%.3f exact=%.0f kv_exact=%.0f kv_wildcard=%.3f unit_test=%.0f\n\n",
		s.BLEU, s.EditDist, s.ExactMatch, s.KVExact, s.KVWildcard, s.UnitTest)

	// Now run a simulated model over the first 30 problems.
	model, _ := llm.ByName("gpt-4")
	scores := score.EvaluateModel(model, problems[:30], llm.GenOptions{})
	passed := 0
	for _, sc := range scores {
		if sc.UnitTest == 1 {
			passed++
		}
	}
	agg := score.Aggregate(model, scores)
	fmt.Printf("%s on %d problems: %d passed, avg kv_wildcard %.3f, avg bleu %.3f\n",
		model.Name, len(scores), passed, agg.KVWildcard, agg.BLEU)
}
