// cluster-eval runs the distributed evaluation platform for real: an
// in-process Redis-compatible server, four workers draining the queue
// over TCP, and the evaluation engine dispatching one model's answers
// through the cluster executor — the same scheduler and job type the
// in-process campaigns use, pointed at real sockets. It then contrasts
// the measured parallelism with the Figure 5 discrete-event model.
//
// Run: go run ./examples/cluster-eval
package main

import (
	"fmt"
	"sync"
	"time"

	"cloudeval/internal/dataset"
	"cloudeval/internal/engine"
	"cloudeval/internal/evalcluster"
	"cloudeval/internal/inference"
	"cloudeval/internal/llm"
	"cloudeval/internal/miniredis"
)

func main() {
	srv := miniredis.NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	fmt.Printf("coordination store listening on %s\n", addr)

	problems := dataset.Generate()[:80]
	model, _ := llm.ByName("gpt-4")

	// The master side is just an engine with the cluster executor:
	// identical jobs, scheduler and cache as the in-process path.
	exec, err := evalcluster.NewClusterExecutor(addr, time.Minute)
	if err != nil {
		panic(err)
	}
	const workers = 4
	eng := engine.New(engine.WithExecutor(exec), engine.WithWorkers(2*workers))
	defer eng.Close()

	gen := inference.NewDispatcher(inference.NewSim(llm.Models))
	index := make(map[string]dataset.Problem, len(problems))
	jobs := make([]engine.Job, len(problems))
	for i, p := range problems {
		index[p.ID] = p
		jobs[i] = engine.Job{
			ID:        fmt.Sprintf("job-%d", i+1),
			ProblemID: p.ID,
			Answer:    gen.Answer(model, p, llm.GenOptions{}),
		}
	}

	var wg sync.WaitGroup
	counts := make([]int, workers)
	for i := 0; i < workers; i++ {
		w, err := evalcluster.NewWorker(addr, fmt.Sprintf("worker-%d", i), problems)
		if err != nil {
			panic(err)
		}
		wg.Add(1)
		go func(i int, w *evalcluster.Worker) {
			defer wg.Done()
			defer w.Close()
			n, _ := w.Run(500 * time.Millisecond)
			counts[i] = n
		}(i, w)
	}

	fmt.Printf("dispatching %d jobs for %s over TCP\n", len(jobs), model.Name)
	results := eng.Run(jobs, index, nil)
	wg.Wait()

	passed := 0
	for _, r := range results {
		if r.Passed {
			passed++
		}
	}
	stats := eng.Stats()
	fmt.Printf("results: %d/%d unit tests passed (%d remote executions, %d cache hits)\n",
		passed, len(results), stats.Executed, stats.CacheHits)
	for i, n := range counts {
		fmt.Printf("  worker-%d processed %d jobs\n", i, n)
	}

	// Compare with the Figure 5 analytic model for the same workload.
	simJobs := evalcluster.JobsFromProblems(problems)
	for _, w := range []int{1, 4} {
		r := evalcluster.Simulate(simJobs, evalcluster.DefaultSimConfig(w, true))
		fmt.Printf("Figure-5 model: %d worker(s), shared cache -> %.2f h of campaign time\n",
			w, r.Total.Hours())
	}
}
