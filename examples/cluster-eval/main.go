// cluster-eval runs the distributed evaluation platform for real: an
// in-process Redis-compatible server, a master that submits one model's
// answers, and four workers draining the queue over TCP — then contrasts
// the measured parallelism with the Figure 5 discrete-event model.
//
// Run: go run ./examples/cluster-eval
package main

import (
	"fmt"
	"sync"
	"time"

	"cloudeval/internal/dataset"
	"cloudeval/internal/evalcluster"
	"cloudeval/internal/llm"
	"cloudeval/internal/miniredis"
)

func main() {
	srv := miniredis.NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	fmt.Printf("coordination store listening on %s\n", addr)

	problems := dataset.Generate()[:80]
	model, _ := llm.ByName("gpt-4")

	master, err := evalcluster.NewMaster(addr)
	if err != nil {
		panic(err)
	}
	defer master.Close()
	for _, p := range problems {
		answer := llm.Postprocess(model.Generate(p, llm.GenOptions{}))
		if _, err := master.Submit(p.ID, answer); err != nil {
			panic(err)
		}
	}
	fmt.Printf("submitted %d jobs for %s\n", len(problems), model.Name)

	const workers = 4
	var wg sync.WaitGroup
	counts := make([]int, workers)
	for i := 0; i < workers; i++ {
		w, err := evalcluster.NewWorker(addr, fmt.Sprintf("worker-%d", i), problems)
		if err != nil {
			panic(err)
		}
		wg.Add(1)
		go func(i int, w *evalcluster.Worker) {
			defer wg.Done()
			defer w.Close()
			n, _ := w.Run(500 * time.Millisecond)
			counts[i] = n
		}(i, w)
	}

	results, err := master.Collect(len(problems), time.Minute)
	if err != nil {
		panic(err)
	}
	wg.Wait()
	passed := 0
	for _, r := range results {
		if r.Passed {
			passed++
		}
	}
	fmt.Printf("results: %d/%d unit tests passed\n", passed, len(results))
	for i, n := range counts {
		fmt.Printf("  worker-%d processed %d jobs\n", i, n)
	}

	// Compare with the Figure 5 analytic model for the same workload.
	jobs := evalcluster.JobsFromProblems(problems)
	for _, w := range []int{1, 4} {
		r := evalcluster.Simulate(jobs, evalcluster.DefaultSimConfig(w, true))
		fmt.Printf("Figure-5 model: %d worker(s), shared cache -> %.2f h of campaign time\n",
			w, r.Total.Hours())
	}
}
