// Example persistent-eval demonstrates the persistent evaluation store
// and resumable campaigns: the first campaign executes unit tests and
// fills the store; a second benchmark in the same binary — built like
// a fresh process, with a new engine and a reopened store — replays
// the identical campaign without executing a single unit test, and a
// checkpointed campaign run resumes instead of recomputing.
//
//	go run ./examples/persistent-eval
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"cloudeval/internal/core"
	"cloudeval/internal/dataset"
	"cloudeval/internal/engine"
	"cloudeval/internal/llm"
	"cloudeval/internal/store"
)

func main() {
	workDir, err := os.MkdirTemp("", "persistent-eval-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workDir)
	storePath := filepath.Join(workDir, "eval.store")
	campaignDir := filepath.Join(workDir, "campaign")

	// A small corpus keeps the walkthrough quick; the mechanics are
	// identical at full scale.
	originals := dataset.Generate()[:40]
	models := llm.Models[:4]

	// --- Run 1: cold store. Every distinct evaluation executes. ---
	st, err := store.Open(storePath)
	if err != nil {
		log.Fatal(err)
	}
	bench := core.NewCustomWith(engine.New(engine.WithStore(st)), originals, models)
	fmt.Println("== cold run: Table 4 ==")
	fmt.Println(bench.Table4())
	stats := bench.Engine().Stats()
	fmt.Printf("cold:  %d unit tests executed, %d memory hits, %d store hits\n",
		stats.Executed, stats.CacheHits, stats.StoreHits)

	// Checkpoint a campaign too, then "crash" before table4 finishes by
	// only running part of it.
	if _, err := bench.RunCampaign(campaignDir, []string{"table2"}, io.Discard); err != nil {
		log.Fatal(err)
	}
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}

	// --- Run 2: a fresh process. New engine, reopened store. ---
	st2, err := store.Open(storePath)
	if err != nil {
		log.Fatal(err)
	}
	defer st2.Close()
	fmt.Printf("\nreopened store holds %d records\n", st2.Len())
	bench2 := core.NewCustomWith(engine.New(engine.WithStore(st2)), originals, models)
	fmt.Println("== warm run: identical Table 4, zero executions ==")
	fmt.Println(bench2.Table4())
	stats = bench2.Engine().Stats()
	fmt.Printf("warm:  %d unit tests executed, %d store hits\n", stats.Executed, stats.StoreHits)

	// The campaign resumes from its manifest: table2 replays from its
	// checkpoint file, only table4 is new — and its unit tests all come
	// from the store.
	report, err := bench2.RunCampaign(campaignDir, []string{"table2", "table4"}, io.Discard)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign resume: ran %v, resumed %v from checkpoints\n", report.Ran, report.Skipped)
}
