// predict-unittest reproduces §4.4 on a corpus slice: train the
// gradient-boosted classifier to predict unit-test outcomes from the
// five cheap metrics, evaluate leave-one-model-out, and print SHAP
// feature importance.
//
// Run: go run ./examples/predict-unittest
package main

import (
	"fmt"

	"cloudeval/internal/boost"
	"cloudeval/internal/dataset"
	"cloudeval/internal/llm"
	"cloudeval/internal/score"
)

func main() {
	problems := dataset.Generate()
	fmt.Printf("scoring %d problems under %d models...\n\n", len(problems), len(llm.Models))

	raw := map[string][]score.ProblemScore{}
	for _, m := range llm.Models {
		raw[m.Name] = score.EvaluateModel(m, problems, llm.GenOptions{})
	}

	results, err := boost.LeaveOneModelOut(raw, boost.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Println("(a) leave-one-model-out unit-test prediction")
	fmt.Println(boost.FormatFigure9A(results))

	imp, err := boost.GlobalImportance(raw, boost.DefaultConfig(), 400)
	if err != nil {
		panic(err)
	}
	fmt.Println("(b) SHAP feature importance")
	fmt.Println(boost.FormatFigure9B(imp))
	fmt.Println("kv_wildcard should dominate, as in the paper's Figure 9(b): the")
	fmt.Println("label-aware structural match is the best cheap proxy for passing.")
}
