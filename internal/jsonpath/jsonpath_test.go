package jsonpath

import (
	"testing"

	"cloudeval/internal/yamlx"
)

const podList = `items:
- metadata:
    name: pod-a
    labels:
      app: web
  status:
    hostIP: 10.0.0.1
    phase: Running
  spec:
    containers:
    - name: main
      env:
      - name: REGISTRY_HOST
        value: reg.local
      - name: REGISTRY_PORT
        value: "5000"
      resources:
        limits:
          cpu: 100m
          memory: 50Mi
- metadata:
    name: pod-b
  status:
    hostIP: 10.0.0.2
    phase: Pending
`

func parse(t *testing.T, src string) *yamlx.Node {
	t.Helper()
	n, err := yamlx.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestEvalSimplePaths(t *testing.T) {
	root := parse(t, podList)
	cases := []struct{ tmpl, want string }{
		{"{.items[0].metadata.name}", "pod-a"},
		{"{.items[0].status.hostIP}", "10.0.0.1"},
		{"{.items[1].status.phase}", "Pending"},
		{"{.items[0].spec.containers[0].resources.limits.cpu}", "100m"},
		{"{.items[0].spec.containers[0].resources.limits.memory}", "50Mi"},
		{"{.items[0].spec.containers[0].env[*].name}", "REGISTRY_HOST REGISTRY_PORT"},
		{"{.items..metadata.name}", "pod-a pod-b"},
		{"{.items[*].status.hostIP}", "10.0.0.1 10.0.0.2"},
		{"{.items[0].metadata.labels.app}", "web"},
		{"{.items[0].metadata.labels['app']}", "web"},
		{"{.missing.path}", ""},
		{"{.items[99].metadata.name}", ""},
	}
	for _, c := range cases {
		got, err := Eval(root, c.tmpl)
		if err != nil {
			t.Errorf("Eval(%q) error: %v", c.tmpl, err)
			continue
		}
		if got != c.want {
			t.Errorf("Eval(%q) = %q, want %q", c.tmpl, got, c.want)
		}
	}
}

func TestEvalMixedTemplate(t *testing.T) {
	root := parse(t, podList)
	got, err := Eval(root, "host={.items[0].status.hostIP} phase={.items[0].status.phase}")
	if err != nil {
		t.Fatal(err)
	}
	if got != "host=10.0.0.1 phase=Running" {
		t.Errorf("got %q", got)
	}
}

func TestEvalQuotedStringStaysString(t *testing.T) {
	root := parse(t, podList)
	got, _ := Eval(root, "{.items[0].spec.containers[0].env[1].value}")
	if got != "5000" {
		t.Errorf("quoted value rendered as %q", got)
	}
}

func TestEvalErrors(t *testing.T) {
	root := parse(t, podList)
	if _, err := Eval(root, "{.items[0"); err == nil {
		t.Error("unterminated brace should error")
	}
	if _, err := Eval(root, "{.items[bad]}"); err == nil {
		t.Error("bad index should error")
	}
	if _, err := Eval(root, "{range .items[*]}x{end}"); err == nil {
		t.Error("range templates should report unsupported")
	}
}

func TestEvalBareNameAndDollar(t *testing.T) {
	root := parse(t, "metadata:\n  name: foo\n")
	for _, tmpl := range []string{"{.metadata.name}", "{$.metadata.name}", "{metadata.name}"} {
		got, err := Eval(root, tmpl)
		if err != nil || got != "foo" {
			t.Errorf("Eval(%q) = %q, %v", tmpl, got, err)
		}
	}
}

func TestEvalNonScalarRendersFlow(t *testing.T) {
	root := parse(t, "spec:\n  sel:\n    app: web\n")
	got, err := Eval(root, "{.spec.sel}")
	if err != nil {
		t.Fatal(err)
	}
	if got != "{app: web}" {
		t.Errorf("got %q", got)
	}
}

func TestEvalWildcardOnMap(t *testing.T) {
	root := parse(t, "labels:\n  a: x\n  b: y\n")
	got, _ := Eval(root, "{.labels[*]}")
	if got != "x y" {
		t.Errorf("got %q", got)
	}
}
