// Package jsonpath evaluates the subset of kubectl's JSONPath templates
// that CloudEval-YAML unit tests use with "kubectl get -o jsonpath=...":
//
//	{.status.hostIP}
//	{.items[0].spec.containers[0].env[*].name}
//	{.items..metadata.name}
//	{.spec.containers[0].resources.limits.cpu}
//
// A template mixes literal text with {expression} segments. Expressions
// are chains of steps over the object tree: field access (.name or
// ['name']), index ([0]), wildcard ([*]), and recursive descent
// (..name). Multiple results within one expression join with single
// spaces, matching kubectl.
package jsonpath

import (
	"fmt"
	"strconv"
	"strings"

	"cloudeval/internal/memo"
	"cloudeval/internal/yamlx"
)

// Eval renders a JSONPath template against a YAML tree.
func Eval(root *yamlx.Node, template string) (string, error) {
	var out strings.Builder
	i := 0
	for i < len(template) {
		c := template[i]
		if c != '{' {
			out.WriteByte(c)
			i++
			continue
		}
		end := strings.IndexByte(template[i:], '}')
		if end < 0 {
			return "", fmt.Errorf("jsonpath: unterminated '{' in %q", template)
		}
		expr := template[i+1 : i+end]
		i += end + 1
		res, err := EvalExpr(root, expr)
		if err != nil {
			return "", err
		}
		parts := make([]string, len(res))
		for j, n := range res {
			parts[j] = render(n)
		}
		out.WriteString(strings.Join(parts, " "))
	}
	return out.String(), nil
}

func render(n *yamlx.Node) string {
	if n == nil {
		return ""
	}
	if n.IsScalar() {
		return n.ScalarString()
	}
	return string(yamlx.MarshalFlow(n))
}

// EvalExpr evaluates one bare expression like ".items[0].metadata.name"
// and returns every matching node.
func EvalExpr(root *yamlx.Node, expr string) ([]*yamlx.Node, error) {
	expr = strings.TrimSpace(expr)
	if strings.HasPrefix(expr, "range") || strings.HasPrefix(expr, "end") {
		return nil, fmt.Errorf("jsonpath: range templates are not supported: %q", expr)
	}
	expr = strings.TrimPrefix(expr, "$")
	steps, err := parseStepsCached(expr)
	if err != nil {
		return nil, err
	}
	current := []*yamlx.Node{root}
	for _, st := range steps {
		var next []*yamlx.Node
		for _, n := range current {
			next = append(next, st.apply(n)...)
		}
		current = next
	}
	return current, nil
}

type stepKind int

const (
	fieldStep stepKind = iota
	indexStep
	wildcardStep
	recursiveStep
)

type step struct {
	kind  stepKind
	name  string
	index int
}

func (s step) apply(n *yamlx.Node) []*yamlx.Node {
	if n == nil {
		return nil
	}
	switch s.kind {
	case fieldStep:
		if v := n.Get(s.name); v != nil {
			return []*yamlx.Node{v}
		}
		return nil
	case indexStep:
		if n.Kind == yamlx.SeqKind && s.index >= 0 && s.index < len(n.Items) {
			return []*yamlx.Node{n.Items[s.index]}
		}
		return nil
	case wildcardStep:
		switch n.Kind {
		case yamlx.SeqKind:
			return n.Items
		case yamlx.MapKind:
			var out []*yamlx.Node
			for _, e := range n.Entries {
				out = append(out, e.Value)
			}
			return out
		}
		return nil
	case recursiveStep:
		var out []*yamlx.Node
		collectRecursive(n, s.name, &out)
		return out
	}
	return nil
}

func collectRecursive(n *yamlx.Node, name string, out *[]*yamlx.Node) {
	if n == nil {
		return
	}
	switch n.Kind {
	case yamlx.MapKind:
		for _, e := range n.Entries {
			if e.Key == name {
				*out = append(*out, e.Value)
			}
			collectRecursive(e.Value, name, out)
		}
	case yamlx.SeqKind:
		for _, it := range n.Items {
			collectRecursive(it, name, out)
		}
	}
}

// parseStepsCached compiles an expression once per process: the same
// handful of templates run on every unit-test execution, and a step
// slice is immutable after parse, so compiled expressions are shared.
// Expressions come from script text, so the cache is capped (see the
// memo package).
func parseStepsCached(expr string) ([]step, error) {
	o := stepCache.Do(expr, func() *stepsOutcome {
		steps, err := parseSteps(expr)
		return &stepsOutcome{steps: steps, err: err}
	})
	return o.steps, o.err
}

type stepsOutcome struct {
	steps []step
	err   error
}

var stepCache = memo.New[string, *stepsOutcome](1 << 14)

func parseSteps(expr string) ([]step, error) {
	var steps []step
	i := 0
	for i < len(expr) {
		switch {
		case strings.HasPrefix(expr[i:], ".."):
			i += 2
			name, n := readName(expr[i:])
			if name == "" {
				return nil, fmt.Errorf("jsonpath: '..' must be followed by a field name in %q", expr)
			}
			i += n
			steps = append(steps, step{kind: recursiveStep, name: name})
		case expr[i] == '.':
			i++
			if i < len(expr) && expr[i] == '[' {
				continue // ".[0]" form
			}
			name, n := readName(expr[i:])
			if name == "" {
				if i >= len(expr) {
					return steps, nil // trailing "." tolerated
				}
				return nil, fmt.Errorf("jsonpath: empty field name at %q", expr[i:])
			}
			i += n
			steps = append(steps, step{kind: fieldStep, name: name})
		case expr[i] == '[':
			end := strings.IndexByte(expr[i:], ']')
			if end < 0 {
				return nil, fmt.Errorf("jsonpath: unterminated '[' in %q", expr)
			}
			inner := strings.TrimSpace(expr[i+1 : i+end])
			i += end + 1
			switch {
			case inner == "*":
				steps = append(steps, step{kind: wildcardStep})
			case len(inner) >= 2 && (inner[0] == '\'' || inner[0] == '"'):
				steps = append(steps, step{kind: fieldStep, name: unescapeField(inner[1 : len(inner)-1])})
			default:
				idx, err := strconv.Atoi(inner)
				if err != nil {
					return nil, fmt.Errorf("jsonpath: bad index %q", inner)
				}
				steps = append(steps, step{kind: indexStep, index: idx})
			}
		case expr[i] == ' ':
			i++
		default:
			// Leading bare name (no dot), e.g. "metadata.name".
			name, n := readName(expr[i:])
			if name == "" {
				return nil, fmt.Errorf("jsonpath: unexpected character %q in %q", expr[i], expr)
			}
			i += n
			steps = append(steps, step{kind: fieldStep, name: name})
		}
	}
	return steps, nil
}

// unescapeField strips kubectl-style backslash escapes in quoted field
// names, so ['log\.level'] addresses the literal key "log.level".
func unescapeField(s string) string {
	if !strings.Contains(s, "\\") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func readName(s string) (string, int) {
	i := 0
	for i < len(s) {
		c := s[i]
		if c == '.' || c == '[' || c == ']' || c == ' ' {
			break
		}
		i++
	}
	return s[:i], i
}
