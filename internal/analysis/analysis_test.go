package analysis

import (
	"strings"
	"testing"

	"cloudeval/internal/dataset"
	"cloudeval/internal/llm"
	"cloudeval/internal/score"
)

// problemIn selects the first problem of a subcategory; families are
// identified by subcategory here so the tests stay free of category
// literals (those live in internal/scenario and internal/dataset only).
func problemIn(t *testing.T, sub string) dataset.Problem {
	t.Helper()
	for _, p := range dataset.Generate() {
		if p.Subcategory == sub {
			return p
		}
	}
	t.Fatalf("no %s problem", sub)
	return dataset.Problem{}
}

func k8sProblem(t *testing.T) dataset.Problem {
	t.Helper()
	return problemIn(t, "pod")
}

func TestCategorize(t *testing.T) {
	p := k8sProblem(t)
	cases := []struct {
		name   string
		answer string
		passed bool
		want   int
	}{
		{"empty", "", false, 1},
		{"two-lines", "a: 1\nb: 2", false, 1},
		{"prose-no-kind", "To do this you should\nfirst create the resource\nand then verify it\nwith kubectl commands.", false, 2},
		{"kind-but-broken", "apiVersion: v1\nkind: Pod\nmetadata:\n  spec: [unterminated\n", false, 3},
		{"wrong-kind", "apiVersion: v1\nkind: ConfigMap\nmetadata:\n  name: x\ndata:\n  k: v\n", false, 4},
		{"right-kind-fails", rightKindYAML(p), false, 5},
		{"passes", rightKindYAML(p), true, 6},
	}
	for _, c := range cases {
		if got := Categorize(c.answer, p, c.passed); got != c.want {
			t.Errorf("%s: category = %d, want %d", c.name, got, c.want)
		}
	}
}

func rightKindYAML(p dataset.Problem) string {
	// Minimal valid YAML with the same kind as the reference.
	kind := ""
	for _, ln := range strings.Split(p.ReferenceYAML, "\n") {
		if strings.HasPrefix(ln, "kind:") {
			kind = strings.TrimSpace(strings.TrimPrefix(ln, "kind:"))
			break
		}
	}
	return "apiVersion: v1\nkind: " + kind + "\nmetadata:\n  name: wrong-answer\n"
}

func TestCategorizeEnvoy(t *testing.T) {
	envoyP := problemIn(t, "envoy")
	if got := Categorize("line one here\nline two there\nline three everywhere\nline four\n", envoyP, false); got != 2 {
		t.Errorf("envoy prose without static_resources = %d, want 2", got)
	}
	if got := Categorize("static_resources:\n  listeners: []\n  clusters: []\n", envoyP, false); got != 5 {
		t.Errorf("envoy config with marker = %d, want 5", got)
	}
}

// TestCategorizeCompose pins the categorizer's registry dispatch for an
// extension family: Compose answers are identified by the services
// marker, and kindless families never produce category 4.
func TestCategorizeCompose(t *testing.T) {
	composeP := problemIn(t, "compose")
	if got := Categorize("line one here\nline two there\nline three everywhere\nline four\n", composeP, false); got != 2 {
		t.Errorf("compose prose without services = %d, want 2", got)
	}
	if got := Categorize("services:\n  web:\n    image: [broken\n", composeP, false); got != 3 {
		t.Errorf("broken compose file = %d, want 3", got)
	}
	if got := Categorize("services:\n  web:\n    image: nginx:latest\n", composeP, false); got != 5 {
		t.Errorf("valid compose file failing its test = %d, want 5", got)
	}
}

func TestFailureCountsShape(t *testing.T) {
	problems := dataset.Generate()
	byID := ProblemIndex(problems)
	strong, _ := llm.ByName("gpt-4")
	weak, _ := llm.ByName("llama-2-7b-chat")
	strongScores := score.EvaluateModel(strong, problems, llm.GenOptions{})
	weakScores := score.EvaluateModel(weak, problems, llm.GenOptions{})
	sc := FailureCounts(strongScores, byID)
	wc := FailureCounts(weakScores, byID)
	sum := func(c [6]int) int { return c[0] + c[1] + c[2] + c[3] + c[4] + c[5] }
	if sum(sc) != len(problems) || sum(wc) != len(problems) {
		t.Fatalf("counts don't cover the corpus: %v %v", sc, wc)
	}
	// GPT-4 passes far more (category 6).
	if sc[5] <= wc[5]*4 {
		t.Errorf("gpt-4 cat6 = %d should be >> llama-7b cat6 = %d", sc[5], wc[5])
	}
	// The weak model is dominated by category 5 ("gets the idea, fails
	// the test") — the paper's observation 2 for Figure 7.
	if wc[4] < len(problems)/3 {
		t.Errorf("llama-7b cat5 = %d, expected the dominant bucket", wc[4])
	}
	out := FormatFigure7(map[string][6]int{"gpt-4": sc}, []string{"gpt-4"})
	if !strings.Contains(out, "gpt-4") {
		t.Error("Figure 7 formatting broken")
	}
}

func TestSliceScoresEnvoyHardest(t *testing.T) {
	problems := dataset.Generate()
	byID := ProblemIndex(problems)
	m, _ := llm.ByName("gpt-4")
	scores := score.EvaluateModel(m, problems, llm.GenOptions{})
	slices := Figure6Slices()["application_category"]
	vals := map[string]float64{}
	for _, sl := range slices {
		vals[sl.Name] = SliceScore(scores, byID, sl)
	}
	if vals["envoy"] >= vals["kubernetes"] {
		t.Errorf("envoy (%.3f) should be harder than kubernetes (%.3f)", vals["envoy"], vals["kubernetes"])
	}
}

func TestSliceScoresLengthGradient(t *testing.T) {
	problems := dataset.Generate()
	byID := ProblemIndex(problems)
	m, _ := llm.ByName("gpt-3.5")
	scores := score.EvaluateModel(m, problems, llm.GenOptions{})
	slices := Figure6Slices()["ref_answer_lines"]
	var short, long float64
	for _, sl := range slices {
		switch sl.Name {
		case "[0,15)":
			short = SliceScore(scores, byID, sl)
		case ">=30":
			long = SliceScore(scores, byID, sl)
		}
	}
	if long >= short {
		t.Errorf("long answers (%.3f) should score below short answers (%.3f)", long, short)
	}
}

func TestPassAtKMonotone(t *testing.T) {
	problems := dataset.Generate()[:60]
	m, _ := llm.ByName("gpt-3.5")
	series := PassAtK(m, problems, 6, 0.75)
	if len(series) != 6 {
		t.Fatalf("series length = %d", len(series))
	}
	for k := 1; k < len(series); k++ {
		if series[k] < series[k-1] {
			t.Fatalf("pass@k not monotone: %v", series)
		}
	}
	if series[5] <= series[0] {
		t.Errorf("multi-sample gave no improvement: %v", series)
	}
}

func TestVariantPassCountsEnglishOnly(t *testing.T) {
	m, _ := llm.ByName("palm-2-bison")
	problems := dataset.Generate()[:30]
	// Build a tiny augmented corpus.
	var all []dataset.Problem
	for _, p := range problems {
		s := p
		s.ID, s.Variant = p.ID+"-s", dataset.Simplified
		tr := p
		tr.ID, tr.Variant = p.ID+"-t", dataset.Translated
		all = append(all, p, s, tr)
	}
	counts := VariantPassCounts(m, all)
	if counts[dataset.Translated] != -1 {
		t.Errorf("PaLM translated should be N/A, got %d", counts[dataset.Translated])
	}
	out := FormatTable5(map[string]map[dataset.Variant]int{"palm-2-bison": counts}, []string{"palm-2-bison"})
	if !strings.Contains(out, "N/A") {
		t.Errorf("Table 5 should print N/A:\n%s", out)
	}
}

func TestFewShotCounts(t *testing.T) {
	m, _ := llm.ByName("gpt-3.5")
	counts := FewShotPassCounts(m, dataset.Generate()[:60], 2)
	if len(counts) != 3 {
		t.Fatalf("counts = %v", counts)
	}
	out := FormatTable6(map[string][]int{"gpt-3.5": counts}, []string{"gpt-3.5"})
	if !strings.Contains(out, "0-shot") {
		t.Errorf("Table 6 formatting:\n%s", out)
	}
}
