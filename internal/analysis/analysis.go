// Package analysis implements the evaluation studies of §4: failure
// mode categorization (Figure 7), performance breakdowns by category,
// code context, answer length and question tokens (Figure 6, Table 9),
// multi-sample pass@k (Figure 8), augmented-dataset comparisons
// (Table 5) and few-shot prompting (Table 6).
package analysis

import (
	"fmt"
	"strings"

	"cloudeval/internal/dataset"
	"cloudeval/internal/engine"
	"cloudeval/internal/inference"
	"cloudeval/internal/llm"
	"cloudeval/internal/scenario"
	"cloudeval/internal/score"
	"cloudeval/internal/yamlx"
)

// Categorize assigns an answer to one of the six failure modes of §4.1:
//
//	1 empty or fewer than 3 lines
//	2 longer but missing the kind field (static_resources for Envoy)
//	3 contains kind but is not complete, parseable YAML
//	4 valid YAML with an incorrect kind
//	5 valid YAML, correct kind, unit test fails
//	6 passes the unit test
func Categorize(answer string, p dataset.Problem, passed bool) int {
	if passed {
		return 6
	}
	var lines []string
	for _, ln := range strings.Split(answer, "\n") {
		if strings.TrimSpace(ln) != "" {
			lines = append(lines, ln)
		}
	}
	if len(lines) < 3 {
		return 1
	}
	backend := scenario.For(p.Category)
	if !strings.Contains(answer, backend.Marker+":") {
		return 2
	}
	docs, err := yamlx.ParseAllCached([]byte(answer))
	if err != nil {
		return 3
	}
	gotKind := firstKind(docs, backend)
	wantDocs, err := yamlx.ParseAllCached([]byte(p.ReferenceYAML))
	if err != nil {
		return 5
	}
	wantKind := firstKind(wantDocs, backend)
	if gotKind == "" || !strings.EqualFold(gotKind, wantKind) {
		return 4
	}
	return 5
}

// firstKind extracts a document set's identity under a family: the
// first kind value for manifest families, or the family marker itself
// for kindless families (an Envoy bootstrap's identity is that it is a
// static_resources document).
func firstKind(docs []*yamlx.Node, backend *scenario.Backend) string {
	for _, d := range docs {
		if d == nil || d.Kind != yamlx.MapKind {
			continue
		}
		if !backend.HasKind {
			if d.Has(backend.Marker) {
				return backend.Marker
			}
			continue
		}
		if k := d.Get("kind"); k != nil {
			return k.ScalarString()
		}
	}
	return ""
}

// FailureCounts tallies a model's answers by category (index 0 = cat 1).
func FailureCounts(scores []score.ProblemScore, byID map[string]dataset.Problem) [6]int {
	var out [6]int
	for _, s := range scores {
		p := byID[s.ProblemID]
		c := Categorize(s.Answer, p, s.UnitTest == 1)
		out[c-1]++
	}
	return out
}

// ProblemIndex builds an ID lookup table.
func ProblemIndex(ps []dataset.Problem) map[string]dataset.Problem {
	out := make(map[string]dataset.Problem, len(ps))
	for _, p := range ps {
		out[p.ID] = p
	}
	return out
}

// FormatFigure7 renders failure-mode counts for selected models.
func FormatFigure7(counts map[string][6]int, order []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %6s %6s %6s %6s %6s %6s\n", "Model", "#1", "#2", "#3", "#4", "#5", "#6")
	for _, name := range order {
		c := counts[name]
		fmt.Fprintf(&b, "%-22s %6d %6d %6d %6d %6d %6d\n", name, c[0], c[1], c[2], c[3], c[4], c[5])
	}
	return b.String()
}

// Slice is a named subset predicate for breakdown analyses.
type Slice struct {
	Name  string
	Match func(p dataset.Problem) bool
}

// FamilySlices derives the per-family breakdown from the scenario
// registry, in registration order (paper families first).
func FamilySlices() []Slice {
	var out []Slice
	for _, b := range scenario.All() {
		cat := b.Category
		out = append(out, Slice{
			Name:  string(cat),
			Match: func(p dataset.Problem) bool { return p.Category == cat },
		})
	}
	return out
}

// Figure6Slices are the paper's four analysis perspectives; the
// application-category perspective grows a slice per registered
// workload family.
func Figure6Slices() map[string][]Slice {
	return map[string][]Slice{
		"application_category": FamilySlices(),
		"code_context": {
			{Name: "w/ code", Match: func(p dataset.Problem) bool { return p.HasContext() }},
			{Name: "w/o code", Match: func(p dataset.Problem) bool { return !p.HasContext() }},
		},
		"ref_answer_lines": {
			{Name: "[0,15)", Match: func(p dataset.Problem) bool { return p.SolutionLines() < 15 }},
			{Name: "[15,30)", Match: func(p dataset.Problem) bool { l := p.SolutionLines(); return l >= 15 && l < 30 }},
			{Name: ">=30", Match: func(p dataset.Problem) bool { return p.SolutionLines() >= 30 }},
		},
		"question_tokens": {
			{Name: "[0,50)", Match: func(p dataset.Problem) bool { return p.QuestionTokens() < 50 }},
			{Name: "[50,100)", Match: func(p dataset.Problem) bool { t := p.QuestionTokens(); return t >= 50 && t < 100 }},
			{Name: ">=100", Match: func(p dataset.Problem) bool { return p.QuestionTokens() >= 100 }},
		},
	}
}

// SliceScore averages a model's unit-test score over a slice.
func SliceScore(scores []score.ProblemScore, byID map[string]dataset.Problem, sl Slice) float64 {
	sum, n := 0.0, 0
	for _, s := range scores {
		if sl.Match(byID[s.ProblemID]) {
			sum += s.UnitTest
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Breakdown is Figure 6 / Table 9: per model, per perspective, per
// slice, the average unit-test score.
func Breakdown(raw map[string][]score.ProblemScore, byID map[string]dataset.Problem) map[string]map[string]map[string]float64 {
	out := map[string]map[string]map[string]float64{}
	for model, scores := range raw {
		out[model] = map[string]map[string]float64{}
		for perspective, slices := range Figure6Slices() {
			out[model][perspective] = map[string]float64{}
			for _, sl := range slices {
				out[model][perspective][sl.Name] = SliceScore(scores, byID, sl)
			}
		}
	}
	return out
}

// FormatTable9 renders the per-factor breakdown like the appendix
// table; the application-category columns come from the scenario
// registry, one per workload family.
func FormatTable9(breakdown map[string]map[string]map[string]float64, modelOrder []string) string {
	var b strings.Builder
	var cols []struct{ perspective, slice string }
	for _, sl := range FamilySlices() {
		cols = append(cols, struct{ perspective, slice string }{"application_category", sl.Name})
	}
	cols = append(cols, []struct{ perspective, slice string }{
		{"code_context", "w/ code"},
		{"code_context", "w/o code"},
		{"ref_answer_lines", "[0,15)"},
		{"ref_answer_lines", "[15,30)"},
		{"ref_answer_lines", ">=30"},
		{"question_tokens", "[0,50)"},
		{"question_tokens", "[50,100)"},
		{"question_tokens", ">=100"},
	}...)
	fmt.Fprintf(&b, "%-24s", "Model")
	for _, c := range cols {
		fmt.Fprintf(&b, "%10s", c.slice)
	}
	b.WriteString("\n")
	for _, m := range modelOrder {
		fmt.Fprintf(&b, "%-24s", m)
		for _, c := range cols {
			fmt.Fprintf(&b, "%10.3f", breakdown[m][c.perspective][c.slice])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// PassAtK runs multi-sample generation (§4.2) through the default
// engine: for each problem, up to maxK samples at the given
// temperature; the problem counts as passed at k when any of the first
// k samples passes its unit test. Returns pass counts indexed by k-1.
func PassAtK(m llm.Model, problems []dataset.Problem, maxK int, temperature float64) []int {
	return PassAtKWith(engine.Default(), m, problems, maxK, temperature)
}

// PassAtKWith is PassAtKVia on the process-wide default dispatcher.
func PassAtKWith(eng *engine.Engine, m llm.Model, problems []dataset.Problem, maxK int, temperature float64) []int {
	return PassAtKVia(eng, inference.Default(), m, problems, maxK, temperature)
}

// PassAtKVia schedules the multi-sample study round by round: round k
// streams (generate sample k, execute its unit test) through the
// two-stage pipeline over exactly the problems still unresolved after
// round k-1. The early exit after the first passing sample — the
// paper's lazy sampling — is therefore preserved to the generation:
// sample k is drawn for precisely the problems whose first k samples
// all failed, the same set the serial per-problem loop draws it for,
// so both the counts and the provider bill match the serial path
// exactly.
func PassAtKVia(eng *engine.Engine, gen *inference.Dispatcher, m llm.Model, problems []dataset.Problem, maxK int, temperature float64) []int {
	firstPass := make([]int, len(problems)) // index of first passing sample, or -1
	pending := make([]int, len(problems))   // problem indices still unresolved
	for i := range problems {
		firstPass[i] = -1
		pending[i] = i
	}
	for k := 0; k < maxK && len(pending) > 0; k++ {
		opts := llm.GenOptions{Sample: k, Temperature: temperature}
		passed := make([]bool, len(pending))
		engine.Pipeline(eng, len(pending), gen.Concurrency(), 0,
			func(j int) string {
				return gen.Answer(m, problems[pending[j]], opts)
			},
			func(j int, ans string) {
				passed[j] = eng.UnitTest(problems[pending[j]], ans).Passed
			})
		still := pending[:0]
		for j, idx := range pending {
			if passed[j] {
				firstPass[idx] = k
			} else {
				still = append(still, idx)
			}
		}
		pending = still
	}
	out := make([]int, maxK)
	for k := 1; k <= maxK; k++ {
		n := 0
		for _, idx := range firstPass {
			if idx >= 0 && idx < k {
				n++
			}
		}
		out[k-1] = n
	}
	return out
}

// FormatFigure8 renders pass@k series for several models.
func FormatFigure8(series map[string][]int, order []string) string {
	var b strings.Builder
	maxK := 0
	for _, s := range series {
		if len(s) > maxK {
			maxK = len(s)
		}
	}
	fmt.Fprintf(&b, "%-20s", "k")
	for k := 1; k <= maxK; k++ {
		fmt.Fprintf(&b, "%6d", k)
	}
	b.WriteString("\n")
	for _, name := range order {
		fmt.Fprintf(&b, "%-20s", name)
		for _, v := range series[name] {
			fmt.Fprintf(&b, "%6d", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// PassCount tallies unit-test passes in a score set.
func PassCount(scores []score.ProblemScore) int {
	n := 0
	for _, s := range scores {
		if s.UnitTest == 1 {
			n++
		}
	}
	return n
}

// VariantPassCounts computes Table 5 through the default engine: per
// model, passes on the original, simplified and translated subsets.
func VariantPassCounts(m llm.Model, all []dataset.Problem) map[dataset.Variant]int {
	return VariantPassCountsWith(engine.Default(), m, all)
}

// VariantPassCountsWith is VariantPassCounts on a caller-owned engine
// and the default dispatcher.
func VariantPassCountsWith(eng *engine.Engine, m llm.Model, all []dataset.Problem) map[dataset.Variant]int {
	return VariantPassCountsVia(eng, inference.Default(), m, all)
}

// VariantPassCountsVia is VariantPassCounts with generations drawn
// through gen.
func VariantPassCountsVia(eng *engine.Engine, gen *inference.Dispatcher, m llm.Model, all []dataset.Problem) map[dataset.Variant]int {
	out := map[dataset.Variant]int{}
	for _, variant := range []dataset.Variant{dataset.Original, dataset.Simplified, dataset.Translated} {
		if m.EnglishOnly && variant == dataset.Translated {
			out[variant] = -1 // N/A
			continue
		}
		var subset []dataset.Problem
		for _, p := range all {
			if p.Variant == variant {
				subset = append(subset, p)
			}
		}
		scores := score.EvaluateModelVia(eng, gen, m, subset, llm.GenOptions{})
		out[variant] = PassCount(scores)
	}
	return out
}

// FormatTable5 renders variant pass counts.
func FormatTable5(counts map[string]map[dataset.Variant]int, order []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %10s %12s %12s\n", "Model", "Original", "Simplified", "Translated")
	for _, name := range order {
		c := counts[name]
		orig := c[dataset.Original]
		line := fmt.Sprintf("%-24s %10d %7d (%+d)", name, orig, c[dataset.Simplified], c[dataset.Simplified]-orig)
		if c[dataset.Translated] < 0 {
			line += fmt.Sprintf(" %12s", "N/A")
		} else {
			line += fmt.Sprintf(" %7d (%+d)", c[dataset.Translated], c[dataset.Translated]-orig)
		}
		b.WriteString(line + "\n")
	}
	return b.String()
}

// FewShotPassCounts computes Table 6 through the default engine: passes
// on the original subset for 0..maxShots few-shot prompts.
func FewShotPassCounts(m llm.Model, originals []dataset.Problem, maxShots int) []int {
	return FewShotPassCountsWith(engine.Default(), m, originals, maxShots)
}

// FewShotPassCountsWith is FewShotPassCounts on a caller-owned engine
// and the default dispatcher.
func FewShotPassCountsWith(eng *engine.Engine, m llm.Model, originals []dataset.Problem, maxShots int) []int {
	return FewShotPassCountsVia(eng, inference.Default(), m, originals, maxShots)
}

// FewShotPassCountsVia is FewShotPassCounts with generations drawn
// through gen.
func FewShotPassCountsVia(eng *engine.Engine, gen *inference.Dispatcher, m llm.Model, originals []dataset.Problem, maxShots int) []int {
	out := make([]int, maxShots+1)
	for shots := 0; shots <= maxShots; shots++ {
		scores := score.EvaluateModelVia(eng, gen, m, originals, llm.GenOptions{Shots: shots})
		out[shots] = PassCount(scores)
	}
	return out
}

// FormatTable6 renders few-shot pass counts.
func FormatTable6(counts map[string][]int, order []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %8s %12s %12s %12s\n", "Model", "0-shot", "1-shot", "2-shot", "3-shot")
	for _, name := range order {
		c := counts[name]
		fmt.Fprintf(&b, "%-24s %8d", name, c[0])
		for s := 1; s < len(c); s++ {
			fmt.Fprintf(&b, " %7d (%+d)", c[s], c[s]-c[0])
		}
		b.WriteString("\n")
	}
	return b.String()
}
