package analysis

import (
	"cloudeval/internal/dataset"
	"cloudeval/internal/llm"
	"testing"
)

func TestPrintPassK(t *testing.T) {
	ps := dataset.Generate()
	for _, name := range []string{"gpt-3.5", "llama-2-70b-chat", "palm-2-bison"} {
		m, _ := llm.ByName(name)
		s := PassAtK(m, ps, 16, 0.75)
		t.Logf("%s: pass@1=%d pass@16=%d ratio=%.2f", name, s[0], s[15], float64(s[15])/float64(s[0]))
	}
}

// TestPassAtKGainBounds pins the §4.2 shape: multi-sample gains are
// meaningful but bounded (the paper reports 30-39% at 20 samples), far
// below the 1-(1-p)^k of independent sampling.
func TestPassAtKGainBounds(t *testing.T) {
	ps := dataset.Generate()
	m, _ := llm.ByName("gpt-3.5")
	s := PassAtK(m, ps, 16, 0.75)
	gain := float64(s[15]) / float64(s[0])
	if gain < 1.15 || gain > 1.8 {
		t.Errorf("gpt-3.5 pass@16 gain = %.2fx, want the paper's bounded regime", gain)
	}
}
