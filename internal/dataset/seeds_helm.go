package dataset

import "fmt"

// helmSeeds generates Helm chart problems, the second extension family
// of the scenario-backend registry. The answer is the manifest bundle
// the chart's templates render; unit tests install it with `helm
// install -f` into the simulated cluster (helmsim renders into
// kubesim) and assert on the released resources with kubectl, so helm
// verbs and kubectl assertions mix exactly as on a real cluster.
var helmSeeds = []seedFunc{
	// Deployment + Service release, checked through helm status and
	// kubectl field assertions.
	func(i int) Problem {
		app := pick(vocabNames, i)
		image := pick(vocabImages, i)
		replicas := 2 + i%3
		port := pick(vocabPorts, i)
		return Problem{
			Question: fmt.Sprintf(
				"Write the Kubernetes manifests a Helm chart for %q should render: a Deployment named %q with %d "+
					"replicas of image %q (selector and pod labels app: %s) and a Service named %q exposing port %d "+
					"to the pods on the same port. The bundle will be installed as release %q.",
				app, app, replicas, image, app, app, port, app),
			ReferenceYAML: fmt.Sprintf(`apiVersion: apps/v1
kind: Deployment
metadata:
  name: %s
spec:
  replicas: %d
  selector:
    matchLabels:
      app: %s
  template:
    metadata:
      labels:
        app: %s
    spec:
      containers:
      - name: %s
        image: %s
        ports:
        - containerPort: %d
---
apiVersion: v1
kind: Service
metadata:
  name: %s
spec:
  selector:
    app: %s
  ports:
  - port: %d
    targetPort: %d
`, app, replicas, app, app, app, image, port, app, app, port, port),
			UnitTest: fmt.Sprintf(`helm install %s -f labeled_code.yaml
helm status %s | grep -q 'STATUS: deployed' || exit 1
reps=$(kubectl get deployment %s -o=jsonpath='{.spec.replicas}')
img=$(kubectl get deployment %s -o=jsonpath='{.spec.template.spec.containers[0].image}')
port=$(kubectl get service %s -o=jsonpath='{.spec.ports[0].port}')
if [[ $reps == "%d" && $img == "%s" && $port == "%d" ]]; then
  echo unit_test_passed
fi
`, app, app, app, app, app, replicas, image, port),
			Source: "helm.sh/docs/chart_template_guide (adapted)",
		}
	},
	// ConfigMap + Deployment release into a dedicated namespace,
	// rendered first with helm template and listed with helm ls.
	func(i int) Problem {
		app := pick(vocabNames, i+1)
		ns := pick([]string{"apps", "platform", "tools"}, i)
		level := pick([]string{"debug", "info", "warn"}, i)
		return Problem{
			Question: fmt.Sprintf(
				"Provide the manifest bundle for a Helm release %q installed into namespace %q: a ConfigMap named "+
					"%q with data key LOG_LEVEL set to %q, and a Deployment named %q (1 replica, image httpd:2.4, "+
					"labels app: %s).",
				app, ns, app+"-config", level, app, app),
			ReferenceYAML: fmt.Sprintf(`apiVersion: v1
kind: ConfigMap
metadata:
  name: %s-config
data:
  LOG_LEVEL: %s
---
apiVersion: apps/v1
kind: Deployment
metadata:
  name: %s
spec:
  replicas: 1
  selector:
    matchLabels:
      app: %s
  template:
    metadata:
      labels:
        app: %s
    spec:
      containers:
      - name: %s
        image: httpd:2.4
`, app, level, app, app, app, app),
			UnitTest: fmt.Sprintf(`helm template %s -f labeled_code.yaml | grep -q 'kind: ConfigMap' || exit 1
helm install %s -f labeled_code.yaml -n %s --create-namespace
helm ls -n %s | grep %s | grep -q deployed || exit 1
level=$(kubectl get configmap %s-config -n %s -o=jsonpath='{.data.LOG_LEVEL}')
if [ "$level" == "%s" ]; then
  echo unit_test_passed
fi
`, app, app, ns, ns, app, app, ns, level),
			Source: "helm.sh/docs/helm/helm_install (adapted)",
		}
	},
	// Cache release whose Deployment pins resources and env; helm
	// status reports both released resources.
	func(i int) Problem {
		name := pick(vocabNames, i+2) + "-cache"
		maxMem := pick([]string{"64mb", "128mb", "256mb"}, i)
		cpu := pick(vocabCPU, i)
		mem := pick(vocabMem, i)
		return Problem{
			Question: fmt.Sprintf(
				"A Helm release %q ships a Redis cache. Render its manifests: a Deployment named %q (1 replica, "+
					"image redis:7, labels app: %s) whose container sets the environment variable REDIS_MAXMEMORY=%s "+
					"and requests cpu %s / memory %s, plus a Service named %q on port 6379.",
				name, name, name, maxMem, cpu, mem, name),
			ReferenceYAML: fmt.Sprintf(`apiVersion: apps/v1
kind: Deployment
metadata:
  name: %s
spec:
  replicas: 1
  selector:
    matchLabels:
      app: %s
  template:
    metadata:
      labels:
        app: %s
    spec:
      containers:
      - name: redis
        image: redis:7
        env:
        - name: REDIS_MAXMEMORY
          value: %s
        resources:
          requests:
            cpu: %s
            memory: %s
---
apiVersion: v1
kind: Service
metadata:
  name: %s
spec:
  selector:
    app: %s
  ports:
  - port: 6379
    targetPort: 6379
`, name, name, name, maxMem, cpu, mem, name, name),
			UnitTest: fmt.Sprintf(`helm install %s -f labeled_code.yaml
helm status %s | grep -q 'RESOURCES: 2' || exit 1
maxmem=$(kubectl get deployment %s -o=jsonpath='{.spec.template.spec.containers[0].env[0].value}')
cpu=$(kubectl get deployment %s -o=jsonpath='{.spec.template.spec.containers[0].resources.requests.cpu}')
if [[ $maxmem == "%s" && $cpu == "%s" ]]; then
  echo unit_test_passed
fi
`, name, name, name, name, maxMem, cpu),
			Source: "artifacthub.io/packages/helm/bitnami/redis (adapted)",
		}
	},
}
