package dataset

import "fmt"

// othersSeeds covers the long tail of Kubernetes kinds in Table 2's
// "others" column: namespaces, config, RBAC, storage, autoscaling,
// networking, stateful workloads and debugging problems.
var othersSeeds = []seedFunc{
	// Namespace with labels.
	func(i int) Problem {
		name := pick([]string{"analytics", "payments", "internal-tools", "ml-serving"}, i)
		team := pick(vocabNames, i)
		return Problem{
			Question: fmt.Sprintf(
				"Write a YAML manifest that creates a Namespace called %q labeled team: %s, so our cost reports "+
					"can group workloads by owner.",
				name, team),
			ReferenceYAML: fmt.Sprintf(`apiVersion: v1
kind: Namespace
metadata:
  name: %s
  labels:
    team: %s
`, name, team),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
team=$(kubectl get namespace %s -o=jsonpath='{.metadata.labels.team}')
if [ "$team" == "%s" ]; then
  echo unit_test_passed
fi
`, name, team),
			Source: "kubernetes.io/docs/tasks/administer-cluster/namespaces",
		}
	},
	// ConfigMap with several keys.
	func(i int) Problem {
		name := pick(vocabNames, i) + "-config"
		logLevel := pick([]string{"debug", "info", "warning"}, i)
		timeout := 10 + i%20
		return Problem{
			Question: fmt.Sprintf(
				"Create a ConfigMap named %q with two data entries: log.level set to %q and request.timeout set "+
					"to \"%ds\". Plain v1 API.",
				name, logLevel, timeout),
			ReferenceYAML: fmt.Sprintf(`apiVersion: v1
kind: ConfigMap
metadata:
  name: %s
data:
  log.level: %s
  request.timeout: %ds
`, name, logLevel, timeout),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
lvl=$(kubectl get configmap %s -o=jsonpath="{.data['log\.level']}")
if [ "$lvl" == "%s" ]; then
  echo unit_test_passed
fi
`, name, logLevel),
			Source: "kubernetes.io/docs/concepts/configuration/configmap",
		}
	},
	// Opaque secret via stringData.
	func(i int) Problem {
		name := pick(vocabNames, i+1) + "-credentials"
		user := pick(vocabNames, i+2)
		return Problem{
			Question: fmt.Sprintf(
				"Write a Secret manifest named %q of type Opaque. Use stringData (not base64) with username: %s "+
					"and password: s3cr3t-%d.",
				name, user, 100+i),
			ReferenceYAML: fmt.Sprintf(`apiVersion: v1
kind: Secret
metadata:
  name: %s
type: Opaque
stringData:
  username: %s
  password: s3cr3t-%d
`, name, user, 100+i),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
u=$(kubectl get secret %s -o=jsonpath='{.stringData.username}')
t=$(kubectl get secret %s -o=jsonpath='{.type}')
if [[ $u == "%s" && $t == "Opaque" ]]; then
  echo unit_test_passed
fi
`, name, name, user),
			Source: "kubernetes.io/docs/concepts/configuration/secret",
		}
	},
	// LimitRange (the Appendix D simplification example).
	func(i int) Problem {
		cpuDefault := pick(vocabCPU, i)
		memDefault := pick(vocabMem, i)
		cpuMax := pick([]string{"150m", "300m", "600m", "250m"}, i)
		memMax := pick([]string{"250Mi", "512Mi", "1Gi", "128Mi"}, i)
		return Problem{
			Question: fmt.Sprintf(
				"Craft a yaml file to define a Kubernetes LimitRange. Containers within the cluster should have a "+
					"default CPU request of %s and a memory request of %s. Any Pod created should not exceed a maximum "+
					"CPU usage of %s or a memory usage of %s. Name it resource-limits.",
				cpuDefault, memDefault, cpuMax, memMax),
			ReferenceYAML: fmt.Sprintf(`apiVersion: v1
kind: LimitRange
metadata:
  name: resource-limits
spec:
  limits:
  - type: Container
    defaultRequest:
      cpu: %s
      memory: %s
  - type: Pod
    max:
      cpu: %s
      memory: %s
`, cpuDefault, memDefault, cpuMax, memMax),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
cpu=$(kubectl get limitrange resource-limits -o=jsonpath='{.spec.limits[0].defaultRequest.cpu}')
maxmem=$(kubectl get limitrange resource-limits -o=jsonpath='{.spec.limits[1].max.memory}')
if [[ $cpu == "%s" && $maxmem == "%s" ]]; then
  echo unit_test_passed
fi
`, cpuDefault, memMax),
			Source: "kubernetes.io/docs/concepts/policy/limit-range (Appendix D example)",
		}
	},
	// PersistentVolumeClaim.
	func(i int) Problem {
		name := pick(vocabNames, i+3) + "-data"
		size := pick([]string{"1Gi", "5Gi", "10Gi", "20Gi"}, i)
		mode := pick([]string{"ReadWriteOnce", "ReadOnlyMany"}, i)
		return Problem{
			Question: fmt.Sprintf(
				"Define a PersistentVolumeClaim named %q requesting %s of storage with access mode %s.",
				name, size, mode),
			ReferenceYAML: fmt.Sprintf(`apiVersion: v1
kind: PersistentVolumeClaim
metadata:
  name: %s
spec:
  accessModes:
  - %s
  resources:
    requests:
      storage: %s
`, name, mode, size),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
size=$(kubectl get persistentvolumeclaim %s -o=jsonpath='{.spec.resources.requests.storage}')
mode=$(kubectl get persistentvolumeclaim %s -o=jsonpath='{.spec.accessModes[0]}')
if [[ $size == "%s" && $mode == "%s" ]]; then
  echo unit_test_passed
fi
`, name, name, size, mode),
			Source: "kubernetes.io/docs/concepts/storage/persistent-volumes",
		}
	},
	// RoleBinding (the Figure 1 problem).
	func(i int) Problem {
		ns := pick([]string{"development", "qa", "integration", "sandbox"}, i)
		user := pick([]string{"dave", "alice", "bob", "carol"}, i)
		role := pick([]string{"secret-reader", "config-viewer", "pod-inspector"}, i)
		return Problem{
			Question: fmt.Sprintf(
				"Write a yaml file to create a Kubernetes RoleBinding in the %s namespace with the name "+
					"\"read-secrets\". This RoleBinding should bind the user %q to the ClusterRole named %q. Ensure "+
					"that both the user and the ClusterRole are under the rbac.authorization.k8s.io API group.",
				ns, user, role),
			ReferenceYAML: fmt.Sprintf(`apiVersion: rbac.authorization.k8s.io/v1
kind: RoleBinding
metadata:
  name: read-secrets
  namespace: %s
subjects:
- kind: User
  name: %s
  apiGroup: rbac.authorization.k8s.io
roleRef:
  kind: ClusterRole
  name: %s
  apiGroup: rbac.authorization.k8s.io
`, ns, user, role),
			UnitTest: fmt.Sprintf(`kubectl create ns %s
kubectl apply -f labeled_code.yaml
kubectl create clusterrole %s --verb=get,list --resource=secrets
namespace=$(kubectl get rolebinding read-secrets -n %s -o jsonpath='{.metadata.namespace}')
subject_name=$(kubectl get rolebinding read-secrets -n %s -o jsonpath='{.subjects[0].name}')
role_ref_name=$(kubectl get rolebinding read-secrets -n %s -o jsonpath='{.roleRef.name}')
if [[ $namespace == "%s" && $subject_name == "%s" && $role_ref_name == "%s" ]]; then
  echo unit_test_passed
fi
`, ns, role, ns, ns, ns, ns, user, role),
			Source: "kubernetes.io/docs/reference/access-authn-authz/rbac (Figure 1 example)",
		}
	},
	// ClusterRole with rules.
	func(i int) Problem {
		name := pick(vocabNames, i+4) + "-reader"
		resource := pick([]string{"pods", "services", "configmaps", "deployments"}, i)
		return Problem{
			Question: fmt.Sprintf(
				"Provide a ClusterRole named %q allowing the verbs get, list and watch on %s (core API group).",
				name, resource),
			ReferenceYAML: fmt.Sprintf(`apiVersion: rbac.authorization.k8s.io/v1
kind: ClusterRole
metadata:
  name: %s
rules:
- apiGroups:
  - ""
  resources:
  - %s
  verbs:
  - get
  - list
  - watch
`, name, resource),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
res=$(kubectl get clusterrole %s -o=jsonpath='{.rules[0].resources[0]}')
verbs=$(kubectl get clusterrole %s -o=jsonpath='{.rules[0].verbs[*]}')
if [[ $res == "%s" && $verbs == *"watch"* ]]; then
  echo unit_test_passed
fi
`, name, name, resource),
			Source: "kubernetes.io/docs/reference/access-authn-authz/rbac/#role-and-clusterrole",
		}
	},
	// ServiceAccount.
	func(i int) Problem {
		name := pick(vocabNames, i+5) + "-bot"
		ns := pick(vocabNS, i)
		return Problem{
			Question: fmt.Sprintf(
				"Our CI needs a ServiceAccount called %q in the %s namespace. Write the manifest (set the "+
					"namespace in metadata even if it is default).",
				name, ns),
			ReferenceYAML: fmt.Sprintf(`apiVersion: v1
kind: ServiceAccount
metadata:
  name: %s
  namespace: %s
`, name, ns),
			UnitTest: fmt.Sprintf(`kubectl create ns %s 2>/dev/null
kubectl apply -f labeled_code.yaml
found=$(kubectl get serviceaccount %s -n %s -o=jsonpath='{.metadata.name}')
if [ "$found" == "%s" ]; then
  echo unit_test_passed
fi
`, ns, name, ns, name),
			Source: "kubernetes.io/docs/tasks/configure-pod-container/configure-service-account",
		}
	},
	// Ingress debugging (Appendix C sample #3): fix the strict decoding error.
	func(i int) Problem {
		svc := pick(vocabNames, i) + "-app"
		port := pick(vocabPorts, i+3)
		broken := fmt.Sprintf(`apiVersion: networking.k8s.io/v1
kind: Ingress
metadata:
  name: test-ingress
  annotations:
    nginx.ingress.kubernetes.io/rewrite-target: /
spec:
  rules:
  - http:
      paths:
      - path: /
        backend:
          serviceName: %s
          servicePort: %d
`, svc, port)
		return Problem{
			Question: fmt.Sprintf(
				"Given the following YAML which is not functionally correct, executing it reports: Error from "+
					"server (BadRequest): Ingress in version \"v1\" cannot be handled as a Ingress: strict decoding "+
					"error: unknown field \"spec.rules[0].http.paths[0].backend.serviceName\", unknown field "+
					"\"spec.rules[0].http.paths[0].backend.servicePort\". Please debug it to make it valid, keeping the "+
					"backend service %q on port %d. Name the Ingress minimal-ingress and provide the entire YAML.",
				svc, port),
			ContextYAML: broken,
			ReferenceYAML: fmt.Sprintf(`apiVersion: networking.k8s.io/v1
kind: Ingress
metadata:
  name: minimal-ingress
  annotations:
    nginx.ingress.kubernetes.io/rewrite-target: /
spec:
  rules:
  - http:
      paths:
      - path: /
        pathType: Prefix
        backend:
          service:
            name: %s
            port:
              number: %d
`, svc, port),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
kubectl wait --namespace default --for=condition=SYNCED ingress --all --timeout=15s
kubectl describe ingress minimal-ingress | grep "%s:%d" && echo unit_test_passed
`, svc, port),
			Source: "stackoverflow.com/questions/69162781 (Appendix C sample #3)",
		}
	},
	// HorizontalPodAutoscaler.
	func(i int) Problem {
		target := pick(vocabNames, i+6) + "-deployment"
		minR := 1 + i%2
		maxR := 5 + i%6
		return Problem{
			Question: fmt.Sprintf(
				"Write an autoscaling/v2 HorizontalPodAutoscaler named %q that scales Deployment %q between %d "+
					"and %d replicas targeting 80%% average CPU utilization.",
				target+"-hpa", target, minR, maxR),
			ReferenceYAML: fmt.Sprintf(`apiVersion: autoscaling/v2
kind: HorizontalPodAutoscaler
metadata:
  name: %s-hpa
spec:
  scaleTargetRef:
    apiVersion: apps/v1
    kind: Deployment
    name: %s
  minReplicas: %d
  maxReplicas: %d
  metrics:
  - type: Resource
    resource:
      name: cpu
      target:
        type: Utilization
        averageUtilization: 80
`, target, target, minR, maxR),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
minr=$(kubectl get horizontalpodautoscaler %s-hpa -o=jsonpath='{.spec.minReplicas}')
maxr=$(kubectl get horizontalpodautoscaler %s-hpa -o=jsonpath='{.spec.maxReplicas}')
ref=$(kubectl get horizontalpodautoscaler %s-hpa -o=jsonpath='{.spec.scaleTargetRef.name}')
if [[ $minr == "%d" && $maxr == "%d" && $ref == "%s" ]]; then
  echo unit_test_passed
fi
`, target, target, target, minR, maxR, target),
			Source: "kubernetes.io/docs/tasks/run-application/horizontal-pod-autoscale",
		}
	},
	// StatefulSet.
	func(i int) Problem {
		name := pick([]string{"db", "kv", "ledger", "tsdb"}, i)
		replicas := 2 + i%2
		image := pick([]string{"redis:7", "memcached:1.6"}, i)
		return Problem{
			Question: fmt.Sprintf(
				"Define a StatefulSet named %q with %d replicas of %q, serviceName %q and labels app: %s. "+
					"Pods must come up ready with their ordinal names (%s-0, ...).",
				name, replicas, image, name, name, name),
			ReferenceYAML: fmt.Sprintf(`apiVersion: apps/v1
kind: StatefulSet
metadata:
  name: %s
spec:
  serviceName: %s
  replicas: %d
  selector:
    matchLabels:
      app: %s
  template:
    metadata:
      labels:
        app: %s
    spec:
      containers:
      - name: %s # *
        image: %s
`, name, name, replicas, name, name, name, image),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l app=%s --timeout=60s
first=$(kubectl get pod %s-0 -o=jsonpath='{.metadata.name}')
if [ "$first" == "%s-0" ]; then
  echo unit_test_passed
fi
`, name, name, name),
			Source: "kubernetes.io/docs/concepts/workloads/controllers/statefulset",
		}
	},
	// CronJob.
	func(i int) Problem {
		name := pick(vocabNames, i+7) + "-nightly"
		schedule := pick([]string{"0 2 * * *", "*/15 * * * *", "30 4 * * 1", "0 */6 * * *"}, i)
		return Problem{
			Question: fmt.Sprintf(
				"Create a CronJob named %q that runs busybox:1.36 on the schedule %q with restartPolicy OnFailure.",
				name, schedule),
			ReferenceYAML: fmt.Sprintf(`apiVersion: batch/v1
kind: CronJob
metadata:
  name: %s
spec:
  schedule: "%s"
  jobTemplate:
    spec:
      template:
        spec:
          containers:
          - name: task # *
            image: busybox:1.36
          restartPolicy: OnFailure
`, name, schedule),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
sched=$(kubectl get cronjob %s -o=jsonpath='{.spec.schedule}')
img=$(kubectl get cronjob %s -o=jsonpath='{.spec.jobTemplate.spec.template.spec.containers[0].image}')
if [[ $sched == "%s" && $img == "busybox:1.36" ]]; then
  echo unit_test_passed
fi
`, name, name, schedule),
			Source: "kubernetes.io/docs/concepts/workloads/controllers/cron-jobs",
		}
	},
	// Multi-document Service + Deployment (the Appendix D MySQL example).
	func(i int) Problem {
		name := pick([]string{"mysql", "postgres", "mariadb", "mongo"}, i)
		port := pick([]int{3306, 5432, 3307, 27017}, i)
		return Problem{
			Question: fmt.Sprintf(
				"Please write a YAML file that defines firstly a Service and then a Deployment. The Deployment "+
					"runs a single %s instance using image %s:latest on port %d, with the environment "+
					"MYSQL_ROOT_PASSWORD=password. The Service simply exposes the deployment on its port. All names "+
					"should be %s and labels should be app: %s.",
				name, name, port, name, name),
			ReferenceYAML: fmt.Sprintf(`apiVersion: v1
kind: Service
metadata:
  name: %s
spec:
  selector:
    app: %s
  ports:
  - port: %d
    targetPort: %d
---
apiVersion: apps/v1
kind: Deployment
metadata:
  name: %s
spec:
  replicas: 1
  selector:
    matchLabels:
      app: %s
  template:
    metadata:
      labels:
        app: %s
    spec:
      containers:
      - name: %s # *
        image: %s:latest
        env:
        - name: MYSQL_ROOT_PASSWORD
          value: password
        ports:
        - containerPort: %d
`, name, name, port, port, name, name, name, name, name, port),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=available deployment --all --timeout=60s
sleep 5
svc=$(kubectl get svc %s -o=jsonpath='{.metadata.name}')
code=$(curl -s -o /dev/null -w "%%{http_code}" %s.default.svc.cluster.local:%d)
pw=$(kubectl get pods -l app=%s -o=jsonpath='{.items[0].spec.containers[0].env[0].value}')
if [[ $svc == "%s" && $code == "200" && $pw == "password" ]]; then
  echo unit_test_passed
fi
`, name, name, port, name, name),
			Source: "kubernetes.io/docs/tasks/run-application/run-single-instance-stateful-application (Appendix D example)",
		}
	},
	// NetworkPolicy.
	func(i int) Problem {
		app := pick(vocabNames, i+2)
		from := pick(vocabNames, i+4)
		return Problem{
			Question: fmt.Sprintf(
				"Write a NetworkPolicy named allow-%s that selects pods labeled app: %s and only allows ingress "+
					"from pods labeled app: %s.",
				app, app, from),
			ReferenceYAML: fmt.Sprintf(`apiVersion: networking.k8s.io/v1
kind: NetworkPolicy
metadata:
  name: allow-%s
spec:
  podSelector:
    matchLabels:
      app: %s
  ingress:
  - from:
    - podSelector:
        matchLabels:
          app: %s
`, app, app, from),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
sel=$(kubectl get networkpolicy allow-%s -o=jsonpath='{.spec.podSelector.matchLabels.app}')
src=$(kubectl get networkpolicy allow-%s -o=jsonpath='{.spec.ingress[0].from[0].podSelector.matchLabels.app}')
if [[ $sel == "%s" && $src == "%s" ]]; then
  echo unit_test_passed
fi
`, app, app, app, from),
			Source: "kubernetes.io/docs/concepts/services-networking/network-policies",
		}
	},
}
