// Package dataset defines the CloudEval-YAML problem corpus: hand-
// written seed problems spanning Kubernetes (pod, daemonset, service,
// job, deployment, others), Envoy and Istio, expanded deterministically
// into the 337 original problems whose category counts match Table 2 of
// the paper, plus the Docker Compose and Helm extension families of the
// scenario-backend registry. Practical augmentation (simplified and
// translated variants) lives in the augment package and triples the
// corpus.
//
// Every problem carries a natural-language question, an optional YAML
// context, a labeled reference YAML and a bash unit test. The corpus
// invariant — enforced by tests — is that the reference answer passes
// its own unit test in the simulated cluster.
package dataset

import (
	"fmt"
	"sort"

	"cloudeval/internal/textmetrics"
)

// Category is a problem's application family.
type Category string

// Categories. Kubernetes, Envoy and Istio are the source paper's
// families; Compose and Helm are the extension families that prove the
// scenario-backend abstraction (internal/scenario) end to end.
const (
	Kubernetes Category = "kubernetes"
	Envoy      Category = "envoy"
	Istio      Category = "istio"
	Compose    Category = "compose"
	Helm       Category = "helm"
)

// Variant distinguishes original questions from practical augmentation.
type Variant string

// Variants.
const (
	Original   Variant = "original"
	Simplified Variant = "simplified"
	Translated Variant = "translated"
)

// Problem is one benchmark entry.
type Problem struct {
	ID          string
	Category    Category
	Subcategory string // pod, daemonset, service, job, deployment, others; envoy/istio use their category name
	Variant     Variant

	// Question is the natural-language task description.
	Question string
	// ContextYAML is the optional YAML snippet shown with the question.
	ContextYAML string
	// ReferenceYAML is the labeled reference answer (may contain "# *"
	// and "# v in [...]" match labels).
	ReferenceYAML string
	// UnitTest is the bash script that validates functional correctness;
	// it reads the candidate answer from labeled_code.yaml and prints
	// unit_test_passed on success.
	UnitTest string
	// Source records provenance (documentation page, StackOverflow,
	// blog), mirroring the paper's collection guidelines.
	Source string
}

// HasContext reports whether the problem ships a YAML context.
func (p Problem) HasContext() bool { return p.ContextYAML != "" }

// SolutionLines counts non-empty lines of the reference YAML.
func (p Problem) SolutionLines() int {
	n := 0
	start := 0
	s := p.ReferenceYAML
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if lineNotBlank(s[start:i]) {
				n++
			}
			start = i + 1
		}
	}
	return n
}

func lineNotBlank(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != ' ' && s[i] != '\t' && s[i] != '\r' {
			return true
		}
	}
	return false
}

// QuestionWords counts words in the question plus context.
func (p Problem) QuestionWords() int {
	return textmetrics.Words(p.Question) + textmetrics.Words(p.ContextYAML)
}

// QuestionTokens estimates tokenizer tokens of the full prompt body.
func (p Problem) QuestionTokens() int {
	return textmetrics.EstimateTokens(p.Question + "\n" + p.ContextYAML)
}

// SolutionTokens estimates tokens of the reference answer.
func (p Problem) SolutionTokens() int {
	return textmetrics.EstimateTokens(p.ReferenceYAML)
}

// UnitTestLines counts non-empty unit test lines.
func (p Problem) UnitTestLines() int {
	n := 0
	start := 0
	s := p.UnitTest
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if lineNotBlank(s[start:i]) {
				n++
			}
			start = i + 1
		}
	}
	return n
}

// subcategoryCounts pins the Table 2 distribution of the 337 original
// problems.
var subcategoryCounts = []struct {
	cat   Category
	sub   string
	count int
}{
	{Kubernetes, "pod", 48},
	{Kubernetes, "daemonset", 55},
	{Kubernetes, "service", 20},
	{Kubernetes, "job", 19},
	{Kubernetes, "deployment", 19},
	{Kubernetes, "others", 122},
	{Envoy, "envoy", 41},
	{Istio, "istio", 13},
	{Compose, "compose", 24},
	{Helm, "helm", 16},
}

// TotalPaper is the number of paper originals (Table 2's 337 problems
// across the Kubernetes, Envoy and Istio families).
const TotalPaper = 337

// TotalOriginal is the number of original problems across every
// family, derived from subcategoryCounts so the distribution table
// stays the single source of truth as families are added.
var TotalOriginal = func() int {
	n := 0
	for _, sc := range subcategoryCounts {
		n += sc.count
	}
	return n
}()

// Generate materializes the full original corpus: the paper's 337
// problems with the Table 2 category distribution, followed by the
// Compose and Helm extension families. Generation is deterministic,
// and the paper problems keep their IDs and order as families are
// appended.
func Generate() []Problem {
	var out []Problem
	for _, sc := range subcategoryCounts {
		seeds := seedsFor(sc.cat, sc.sub)
		if len(seeds) == 0 {
			panic(fmt.Sprintf("dataset: no seeds for %s/%s", sc.cat, sc.sub))
		}
		for i := 0; i < sc.count; i++ {
			seed := seeds[i%len(seeds)]
			p := seed(i)
			p.ID = fmt.Sprintf("%s-%s-%03d", shortCat(sc.cat), sc.sub, i+1)
			p.Category = sc.cat
			p.Subcategory = sc.sub
			p.Variant = Original
			out = append(out, p)
		}
	}
	return out
}

func shortCat(c Category) string {
	switch c {
	case Kubernetes:
		return "k8s"
	case Envoy:
		return "envoy"
	case Istio:
		return "istio"
	}
	return string(c)
}

// seedFunc builds the i-th parameterization of a seed template.
type seedFunc func(i int) Problem

func seedsFor(cat Category, sub string) []seedFunc {
	switch {
	case cat == Envoy:
		return envoySeeds
	case cat == Istio:
		return istioSeeds
	case cat == Compose:
		return composeSeeds
	case cat == Helm:
		return helmSeeds
	}
	switch sub {
	case "pod":
		return podSeeds
	case "daemonset":
		return daemonSetSeeds
	case "service":
		return serviceSeeds
	case "job":
		return jobSeeds
	case "deployment":
		return deploymentSeeds
	case "others":
		return othersSeeds
	}
	return nil
}

// Shared vocabulary for deterministic parameterization. Every list is
// indexed modulo its length by the problem index, so regenerating the
// corpus always yields identical problems.
var (
	vocabNames  = []string{"web", "api", "cache", "frontend", "backend", "worker", "gateway", "metrics", "logger", "ingest", "search", "auth", "billing", "queue", "notifier", "scheduler"}
	vocabImages = []string{"nginx:latest", "nginx:1.25", "httpd:2.4", "redis:7", "node:20-alpine", "python:3.11-slim", "golang:1.21-alpine", "memcached:1.6"}
	vocabPorts  = []int{80, 8080, 3000, 5000, 9090, 8000, 7070, 6379}
	vocabCPU    = []string{"100m", "250m", "500m", "200m"}
	vocabMem    = []string{"64Mi", "128Mi", "256Mi", "50Mi"}
	vocabNS     = []string{"default", "staging", "production", "monitoring"}
)

func pick[T any](list []T, i int) T { return list[i%len(list)] }

// SortByID orders problems deterministically for presentation.
func SortByID(ps []Problem) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].ID < ps[j].ID })
}
