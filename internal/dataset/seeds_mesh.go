package dataset

import "fmt"

// envoySeeds generates Envoy bootstrap configuration problems. Their
// unit tests validate the config with "envoy --mode validate", start it,
// and probe listeners with curl — mirroring the paper's Docker-based
// Envoy testing.
var envoySeeds = []seedFunc{
	// Single listener forwarding everything to one upstream cluster.
	func(i int) Problem {
		listenPort := 10000 + i%8*100
		cluster := pick(vocabNames, i) + "_backend"
		upstreamPort := pick(vocabPorts, i)
		return Problem{
			Question: fmt.Sprintf(
				"Write an Envoy bootstrap YAML (static_resources) with one listener named listener_0 bound to "+
					"0.0.0.0:%d. Its HTTP connection manager routes every path (prefix \"/\") to a cluster named %q "+
					"of type STATIC with a single endpoint at 127.0.0.1:%d using ROUND_ROBIN load balancing.",
				listenPort, cluster, upstreamPort),
			ReferenceYAML: fmt.Sprintf(`static_resources:
  listeners:
  - name: listener_0
    address:
      socket_address:
        address: 0.0.0.0
        port_value: %d
    filter_chains:
    - filters:
      - name: envoy.filters.network.http_connection_manager
        typed_config:
          stat_prefix: ingress_http # *
          route_config:
            name: local_route
            virtual_hosts:
            - name: local_service # *
              domains:
              - "*"
              routes:
              - match:
                  prefix: /
                route:
                  cluster: %s
  clusters:
  - name: %s
    type: STATIC
    lb_policy: ROUND_ROBIN
    load_assignment:
      cluster_name: %s
      endpoints:
      - lb_endpoints:
        - endpoint:
            address:
              socket_address:
                address: 127.0.0.1
                port_value: %d
`, listenPort, cluster, cluster, cluster, upstreamPort),
			UnitTest: fmt.Sprintf(`envoy --mode validate -c labeled_code.yaml
if [ $? -ne 0 ]; then
  exit 1
fi
envoy -c labeled_code.yaml
status=$(curl -s -o /dev/null -w "%%{http_code}" http://localhost:%d/)
if [ "$status" == "200" ]; then
  echo unit_test_passed
fi
`, listenPort),
			Source: "envoyproxy.io/docs/envoy/latest/start/quick-start/configuration-static",
		}
	},
	// Path-based routing to two clusters.
	func(i int) Problem {
		listenPort := 8080 + i%6*10
		apiCluster := pick(vocabNames, i+1) + "_api"
		webCluster := pick(vocabNames, i+2) + "_web"
		return Problem{
			Question: fmt.Sprintf(
				"I need an Envoy config listening on 0.0.0.0:%d that sends requests with path prefix \"/api\" to "+
					"cluster %q (endpoint 127.0.0.1:9001) and everything else (prefix \"/\") to cluster %q (endpoint "+
					"127.0.0.1:9002). Both clusters are STATIC. Order the routes so /api matches first.",
				listenPort, apiCluster, webCluster),
			ReferenceYAML: fmt.Sprintf(`static_resources:
  listeners:
  - name: main
    address:
      socket_address:
        address: 0.0.0.0
        port_value: %d
    filter_chains:
    - filters:
      - name: envoy.filters.network.http_connection_manager
        typed_config:
          stat_prefix: ingress_http # *
          route_config:
            name: split_route
            virtual_hosts:
            - name: all # *
              domains:
              - "*"
              routes:
              - match:
                  prefix: /api
                route:
                  cluster: %s
              - match:
                  prefix: /
                route:
                  cluster: %s
  clusters:
  - name: %s
    type: STATIC
    load_assignment:
      cluster_name: %s
      endpoints:
      - lb_endpoints:
        - endpoint:
            address:
              socket_address:
                address: 127.0.0.1
                port_value: 9001
  - name: %s
    type: STATIC
    load_assignment:
      cluster_name: %s
      endpoints:
      - lb_endpoints:
        - endpoint:
            address:
              socket_address:
                address: 127.0.0.1
                port_value: 9002
`, listenPort, apiCluster, webCluster, apiCluster, apiCluster, webCluster, webCluster),
			UnitTest: fmt.Sprintf(`envoy --mode validate -c labeled_code.yaml || exit 1
envoy -c labeled_code.yaml
api=$(curl -s -o /dev/null -w "%%{http_code}" http://localhost:%d/api/users)
web=$(curl -s -o /dev/null -w "%%{http_code}" http://localhost:%d/index.html)
api_body=$(curl -s http://localhost:%d/api/users)
if [[ $api == "200" && $web == "200" && $api_body == *"%s"* ]]; then
  echo unit_test_passed
fi
`, listenPort, listenPort, listenPort, apiCluster),
			Source: "envoyproxy.io/docs/envoy/latest/configuration/http/http_conn_man/route_matching",
		}
	},
	// Two listeners sharing one upstream.
	func(i int) Problem {
		portA := 10100 + i%5*10
		portB := portA + 1000
		cluster := pick(vocabNames, i+3) + "_svc"
		return Problem{
			Question: fmt.Sprintf(
				"Our gateway needs two Envoy listeners: \"public\" on 0.0.0.0:%d and \"internal\" on 0.0.0.0:%d. "+
					"Both route all traffic (prefix \"/\") to the same STATIC cluster %q with endpoint 127.0.0.1:%d. "+
					"Write the full bootstrap static_resources YAML.",
				portA, portB, cluster, 9000),
			ReferenceYAML: fmt.Sprintf(`static_resources:
  listeners:
  - name: public
    address:
      socket_address:
        address: 0.0.0.0
        port_value: %d
    filter_chains:
    - filters:
      - name: envoy.filters.network.http_connection_manager
        typed_config:
          stat_prefix: public_http # *
          route_config:
            name: public_route
            virtual_hosts:
            - name: public_hosts # *
              domains:
              - "*"
              routes:
              - match:
                  prefix: /
                route:
                  cluster: %s
  - name: internal
    address:
      socket_address:
        address: 0.0.0.0
        port_value: %d
    filter_chains:
    - filters:
      - name: envoy.filters.network.http_connection_manager
        typed_config:
          stat_prefix: internal_http # *
          route_config:
            name: internal_route
            virtual_hosts:
            - name: internal_hosts # *
              domains:
              - "*"
              routes:
              - match:
                  prefix: /
                route:
                  cluster: %s
  clusters:
  - name: %s
    type: STATIC
    load_assignment:
      cluster_name: %s
      endpoints:
      - lb_endpoints:
        - endpoint:
            address:
              socket_address:
                address: 127.0.0.1
                port_value: 9000
`, portA, cluster, portB, cluster, cluster, cluster),
			UnitTest: fmt.Sprintf(`envoy --mode validate -c labeled_code.yaml || exit 1
envoy -c labeled_code.yaml
a=$(curl -s -o /dev/null -w "%%{http_code}" http://localhost:%d/)
b=$(curl -s -o /dev/null -w "%%{http_code}" http://localhost:%d/)
if [[ $a == "200" && $b == "200" ]]; then
  echo unit_test_passed
fi
`, portA, portB),
			Source: "envoyproxy.io/docs/envoy/latest/configuration/listeners",
		}
	},
}

// istioSeeds generates Istio custom-resource problems; their tests use
// kubectl against the simulated cluster, where Istio CRs are stored and
// queried like any resource.
var istioSeeds = []seedFunc{
	// DestinationRule with a load-balancer policy (Appendix D example).
	func(i int) Problem {
		svc := pick([]string{"ratings", "reviews", "productpage", "details"}, i)
		ns := pick([]string{"prod", "staging", "bookinfo"}, i)
		policy := pick([]string{"LEAST_REQUEST", "ROUND_ROBIN", "RANDOM"}, i)
		return Problem{
			Question: fmt.Sprintf(
				"I'm working with the bookinfo application in our Istio setup. I recall there was a "+
					"DestinationRule specifically for the %s service in the %s namespace, which ensures traffic is "+
					"load balanced using the %s strategy. Please provide me the exact configuration for that, named %q.",
				svc, ns, policy, svc),
			ReferenceYAML: fmt.Sprintf(`apiVersion: networking.istio.io/v1alpha3
kind: DestinationRule
metadata:
  name: %s
  namespace: %s
spec:
  host: %s
  trafficPolicy:
    loadBalancer:
      simple: %s
`, svc, ns, svc, policy),
			UnitTest: fmt.Sprintf(`kubectl create ns %s
kubectl apply -f labeled_code.yaml
host=$(kubectl get destinationrule %s -n %s -o=jsonpath='{.spec.host}')
lb=$(kubectl get destinationrule %s -n %s -o=jsonpath='{.spec.trafficPolicy.loadBalancer.simple}')
if [[ $host == "%s" && $lb == "%s" ]]; then
  echo unit_test_passed
fi
`, ns, svc, ns, svc, ns, svc, policy),
			Source: "istio.io/latest/docs/reference/config/networking/destination-rule (Appendix D example)",
		}
	},
	// DestinationRule with a subset carrying its own policy.
	func(i int) Problem {
		svc := pick([]string{"ratings", "reviews", "cart"}, i)
		ns := pick([]string{"prod", "mesh"}, i)
		version := fmt.Sprintf("v%d", 2+i%3)
		return Problem{
			Question: fmt.Sprintf(
				"I need an Istio destination rule YAML set up for the bookinfo application's %s service in the "+
					"%s namespace. Main traffic is load balanced with LEAST_REQUEST. Additionally there is a subset "+
					"named \"testversion\" using version %s labels, and for this subset traffic is balanced with "+
					"ROUND_ROBIN. Name the resource %q and provide the entire YAML.",
				svc, ns, version, svc),
			ReferenceYAML: fmt.Sprintf(`apiVersion: networking.istio.io/v1alpha3
kind: DestinationRule
metadata:
  name: %s
  namespace: %s
spec:
  host: %s
  trafficPolicy:
    loadBalancer:
      simple: LEAST_REQUEST
  subsets:
  - name: testversion
    labels:
      version: %s
    trafficPolicy:
      loadBalancer:
        simple: ROUND_ROBIN
`, svc, ns, svc, version),
			UnitTest: fmt.Sprintf(`kubectl create ns %s
kubectl apply -f labeled_code.yaml
subset=$(kubectl get destinationrule %s -n %s -o=jsonpath='{.spec.subsets[0].name}')
ver=$(kubectl get destinationrule %s -n %s -o=jsonpath='{.spec.subsets[0].labels.version}')
sublb=$(kubectl get destinationrule %s -n %s -o=jsonpath='{.spec.subsets[0].trafficPolicy.loadBalancer.simple}')
if [[ $subset == "testversion" && $ver == "%s" && $sublb == "ROUND_ROBIN" ]]; then
  echo unit_test_passed
fi
`, ns, svc, ns, svc, ns, svc, ns, version),
			Source: "istio.io/latest/docs/reference/config/networking/destination-rule/#Subset",
		}
	},
	// VirtualService routing to a weighted destination.
	func(i int) Problem {
		svc := pick([]string{"reviews", "frontend", "checkout"}, i)
		host := svc + ".default.svc.cluster.local"
		subset := fmt.Sprintf("v%d", 1+i%3)
		return Problem{
			Question: fmt.Sprintf(
				"Write an Istio VirtualService named %q that matches the host %q and routes all HTTP traffic to "+
					"destination host %q, subset %q.",
				svc+"-route", svc, host, subset),
			ReferenceYAML: fmt.Sprintf(`apiVersion: networking.istio.io/v1alpha3
kind: VirtualService
metadata:
  name: %s-route
spec:
  hosts:
  - %s
  http:
  - route:
    - destination:
        host: %s
        subset: %s
`, svc, svc, host, subset),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
hosts=$(kubectl get virtualservice %s-route -o=jsonpath='{.spec.hosts[0]}')
dest=$(kubectl get virtualservice %s-route -o=jsonpath='{.spec.http[0].route[0].destination.host}')
subset=$(kubectl get virtualservice %s-route -o=jsonpath='{.spec.http[0].route[0].destination.subset}')
if [[ $hosts == "%s" && $dest == "%s" && $subset == "%s" ]]; then
  echo unit_test_passed
fi
`, svc, svc, svc, svc, host, subset),
			Source: "istio.io/latest/docs/reference/config/networking/virtual-service",
		}
	},
}
