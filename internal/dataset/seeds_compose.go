package dataset

import "fmt"

// composeSeeds generates Docker Compose problems, the first extension
// family of the scenario-backend registry. Their unit tests validate
// the file with `docker compose config`, bring the project up, and
// probe published ports and container logs against the composesim
// backend — mirroring how the paper's unit tests drive minikube.
var composeSeeds = []seedFunc{
	// Single published web service with a restart policy.
	func(i int) Problem {
		svc := pick(vocabNames, i)
		image := pick(vocabImages, i)
		hostPort := 8080 + i%8*100
		containerPort := pick(vocabPorts, i)
		return Problem{
			Question: fmt.Sprintf(
				"Write a Docker Compose file with a single service named %q running image %q with restart policy "+
					"\"always\", publishing host port %d to container port %d.",
				svc, image, hostPort, containerPort),
			ReferenceYAML: fmt.Sprintf(`services:
  %s:
    image: %s
    restart: always
    ports:
    - "%d:%d"
`, svc, image, hostPort, containerPort),
			UnitTest: fmt.Sprintf(`docker compose -f labeled_code.yaml config -q
if [ $? -ne 0 ]; then
  exit 1
fi
docker compose -f labeled_code.yaml config | grep -q 'image: %s' || exit 1
docker compose -f labeled_code.yaml config | grep -q 'restart: always' || exit 1
docker compose -f labeled_code.yaml up -d
docker compose ps | grep %s | grep -q Up || exit 1
status=$(curl -s -o /dev/null -w "%%{http_code}" http://localhost:%d/)
if [ "$status" == "200" ]; then
  echo unit_test_passed
fi
`, image, svc, hostPort),
			Source: "docs.docker.com/compose/compose-file/05-services",
		}
	},
	// Web service depending on a Redis cache, wired by environment.
	func(i int) Problem {
		// The suffix keeps the app service from colliding with the
		// fixed "cache" service name.
		web := pick(vocabNames, i+1) + "-app"
		port := 3000 + i%6*10
		return Problem{
			Question: fmt.Sprintf(
				"Our %q app needs a Compose file with two services: %q (image node:20-alpine, host port %d "+
					"published to container port 3000, environment variable REDIS_URL=redis://cache:6379) and "+
					"\"cache\" (image redis:7). The app must start after the cache.",
				web, web, port),
			ReferenceYAML: fmt.Sprintf(`services:
  %s:
    image: node:20-alpine
    ports:
    - "%d:3000"
    environment:
      REDIS_URL: redis://cache:6379
    depends_on:
    - cache
  cache:
    image: redis:7
`, web, port),
			UnitTest: fmt.Sprintf(`docker compose -f labeled_code.yaml config | grep -q 'REDIS_URL: redis://cache:6379' || exit 1
docker compose -f labeled_code.yaml up -d
docker compose ps | grep cache | grep -q Up || exit 1
docker compose ps | grep %s | grep -q Up || exit 1
docker compose logs cache | grep -q 'Ready to accept connections' || exit 1
status=$(curl -s -o /dev/null -w "%%{http_code}" http://localhost:%d/)
if [ "$status" == "200" ]; then
  echo unit_test_passed
fi
`, web, port),
			Source: "docs.docker.com/compose/how-tos/startup-order",
		}
	},
	// Background worker with a command override and a named volume.
	func(i int) Problem {
		worker := pick(vocabNames, i+2) + "-worker"
		queue := pick([]string{"jobs", "emails", "reports", "uploads"}, i)
		return Problem{
			Question: fmt.Sprintf(
				"Define a Compose service %q from image python:3.11-slim that runs the command "+
					"\"python -m worker --queue %s\", sets the environment variable QUEUE_NAME=%s, and mounts the "+
					"named volume \"data\" at /var/lib/worker (declare the volume too).",
				worker, queue, queue),
			ReferenceYAML: fmt.Sprintf(`services:
  %s:
    image: python:3.11-slim
    command: python -m worker --queue %s
    environment:
      QUEUE_NAME: %s
    volumes:
    - data:/var/lib/worker
volumes:
  data: {}
`, worker, queue, queue),
			UnitTest: fmt.Sprintf(`docker compose -f labeled_code.yaml config | grep -q 'command: python -m worker --queue %s' || exit 1
docker compose -f labeled_code.yaml config | grep -q 'QUEUE_NAME: %s' || exit 1
docker compose -f labeled_code.yaml config | grep -q 'data:/var/lib/worker' || exit 1
docker compose -f labeled_code.yaml up -d
docker compose ps | grep %s | grep -q Up || exit 1
docker compose logs %s | grep -q 'python -m worker' || exit 1
echo unit_test_passed
`, queue, queue, worker, worker),
			Source: "docs.docker.com/compose/compose-file/07-volumes",
		}
	},
	// Gateway fronting an API service, both probed over the network.
	func(i int) Problem {
		api := pick(vocabNames, i+3) + "-api"
		apiPort := 9000 + i%5*10
		return Problem{
			Question: fmt.Sprintf(
				"Write a Compose file for an edge gateway: service \"gateway\" (image nginx:latest) publishes host "+
					"port 80 to container port 80 and depends on service %q (image golang:1.21-alpine) which "+
					"publishes host port %d to container port %d.",
				api, apiPort, apiPort),
			ReferenceYAML: fmt.Sprintf(`services:
  gateway:
    image: nginx:latest
    ports:
    - "80:80"
    depends_on:
    - %s
  %s:
    image: golang:1.21-alpine
    ports:
    - "%d:%d"
`, api, api, apiPort, apiPort),
			UnitTest: fmt.Sprintf(`docker compose -f labeled_code.yaml up -d
gw=$(curl -s -o /dev/null -w "%%{http_code}" http://localhost:80/)
api=$(curl -s -o /dev/null -w "%%{http_code}" http://localhost:%d/)
body=$(curl -s http://localhost:%d/)
if [[ $gw == "200" && $api == "200" && $body == *"%s ok"* ]]; then
  echo unit_test_passed
fi
`, apiPort, apiPort, api),
			Source: "docs.docker.com/compose/networking",
		}
	},
}
