package dataset

import (
	"fmt"
	"strings"
)

// Stats aggregates the Table 2 statistics for a set of problems.
type Stats struct {
	Count            int
	AvgQuestionWords float64
	AvgSolutionLines float64
	AvgSolutionToks  float64
	MaxSolutionToks  int
	AvgUnitTestLines float64
}

// ComputeStats computes corpus statistics for a problem subset.
func ComputeStats(ps []Problem) Stats {
	s := Stats{Count: len(ps)}
	if len(ps) == 0 {
		return s
	}
	var words, lines, toks, utLines int
	for _, p := range ps {
		words += p.QuestionWords()
		lines += p.SolutionLines()
		t := p.SolutionTokens()
		toks += t
		if t > s.MaxSolutionToks {
			s.MaxSolutionToks = t
		}
		utLines += p.UnitTestLines()
	}
	n := float64(len(ps))
	s.AvgQuestionWords = float64(words) / n
	s.AvgSolutionLines = float64(lines) / n
	s.AvgSolutionToks = float64(toks) / n
	s.AvgUnitTestLines = float64(utLines) / n
	return s
}

// ByGroup partitions problems into Table 2's columns: the Kubernetes
// subcategories, then Envoy and Istio.
func ByGroup(ps []Problem) map[string][]Problem {
	out := map[string][]Problem{}
	for _, p := range ps {
		key := p.Subcategory
		if p.Category != Kubernetes {
			key = string(p.Category)
		}
		out[key] = append(out[key], p)
	}
	return out
}

// Table2Columns is the presentation order of Table 2: the paper's
// columns first (pinned byte-identical), then the extension families.
var Table2Columns = []string{"pod", "daemonset", "service", "job", "deployment", "others", "envoy", "istio", "compose", "helm"}

// FormatTable2 renders the dataset statistics in the paper's Table 2
// layout.
func FormatTable2(ps []Problem) string {
	groups := ByGroup(ps)
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s", "Statistics")
	for _, c := range Table2Columns {
		fmt.Fprintf(&b, "%12s", c)
	}
	fmt.Fprintf(&b, "%12s\n", "total/avg")
	total := ComputeStats(ps)
	rows := []struct {
		label string
		get   func(Stats) string
	}{
		{"Total Problem Count", func(s Stats) string { return fmt.Sprintf("%d", s.Count) }},
		{"Avg. Question Words", func(s Stats) string { return fmt.Sprintf("%.2f", s.AvgQuestionWords) }},
		{"Avg. Lines of Solution", func(s Stats) string { return fmt.Sprintf("%.2f", s.AvgSolutionLines) }},
		{"Avg. Tokens of Solution", func(s Stats) string { return fmt.Sprintf("%.2f", s.AvgSolutionToks) }},
		{"Max Tokens of Solution", func(s Stats) string { return fmt.Sprintf("%d", s.MaxSolutionToks) }},
		{"Avg. Lines of Unit Test", func(s Stats) string { return fmt.Sprintf("%.2f", s.AvgUnitTestLines) }},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-28s", row.label)
		for _, c := range Table2Columns {
			fmt.Fprintf(&b, "%12s", row.get(ComputeStats(groups[c])))
		}
		fmt.Fprintf(&b, "%12s\n", row.get(total))
	}
	return b.String()
}
