package dataset

import "fmt"

// Additional seed templates registered into the subcategory pools at
// init time: storage-backed pods, health probes, deadline-bounded jobs,
// multi-container deployments, and the RBAC/storage/quota tail of the
// "others" column, plus the Istio Gateway resource. Expanding the pools
// diversifies the cycled 337-problem corpus without changing its
// category distribution.
func init() {
	podSeeds = append(podSeeds, podVolumeSeed, podProbeSeed)
	jobSeeds = append(jobSeeds, jobDeadlineSeed)
	deploymentSeeds = append(deploymentSeeds, deploymentSidecarSeed)
	othersSeeds = append(othersSeeds, roleSeed, persistentVolumeSeed, resourceQuotaSeed)
	istioSeeds = append(istioSeeds, gatewaySeed)
}

// podVolumeSeed: pod with an emptyDir volume mounted into the container.
func podVolumeSeed(i int) Problem {
	name := pick(vocabNames, i+9) + "-scratch"
	image := pick(vocabImages, i+3)
	mountPath := pick([]string{"/var/cache", "/tmp/work", "/data/scratch", "/var/spool"}, i)
	return Problem{
		Question: fmt.Sprintf(
			"Write a Pod manifest named %q (image %q, label app: %s) with an emptyDir volume called "+
				"\"scratch\" mounted into the container at %q.",
			name, image, name, mountPath),
		ReferenceYAML: fmt.Sprintf(`apiVersion: v1
kind: Pod
metadata:
  name: %s
  labels:
    app: %s
spec:
  containers:
  - name: app # *
    image: %s
    volumeMounts:
    - name: scratch
      mountPath: %s
  volumes:
  - name: scratch
    emptyDir: {}
`, name, name, image, mountPath),
		UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l app=%s --timeout=60s
vol=$(kubectl get pod %s -o=jsonpath='{.spec.volumes[0].name}')
mount=$(kubectl get pod %s -o=jsonpath='{.spec.containers[0].volumeMounts[0].mountPath}')
if [[ $vol == "scratch" && $mount == "%s" ]]; then
  echo unit_test_passed
fi
`, name, name, name, mountPath),
		Source: "kubernetes.io/docs/concepts/storage/volumes/#emptydir",
	}
}

// podProbeSeed: pod with an HTTP liveness probe.
func podProbeSeed(i int) Problem {
	name := pick(vocabNames, i+11) + "-probed"
	port := pick(vocabPorts, i+2)
	path := pick([]string{"/healthz", "/livez", "/status", "/ping"}, i)
	period := 5 + i%10
	return Problem{
		Question: fmt.Sprintf(
			"Our %q pod (nginx:1.25, label app: %s, container port %d) needs an HTTP livenessProbe on "+
				"path %q port %d with periodSeconds %d. Write the manifest.",
			name, name, port, path, port, period),
		ReferenceYAML: fmt.Sprintf(`apiVersion: v1
kind: Pod
metadata:
  name: %s
  labels:
    app: %s
spec:
  containers:
  - name: web # *
    image: nginx:1.25
    ports:
    - containerPort: %d
    livenessProbe:
      httpGet:
        path: %s
        port: %d
      periodSeconds: %d
`, name, name, port, path, port, period),
		UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l app=%s --timeout=60s
ppath=$(kubectl get pod %s -o=jsonpath='{.spec.containers[0].livenessProbe.httpGet.path}')
pport=$(kubectl get pod %s -o=jsonpath='{.spec.containers[0].livenessProbe.httpGet.port}')
period=$(kubectl get pod %s -o=jsonpath='{.spec.containers[0].livenessProbe.periodSeconds}')
if [[ $ppath == "%s" && $pport == "%d" && $period == "%d" ]]; then
  echo unit_test_passed
fi
`, name, name, name, name, path, port, period),
		Source: "kubernetes.io/docs/tasks/configure-pod-container/configure-liveness-readiness-startup-probes",
	}
}

// jobDeadlineSeed: job bounded by activeDeadlineSeconds.
func jobDeadlineSeed(i int) Problem {
	name := pick(vocabNames, i+4) + "-bounded"
	deadline := 120 + i%4*60
	return Problem{
		Question: fmt.Sprintf(
			"Define a Job named %q running busybox:1.36 that is killed if it exceeds %d seconds "+
				"(activeDeadlineSeconds). restartPolicy Never.",
			name, deadline),
		ReferenceYAML: fmt.Sprintf(`apiVersion: batch/v1
kind: Job
metadata:
  name: %s
spec:
  activeDeadlineSeconds: %d
  template:
    spec:
      containers:
      - name: task # *
        image: busybox:1.36
      restartPolicy: Never
`, name, deadline),
		UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
deadline=$(kubectl get job %s -o=jsonpath='{.spec.activeDeadlineSeconds}')
policy=$(kubectl get job %s -o=jsonpath='{.spec.template.spec.restartPolicy}')
if [[ $deadline == "%d" && $policy == "Never" ]]; then
  echo unit_test_passed
fi
`, name, name, deadline),
		Source: "kubernetes.io/docs/concepts/workloads/controllers/job/#job-termination-and-cleanup",
	}
}

// deploymentSidecarSeed: two-container deployment.
func deploymentSidecarSeed(i int) Problem {
	app := pick(vocabNames, i+8)
	mainImage := pick(vocabImages, i+1)
	return Problem{
		Question: fmt.Sprintf(
			"Write a Deployment %q (2 replicas, labels app: %s) whose pods run two containers: "+
				"\"main\" with image %q and \"logshipper\" with image busybox:1.36. All replicas must become ready.",
			app+"-paired", app, mainImage),
		ReferenceYAML: fmt.Sprintf(`apiVersion: apps/v1
kind: Deployment
metadata:
  name: %s-paired
spec:
  replicas: 2
  selector:
    matchLabels:
      app: %s
  template:
    metadata:
      labels:
        app: %s
    spec:
      containers:
      - name: main
        image: %s
      - name: logshipper
        image: busybox:1.36
`, app, app, app, mainImage),
		UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=available deployment --all --timeout=60s
names=$(kubectl get pods -l app=%s -o=jsonpath='{.items[0].spec.containers[*].name}')
ready=$(kubectl get deployment %s-paired -o=jsonpath='{.status.readyReplicas}')
if [[ $names == *"main"* && $names == *"logshipper"* && $ready == "2" ]]; then
  echo unit_test_passed
fi
`, app, app),
		Source: "kubernetes.io/docs/concepts/workloads/pods/sidecar-containers",
	}
}

// roleSeed: namespaced Role with rules.
func roleSeed(i int) Problem {
	ns := pick(vocabNS, i)
	resource := pick([]string{"pods", "configmaps", "services", "secrets"}, i)
	name := resource + "-editor"
	return Problem{
		Question: fmt.Sprintf(
			"Write a namespaced Role called %q in the %s namespace allowing get, list and update on %s "+
				"in the core API group.",
			name, ns, resource),
		ReferenceYAML: fmt.Sprintf(`apiVersion: rbac.authorization.k8s.io/v1
kind: Role
metadata:
  name: %s
  namespace: %s
rules:
- apiGroups:
  - ""
  resources:
  - %s
  verbs:
  - get
  - list
  - update
`, name, ns, resource),
		UnitTest: fmt.Sprintf(`kubectl create ns %s 2>/dev/null
kubectl apply -f labeled_code.yaml
res=$(kubectl get role %s -n %s -o=jsonpath='{.rules[0].resources[0]}')
verbs=$(kubectl get role %s -n %s -o=jsonpath='{.rules[0].verbs[*]}')
if [[ $res == "%s" && $verbs == *"update"* ]]; then
  echo unit_test_passed
fi
`, ns, name, ns, name, ns, resource),
		Source: "kubernetes.io/docs/reference/access-authn-authz/rbac/#role-example",
	}
}

// persistentVolumeSeed: hostPath PV.
func persistentVolumeSeed(i int) Problem {
	name := pick(vocabNames, i+6) + "-pv"
	size := pick([]string{"2Gi", "8Gi", "20Gi", "50Gi"}, i)
	path := fmt.Sprintf("/mnt/disks/%s", pick(vocabNames, i+6))
	return Problem{
		Question: fmt.Sprintf(
			"Create a PersistentVolume named %q with %s capacity, access mode ReadWriteOnce, and a "+
				"hostPath at %q.",
			name, size, path),
		ReferenceYAML: fmt.Sprintf(`apiVersion: v1
kind: PersistentVolume
metadata:
  name: %s
spec:
  capacity:
    storage: %s
  accessModes:
  - ReadWriteOnce
  hostPath:
    path: %s
`, name, size, path),
		UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
size=$(kubectl get persistentvolume %s -o=jsonpath='{.spec.capacity.storage}')
hp=$(kubectl get persistentvolume %s -o=jsonpath='{.spec.hostPath.path}')
if [[ $size == "%s" && $hp == "%s" ]]; then
  echo unit_test_passed
fi
`, name, name, size, path),
		Source: "kubernetes.io/docs/tasks/configure-pod-container/configure-persistent-volume-storage",
	}
}

// resourceQuotaSeed: namespace-level quota.
func resourceQuotaSeed(i int) Problem {
	ns := pick(vocabNS[1:], i)
	pods := 10 + i%10*5
	cpu := pick([]string{"4", "8", "16", "2"}, i)
	return Problem{
		Question: fmt.Sprintf(
			"The %s namespace needs a ResourceQuota named \"compute-quota\" capping it at %d pods and "+
				"requests.cpu of %s. Provide the YAML (set metadata.namespace).",
			ns, pods, cpu),
		ReferenceYAML: fmt.Sprintf(`apiVersion: v1
kind: ResourceQuota
metadata:
  name: compute-quota
  namespace: %s
spec:
  hard:
    pods: "%d"
    requests.cpu: "%s"
`, ns, pods, cpu),
		UnitTest: fmt.Sprintf(`kubectl create ns %s 2>/dev/null
kubectl apply -f labeled_code.yaml
pods=$(kubectl get resourcequota compute-quota -n %s -o=jsonpath='{.spec.hard.pods}')
cpu=$(kubectl get resourcequota compute-quota -n %s -o=jsonpath="{.spec.hard['requests\.cpu']}")
if [[ $pods == "%d" && $cpu == "%s" ]]; then
  echo unit_test_passed
fi
`, ns, ns, ns, pods, cpu),
		Source: "kubernetes.io/docs/concepts/policy/resource-quotas",
	}
}

// gatewaySeed: Istio Gateway for HTTP ingress.
func gatewaySeed(i int) Problem {
	name := pick(vocabNames, i+5) + "-gateway"
	host := fmt.Sprintf("%s.example.com", pick(vocabNames, i+5))
	port := pick([]int{80, 8080, 8443}, i)
	return Problem{
		Question: fmt.Sprintf(
			"Write an Istio Gateway named %q using the default istio: ingressgateway selector, with one "+
				"server on port %d (name http, protocol HTTP) serving host %q.",
			name, port, host),
		ReferenceYAML: fmt.Sprintf(`apiVersion: networking.istio.io/v1alpha3
kind: Gateway
metadata:
  name: %s
spec:
  selector:
    istio: ingressgateway
  servers:
  - port:
      number: %d
      name: http
      protocol: HTTP
    hosts:
    - %s
`, name, port, host),
		UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
sel=$(kubectl get gateway %s -o=jsonpath='{.spec.selector.istio}')
pnum=$(kubectl get gateway %s -o=jsonpath='{.spec.servers[0].port.number}')
ghost=$(kubectl get gateway %s -o=jsonpath='{.spec.servers[0].hosts[0]}')
if [[ $sel == "ingressgateway" && $pnum == "%d" && $ghost == "%s" ]]; then
  echo unit_test_passed
fi
`, name, name, name, port, host),
		Source: "istio.io/latest/docs/reference/config/networking/gateway",
	}
}
