package dataset

import (
	"strings"
	"testing"

	"cloudeval/internal/yamlmatch"
	"cloudeval/internal/yamlx"
)

func TestGenerateCountsMatchTable2(t *testing.T) {
	ps := Generate()
	if len(ps) != TotalOriginal {
		t.Fatalf("corpus size = %d, want %d", len(ps), TotalOriginal)
	}
	groups := ByGroup(ps)
	want := map[string]int{
		"pod": 48, "daemonset": 55, "service": 20, "job": 19,
		"deployment": 19, "others": 122, "envoy": 41, "istio": 13,
		"compose": 24, "helm": 16,
	}
	for k, n := range want {
		if got := len(groups[k]); got != n {
			t.Errorf("%s count = %d, want %d", k, got, n)
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	a, b := Generate(), Generate()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("problem %d differs between generations", i)
		}
	}
}

func TestProblemsAreWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Generate() {
		if p.ID == "" || seen[p.ID] {
			t.Errorf("duplicate or empty ID %q", p.ID)
		}
		seen[p.ID] = true
		if strings.TrimSpace(p.Question) == "" {
			t.Errorf("%s: empty question", p.ID)
		}
		if strings.TrimSpace(p.ReferenceYAML) == "" {
			t.Errorf("%s: empty reference", p.ID)
		}
		if !strings.Contains(p.UnitTest, "unit_test_passed") {
			t.Errorf("%s: unit test never emits the pass marker", p.ID)
		}
		if p.Source == "" {
			t.Errorf("%s: missing provenance", p.ID)
		}
	}
}

func TestReferencesParseAsYAML(t *testing.T) {
	for _, p := range Generate() {
		if _, err := yamlx.ParseAll([]byte(p.ReferenceYAML)); err != nil {
			t.Errorf("%s: reference does not parse: %v", p.ID, err)
		}
		if p.ContextYAML != "" {
			if _, err := yamlx.ParseAll([]byte(p.ContextYAML)); err != nil {
				t.Errorf("%s: context does not parse: %v", p.ID, err)
			}
		}
	}
}

func TestReferenceSelfWildcardMatch(t *testing.T) {
	for _, p := range Generate() {
		clean := yamlmatch.StripLabels(p.ReferenceYAML)
		if got := yamlmatch.KVWildcardMatch(clean, p.ReferenceYAML); got != 1 {
			t.Errorf("%s: reference does not wildcard-match itself: %v", p.ID, got)
		}
	}
}

func TestStatsShape(t *testing.T) {
	ps := Generate()
	s := ComputeStats(ps)
	if s.Count != TotalOriginal {
		t.Errorf("stats count = %d", s.Count)
	}
	if s.AvgSolutionLines < 10 || s.AvgSolutionLines > 60 {
		t.Errorf("avg solution lines = %.2f, expected tens of lines like the paper's 28.35", s.AvgSolutionLines)
	}
	if s.AvgUnitTestLines < 5 {
		t.Errorf("avg unit test lines = %.2f, expected nontrivial scripts", s.AvgUnitTestLines)
	}
	// Envoy problems must be the longest, as in the paper — including
	// against the extension families.
	groups := ByGroup(ps)
	envoyLines := ComputeStats(groups["envoy"]).AvgSolutionLines
	for _, col := range []string{"pod", "service", "job", "deployment", "istio", "compose", "helm"} {
		if ComputeStats(groups[col]).AvgSolutionLines >= envoyLines {
			t.Errorf("%s solutions (%.1f lines) >= envoy (%.1f); envoy should be longest",
				col, ComputeStats(groups[col]).AvgSolutionLines, envoyLines)
		}
	}
}

func TestFormatTable2(t *testing.T) {
	out := FormatTable2(Generate())
	for _, want := range []string{"Total Problem Count", "48", "55", "122", "compose", "helm", "377", "Avg. Lines of Solution"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 output missing %q:\n%s", want, out)
		}
	}
}

func TestContextProblemsExist(t *testing.T) {
	withCtx := 0
	for _, p := range Generate() {
		if p.HasContext() {
			withCtx++
		}
	}
	if withCtx < 20 {
		t.Errorf("only %d problems carry YAML context; Figure 6 needs a code-context split", withCtx)
	}
}
