package dataset

import "fmt"

// The seed templates in this file cover the Kubernetes workload
// subcategories of Table 2. Each seed is a faithful, parameterized port
// of a documentation/StackOverflow-style task; the unit tests assert
// functional behaviour through kubectl and curl exactly as the paper's
// hand-written scripts do.

var podSeeds = []seedFunc{
	// Basic pod serving HTTP on a container port.
	func(i int) Problem {
		name := pick(vocabNames, i) + "-pod"
		image := pick(vocabImages, i)
		port := pick(vocabPorts, i)
		app := pick(vocabNames, i)
		return Problem{
			Question: fmt.Sprintf(
				"Write a YAML file to create a Kubernetes Pod named %q that runs the %q image. "+
					"The pod must carry the label app: %s and expose container port %d so that other workloads can reach it. "+
					"Use the v1 API and keep the configuration minimal.",
				name, image, app, port),
			ReferenceYAML: fmt.Sprintf(`apiVersion: v1
kind: Pod
metadata:
  name: %s
  labels:
    app: %s
spec:
  containers:
  - name: %s # *
    image: %s
    ports:
    - containerPort: %d
`, name, app, name, image, port),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l app=%s --timeout=60s
pod=$(kubectl get pods -l app=%s --output=jsonpath={.items..metadata.name})
if [ -z "$pod" ]; then
  exit 1
fi
image=$(kubectl get pod $pod -o=jsonpath='{.spec.containers[0].image}')
port=$(kubectl get pod $pod -o=jsonpath='{.spec.containers[0].ports[0].containerPort}')
pod_ip=$(kubectl get pod $pod -o=jsonpath='{.status.podIP}')
code=$(curl -s -o /dev/null -w "%%{http_code}" $pod_ip:%d)
if [[ $image == "%s" && $port == "%d" && $code == "200" ]]; then
  echo unit_test_passed
fi
`, app, app, port, image, port),
			Source: "kubernetes.io/docs/concepts/workloads/pods",
		}
	},
	// Pod with environment variables.
	func(i int) Problem {
		name := pick(vocabNames, i) + "-env-pod"
		image := pick(vocabImages, i+1)
		envName := fmt.Sprintf("%s_HOST", upper(pick(vocabNames, i+2)))
		envValue := fmt.Sprintf("%s.svc.cluster.local", pick(vocabNames, i+2))
		portName := fmt.Sprintf("%s_PORT", upper(pick(vocabNames, i+2)))
		portVal := pick(vocabPorts, i+1)
		return Problem{
			Question: fmt.Sprintf(
				"Create a Pod manifest named %q using image %q. The container needs two environment variables: "+
					"%s set to %q and %s set to \"%d\" (as a string). Label the pod app: %s.",
				name, image, envName, envValue, portName, portVal, name),
			ReferenceYAML: fmt.Sprintf(`apiVersion: v1
kind: Pod
metadata:
  name: %s
  labels:
    app: %s
spec:
  containers:
  - name: main # *
    image: %s
    env:
    - name: %s
      value: %s
    - name: %s
      value: "%d"
`, name, name, image, envName, envValue, portName, portVal),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l app=%s --timeout=60s
env_vars=$(kubectl get pods --selector=app=%s -o=jsonpath='{.items[0].spec.containers[0].env[*].name}')
host_val=$(kubectl get pods --selector=app=%s -o=jsonpath='{.items[0].spec.containers[0].env[0].value}')
if [[ $env_vars == *"%s"* && $env_vars == *"%s"* && $host_val == "%s" ]]; then
  echo unit_test_passed
fi
`, name, name, name, envName, portName, envValue),
			Source: "kubernetes.io/docs/tasks/inject-data-application/define-environment-variable-container",
		}
	},
	// Pod with resource limits.
	func(i int) Problem {
		name := pick(vocabNames, i) + "-limits"
		image := pick(vocabImages, i)
		cpu := pick(vocabCPU, i)
		mem := pick(vocabMem, i)
		return Problem{
			Question: fmt.Sprintf(
				"I need a Pod spec for a container called %q running %q whose resource limits are capped at %s CPU "+
					"and %s of memory. Name the pod %q and give it the label app: %s so our selectors find it.",
				name, image, cpu, mem, name, name),
			ReferenceYAML: fmt.Sprintf(`apiVersion: v1
kind: Pod
metadata:
  name: %s
  labels:
    app: %s
spec:
  containers:
  - name: %s
    image: %s
    resources:
      limits:
        cpu: %s
        memory: %s
`, name, name, name, image, cpu, mem),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l app=%s --timeout=60s
pod=$(kubectl get pods -l app=%s --output=jsonpath={.items..metadata.name})
cpu_limit=$(kubectl get pod $pod -o=jsonpath='{.spec.containers[0].resources.limits.cpu}')
memory_limit=$(kubectl get pod $pod -o=jsonpath='{.spec.containers[0].resources.limits.memory}')
if [ "$cpu_limit" == "%s" ] && [ "$memory_limit" == "%s" ]; then
  echo unit_test_passed
fi
`, name, name, cpu, mem),
			Source: "kubernetes.io/docs/concepts/configuration/manage-resources-containers",
		}
	},
	// Pod in a non-default namespace.
	func(i int) Problem {
		ns := pick(vocabNS[1:], i)
		name := pick(vocabNames, i+3) + "-ns-pod"
		image := pick(vocabImages, i+2)
		return Problem{
			Question: fmt.Sprintf(
				"Our %s namespace already exists. Provide a Pod YAML that deploys image %q into it under the name %q, "+
					"labeled tier: %s. The manifest must set metadata.namespace explicitly.",
				ns, image, name, pick(vocabNames, i)),
			ReferenceYAML: fmt.Sprintf(`apiVersion: v1
kind: Pod
metadata:
  name: %s
  namespace: %s
  labels:
    tier: %s
spec:
  containers:
  - name: app # *
    image: %s
`, name, ns, pick(vocabNames, i), image),
			UnitTest: fmt.Sprintf(`kubectl create ns %s
kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l tier=%s -n %s --timeout=60s
found=$(kubectl get pods -n %s -l tier=%s --output=jsonpath={.items..metadata.name})
if [ "$found" == "%s" ]; then
  echo unit_test_passed
fi
`, ns, pick(vocabNames, i), ns, ns, pick(vocabNames, i), name),
			Source: "stackoverflow.com/questions/55382591",
		}
	},
	// Pod with an explicit command.
	func(i int) Problem {
		name := pick(vocabNames, i+5) + "-cmd"
		msg := fmt.Sprintf("booting %s", pick(vocabNames, i+5))
		return Problem{
			Question: fmt.Sprintf(
				"Write a Pod manifest named %q that runs busybox:1.36 with the command [\"sh\", \"-c\"] and the argument "+
					"\"echo %s && sleep 3600\". Label it app: %s.",
				name, msg, name),
			ReferenceYAML: fmt.Sprintf(`apiVersion: v1
kind: Pod
metadata:
  name: %s
  labels:
    app: %s
spec:
  containers:
  - name: shell
    image: busybox:1.36
    command:
    - sh
    - -c
    args:
    - echo %s && sleep 3600
`, name, name, msg),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l app=%s --timeout=60s
cmd=$(kubectl get pod %s -o=jsonpath='{.spec.containers[0].command[0]}')
img=$(kubectl get pod %s -o=jsonpath='{.spec.containers[0].image}')
if [[ $cmd == "sh" && $img == "busybox:1.36" ]]; then
  echo unit_test_passed
fi
`, name, name, name),
			Source: "kubernetes.io/docs/tasks/inject-data-application/define-command-argument-container",
		}
	},
	// Multi-container pod.
	func(i int) Problem {
		name := pick(vocabNames, i+7) + "-sidecar"
		mainImage := pick(vocabImages, i)
		sideImage := "busybox:1.36"
		return Problem{
			Question: fmt.Sprintf(
				"Define a two-container Pod called %q: the first container %q runs %q, the second container "+
					"\"sidecar\" runs %q. Both containers share the pod; label it app: %s.",
				name, "main", mainImage, sideImage, name),
			ReferenceYAML: fmt.Sprintf(`apiVersion: v1
kind: Pod
metadata:
  name: %s
  labels:
    app: %s
spec:
  containers:
  - name: main
    image: %s
  - name: sidecar
    image: %s
`, name, name, mainImage, sideImage),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l app=%s --timeout=60s
names=$(kubectl get pod %s -o=jsonpath='{.spec.containers[*].name}')
if [[ $names == *"main"* && $names == *"sidecar"* ]]; then
  echo unit_test_passed
fi
`, name, name),
			Source: "kubernetes.io/docs/concepts/workloads/pods/#how-pods-manage-multiple-containers",
		}
	},
}

var daemonSetSeeds = []seedFunc{
	// Registry proxy with hostPort (Appendix C sample #1 family).
	func(i int) Problem {
		name := pick(vocabNames, i) + "-registry-proxy"
		app := pick(vocabNames, i) + "-registry"
		hostPort := 5000 + i%4*100
		cpu := pick(vocabCPU, i)
		mem := pick(vocabMem, i)
		return Problem{
			Question: fmt.Sprintf(
				"Create a DaemonSet configuration. This DaemonSet should run the latest nginx image labeled as "+
					"\"app: %s\" and expose a registry service on port 80 (with hostPort %d). The environment variables "+
					"REGISTRY_HOST and REGISTRY_PORT should be set to %q and \"%d\" respectively. "+
					"Ensure the CPU limit is set to %s and memory limit is set to %s.",
				app, hostPort, app+".svc.cluster.local", hostPort, cpu, mem),
			ReferenceYAML: fmt.Sprintf(`apiVersion: apps/v1
kind: DaemonSet
metadata:
  name: %s # *
spec:
  selector:
    matchLabels:
      app: %s
  template:
    metadata:
      labels:
        app: %s
    spec:
      containers:
      - name: %s # *
        image: nginx:latest
        resources:
          limits:
            cpu: %s
            memory: %s
        env:
        - name: REGISTRY_HOST
          value: %s.svc.cluster.local
        - name: REGISTRY_PORT
          value: "%d"
        ports:
        - name: registry # *
          containerPort: 80
          hostPort: %d
`, name, app, app, name, cpu, mem, app, hostPort, hostPort),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l app=%s --timeout=60s
passed_tests=0
total_tests=3
pods=$(kubectl get pods -l app=%s --output=jsonpath={.items..metadata.name})
host_ip=$(kubectl get pod $pods -o=jsonpath='{.status.hostIP}')
curl_output=$(curl -s -o /dev/null -w "%%{http_code}" $host_ip:%d)
if [ "$curl_output" == "200" ]; then
  ((passed_tests++))
else
  exit 1
fi
env_vars=$(kubectl get pods --selector=app=%s -o=jsonpath='{.items[0].spec.containers[0].env[*].name}')
if [[ $env_vars == *"REGISTRY_HOST"* && $env_vars == *"REGISTRY_PORT"* ]]; then
  ((passed_tests++))
fi
cpu_limit=$(kubectl get pod $pods -o=jsonpath='{.spec.containers[0].resources.limits.cpu}')
memory_limit=$(kubectl get pod $pods -o=jsonpath='{.spec.containers[0].resources.limits.memory}')
if [ "$cpu_limit" == "%s" ] && [ "$memory_limit" == "%s" ]; then
  ((passed_tests++))
fi
if [ $passed_tests -eq $total_tests ]; then
  echo unit_test_passed
fi
`, app, app, hostPort, app, cpu, mem),
			Source: "kubernetes.io/docs/concepts/workloads/controllers/daemonset (adapted)",
		}
	},
	// Log collection agent.
	func(i int) Problem {
		name := pick(vocabNames, i+2) + "-log-agent"
		image := pick(vocabImages, i+3)
		return Problem{
			Question: fmt.Sprintf(
				"We roll a log collection agent onto every node. Write a DaemonSet named %q whose pod template runs "+
					"image %q with the label daemon: %s. After it is applied, the DaemonSet must report one ready pod "+
					"on our single-node cluster.",
				name, image, name),
			ReferenceYAML: fmt.Sprintf(`apiVersion: apps/v1
kind: DaemonSet
metadata:
  name: %s
spec:
  selector:
    matchLabels:
      daemon: %s
  template:
    metadata:
      labels:
        daemon: %s
    spec:
      containers:
      - name: agent # *
        image: %s
`, name, name, name, image),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l daemon=%s --timeout=60s
ready=$(kubectl get daemonset %s -o=jsonpath='{.status.numberReady}')
if [ "$ready" == "1" ]; then
  echo unit_test_passed
fi
`, name, name),
			Source: "kubernetes.io/docs/concepts/workloads/controllers/daemonset",
		}
	},
	// Node metrics exporter with hostPort.
	func(i int) Problem {
		name := pick(vocabNames, i+4) + "-exporter"
		port := 9100 + i%5
		return Problem{
			Question: fmt.Sprintf(
				"Provide a DaemonSet YAML for a node metrics exporter named %q. It runs nginx:1.25, is labeled "+
					"app: %s, and publishes container port %d with an identical hostPort so the scraper can reach "+
					"every node directly.",
				name, name, port),
			ReferenceYAML: fmt.Sprintf(`apiVersion: apps/v1
kind: DaemonSet
metadata:
  name: %s
spec:
  selector:
    matchLabels:
      app: %s
  template:
    metadata:
      labels:
        app: %s
    spec:
      containers:
      - name: exporter # *
        image: nginx:1.25
        ports:
        - containerPort: %d
          hostPort: %d
`, name, name, name, port, port),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l app=%s --timeout=60s
pod=$(kubectl get pods -l app=%s --output=jsonpath={.items..metadata.name})
host_ip=$(kubectl get pod $pod -o=jsonpath='{.status.hostIP}')
code=$(curl -s -o /dev/null -w "%%{http_code}" $host_ip:%d)
if [ "$code" == "200" ]; then
  echo unit_test_passed
fi
`, name, name, port),
			Source: "github.com/prometheus/node_exporter (deployment docs, adapted)",
		}
	},
	// DaemonSet with resource limits and env.
	func(i int) Problem {
		name := pick(vocabNames, i+6) + "-sync"
		cpu := pick(vocabCPU, i+1)
		mem := pick(vocabMem, i+1)
		level := pick([]string{"debug", "info", "warn"}, i)
		return Problem{
			Question: fmt.Sprintf(
				"Write a DaemonSet called %q (label run: %s) running redis:7 with a LOG_LEVEL environment variable "+
					"set to %q. Cap each pod at %s CPU and %s memory.",
				name, name, level, cpu, mem),
			ReferenceYAML: fmt.Sprintf(`apiVersion: apps/v1
kind: DaemonSet
metadata:
  name: %s
spec:
  selector:
    matchLabels:
      run: %s
  template:
    metadata:
      labels:
        run: %s
    spec:
      containers:
      - name: sync # *
        image: redis:7
        env:
        - name: LOG_LEVEL
          value: %s
        resources:
          limits:
            cpu: %s
            memory: %s
`, name, name, name, level, cpu, mem),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l run=%s --timeout=60s
pod=$(kubectl get pods -l run=%s --output=jsonpath={.items..metadata.name})
lvl=$(kubectl get pod $pod -o=jsonpath='{.spec.containers[0].env[0].value}')
cpu=$(kubectl get pod $pod -o=jsonpath='{.spec.containers[0].resources.limits.cpu}')
if [[ $lvl == "%s" && $cpu == "%s" ]]; then
  echo unit_test_passed
fi
`, name, name, level, cpu),
			Source: "stackoverflow.com/questions/59190954 (adapted)",
		}
	},
}

// deploymentContext renders the standard nginx-style deployment used as
// YAML context for service problems.
func deploymentContext(app, image string, replicas, port int) string {
	return fmt.Sprintf(`apiVersion: apps/v1
kind: Deployment
metadata:
  name: %s-deployment
spec:
  replicas: %d
  selector:
    matchLabels:
      app: %s
  template:
    metadata:
      labels:
        app: %s
    spec:
      containers:
      - name: %s-container
        image: %s
        ports:
        - containerPort: %d
`, app, replicas, app, app, app, image, port)
}

var serviceSeeds = []seedFunc{
	// LoadBalancer service (Appendix C sample #2 family).
	func(i int) Problem {
		app := pick(vocabNames, i)
		image := pick(vocabImages, i)
		port := 80
		ctx := deploymentContext(app, image, 3, port)
		return Problem{
			Question: fmt.Sprintf(
				"Given the following YAML, please help me create a service with load balancer that uses the %s "+
					"selector, exposed on port %d. It should be accessible via browser.",
				app, port),
			ContextYAML: ctx,
			ReferenceYAML: fmt.Sprintf(`apiVersion: v1
kind: Service
metadata:
  name: %s-service # *
spec:
  selector:
    app: %s
  ports:
  - name: http
    port: %d
    targetPort: %d
  type: LoadBalancer
`, app, app, port, port),
			UnitTest: fmt.Sprintf(`echo "%s" | kubectl apply -f -
kubectl wait --for=condition=ready deployment --all --timeout=15s
kubectl apply -f labeled_code.yaml
sleep 15
kubectl get svc
svc=$(kubectl get svc --output=jsonpath={.items[0].metadata.name})
timeout -s INT 8s minikube service $svc > bash_output.txt 2>&1
cat bash_output.txt
grep "Opening service default/$svc in default browser..." bash_output.txt && echo unit_test_passed
`, escapeForEcho(ctx)),
			Source: "kubernetes.io/docs/tutorials/stateless-application/expose-external-ip-address",
		}
	},
	// NodePort service.
	func(i int) Problem {
		app := pick(vocabNames, i+1)
		image := pick(vocabImages, i+1)
		port := pick(vocabPorts, i)
		ctx := deploymentContext(app, image, 2, port)
		return Problem{
			Question: fmt.Sprintf(
				"The deployment below is already written. Add a NodePort Service named %q that selects app: %s "+
					"and forwards service port %d to the pods' port %d, so the app answers on the node's IP.",
				app+"-nodeport", app, port, port),
			ContextYAML: ctx,
			ReferenceYAML: fmt.Sprintf(`apiVersion: v1
kind: Service
metadata:
  name: %s-nodeport # *
spec:
  type: NodePort
  selector:
    app: %s
  ports:
  - port: %d
    targetPort: %d
`, app, app, port, port),
			UnitTest: fmt.Sprintf(`echo "%s" | kubectl apply -f -
kubectl wait --for=condition=ready deployment --all --timeout=15s
kubectl apply -f labeled_code.yaml
sleep 5
node_port=$(kubectl get svc --output=jsonpath={.items[0].spec.ports[0].nodePort})
node_ip=$(minikube ip)
code=$(curl -s -o /dev/null -w "%%{http_code}" $node_ip:$node_port)
if [ "$code" == "200" ]; then
  echo unit_test_passed
fi
`, escapeForEcho(ctx)),
			Source: "stackoverflow.com/questions/41509439 (adapted)",
		}
	},
	// ClusterIP service reached through cluster DNS.
	func(i int) Problem {
		app := pick(vocabNames, i+2)
		image := pick(vocabImages, i+2)
		port := pick(vocabPorts, i+2)
		ctx := deploymentContext(app, image, 2, port)
		svcName := app + "-internal"
		return Problem{
			Question: fmt.Sprintf(
				"Using the deployment below as context, write a ClusterIP Service named %q for in-cluster access "+
					"only: selector app: %s, service port %d targeting container port %d.",
				svcName, app, port, port),
			ContextYAML: ctx,
			ReferenceYAML: fmt.Sprintf(`apiVersion: v1
kind: Service
metadata:
  name: %s # *
spec:
  selector:
    app: %s
  ports:
  - port: %d
    targetPort: %d
`, svcName, app, port, port),
			UnitTest: fmt.Sprintf(`echo "%s" | kubectl apply -f -
kubectl wait --for=condition=ready deployment --all --timeout=15s
kubectl apply -f labeled_code.yaml
sleep 5
svc=$(kubectl get svc --output=jsonpath={.items[0].metadata.name})
code=$(curl -s -o /dev/null -w "%%{http_code}" $svc.default.svc.cluster.local:%d)
typ=$(kubectl get svc $svc -o=jsonpath='{.spec.type}')
if [ "$code" == "200" ] && [ "$typ" != "NodePort" ] && [ "$typ" != "LoadBalancer" ]; then
  echo unit_test_passed
fi
`, escapeForEcho(ctx), port),
			Source: "kubernetes.io/docs/concepts/services-networking/service",
		}
	},
}

var jobSeeds = []seedFunc{
	// One-shot computation job.
	func(i int) Problem {
		name := pick(vocabNames, i) + "-calc"
		digits := 1000 + i*500
		return Problem{
			Question: fmt.Sprintf(
				"Write a Job manifest named %q that computes pi to %d places using perl:5.34.0 with the command "+
					"perl -Mbignum=bpi -wle 'print bpi(%d)'. Set restartPolicy to Never. The job must run to "+
					"completion.",
				name, digits, digits),
			ReferenceYAML: fmt.Sprintf(`apiVersion: batch/v1
kind: Job
metadata:
  name: %s
spec:
  template:
    spec:
      containers:
      - name: pi # *
        image: perl:5.34.0
        command:
        - perl
        - -Mbignum=bpi
        - -wle
        - print bpi(%d)
      restartPolicy: Never
`, name, digits),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=complete job/%s --timeout=120s
succeeded=$(kubectl get job %s -o=jsonpath='{.status.succeeded}')
if [ "$succeeded" == "1" ]; then
  echo unit_test_passed
fi
`, name, name),
			Source: "kubernetes.io/docs/concepts/workloads/controllers/job",
		}
	},
	// Job with a backoff limit.
	func(i int) Problem {
		name := pick(vocabNames, i+1) + "-migrate"
		backoff := 2 + i%4
		image := pick(vocabImages, i+4)
		return Problem{
			Question: fmt.Sprintf(
				"Our database migration runs as a Job named %q with image %q. Configure backoffLimit: %d so a "+
					"broken migration does not retry forever, and restartPolicy: OnFailure.",
				name, image, backoff),
			ReferenceYAML: fmt.Sprintf(`apiVersion: batch/v1
kind: Job
metadata:
  name: %s
spec:
  backoffLimit: %d
  template:
    spec:
      containers:
      - name: migrate # *
        image: %s
      restartPolicy: OnFailure
`, name, backoff, image),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
limit=$(kubectl get job %s -o=jsonpath='{.spec.backoffLimit}')
kubectl wait --for=condition=complete job/%s --timeout=120s
if [ "$limit" == "%d" ]; then
  echo unit_test_passed
fi
`, name, name, backoff),
			Source: "kubernetes.io/docs/concepts/workloads/controllers/job/#pod-backoff-failure-policy",
		}
	},
	// Parallel job with completions.
	func(i int) Problem {
		name := pick(vocabNames, i+2) + "-fanout"
		completions := 3 + i%3
		parallelism := 1 + i%3
		return Problem{
			Question: fmt.Sprintf(
				"Define a Job %q running busybox:1.36 with %d completions and parallelism %d "+
					"(a work-queue style fan-out). restartPolicy must be Never.",
				name, completions, parallelism),
			ReferenceYAML: fmt.Sprintf(`apiVersion: batch/v1
kind: Job
metadata:
  name: %s
spec:
  completions: %d
  parallelism: %d
  template:
    spec:
      containers:
      - name: work # *
        image: busybox:1.36
      restartPolicy: Never
`, name, completions, parallelism),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
comp=$(kubectl get job %s -o=jsonpath='{.spec.completions}')
par=$(kubectl get job %s -o=jsonpath='{.spec.parallelism}')
if [[ $comp == "%d" && $par == "%d" ]]; then
  echo unit_test_passed
fi
`, name, name, completions, parallelism),
			Source: "kubernetes.io/docs/concepts/workloads/controllers/job/#parallel-jobs",
		}
	},
}

var deploymentSeeds = []seedFunc{
	// Basic replicated deployment.
	func(i int) Problem {
		app := pick(vocabNames, i)
		image := pick(vocabImages, i)
		replicas := 2 + i%4
		port := pick(vocabPorts, i)
		return Problem{
			Question: fmt.Sprintf(
				"Write a Deployment manifest for %q: %d replicas of image %q, selector and pod labels app: %s, "+
					"container port %d. After applying it, every replica must become ready.",
				app+"-deployment", replicas, image, app, port),
			ReferenceYAML: deploymentContext(app, image, replicas, port),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=available deployment --all --timeout=60s
ready=$(kubectl get deployment --output=jsonpath={.items[0].status.readyReplicas})
if [ "$ready" == "%d" ]; then
  echo unit_test_passed
fi
`, replicas),
			Source: "kubernetes.io/docs/concepts/workloads/controllers/deployment",
		}
	},
	// Deployment with env from literal values.
	func(i int) Problem {
		app := pick(vocabNames, i+3)
		mode := pick([]string{"production", "staging", "canary"}, i)
		return Problem{
			Question: fmt.Sprintf(
				"Create a Deployment named %q (1 replica, image node:20-alpine, labels app: %s) whose container "+
					"sets the environment variable APP_MODE=%s.",
				app+"-app", app, mode),
			ReferenceYAML: fmt.Sprintf(`apiVersion: apps/v1
kind: Deployment
metadata:
  name: %s-app
spec:
  replicas: 1
  selector:
    matchLabels:
      app: %s
  template:
    metadata:
      labels:
        app: %s
    spec:
      containers:
      - name: app # *
        image: node:20-alpine
        env:
        - name: APP_MODE
          value: %s
`, app, app, app, mode),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=available deployment --all --timeout=60s
mode=$(kubectl get pods -l app=%s -o=jsonpath='{.items[0].spec.containers[0].env[0].value}')
if [ "$mode" == "%s" ]; then
  echo unit_test_passed
fi
`, app, mode),
			Source: "stackoverflow.com/questions/49694646 (adapted)",
		}
	},
	// Deployment with rolling-update strategy knobs.
	func(i int) Problem {
		app := pick(vocabNames, i+5)
		surge := 1 + i%2
		unavailable := i % 2
		return Problem{
			Question: fmt.Sprintf(
				"Our %q deployment (image httpd:2.4, 3 replicas, labels app: %s) must use a RollingUpdate strategy "+
					"with maxSurge %d and maxUnavailable %d. Provide the complete YAML.",
				app+"-rolling", app, surge, unavailable),
			ReferenceYAML: fmt.Sprintf(`apiVersion: apps/v1
kind: Deployment
metadata:
  name: %s-rolling
spec:
  replicas: 3
  strategy:
    type: RollingUpdate
    rollingUpdate:
      maxSurge: %d
      maxUnavailable: %d
  selector:
    matchLabels:
      app: %s
  template:
    metadata:
      labels:
        app: %s
    spec:
      containers:
      - name: httpd # *
        image: httpd:2.4
`, app, surge, unavailable, app, app),
			UnitTest: fmt.Sprintf(`kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=available deployment --all --timeout=60s
surge=$(kubectl get deployment %s-rolling -o=jsonpath='{.spec.strategy.rollingUpdate.maxSurge}')
unavail=$(kubectl get deployment %s-rolling -o=jsonpath='{.spec.strategy.rollingUpdate.maxUnavailable}')
if [[ $surge == "%d" && $unavail == "%d" ]]; then
  echo unit_test_passed
fi
`, app, app, surge, unavailable),
			Source: "kubernetes.io/docs/concepts/workloads/controllers/deployment/#rolling-update-deployment",
		}
	},
}

func upper(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		out[i] = c
	}
	return string(out)
}

// escapeForEcho protects a YAML block so it survives inside a double-
// quoted echo argument in the unit test script.
func escapeForEcho(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"', '\\', '$', '`':
			out = append(out, '\\')
		}
		out = append(out, s[i])
	}
	return string(out)
}
