package yamlx

import (
	"crypto/sha256"
	"sync/atomic"

	"cloudeval/internal/memo"
)

// The parsed-document cache: YAML sources are content-addressed by
// digest and parsed exactly once per process. The evaluation cold path
// re-reads the same texts constantly — every kubectl apply of
// labeled_code.yaml re-parses the candidate answer, every score
// recomputation re-parses the reference — so a cache miss in the
// engine no longer implies a re-parse here.
//
// Cached documents are shared across goroutines and MUST be treated as
// immutable. Callers that mutate parsed trees (the llm answer
// corruptors, kubesim.Apply's stored manifests) deep-copy first; a
// Node.Clone of a cached tree is still far cheaper than a re-parse.
// Parse errors are cached too, so a malformed answer sampled at high
// temperature is diagnosed once, not once per metric.
//
// Unlike the shell's script cache, this cache is fed by
// model-generated answer text, which a long-lived daemon sampling at
// nonzero temperature makes unbounded — hence the entry cap (see the
// memo package): a full cache serves what it holds and parses the
// rest fresh instead of growing forever.

type docOutcome struct {
	docs []*Node
	err  error
}

var (
	docCacheOn atomic.Bool
	docCache   = memo.New[[sha256.Size]byte, *docOutcome](1 << 16)
)

func init() { docCacheOn.Store(true) }

// SetDocCache toggles the process-wide parsed-document cache and
// returns the previous setting. It exists for cold-path benchmarks and
// tests that need the raw parse cost; production callers leave it
// enabled.
func SetDocCache(enabled bool) (prev bool) {
	return docCacheOn.Swap(enabled)
}

// ParseAllCached is ParseAll through the content-addressed document
// cache. The returned nodes are shared: callers must not mutate them.
// Use CloneDocs when mutation is needed.
func ParseAllCached(data []byte) ([]*Node, error) {
	if !docCacheOn.Load() {
		return ParseAll(data)
	}
	o := docCache.Do(sha256.Sum256(data), func() *docOutcome {
		docs, err := ParseAll(data)
		return &docOutcome{docs: docs, err: err}
	})
	return o.docs, o.err
}

// ParseCachedString is Parse through the document cache: the first
// non-empty document of the stream, shared and immutable.
func ParseCachedString(s string) (*Node, error) {
	docs, err := ParseAllCached([]byte(s))
	if err != nil {
		return nil, err
	}
	for _, d := range docs {
		if d != nil && d.Kind != NullKind {
			return d, nil
		}
	}
	if len(docs) > 0 {
		return docs[0], nil
	}
	return Null(), nil
}

// CloneDocs deep-copies a document slice, for callers that parse
// through the cache but need to mutate the result.
func CloneDocs(docs []*Node) []*Node {
	out := make([]*Node, len(docs))
	for i, d := range docs {
		out[i] = d.Clone()
	}
	return out
}

// ShallowClone copies the node itself — including its Entries or Items
// slice header and backing array — while sharing the child nodes. The
// copy's own shape can be changed (Set, Append, Delete) without
// affecting the original; the shared children must still be treated as
// immutable. This is the copy-on-write primitive the kubesim status
// path uses to decorate stored manifests without deep-copying them.
func (n *Node) ShallowClone() *Node {
	if n == nil {
		return nil
	}
	c := *n
	if n.Kind == MapKind {
		c.Entries = make([]Entry, len(n.Entries), len(n.Entries)+2)
		copy(c.Entries, n.Entries)
	}
	if n.Kind == SeqKind {
		c.Items = make([]*Node, len(n.Items))
		copy(c.Items, n.Items)
	}
	return &c
}
