package yamlx

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError describes a parse failure with its source line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("yaml: line %d: %s", e.Line, e.Msg)
}

func errAt(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse parses a single YAML document. If the input contains multiple
// documents, the first non-empty one is returned.
func Parse(data []byte) (*Node, error) {
	docs, err := ParseAll(data)
	if err != nil {
		return nil, err
	}
	for _, d := range docs {
		if d != nil && d.Kind != NullKind {
			return d, nil
		}
	}
	if len(docs) > 0 {
		return docs[0], nil
	}
	return Null(), nil
}

// ParseString is Parse on a string.
func ParseString(s string) (*Node, error) { return Parse([]byte(s)) }

// ParseAll parses a multi-document YAML stream separated by "---" lines.
func ParseAll(data []byte) ([]*Node, error) {
	lines := splitLines(string(data))
	var docs []*Node
	start := 0
	flush := func(end int) error {
		chunk := lines[start:end]
		if !allBlank(chunk) {
			p := &parser{lines: chunk}
			n, err := p.parseDocument()
			if err != nil {
				return err
			}
			docs = append(docs, n)
		}
		return nil
	}
	for i, ln := range lines {
		t := ln.content
		if t == "---" || strings.HasPrefix(t, "--- ") {
			if err := flush(i); err != nil {
				return nil, err
			}
			// "--- inline content" puts content back on the same line.
			rest := strings.TrimSpace(strings.TrimPrefix(t, "---"))
			lines[i].text = strings.Repeat(" ", ln.indent) + rest
			lines[i].content = rest
			if rest == "" {
				start = i + 1
			} else {
				start = i
			}
			continue
		}
		if t == "..." {
			if err := flush(i); err != nil {
				return nil, err
			}
			start = i + 1
		}
	}
	if err := flush(len(lines)); err != nil {
		return nil, err
	}
	if len(docs) == 0 {
		docs = append(docs, Null())
	}
	return docs, nil
}

type srcLine struct {
	num     int    // 1-based
	indent  int    // count of leading spaces
	text    string // raw line (tabs expanded)
	content string // text with surrounding whitespace trimmed
}

func splitLines(s string) []srcLine {
	if strings.Contains(s, "\r\n") {
		s = strings.ReplaceAll(s, "\r\n", "\n")
	}
	raw := strings.Split(s, "\n")
	out := make([]srcLine, 0, len(raw))
	for i, ln := range raw {
		if strings.IndexByte(ln, '\t') >= 0 {
			ln = strings.ReplaceAll(ln, "\t", "  ")
		}
		ind := 0
		for ind < len(ln) && ln[ind] == ' ' {
			ind++
		}
		out = append(out, srcLine{num: i + 1, indent: ind, text: ln, content: strings.TrimSpace(ln)})
	}
	return out
}

func allBlank(lines []srcLine) bool {
	for _, ln := range lines {
		t := ln.content
		if t != "" && !strings.HasPrefix(t, "#") {
			return false
		}
	}
	return true
}

type parser struct {
	lines []srcLine
	pos   int
}

func (p *parser) peek() (srcLine, bool) {
	for i := p.pos; i < len(p.lines); i++ {
		t := p.lines[i].content
		if t == "" || t[0] == '#' {
			continue
		}
		return p.lines[i], true
	}
	return srcLine{}, false
}

func (p *parser) advanceTo(ln srcLine) {
	for p.pos < len(p.lines) {
		if p.lines[p.pos].num == ln.num {
			p.pos++
			return
		}
		p.pos++
	}
}

func (p *parser) parseDocument() (*Node, error) {
	ln, ok := p.peek()
	if !ok {
		return Null(), nil
	}
	n, err := p.parseBlock(ln.indent)
	if err != nil {
		return nil, err
	}
	if extra, ok := p.peek(); ok {
		return nil, errAt(extra.num, "unexpected content %q after document", strings.TrimSpace(extra.text))
	}
	return n, nil
}

// parseBlock parses a block node whose first line is indented exactly at
// or beyond min indent. The node ends at the first line with indent
// below the block's own indent.
func (p *parser) parseBlock(minIndent int) (*Node, error) {
	ln, ok := p.peek()
	if !ok || ln.indent < minIndent {
		return Null(), nil
	}
	content := ln.content
	if strings.HasPrefix(content, "- ") || content == "-" {
		return p.parseSequence(ln.indent)
	}
	if k, _, isMap := splitKey(stripComment(content)); isMap && k != "" {
		return p.parseMapping(ln.indent)
	}
	// Bare scalar document (possibly multi-line flow).
	p.advanceTo(ln)
	val, comment := splitValueComment(content)
	node, err := parseFlowOrScalar(val, ln.num, p)
	if err != nil {
		return nil, err
	}
	node.Comment = comment
	node.Line = ln.num
	return node, nil
}

func (p *parser) parseMapping(indent int) (*Node, error) {
	m := Map()
	first := true
	for {
		ln, ok := p.peek()
		if !ok || ln.indent < indent {
			return m, nil
		}
		if ln.indent > indent {
			return nil, errAt(ln.num, "bad indentation in mapping (got %d, want %d)", ln.indent, indent)
		}
		content := ln.content
		if strings.HasPrefix(content, "- ") || content == "-" {
			if first {
				return nil, errAt(ln.num, "sequence item where mapping expected")
			}
			return m, nil
		}
		key, rest, isMap := splitKey(stripComment(content))
		if !isMap {
			return nil, errAt(ln.num, "expected key: value, got %q", content)
		}
		first = false
		p.advanceTo(ln)
		_, comment := splitValueComment(content)
		var val *Node
		var err error
		switch {
		case rest == "":
			val, err = p.parseNested(ln, indent)
		case rest == "|" || rest == "|-" || rest == "|+" || rest == ">" || rest == ">-" || rest == ">+":
			val, err = p.parseBlockScalar(rest, indent, ln.num)
		default:
			val, err = parseFlowOrScalar(rest, ln.num, p)
		}
		if err != nil {
			return nil, err
		}
		val.Comment = comment
		if val.Line == 0 {
			val.Line = ln.num
		}
		if m.Has(key) {
			return nil, errAt(ln.num, "duplicate mapping key %q", key)
		}
		m.Set(key, val)
		m.Line = firstNonZero(m.Line, ln.num)
	}
}

// parseNested parses the value of "key:" with nothing after the colon:
// either a more-indented block, a sequence at the same indent, or null.
func (p *parser) parseNested(keyLine srcLine, keyIndent int) (*Node, error) {
	next, ok := p.peek()
	if !ok {
		return Null(), nil
	}
	nc := next.content
	isSeq := strings.HasPrefix(nc, "- ") || nc == "-"
	switch {
	case next.indent > keyIndent:
		return p.parseBlock(next.indent)
	case next.indent == keyIndent && isSeq:
		// YAML permits sequences under a key at the key's own indent.
		return p.parseSequence(next.indent)
	default:
		return Null(), nil
	}
}

func (p *parser) parseSequence(indent int) (*Node, error) {
	s := Seq()
	for {
		ln, ok := p.peek()
		if !ok || ln.indent != indent {
			if ok && ln.indent > indent {
				return nil, errAt(ln.num, "bad indentation in sequence")
			}
			return s, nil
		}
		content := ln.content
		if !strings.HasPrefix(content, "-") || (len(content) > 1 && content[1] != ' ') {
			return s, nil
		}
		p.advanceTo(ln)
		rest := strings.TrimSpace(content[1:])
		itemIndent := ln.indent + 2 // "- " consumes two columns
		if rest == "" {
			// Item entirely on following more-indented lines.
			next, ok := p.peek()
			if !ok || next.indent <= ln.indent {
				s.Append(Null())
				continue
			}
			item, err := p.parseBlock(next.indent)
			if err != nil {
				return nil, err
			}
			s.Append(item)
			continue
		}
		restNoComment := stripComment(rest)
		_, comment := splitValueComment(rest)
		if strings.HasPrefix(restNoComment, "- ") || restNoComment == "-" {
			// Nested sequence starting on the dash line: re-enter with a
			// synthetic line. Simplest correct handling: treat the text
			// after "- " as the first item of a nested sequence indented
			// at itemIndent.
			sub, err := p.parseInlineSeqItem(rest, ln, itemIndent)
			if err != nil {
				return nil, err
			}
			s.Append(sub)
			continue
		}
		if key, krest, isMap := splitKey(restNoComment); isMap && key != "" {
			item, err := p.parseInlineMapItem(key, krest, comment, ln, itemIndent)
			if err != nil {
				return nil, err
			}
			s.Append(item)
			continue
		}
		val, err := parseFlowOrScalar(restNoComment, ln.num, p)
		if err != nil {
			return nil, err
		}
		val.Comment = comment
		val.Line = ln.num
		s.Append(val)
	}
}

// parseInlineMapItem parses a sequence item whose first mapping entry sits
// on the dash line: "- key: value" followed by further entries indented
// at itemIndent.
func (p *parser) parseInlineMapItem(key, rest, comment string, ln srcLine, itemIndent int) (*Node, error) {
	m := Map()
	m.Line = ln.num
	var val *Node
	var err error
	switch {
	case rest == "":
		val, err = p.parseNestedAfterDash(itemIndent)
	case rest == "|" || rest == "|-" || rest == "|+" || rest == ">" || rest == ">-" || rest == ">+":
		val, err = p.parseBlockScalar(rest, itemIndent-2, ln.num)
	default:
		val, err = parseFlowOrScalar(rest, ln.num, p)
	}
	if err != nil {
		return nil, err
	}
	val.Comment = comment
	if val.Line == 0 {
		val.Line = ln.num
	}
	m.Set(key, val)
	// Continue with additional entries indented at itemIndent.
	for {
		next, ok := p.peek()
		if !ok || next.indent < itemIndent {
			return m, nil
		}
		nc := next.content
		if next.indent == itemIndent && (strings.HasPrefix(nc, "- ") || nc == "-") {
			return m, nil
		}
		if next.indent > itemIndent {
			return nil, errAt(next.num, "bad indentation in sequence item mapping")
		}
		sub, err := p.parseMapping(itemIndent)
		if err != nil {
			return nil, err
		}
		for _, e := range sub.Entries {
			if m.Has(e.Key) {
				return nil, errAt(next.num, "duplicate mapping key %q", e.Key)
			}
			m.Set(e.Key, e.Value)
		}
		return m, nil
	}
}

func (p *parser) parseInlineSeqItem(rest string, ln srcLine, itemIndent int) (*Node, error) {
	// Build a synthetic sub-parser for "- a" nested on a dash line plus
	// any following lines at >= itemIndent.
	sub := &parser{}
	sub.lines = append(sub.lines, srcLine{num: ln.num, indent: itemIndent, text: strings.Repeat(" ", itemIndent) + rest, content: strings.TrimSpace(rest)})
	for {
		next, ok := p.peek()
		if !ok || next.indent < itemIndent {
			break
		}
		sub.lines = append(sub.lines, next)
		p.advanceTo(next)
	}
	return sub.parseSequence(itemIndent)
}

func (p *parser) parseNestedAfterDash(itemIndent int) (*Node, error) {
	next, ok := p.peek()
	if !ok || next.indent < itemIndent {
		return Null(), nil
	}
	nc := next.content
	isSeq := strings.HasPrefix(nc, "- ") || nc == "-"
	switch {
	case next.indent > itemIndent:
		return p.parseBlock(next.indent)
	case next.indent == itemIndent && isSeq:
		// A sequence at the key's own indent is that key's value.
		return p.parseSequence(next.indent)
	default:
		return Null(), nil
	}
}

// parseBlockScalar handles "|" literal and ">" folded block scalars.
func (p *parser) parseBlockScalar(marker string, parentIndent, lineNum int) (*Node, error) {
	var body []string
	blockIndent := -1
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		t := strings.TrimRight(ln.text, " ")
		if strings.TrimSpace(t) == "" {
			body = append(body, "")
			p.pos++
			continue
		}
		if ln.indent <= parentIndent {
			break
		}
		if blockIndent < 0 {
			blockIndent = ln.indent
		}
		if ln.indent < blockIndent {
			break
		}
		body = append(body, t[blockIndent:])
		p.pos++
	}
	// Trim trailing blank lines (clip chomping, the default).
	for len(body) > 0 && body[len(body)-1] == "" {
		body = body[:len(body)-1]
	}
	var text string
	if strings.HasPrefix(marker, ">") {
		text = strings.Join(body, " ")
	} else {
		text = strings.Join(body, "\n")
	}
	if !strings.HasSuffix(marker, "-") {
		text += "\n"
	}
	n := String(text)
	n.Quoted = true
	n.Line = lineNum
	return n, nil
}

// splitKey splits "key: rest" at the first unquoted, un-bracketed colon
// that is followed by a space or ends the string. isMap is false when no
// such colon exists (the content is a plain scalar like "nginx:latest"
// only when the colon is not followed by space — per YAML, "a:b" is a
// scalar but "a: b" is a mapping).
func splitKey(content string) (key, rest string, isMap bool) {
	depth := 0
	var quote byte
	for i := 0; i < len(content); i++ {
		c := content[i]
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			quote = c
		case '[', '{':
			depth++
		case ']', '}':
			depth--
		case ':':
			if depth == 0 && (i+1 == len(content) || content[i+1] == ' ') {
				key = strings.TrimSpace(content[:i])
				rest = strings.TrimSpace(content[i+1:])
				key = unquoteKey(key)
				return key, rest, true
			}
		}
	}
	return "", "", false
}

func unquoteKey(k string) string {
	if len(k) >= 2 && (k[0] == '"' && k[len(k)-1] == '"' || k[0] == '\'' && k[len(k)-1] == '\'') {
		return k[1 : len(k)-1]
	}
	return k
}

// stripComment removes an unquoted trailing "# ..." comment.
func stripComment(s string) string {
	v, _ := splitValueComment(s)
	return v
}

// SplitTrailingComment splits a single line into its content and any
// unquoted trailing "#" comment (without the "#"). Exported for callers
// that post-process raw YAML text, such as label stripping.
func SplitTrailingComment(line string) (value, comment string) {
	return splitValueComment(line)
}

// splitValueComment splits content into the value part and the trailing
// comment text (without "#"). A "#" only starts a comment at the start
// of the content or when preceded by whitespace, outside quotes.
func splitValueComment(s string) (value, comment string) {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			quote = c
		case '#':
			if i == 0 || s[i-1] == ' ' {
				return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:])
			}
		}
	}
	return strings.TrimSpace(s), ""
}

// parseFlowOrScalar parses an inline value: flow sequence, flow mapping,
// quoted string or plain scalar with type inference.
func parseFlowOrScalar(s string, line int, p *parser) (*Node, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Null(), nil
	}
	if s[0] == '[' || s[0] == '{' {
		fp := &flowParser{src: s, line: line}
		n, err := fp.parseValue()
		if err != nil {
			return nil, err
		}
		fp.skipSpace()
		if fp.pos != len(fp.src) {
			return nil, errAt(line, "trailing characters after flow value: %q", fp.src[fp.pos:])
		}
		n.Line = line
		return n, nil
	}
	return scalarFromString(s, line)
}

func scalarFromString(s string, line int) (*Node, error) {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		unq, err := strconv.Unquote(s)
		if err != nil {
			// Permit simple double-quoted strings Go's Unquote rejects.
			unq = s[1 : len(s)-1]
		}
		n := String(unq)
		n.Quoted = true
		n.Line = line
		return n, nil
	}
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		n := String(strings.ReplaceAll(s[1:len(s)-1], "''", "'"))
		n.Quoted = true
		n.Line = line
		return n, nil
	}
	n := inferScalar(s)
	n.Line = line
	return n, nil
}

// inferScalar applies YAML 1.2 core-schema-ish type inference.
func inferScalar(s string) *Node {
	switch s {
	case "null", "Null", "NULL", "~":
		return Null()
	case "true", "True", "TRUE":
		return Boolean(true)
	case "false", "False", "FALSE":
		return Boolean(false)
	}
	// Most scalars are plain strings; strconv's Parse* allocate an
	// error for every non-numeric input, so gate them behind a cheap
	// first-byte check.
	if !looksNumeric(s) {
		return String(s)
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Integer(i)
	}
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		if i, err := strconv.ParseInt(s[2:], 16, 64); err == nil {
			return Integer(i)
		}
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Number(f)
	}
	return String(s)
}

// looksNumeric guards against ParseFloat accepting "Inf"-like strings we
// prefer to keep as text, and version-ish strings.
func looksNumeric(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	if c != '+' && c != '-' && c != '.' && (c < '0' || c > '9') {
		return false
	}
	return true
}

type flowParser struct {
	src  string
	pos  int
	line int
}

func (f *flowParser) skipSpace() {
	for f.pos < len(f.src) && (f.src[f.pos] == ' ' || f.src[f.pos] == '\n') {
		f.pos++
	}
}

func (f *flowParser) parseValue() (*Node, error) {
	f.skipSpace()
	if f.pos >= len(f.src) {
		return nil, errAt(f.line, "unexpected end of flow value")
	}
	switch f.src[f.pos] {
	case '[':
		return f.parseSeq()
	case '{':
		return f.parseMap()
	case '"', '\'':
		return f.parseQuoted()
	default:
		return f.parsePlain()
	}
}

func (f *flowParser) parseSeq() (*Node, error) {
	f.pos++ // consume '['
	s := Seq()
	f.skipSpace()
	if f.pos < len(f.src) && f.src[f.pos] == ']' {
		f.pos++
		return s, nil
	}
	for {
		item, err := f.parseValue()
		if err != nil {
			return nil, err
		}
		s.Append(item)
		f.skipSpace()
		if f.pos >= len(f.src) {
			return nil, errAt(f.line, "unterminated flow sequence")
		}
		switch f.src[f.pos] {
		case ',':
			f.pos++
		case ']':
			f.pos++
			return s, nil
		default:
			return nil, errAt(f.line, "unexpected %q in flow sequence", f.src[f.pos])
		}
	}
}

func (f *flowParser) parseMap() (*Node, error) {
	f.pos++ // consume '{'
	m := Map()
	f.skipSpace()
	if f.pos < len(f.src) && f.src[f.pos] == '}' {
		f.pos++
		return m, nil
	}
	for {
		keyNode, err := f.parseValue()
		if err != nil {
			return nil, err
		}
		f.skipSpace()
		if f.pos >= len(f.src) || f.src[f.pos] != ':' {
			return nil, errAt(f.line, "expected ':' in flow mapping")
		}
		f.pos++
		val, err := f.parseValue()
		if err != nil {
			return nil, err
		}
		m.Set(keyNode.ScalarString(), val)
		f.skipSpace()
		if f.pos >= len(f.src) {
			return nil, errAt(f.line, "unterminated flow mapping")
		}
		switch f.src[f.pos] {
		case ',':
			f.pos++
			f.skipSpace()
		case '}':
			f.pos++
			return m, nil
		default:
			return nil, errAt(f.line, "unexpected %q in flow mapping", f.src[f.pos])
		}
	}
}

func (f *flowParser) parseQuoted() (*Node, error) {
	q := f.src[f.pos]
	start := f.pos
	f.pos++
	for f.pos < len(f.src) {
		if f.src[f.pos] == '\\' && q == '"' {
			f.pos += 2
			continue
		}
		if f.src[f.pos] == q {
			f.pos++
			return scalarFromString(f.src[start:f.pos], f.line)
		}
		f.pos++
	}
	return nil, errAt(f.line, "unterminated quoted string")
}

func (f *flowParser) parsePlain() (*Node, error) {
	start := f.pos
	for f.pos < len(f.src) {
		c := f.src[f.pos]
		if c == ',' || c == ']' || c == '}' || c == ':' {
			break
		}
		f.pos++
	}
	// Allow ':' inside plain scalars when not followed by space (URLs,
	// image tags).
	for f.pos < len(f.src) && f.src[f.pos] == ':' &&
		f.pos+1 < len(f.src) && f.src[f.pos+1] != ' ' && f.src[f.pos+1] != ',' && f.src[f.pos+1] != ']' && f.src[f.pos+1] != '}' {
		f.pos++
		for f.pos < len(f.src) {
			c := f.src[f.pos]
			if c == ',' || c == ']' || c == '}' || c == ':' {
				break
			}
			f.pos++
		}
	}
	txt := strings.TrimSpace(f.src[start:f.pos])
	if txt == "" {
		return Null(), nil
	}
	n := inferScalar(txt)
	n.Line = f.line
	return n, nil
}

func firstNonZero(a, b int) int {
	if a != 0 {
		return a
	}
	return b
}
