package yamlx

import (
	"fmt"
	"sync"
	"testing"
)

const cachedDoc = `apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
  labels:
    app: web   # *
spec:
  replicas: 3
  template:
    spec:
      containers:
      - name: web
        image: nginx:1.25
        ports:
        - containerPort: 80
---
apiVersion: v1
kind: Service
metadata:
  name: web
spec:
  ports: [{port: 80, targetPort: 8080}]
`

// TestParseAllCachedSharedAndEquivalent pins the document cache
// contract: cached parses return the same shared nodes, and those
// nodes are semantically identical to a fresh uncached parse.
func TestParseAllCachedSharedAndEquivalent(t *testing.T) {
	d1, err1 := ParseAllCached([]byte(cachedDoc))
	d2, err2 := ParseAllCached([]byte(cachedDoc))
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v / %v", err1, err2)
	}
	if len(d1) != 2 || len(d2) != 2 {
		t.Fatalf("doc counts: %d / %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Errorf("doc %d: cached parse returned distinct nodes", i)
		}
	}
	fresh, err := ParseAll([]byte(cachedDoc))
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh {
		if !Equal(d1[i], fresh[i]) {
			t.Errorf("doc %d: cached parse differs from fresh parse", i)
		}
	}
	// Errors are cached too.
	bad := []byte("a: [unterminated\n")
	if _, err := ParseAllCached(bad); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ParseAllCached(bad); err == nil {
		t.Fatal("expected cached error")
	}
}

// TestParseAllCachedConcurrent reads one cached document tree from many
// goroutines (marshal, path walks, equality) while other goroutines
// clone and mutate their copies; run under -race in CI this proves the
// share-immutable/clone-to-mutate discipline holds.
func TestParseAllCachedConcurrent(t *testing.T) {
	docs, err := ParseAllCached([]byte(cachedDoc))
	if err != nil {
		t.Fatal(err)
	}
	want := docs[0].Path("spec", "template", "spec", "containers", 0, "image").ScalarString()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				ds, err := ParseAllCached([]byte(cachedDoc))
				if err != nil {
					errs <- err
					return
				}
				if g%2 == 0 {
					// Reader: walk and render the shared tree.
					got := ds[0].Path("spec", "template", "spec", "containers", 0, "image").ScalarString()
					if got != want {
						errs <- fmt.Errorf("read %q, want %q", got, want)
						return
					}
					_ = MarshalAll(ds)
				} else {
					// Mutator: clone, then scribble on the copy.
					cp := CloneDocs(ds)
					cp[0].Set("kind", String("Mutated"))
					cp[0].Path("spec").Set("replicas", Integer(int64(r)))
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := docs[0].Get("kind").ScalarString(); got != "Deployment" {
		t.Errorf("cached tree was mutated: kind=%q", got)
	}
}

// TestShallowClone pins the copy-on-write contract: the clone's shape
// can change without affecting the original, while children remain
// shared.
func TestShallowClone(t *testing.T) {
	orig, err := ParseString("metadata:\n  name: web\nspec:\n  replicas: 2\n")
	if err != nil {
		t.Fatal(err)
	}
	cp := orig.ShallowClone()
	cp.Set("status", String("added"))
	cp.Set("spec", String("replaced"))
	if orig.Has("status") {
		t.Error("Set on shallow clone leaked a new key into the original")
	}
	if orig.Get("spec").ScalarString() == "replaced" {
		t.Error("Set on shallow clone replaced the original's value")
	}
	if orig.Get("metadata") != cp.Get("metadata") {
		t.Error("shallow clone should share child nodes")
	}
	// Seq variant.
	seq := Seq(String("a"), String("b"))
	sc := seq.ShallowClone()
	sc.Append(String("c"))
	sc.Items[0] = String("z")
	if seq.Len() != 2 || seq.Items[0].ScalarString() != "a" {
		t.Error("seq shallow clone mutated the original")
	}
}
