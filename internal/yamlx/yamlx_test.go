package yamlx

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

const sampleDeployment = `apiVersion: apps/v1
kind: Deployment
metadata:
  name: nginx-deployment
spec:
  replicas: 3
  selector:
    matchLabels:
      app: nginx
  template:
    metadata:
      labels:
        app: nginx
    spec:
      containers:
      - name: nginx-container
        image: nginx:latest
        ports:
        - containerPort: 80
`

func mustParse(t *testing.T, src string) *Node {
	t.Helper()
	n, err := ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	return n
}

func TestParseDeployment(t *testing.T) {
	n := mustParse(t, sampleDeployment)
	if got := n.Get("kind").ScalarString(); got != "Deployment" {
		t.Errorf("kind = %q, want Deployment", got)
	}
	if got := n.Path("spec", "replicas"); got == nil || got.Kind != IntKind || got.Int != 3 {
		t.Errorf("spec.replicas = %v, want int 3", got)
	}
	img := n.Path("spec", "template", "spec", "containers", 0, "image")
	if img == nil || img.Str != "nginx:latest" {
		t.Errorf("image = %v, want nginx:latest", img)
	}
	port := n.Path("spec", "template", "spec", "containers", 0, "ports", 0, "containerPort")
	if port == nil || port.Int != 80 {
		t.Errorf("containerPort = %v, want 80", port)
	}
}

func TestParseScalarTypes(t *testing.T) {
	n := mustParse(t, `
int: 42
neg: -7
float: 3.5
boolT: true
boolF: False
nil1: null
nil2: ~
str: hello world
quotedNum: "5000"
single: 'it''s'
colonStr: nginx:latest
version: 22.04.1
cpu: 100m
mem: 50Mi
empty:
`)
	cases := []struct {
		key  string
		kind Kind
		want string
	}{
		{"int", IntKind, "42"},
		{"neg", IntKind, "-7"},
		{"float", FloatKind, "3.5"},
		{"boolT", BoolKind, "true"},
		{"boolF", BoolKind, "false"},
		{"nil1", NullKind, ""},
		{"nil2", NullKind, ""},
		{"str", StringKind, "hello world"},
		{"quotedNum", StringKind, "5000"},
		{"single", StringKind, "it's"},
		{"colonStr", StringKind, "nginx:latest"},
		{"version", StringKind, "22.04.1"},
		{"cpu", StringKind, "100m"},
		{"mem", StringKind, "50Mi"},
		{"empty", NullKind, ""},
	}
	for _, c := range cases {
		v := n.Get(c.key)
		if v == nil {
			t.Errorf("%s: missing", c.key)
			continue
		}
		if v.Kind != c.kind {
			t.Errorf("%s: kind = %v, want %v", c.key, v.Kind, c.kind)
		}
		if got := v.ScalarString(); got != c.want {
			t.Errorf("%s: value = %q, want %q", c.key, got, c.want)
		}
	}
	if !n.Get("quotedNum").Quoted {
		t.Error("quotedNum should record Quoted")
	}
}

func TestParseComments(t *testing.T) {
	src := `metadata:
  name: kube-registry-proxy # *
  image: nginx:latest
  tag: ubuntu:22.04 # v in ['20.04', '22.04']
`
	n := mustParse(t, src)
	if got := n.Path("metadata", "name").Comment; got != "*" {
		t.Errorf("name comment = %q, want *", got)
	}
	if got := n.Path("metadata", "image").Comment; got != "" {
		t.Errorf("image comment = %q, want empty", got)
	}
	if got := n.Path("metadata", "tag").Comment; got != "v in ['20.04', '22.04']" {
		t.Errorf("tag comment = %q", got)
	}
}

func TestHashInsideQuotesIsNotComment(t *testing.T) {
	n := mustParse(t, `password: "p#ss" # secret`)
	v := n.Get("password")
	if v.Str != "p#ss" {
		t.Errorf("value = %q, want p#ss", v.Str)
	}
	if v.Comment != "secret" {
		t.Errorf("comment = %q, want secret", v.Comment)
	}
}

func TestParseSequences(t *testing.T) {
	n := mustParse(t, `
plain:
- a
- b
indented:
  - 1
  - 2
nested:
- - x
  - y
- - z
flow: [10, 20, 30]
flowMap: {a: 1, b: two}
objs:
- name: first
  value: 1
- name: second
  value: 2
`)
	if got := n.Get("plain").Len(); got != 2 {
		t.Errorf("plain len = %d, want 2", got)
	}
	if got := n.Path("indented", 1); got.Int != 2 {
		t.Errorf("indented[1] = %v", got)
	}
	if got := n.Path("nested", 0, 1); got == nil || got.Str != "y" {
		t.Errorf("nested[0][1] = %v, want y", got)
	}
	if got := n.Path("nested", 1, 0); got == nil || got.Str != "z" {
		t.Errorf("nested[1][0] = %v, want z", got)
	}
	if got := n.Path("flow", 2); got.Int != 30 {
		t.Errorf("flow[2] = %v", got)
	}
	if got := n.Path("flowMap", "b"); got.Str != "two" {
		t.Errorf("flowMap.b = %v", got)
	}
	if got := n.Path("objs", 1, "name"); got.Str != "second" {
		t.Errorf("objs[1].name = %v", got)
	}
}

func TestParseMultiDoc(t *testing.T) {
	docs, err := ParseAll([]byte(`apiVersion: v1
kind: Service
---
apiVersion: apps/v1
kind: Deployment
---
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("got %d docs, want 2", len(docs))
	}
	if docs[0].Get("kind").Str != "Service" || docs[1].Get("kind").Str != "Deployment" {
		t.Errorf("kinds = %v, %v", docs[0].Get("kind"), docs[1].Get("kind"))
	}
}

func TestParseLeadingDocMarker(t *testing.T) {
	docs, err := ParseAll([]byte("---\nkind: Pod\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0].Get("kind").Str != "Pod" {
		t.Fatalf("docs = %v", docs)
	}
}

func TestParseBlockScalars(t *testing.T) {
	n := mustParse(t, `
literal: |
  line one
  line two
folded: >
  word one
  word two
stripped: |-
  no trailing
`)
	if got := n.Get("literal").Str; got != "line one\nline two\n" {
		t.Errorf("literal = %q", got)
	}
	if got := n.Get("folded").Str; got != "word one word two\n" {
		t.Errorf("folded = %q", got)
	}
	if got := n.Get("stripped").Str; got != "no trailing" {
		t.Errorf("stripped = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"a: 1\n  b: 2\n   c: 3\n  d: [unclosed\n",
		"key: [1, 2\n",
		"key: {a: 1\n",
		"a: 1\na: 2\n", // duplicate key
	}
	for _, src := range bad {
		if _, err := ParseString(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	n, err := ParseString("")
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind != NullKind {
		t.Errorf("empty doc kind = %v", n.Kind)
	}
	n2, err := ParseString("# only a comment\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if n2.Kind != NullKind {
		t.Errorf("comment-only doc kind = %v", n2.Kind)
	}
}

func TestRoundTripDeployment(t *testing.T) {
	n := mustParse(t, sampleDeployment)
	out := MarshalString(n)
	n2, err := ParseString(out)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	if !Equal(n, n2) {
		t.Errorf("round trip not equal:\n--- original ---\n%s\n--- emitted ---\n%s", sampleDeployment, out)
	}
}

func TestRoundTripPreservesComments(t *testing.T) {
	src := "metadata:\n  name: foo # *\n"
	n := mustParse(t, src)
	out := MarshalString(n)
	n2 := mustParse(t, out)
	if got := n2.Path("metadata", "name").Comment; got != "*" {
		t.Errorf("comment lost on round trip: %q in\n%s", got, out)
	}
}

func TestRoundTripQuotedNumberString(t *testing.T) {
	n := mustParse(t, `value: "5000"`)
	out := MarshalString(n)
	n2 := mustParse(t, out)
	v := n2.Get("value")
	if v.Kind != StringKind || v.Str != "5000" {
		t.Errorf("quoted number string became %v (%v) in %q", v.Kind, v.ScalarString(), out)
	}
}

func TestEqualSemantics(t *testing.T) {
	a := mustParse(t, "x: 1\ny: 2\n")
	b := mustParse(t, "y: 2\nx: 1\n")
	if !Equal(a, b) {
		t.Error("map order should not affect equality")
	}
	c := mustParse(t, "l:\n- 1\n- 2\n")
	d := mustParse(t, "l:\n- 2\n- 1\n")
	if Equal(c, d) {
		t.Error("sequence order should affect equality")
	}
	e := mustParse(t, `p: "80"`)
	f := mustParse(t, `p: 80`)
	if !Equal(e, f) {
		t.Error("scalar equality compares canonical text")
	}
}

func TestToGoFromGo(t *testing.T) {
	n := mustParse(t, sampleDeployment)
	g := n.ToGo()
	back := FromGo(g)
	if !Equal(n, back) {
		t.Error("ToGo/FromGo should preserve semantics")
	}
	m, ok := g.(map[string]any)
	if !ok {
		t.Fatalf("ToGo returned %T", g)
	}
	if m["kind"] != "Deployment" {
		t.Errorf("kind = %v", m["kind"])
	}
}

func TestNodeHelpers(t *testing.T) {
	m := Map().Set("a", Integer(1)).Set("b", String("x"))
	if !m.Has("a") || m.Has("z") {
		t.Error("Has misbehaves")
	}
	if !reflect.DeepEqual(m.Keys(), []string{"a", "b"}) {
		t.Errorf("Keys = %v", m.Keys())
	}
	if !m.Delete("a") || m.Delete("a") {
		t.Error("Delete misbehaves")
	}
	s := Seq(Integer(1)).Append(Integer(2))
	if s.Len() != 2 {
		t.Errorf("seq len = %d", s.Len())
	}
	if v, ok := String("17").AsInt(); !ok || v != 17 {
		t.Errorf("AsInt(string) = %v %v", v, ok)
	}
	if v, ok := Number(4.0).AsInt(); !ok || v != 4 {
		t.Errorf("AsInt(float) = %v %v", v, ok)
	}
	if _, ok := Number(4.5).AsInt(); ok {
		t.Error("AsInt(4.5) should fail")
	}
}

func TestCloneIsDeep(t *testing.T) {
	n := mustParse(t, sampleDeployment)
	c := n.Clone()
	c.Path("spec").Set("replicas", Integer(99))
	if n.Path("spec", "replicas").Int != 3 {
		t.Error("Clone is not deep")
	}
	if !Equal(n, mustParse(t, sampleDeployment)) {
		t.Error("original mutated")
	}
}

// randomNode builds an arbitrary node for property testing.
func randomNode(r *rand.Rand, depth int) *Node {
	if depth <= 0 {
		return randomScalar(r)
	}
	switch r.Intn(4) {
	case 0:
		return randomScalar(r)
	case 1:
		m := Map()
		for i := 0; i < 1+r.Intn(4); i++ {
			m.Set(randomKey(r, i), randomNode(r, depth-1))
		}
		return m
	case 2:
		s := Seq()
		for i := 0; i < 1+r.Intn(4); i++ {
			s.Append(randomNode(r, depth-1))
		}
		return s
	default:
		m := Map()
		m.Set("name", randomScalar(r))
		m.Set("spec", randomNode(r, depth-1))
		return m
	}
}

func randomKey(r *rand.Rand, i int) string {
	words := []string{"name", "image", "spec", "replicas", "app", "port", "env", "labels", "metadata", "kind"}
	return words[r.Intn(len(words))] + string(rune('a'+i))
}

func randomScalar(r *rand.Rand) *Node {
	switch r.Intn(6) {
	case 0:
		return Integer(int64(r.Intn(10000) - 5000))
	case 1:
		return Boolean(r.Intn(2) == 0)
	case 2:
		return Null()
	case 3:
		return Number(float64(r.Intn(1000)) / 8.0)
	case 4:
		strs := []string{"nginx:latest", "hello world", "100m", "50Mi", "a:b:c", "v1.2.3", "true story", "8080", "", "it's"}
		return String(strs[r.Intn(len(strs))])
	default:
		return String("value-" + string(rune('a'+r.Intn(26))))
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomNode(r, 4))
		},
	}
	prop := func(n *Node) bool {
		out := Marshal(n)
		n2, err := Parse(out)
		if err != nil {
			t.Logf("parse error: %v\n%s", err, out)
			return false
		}
		if !Equal(n, n2) {
			t.Logf("not equal after round trip:\n%s\nvs\n%s", out, Marshal(n2))
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyMarshalIdempotent(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomNode(r, 3))
		},
	}
	prop := func(n *Node) bool {
		once := MarshalString(n)
		n2, err := ParseString(once)
		if err != nil {
			return false
		}
		twice := MarshalString(n2)
		return once == twice
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestMarshalFlowStyle(t *testing.T) {
	n := Map().Set("a", Seq(Integer(1), Integer(2))).Set("b", Map().Set("c", String("d")))
	got := string(MarshalFlow(n))
	if got != "{a: [1, 2], b: {c: d}}" {
		t.Errorf("flow = %q", got)
	}
}

func TestWindowsLineEndings(t *testing.T) {
	n := mustParse(t, "kind: Pod\r\nmetadata:\r\n  name: x\r\n")
	if n.Get("kind").Str != "Pod" || n.Path("metadata", "name").Str != "x" {
		t.Errorf("CRLF parse failed: %v", MarshalString(n))
	}
}

func TestTabsAreTolerated(t *testing.T) {
	n := mustParse(t, "a:\n\tb: 1\n")
	if n.Path("a", "b") == nil {
		t.Error("tab-indented mapping should parse")
	}
}

func TestDeepNesting(t *testing.T) {
	var sb strings.Builder
	depth := 40
	for i := 0; i < depth; i++ {
		sb.WriteString(strings.Repeat("  ", i) + "k" + string(rune('a'+i%26)) + ":\n")
	}
	sb.WriteString(strings.Repeat("  ", depth) + "leaf: 1\n")
	n := mustParse(t, sb.String())
	cur := n
	for i := 0; i < depth; i++ {
		cur = cur.Entries[0].Value
		if cur == nil {
			t.Fatalf("lost nesting at %d", i)
		}
	}
	if cur.Get("leaf").Int != 1 {
		t.Error("deep leaf wrong")
	}
}
