// Package yamlx implements the YAML subset used by cloud-native
// configuration files: block and flow styles, nested mappings and
// sequences, scalar type inference, quoting, literal/folded block
// scalars, multi-document streams, and trailing comments.
//
// Comments are preserved on parse because CloudEval-YAML reference files
// carry match labels as comments (for example "# *" for wildcard match
// and "# v in [...]" for conditional match); the yamlmatch package
// interprets them.
//
// The package is written from scratch on the standard library only.
package yamlx

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the type of a Node.
type Kind int

// Node kinds.
const (
	NullKind Kind = iota
	BoolKind
	IntKind
	FloatKind
	StringKind
	MapKind
	SeqKind
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case NullKind:
		return "null"
	case BoolKind:
		return "bool"
	case IntKind:
		return "int"
	case FloatKind:
		return "float"
	case StringKind:
		return "string"
	case MapKind:
		return "map"
	case SeqKind:
		return "seq"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Entry is a single key/value pair in a mapping. Order is preserved.
type Entry struct {
	Key   string
	Value *Node
}

// Node is a parsed YAML value.
type Node struct {
	Kind Kind

	Bool  bool
	Int   int64
	Float float64
	Str   string

	Entries []Entry // MapKind
	Items   []*Node // SeqKind

	// Comment holds the trailing "#" comment attached to the line this
	// node's value appeared on, without the leading "#" and surrounding
	// whitespace. Empty when there is none.
	Comment string

	// Quoted records that a string scalar was written with quotes, so
	// "5000" stays a string rather than an int on round trips.
	Quoted bool

	// Line is the 1-based source line of the value, 0 if synthesized.
	Line int
}

// Null returns a new null node.
func Null() *Node { return &Node{Kind: NullKind} }

// Boolean returns a new bool node.
func Boolean(v bool) *Node { return &Node{Kind: BoolKind, Bool: v} }

// Integer returns a new int node.
func Integer(v int64) *Node { return &Node{Kind: IntKind, Int: v} }

// Number returns a new float node.
func Number(v float64) *Node { return &Node{Kind: FloatKind, Float: v} }

// String returns a new string node.
func String(v string) *Node { return &Node{Kind: StringKind, Str: v} }

// Map returns a new empty mapping node.
func Map() *Node { return &Node{Kind: MapKind} }

// Seq returns a new empty sequence node.
func Seq(items ...*Node) *Node { return &Node{Kind: SeqKind, Items: items} }

// Set inserts or replaces key in a mapping, returning the node for
// chaining. It panics if n is not a mapping.
func (n *Node) Set(key string, v *Node) *Node {
	if n.Kind != MapKind {
		panic("yamlx: Set on non-map node")
	}
	for i := range n.Entries {
		if n.Entries[i].Key == key {
			n.Entries[i].Value = v
			return n
		}
	}
	n.Entries = append(n.Entries, Entry{Key: key, Value: v})
	return n
}

// Get returns the value for key in a mapping, or nil when absent or when
// n is not a mapping.
func (n *Node) Get(key string) *Node {
	if n == nil || n.Kind != MapKind {
		return nil
	}
	for i := range n.Entries {
		if n.Entries[i].Key == key {
			return n.Entries[i].Value
		}
	}
	return nil
}

// Has reports whether a mapping contains key.
func (n *Node) Has(key string) bool { return n.Get(key) != nil }

// Delete removes key from a mapping and reports whether it was present.
func (n *Node) Delete(key string) bool {
	if n == nil || n.Kind != MapKind {
		return false
	}
	for i := range n.Entries {
		if n.Entries[i].Key == key {
			n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
			return true
		}
	}
	return false
}

// Keys returns the mapping keys in document order.
func (n *Node) Keys() []string {
	if n == nil || n.Kind != MapKind {
		return nil
	}
	out := make([]string, len(n.Entries))
	for i, e := range n.Entries {
		out[i] = e.Key
	}
	return out
}

// Path walks nested mappings/sequences: string elements index mappings,
// int elements index sequences. It returns nil when any step is missing.
func (n *Node) Path(elems ...any) *Node {
	cur := n
	for _, e := range elems {
		if cur == nil {
			return nil
		}
		switch idx := e.(type) {
		case string:
			cur = cur.Get(idx)
		case int:
			if cur.Kind != SeqKind || idx < 0 || idx >= len(cur.Items) {
				return nil
			}
			cur = cur.Items[idx]
		default:
			return nil
		}
	}
	return cur
}

// Append adds an item to a sequence. It panics if n is not a sequence.
func (n *Node) Append(items ...*Node) *Node {
	if n.Kind != SeqKind {
		panic("yamlx: Append on non-seq node")
	}
	n.Items = append(n.Items, items...)
	return n
}

// Len returns the number of entries (map) or items (seq), 0 otherwise.
func (n *Node) Len() int {
	if n == nil {
		return 0
	}
	switch n.Kind {
	case MapKind:
		return len(n.Entries)
	case SeqKind:
		return len(n.Items)
	}
	return 0
}

// IsScalar reports whether the node is a scalar (not map/seq).
func (n *Node) IsScalar() bool {
	return n != nil && n.Kind != MapKind && n.Kind != SeqKind
}

// ScalarString renders a scalar node as the string a user would have
// typed: "nginx:latest", "80", "true". Maps and sequences render as
// their flow form.
func (n *Node) ScalarString() string {
	if n == nil {
		return ""
	}
	switch n.Kind {
	case NullKind:
		return ""
	case BoolKind:
		if n.Bool {
			return "true"
		}
		return "false"
	case IntKind:
		return strconv.FormatInt(n.Int, 10)
	case FloatKind:
		return formatFloat(n.Float)
	case StringKind:
		return n.Str
	default:
		return string(MarshalFlow(n))
	}
}

// AsInt returns the value as an int64 where sensible (ints, numeric
// strings, floats with integral value, bools as 0/1).
func (n *Node) AsInt() (int64, bool) {
	if n == nil {
		return 0, false
	}
	switch n.Kind {
	case IntKind:
		return n.Int, true
	case FloatKind:
		if n.Float == math.Trunc(n.Float) {
			return int64(n.Float), true
		}
	case StringKind:
		v, err := strconv.ParseInt(strings.TrimSpace(n.Str), 10, 64)
		if err == nil {
			return v, true
		}
	case BoolKind:
		if n.Bool {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// Clone returns a deep copy of the node.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := *n
	if n.Kind == MapKind {
		c.Entries = make([]Entry, len(n.Entries))
		for i, e := range n.Entries {
			c.Entries[i] = Entry{Key: e.Key, Value: e.Value.Clone()}
		}
	}
	if n.Kind == SeqKind {
		c.Items = make([]*Node, len(n.Items))
		for i, it := range n.Items {
			c.Items[i] = it.Clone()
		}
	}
	return &c
}

// Equal reports semantic equality: mappings compare as unordered
// key→value sets (YAML mappings are unordered), sequences compare in
// order, and scalars compare by canonical value. Comments and quoting
// style are ignored.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	ak, bk := canonicalKind(a), canonicalKind(b)
	if ak != bk {
		return false
	}
	switch ak {
	case MapKind:
		if len(a.Entries) != len(b.Entries) {
			return false
		}
		for _, e := range a.Entries {
			bv := b.Get(e.Key)
			if bv == nil || !Equal(e.Value, bv) {
				return false
			}
		}
		return true
	case SeqKind:
		if len(a.Items) != len(b.Items) {
			return false
		}
		for i := range a.Items {
			if !Equal(a.Items[i], b.Items[i]) {
				return false
			}
		}
		return true
	default:
		return a.ScalarString() == b.ScalarString()
	}
}

// canonicalKind folds quoted-string numerics into their scalar family so
// that Equal("80") == Equal(80) is false but Equal over identical
// ScalarStrings of the same family works; scalars all compare in one
// family here.
func canonicalKind(n *Node) Kind {
	switch n.Kind {
	case MapKind, SeqKind:
		return n.Kind
	default:
		return StringKind
	}
}

// ToGo converts the node into plain Go values: map[string]any (order
// lost), []any, string, int64, float64, bool, nil.
func (n *Node) ToGo() any {
	if n == nil {
		return nil
	}
	switch n.Kind {
	case NullKind:
		return nil
	case BoolKind:
		return n.Bool
	case IntKind:
		return n.Int
	case FloatKind:
		return n.Float
	case StringKind:
		return n.Str
	case MapKind:
		m := make(map[string]any, len(n.Entries))
		for _, e := range n.Entries {
			m[e.Key] = e.Value.ToGo()
		}
		return m
	case SeqKind:
		s := make([]any, len(n.Items))
		for i, it := range n.Items {
			s[i] = it.ToGo()
		}
		return s
	}
	return nil
}

// FromGo converts plain Go values into a Node. Map keys are sorted for
// determinism. Supported: nil, bool, int/int64/float64, string,
// map[string]any, []any and []string.
func FromGo(v any) *Node {
	switch t := v.(type) {
	case nil:
		return Null()
	case bool:
		return Boolean(t)
	case int:
		return Integer(int64(t))
	case int64:
		return Integer(t)
	case float64:
		return Number(t)
	case string:
		return String(t)
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		m := Map()
		for _, k := range keys {
			m.Set(k, FromGo(t[k]))
		}
		return m
	case []any:
		s := Seq()
		for _, it := range t {
			s.Append(FromGo(it))
		}
		return s
	case []string:
		s := Seq()
		for _, it := range t {
			s.Append(String(it))
		}
		return s
	default:
		return String(fmt.Sprint(v))
	}
}

func formatFloat(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}
