package yamlx

import (
	"strconv"
	"strings"
)

// Marshal renders a node as block-style YAML with two-space indentation.
// Comments attached to scalar values are emitted as trailing comments so
// labeled reference files round-trip.
func Marshal(n *Node) []byte {
	var b strings.Builder
	emitBlock(&b, n, 0, true)
	out := b.String()
	if out != "" && !strings.HasSuffix(out, "\n") {
		out += "\n"
	}
	return []byte(out)
}

// MarshalString is Marshal returning a string.
func MarshalString(n *Node) string { return string(Marshal(n)) }

// MarshalAll renders multiple documents separated by "---".
func MarshalAll(docs []*Node) []byte {
	var parts []string
	for _, d := range docs {
		parts = append(parts, string(Marshal(d)))
	}
	return []byte(strings.Join(parts, "---\n"))
}

// MarshalFlow renders a node in single-line flow style: {a: 1, b: [2]}.
func MarshalFlow(n *Node) []byte {
	var b strings.Builder
	emitFlow(&b, n)
	return []byte(b.String())
}

func emitBlock(b *strings.Builder, n *Node, indent int, topLevel bool) {
	if n == nil {
		return
	}
	pad := strings.Repeat("  ", indent)
	switch n.Kind {
	case MapKind:
		if len(n.Entries) == 0 {
			b.WriteString(pad + "{}\n")
			return
		}
		for _, e := range n.Entries {
			v := e.Value
			switch {
			case v == nil || v.Kind == NullKind:
				b.WriteString(pad + emitKey(e.Key) + ":" + commentSuffix(v) + "\n")
			case v.Kind == MapKind && len(v.Entries) > 0:
				b.WriteString(pad + emitKey(e.Key) + ":\n")
				emitBlock(b, v, indent+1, false)
			case v.Kind == SeqKind && len(v.Items) > 0:
				b.WriteString(pad + emitKey(e.Key) + ":\n")
				emitBlock(b, v, indent, false)
			case v.Kind == StringKind && strings.Contains(v.Str, "\n"):
				emitLiteral(b, pad, e.Key, v)
			default:
				b.WriteString(pad + emitKey(e.Key) + ": " + scalarLiteral(v) + commentSuffix(v) + "\n")
			}
		}
	case SeqKind:
		if len(n.Items) == 0 {
			b.WriteString(pad + "[]\n")
			return
		}
		for _, it := range n.Items {
			switch {
			case it == nil || it.Kind == NullKind:
				b.WriteString(pad + "-\n")
			case it.Kind == MapKind && len(it.Entries) > 0:
				emitSeqMapItem(b, it, indent)
			case it.Kind == SeqKind && len(it.Items) > 0:
				b.WriteString(pad + "-\n")
				emitBlock(b, it, indent+1, false)
			default:
				b.WriteString(pad + "- " + scalarLiteral(it) + commentSuffix(it) + "\n")
			}
		}
	default:
		b.WriteString(pad + scalarLiteral(n) + commentSuffix(n) + "\n")
	}
}

// emitSeqMapItem writes "- key: value" with subsequent entries aligned
// under the first key.
func emitSeqMapItem(b *strings.Builder, m *Node, indent int) {
	pad := strings.Repeat("  ", indent)
	for i, e := range m.Entries {
		prefix := pad + "  "
		if i == 0 {
			prefix = pad + "- "
		}
		v := e.Value
		switch {
		case v == nil || v.Kind == NullKind:
			b.WriteString(prefix + emitKey(e.Key) + ":" + commentSuffix(v) + "\n")
		case v.Kind == MapKind && len(v.Entries) > 0:
			b.WriteString(prefix + emitKey(e.Key) + ":\n")
			emitBlock(b, v, indent+2, false)
		case v.Kind == SeqKind && len(v.Items) > 0:
			b.WriteString(prefix + emitKey(e.Key) + ":\n")
			emitBlock(b, v, indent+1, false)
		case v.Kind == StringKind && strings.Contains(v.Str, "\n"):
			emitLiteral(b, prefix[:len(prefix)-2]+"  ", e.Key, v)
		default:
			b.WriteString(prefix + emitKey(e.Key) + ": " + scalarLiteral(v) + commentSuffix(v) + "\n")
		}
	}
}

func emitLiteral(b *strings.Builder, pad, key string, v *Node) {
	text := v.Str
	chomp := ""
	if !strings.HasSuffix(text, "\n") {
		chomp = "-"
	}
	b.WriteString(pad + emitKey(key) + ": |" + chomp + "\n")
	for _, ln := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if ln == "" {
			b.WriteString("\n")
			continue
		}
		b.WriteString(pad + "  " + ln + "\n")
	}
}

func commentSuffix(n *Node) string {
	if n == nil || n.Comment == "" {
		return ""
	}
	return " # " + n.Comment
}

func emitKey(k string) string {
	if needsQuoting(k) {
		return strconv.Quote(k)
	}
	return k
}

func scalarLiteral(n *Node) string {
	switch n.Kind {
	case NullKind:
		return "null"
	case BoolKind, IntKind, FloatKind:
		return n.ScalarString()
	case StringKind:
		if n.Quoted || needsQuoting(n.Str) || inferredKindChanges(n.Str) {
			return strconv.Quote(n.Str)
		}
		return n.Str
	case MapKind, SeqKind:
		return string(MarshalFlow(n))
	}
	return ""
}

// inferredKindChanges reports whether the bare string would re-parse as a
// different scalar type and therefore must be quoted to stay a string.
func inferredKindChanges(s string) bool {
	if s == "" {
		return true
	}
	return inferScalar(s).Kind != StringKind
}

func needsQuoting(s string) bool {
	if s == "" {
		return true
	}
	if strings.ContainsAny(s, "\n\"'") {
		return true
	}
	if strings.HasPrefix(s, " ") || strings.HasSuffix(s, " ") {
		return true
	}
	switch s[0] {
	case '[', '{', ']', '}', '#', '&', '*', '!', '|', '>', '%', '@', '`', '-', '?':
		// A leading dash is fine when not followed by a space.
		if s[0] == '-' && len(s) > 1 && s[1] != ' ' {
			break
		}
		return true
	}
	// "key: value"-looking strings need quotes.
	if i := strings.Index(s, ": "); i >= 0 {
		return true
	}
	if strings.HasSuffix(s, ":") {
		return true
	}
	if strings.Contains(s, " #") {
		return true
	}
	return false
}

func emitFlow(b *strings.Builder, n *Node) {
	if n == nil {
		b.WriteString("null")
		return
	}
	switch n.Kind {
	case MapKind:
		b.WriteString("{")
		for i, e := range n.Entries {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(emitKey(e.Key) + ": ")
			emitFlow(b, e.Value)
		}
		b.WriteString("}")
	case SeqKind:
		b.WriteString("[")
		for i, it := range n.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			emitFlow(b, it)
		}
		b.WriteString("]")
	default:
		b.WriteString(scalarLiteral(n))
	}
}
