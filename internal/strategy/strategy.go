// Package strategy implements the generation-improvement methods the
// paper proposes but leaves as future work:
//
//   - FormatRetry (§4.1, observation 1): "the performance of GPT-4
//     could be further improved by implementing a basic format check to
//     filter out such errors and regenerate new ones" — resample while
//     the answer fails a cheap structural check;
//   - BestOfK (§4.2 + §4.4): generate k samples and pick the best by a
//     cheap YAML-aware metric instead of running unit tests, the
//     practical variant of multi-sample generation when no oracle is
//     available.
package strategy

import (
	"cloudeval/internal/dataset"
	"cloudeval/internal/llm"
	"cloudeval/internal/scenario"
	"cloudeval/internal/yamlmatch"
	"cloudeval/internal/yamlx"
)

// FormatCheck reports whether an answer passes the basic structural
// filter: non-trivial length, parses as YAML, and carries the problem
// family's top-level marker (kind+apiVersion for manifest families,
// static_resources for Envoy, services for Compose — declared by the
// scenario backend). This is exactly the check that would catch the
// paper's failure categories 1-3 without any cluster access.
func FormatCheck(answer string, p dataset.Problem) bool {
	docs, err := yamlx.ParseAllCached([]byte(answer))
	if err != nil {
		return false
	}
	backend := scenario.For(p.Category)
	for _, d := range docs {
		if d == nil || d.Kind == yamlx.NullKind {
			continue
		}
		if d.Kind != yamlx.MapKind {
			return false
		}
		if !backend.HasKind {
			if d.Has(backend.Marker) {
				return true
			}
			continue
		}
		if d.Has("kind") && d.Has("apiVersion") {
			return true
		}
	}
	return false
}

// Result is one strategy outcome.
type Result struct {
	Answer  string
	Samples int // how many generations were spent
}

// FormatRetry regenerates (at the given temperature) until the answer
// passes FormatCheck or the budget is exhausted; the last sample is
// returned either way.
func FormatRetry(m llm.Model, p dataset.Problem, maxSamples int, temperature float64) Result {
	var answer string
	for k := 0; k < maxSamples; k++ {
		raw := m.Generate(p, llm.GenOptions{Sample: k, Temperature: temperature})
		answer = llm.Postprocess(raw)
		if FormatCheck(answer, p) {
			return Result{Answer: answer, Samples: k + 1}
		}
	}
	return Result{Answer: answer, Samples: maxSamples}
}

// BestOfK draws k samples and returns the one with the highest
// KV-wildcard match against the labeled reference — the §4.4 insight
// (kv_wildcard is the best cheap proxy for the unit test) turned into a
// selection rule. When no sample parses, the first is returned.
func BestOfK(m llm.Model, p dataset.Problem, k int, temperature float64) Result {
	best := ""
	bestScore := -1.0
	for i := 0; i < k; i++ {
		raw := m.Generate(p, llm.GenOptions{Sample: i, Temperature: temperature})
		answer := llm.Postprocess(raw)
		score := yamlmatch.KVWildcardMatch(answer, p.ReferenceYAML)
		if score > bestScore {
			best, bestScore = answer, score
		}
	}
	return Result{Answer: best, Samples: k}
}

// Greedy is the baseline: one zero-temperature sample.
func Greedy(m llm.Model, p dataset.Problem) Result {
	raw := m.Generate(p, llm.GenOptions{})
	return Result{Answer: llm.Postprocess(raw), Samples: 1}
}
