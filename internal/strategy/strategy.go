// Package strategy implements the generation-improvement methods the
// paper proposes but leaves as future work:
//
//   - FormatRetry (§4.1, observation 1): "the performance of GPT-4
//     could be further improved by implementing a basic format check to
//     filter out such errors and regenerate new ones" — resample while
//     the answer fails a cheap structural check;
//   - BestOfK (§4.2 + §4.4): generate k samples and pick the best by a
//     cheap YAML-aware metric instead of running unit tests, the
//     practical variant of multi-sample generation when no oracle is
//     available.
//
// Every strategy draws its samples through an inference.Generator —
// the sim zoo, a recorded trace, or a live endpoint — via one shared
// generate+Postprocess path, so strategies meter and cache exactly
// like the campaigns do.
package strategy

import (
	"context"

	"cloudeval/internal/dataset"
	"cloudeval/internal/inference"
	"cloudeval/internal/llm"
	"cloudeval/internal/scenario"
	"cloudeval/internal/yamlmatch"
	"cloudeval/internal/yamlx"
)

// FormatCheck reports whether an answer passes the basic structural
// filter: non-trivial length, parses as YAML, and carries the problem
// family's top-level marker (kind+apiVersion for manifest families,
// static_resources for Envoy, services for Compose — declared by the
// scenario backend). This is exactly the check that would catch the
// paper's failure categories 1-3 without any cluster access.
func FormatCheck(answer string, p dataset.Problem) bool {
	docs, err := yamlx.ParseAllCached([]byte(answer))
	if err != nil {
		return false
	}
	backend := scenario.For(p.Category)
	for _, d := range docs {
		if d == nil || d.Kind == yamlx.NullKind {
			continue
		}
		if d.Kind != yamlx.MapKind {
			return false
		}
		if !backend.HasKind {
			if d.Has(backend.Marker) {
				return true
			}
			continue
		}
		if d.Has("kind") && d.Has("apiVersion") {
			return true
		}
	}
	return false
}

// Result is one strategy outcome.
type Result struct {
	Answer  string
	Samples int // how many generations were spent
}

// generate is the one generate+Postprocess path every strategy
// shares: draw the raw sample from g and extract clean YAML.
func generate(g inference.Generator, m llm.Model, p dataset.Problem, opts llm.GenOptions) (raw, answer string, err error) {
	resp, err := g.Generate(context.Background(), inference.Request{Model: m.Name, Problem: p, Opts: opts})
	if err != nil {
		return "", "", err
	}
	return resp.Text, llm.Postprocess(resp.Text), nil
}

// FormatRetry regenerates (at the given temperature) until the answer
// passes FormatCheck or the budget is exhausted; the last sample is
// returned either way. The sample stream can run dry before the
// budget does: at temperature 0 every sample is the pinned greedy
// answer, and even at temperature > 0 a model can repeat itself — so
// the loop short-circuits as soon as a raw sample repeats the
// previous one, instead of burning the remaining budget regenerating
// an answer it has already rejected.
func FormatRetry(g inference.Generator, m llm.Model, p dataset.Problem, maxSamples int, temperature float64) (Result, error) {
	var answer, prevRaw string
	for k := 0; k < maxSamples; k++ {
		raw, ans, err := generate(g, m, p, llm.GenOptions{Sample: k, Temperature: temperature})
		if err != nil {
			return Result{Answer: answer, Samples: k}, err
		}
		if k > 0 && raw == prevRaw {
			return Result{Answer: answer, Samples: k + 1}, nil
		}
		prevRaw, answer = raw, ans
		if FormatCheck(answer, p) {
			return Result{Answer: answer, Samples: k + 1}, nil
		}
		if temperature == 0 {
			// Deterministic stream: every further sample is this one.
			return Result{Answer: answer, Samples: k + 1}, nil
		}
	}
	return Result{Answer: answer, Samples: maxSamples}, nil
}

// BestOfK draws k samples and returns the one with the highest
// KV-wildcard match against the labeled reference — the §4.4 insight
// (kv_wildcard is the best cheap proxy for the unit test) turned into a
// selection rule. When no sample parses, the first is returned.
func BestOfK(g inference.Generator, m llm.Model, p dataset.Problem, k int, temperature float64) (Result, error) {
	best := ""
	bestScore := -1.0
	for i := 0; i < k; i++ {
		_, answer, err := generate(g, m, p, llm.GenOptions{Sample: i, Temperature: temperature})
		if err != nil {
			return Result{Answer: best, Samples: i}, err
		}
		score := yamlmatch.KVWildcardMatch(answer, p.ReferenceYAML)
		if score > bestScore {
			best, bestScore = answer, score
		}
	}
	return Result{Answer: best, Samples: k}, nil
}

// Greedy is the baseline: one zero-temperature sample.
func Greedy(g inference.Generator, m llm.Model, p dataset.Problem) (Result, error) {
	_, answer, err := generate(g, m, p, llm.GenOptions{})
	if err != nil {
		return Result{}, err
	}
	return Result{Answer: answer, Samples: 1}, nil
}
