package strategy

import (
	"context"
	"sync/atomic"
	"testing"

	"cloudeval/internal/dataset"
	"cloudeval/internal/inference"
	"cloudeval/internal/llm"
	"cloudeval/internal/unittest"
)

func TestFormatCheck(t *testing.T) {
	var k8s, envoy, compose dataset.Problem
	for _, p := range dataset.Generate() {
		switch p.Subcategory {
		case "pod":
			if k8s.ID == "" {
				k8s = p
			}
		case "envoy":
			if envoy.ID == "" {
				envoy = p
			}
		case "compose":
			if compose.ID == "" {
				compose = p
			}
		}
	}
	cases := []struct {
		name   string
		answer string
		p      dataset.Problem
		want   bool
	}{
		{"empty", "", k8s, false},
		{"prose", "first do this\nthen do that\nfinally check\n", k8s, false},
		{"broken", "kind: Pod\nmetadata:\n  x: [broken\n", k8s, false},
		{"valid-k8s", "apiVersion: v1\nkind: Pod\nmetadata:\n  name: x\n", k8s, true},
		{"kind-without-apiversion", "kind: Pod\nmetadata:\n  name: x\n", k8s, false},
		{"valid-envoy", "static_resources:\n  listeners: []\n", envoy, true},
		{"k8s-answer-for-envoy", "apiVersion: v1\nkind: Pod\nmetadata:\n  name: x\n", envoy, false},
		{"valid-compose", "services:\n  web:\n    image: nginx:latest\n", compose, true},
		{"k8s-answer-for-compose", "apiVersion: v1\nkind: Pod\nmetadata:\n  name: x\n", compose, false},
		{"compose-answer-for-k8s", "services:\n  web:\n    image: nginx:latest\n", k8s, false},
	}
	for _, c := range cases {
		if got := FormatCheck(c.answer, c.p); got != c.want {
			t.Errorf("%s: FormatCheck = %v, want %v", c.name, got, c.want)
		}
	}
}

// countingProvider counts live generations, the quantity the
// FormatRetry budget regression is about.
type countingProvider struct {
	inner inference.Provider
	calls atomic.Int64
}

func (c *countingProvider) Name() string { return "counting" }
func (c *countingProvider) Generate(ctx context.Context, req inference.Request) (inference.Response, error) {
	c.calls.Add(1)
	return c.inner.Generate(ctx, req)
}
func (c *countingProvider) Close() error { return c.inner.Close() }

// runOK returns a helper that unwraps a strategy result, failing the
// test on a generation error.
func runOK(t *testing.T) func(Result, error) Result {
	return func(r Result, err error) Result {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
}

// TestFormatRetryImprovesWeakModels verifies the paper's observation 1:
// filtering category 1-3 failures and regenerating lifts pass rates,
// especially for models that frequently emit malformed output.
func TestFormatRetryImprovesWeakModels(t *testing.T) {
	problems := dataset.Generate()[:150]
	m, _ := llm.ByName("gpt-4") // makes category-1 mistakes, per Figure 7
	gen := inference.NewDispatcher(inference.NewSim(llm.Models))
	ok := runOK(t)
	basePass, retryPass, retryBudget := 0, 0, 0
	for _, p := range problems {
		if unittest.Run(p, ok(Greedy(gen, m, p)).Answer).Passed {
			basePass++
		}
		r := ok(FormatRetry(gen, m, p, 4, 0.75))
		retryBudget += r.Samples
		if unittest.Run(p, r.Answer).Passed {
			retryPass++
		}
	}
	if retryPass < basePass {
		t.Errorf("format retry regressed: %d -> %d passes", basePass, retryPass)
	}
	// The retry budget stays modest: most answers pass the check first
	// try.
	if retryBudget > len(problems)*2 {
		t.Errorf("retry spent %d samples on %d problems", retryBudget, len(problems))
	}
	// And retried answers always satisfy the format check when the model
	// can produce one at all.
	formatOK := 0
	for _, p := range problems {
		if FormatCheck(ok(FormatRetry(gen, m, p, 4, 0.75)).Answer, p) {
			formatOK++
		}
	}
	if formatOK < len(problems)*8/10 {
		t.Errorf("only %d/%d retried answers are well-formed", formatOK, len(problems))
	}
}

// TestFormatRetryShortCircuitsAtTemperatureZero is the budget
// regression test: at temperature 0 every sample is the pinned greedy
// answer, so a failing format check must not burn the remaining
// sample budget regenerating it — one live generation, never four.
// The strategy is driven by a bare counting provider (no dispatcher
// cache), so the count measures the short-circuit itself rather than
// cache hits.
func TestFormatRetryShortCircuitsAtTemperatureZero(t *testing.T) {
	m, _ := llm.ByName("llama-13b-lora") // weak: plenty of category 1-3 answers
	cp := &countingProvider{inner: inference.NewSim(llm.Models)}
	ok := runOK(t)
	failing := 0
	for _, p := range dataset.Generate()[:150] {
		cp.calls.Store(0)
		r := ok(FormatRetry(cp, m, p, 4, 0))
		if FormatCheck(r.Answer, p) {
			continue
		}
		failing++
		if got := cp.calls.Load(); got != 1 {
			t.Fatalf("%s: FormatRetry at temperature 0 spent %d generations, want 1", p.ID, got)
		}
		if r.Samples != 1 {
			t.Fatalf("%s: Samples = %d, want 1", p.ID, r.Samples)
		}
	}
	if failing == 0 {
		t.Fatal("test needs at least one problem whose greedy answer fails the format check")
	}
}

// TestFormatRetryShortCircuitsOnRepeat covers the generic repeat
// detection: a provider that keeps returning the same malformed text
// at temperature > 0 stops the loop after the first repeated sample.
func TestFormatRetryShortCircuitsOnRepeat(t *testing.T) {
	p := dataset.Generate()[0]
	m, _ := llm.ByName("gpt-4")
	cp := &countingProvider{inner: constantProvider{text: "not yaml at all"}}
	ok := runOK(t)
	r := ok(FormatRetry(cp, m, p, 8, 0.75))
	if got := cp.calls.Load(); got != 2 {
		t.Fatalf("FormatRetry spent %d generations on a constant stream, want 2 (sample + repeat)", got)
	}
	if r.Samples != 2 {
		t.Fatalf("Samples = %d, want 2", r.Samples)
	}
}

type constantProvider struct{ text string }

func (c constantProvider) Name() string { return "constant" }
func (c constantProvider) Generate(ctx context.Context, req inference.Request) (inference.Response, error) {
	return inference.Response{Text: c.text}, nil
}
func (c constantProvider) Close() error { return nil }

// TestBestOfKBeatsGreedy verifies the cheap-metric selector captures
// most of the multi-sample gain without running unit tests.
func TestBestOfKBeatsGreedy(t *testing.T) {
	problems := dataset.Generate()[:150]
	m, _ := llm.ByName("gpt-3.5")
	gen := inference.NewDispatcher(inference.NewSim(llm.Models))
	ok := runOK(t)
	greedy, best := 0, 0
	for _, p := range problems {
		if unittest.Run(p, ok(Greedy(gen, m, p)).Answer).Passed {
			greedy++
		}
		if unittest.Run(p, ok(BestOfK(gen, m, p, 6, 0.75)).Answer).Passed {
			best++
		}
	}
	if best <= greedy {
		t.Errorf("best-of-6 (%d) should beat greedy (%d)", best, greedy)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	p := dataset.Generate()[0]
	m, _ := llm.ByName("gpt-4")
	gen := inference.NewDispatcher(inference.NewSim(llm.Models))
	ok := runOK(t)
	if ok(Greedy(gen, m, p)).Answer != ok(Greedy(gen, m, p)).Answer {
		t.Error("greedy strategy must be deterministic")
	}
}
