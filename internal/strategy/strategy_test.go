package strategy

import (
	"testing"

	"cloudeval/internal/dataset"
	"cloudeval/internal/llm"
	"cloudeval/internal/unittest"
)

func TestFormatCheck(t *testing.T) {
	var k8s, envoy, compose dataset.Problem
	for _, p := range dataset.Generate() {
		switch p.Subcategory {
		case "pod":
			if k8s.ID == "" {
				k8s = p
			}
		case "envoy":
			if envoy.ID == "" {
				envoy = p
			}
		case "compose":
			if compose.ID == "" {
				compose = p
			}
		}
	}
	cases := []struct {
		name   string
		answer string
		p      dataset.Problem
		want   bool
	}{
		{"empty", "", k8s, false},
		{"prose", "first do this\nthen do that\nfinally check\n", k8s, false},
		{"broken", "kind: Pod\nmetadata:\n  x: [broken\n", k8s, false},
		{"valid-k8s", "apiVersion: v1\nkind: Pod\nmetadata:\n  name: x\n", k8s, true},
		{"kind-without-apiversion", "kind: Pod\nmetadata:\n  name: x\n", k8s, false},
		{"valid-envoy", "static_resources:\n  listeners: []\n", envoy, true},
		{"k8s-answer-for-envoy", "apiVersion: v1\nkind: Pod\nmetadata:\n  name: x\n", envoy, false},
		{"valid-compose", "services:\n  web:\n    image: nginx:latest\n", compose, true},
		{"k8s-answer-for-compose", "apiVersion: v1\nkind: Pod\nmetadata:\n  name: x\n", compose, false},
		{"compose-answer-for-k8s", "services:\n  web:\n    image: nginx:latest\n", k8s, false},
	}
	for _, c := range cases {
		if got := FormatCheck(c.answer, c.p); got != c.want {
			t.Errorf("%s: FormatCheck = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestFormatRetryImprovesWeakModels verifies the paper's observation 1:
// filtering category 1-3 failures and regenerating lifts pass rates,
// especially for models that frequently emit malformed output.
func TestFormatRetryImprovesWeakModels(t *testing.T) {
	problems := dataset.Generate()[:150]
	m, _ := llm.ByName("gpt-4") // makes category-1 mistakes, per Figure 7
	basePass, retryPass, retryBudget := 0, 0, 0
	for _, p := range problems {
		if unittest.Run(p, Greedy(m, p).Answer).Passed {
			basePass++
		}
		r := FormatRetry(m, p, 4, 0.75)
		retryBudget += r.Samples
		if unittest.Run(p, r.Answer).Passed {
			retryPass++
		}
	}
	if retryPass < basePass {
		t.Errorf("format retry regressed: %d -> %d passes", basePass, retryPass)
	}
	// The retry budget stays modest: most answers pass the check first
	// try.
	if retryBudget > len(problems)*2 {
		t.Errorf("retry spent %d samples on %d problems", retryBudget, len(problems))
	}
	// And retried answers always satisfy the format check when the model
	// can produce one at all.
	formatOK := 0
	for _, p := range problems {
		if FormatCheck(FormatRetry(m, p, 4, 0.75).Answer, p) {
			formatOK++
		}
	}
	if formatOK < len(problems)*8/10 {
		t.Errorf("only %d/%d retried answers are well-formed", formatOK, len(problems))
	}
}

// TestBestOfKBeatsGreedy verifies the cheap-metric selector captures
// most of the multi-sample gain without running unit tests.
func TestBestOfKBeatsGreedy(t *testing.T) {
	problems := dataset.Generate()[:150]
	m, _ := llm.ByName("gpt-3.5")
	greedy, best := 0, 0
	for _, p := range problems {
		if unittest.Run(p, Greedy(m, p).Answer).Passed {
			greedy++
		}
		if unittest.Run(p, BestOfK(m, p, 6, 0.75).Answer).Passed {
			best++
		}
	}
	if best <= greedy {
		t.Errorf("best-of-6 (%d) should beat greedy (%d)", best, greedy)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	p := dataset.Generate()[0]
	m, _ := llm.ByName("gpt-4")
	if Greedy(m, p).Answer != Greedy(m, p).Answer {
		t.Error("greedy strategy must be deterministic")
	}
}
