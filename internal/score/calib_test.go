package score

import (
	"testing"

	"cloudeval/internal/llm"
)

func TestPrintCalibration(t *testing.T) {
	rows, _ := Benchmark(llm.Models, fullCorpus())
	for _, r := range rows {
		t.Logf("%-24s unit=%.3f bleu=%.3f kvw=%.3f", r.Model, r.UnitTest, r.BLEU, r.KVWildcard)
	}
}
