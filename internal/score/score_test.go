package score

import (
	"math"
	"strings"
	"testing"

	"cloudeval/internal/augment"
	"cloudeval/internal/dataset"
	"cloudeval/internal/llm"
	"cloudeval/internal/yamlmatch"
)

func fullCorpus() []dataset.Problem {
	return augment.ExpandCorpus(dataset.Generate())
}

func TestScoreAnswerPerfect(t *testing.T) {
	p := dataset.Generate()[0]
	clean := yamlmatch.StripLabels(p.ReferenceYAML)
	s := ScoreAnswer(p, clean)
	if s.UnitTest != 1 {
		t.Errorf("reference unit test = %v", s.UnitTest)
	}
	if s.KVWildcard != 1 {
		t.Errorf("reference KV wildcard = %v", s.KVWildcard)
	}
	if s.BLEU < 0.95 {
		t.Errorf("reference BLEU = %v", s.BLEU)
	}
	if s.ExactMatch != 1 || s.EditDist != 1 || s.KVExact != 1 {
		t.Errorf("reference text scores: %+v", s)
	}
}

func TestScoreAnswerGarbage(t *testing.T) {
	p := dataset.Generate()[0]
	s := ScoreAnswer(p, "completely unrelated text that is not yaml at all")
	if s.UnitTest != 0 || s.KVWildcard > 0.2 || s.ExactMatch != 0 {
		t.Errorf("garbage scores too high: %+v", s)
	}
}

func TestMetricAccessors(t *testing.T) {
	s := ProblemScore{BLEU: 1, EditDist: 2, ExactMatch: 3, KVExact: 4, KVWildcard: 5, UnitTest: 6}
	for i, name := range Metrics {
		if got := s.Metric(name); got != float64(i+1) {
			t.Errorf("Metric(%q) = %v, want %d", name, got, i+1)
		}
	}
}

// TestTable4Calibration runs the full zero-shot benchmark (12 models ×
// 1011 problems) and checks the paper's headline shape: the ranking
// order, the proprietary/open-source gap, and rough magnitudes.
func TestTable4Calibration(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark in -short mode")
	}
	rows, _ := Benchmark(llm.Models, fullCorpus())
	byName := map[string]ModelAggregate{}
	for _, r := range rows {
		byName[r.Model] = r
	}

	paper := map[string]float64{
		"gpt-4":                  0.515,
		"gpt-3.5":                0.412,
		"palm-2-bison":           0.322,
		"llama-2-70b-chat":       0.085,
		"llama-2-13b-chat":       0.067,
		"wizardcoder-34b-v1.0":   0.056,
		"llama-2-7b-chat":        0.027,
		"wizardcoder-15b-v1.0":   0.026,
		"llama-7b":               0.023,
		"llama-13b-lora":         0.021,
		"codellama-7b-instruct":  0.015,
		"codellama-13b-instruct": 0.012,
	}
	for name, want := range paper {
		got := byName[name].UnitTest
		tol := 0.35*want + 0.02
		if math.Abs(got-want) > tol {
			t.Errorf("%s unit test = %.3f, paper %.3f (tolerance %.3f)", name, got, want, tol)
		}
	}

	// Headline orderings.
	if !(byName["gpt-4"].UnitTest > byName["gpt-3.5"].UnitTest &&
		byName["gpt-3.5"].UnitTest > byName["palm-2-bison"].UnitTest) {
		t.Error("proprietary ranking broken")
	}
	bestOpen := 0.0
	for _, r := range rows {
		if r.OpenSource && r.UnitTest > bestOpen {
			bestOpen = r.UnitTest
		}
	}
	if byName["palm-2-bison"].UnitTest <= bestOpen {
		t.Errorf("proprietary models should dominate open source: palm %.3f vs best open %.3f",
			byName["palm-2-bison"].UnitTest, bestOpen)
	}
	// The paper's signature gap: GPT-4 about 6x Llama-2-70B.
	ratio := byName["gpt-4"].UnitTest / byName["llama-2-70b-chat"].UnitTest
	if ratio < 3.5 || ratio > 10 {
		t.Errorf("GPT-4 / Llama-2-70B unit-test ratio = %.2f, paper has ~6.1", ratio)
	}
	// Code models behind general models of smaller size.
	if byName["wizardcoder-34b-v1.0"].UnitTest > byName["llama-2-13b-chat"].UnitTest*1.5 {
		t.Errorf("code models should not lead similar general models: wizard-34b %.3f vs llama-13b %.3f",
			byName["wizardcoder-34b-v1.0"].UnitTest, byName["llama-2-13b-chat"].UnitTest)
	}
	// Metric sanity: BLEU and KV-wildcard track the unit test ordering
	// loosely (top model leads both).
	top := rows[0]
	if top.Model != "gpt-4" {
		t.Errorf("rank 1 = %s, want gpt-4", top.Model)
	}
	for _, r := range rows[1:] {
		if r.BLEU > top.BLEU+0.05 || r.KVWildcard > top.KVWildcard+0.05 {
			t.Errorf("%s beats gpt-4 on text/KV metrics: %+v vs %+v", r.Model, r, top)
		}
	}
}

func TestFormatTable4(t *testing.T) {
	rows := []ModelAggregate{{Model: "gpt-4", Size: "?", UnitTest: 0.5, BLEU: 0.6}}
	out := FormatTable4(rows)
	for _, want := range []string{"Rank", "gpt-4", "0.500", "0.600"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 output missing %q:\n%s", want, out)
		}
	}
}
