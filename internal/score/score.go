// Package score computes the benchmark's six performance metrics (§3.2)
// for generated answers — BLEU, edit distance, exact match (text
// level); key-value exact and key-value wildcard match (YAML-aware);
// unit test (function level) — and aggregates them into the Table 4
// model ranking.
package score

import (
	"fmt"
	"sort"
	"strings"

	"cloudeval/internal/dataset"
	"cloudeval/internal/llm"
	"cloudeval/internal/textmetrics"
	"cloudeval/internal/unittest"
	"cloudeval/internal/yamlmatch"
)

// ProblemScore is one (model, problem) evaluation.
type ProblemScore struct {
	ProblemID string
	Model     string
	Variant   dataset.Variant

	// Answer is the post-processed YAML extracted from the response.
	Answer string

	BLEU       float64
	EditDist   float64
	ExactMatch float64
	KVExact    float64
	KVWildcard float64
	UnitTest   float64
}

// Metrics lists the six metric names in presentation order.
var Metrics = []string{"bleu", "edit_distance", "exact_match", "kv_exact", "kv_wildcard", "unit_test"}

// Metric extracts a named metric value.
func (s ProblemScore) Metric(name string) float64 {
	switch name {
	case "bleu":
		return s.BLEU
	case "edit_distance":
		return s.EditDist
	case "exact_match":
		return s.ExactMatch
	case "kv_exact":
		return s.KVExact
	case "kv_wildcard":
		return s.KVWildcard
	case "unit_test":
		return s.UnitTest
	}
	return 0
}

// ScoreAnswer computes all six metrics for a clean answer against a
// problem. The unit test runs in a fresh simulated environment.
func ScoreAnswer(p dataset.Problem, answer string) ProblemScore {
	cleanRef := yamlmatch.StripLabels(p.ReferenceYAML)
	s := ProblemScore{
		ProblemID:  p.ID,
		Variant:    p.Variant,
		Answer:     answer,
		BLEU:       textmetrics.BLEU(answer, cleanRef),
		EditDist:   textmetrics.EditDistanceScore(answer, cleanRef),
		ExactMatch: textmetrics.ExactMatch(answer, cleanRef),
		KVExact:    yamlmatch.KVExactMatch(answer, cleanRef),
		KVWildcard: yamlmatch.KVWildcardMatch(answer, p.ReferenceYAML),
	}
	s.UnitTest = unittest.Run(p, answer).Score()
	return s
}

// EvaluateModel runs a model over a problem set with the given
// generation options, scoring every answer.
func EvaluateModel(m llm.Model, problems []dataset.Problem, opts llm.GenOptions) []ProblemScore {
	out := make([]ProblemScore, 0, len(problems))
	for _, p := range problems {
		if m.EnglishOnly && p.Variant == dataset.Translated {
			continue
		}
		raw := m.Generate(p, opts)
		answer := llm.Postprocess(raw)
		s := ScoreAnswer(p, answer)
		s.Model = m.Name
		out = append(out, s)
	}
	return out
}

// ModelAggregate is one Table 4 row.
type ModelAggregate struct {
	Model      string
	Size       string
	OpenSource bool
	Count      int

	BLEU       float64
	EditDist   float64
	ExactMatch float64
	KVExact    float64
	KVWildcard float64
	UnitTest   float64
}

// Metric extracts a named aggregate value.
func (a ModelAggregate) Metric(name string) float64 {
	switch name {
	case "bleu":
		return a.BLEU
	case "edit_distance":
		return a.EditDist
	case "exact_match":
		return a.ExactMatch
	case "kv_exact":
		return a.KVExact
	case "kv_wildcard":
		return a.KVWildcard
	case "unit_test":
		return a.UnitTest
	}
	return 0
}

// Aggregate averages per-problem scores into a model row.
func Aggregate(m llm.Model, scores []ProblemScore) ModelAggregate {
	agg := ModelAggregate{Model: m.Name, Size: m.Size, OpenSource: m.OpenSource, Count: len(scores)}
	if len(scores) == 0 {
		return agg
	}
	for _, s := range scores {
		agg.BLEU += s.BLEU
		agg.EditDist += s.EditDist
		agg.ExactMatch += s.ExactMatch
		agg.KVExact += s.KVExact
		agg.KVWildcard += s.KVWildcard
		agg.UnitTest += s.UnitTest
	}
	n := float64(len(scores))
	agg.BLEU /= n
	agg.EditDist /= n
	agg.ExactMatch /= n
	agg.KVExact /= n
	agg.KVWildcard /= n
	agg.UnitTest /= n
	return agg
}

// Benchmark runs the full zero-shot benchmark: every model over every
// problem, returning rows sorted by unit-test score (Table 4) plus the
// raw per-problem scores for downstream analysis.
func Benchmark(models []llm.Model, problems []dataset.Problem) ([]ModelAggregate, map[string][]ProblemScore) {
	rows := make([]ModelAggregate, 0, len(models))
	raw := make(map[string][]ProblemScore, len(models))
	for _, m := range models {
		scores := EvaluateModel(m, problems, llm.GenOptions{})
		raw[m.Name] = scores
		rows = append(rows, Aggregate(m, scores))
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].UnitTest > rows[j].UnitTest })
	return rows, raw
}

// FormatTable4 renders rows in the paper's Table 4 layout.
func FormatTable4(rows []ModelAggregate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-24s %-5s %-5s %8s %8s %8s %9s %9s %9s\n",
		"Rank", "Model", "Size", "Open", "BLEU", "EditDist", "Exact", "KV-Exact", "KV-Wild", "UnitTest")
	for i, r := range rows {
		open := "N"
		if r.OpenSource {
			open = "Y"
		}
		fmt.Fprintf(&b, "%-4d %-24s %-5s %-5s %8.3f %8.3f %8.3f %9.3f %9.3f %9.3f\n",
			i+1, r.Model, r.Size, open, r.BLEU, r.EditDist, r.ExactMatch, r.KVExact, r.KVWildcard, r.UnitTest)
	}
	return b.String()
}
