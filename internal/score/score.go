// Package score computes the benchmark's six performance metrics (§3.2)
// for generated answers — BLEU, edit distance, exact match (text
// level); key-value exact and key-value wildcard match (YAML-aware);
// unit test (function level) — and aggregates them into the Table 4
// model ranking.
package score

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cloudeval/internal/dataset"
	"cloudeval/internal/engine"
	"cloudeval/internal/inference"
	"cloudeval/internal/llm"
	"cloudeval/internal/textmetrics"
	"cloudeval/internal/unittest"
	"cloudeval/internal/yamlmatch"
)

// ProblemScore is one (model, problem) evaluation.
type ProblemScore struct {
	ProblemID string
	Model     string
	Variant   dataset.Variant

	// Answer is the post-processed YAML extracted from the response.
	Answer string

	BLEU       float64
	EditDist   float64
	ExactMatch float64
	KVExact    float64
	KVWildcard float64
	UnitTest   float64
}

// Metrics lists the six metric names in presentation order.
var Metrics = []string{"bleu", "edit_distance", "exact_match", "kv_exact", "kv_wildcard", "unit_test"}

// Metric extracts a named metric value.
func (s ProblemScore) Metric(name string) float64 {
	switch name {
	case "bleu":
		return s.BLEU
	case "edit_distance":
		return s.EditDist
	case "exact_match":
		return s.ExactMatch
	case "kv_exact":
		return s.KVExact
	case "kv_wildcard":
		return s.KVWildcard
	case "unit_test":
		return s.UnitTest
	}
	return 0
}

// ScoreAnswer computes all six metrics for a clean answer against a
// problem, running the unit test through the process-wide default
// engine (in-process pool with memoization).
func ScoreAnswer(p dataset.Problem, answer string) ProblemScore {
	return ScoreAnswerWith(engine.Default(), p, answer)
}

// refContext caches the per-reference artifacts every model evaluation
// recomputed in the serial seed: the label-stripped reference text and
// its BLEU n-gram statistics. A twelve-model campaign reuses each
// problem's reference twelve times, so this alone removes a third of
// the scoring cost. The cache is keyed by the labeled reference text
// itself — content, not problem ID — so it cannot alias, and variants
// sharing a reference share one entry. Distinct references are bounded
// by the corpus, so so is the cache.
type refContext struct {
	clean string
	bleu  *textmetrics.BLEURef
}

var refCache sync.Map // labeled reference text -> *refContext

func refFor(p dataset.Problem) *refContext {
	if v, ok := refCache.Load(p.ReferenceYAML); ok {
		return v.(*refContext)
	}
	clean := yamlmatch.StripLabels(p.ReferenceYAML)
	v, _ := refCache.LoadOrStore(p.ReferenceYAML, &refContext{clean: clean, bleu: textmetrics.NewBLEURef(clean)})
	return v.(*refContext)
}

// ScoreAnswerWith computes all six metrics, submitting the unit test —
// the function-level metric that needs a simulated cluster — through
// eng. The five text-level and YAML-aware metrics are cheap and run
// inline against the problem's cached reference context.
func ScoreAnswerWith(eng *engine.Engine, p dataset.Problem, answer string) ProblemScore {
	ref := refFor(p)
	s := ProblemScore{
		ProblemID:  p.ID,
		Variant:    p.Variant,
		Answer:     answer,
		BLEU:       ref.bleu.Score(answer),
		EditDist:   textmetrics.EditDistanceScore(answer, ref.clean),
		ExactMatch: textmetrics.ExactMatch(answer, ref.clean),
		KVExact:    yamlmatch.KVExactMatch(answer, ref.clean),
		KVWildcard: yamlmatch.KVWildcardMatch(answer, p.ReferenceYAML),
	}
	s.UnitTest = eng.UnitTest(p, answer).Score()
	return s
}

// scoreAnswerSerial is the pre-engine path: the unit test runs directly
// on the calling goroutine with no cache. Kept as the baseline the
// engine is benchmarked and determinism-tested against.
func scoreAnswerSerial(p dataset.Problem, answer string) ProblemScore {
	cleanRef := yamlmatch.StripLabels(p.ReferenceYAML)
	s := ProblemScore{
		ProblemID:  p.ID,
		Variant:    p.Variant,
		Answer:     answer,
		BLEU:       textmetrics.BLEU(answer, cleanRef),
		EditDist:   textmetrics.EditDistanceScore(answer, cleanRef),
		ExactMatch: textmetrics.ExactMatch(answer, cleanRef),
		KVExact:    yamlmatch.KVExactMatch(answer, cleanRef),
		KVWildcard: yamlmatch.KVWildcardMatch(answer, p.ReferenceYAML),
	}
	s.UnitTest = unittest.Run(p, answer).Score()
	return s
}

// evalProblems filters a model's problem set (English-only APIs skip
// translated questions).
func evalProblems(m llm.Model, problems []dataset.Problem) []dataset.Problem {
	kept := make([]dataset.Problem, 0, len(problems))
	for _, p := range problems {
		if m.EnglishOnly && p.Variant == dataset.Translated {
			continue
		}
		kept = append(kept, p)
	}
	return kept
}

// EvaluateModel runs a model over a problem set with the given
// generation options through the default engine and the default
// inference dispatcher (sim zoo).
func EvaluateModel(m llm.Model, problems []dataset.Problem, opts llm.GenOptions) []ProblemScore {
	return EvaluateModelWith(engine.Default(), m, problems, opts)
}

// EvaluateModelWith is EvaluateModelVia on the process-wide default
// dispatcher.
func EvaluateModelWith(eng *engine.Engine, m llm.Model, problems []dataset.Problem, opts llm.GenOptions) []ProblemScore {
	return EvaluateModelVia(eng, inference.Default(), m, problems, opts)
}

// EvaluateModelVia streams every kept problem through the two-stage
// pipeline: an IO-sized generation stage (gen's provider and caches,
// fan-out set by gen.Concurrency()) feeding the engine's CPU-sized
// execution pool, with the pipeline's backpressure window keeping
// generations at most a bounded lead ahead of scoring. Results land in
// problem order, so the output is byte-identical to the serial path
// regardless of schedule. Generation failures score as empty answers
// and latch into gen.Err.
func EvaluateModelVia(eng *engine.Engine, gen *inference.Dispatcher, m llm.Model, problems []dataset.Problem, opts llm.GenOptions) []ProblemScore {
	kept := evalProblems(m, problems)
	// One warm pass over the corpus feeds both cache-key pipelines
	// (unit-test digests for eng, prompt digests and token counts for
	// gen) before the parallel phase starts hammering them.
	engine.WarmDigests(kept)
	inference.WarmPrompts(kept, opts.Shots)
	out := make([]ProblemScore, len(kept))
	engine.Pipeline(eng, len(kept), gen.Concurrency(), 0,
		func(i int) string {
			return gen.Answer(m, kept[i], opts)
		},
		func(i int, answer string) {
			s := ScoreAnswerWith(eng, kept[i], answer)
			s.Model = m.Name
			out[i] = s
		})
	return out
}

// EvaluateModelSerial is the pre-engine loop: one problem at a time on
// the calling goroutine, no cache. The baseline for
// BenchmarkZeroShotEngine and the determinism tests.
func EvaluateModelSerial(m llm.Model, problems []dataset.Problem, opts llm.GenOptions) []ProblemScore {
	kept := evalProblems(m, problems)
	out := make([]ProblemScore, 0, len(kept))
	for _, p := range kept {
		answer := llm.Postprocess(m.Generate(p, opts))
		s := scoreAnswerSerial(p, answer)
		s.Model = m.Name
		out = append(out, s)
	}
	return out
}

// ModelAggregate is one Table 4 row.
type ModelAggregate struct {
	Model      string
	Size       string
	OpenSource bool
	Count      int

	BLEU       float64
	EditDist   float64
	ExactMatch float64
	KVExact    float64
	KVWildcard float64
	UnitTest   float64
}

// Metric extracts a named aggregate value.
func (a ModelAggregate) Metric(name string) float64 {
	switch name {
	case "bleu":
		return a.BLEU
	case "edit_distance":
		return a.EditDist
	case "exact_match":
		return a.ExactMatch
	case "kv_exact":
		return a.KVExact
	case "kv_wildcard":
		return a.KVWildcard
	case "unit_test":
		return a.UnitTest
	}
	return 0
}

// Aggregate averages per-problem scores into a model row.
func Aggregate(m llm.Model, scores []ProblemScore) ModelAggregate {
	agg := ModelAggregate{Model: m.Name, Size: m.Size, OpenSource: m.OpenSource, Count: len(scores)}
	if len(scores) == 0 {
		return agg
	}
	for _, s := range scores {
		agg.BLEU += s.BLEU
		agg.EditDist += s.EditDist
		agg.ExactMatch += s.ExactMatch
		agg.KVExact += s.KVExact
		agg.KVWildcard += s.KVWildcard
		agg.UnitTest += s.UnitTest
	}
	n := float64(len(scores))
	agg.BLEU /= n
	agg.EditDist /= n
	agg.ExactMatch /= n
	agg.KVExact /= n
	agg.KVWildcard /= n
	agg.UnitTest /= n
	return agg
}

// Benchmark runs the full zero-shot benchmark through the default
// engine and inference dispatcher: every model over every problem,
// returning rows sorted by unit-test score (Table 4) plus the raw
// per-problem scores for downstream analysis.
func Benchmark(models []llm.Model, problems []dataset.Problem) ([]ModelAggregate, map[string][]ProblemScore) {
	return BenchmarkWith(engine.Default(), models, problems)
}

// BenchmarkWith is BenchmarkVia on the process-wide default
// dispatcher.
func BenchmarkWith(eng *engine.Engine, models []llm.Model, problems []dataset.Problem) ([]ModelAggregate, map[string][]ProblemScore) {
	return BenchmarkVia(eng, inference.Default(), models, problems)
}

// BenchmarkVia flattens the campaign into one job per (model, problem)
// pair and streams the whole matrix through the two-stage pipeline at
// once, so a slow model cannot leave workers idle while another still
// has problems queued, and provider latency overlaps with unit-test
// execution instead of adding to it. Generations route through gen —
// the sim zoo, a recorded trace, or a live endpoint, plus the
// generation caches. Scores are written to pair-indexed slots and
// regrouped afterwards: the rows and raw map are byte-identical to
// BenchmarkSerial's.
func BenchmarkVia(eng *engine.Engine, gen *inference.Dispatcher, models []llm.Model, problems []dataset.Problem) ([]ModelAggregate, map[string][]ProblemScore) {
	type pair struct {
		model   int
		problem dataset.Problem
	}
	var pairs []pair
	counts := make([]int, len(models))
	for mi, m := range models {
		kept := evalProblems(m, problems)
		counts[mi] = len(kept)
		for _, p := range kept {
			pairs = append(pairs, pair{model: mi, problem: p})
		}
	}
	// One warm pass over the corpus feeds both cache-key pipelines
	// before the parallel matrix starts: unit-test digests for eng,
	// prompt digests and token counts for gen.
	engine.WarmDigests(problems)
	inference.WarmPrompts(problems, 0)
	scores := make([]ProblemScore, len(pairs))
	engine.Pipeline(eng, len(pairs), gen.Concurrency(), 0,
		func(i int) string {
			return gen.Answer(models[pairs[i].model], pairs[i].problem, llm.GenOptions{})
		},
		func(i int, answer string) {
			pr := pairs[i]
			s := ScoreAnswerWith(eng, pr.problem, answer)
			s.Model = models[pr.model].Name
			scores[i] = s
		})

	rows := make([]ModelAggregate, 0, len(models))
	raw := make(map[string][]ProblemScore, len(models))
	offset := 0
	for mi, m := range models {
		modelScores := scores[offset : offset+counts[mi] : offset+counts[mi]]
		offset += counts[mi]
		raw[m.Name] = modelScores
		rows = append(rows, Aggregate(m, modelScores))
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].UnitTest > rows[j].UnitTest })
	return rows, raw
}

// BenchmarkSerial is the pre-engine campaign loop: models evaluated one
// after another, each problem sequentially, no cache. Kept as the
// baseline for the engine's determinism and speedup claims.
func BenchmarkSerial(models []llm.Model, problems []dataset.Problem) ([]ModelAggregate, map[string][]ProblemScore) {
	rows := make([]ModelAggregate, 0, len(models))
	raw := make(map[string][]ProblemScore, len(models))
	for _, m := range models {
		scores := EvaluateModelSerial(m, problems, llm.GenOptions{})
		raw[m.Name] = scores
		rows = append(rows, Aggregate(m, scores))
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].UnitTest > rows[j].UnitTest })
	return rows, raw
}

// FormatTable4 renders rows in the paper's Table 4 layout.
func FormatTable4(rows []ModelAggregate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-24s %-5s %-5s %8s %8s %8s %9s %9s %9s\n",
		"Rank", "Model", "Size", "Open", "BLEU", "EditDist", "Exact", "KV-Exact", "KV-Wild", "UnitTest")
	for i, r := range rows {
		open := "N"
		if r.OpenSource {
			open = "Y"
		}
		fmt.Fprintf(&b, "%-4d %-24s %-5s %-5s %8.3f %8.3f %8.3f %9.3f %9.3f %9.3f\n",
			i+1, r.Model, r.Size, open, r.BLEU, r.EditDist, r.ExactMatch, r.KVExact, r.KVWildcard, r.UnitTest)
	}
	return b.String()
}
