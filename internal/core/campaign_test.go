package core_test

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cloudeval/internal/core"
	"cloudeval/internal/dataset"
	"cloudeval/internal/engine"
	"cloudeval/internal/inference"
	"cloudeval/internal/llm"
)

func smallBench() *core.Benchmark {
	return core.NewCustomWith(engine.New(), dataset.Generate()[:8], llm.Models[:2])
}

func TestCampaignCheckpointAndResume(t *testing.T) {
	dir := t.TempDir()
	b := smallBench()
	ids := []string{"table2", "table4"}

	var first strings.Builder
	report, err := b.RunCampaign(dir, ids, &first)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(report.Ran, ids) || len(report.Skipped) != 0 {
		t.Fatalf("first run report = %+v", report)
	}
	completed, err := core.CampaignCompleted(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(completed, ids) {
		t.Fatalf("manifest completed = %v, want %v", completed, ids)
	}

	// A fresh benchmark (fresh process) replays from the checkpoint:
	// nothing runs, output identical.
	var second strings.Builder
	report2, err := smallBench().RunCampaign(dir, ids, &second)
	if err != nil {
		t.Fatal(err)
	}
	if len(report2.Ran) != 0 || !reflect.DeepEqual(report2.Skipped, ids) {
		t.Fatalf("resumed report = %+v, want everything skipped", report2)
	}
	if first.String() != second.String() {
		t.Errorf("resumed campaign output differs:\n--- first ---\n%s--- second ---\n%s", first.String(), second.String())
	}
}

func TestCampaignPartialResume(t *testing.T) {
	dir := t.TempDir()
	// Simulate a campaign interrupted after table2: only table2 in the
	// manifest, then a wider re-run.
	if _, err := smallBench().RunCampaign(dir, []string{"table2"}, nil); err != nil {
		t.Fatal(err)
	}
	report, err := smallBench().RunCampaign(dir, []string{"table2", "table4"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(report.Skipped, []string{"table2"}) || !reflect.DeepEqual(report.Ran, []string{"table4"}) {
		t.Fatalf("partial resume report = %+v", report)
	}
}

func TestCampaignMissingOutputFileReruns(t *testing.T) {
	dir := t.TempDir()
	if _, err := smallBench().RunCampaign(dir, []string{"table2"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "table2.txt")); err != nil {
		t.Fatal(err)
	}
	report, err := smallBench().RunCampaign(dir, []string{"table2"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(report.Ran, []string{"table2"}) {
		t.Fatalf("report after deleted checkpoint = %+v, want table2 re-run", report)
	}
}

func TestCampaignUnknownExperiment(t *testing.T) {
	if _, err := smallBench().RunCampaign(t.TempDir(), []string{"table99"}, nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// failingGenProvider errors on every generation.
type failingGenProvider struct{}

func (failingGenProvider) Name() string { return "failing" }
func (failingGenProvider) Generate(ctx context.Context, req inference.Request) (inference.Response, error) {
	return inference.Response{}, fmt.Errorf("backend down")
}
func (failingGenProvider) Close() error { return nil }

// TestCampaignFailsOnGenerationErrors pins the CLI campaign path: an
// experiment whose generations fail must fail the campaign without
// being checkpointed, so a retry after the provider recovers re-runs
// it instead of replaying zero-scored output as complete.
func TestCampaignFailsOnGenerationErrors(t *testing.T) {
	dir := t.TempDir()
	disp := inference.NewDispatcher(failingGenProvider{})
	b := core.NewCustomVia(engine.New(), disp, dataset.Generate()[:4], llm.Models[:2])
	_, err := b.RunCampaign(dir, []string{"table4"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "generation failures") {
		t.Fatalf("campaign over a dead provider: err = %v, want generation failures", err)
	}
	completed, err := core.CampaignCompleted(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(completed) != 0 {
		t.Fatalf("failed experiment checkpointed as complete: %v", completed)
	}

	// After the provider recovers, the same campaign runs clean.
	healthy := core.NewCustomVia(engine.New(), inference.NewDispatcher(inference.NewSim(llm.Models[:2])), dataset.Generate()[:4], llm.Models[:2])
	report, err := healthy.RunCampaign(dir, []string{"table4"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Ran) != 1 || len(report.Skipped) != 0 {
		t.Fatalf("recovered campaign report = %+v, want table4 freshly run", report)
	}
}

// TestValidTenant pins the tenant-name grammar: short alphanumeric
// names (with interior - and _) pass, and anything that could escape
// the checkpoint root — separators, dots, spaces — is rejected.
func TestValidTenant(t *testing.T) {
	for _, good := range []string{"default", "team-a", "a", "x_1", "A9", strings.Repeat("t", 64)} {
		if !core.ValidTenant(good) {
			t.Errorf("ValidTenant(%q) = false, want true", good)
		}
	}
	for _, bad := range []string{
		"", "../evil", "a/b", "a\\b", "a.b", "a b", "-lead", "_lead",
		strings.Repeat("t", 65), "tenänt", "a\x00b",
	} {
		if core.ValidTenant(bad) {
			t.Errorf("ValidTenant(%q) = true, want false", bad)
		}
	}
}

// TestCampaignRoot pins the checkpoint layout contract: the default
// tenant (and the empty string) keep the pre-tenancy campaigns/
// directory so existing data dirs resume in place, and named tenants
// are rooted under tenants/<name>/campaigns.
func TestCampaignRoot(t *testing.T) {
	if got := core.CampaignRoot("data", core.TenantDefault); got != filepath.Join("data", "campaigns") {
		t.Errorf("default tenant root = %q", got)
	}
	if got := core.CampaignRoot("data", ""); got != filepath.Join("data", "campaigns") {
		t.Errorf("empty tenant root = %q", got)
	}
	if got := core.CampaignRoot("data", "beta"); got != filepath.Join("data", "tenants", "beta", "campaigns") {
		t.Errorf("named tenant root = %q", got)
	}
}
