package core_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cloudeval/internal/core"
	"cloudeval/internal/dataset"
	"cloudeval/internal/engine"
	"cloudeval/internal/llm"
)

func smallBench() *core.Benchmark {
	return core.NewCustomWith(engine.New(), dataset.Generate()[:8], llm.Models[:2])
}

func TestCampaignCheckpointAndResume(t *testing.T) {
	dir := t.TempDir()
	b := smallBench()
	ids := []string{"table2", "table4"}

	var first strings.Builder
	report, err := b.RunCampaign(dir, ids, &first)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(report.Ran, ids) || len(report.Skipped) != 0 {
		t.Fatalf("first run report = %+v", report)
	}
	completed, err := core.CampaignCompleted(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(completed, ids) {
		t.Fatalf("manifest completed = %v, want %v", completed, ids)
	}

	// A fresh benchmark (fresh process) replays from the checkpoint:
	// nothing runs, output identical.
	var second strings.Builder
	report2, err := smallBench().RunCampaign(dir, ids, &second)
	if err != nil {
		t.Fatal(err)
	}
	if len(report2.Ran) != 0 || !reflect.DeepEqual(report2.Skipped, ids) {
		t.Fatalf("resumed report = %+v, want everything skipped", report2)
	}
	if first.String() != second.String() {
		t.Errorf("resumed campaign output differs:\n--- first ---\n%s--- second ---\n%s", first.String(), second.String())
	}
}

func TestCampaignPartialResume(t *testing.T) {
	dir := t.TempDir()
	// Simulate a campaign interrupted after table2: only table2 in the
	// manifest, then a wider re-run.
	if _, err := smallBench().RunCampaign(dir, []string{"table2"}, nil); err != nil {
		t.Fatal(err)
	}
	report, err := smallBench().RunCampaign(dir, []string{"table2", "table4"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(report.Skipped, []string{"table2"}) || !reflect.DeepEqual(report.Ran, []string{"table4"}) {
		t.Fatalf("partial resume report = %+v", report)
	}
}

func TestCampaignMissingOutputFileReruns(t *testing.T) {
	dir := t.TempDir()
	if _, err := smallBench().RunCampaign(dir, []string{"table2"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "table2.txt")); err != nil {
		t.Fatal(err)
	}
	report, err := smallBench().RunCampaign(dir, []string{"table2"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(report.Ran, []string{"table2"}) {
		t.Fatalf("report after deleted checkpoint = %+v, want table2 re-run", report)
	}
}

func TestCampaignUnknownExperiment(t *testing.T) {
	if _, err := smallBench().RunCampaign(t.TempDir(), []string{"table99"}, nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
