package core_test

import (
	"context"
	"path/filepath"
	"sync/atomic"
	"testing"

	"cloudeval/internal/core"
	"cloudeval/internal/dataset"
	"cloudeval/internal/engine"
	"cloudeval/internal/inference"
	"cloudeval/internal/llm"
	"cloudeval/internal/store"
)

// countingProvider counts live generations reaching the backend.
type countingProvider struct {
	inner inference.Provider
	calls atomic.Int64
}

func (c *countingProvider) Name() string { return "counting(" + c.inner.Name() + ")" }
func (c *countingProvider) Generate(ctx context.Context, req inference.Request) (inference.Response, error) {
	c.calls.Add(1)
	return c.inner.Generate(ctx, req)
}
func (c *countingProvider) Close() error { return c.inner.Close() }

// TestRecordReplayRoundTripTable4 is the provider layer's acceptance
// test: record the full zero-shot campaign through the Sim provider
// to a JSONL trace, then rebuild the benchmark on the Replay provider
// and regenerate Table 4. The table must be byte-identical and the
// replay must serve every generation from the trace — zero live
// generations, zero misses.
func TestRecordReplayRoundTripTable4(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "gen.trace")
	// One engine for both passes: unit tests memoize across them, so
	// the test isolates the generation path.
	eng := engine.New()

	rec, err := inference.NewRecord(trace, inference.NewSim(llm.Models))
	if err != nil {
		t.Fatal(err)
	}
	recorded := core.NewVia(eng, inference.NewDispatcher(rec))
	want := recorded.Table4()
	if err := recorded.Generator().Err(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	replay, err := inference.OpenReplay(trace)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Len() == 0 {
		t.Fatal("empty trace")
	}
	replayed := core.NewVia(eng, inference.NewDispatcher(replay))
	got := replayed.Table4()
	if err := replayed.Generator().Err(); err != nil {
		t.Fatalf("replay fell short of the campaign: %v", err)
	}
	if got != want {
		t.Errorf("replayed Table 4 differs from the recorded campaign:\n--- recorded ---\n%s--- replayed ---\n%s", want, got)
	}
	if replay.Misses() != 0 {
		t.Errorf("replay missed %d generations", replay.Misses())
	}
	// Families leaderboard shares the ZeroShot campaign, so the full
	// corpus (extension families included) was replayed too.
	if gf, wf := replayed.FamilyLeaderboard(), recorded.FamilyLeaderboard(); gf != wf {
		t.Error("replayed family leaderboard differs")
	}
}

// TestWarmGenerationStore proves the persistent generation cache: a
// campaign run against a warm store issues zero provider calls — the
// generation-side mirror of engine's TestWarmStoreFullCampaign.
func TestWarmGenerationStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	originals := dataset.Generate()[:12]
	models := llm.Models[:3]

	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	cold := &countingProvider{inner: inference.NewSim(models)}
	b1 := core.NewCustomVia(
		engine.New(engine.WithStore(st)),
		inference.NewDispatcher(cold, inference.WithGenStore(st)),
		originals, models)
	want := b1.Table4()
	if cold.calls.Load() == 0 {
		t.Fatal("cold campaign generated nothing")
	}
	if st.GenLen() == 0 {
		t.Fatal("no generations persisted")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process: new store handle, new dispatcher, new engine.
	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	warm := &countingProvider{inner: inference.NewSim(models)}
	disp2 := inference.NewDispatcher(warm, inference.WithGenStore(st2))
	b2 := core.NewCustomVia(engine.New(engine.WithStore(st2)), disp2, originals, models)
	got := b2.Table4()
	if got != want {
		t.Error("warm-store Table 4 differs from the cold run")
	}
	if calls := warm.calls.Load(); calls != 0 {
		t.Errorf("warm campaign issued %d provider calls, want 0", calls)
	}
	if stats := disp2.Stats(); stats.StoreHits == 0 || stats.Generated != 0 {
		t.Errorf("warm dispatcher stats = %+v, want all store hits", stats)
	}
}
