package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// A campaign is a checkpointed experiment run rooted at a directory:
// each completed experiment's output lands in <dir>/<id>.txt, and a
// manifest records which experiment IDs completed. A re-run of the
// same campaign — after a crash, an interrupt, or in a fresh process —
// replays completed experiments from their files and executes only the
// remainder. Paired with a persistent evaluation store under the
// engine, a resumed campaign costs neither generation nor execution.

// ManifestName is the campaign checkpoint file inside a campaign
// directory.
const ManifestName = "manifest.json"

// TenantDefault is the implicit tenant every request without an
// X-Tenant header (or ?tenant= parameter) belongs to. Its campaign
// checkpoints keep the historical single-tenant layout, so pre-tenancy
// data directories resume unchanged.
const TenantDefault = "default"

// ValidTenant reports whether name is a legal tenant identifier: 1-64
// characters of letters, digits, '-' and '_', starting with a letter or
// digit. Tenant names become checkpoint directory components, so the
// grammar deliberately excludes separators, dots and anything else a
// path could be built from.
func ValidTenant(name string) bool {
	if len(name) == 0 || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case (c == '-' || c == '_') && i > 0:
		default:
			return false
		}
	}
	return true
}

// CampaignRoot returns the campaign checkpoint root for a tenant under
// dataDir: the historical <dataDir>/campaigns for the default tenant
// (so pre-tenancy daemons' on-disk campaigns stay resumable in place),
// <dataDir>/tenants/<tenant>/campaigns for every other tenant. Callers
// must have validated tenant with ValidTenant.
func CampaignRoot(dataDir, tenant string) string {
	if tenant == "" || tenant == TenantDefault {
		return filepath.Join(dataDir, "campaigns")
	}
	return filepath.Join(dataDir, "tenants", tenant, "campaigns")
}

// campaignManifest maps completed experiment IDs to their output file
// names (relative to the campaign directory).
type campaignManifest struct {
	Completed map[string]string `json:"completed"`
}

// CampaignReport summarizes one RunCampaign call.
type CampaignReport struct {
	// Ran lists experiments executed this run; Skipped lists experiments
	// replayed from a previous run's checkpoint.
	Ran     []string
	Skipped []string
}

// CampaignCompleted reads a campaign directory's manifest and reports
// which experiment IDs have completed. A missing manifest is an empty
// campaign, not an error.
func CampaignCompleted(dir string) ([]string, error) {
	m, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(m.Completed))
	for _, id := range ExperimentIDs {
		if _, ok := m.Completed[id]; ok {
			ids = append(ids, id)
		}
	}
	return ids, nil
}

func loadManifest(dir string) (campaignManifest, error) {
	m := campaignManifest{Completed: map[string]string{}}
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return m, nil
	}
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("core: corrupt campaign manifest: %w", err)
	}
	if m.Completed == nil {
		m.Completed = map[string]string{}
	}
	return m, nil
}

// writeAtomic writes data to path via a temp file + rename, so a crash
// mid-checkpoint leaves the previous checkpoint intact.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// RunCampaign executes the given experiment IDs (all of ExperimentIDs
// when ids is nil) as a resumable campaign rooted at dir, writing each
// experiment's output to w in order — replayed from checkpoint files
// for experiments a previous run completed, freshly generated
// otherwise. The manifest is checkpointed atomically after every
// experiment, so an interrupted campaign resumes exactly where it
// died.
func (b *Benchmark) RunCampaign(dir string, ids []string, w io.Writer) (CampaignReport, error) {
	return b.RunCampaignProgress(dir, ids, w, nil)
}

// RunCampaignProgress is RunCampaign with a per-experiment completion
// callback (id, skipped), used by the daemon to surface live campaign
// status.
func (b *Benchmark) RunCampaignProgress(dir string, ids []string, w io.Writer, onDone func(id string, skipped bool)) (CampaignReport, error) {
	return b.runCampaign(dir, ids, w, nil, onDone)
}

// RunCampaignVia is RunCampaignProgress with fresh experiment outputs
// produced by gen instead of the benchmark's own generators
// (checkpointed replays still come from files). The daemon routes
// campaign generation through its coalescing layer this way, so a
// campaign and a concurrent direct request share one computation.
func (b *Benchmark) RunCampaignVia(dir string, ids []string, w io.Writer, gen func(id string) (string, error), onDone func(id string, skipped bool)) (CampaignReport, error) {
	return b.runCampaign(dir, ids, w, gen, onDone)
}

func (b *Benchmark) runCampaign(dir string, ids []string, w io.Writer, gen func(id string) (string, error), onDone func(id string, skipped bool)) (CampaignReport, error) {
	var report CampaignReport
	if ids == nil {
		ids = ExperimentIDs
	}
	gens := b.Experiments()
	for _, id := range ids {
		if _, ok := gens[id]; !ok {
			return report, fmt.Errorf("core: unknown experiment %q", id)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return report, err
	}
	manifest, err := loadManifest(dir)
	if err != nil {
		return report, err
	}
	if w == nil {
		w = io.Discard
	}

	for _, id := range ids {
		var out string
		skipped := false
		if name, ok := manifest.Completed[id]; ok {
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err == nil {
				out = string(data)
				skipped = true
			}
			// A manifest entry whose output file vanished falls through
			// and re-runs: the manifest promises at least as much as the
			// files deliver, never more.
		}
		if !skipped {
			if gen != nil {
				var err error
				if out, err = gen(id); err != nil {
					return report, fmt.Errorf("core: generate %s: %w", id, err)
				}
			} else {
				// An experiment whose generations failed (replay-trace
				// miss, dead endpoint) scores empty answers; it must
				// fail the campaign here, not be checkpointed as
				// complete and replayed as authoritative forever. The
				// delta is over the dispatcher's process-wide counter,
				// so a concurrent failing campaign on the same
				// benchmark can fail this one too — conservative: a
				// clean retry succeeds, corrupt output never persists.
				errsBefore := b.gen.Stats().Errors
				out = gens[id]()
				if failed := b.gen.Stats().Errors - errsBefore; failed > 0 {
					return report, fmt.Errorf("core: experiment %s: %d generation failures (first: %v)", id, failed, b.gen.Err())
				}
			}
			name := id + ".txt"
			if err := writeAtomic(filepath.Join(dir, name), []byte(out)); err != nil {
				return report, fmt.Errorf("core: checkpoint %s: %w", id, err)
			}
			manifest.Completed[id] = name
			data, err := json.MarshalIndent(manifest, "", "  ")
			if err != nil {
				return report, err
			}
			if err := writeAtomic(filepath.Join(dir, ManifestName), data); err != nil {
				return report, fmt.Errorf("core: checkpoint manifest: %w", err)
			}
		}
		if skipped {
			report.Skipped = append(report.Skipped, id)
		} else {
			report.Ran = append(report.Ran, id)
		}
		if _, err := fmt.Fprintf(w, "=== %s ===\n%s\n", id, out); err != nil {
			return report, err
		}
		if onDone != nil {
			onDone(id, skipped)
		}
	}
	return report, nil
}
