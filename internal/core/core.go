// Package core is the top of the CloudEval-YAML stack: it wires the
// dataset, augmentation, model zoo, scoring pipeline, evaluation
// cluster, cost model and predictor together, and regenerates every
// table and figure of the paper's evaluation on demand.
package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"cloudeval/internal/analysis"
	"cloudeval/internal/augment"
	"cloudeval/internal/boost"
	"cloudeval/internal/cost"
	"cloudeval/internal/dataset"
	"cloudeval/internal/engine"
	"cloudeval/internal/evalcluster"
	"cloudeval/internal/inference"
	"cloudeval/internal/llm"
	"cloudeval/internal/related"
	"cloudeval/internal/repostats"
	"cloudeval/internal/scenario"
	"cloudeval/internal/score"
)

// Benchmark is a configured CloudEval-YAML instance. Every campaign —
// zero-shot, few-shot, pass@k, failure analysis, predictor training —
// submits its evaluation jobs through one engine, so the whole paper
// reproduction shares a scheduler and a memoization cache.
type Benchmark struct {
	// Originals are the hand-written problems (the paper's 337 plus the
	// Compose and Helm extension families); Problems is the full corpus
	// with augmentation.
	Originals []dataset.Problem
	Problems  []dataset.Problem
	Models    []llm.Model

	eng *engine.Engine
	gen *inference.Dispatcher

	mu       sync.Mutex
	rows     []score.ModelAggregate
	rawByMod map[string][]score.ProblemScore
	jobs     []evalcluster.Job
}

// New builds the default benchmark: full corpus, twelve-model zoo, the
// process-wide in-process evaluation engine and inference dispatcher.
func New() *Benchmark { return NewWith(engine.Default()) }

// NewWith builds a benchmark that submits every evaluation through eng
// — e.g. an engine wrapping evalcluster.ClusterExecutor to fan the
// campaigns out over a real worker fleet — generating through the
// default sim dispatcher.
func NewWith(eng *engine.Engine) *Benchmark { return NewVia(eng, inference.Default()) }

// NewVia builds a benchmark whose generations route through gen — the
// sim zoo, a record/replay trace, or a live HTTP provider, behind the
// dispatcher's batching and caches — and whose evaluations run on eng.
func NewVia(eng *engine.Engine, gen *inference.Dispatcher) *Benchmark {
	originals := dataset.Generate()
	return &Benchmark{
		Originals: originals,
		Problems:  augment.ExpandCorpus(originals),
		Models:    llm.Models,
		eng:       eng,
		gen:       gen,
	}
}

// NewCustomWith builds a benchmark over a custom hand-written problem
// set and model zoo on eng; the corpus is expanded with the standard
// augmentation. Smaller corpora keep daemon tests and examples fast
// while exercising the full pipeline.
func NewCustomWith(eng *engine.Engine, originals []dataset.Problem, models []llm.Model) *Benchmark {
	return NewCustomVia(eng, inference.NewDispatcher(inference.NewSim(models)), originals, models)
}

// NewCustomVia is NewCustomWith with generations routed through gen.
func NewCustomVia(eng *engine.Engine, gen *inference.Dispatcher, originals []dataset.Problem, models []llm.Model) *Benchmark {
	return &Benchmark{
		Originals: originals,
		Problems:  augment.ExpandCorpus(originals),
		Models:    models,
		eng:       eng,
		gen:       gen,
	}
}

// Engine returns the engine the benchmark's campaigns run on.
func (b *Benchmark) Engine() *engine.Engine { return b.eng }

// Generator returns the inference dispatcher the benchmark's
// campaigns generate through.
func (b *Benchmark) Generator() *inference.Dispatcher { return b.gen }

// ZeroShot runs (and caches) the Table 4 campaign: every model over the
// full corpus with all six metrics, every (model, problem) pair one
// engine job.
func (b *Benchmark) ZeroShot() ([]score.ModelAggregate, map[string][]score.ProblemScore) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rows == nil {
		errsBefore := b.gen.Stats().Errors
		rows, raw := score.BenchmarkVia(b.eng, b.gen, b.Models, b.Problems)
		if b.gen.Stats().Errors != errsBefore {
			// Failed generations scored as empty answers: serve the rows
			// (the campaign completes deterministically) but do not
			// memoize them — a retry after the provider recovers must
			// recompute, not replay zeroes. The dispatcher's Err carries
			// the cause for callers that want to fail hard.
			return rows, raw
		}
		b.rows, b.rawByMod = rows, raw
	}
	return b.rows, b.rawByMod
}

// Jobs derives (and caches) the cluster-simulation workload.
func (b *Benchmark) Jobs() []evalcluster.Job {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.jobs == nil {
		b.jobs = evalcluster.JobsFromProblemsWith(b.eng, b.Problems)
	}
	return b.jobs
}

// ModelNames lists zoo names in ranking order.
func (b *Benchmark) ModelNames() []string {
	out := make([]string, len(b.Models))
	for i, m := range b.Models {
		out[i] = m.Name
	}
	return out
}

func (b *Benchmark) model(name string) llm.Model {
	for _, m := range b.Models {
		if m.Name == name {
			return m
		}
	}
	panic("core: unknown model " + name)
}

// Table1 renders the augmentation statistics.
func (b *Benchmark) Table1() string { return augment.FormatTable1(b.Problems) }

// Table2 renders the dataset statistics.
func (b *Benchmark) Table2() string { return dataset.FormatTable2(b.Originals) }

// Table3 renders the running-cost breakdown.
func (b *Benchmark) Table3() string {
	t := cost.ComputeTable3(b.Problems, b.Jobs())
	return t.Format()
}

// Table4 renders the zero-shot benchmark over the paper corpus. The
// campaign itself spans the full corpus — extension-family jobs flow
// through the same engine, cache and store — but the table aggregates
// only the paper families, so its output stays byte-identical to the
// paper reproduction as families are added. The extension families
// report through FamilyLeaderboard.
func (b *Benchmark) Table4() string {
	_, raw := b.ZeroShot()
	byID := analysis.ProblemIndex(b.Problems)
	rows := make([]score.ModelAggregate, 0, len(b.Models))
	for _, m := range b.Models {
		var kept []score.ProblemScore
		for _, s := range raw[m.Name] {
			if scenario.For(byID[s.ProblemID].Category).Paper {
				kept = append(kept, s)
			}
		}
		rows = append(rows, score.Aggregate(m, kept))
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].UnitTest > rows[j].UnitTest })
	return score.FormatTable4(rows)
}

// FamilyLeaderboard renders per-workload-family unit-test scores for
// every model over the full corpus, one column per registered scenario
// backend plus the overall average — the per-family rows the cloudevald
// leaderboard serves, covering the extension families Table 4 pins out.
func (b *Benchmark) FamilyLeaderboard() string {
	rows, raw := b.ZeroShot()
	byID := analysis.ProblemIndex(b.Problems)
	slices := analysis.FamilySlices()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s", "Model")
	for _, sl := range slices {
		fmt.Fprintf(&sb, "%12s", sl.Name)
	}
	fmt.Fprintf(&sb, "%12s\n", "overall")
	// Rows keep the full-corpus ranking order.
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-24s", r.Model)
		for _, sl := range slices {
			fmt.Fprintf(&sb, "%12.3f", analysis.SliceScore(raw[r.Model], byID, sl))
		}
		fmt.Fprintf(&sb, "%12.3f\n", r.UnitTest)
	}
	return sb.String()
}

// Table5 renders unit-test pass counts across original/simplified/
// translated questions.
func (b *Benchmark) Table5() string {
	counts := map[string]map[dataset.Variant]int{}
	for _, m := range b.Models {
		counts[m.Name] = analysis.VariantPassCountsVia(b.eng, b.gen, m, b.Problems)
	}
	return analysis.FormatTable5(counts, b.ModelNames())
}

// Table6Models are the models the paper runs the few-shot study on.
var Table6Models = []string{"gpt-3.5", "llama-2-70b-chat", "llama-2-7b-chat"}

// Table6 renders few-shot prompting pass counts.
func (b *Benchmark) Table6() string {
	counts := map[string][]int{}
	for _, name := range Table6Models {
		counts[name] = analysis.FewShotPassCountsVia(b.eng, b.gen, b.model(name), b.Originals, 3)
	}
	return analysis.FormatTable6(counts, Table6Models)
}

// Table7 renders the related-benchmark comparison.
func (b *Benchmark) Table7() string { return related.Format() }

// Table8 renders the YAML-usage survey.
func (b *Benchmark) Table8() string { return repostats.FormatTable8(repostats.Table8) }

// Table9 renders the per-factor unit-test breakdown.
func (b *Benchmark) Table9() string {
	_, raw := b.ZeroShot()
	byID := analysis.ProblemIndex(b.Problems)
	return analysis.FormatTable9(analysis.Breakdown(raw, byID), b.ModelNames())
}

// Figure5 renders the evaluation-time scaling study.
func (b *Benchmark) Figure5() string {
	results := evalcluster.Figure5(b.Jobs(), []int{1, 4, 16, 64})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %-10s %-10s %-12s\n", "Workers", "Cache", "Hours", "WAN (GB)")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-8d %-10v %-10.2f %-12.1f\n", r.Workers, r.SharedCache, r.Total.Hours(), r.WANTrafficMB/1024)
	}
	return sb.String()
}

// Figure6 renders the four-perspective analysis.
func (b *Benchmark) Figure6() string {
	_, raw := b.ZeroShot()
	byID := analysis.ProblemIndex(b.Problems)
	breakdown := analysis.Breakdown(raw, byID)
	var sb strings.Builder
	perspectives := make([]string, 0, len(analysis.Figure6Slices()))
	for k := range analysis.Figure6Slices() {
		perspectives = append(perspectives, k)
	}
	sort.Strings(perspectives)
	for _, persp := range perspectives {
		fmt.Fprintf(&sb, "== %s ==\n", persp)
		slices := analysis.Figure6Slices()[persp]
		fmt.Fprintf(&sb, "%-24s", "Model")
		for _, sl := range slices {
			fmt.Fprintf(&sb, "%12s", sl.Name)
		}
		sb.WriteString("\n")
		for _, name := range b.ModelNames() {
			fmt.Fprintf(&sb, "%-24s", name)
			for _, sl := range slices {
				fmt.Fprintf(&sb, "%12.3f", breakdown[name][persp][sl.Name])
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// Figure7Models are the models the paper's failure analysis plots.
var Figure7Models = []string{"gpt-4", "llama-2-70b-chat", "llama-2-7b-chat"}

// Figure7 renders failure-mode counts on the original subset.
func (b *Benchmark) Figure7() string {
	byID := analysis.ProblemIndex(b.Originals)
	counts := map[string][6]int{}
	for _, name := range Figure7Models {
		scores := score.EvaluateModelVia(b.eng, b.gen, b.model(name), b.Originals, llm.GenOptions{})
		counts[name] = analysis.FailureCounts(scores, byID)
	}
	return analysis.FormatFigure7(counts, Figure7Models)
}

// Figure8Config mirrors §4.2: four models, temperature sampling, GPT-4
// capped at 6 samples by API limits.
type Figure8Config struct {
	Temperature float64
	MaxK        int
	GPT4MaxK    int
}

// DefaultFigure8Config is the paper's setup.
func DefaultFigure8Config() Figure8Config {
	return Figure8Config{Temperature: 0.75, MaxK: 16, GPT4MaxK: 6}
}

// Figure8Models are the pass@k study models.
var Figure8Models = []string{"gpt-4", "gpt-3.5", "palm-2-bison", "llama-2-70b-chat"}

// Figure8 renders pass@k series over the original subset.
func (b *Benchmark) Figure8(cfg Figure8Config) string {
	series := map[string][]int{}
	for _, name := range Figure8Models {
		k := cfg.MaxK
		if name == "gpt-4" {
			k = cfg.GPT4MaxK
		}
		series[name] = analysis.PassAtKVia(b.eng, b.gen, b.model(name), b.Originals, k, cfg.Temperature)
	}
	return analysis.FormatFigure8(series, Figure8Models)
}

// Figure9 renders the unit-test predictor study: leave-one-model-out
// predictions and SHAP feature importance.
func (b *Benchmark) Figure9() string {
	_, raw := b.ZeroShot()
	results, err := boost.LeaveOneModelOutWith(b.eng, raw, boost.DefaultConfig())
	if err != nil {
		return "error: " + err.Error()
	}
	imp, err := boost.GlobalImportanceWith(b.eng, raw, boost.DefaultConfig(), 500)
	if err != nil {
		return "error: " + err.Error()
	}
	return "(a) predicted vs ground-truth unit-test score\n" + boost.FormatFigure9A(results) +
		"\n(b) SHAP feature importance\n" + boost.FormatFigure9B(imp)
}

// Experiments maps experiment IDs to their generators.
func (b *Benchmark) Experiments() map[string]func() string {
	return map[string]func() string{
		"table1":   b.Table1,
		"table2":   b.Table2,
		"table3":   b.Table3,
		"table4":   b.Table4,
		"table5":   b.Table5,
		"table6":   b.Table6,
		"table7":   b.Table7,
		"table8":   b.Table8,
		"table9":   b.Table9,
		"figure5":  b.Figure5,
		"figure6":  b.Figure6,
		"figure7":  b.Figure7,
		"figure8":  func() string { return b.Figure8(DefaultFigure8Config()) },
		"figure9":  b.Figure9,
		"families": b.FamilyLeaderboard,
	}
}

// ExperimentIDs lists experiments in presentation order.
var ExperimentIDs = []string{
	"table1", "table2", "table3", "table4", "table5", "table6",
	"table7", "table8", "table9",
	"figure5", "figure6", "figure7", "figure8", "figure9",
	"families",
}

// RunAll writes every experiment to w.
func (b *Benchmark) RunAll(w io.Writer) error {
	gens := b.Experiments()
	for _, id := range ExperimentIDs {
		if _, err := fmt.Fprintf(w, "=== %s ===\n%s\n", id, gens[id]()); err != nil {
			return err
		}
	}
	return nil
}
