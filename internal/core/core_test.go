package core

import (
	"path/filepath"
	"strings"
	"testing"

	"cloudeval/internal/analysis"
	"cloudeval/internal/dataset"
	"cloudeval/internal/engine"
	"cloudeval/internal/llm"
	"cloudeval/internal/store"
)

func TestNewBenchmarkShape(t *testing.T) {
	b := New()
	if len(b.Originals) != dataset.TotalOriginal {
		t.Errorf("originals = %d", len(b.Originals))
	}
	if want := 3 * dataset.TotalOriginal; len(b.Problems) != want {
		t.Errorf("problems = %d, want %d", len(b.Problems), want)
	}
	if len(b.Models) != 12 {
		t.Errorf("models = %d, want 12", len(b.Models))
	}
	names := b.ModelNames()
	if names[0] != "gpt-4" {
		t.Errorf("first model = %s", names[0])
	}
}

// TestExtensionFamiliesFlowThroughPipelines pins the acceptance path
// for the extension families: compose and helm problems run through
// ZeroShot (with augmented variants), pass@k sampling, the persistent
// store, and the per-family leaderboard rows.
func TestExtensionFamiliesFlowThroughPipelines(t *testing.T) {
	var subset []dataset.Problem
	for _, p := range dataset.Generate() {
		if (p.Subcategory == "compose" || p.Subcategory == "helm") && len(subset) < 6 {
			subset = append(subset, p)
		}
	}
	if len(subset) != 6 {
		t.Fatalf("expected 6 extension problems, got %d", len(subset))
	}
	st, err := store.Open(filepath.Join(t.TempDir(), "evals.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	eng := engine.New(engine.WithStore(st))
	b := NewCustomWith(eng, subset, llm.Models[:2])

	// ZeroShot covers every variant of every extension problem.
	_, raw := b.ZeroShot()
	scores := raw[b.Models[0].Name]
	if len(scores) != 3*len(subset) {
		t.Fatalf("zero-shot scored %d problems, want %d", len(scores), 3*len(subset))
	}

	// The store captured the executed evaluations.
	if st.Len() == 0 {
		t.Error("store recorded no extension-family evaluations")
	}

	// pass@k sampling runs the same families through the engine.
	passes := analysis.PassAtKWith(eng, b.Models[0], subset, 2, 0.75)
	if len(passes) != 2 || passes[1] < passes[0] {
		t.Errorf("pass@k shape broken: %v", passes)
	}

	// The family leaderboard renders nonzero rows for the new families
	// (gpt-4 passes a decent share of these short problems).
	out := b.FamilyLeaderboard()
	if !strings.Contains(out, "compose") || !strings.Contains(out, "helm") {
		t.Fatalf("family leaderboard missing extension columns:\n%s", out)
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	b := New()
	gens := b.Experiments()
	if len(gens) != len(ExperimentIDs) {
		t.Errorf("registry has %d generators, IDs list %d", len(gens), len(ExperimentIDs))
	}
	for _, id := range ExperimentIDs {
		if gens[id] == nil {
			t.Errorf("experiment %q has no generator", id)
		}
	}
}

func TestCheapExperimentsProduceOutput(t *testing.T) {
	b := New()
	for _, id := range []string{"table1", "table2", "table7", "table8"} {
		out := b.Experiments()[id]()
		if strings.TrimSpace(out) == "" {
			t.Errorf("%s produced no output", id)
		}
	}
}

func TestZeroShotCached(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark in -short mode")
	}
	b := New()
	rows1, raw1 := b.ZeroShot()
	rows2, raw2 := b.ZeroShot()
	if &rows1[0] != &rows2[0] {
		t.Error("ZeroShot should cache its result")
	}
	if len(raw1) != 12 || len(raw2) != 12 {
		t.Errorf("raw scores for %d models", len(raw1))
	}
	// Table 4 and Table 9 render from the cache.
	if !strings.Contains(b.Table4(), "gpt-4") {
		t.Error("Table 4 missing gpt-4")
	}
	if !strings.Contains(b.Table9(), "gpt-4") {
		t.Error("Table 9 missing gpt-4")
	}
	if !strings.Contains(b.Figure6(), "application_category") {
		t.Error("Figure 6 missing perspectives")
	}
}

func TestFigure7Output(t *testing.T) {
	if testing.Short() {
		t.Skip("model evaluation in -short mode")
	}
	b := New()
	out := b.Figure7()
	for _, m := range Figure7Models {
		if !strings.Contains(out, m) {
			t.Errorf("Figure 7 missing %s:\n%s", m, out)
		}
	}
}

func TestFigure5Output(t *testing.T) {
	b := New()
	out := b.Figure5()
	if !strings.Contains(out, "64") || !strings.Contains(out, "Workers") {
		t.Errorf("Figure 5 output:\n%s", out)
	}
}
