package core

import (
	"strings"
	"testing"

	"cloudeval/internal/dataset"
)

func TestNewBenchmarkShape(t *testing.T) {
	b := New()
	if len(b.Originals) != dataset.TotalOriginal {
		t.Errorf("originals = %d", len(b.Originals))
	}
	if len(b.Problems) != 1011 {
		t.Errorf("problems = %d, want 1011", len(b.Problems))
	}
	if len(b.Models) != 12 {
		t.Errorf("models = %d, want 12", len(b.Models))
	}
	names := b.ModelNames()
	if names[0] != "gpt-4" {
		t.Errorf("first model = %s", names[0])
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	b := New()
	gens := b.Experiments()
	if len(gens) != len(ExperimentIDs) {
		t.Errorf("registry has %d generators, IDs list %d", len(gens), len(ExperimentIDs))
	}
	for _, id := range ExperimentIDs {
		if gens[id] == nil {
			t.Errorf("experiment %q has no generator", id)
		}
	}
}

func TestCheapExperimentsProduceOutput(t *testing.T) {
	b := New()
	for _, id := range []string{"table1", "table2", "table7", "table8"} {
		out := b.Experiments()[id]()
		if strings.TrimSpace(out) == "" {
			t.Errorf("%s produced no output", id)
		}
	}
}

func TestZeroShotCached(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark in -short mode")
	}
	b := New()
	rows1, raw1 := b.ZeroShot()
	rows2, raw2 := b.ZeroShot()
	if &rows1[0] != &rows2[0] {
		t.Error("ZeroShot should cache its result")
	}
	if len(raw1) != 12 || len(raw2) != 12 {
		t.Errorf("raw scores for %d models", len(raw1))
	}
	// Table 4 and Table 9 render from the cache.
	if !strings.Contains(b.Table4(), "gpt-4") {
		t.Error("Table 4 missing gpt-4")
	}
	if !strings.Contains(b.Table9(), "gpt-4") {
		t.Error("Table 9 missing gpt-4")
	}
	if !strings.Contains(b.Figure6(), "application_category") {
		t.Error("Figure 6 missing perspectives")
	}
}

func TestFigure7Output(t *testing.T) {
	if testing.Short() {
		t.Skip("model evaluation in -short mode")
	}
	b := New()
	out := b.Figure7()
	for _, m := range Figure7Models {
		if !strings.Contains(out, m) {
			t.Errorf("Figure 7 missing %s:\n%s", m, out)
		}
	}
}

func TestFigure5Output(t *testing.T) {
	b := New()
	out := b.Figure5()
	if !strings.Contains(out, "64") || !strings.Contains(out, "Workers") {
		t.Errorf("Figure 5 output:\n%s", out)
	}
}
