// Package augment implements the practical data augmentation of §2.2:
// question simplification (concise phrasing with domain abbreviations)
// and translation into the developer-flavored Chinese the paper's
// Appendix D prompts produce. The paper drove both with GPT-4 plus
// manual review; this package substitutes deterministic rule-based
// rewriting so the corpus statistics (Table 1) and the harder-input
// distributions (Table 5) are reproducible.
package augment

import (
	"fmt"
	"strings"

	"cloudeval/internal/dataset"
	"cloudeval/internal/textmetrics"
)

// abbreviations maps verbose phrases to the shorthand cloud operators
// actually type. Longest phrases substitute first.
var abbreviations = []struct{ from, to string }{
	{"Kubernetes ", "k8s "},
	{"kubernetes ", "k8s "},
	{"configuration", "config"},
	{"deployment", "deploy"},
	{"Deployment", "Deploy"},
	{"environment variable", "env var"},
	{"environment variables", "env vars"},
	{"namespace", "ns"},
	{"load balancer", "LB"},
	{"load balanced", "LB'd"},
	{"load balancing", "LB"},
	{"service", "svc"},
	{"Service", "Svc"},
	{"container port", "port"},
	{"memory", "mem"},
	{"replicas", "reps"},
	{"application", "app"},
	{"manifest", "yaml"},
	{"resource limits", "limits"},
	{"strategy", "strat"},
}

// fillerPhrases are dropped entirely during simplification.
var fillerPhrases = []string{
	"Please ", "please ",
	"I need ", "I recall there was ", "I'm working with ",
	"Ensure that ", "Make sure that ", "Make sure ",
	"Provide the complete YAML.", "Provide me the exact configuration for that.",
	"provide me the entire YAML.", "Provide the entire YAML.",
	"Write a YAML file to ", "Write a yaml file to ",
	"Our CI needs ", "We roll ",
	"so our selectors find it", "so our cost reports can group workloads by owner",
	"Use the v1 API and keep the configuration minimal.",
	"The manifest must set metadata.namespace explicitly.",
	" that", " which", " should", " must",
	"Craft a yaml file to ",
	"Using the deployment below as context, ",
	"Given the following YAML, ",
}

// Simplify rewrites a question concisely, using abbreviations, without
// touching fenced or indented YAML content.
func Simplify(question string) string {
	out := question
	for _, f := range fillerPhrases {
		out = strings.ReplaceAll(out, f, " ")
	}
	for _, ab := range abbreviations {
		out = strings.ReplaceAll(out, ab.from, ab.to)
	}
	// Collapse runs of blanks introduced by phrase removal.
	out = strings.Join(strings.Fields(out), " ")
	// Terse imperative opener.
	out = strings.TrimPrefix(out, "write ")
	out = strings.TrimPrefix(out, "Write ")
	if out != "" && out[0] >= 'a' && out[0] <= 'z' {
		out = strings.ToUpper(out[:1]) + out[1:]
	}
	return out
}

// glossary drives EN→ZH translation. Technical identifiers (YAML, image
// names, field names) deliberately stay in English, matching how the
// paper's translated questions read.
var glossary = []struct{ from, to string }{
	{"Write a YAML file to create", "写一个 YAML 来创建"},
	{"Write a yaml file to create", "写一个 YAML 来创建"},
	{"Create a", "创建一个"},
	{"Create an", "创建一个"},
	{"Write a", "写一个"},
	{"Define a", "定义一个"},
	{"Provide a", "提供一个"},
	{"please help me create", "请帮我创建"},
	{"Please provide me the exact configuration for that", "请为此提供确切的配置"},
	{"Please ", "请"},
	{"named", "名为"},
	{"name the pod", "Pod 命名为"},
	{"with the name", "名称为"},
	{"that runs the", "运行"},
	{"running", "运行"},
	{"uses the", "使用"},
	{"using image", "使用镜像"},
	{"using the", "使用"},
	{"image", "镜像"},
	{"exposed on port", "暴露在端口"},
	{"expose container port", "暴露容器端口"},
	{"on port", "在端口"},
	{"port", "端口"},
	{"label", "标签"},
	{"labels", "标签"},
	{"labeled", "标签为"},
	{"environment variables", "环境变量"},
	{"environment variable", "环境变量"},
	{"namespace", "命名空间"},
	{"load balancer", "负载均衡器"},
	{"load balanced", "负载均衡"},
	{"service", "服务"},
	{"replicas", "副本"},
	{"memory", "内存"},
	{"set to", "设置为"},
	{"should be", "应为"},
	{"must", "必须"},
	{"and", "和"},
	{"with", "带有"},
	{"the", ""},
	{"The", ""},
	{"It should be accessible via browser", "它应该可以通过浏览器访问"},
	{"so that other workloads can reach it", "以便其他工作负载可以访问它"},
	{"Given the following YAML", "给定以下 YAML"},
	{"Our", "我们的"},
	{"already exists", "已经存在"},
	{"Ensure", "确保"},
	{"that", ""},
}

// Translate renders a question in developer-flavored Chinese, keeping
// technical tokens in English.
func Translate(question string) string {
	out := question
	for _, g := range glossary {
		out = strings.ReplaceAll(out, g.from, g.to)
	}
	out = strings.Join(strings.Fields(out), " ")
	return out
}

// Augment produces the simplified and translated variants of a problem.
// The reference YAML, context and unit test are shared with the
// original, as in the paper.
func Augment(p dataset.Problem) (simplified, translated dataset.Problem) {
	simplified = p
	simplified.ID = p.ID + "-s"
	simplified.Variant = dataset.Simplified
	simplified.Question = Simplify(p.Question)

	translated = p
	translated.ID = p.ID + "-t"
	translated.Variant = dataset.Translated
	translated.Question = Translate(p.Question)
	return simplified, translated
}

// ExpandCorpus triples the original problems into the full dataset:
// original + simplified + translated, for every workload family.
func ExpandCorpus(originals []dataset.Problem) []dataset.Problem {
	out := make([]dataset.Problem, 0, len(originals)*3)
	for _, p := range originals {
		s, tr := Augment(p)
		out = append(out, p, s, tr)
	}
	return out
}

// VariantStats reports Table 1's corpus statistics for one variant.
type VariantStats struct {
	Count     int
	AvgWords  float64
	AvgTokens float64
}

// ComputeVariantStats aggregates question words/tokens for a subset.
func ComputeVariantStats(ps []dataset.Problem) VariantStats {
	s := VariantStats{Count: len(ps)}
	if len(ps) == 0 {
		return s
	}
	var words, toks int
	for _, p := range ps {
		words += textmetrics.Words(p.Question) + textmetrics.Words(p.ContextYAML)
		toks += p.QuestionTokens()
	}
	s.AvgWords = float64(words) / float64(len(ps))
	s.AvgTokens = float64(toks) / float64(len(ps))
	return s
}

// Table1 computes the augmentation statistics for the full corpus.
func Table1(all []dataset.Problem) map[dataset.Variant]VariantStats {
	byVariant := map[dataset.Variant][]dataset.Problem{}
	for _, p := range all {
		byVariant[p.Variant] = append(byVariant[p.Variant], p)
	}
	out := map[dataset.Variant]VariantStats{}
	for v, ps := range byVariant {
		out[v] = ComputeVariantStats(ps)
	}
	return out
}

// FormatTable1 renders Table 1.
func FormatTable1(all []dataset.Problem) string {
	stats := Table1(all)
	o, s, tr := stats[dataset.Original], stats[dataset.Simplified], stats[dataset.Translated]
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %14s %12s\n", "", "Original", "Simplified", "Translated")
	fmt.Fprintf(&b, "%-12s %10d %14d %12d\n", "Count", o.Count, s.Count, tr.Count)
	fmt.Fprintf(&b, "%-12s %10.2f %8.2f (%+.1f%%) %12.2f\n", "Avg. words", o.AvgWords, s.AvgWords, pct(s.AvgWords, o.AvgWords), tr.AvgWords)
	fmt.Fprintf(&b, "%-12s %10.1f %8.1f (%+.1f%%) %12.1f\n", "Avg. tokens", o.AvgTokens, s.AvgTokens, pct(s.AvgTokens, o.AvgTokens), tr.AvgTokens)
	return b.String()
}

func pct(new, old float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}
