package augment

import (
	"strings"
	"testing"

	"cloudeval/internal/dataset"
)

func TestSimplifyShortens(t *testing.T) {
	originals := dataset.Generate()
	shorter, total := 0, 0
	for _, p := range originals {
		s := Simplify(p.Question)
		if s == "" {
			t.Errorf("%s: simplified to nothing", p.ID)
		}
		ow := len(strings.Fields(p.Question))
		sw := len(strings.Fields(s))
		if sw < ow {
			shorter++
		}
		if sw > ow {
			t.Errorf("%s: simplification grew the question (%d -> %d words)", p.ID, ow, sw)
		}
		total++
	}
	if shorter < total*5/10 {
		t.Errorf("only %d/%d questions got shorter", shorter, total)
	}
}

func TestSimplifyUsesAbbreviations(t *testing.T) {
	in := "Write a YAML file to create a Kubernetes deployment with a load balancer service in the production namespace."
	out := Simplify(in)
	for _, want := range []string{"k8s", "LB", "ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("simplified %q lacks abbreviation %q", out, want)
		}
	}
}

func TestTranslateProducesChinese(t *testing.T) {
	for _, p := range dataset.Generate()[:60] {
		zh := Translate(p.Question)
		if !containsCJK(zh) {
			t.Errorf("%s: translation contains no Chinese: %q", p.ID, zh)
		}
	}
}

func containsCJK(s string) bool {
	for _, r := range s {
		if r >= 0x4E00 && r <= 0x9FFF {
			return true
		}
	}
	return false
}

func TestTranslateKeepsTechnicalTokens(t *testing.T) {
	in := "Create a Kubernetes LimitRange named resource-limits with default CPU 100m."
	zh := Translate(in)
	for _, keep := range []string{"LimitRange", "resource-limits", "100m"} {
		if !strings.Contains(zh, keep) {
			t.Errorf("technical token %q lost in %q", keep, zh)
		}
	}
}

func TestAugmentProducesVariants(t *testing.T) {
	p := dataset.Generate()[0]
	s, tr := Augment(p)
	if s.Variant != dataset.Simplified || tr.Variant != dataset.Translated {
		t.Error("variants mislabeled")
	}
	if s.ID != p.ID+"-s" || tr.ID != p.ID+"-t" {
		t.Errorf("variant IDs: %s %s", s.ID, tr.ID)
	}
	// Reference and unit test are shared.
	if s.ReferenceYAML != p.ReferenceYAML || tr.UnitTest != p.UnitTest {
		t.Error("reference/unit test must be shared with the original")
	}
}

func TestExpandCorpusTo1011(t *testing.T) {
	all := ExpandCorpus(dataset.Generate())
	want := 3 * dataset.TotalOriginal
	if len(all) != want {
		t.Fatalf("corpus = %d, want %d", len(all), want)
	}
	counts := map[dataset.Variant]int{}
	for _, p := range all {
		counts[p.Variant]++
	}
	for _, v := range []dataset.Variant{dataset.Original, dataset.Simplified, dataset.Translated} {
		if counts[v] != dataset.TotalOriginal {
			t.Errorf("%s count = %d, want %d", v, counts[v], dataset.TotalOriginal)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	all := ExpandCorpus(dataset.Generate())
	stats := Table1(all)
	o, s := stats[dataset.Original], stats[dataset.Simplified]
	if o.Count != dataset.TotalOriginal || s.Count != dataset.TotalOriginal {
		t.Fatalf("counts: %+v %+v", o, s)
	}
	if s.AvgWords >= o.AvgWords {
		t.Errorf("simplified avg words %.2f >= original %.2f", s.AvgWords, o.AvgWords)
	}
	if s.AvgTokens >= o.AvgTokens {
		t.Errorf("simplified avg tokens %.2f >= original %.2f", s.AvgTokens, o.AvgTokens)
	}
	out := FormatTable1(all)
	for _, want := range []string{"Original", "Simplified", "Translated", "377"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}
