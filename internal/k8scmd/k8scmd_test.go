package k8scmd

import (
	"strings"
	"testing"
)

// runScript executes a unit-test script in a fresh environment with the
// given labeled_code.yaml content.
func runScript(t *testing.T, labeledCode, script string) (string, int) {
	t.Helper()
	env := NewEnv()
	env.Shell.FS["labeled_code.yaml"] = labeledCode
	res, err := env.Shell.Run(script)
	if err != nil {
		t.Fatalf("script error: %v", err)
	}
	return res.Stdout, res.ExitCode
}

// Appendix C sample #1: DaemonSet with env vars, resource limits and a
// hostPort probed via curl.
const sample1YAML = `apiVersion: apps/v1
kind: DaemonSet
metadata:
  name: kube-registry-proxy-modified
spec:
  selector:
    matchLabels:
      app: kube-registry-modified
  template:
    metadata:
      labels:
        app: kube-registry-modified
    spec:
      containers:
      - name: kube-registry-proxy-modified
        image: nginx:latest
        resources:
          limits:
            cpu: 100m
            memory: 50Mi
        env:
        - name: REGISTRY_HOST
          value: kube-registry-modified.svc.cluster.local
        - name: REGISTRY_PORT
          value: "5000"
        ports:
        - name: registry
          containerPort: 80
          hostPort: 5000
`

const sample1Test = `kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l app=kube-registry-modified --timeout=60s
passed_tests=0
total_tests=3
pods=$(kubectl get pods -l app=kube-registry-modified --output=jsonpath={.items..metadata.name})
host_ip=$(kubectl get pod $pods -o=jsonpath='{.status.hostIP}')
curl_output=$(curl -s -o /dev/null -w "%{http_code}" $host_ip:5000)
if [ "$curl_output" == "200" ]; then
  ((passed_tests++))
else
  exit 1
fi
env_vars=$(kubectl get pods --selector=app=kube-registry-modified -o=jsonpath='{.items[0].spec.containers[0].env[*].name}')
if [[ $env_vars == *"REGISTRY_HOST"* && $env_vars == *"REGISTRY_PORT"* ]]; then
  ((passed_tests++))
fi
cpu_limit=$(kubectl get pod $pods -o=jsonpath='{.spec.containers[0].resources.limits.cpu}')
memory_limit=$(kubectl get pod $pods -o=jsonpath='{.spec.containers[0].resources.limits.memory}')
if [ "$cpu_limit" == "100m" ] && [ "$memory_limit" == "50Mi" ]; then
  ((passed_tests++))
fi
if [ $passed_tests -eq $total_tests ]; then
  echo unit_test_passed
fi
`

func TestSample1DaemonSetPasses(t *testing.T) {
	out, _ := runScript(t, sample1YAML, sample1Test)
	if !strings.Contains(out, "unit_test_passed") {
		t.Errorf("correct answer should pass; output:\n%s", out)
	}
}

func TestSample1WrongEnvFails(t *testing.T) {
	bad := strings.ReplaceAll(sample1YAML, "REGISTRY_HOST", "WRONG_NAME")
	out, _ := runScript(t, bad, sample1Test)
	if strings.Contains(out, "unit_test_passed") {
		t.Errorf("wrong env var should fail; output:\n%s", out)
	}
}

func TestSample1WrongLimitsFails(t *testing.T) {
	bad := strings.ReplaceAll(sample1YAML, "cpu: 100m", "cpu: 200m")
	out, _ := runScript(t, bad, sample1Test)
	if strings.Contains(out, "unit_test_passed") {
		t.Errorf("wrong cpu limit should fail; output:\n%s", out)
	}
}

func TestSample1MissingHostPortFails(t *testing.T) {
	bad := strings.ReplaceAll(sample1YAML, "hostPort: 5000", "hostPort: 5001")
	out, code := runScript(t, bad, sample1Test)
	if strings.Contains(out, "unit_test_passed") || code == 0 {
		t.Errorf("wrong hostPort should exit 1; output:\n%s code=%d", out, code)
	}
}

// Appendix C sample #2: LoadBalancer service over the nginx deployment,
// checked via "minikube service".
const sample2YAML = `apiVersion: v1
kind: Service
metadata:
  name: nginx-service
spec:
  selector:
    app: nginx
  ports:
  - name: http
    port: 80
    targetPort: 80
  type: LoadBalancer
`

const sample2Test = `echo "apiVersion: apps/v1
kind: Deployment
metadata:
  name: nginx-deployment
spec:
  replicas: 3
  selector:
    matchLabels:
      app: nginx
  template:
    metadata:
      labels:
        app: nginx
    spec:
      containers:
      - name: nginx-container
        image: nginx:latest
        ports:
        - containerPort: 80" | kubectl apply -f -
kubectl wait --for=condition=ready deployment --all --timeout=15s
kubectl apply -f labeled_code.yaml
sleep 15
kubectl get svc
timeout -s INT 8s minikube service nginx-service > bash_output.txt 2>&1
cat bash_output.txt
grep "Opening service default/nginx-service in default browser..." bash_output.txt && echo unit_test_passed
`

func TestSample2ServicePasses(t *testing.T) {
	out, code := runScript(t, sample2YAML, sample2Test)
	if !strings.Contains(out, "unit_test_passed") {
		t.Errorf("correct answer should pass (code %d); output:\n%s", code, out)
	}
}

func TestSample2ClusterIPFails(t *testing.T) {
	bad := strings.ReplaceAll(sample2YAML, "type: LoadBalancer", "type: ClusterIP")
	out, _ := runScript(t, bad, sample2Test)
	if strings.Contains(out, "unit_test_passed") {
		t.Errorf("ClusterIP service should fail minikube service; output:\n%s", out)
	}
}

func TestSample2WrongNameFails(t *testing.T) {
	bad := strings.ReplaceAll(sample2YAML, "nginx-service", "other-service")
	out, _ := runScript(t, bad, sample2Test)
	if strings.Contains(out, "unit_test_passed") {
		t.Errorf("differently named service should fail; output:\n%s", out)
	}
}

// Appendix C sample #3: the Ingress v1 strict-decoding debug problem.
const sample3FixedYAML = `apiVersion: networking.k8s.io/v1
kind: Ingress
metadata:
  name: minimal-ingress
  annotations:
    nginx.ingress.kubernetes.io/rewrite-target: /
spec:
  rules:
  - http:
      paths:
      - path: /
        pathType: Prefix
        backend:
          service:
            name: test-app
            port:
              number: 5000
`

const sample3Test = `kubectl apply -f labeled_code.yaml
kubectl wait --namespace default --for=condition=SYNCED ingress --all --timeout=15s
kubectl describe ingress minimal-ingress | grep "test-app:5000" && echo unit_test_passed
`

func TestSample3IngressFixedPasses(t *testing.T) {
	out, _ := runScript(t, sample3FixedYAML, sample3Test)
	if !strings.Contains(out, "unit_test_passed") {
		t.Errorf("fixed ingress should pass; output:\n%s", out)
	}
}

func TestSample3LegacyIngressFails(t *testing.T) {
	legacy := `apiVersion: networking.k8s.io/v1
kind: Ingress
metadata:
  name: test-ingress
  annotations:
    nginx.ingress.kubernetes.io/rewrite-target: /
spec:
  rules:
  - http:
      paths:
      - path: /
        backend:
          serviceName: test-app
          servicePort: 5000
`
	out, _ := runScript(t, legacy, sample3Test)
	if strings.Contains(out, "unit_test_passed") {
		t.Errorf("legacy ingress should fail strict decoding; output:\n%s", out)
	}
}

// Figure 1: the RoleBinding problem.
const fig1YAML = `apiVersion: rbac.authorization.k8s.io/v1
kind: RoleBinding
metadata:
  name: read-secrets
  namespace: development
subjects:
- kind: User
  name: dave
  apiGroup: rbac.authorization.k8s.io
roleRef:
  kind: ClusterRole
  name: secret-reader
  apiGroup: rbac.authorization.k8s.io
`

const fig1Test = `kubectl create ns development
kubectl apply -f labeled_code.yaml
kubectl create secret generic top-secret --from-literal=password=s3cr3t -n development
kubectl create clusterrole secret-reader --verb=get,list --resource=secrets
namespace=$(kubectl get rolebinding read-secrets -n development -o jsonpath='{.metadata.namespace}')
subject_name=$(kubectl get rolebinding read-secrets -n development -o jsonpath='{.subjects[0].name}')
role_ref_name=$(kubectl get rolebinding read-secrets -n development -o jsonpath='{.roleRef.name}')
if [[ $namespace == "development" && $subject_name == "dave" && $role_ref_name == "secret-reader" ]]; then
  echo cn1000_unit_test_passed
fi
`

func TestFigure1RoleBindingPasses(t *testing.T) {
	out, _ := runScript(t, fig1YAML, fig1Test)
	if !strings.Contains(out, "cn1000_unit_test_passed") {
		t.Errorf("RBAC answer should pass; output:\n%s", out)
	}
}

func TestFigure1WrongSubjectFails(t *testing.T) {
	bad := strings.ReplaceAll(fig1YAML, "name: dave", "name: eve")
	out, _ := runScript(t, bad, fig1Test)
	if strings.Contains(out, "cn1000_unit_test_passed") {
		t.Errorf("wrong subject should fail; output:\n%s", out)
	}
}

func TestEnvoyValidateAndProbe(t *testing.T) {
	config := `static_resources:
  listeners:
  - name: listener_0
    address:
      socket_address:
        address: 0.0.0.0
        port_value: 10000
    filter_chains:
    - filters:
      - name: envoy.filters.network.http_connection_manager
        typed_config:
          stat_prefix: ingress_http
          route_config:
            name: local_route
            virtual_hosts:
            - name: local_service
              domains: ["*"]
              routes:
              - match:
                  prefix: "/"
                route:
                  cluster: service_backend
  clusters:
  - name: service_backend
    type: STATIC
    lb_policy: ROUND_ROBIN
    load_assignment:
      cluster_name: service_backend
      endpoints:
      - lb_endpoints:
        - endpoint:
            address:
              socket_address:
                address: 127.0.0.1
                port_value: 8080
`
	script := `envoy --mode validate -c labeled_code.yaml && envoy -c labeled_code.yaml
status=$(curl -s -o /dev/null -w "%{http_code}" http://localhost:10000/)
if [ "$status" == "200" ]; then
  echo unit_test_passed
fi
`
	out, _ := runScript(t, config, script)
	if !strings.Contains(out, "unit_test_passed") {
		t.Errorf("envoy config should validate and route; output:\n%s", out)
	}
	// A config whose route targets a missing cluster must fail validation.
	broken := strings.Replace(config, "cluster: service_backend", "cluster: missing_cluster", 1)
	out2, _ := runScript(t, broken, `envoy --mode validate -c labeled_code.yaml && echo validate_ok`)
	if strings.Contains(out2, "validate_ok") {
		t.Errorf("broken envoy config should fail validation; output:\n%s", out2)
	}
	out3, _ := runScript(t, broken, script)
	if strings.Contains(out3, "unit_test_passed") {
		t.Errorf("broken envoy config should not pass the probe; output:\n%s", out3)
	}
}

func TestCurlConnectionRefused(t *testing.T) {
	env := NewEnv()
	res, err := env.Shell.Run(`curl -s -o /dev/null -w "%{http_code}" 10.0.0.99:1234; echo " exit=$?"`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "000") || !strings.Contains(res.Stdout, "exit=7") {
		t.Errorf("refused connection: %q", res.Stdout)
	}
}

func TestKubectlGetTableAndName(t *testing.T) {
	env := NewEnv()
	env.Shell.FS["svc.yaml"] = sample2YAML
	res, err := env.Shell.Run(`kubectl apply -f svc.yaml; kubectl get svc`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "nginx-service") || !strings.Contains(res.Stdout, "LoadBalancer") {
		t.Errorf("get svc table:\n%s", res.Stdout)
	}
	res, _ = env.Shell.Run(`kubectl get svc -o name`)
	if !strings.Contains(res.Stdout, "svc/nginx-service") && !strings.Contains(res.Stdout, "service/nginx-service") {
		t.Errorf("get -o name: %q", res.Stdout)
	}
}

func TestKubectlApplyErrorSurfacesToScript(t *testing.T) {
	env := NewEnv()
	env.Shell.FS["bad.yaml"] = "not: a: valid: manifest\n"
	res, err := env.Shell.Run(`kubectl apply -f bad.yaml || echo apply_failed`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "apply_failed") {
		t.Errorf("apply of invalid YAML should fail: %+v", res)
	}
}

func TestKubectlRolloutStatus(t *testing.T) {
	env := NewEnv()
	env.Shell.FS["dep.yaml"] = strings.Replace(sample2YAML, "kind: Service", "kind: Service", 1)
	env.Shell.FS["deploy.yaml"] = `apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: 1
  selector:
    matchLabels:
      app: web
  template:
    metadata:
      labels:
        app: web
    spec:
      containers:
      - name: c
        image: nginx
`
	res, err := env.Shell.Run(`kubectl apply -f deploy.yaml && kubectl rollout status deployment/web --timeout=30s && echo rolled`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "rolled") {
		t.Errorf("rollout status failed: %+v", res)
	}
}
