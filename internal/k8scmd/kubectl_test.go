package k8scmd

import (
	"strings"
	"testing"
)

func freshEnv(t *testing.T) *Env {
	t.Helper()
	return NewEnv()
}

func runIn(t *testing.T, env *Env, script string) (string, string, int) {
	t.Helper()
	res, err := env.Shell.Run(script)
	if err != nil {
		t.Fatalf("script error: %v\n%s", err, script)
	}
	return res.Stdout, res.Stderr, res.ExitCode
}

func TestKubectlCreateDeploymentImperative(t *testing.T) {
	env := freshEnv(t)
	out, _, code := runIn(t, env, `kubectl create deployment web --image=nginx:latest
kubectl rollout status deployment/web --timeout=60s
kubectl get pods -l app=web -o name`)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "deployment.apps/web created") {
		t.Errorf("create output: %s", out)
	}
	if !strings.Contains(out, "pod/web-") {
		t.Errorf("expected created pods, got: %s", out)
	}
}

func TestKubectlCreateConfigMapAndServiceAccount(t *testing.T) {
	env := freshEnv(t)
	out, _, code := runIn(t, env, `kubectl create configmap app-cfg --from-literal=mode=prod --from-literal=level=3
kubectl get configmap app-cfg -o=jsonpath='{.data.mode}/{.data.level}'
echo
kubectl create serviceaccount ci-bot
kubectl get serviceaccount ci-bot -o name`)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "prod/3") {
		t.Errorf("configmap literals missing: %s", out)
	}
	if !strings.Contains(out, "serviceaccount/ci-bot") {
		t.Errorf("serviceaccount: %s", out)
	}
}

func TestKubectlDeleteByNameAndNamespace(t *testing.T) {
	env := freshEnv(t)
	out, _, _ := runIn(t, env, `kubectl create ns scratch
echo "apiVersion: v1
kind: ConfigMap
metadata:
  name: temp
  namespace: scratch
data:
  k: v" | kubectl apply -f -
kubectl delete configmap temp -n scratch
kubectl get configmap temp -n scratch 2>&1 || echo gone
kubectl delete ns scratch
kubectl get ns scratch 2>&1 || echo ns-gone`)
	if !strings.Contains(out, "gone") || !strings.Contains(out, "ns-gone") {
		t.Errorf("delete flow output:\n%s", out)
	}
}

func TestKubectlGetAllNamespaces(t *testing.T) {
	env := freshEnv(t)
	out, _, _ := runIn(t, env, `kubectl create ns east
kubectl create ns west
echo "apiVersion: v1
kind: Pod
metadata:
  name: p1
  namespace: east
spec:
  containers:
  - name: c
    image: nginx" | kubectl apply -f -
echo "apiVersion: v1
kind: Pod
metadata:
  name: p2
  namespace: west
spec:
  containers:
  - name: c
    image: nginx" | kubectl apply -f -
kubectl get pods -A -o name | wc -l`)
	if !strings.Contains(out, "2") {
		t.Errorf("get -A should see both pods:\n%s", out)
	}
}

func TestKubectlLogsAndVersion(t *testing.T) {
	env := freshEnv(t)
	out, _, _ := runIn(t, env, `echo "apiVersion: v1
kind: Pod
metadata:
  name: app
spec:
  containers:
  - name: c
    image: redis:7" | kubectl apply -f -
kubectl logs app
kubectl version`)
	if !strings.Contains(out, "redis:7") {
		t.Errorf("logs should mention the image:\n%s", out)
	}
	if !strings.Contains(out, "Client Version") {
		t.Errorf("version output:\n%s", out)
	}
}

func TestKubectlGetYAMLRoundTrips(t *testing.T) {
	env := freshEnv(t)
	out, _, _ := runIn(t, env, `echo "apiVersion: v1
kind: ConfigMap
metadata:
  name: rt
data:
  alpha: one" | kubectl apply -f -
kubectl get configmap rt -o yaml > dumped.yaml
kubectl delete configmap rt
kubectl apply -f dumped.yaml
kubectl get configmap rt -o=jsonpath='{.data.alpha}'`)
	if !strings.Contains(out, "one") {
		t.Errorf("get -o yaml round trip failed:\n%s", out)
	}
}

func TestKubectlErrorMessages(t *testing.T) {
	env := freshEnv(t)
	_, stderr, code := runIn(t, env, `kubectl get pod no-such-pod`)
	if code == 0 || !strings.Contains(stderr, "NotFound") {
		t.Errorf("missing pod: code=%d stderr=%q", code, stderr)
	}
	_, stderr, code = runIn(t, env, `kubectl frobnicate`)
	if code == 0 || !strings.Contains(stderr, "unknown command") {
		t.Errorf("unknown subcommand: code=%d stderr=%q", code, stderr)
	}
	_, stderr, code = runIn(t, env, `kubectl wait --for=banana pod --all`)
	if code == 0 || !strings.Contains(stderr, "unrecognized") {
		t.Errorf("bad --for: code=%d stderr=%q", code, stderr)
	}
}

func TestKubectlWaitSlashForm(t *testing.T) {
	env := freshEnv(t)
	out, _, code := runIn(t, env, `echo "apiVersion: batch/v1
kind: Job
metadata:
  name: quick
spec:
  template:
    spec:
      containers:
      - name: c
        image: busybox:1.36
      restartPolicy: Never" | kubectl apply -f -
kubectl wait --for=condition=complete job/quick --timeout=60s && echo waited`)
	if code != 0 || !strings.Contains(out, "waited") {
		t.Errorf("wait on job/name form failed (code %d):\n%s", code, out)
	}
}

func TestMinikubeIPAndLifecycle(t *testing.T) {
	env := freshEnv(t)
	out, _, _ := runIn(t, env, `minikube ip
minikube start
minikube status`)
	if !strings.Contains(out, "192.168.49.2") || !strings.Contains(out, "Done!") {
		t.Errorf("minikube output:\n%s", out)
	}
}

func TestIstioctlAnalyze(t *testing.T) {
	env := freshEnv(t)
	out, _, code := runIn(t, env, `istioctl analyze && istioctl version`)
	if code != 0 || !strings.Contains(out, "No validation issues") {
		t.Errorf("istioctl: code=%d\n%s", code, out)
	}
}
