// Package k8scmd binds the cloud-native command-line tools the
// benchmark's unit tests invoke — kubectl, curl, minikube, istioctl and
// envoy — to the kubesim and envoysim backends, as shell builtins.
package k8scmd

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"cloudeval/internal/envoysim"
	"cloudeval/internal/jsonpath"
	"cloudeval/internal/kubesim"
	"cloudeval/internal/shell"
	"cloudeval/internal/yamlx"
)

// Env is the execution environment for one unit test: a fresh cluster,
// an optional running Envoy, and the shell interpreter wired to them.
type Env struct {
	Cluster *kubesim.Cluster
	Envoy   *envoysim.Bootstrap // set once "envoy -c file" runs
	Shell   *shell.Interp
}

// NewEnv builds a fresh environment with all tools registered.
func NewEnv() *Env {
	e := &Env{
		Cluster: kubesim.NewCluster(),
		Shell:   shell.New(),
	}
	e.Shell.AdvanceClock = e.Cluster.AdvanceTime
	e.Shell.Builtins["kubectl"] = e.kubectl
	e.Shell.Builtins["curl"] = e.curl
	e.Shell.Builtins["minikube"] = e.minikube
	e.Shell.Builtins["istioctl"] = e.istioctl
	e.Shell.Builtins["envoy"] = e.envoy
	e.Shell.Builtins["docker"] = e.docker
	return e
}

// Reset returns the environment to its pristine NewEnv state: empty
// cluster at the virtual epoch, no Envoy, cleared shell variables and
// files. Builtin bindings survive — they are bound to the Env, which
// is exactly what makes recycling worthwhile: the per-family scenario
// pools (scenario.Backend.GetEnv/PutEnv, which generalized this
// package's former env pool) wipe environments with Reset on put.
// Rebuilding an Env per execution would re-allocate the cluster maps,
// the interpreter maps and six builtin bindings; a pooled reset
// additionally retains map bucket capacity, which is why it beat
// clone-from-prototype on the cold path (BenchmarkEnvFresh vs
// BenchmarkEnvPooled; see DESIGN.md §2.6).
func (e *Env) Reset() {
	e.Cluster.Reset()
	e.Envoy = nil
	e.Shell.Reset()
}

// Interp returns the environment's shell, satisfying scenario.Env.
func (e *Env) Interp() *shell.Interp { return e.Shell }

// Now returns the environment's virtual time, satisfying scenario.Env.
func (e *Env) Now() time.Time { return e.Cluster.Now() }

// flagSet is a tiny kubectl-style flag scanner: it separates positional
// args from --flag=value / --flag value / -x value forms.
type flagSet struct {
	positional []string
	flags      map[string]string
}

var valueFlags = map[string]bool{
	"-n": true, "--namespace": true,
	"-l": true, "--selector": true,
	"-o": true, "--output": true,
	"--for": true, "--timeout": true,
	"--from-literal": true, "--image": true,
	"--port": true, "--replicas": true,
	"-f": true, "--filename": true,
	"-c": true, "-w": true, "--max-time": true, "-m": true,
	"--verb": true, "--resource": true,
	"-s": true,
}

func parseFlags(args []string) flagSet {
	fs := flagSet{flags: map[string]string{}}
	for i := 0; i < len(args); i++ {
		a := args[i]
		if !strings.HasPrefix(a, "-") || a == "-" {
			fs.positional = append(fs.positional, a)
			continue
		}
		if eq := strings.Index(a, "="); eq >= 0 {
			name := a[:eq]
			val := a[eq+1:]
			if name == "--from-literal" {
				fs.flags[name] = appendList(fs.flags[name], val)
			} else {
				fs.flags[name] = val
			}
			continue
		}
		if valueFlags[a] && i+1 < len(args) {
			if a == "--from-literal" {
				fs.flags[a] = appendList(fs.flags[a], args[i+1])
			} else {
				fs.flags[a] = args[i+1]
			}
			i++
			continue
		}
		fs.flags[a] = "true"
	}
	return fs
}

func appendList(existing, v string) string {
	if existing == "" {
		return v
	}
	return existing + "\x00" + v
}

func (fs flagSet) get(names ...string) string {
	for _, n := range names {
		if v, ok := fs.flags[n]; ok {
			return v
		}
	}
	return ""
}

func (fs flagSet) has(name string) bool {
	_, ok := fs.flags[name]
	return ok
}

func (e *Env) namespaceOf(fs flagSet) string {
	if ns := fs.get("-n", "--namespace"); ns != "" {
		return ns
	}
	return "default"
}

// readManifest resolves "-f FILE" or "-f -" against the virtual FS or
// stdin.
func (e *Env) readManifest(fs flagSet, io *shell.IO) (string, error) {
	file := fs.get("-f", "--filename")
	if file == "" {
		return "", fmt.Errorf("error: must specify one of -f and -k")
	}
	if file == "-" {
		return io.In, nil
	}
	content, ok := e.Shell.FS[file]
	if !ok {
		return "", fmt.Errorf("error: the path %q does not exist", file)
	}
	return content, nil
}

func parseTimeout(s string) time.Duration {
	if s == "" {
		return 30 * time.Second
	}
	if d, err := time.ParseDuration(s); err == nil {
		return d
	}
	if secs, err := strconv.Atoi(s); err == nil {
		return time.Duration(secs) * time.Second
	}
	return 30 * time.Second
}

// renderTable prints the default "kubectl get" table for a kind.
func renderTable(io *shell.IO, kind string, items []*yamlx.Node, cluster *kubesim.Cluster) {
	switch strings.ToLower(kind)[0:3] {
	case "pod":
		fmt.Fprintf(io.Out, "%-44s %-7s %-9s %-9s %s\n", "NAME", "READY", "STATUS", "RESTARTS", "AGE")
		for _, it := range items {
			name := it.Path("metadata", "name").ScalarString()
			phase := it.Path("status", "phase").ScalarString()
			ready := "0/1"
			if kubesim.HasCondition(it, "Ready") {
				ready = "1/1"
			}
			fmt.Fprintf(io.Out, "%-44s %-7s %-9s %-9s %s\n", name, ready, phase, "0", "1m")
		}
	case "ser", "svc":
		fmt.Fprintf(io.Out, "%-20s %-14s %-14s %-14s %-14s %s\n", "NAME", "TYPE", "CLUSTER-IP", "EXTERNAL-IP", "PORT(S)", "AGE")
		for _, it := range items {
			name := it.Path("metadata", "name").ScalarString()
			typ := it.Path("spec", "type").ScalarString()
			if typ == "" {
				typ = "ClusterIP"
			}
			clusterIP := it.Path("spec", "clusterIP").ScalarString()
			external := "<none>"
			if typ == "LoadBalancer" {
				external = "<pending>"
				if ip := it.Path("status", "loadBalancer", "ingress", 0, "ip"); ip != nil {
					external = ip.ScalarString()
				}
			}
			var ports strings.Builder
			if pn := it.Path("spec", "ports"); pn != nil {
				ports.Grow(16 * len(pn.Items))
				for i, p := range pn.Items {
					if i > 0 {
						ports.WriteByte(',')
					}
					ports.WriteString(p.Get("port").ScalarString())
					if np := p.Get("nodePort"); np != nil {
						ports.WriteByte(':')
						ports.WriteString(np.ScalarString())
					}
					ports.WriteString("/TCP")
				}
			}
			fmt.Fprintf(io.Out, "%-20s %-14s %-14s %-14s %-14s %s\n", name, typ, clusterIP, external, ports.String(), "1m")
		}
	default:
		fmt.Fprintf(io.Out, "%-44s %s\n", "NAME", "AGE")
		for _, it := range items {
			fmt.Fprintf(io.Out, "%-44s %s\n", it.Path("metadata", "name").ScalarString(), "1m")
		}
	}
}

// evalOutput renders "kubectl get" items according to -o/--output.
func evalOutput(io *shell.IO, format string, kind string, names []string, items []*yamlx.Node, cluster *kubesim.Cluster) int {
	switch {
	case format == "":
		renderTable(io, kind, items, cluster)
		return 0
	case strings.HasPrefix(format, "jsonpath="):
		tmpl := strings.TrimPrefix(format, "jsonpath=")
		tmpl = strings.Trim(tmpl, "'\"")
		var root *yamlx.Node
		if len(names) == 1 && len(items) == 1 {
			root = items[0]
		} else {
			list := yamlx.Map()
			list.Set("apiVersion", yamlx.String("v1"))
			list.Set("kind", yamlx.String("List"))
			seq := yamlx.Seq()
			for _, it := range items {
				seq.Append(it)
			}
			list.Set("items", seq)
			root = list
		}
		out, err := jsonpath.Eval(root, tmpl)
		if err != nil {
			fmt.Fprintf(io.Err, "error: error parsing jsonpath %s: %v\n", tmpl, err)
			return 1
		}
		io.Out.WriteString(out)
		if out != "" {
			io.Out.WriteString("\n")
		}
		return 0
	case format == "yaml":
		var docs []*yamlx.Node
		docs = append(docs, items...)
		io.Out.Write(yamlx.MarshalAll(docs))
		return 0
	case format == "name":
		for _, it := range items {
			fmt.Fprintf(io.Out, "%s/%s\n", kubesim.CanonicalKind(kind), it.Path("metadata", "name").ScalarString())
		}
		return 0
	case format == "wide":
		renderTable(io, kind, items, cluster)
		return 0
	default:
		fmt.Fprintf(io.Err, "error: unable to match a printer suitable for the output format %q\n", format)
		return 1
	}
}
