package k8scmd

import (
	"strings"
	"sync"
	"testing"
)

// TestPooledEnvNoLeak is the regression test for environment
// recycling: nothing one execution does — files written, variables
// exported, namespaces created, workloads applied, envoy started,
// virtual time consumed — may survive Env.Reset, the wipe the
// per-family scenario pools run on every put (the k8s-tools
// instantiation of the contract; internal/scenario/pool_test.go
// checks the same property through every family's registered pool).
func TestPooledEnvNoLeak(t *testing.T) {
	pool := sync.Pool{New: func() any { return NewEnv() }}
	first := pool.Get().(*Env)
	script := `
kubectl create namespace leaky
kubectl create deployment web --image=nginx -n leaky
echo secret > /tmp/leak.txt
export LEAKVAR=oops
sleep 5
`
	first.Shell.FS["seed.yaml"] = "kind: ConfigMap"
	if _, err := first.Shell.Run(script); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if !first.Cluster.HasNamespace("leaky") {
		t.Fatal("setup failed: namespace not created")
	}
	first.Reset()
	pool.Put(first)

	// The recycled env must be indistinguishable from a fresh one.
	recycled := pool.Get().(*Env)
	fresh := NewEnv()
	if recycled.Cluster.HasNamespace("leaky") {
		t.Error("namespace leaked through the pool")
	}
	if _, ok := recycled.Shell.FS["/tmp/leak.txt"]; ok {
		t.Error("file leaked through the pool")
	}
	if _, ok := recycled.Shell.FS["seed.yaml"]; ok {
		t.Error("seeded file leaked through the pool")
	}
	if v, ok := recycled.Shell.Env["LEAKVAR"]; ok {
		t.Errorf("variable leaked through the pool: LEAKVAR=%q", v)
	}
	if recycled.Envoy != nil {
		t.Error("envoy bootstrap leaked through the pool")
	}
	if !recycled.Cluster.Now().Equal(fresh.Cluster.Now()) {
		t.Errorf("virtual clock leaked: recycled %v, fresh %v", recycled.Cluster.Now(), fresh.Cluster.Now())
	}

	// And it must behave identically: the same script produces the
	// same output in a recycled env as in a fresh one.
	out1, err1 := recycled.Shell.Run("kubectl get ns default -o name && echo $LEAKVAR done")
	out2, err2 := fresh.Shell.Run("kubectl get ns default -o name && echo $LEAKVAR done")
	if err1 != nil || err2 != nil {
		t.Fatalf("runs errored: %v / %v", err1, err2)
	}
	if out1.Stdout != out2.Stdout || out1.ExitCode != out2.ExitCode {
		t.Errorf("recycled env diverged from fresh env:\nrecycled: %q (%d)\nfresh:    %q (%d)",
			out1.Stdout, out1.ExitCode, out2.Stdout, out2.ExitCode)
	}
	if strings.Contains(out1.Stdout, "oops") {
		t.Error("leaked variable observable in output")
	}
}

// The measurement behind the environment-recycling design choice (see
// DESIGN.md §2.6): BenchmarkEnvFresh is the clone-from-prototype
// contender reduced to its floor — NewEnv already stamps environments
// out of shared immutable state (the core builtin table, the cached
// ASTs and documents), so a structured clone could at best match it —
// and BenchmarkEnvPooled is the pooled reset the scenario pools run.
// The pooled variant wins because Reset retains map bucket capacity
// and builtin bindings that a rebuild (or clone) pays for every time;
// scenario.Backend.GetEnv/PutEnv therefore recycle rather than
// rebuild.
func BenchmarkEnvFresh(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEnv()
		e.Shell.FS["labeled_code.yaml"] = "kind: Pod"
		if _, err := e.Shell.Run("kubectl version"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnvPooled(b *testing.B) {
	pool := sync.Pool{New: func() any { return NewEnv() }}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := pool.Get().(*Env)
		e.Shell.FS["labeled_code.yaml"] = "kind: Pod"
		if _, err := e.Shell.Run("kubectl version"); err != nil {
			b.Fatal(err)
		}
		e.Reset()
		pool.Put(e)
	}
}
