package k8scmd

import (
	"fmt"
	"strings"

	"cloudeval/internal/kubesim"
	"cloudeval/internal/shell"
	"cloudeval/internal/yamlx"
)

// kubectl implements the kubectl subcommands the benchmark's unit tests
// use: apply, delete, create, get, describe, wait, logs and rollout.
func (e *Env) kubectl(in *shell.Interp, io *shell.IO, args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(io.Err, "kubectl: missing subcommand")
		return 1
	}
	sub := args[0]
	fs := parseFlags(args[1:])
	switch sub {
	case "apply":
		return e.kubectlApply(fs, io)
	case "delete":
		return e.kubectlDelete(fs, io)
	case "create":
		return e.kubectlCreate(fs, io)
	case "get":
		return e.kubectlGet(fs, io)
	case "describe":
		return e.kubectlDescribe(fs, io)
	case "wait":
		return e.kubectlWait(fs, io)
	case "logs":
		return e.kubectlLogs(fs, io)
	case "rollout":
		return e.kubectlRollout(fs, io)
	case "version":
		fmt.Fprintln(io.Out, "Client Version: v1.28.0 (kubesim)")
		return 0
	case "cluster-info":
		fmt.Fprintf(io.Out, "Kubernetes control plane is running at https://%s:8443\n", kubesim.NodeIP)
		return 0
	default:
		fmt.Fprintf(io.Err, "error: unknown command %q for \"kubectl\"\n", sub)
		return 1
	}
}

func (e *Env) kubectlApply(fs flagSet, io *shell.IO) int {
	src, err := e.readManifest(fs, io)
	if err != nil {
		fmt.Fprintln(io.Err, err)
		return 1
	}
	results, err := e.Cluster.ApplyYAML(src, e.namespaceOf(fs))
	for _, r := range results {
		fmt.Fprintln(io.Out, r)
	}
	if err != nil {
		fmt.Fprintf(io.Err, "Error from server (BadRequest): error when creating %q: %v\n", fs.get("-f", "--filename"), err)
		return 1
	}
	return 0
}

func (e *Env) kubectlDelete(fs flagSet, io *shell.IO) int {
	if fs.get("-f", "--filename") != "" {
		src, err := e.readManifest(fs, io)
		if err != nil {
			fmt.Fprintln(io.Err, err)
			return 1
		}
		lines, err := e.Cluster.DeleteYAML(src, e.namespaceOf(fs))
		for _, ln := range lines {
			fmt.Fprintln(io.Out, ln)
		}
		if err != nil {
			fmt.Fprintf(io.Err, "%v\n", err)
			return 1
		}
		return 0
	}
	if len(fs.positional) < 2 {
		fmt.Fprintln(io.Err, "error: resource(s) were provided, but no name was specified")
		return 1
	}
	kind := fs.positional[0]
	code := 0
	for _, name := range fs.positional[1:] {
		var err error
		if k := strings.ToLower(kind); k == "ns" || k == "namespace" || k == "namespaces" {
			err = e.Cluster.DeleteNamespace(name)
		} else {
			err = e.Cluster.Delete(kind, e.namespaceOf(fs), name)
		}
		if err != nil {
			fmt.Fprintf(io.Err, "Error from server (NotFound): %v\n", err)
			code = 1
			continue
		}
		fmt.Fprintf(io.Out, "%s %q deleted\n", strings.ToLower(kind), name)
	}
	return code
}

func (e *Env) kubectlCreate(fs flagSet, io *shell.IO) int {
	if fs.get("-f", "--filename") != "" {
		return e.kubectlApply(fs, io)
	}
	if len(fs.positional) == 0 {
		fmt.Fprintln(io.Err, "error: you must specify resources to create")
		return 1
	}
	kind := strings.ToLower(fs.positional[0])
	switch kind {
	case "ns", "namespace":
		if len(fs.positional) < 2 {
			fmt.Fprintln(io.Err, "error: exactly one NAME is required")
			return 1
		}
		name := fs.positional[1]
		if err := e.Cluster.CreateNamespace(name); err != nil {
			fmt.Fprintf(io.Err, "Error from server (AlreadyExists): %v\n", err)
			return 1
		}
		fmt.Fprintf(io.Out, "namespace/%s created\n", name)
		return 0
	case "secret", "configmap", "cm":
		return e.createKVResource(kind, fs, io)
	case "serviceaccount", "sa":
		return e.createSimple("ServiceAccount", "v1", fs, io, 1)
	case "clusterrole":
		return e.createRBACRole("ClusterRole", fs, io)
	case "role":
		return e.createRBACRole("Role", fs, io)
	case "deployment", "deploy":
		return e.createDeployment(fs, io)
	default:
		fmt.Fprintf(io.Err, "error: unknown resource type %q for kubectl create\n", kind)
		return 1
	}
}

func (e *Env) createKVResource(kind string, fs flagSet, io *shell.IO) int {
	pos := fs.positional[1:]
	// "kubectl create secret generic NAME" has a subtype positional.
	if kind == "secret" {
		if len(pos) == 0 || pos[0] != "generic" && pos[0] != "tls" && pos[0] != "docker-registry" {
			fmt.Fprintln(io.Err, "error: you must specify a secret type (generic)")
			return 1
		}
		pos = pos[1:]
	}
	if len(pos) == 0 {
		fmt.Fprintln(io.Err, "error: exactly one NAME is required")
		return 1
	}
	name := pos[0]
	apiKind := "ConfigMap"
	if kind == "secret" {
		apiKind = "Secret"
	}
	doc := yamlx.Map()
	doc.Set("apiVersion", yamlx.String("v1"))
	doc.Set("kind", yamlx.String(apiKind))
	meta := yamlx.Map()
	meta.Set("name", yamlx.String(name))
	doc.Set("metadata", meta)
	data := yamlx.Map()
	for _, kv := range strings.Split(fs.get("--from-literal"), "\x00") {
		if kv == "" {
			continue
		}
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) == 2 {
			v := yamlx.String(parts[1])
			v.Quoted = true
			data.Set(parts[0], v)
		}
	}
	if apiKind == "Secret" {
		doc.Set("stringData", data)
		doc.Set("type", yamlx.String("Opaque"))
	} else {
		doc.Set("data", data)
	}
	if _, err := e.Cluster.Apply(doc, e.namespaceOf(fs)); err != nil {
		fmt.Fprintf(io.Err, "%v\n", err)
		return 1
	}
	fmt.Fprintf(io.Out, "%s/%s created\n", strings.ToLower(apiKind), name)
	return 0
}

func (e *Env) createSimple(apiKind, apiVersion string, fs flagSet, io *shell.IO, nameIdx int) int {
	if len(fs.positional) <= nameIdx {
		fmt.Fprintln(io.Err, "error: exactly one NAME is required")
		return 1
	}
	name := fs.positional[nameIdx]
	doc := yamlx.Map()
	doc.Set("apiVersion", yamlx.String(apiVersion))
	doc.Set("kind", yamlx.String(apiKind))
	meta := yamlx.Map()
	meta.Set("name", yamlx.String(name))
	doc.Set("metadata", meta)
	if _, err := e.Cluster.Apply(doc, e.namespaceOf(fs)); err != nil {
		fmt.Fprintf(io.Err, "%v\n", err)
		return 1
	}
	fmt.Fprintf(io.Out, "%s/%s created\n", strings.ToLower(apiKind), name)
	return 0
}

func (e *Env) createRBACRole(apiKind string, fs flagSet, io *shell.IO) int {
	if len(fs.positional) < 2 {
		fmt.Fprintln(io.Err, "error: exactly one NAME is required")
		return 1
	}
	name := fs.positional[1]
	doc := yamlx.Map()
	doc.Set("apiVersion", yamlx.String("rbac.authorization.k8s.io/v1"))
	doc.Set("kind", yamlx.String(apiKind))
	meta := yamlx.Map()
	meta.Set("name", yamlx.String(name))
	doc.Set("metadata", meta)
	rule := yamlx.Map()
	apiGroups := yamlx.Seq(yamlx.String(""))
	rule.Set("apiGroups", apiGroups)
	verbs := yamlx.Seq()
	for _, v := range strings.Split(fs.get("--verb"), ",") {
		if v != "" {
			verbs.Append(yamlx.String(v))
		}
	}
	rule.Set("verbs", verbs)
	resources := yamlx.Seq()
	for _, r := range strings.Split(fs.get("--resource"), ",") {
		if r != "" {
			resources.Append(yamlx.String(r))
		}
	}
	rule.Set("resources", resources)
	doc.Set("rules", yamlx.Seq(rule))
	if _, err := e.Cluster.Apply(doc, e.namespaceOf(fs)); err != nil {
		fmt.Fprintf(io.Err, "%v\n", err)
		return 1
	}
	fmt.Fprintf(io.Out, "%s.rbac.authorization.k8s.io/%s created\n", strings.ToLower(apiKind), name)
	return 0
}

func (e *Env) createDeployment(fs flagSet, io *shell.IO) int {
	if len(fs.positional) < 2 {
		fmt.Fprintln(io.Err, "error: exactly one NAME is required")
		return 1
	}
	name := fs.positional[1]
	image := fs.get("--image")
	if image == "" {
		fmt.Fprintln(io.Err, "error: --image is required")
		return 1
	}
	src := fmt.Sprintf(`apiVersion: apps/v1
kind: Deployment
metadata:
  name: %s
  labels:
    app: %s
spec:
  replicas: 1
  selector:
    matchLabels:
      app: %s
  template:
    metadata:
      labels:
        app: %s
    spec:
      containers:
      - name: %s
        image: %s
`, name, name, name, name, name, image)
	if _, err := e.Cluster.ApplyYAML(src, e.namespaceOf(fs)); err != nil {
		fmt.Fprintf(io.Err, "%v\n", err)
		return 1
	}
	fmt.Fprintf(io.Out, "deployment.apps/%s created\n", name)
	return 0
}

func (e *Env) kubectlGet(fs flagSet, io *shell.IO) int {
	if len(fs.positional) == 0 {
		fmt.Fprintln(io.Err, "error: you must specify the type of resource to get")
		return 1
	}
	kind := fs.positional[0]
	names := fs.positional[1:]
	// "kubectl get deploy/name" form.
	if strings.Contains(kind, "/") {
		parts := strings.SplitN(kind, "/", 2)
		kind, names = parts[0], append([]string{parts[1]}, names...)
	}
	ns := e.namespaceOf(fs)
	if fs.has("-A") || fs.has("--all-namespaces") {
		ns = "*"
	}
	var items []*yamlx.Node
	if len(names) > 0 {
		for _, name := range names {
			n, ok := e.Cluster.GetByName(kind, ns, name)
			if !ok {
				fmt.Fprintf(io.Err, "Error from server (NotFound): %s %q not found\n", strings.ToLower(kind), name)
				return 1
			}
			items = append(items, n)
		}
	} else {
		items = e.Cluster.List(kind, ns, fs.get("-l", "--selector"))
		if len(items) == 0 && fs.get("-o", "--output") == "" {
			fmt.Fprintf(io.Err, "No resources found in %s namespace.\n", ns)
			return 0
		}
	}
	return evalOutput(io, fs.get("-o", "--output"), kind, names, items, e.Cluster)
}

func (e *Env) kubectlDescribe(fs flagSet, io *shell.IO) int {
	if len(fs.positional) < 1 {
		fmt.Fprintln(io.Err, "error: you must specify the type of resource to describe")
		return 1
	}
	kind := fs.positional[0]
	var names []string
	if strings.Contains(kind, "/") {
		parts := strings.SplitN(kind, "/", 2)
		kind, names = parts[0], []string{parts[1]}
	} else {
		names = fs.positional[1:]
	}
	ns := e.namespaceOf(fs)
	if len(names) == 0 {
		for _, n := range e.Cluster.List(kind, ns, fs.get("-l", "--selector")) {
			names = append(names, n.Path("metadata", "name").ScalarString())
		}
	}
	if len(names) == 0 {
		fmt.Fprintf(io.Err, "No resources found in %s namespace.\n", ns)
		return 1
	}
	code := 0
	for _, name := range names {
		out, err := e.Cluster.Describe(kind, ns, name)
		if err != nil {
			fmt.Fprintln(io.Err, err)
			code = 1
			continue
		}
		io.Out.WriteString(out)
	}
	return code
}

func (e *Env) kubectlWait(fs flagSet, io *shell.IO) int {
	forSpec := fs.get("--for")
	cond, ok := strings.CutPrefix(forSpec, "condition=")
	if !ok {
		fmt.Fprintf(io.Err, "error: unrecognized --for spec %q\n", forSpec)
		return 1
	}
	// condition may carry "=True".
	cond = strings.TrimSuffix(cond, "=True")
	if len(fs.positional) == 0 {
		fmt.Fprintln(io.Err, "error: you must specify the type of resource to wait on")
		return 1
	}
	kind := fs.positional[0]
	names := fs.positional[1:]
	if strings.Contains(kind, "/") {
		parts := strings.SplitN(kind, "/", 2)
		kind, names = parts[0], append([]string{parts[1]}, names...)
	}
	opts := kubesim.WaitOptions{
		Kind:      kind,
		Namespace: e.namespaceOf(fs),
		Names:     names,
		Selector:  fs.get("-l", "--selector"),
		All:       fs.has("--all"),
		Condition: cond,
		Timeout:   parseTimeout(fs.get("--timeout")),
	}
	if err := e.Cluster.WaitFor(opts); err != nil {
		fmt.Fprintln(io.Err, err)
		return 1
	}
	for _, n := range names {
		fmt.Fprintf(io.Out, "%s/%s condition met\n", strings.ToLower(kind), n)
	}
	if len(names) == 0 {
		fmt.Fprintf(io.Out, "%s condition met\n", strings.ToLower(kind))
	}
	return 0
}

func (e *Env) kubectlLogs(fs flagSet, io *shell.IO) int {
	if len(fs.positional) == 0 {
		fmt.Fprintln(io.Err, "error: expected a pod name")
		return 1
	}
	name := fs.positional[0]
	n, ok := e.Cluster.GetByName("pod", e.namespaceOf(fs), name)
	if !ok {
		fmt.Fprintf(io.Err, "Error from server (NotFound): pods %q not found\n", name)
		return 1
	}
	img := n.Path("spec", "containers", 0, "image").ScalarString()
	fmt.Fprintf(io.Out, "%s: container started (image %s)\n", name, img)
	return 0
}

func (e *Env) kubectlRollout(fs flagSet, io *shell.IO) int {
	if len(fs.positional) < 2 || fs.positional[0] != "status" {
		fmt.Fprintln(io.Err, "error: only 'rollout status' is supported")
		return 1
	}
	target := fs.positional[1]
	kind, name := "deployment", target
	if strings.Contains(target, "/") {
		parts := strings.SplitN(target, "/", 2)
		kind, name = parts[0], parts[1]
	}
	opts := kubesim.WaitOptions{
		Kind:      kind,
		Namespace: e.namespaceOf(fs),
		Names:     []string{name},
		Condition: "Available",
		Timeout:   parseTimeout(fs.get("--timeout")),
	}
	if err := e.Cluster.WaitFor(opts); err != nil {
		fmt.Fprintln(io.Err, err)
		return 1
	}
	fmt.Fprintf(io.Out, "%s %q successfully rolled out\n", kind, name)
	return 0
}
