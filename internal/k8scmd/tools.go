package k8scmd

import (
	"fmt"
	"strconv"
	"strings"

	"cloudeval/internal/envoysim"
	"cloudeval/internal/shell"
)

// curl simulates the curl invocations unit tests use to probe services:
// "curl -s -o /dev/null -w "%{http_code}" $host_ip:5000". The probe is
// answered by the kubesim data plane and, when an Envoy bootstrap is
// running, by its listeners on localhost.
func (e *Env) curl(in *shell.Interp, io *shell.IO, args []string) int {
	var url, outFile, writeFmt string
	silent := false
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-s" || a == "--silent":
			silent = true
		case a == "-o" && i+1 < len(args):
			outFile = args[i+1]
			i++
		case a == "-w" && i+1 < len(args):
			writeFmt = args[i+1]
			i++
		case (a == "-m" || a == "--max-time") && i+1 < len(args):
			if secs, err := strconv.Atoi(args[i+1]); err == nil {
				_ = secs // budget only matters on failure; probes are instant
			}
			i++
		case a == "-f" || a == "--fail" || a == "-L" || a == "-k" || a == "-4" || a == "-6" || a == "-v" || a == "-i" || a == "-I":
			// Accepted and ignored.
		case strings.HasPrefix(a, "-"):
			// Unknown flag: ignore.
		default:
			url = a
		}
	}
	if url == "" {
		fmt.Fprintln(io.Err, "curl: no URL specified")
		return 2
	}
	host, port, path := splitURL(url)
	code, body, ok := e.probe(host, port, path)
	if !ok {
		if !silent {
			fmt.Fprintf(io.Err, "curl: (7) Failed to connect to %s port %d: Connection refused\n", host, port)
		}
		if writeFmt != "" {
			io.Out.WriteString(strings.ReplaceAll(writeFmt, "%{http_code}", "000"))
		}
		return 7
	}
	if outFile != "" {
		if outFile != "/dev/null" {
			in.FS[outFile] = body
		}
	} else {
		io.Out.WriteString(body)
		if body != "" && !strings.HasSuffix(body, "\n") {
			io.Out.WriteString("\n")
		}
	}
	if writeFmt != "" {
		io.Out.WriteString(strings.ReplaceAll(writeFmt, "%{http_code}", fmt.Sprint(code)))
	}
	return 0
}

// probe answers an HTTP GET against kubesim, falling back to a running
// Envoy's listeners for localhost targets.
func (e *Env) probe(host string, port int, path string) (int, string, bool) {
	if code, body, ok := e.Cluster.HTTPProbe(host, port); ok {
		return code, body, true
	}
	if e.Envoy != nil && (host == "localhost" || host == "127.0.0.1" || host == "0.0.0.0") {
		return e.Envoy.Probe(port, path)
	}
	return 0, "", false
}

func splitURL(url string) (host string, port int, path string) {
	rest := url
	if i := strings.Index(rest, "://"); i >= 0 {
		rest = rest[i+3:]
	}
	path = "/"
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		path = rest[i:]
		rest = rest[:i]
	}
	host = rest
	port = 80
	if i := strings.LastIndexByte(rest, ':'); i >= 0 {
		host = rest[:i]
		if p, err := strconv.Atoi(rest[i+1:]); err == nil {
			port = p
		}
	}
	return host, port, path
}

// minikube implements "minikube service", "minikube ip" and lifecycle
// no-ops against the simulated cluster.
func (e *Env) minikube(in *shell.Interp, io *shell.IO, args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(io.Err, "minikube: missing command")
		return 1
	}
	switch args[0] {
	case "ip":
		fmt.Fprintln(io.Out, "192.168.49.2")
		return 0
	case "start":
		fmt.Fprintln(io.Out, "* minikube v1.31.0 (kubesim)")
		fmt.Fprintln(io.Out, "* Done! kubectl is now configured to use \"minikube\" cluster")
		return 0
	case "stop", "delete", "status":
		fmt.Fprintf(io.Out, "* minikube %s: ok\n", args[0])
		return 0
	case "service":
		fs := parseFlags(args[1:])
		if len(fs.positional) == 0 {
			fmt.Fprintln(io.Err, "minikube service: NAME is required")
			return 1
		}
		name := fs.positional[0]
		ns := e.namespaceOf(fs)
		url, err := e.Cluster.ServiceURL(ns, name)
		if err != nil {
			fmt.Fprintf(io.Err, "* Service %q was not found in %q namespace: %v\n", name, ns, err)
			return 1
		}
		if fs.has("--url") {
			fmt.Fprintln(io.Out, url)
			return 0
		}
		fmt.Fprintf(io.Out, "|-----------|%s|-------------|%s|\n", strings.Repeat("-", len(name)+2), strings.Repeat("-", len(url)+2))
		fmt.Fprintf(io.Out, "| NAMESPACE | %s | TARGET PORT | %s |\n", name, url)
		fmt.Fprintf(io.Out, "* Starting tunnel for service %s.\n", name)
		fmt.Fprintf(io.Out, "* Opening service %s/%s in default browser...\n", ns, name)
		return 0
	default:
		fmt.Fprintf(io.Err, "minikube: unknown command %q\n", args[0])
		return 1
	}
}

// istioctl accepts the analyze/version forms Istio problems use; the
// Istio resources themselves live in kubesim as custom resources.
func (e *Env) istioctl(in *shell.Interp, io *shell.IO, args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(io.Err, "istioctl: missing command")
		return 1
	}
	switch args[0] {
	case "analyze":
		fmt.Fprintln(io.Out, "No validation issues found when analyzing namespace: default.")
		return 0
	case "version":
		fmt.Fprintln(io.Out, "client version: 1.19.0 (istiosim)")
		return 0
	default:
		fmt.Fprintf(io.Out, "istioctl %s: ok\n", args[0])
		return 0
	}
}

// envoy implements "envoy --mode validate -c FILE" and "envoy -c FILE"
// (which loads the bootstrap into the environment so curl can probe its
// listeners).
func (e *Env) envoy(in *shell.Interp, io *shell.IO, args []string) int {
	fs := parseFlags(args)
	file := fs.get("-c")
	if file == "" {
		fmt.Fprintln(io.Err, "envoy: -c <config> is required")
		return 1
	}
	src, ok := in.FS[file]
	if !ok {
		fmt.Fprintf(io.Err, "envoy: unable to read file: %s\n", file)
		return 1
	}
	b, err := envoysim.LoadCached(src)
	if err != nil {
		fmt.Fprintf(io.Err, "%v\n", err)
		return 1
	}
	if fs.get("--mode") == "validate" {
		fmt.Fprintf(io.Out, "configuration '%s' OK\n", file)
		return 0
	}
	e.Envoy = b
	fmt.Fprintln(io.Out, "[info] all dependencies initialized. starting main dispatch loop")
	return 0
}

// docker supports the "docker run ... envoy -c file" pattern by
// delegating to the envoy builtin, and treats images as always present
// (the registry cache is modeled in the evalcluster package).
func (e *Env) docker(in *shell.Interp, io *shell.IO, args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(io.Err, "docker: missing command")
		return 1
	}
	switch args[0] {
	case "run":
		// Find an envoy invocation inside the argument list.
		for i, a := range args {
			if strings.Contains(a, "envoy") && i+1 < len(args) {
				return e.envoy(in, io, args[i+1:])
			}
		}
		fmt.Fprintln(io.Out, "container started")
		return 0
	case "ps", "images", "pull", "stop", "rm", "kill":
		fmt.Fprintf(io.Out, "docker %s: ok\n", args[0])
		return 0
	default:
		fmt.Fprintf(io.Err, "docker: unknown command %q\n", args[0])
		return 1
	}
}
