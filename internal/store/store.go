// Package store is the persistent, content-addressed evaluation store:
// the second cache tier under engine.Engine.UnitTest. Where the
// engine's in-memory map dies with the process, the store is an
// append-only on-disk log of (unit-test-script digest, answer digest)
// → unit-test result records, so repeated campaigns across processes —
// and across CI runs via cache restore — hit disk instead of the
// simulated cluster.
//
// The log holds two record kinds sharing one frame format: unit-test
// results (the original kind, engine.CacheStore) and generation
// results (inference.GenStore — model responses keyed by the
// generation request's content address), so one store carries a
// campaign's full warm state: a re-campaign neither generates nor
// executes anything.
//
// # Sharded layout
//
// The store is partitioned into N key-range shards (N a power of two,
// persisted in the <path>.shards meta file so routing never changes
// for an existing store): a key's leading digest byte selects its
// shard, and each shard owns its own segment file <path>.sNN, its own
// group-commit pending buffer and committer, and its own index
// stripes. Concurrent Puts to different shards land on independent
// files with independent write batches instead of serializing on one
// committer; Open replays all segments in parallel (one goroutine and
// one reusable payload buffer per shard); Compact rewrites shards
// concurrently, and compacting shard k never blocks appends to the
// others.
//
// A legacy single-file log at <path> itself — the pre-shard layout —
// is transparently read through: Open replays it first (its records
// are the oldest, so segment records win conflicts), appends always go
// to the owning shard's segment, and the first successful Compact
// migrates every record into the sharded layout and removes the
// legacy file.
//
// # On-disk format
//
// Every file — legacy log and shard segments alike — is a sequence of
// length-prefixed, checksummed records, byte-identical to the
// pre-shard format:
//
//	[4-byte LE payload length][4-byte LE CRC-32C of payload][JSON payload]
//
// Writes are crash-safe by construction: a record torn by a crash or a
// truncated copy fails its length or checksum check, and Open drops
// everything from the first bad frame onward (that file's tail)
// instead of failing — a torn tail in shard k loses nothing in shards
// ≠ k. Each log is append-only — a re-recorded key simply appends a
// newer record, and the newest record per key wins on replay. Compact
// rewrites each shard to one record per key (newest wins) via an
// atomic rename.
//
// Concurrency: per-shard indexes are striped behind RWMutexes, so
// warm-store reads never contend with appends or each other. Appends
// group-commit per shard: writers encode frames outside any lock,
// enqueue into the shard's pending buffer, and one of them — the
// committer — drains the whole batch with a single write syscall,
// then releases every writer whose frames it carried. A Put still
// does not return until its frame is on disk (the durability contract
// tests rely on), but N concurrent Puts to one shard cost one syscall
// instead of N, and Puts to different shards batch and flush fully
// independently.
//
// The full index (including result payloads; outputs are bounded by
// the corpus) is held in memory, so Get never touches disk after Open.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cloudeval/internal/inference"
	"cloudeval/internal/unittest"
)

// Key content-addresses one evaluation, mirroring the engine's cache
// key: the digests of the unit-test script and the candidate answer.
type Key struct {
	Test   [sha256.Size]byte
	Answer [sha256.Size]byte
}

// Record is one persisted unit-test outcome.
type Record struct {
	Passed      bool
	Output      string
	ExitCode    int
	VirtualTime time.Duration
}

// frame is the JSON payload of one on-disk record. Kind selects the
// record type: "" (absent, the original format) is a unit-test
// result, "gen" a generation result. Logs written before the
// generation kind existed replay unchanged.
type frame struct {
	Kind string `json:"kind,omitempty"`

	// Unit-test fields.
	Test        string  `json:"test,omitempty"`   // hex sha256 of the unit-test script
	Answer      string  `json:"answer,omitempty"` // hex sha256 of the answer
	Passed      bool    `json:"passed,omitempty"`
	Output      string  `json:"output,omitempty"`
	ExitCode    int     `json:"exit_code,omitempty"`
	VirtualSecs float64 `json:"virtual_secs,omitempty"`

	// Generation fields.
	Gen              string `json:"gen,omitempty"` // hex generation key
	Text             string `json:"text,omitempty"`
	PromptTokens     int    `json:"prompt_tokens,omitempty"`
	CompletionTokens int    `json:"completion_tokens,omitempty"`
	LatencyNs        int64  `json:"latency_ns,omitempty"`
}

// genKind tags generation frames.
const genKind = "gen"

const frameHeaderSize = 8

// maxPayload rejects absurd length prefixes (a torn header read as a
// huge length must not allocate gigabytes before the CRC check).
const maxPayload = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Shard-count policy: a power of two sized like memo.Sharded's
// GOMAXPROCS scaling, but clamped tighter — every shard is an open
// file, and a store's worth of parallelism saturates well below a
// cache's. The count is fixed at creation and persisted in the meta
// file; an existing store always reopens with the count it was
// created with, so key→shard routing (and therefore which segment
// file owns a record) never changes under a different GOMAXPROCS.
const (
	minShards = 8
	maxShards = 64
)

// idxStripes is the per-shard index stripe count: 4 RWMutex stripes
// per shard × ≥8 shards keeps warm-read concurrency at or above the
// pre-shard store's 32 global stripes while letting each shard own
// its stripes outright.
const idxStripes = 4

type recStripe struct {
	mu sync.RWMutex
	m  map[Key]Record
}

type genStripe struct {
	mu sync.RWMutex
	m  map[inference.Key]inference.Response
}

// Shard routing uses the leading digest bytes; striping within a
// shard uses the second bytes so the two subdivisions stay
// independent (a shard's keys spread across all of its stripes).
func recShardOf(k Key, mask int) int           { return int(k.Test[0]^k.Answer[0]) & mask }
func recStripeOf(k Key) int                    { return int(k.Test[1]^k.Answer[1]) & (idxStripes - 1) }
func genShardOf(k inference.Key, mask int) int { return int(k[0]) & mask }
func genStripeOf(k inference.Key) int          { return int(k[1]) & (idxStripes - 1) }

// Store is a persistent evaluation cache sharded across per-key-range
// segment files. It is safe for concurrent use and implements
// engine.CacheStore and inference.GenStore.
type Store struct {
	path string
	segs []*segment
	mask int

	// compactMu serializes Compact calls (each shard's compaction also
	// takes that shard's log lock; appends to other shards proceed).
	compactMu sync.Mutex
	// legacyMu guards legacy: whether the pre-shard single-file log at
	// path still exists and must be preserved until a full Compact has
	// migrated its records into the shard segments.
	legacyMu sync.Mutex
	legacy   bool
}

// segPath names shard i's segment file.
func segPath(path string, i int) string { return fmt.Sprintf("%s.s%02d", path, i) }

// metaPath names the shard-count meta file.
func metaPath(path string) string { return path + ".shards" }

// defaultShardCount picks the shard count for a new store: the
// smallest power of two at least twice GOMAXPROCS, clamped to
// [minShards, maxShards].
func defaultShardCount() int {
	n := 1
	for n < 2*runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	if n < minShards {
		n = minShards
	}
	if n > maxShards {
		n = maxShards
	}
	return n
}

// resolveShardCount determines the shard count for the store at path:
// the meta file if present, else inferred from existing segment files
// (a crash can lose the meta file but not the renamed segments), else
// the default for a fresh store. The resolved count is (re)written to
// the meta file atomically.
func resolveShardCount(path string) (int, error) {
	if data, err := os.ReadFile(metaPath(path)); err == nil {
		n, err := strconv.Atoi(strings.TrimSpace(string(data)))
		if err != nil || n < 1 || n > 1<<16 || n&(n-1) != 0 {
			return 0, fmt.Errorf("store: corrupt shard meta %s: %q", metaPath(path), strings.TrimSpace(string(data)))
		}
		return n, nil
	} else if !os.IsNotExist(err) {
		return 0, err
	}
	n := defaultShardCount()
	if inferred, ok, err := inferShardCount(path); err != nil {
		return 0, err
	} else if ok {
		n = inferred
	}
	if err := writeShardMeta(path, n); err != nil {
		return 0, err
	}
	return n, nil
}

// inferShardCount scans for existing segment files and returns the
// smallest power of two covering every index found.
func inferShardCount(path string) (int, bool, error) {
	dir := filepath.Dir(path)
	prefix := filepath.Base(path) + ".s"
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, err
	}
	maxIdx := -1
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		idx, err := strconv.Atoi(name[len(prefix):])
		if err != nil || idx < 0 {
			continue
		}
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	if maxIdx < 0 {
		return 0, false, nil
	}
	n := 1
	for n <= maxIdx {
		n <<= 1
	}
	if n < minShards {
		n = minShards
	}
	return n, true, nil
}

// writeShardMeta records the shard count atomically (temp + rename),
// so a crash mid-write never leaves a torn meta file.
func writeShardMeta(path string, n int) error {
	tmp := metaPath(path) + ".tmp"
	if err := os.WriteFile(tmp, []byte(strconv.Itoa(n)+"\n"), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, metaPath(path)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Open reads (or creates) the sharded store rooted at path, replaying
// every intact record: first the legacy single-file log at path
// itself if one exists (the pre-shard layout, read through
// transparently), then all shard segments in parallel. A truncated or
// corrupt tail in any file — the signature of a crash mid-append — is
// dropped and that file truncated back to its last intact record, not
// treated as fatal.
func Open(path string) (*Store, error) {
	n, err := resolveShardCount(path)
	if err != nil {
		return nil, err
	}
	s := &Store{path: path, mask: n - 1, segs: make([]*segment, n)}
	for i := range s.segs {
		// O_APPEND: every flush is one write syscall that the kernel
		// positions at the true end of file, so even a second process
		// appending to the same segment (one writer per store is the
		// intended deployment, but fleets misconfigure) interleaves
		// whole batches rather than corrupting them mid-frame at a
		// stale offset.
		f, err := os.OpenFile(segPath(path, i), os.O_RDWR|os.O_APPEND|os.O_CREATE, 0o644)
		if err != nil {
			for j := 0; j < i; j++ {
				s.segs[j].f.Close()
			}
			return nil, err
		}
		s.segs[i] = newSegment(f)
	}
	// Legacy pre-pass: replay the single-file log serially, routing
	// each record to its owning shard's index. It runs before the
	// parallel segment replay so segment records — always at least as
	// new, since appends only ever go to segments once the sharded
	// store exists — overwrite legacy ones on conflict.
	if fi, err := os.Stat(path); err == nil && fi.Mode().IsRegular() {
		if err := s.replayLegacy(); err != nil {
			s.closeFiles()
			return nil, err
		}
		s.legacy = true
	}
	// Parallel replay: one goroutine per shard, each with its own
	// reusable payload buffer, each truncating its own torn tail.
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, seg := range s.segs {
		wg.Add(1)
		go func(i int, seg *segment) {
			defer wg.Done()
			errs[i] = seg.replay(s)
		}(i, seg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			s.closeFiles()
			return nil, err
		}
	}
	return s, nil
}

func (s *Store) closeFiles() {
	for _, seg := range s.segs {
		seg.f.Close()
	}
}

// replayLegacy loads the pre-shard single-file log at s.path into the
// shard indexes and truncates its torn tail. The handle is closed
// afterwards — appends never go to the legacy file; it is removed by
// the first full Compact.
func (s *Store) replayLegacy() error {
	f, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	good, err := scanLog(f, s.load)
	if err != nil {
		return err
	}
	if err := f.Truncate(good); err != nil {
		return fmt.Errorf("store: truncate legacy torn tail: %w", err)
	}
	return nil
}

// load routes one replayed frame into the owning shard's index,
// reporting false on a malformed key (treated like a corrupt frame:
// replay stops there). Stripe locks are taken because segment replay
// goroutines run concurrently and a misplaced record (a segment file
// holding a foreign key, e.g. hand-copied files) must still land in
// its owning shard's index, where Get will look for it.
func (s *Store) load(fr frame) bool {
	switch fr.Kind {
	case genKind:
		key, err := genKeyFromHex(fr.Gen)
		if err != nil {
			return false
		}
		st := &s.segs[genShardOf(key, s.mask)].gens[genStripeOf(key)]
		st.mu.Lock()
		st.m[key] = inference.Response{
			Text: fr.Text,
			Usage: inference.Usage{
				PromptTokens:     fr.PromptTokens,
				CompletionTokens: fr.CompletionTokens,
			},
			Latency: time.Duration(fr.LatencyNs),
		}
		st.mu.Unlock()
	default:
		key, err := keyFromHex(fr.Test, fr.Answer)
		if err != nil {
			return false
		}
		st := &s.segs[recShardOf(key, s.mask)].recs[recStripeOf(key)]
		st.mu.Lock()
		st.m[key] = Record{
			Passed:      fr.Passed,
			Output:      fr.Output,
			ExitCode:    fr.ExitCode,
			VirtualTime: time.Duration(fr.VirtualSecs * float64(time.Second)),
		}
		st.mu.Unlock()
	}
	return true
}

func keyFromHex(test, answer string) (Key, error) {
	var k Key
	tb, err := hex.DecodeString(test)
	if err != nil || len(tb) != sha256.Size {
		return k, fmt.Errorf("store: bad test digest %q", test)
	}
	ab, err := hex.DecodeString(answer)
	if err != nil || len(ab) != sha256.Size {
		return k, fmt.Errorf("store: bad answer digest %q", answer)
	}
	copy(k.Test[:], tb)
	copy(k.Answer[:], ab)
	return k, nil
}

func genKeyFromHex(s string) (inference.Key, error) {
	var k inference.Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != sha256.Size {
		return k, fmt.Errorf("store: bad generation key %q", s)
	}
	copy(k[:], b)
	return k, nil
}

func encodeFrame(key Key, rec Record) ([]byte, error) {
	return framePayload(frame{
		Test:        hex.EncodeToString(key.Test[:]),
		Answer:      hex.EncodeToString(key.Answer[:]),
		Passed:      rec.Passed,
		Output:      rec.Output,
		ExitCode:    rec.ExitCode,
		VirtualSecs: rec.VirtualTime.Seconds(),
	})
}

func encodeGenFrame(key inference.Key, resp inference.Response) ([]byte, error) {
	return framePayload(frame{
		Kind:             genKind,
		Gen:              hex.EncodeToString(key[:]),
		Text:             resp.Text,
		PromptTokens:     resp.Usage.PromptTokens,
		CompletionTokens: resp.Usage.CompletionTokens,
		LatencyNs:        resp.Latency.Nanoseconds(),
	})
}

func framePayload(fr frame) ([]byte, error) {
	payload, err := json.Marshal(fr)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[frameHeaderSize:], payload)
	return buf, nil
}

// Get implements engine.CacheStore: the persisted result for
// (test, answer), if any.
func (s *Store) Get(test, answer [sha256.Size]byte) (unittest.Result, bool) {
	key := Key{Test: test, Answer: answer}
	st := &s.segs[recShardOf(key, s.mask)].recs[recStripeOf(key)]
	st.mu.RLock()
	rec, ok := st.m[key]
	st.mu.RUnlock()
	if !ok {
		return unittest.Result{}, false
	}
	return unittest.Result{
		Passed:      rec.Passed,
		Output:      rec.Output,
		ExitCode:    rec.ExitCode,
		VirtualTime: rec.VirtualTime,
	}, true
}

// Put implements engine.CacheStore: persist one executed result.
// Errored executions (res.Err != nil) are never recorded — like the
// engine's in-memory tier, a transient outage must not be frozen into
// the cache. An identical re-record is a no-op so warm campaigns don't
// grow the log. Append failures latch into Err/Sync/Close rather than
// failing the evaluation that produced the result. Put returns with
// the record on disk (its shard's group-commit batch flushed).
func (s *Store) Put(test, answer [sha256.Size]byte, res unittest.Result) {
	if res.Err != nil {
		return
	}
	key := Key{Test: test, Answer: answer}
	rec := Record{
		Passed:      res.Passed,
		Output:      res.Output,
		ExitCode:    res.ExitCode,
		VirtualTime: res.VirtualTime,
	}
	seg := s.segs[recShardOf(key, s.mask)]
	st := &seg.recs[recStripeOf(key)]
	st.mu.Lock()
	if old, ok := st.m[key]; ok && old == rec {
		st.mu.Unlock()
		return
	}
	st.m[key] = rec
	st.mu.Unlock()
	buf, err := encodeFrame(key, rec)
	if seg.appendWait(buf, err) {
		seg.appended.Add(1)
	}
}

// GetGen implements inference.GenStore: the persisted generation for
// the given request key, if any.
func (s *Store) GetGen(key inference.Key) (inference.Response, bool) {
	st := &s.segs[genShardOf(key, s.mask)].gens[genStripeOf(key)]
	st.mu.RLock()
	resp, ok := st.m[key]
	st.mu.RUnlock()
	return resp, ok
}

// PutGen implements inference.GenStore: persist one live generation.
// An identical re-record is a no-op; append failures latch into
// Err/Sync/Close, never failing the generation that produced the
// response — the same advisory contract as Put.
func (s *Store) PutGen(key inference.Key, resp inference.Response) {
	seg := s.segs[genShardOf(key, s.mask)]
	st := &seg.gens[genStripeOf(key)]
	st.mu.Lock()
	if old, ok := st.m[key]; ok && old == resp {
		st.mu.Unlock()
		return
	}
	st.m[key] = resp
	st.mu.Unlock()
	buf, err := encodeGenFrame(key, resp)
	if seg.appendWait(buf, err) {
		seg.appended.Add(1)
	}
}

// Len reports how many distinct keys the store holds.
func (s *Store) Len() int {
	n := 0
	for _, seg := range s.segs {
		n += seg.lenRecs()
	}
	return n
}

// GenLen reports how many distinct generations the store holds.
func (s *Store) GenLen() int {
	n := 0
	for _, seg := range s.segs {
		n += seg.lenGens()
	}
	return n
}

// Appended reports how many records this handle has appended since
// Open, across all shards — the store-side mirror of the engine's
// Executed counter.
func (s *Store) Appended() int64 {
	var n int64
	for _, seg := range s.segs {
		n += seg.appended.Load()
	}
	return n
}

// Flushes reports how many group-commit batches this handle has
// written since Open, across all shards. Appended()/Flushes() is the
// average batch size: 1 under serial traffic, climbing with per-shard
// append concurrency as each committer drains more frames per
// syscall.
func (s *Store) Flushes() int64 {
	var n int64
	for _, seg := range s.segs {
		n += seg.flushes.Load()
	}
	return n
}

// Shards reports the store's shard count.
func (s *Store) Shards() int { return len(s.segs) }

// ShardStat is one shard's observable state: index sizes plus this
// handle's append/flush counters (their ratio is the shard's
// group-commit batching factor).
type ShardStat struct {
	Records     int   `json:"records"`
	Generations int   `json:"generations"`
	Appended    int64 `json:"appended"`
	Flushes     int64 `json:"flushes"`
}

// ShardStats snapshots every shard, in shard order. The snapshot is
// per-shard consistent, not cross-shard atomic — it is a monitoring
// surface, not a transaction.
func (s *Store) ShardStats() []ShardStat {
	out := make([]ShardStat, len(s.segs))
	for i, seg := range s.segs {
		out[i] = ShardStat{
			Records:     seg.lenRecs(),
			Generations: seg.lenGens(),
			Appended:    seg.appended.Load(),
			Flushes:     seg.flushes.Load(),
		}
	}
	return out
}

// Err reports the first append failure on any shard, if any.
func (s *Store) Err() error {
	for _, seg := range s.segs {
		if err := seg.err(); err != nil {
			return err
		}
	}
	return nil
}

// Compact rewrites every shard to exactly one record per key — the
// newest — shedding superseded appends. Shards compact concurrently
// and independently: each rewrite goes to a temp file that atomically
// renames over that shard's segment, holding only that shard's log
// lock, so appends to other shards proceed throughout and a crash
// mid-compaction of shard k loses nothing — neither in shard k (the
// rename is atomic; the old segment stays until it succeeds) nor in
// shards ≠ k (their files are untouched). When every shard has been
// durably rewritten, any legacy pre-shard log at path is fully
// migrated into the segments and removed; a crash before that point
// leaves the legacy file in place, and its stale duplicates are
// resolved on the next Open by replay order (legacy first, segments
// overwrite).
func (s *Store) Compact() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	errs := make([]error, len(s.segs))
	var wg sync.WaitGroup
	for i, seg := range s.segs {
		wg.Add(1)
		go func(i int, seg *segment) {
			defer wg.Done()
			errs[i] = seg.compact(segPath(s.path, i))
		}(i, seg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	s.legacyMu.Lock()
	defer s.legacyMu.Unlock()
	if s.legacy {
		if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: remove migrated legacy log: %w", err)
		}
		s.legacy = false
	}
	return nil
}

// Sync flushes pending batches and every segment to stable storage,
// and surfaces any latched append error.
func (s *Store) Sync() error {
	var first error
	for _, seg := range s.segs {
		if err := seg.sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close syncs and releases every segment. The Store must not be used
// after Close.
func (s *Store) Close() error {
	var first error
	for _, seg := range s.segs {
		if err := seg.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// sortKeys orders a shard's unit-test keys for a deterministic
// compacted segment.
func sortKeys(keys []Key) {
	sort.Slice(keys, func(i, j int) bool {
		if c := bytes.Compare(keys[i].Test[:], keys[j].Test[:]); c != 0 {
			return c < 0
		}
		return bytes.Compare(keys[i].Answer[:], keys[j].Answer[:]) < 0
	})
}
