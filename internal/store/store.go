// Package store is the persistent, content-addressed evaluation store:
// the second cache tier under engine.Engine.UnitTest. Where the
// engine's in-memory map dies with the process, the store is an
// append-only on-disk log of (unit-test-script digest, answer digest)
// → unit-test result records, so repeated campaigns across processes —
// and across CI runs via cache restore — hit disk instead of the
// simulated cluster.
//
// The log holds two record kinds sharing one frame format: unit-test
// results (the original kind, engine.CacheStore) and generation
// results (inference.GenStore — model responses keyed by the
// generation request's content address), so one store carries a
// campaign's full warm state: a re-campaign neither generates nor
// executes anything.
//
// # Sharded layout
//
// The store is partitioned into N key-range shards (N a power of two,
// persisted in the <path>.shards meta file so routing never changes
// for an existing store): a key's leading digest byte selects its
// shard, and each shard owns its own segment file <path>.sNN, its own
// group-commit pending buffer and committer, and its own index
// stripes. Concurrent Puts to different shards land on independent
// files with independent write batches instead of serializing on one
// committer; Open replays all segments in parallel (one goroutine and
// one reusable payload buffer per shard); Compact rewrites shards
// concurrently, and compacting shard k never blocks appends to the
// others.
//
// A legacy single-file log at <path> itself — the pre-shard layout —
// is transparently read through: Open replays it first (its records
// are the oldest, so segment records win conflicts), appends always go
// to the owning shard's segment, and the first successful Compact
// migrates every record into the sharded layout and removes the
// legacy file.
//
// # On-disk format
//
// Every file — legacy log and shard segments alike — is a sequence of
// length-prefixed, checksummed records, byte-identical to the
// pre-shard format:
//
//	[4-byte LE payload length][4-byte LE CRC-32C of payload][JSON payload]
//
// Writes are crash-safe by construction: a record torn by a crash or a
// truncated copy fails its length or checksum check, and Open drops
// everything from the first bad frame onward (that file's tail)
// instead of failing — a torn tail in shard k loses nothing in shards
// ≠ k. Each log is append-only — a re-recorded key simply appends a
// newer record, and the newest record per key wins on replay. Compact
// rewrites each shard to one record per key (newest wins) via an
// atomic rename.
//
// Concurrency: per-shard indexes are striped behind RWMutexes, so
// warm-store reads never contend with appends or each other. Appends
// group-commit per shard: writers encode frames outside any lock,
// enqueue into the shard's pending buffer, and one of them — the
// committer — drains the whole batch with a single write syscall,
// then releases every writer whose frames it carried. A Put still
// does not return until its frame is on disk (the durability contract
// tests rely on), but N concurrent Puts to one shard cost one syscall
// instead of N, and Puts to different shards batch and flush fully
// independently.
//
// # Out-of-core index
//
// The resident index holds no payloads: each stripe maps a key to an
// {owning log, offset, frame length, payload CRC} entry, so resident
// cost per record is ~100 bytes regardless of how large its output or
// response text is. Get/GetGen pread the frame on demand, re-verify
// its checksum, decode, and serve the result through a bounded
// sharded-LRU hot cache (WithHotCacheBytes, default 256 MiB), so a
// warm campaign's working set stays in-memory fast while RSS is
// bounded by index size + cache budget, not corpus size.
//
// Compact additionally writes each shard's index as a checksummed
// binary sidecar (<segment>.idx, see snapshot.go) tied to the
// segment's byte length; Open loads the sidecar when it validates and
// scans only the frames appended after it — restart cost is O(tail),
// not O(log). A missing, stale, truncated, or corrupt sidecar falls
// back to the full scan and produces byte-identical state.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"cloudeval/internal/inference"
	"cloudeval/internal/memo"
	"cloudeval/internal/unittest"
)

// Key content-addresses one evaluation, mirroring the engine's cache
// key: the digests of the unit-test script and the candidate answer.
type Key struct {
	Test   [sha256.Size]byte
	Answer [sha256.Size]byte
}

// Record is one persisted unit-test outcome.
type Record struct {
	Passed      bool
	Output      string
	ExitCode    int
	VirtualTime time.Duration
}

// frame is the JSON payload of one on-disk record. Kind selects the
// record type: "" (absent, the original format) is a unit-test
// result, "gen" a generation result. Logs written before the
// generation kind existed replay unchanged.
type frame struct {
	Kind string `json:"kind,omitempty"`

	// Unit-test fields.
	Test        string  `json:"test,omitempty"`   // hex sha256 of the unit-test script
	Answer      string  `json:"answer,omitempty"` // hex sha256 of the answer
	Passed      bool    `json:"passed,omitempty"`
	Output      string  `json:"output,omitempty"`
	ExitCode    int     `json:"exit_code,omitempty"`
	VirtualSecs float64 `json:"virtual_secs,omitempty"`

	// Generation fields.
	Gen              string `json:"gen,omitempty"` // hex generation key
	Text             string `json:"text,omitempty"`
	PromptTokens     int    `json:"prompt_tokens,omitempty"`
	CompletionTokens int    `json:"completion_tokens,omitempty"`
	LatencyNs        int64  `json:"latency_ns,omitempty"`
}

// keyFrame is the scan-time projection of frame: only the fields that
// feed the offset index. Replay decodes into this so json.Unmarshal
// skips the payload strings (Output, Text) entirely — a
// multi-gigabyte log replays without allocating or retaining a single
// payload.
type keyFrame struct {
	Kind   string `json:"kind"`
	Test   string `json:"test"`
	Answer string `json:"answer"`
	Gen    string `json:"gen"`
}

// genKind tags generation frames.
const genKind = "gen"

const frameHeaderSize = 8

// maxPayload rejects absurd length prefixes (a torn header read as a
// huge length must not allocate gigabytes before the CRC check).
const maxPayload = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// entry is one resident index entry: where a key's newest frame lives.
// n is the full frame length, header included; sum is the payload
// CRC-32C from the frame header, re-verified on every on-demand read
// and used to recognize identical re-puts without decoding anything.
type entry struct {
	src *logFile
	off int64
	n   uint32
	sum uint32
}

// Shard-count policy: a power of two sized like memo.Sharded's
// GOMAXPROCS scaling, but clamped tighter — every shard is an open
// file, and a store's worth of parallelism saturates well below a
// cache's. The count is fixed at creation and persisted in the meta
// file; an existing store always reopens with the count it was
// created with, so key→shard routing (and therefore which segment
// file owns a record) never changes under a different GOMAXPROCS.
const (
	minShards = 8
	maxShards = 64
)

// idxStripes is the per-shard index stripe count: 4 RWMutex stripes
// per shard × ≥8 shards keeps warm-read concurrency at or above the
// pre-shard store's 32 global stripes while letting each shard own
// its stripes outright.
const idxStripes = 4

type recStripe struct {
	mu sync.RWMutex
	m  map[Key]entry
}

type genStripe struct {
	mu sync.RWMutex
	m  map[inference.Key]entry
}

// Shard routing uses the leading digest bytes; striping within a
// shard uses the second bytes so the two subdivisions stay
// independent (a shard's keys spread across all of its stripes).
func recShardOf(k Key, mask int) int           { return int(k.Test[0]^k.Answer[0]) & mask }
func recStripeOf(k Key) int                    { return int(k.Test[1]^k.Answer[1]) & (idxStripes - 1) }
func genShardOf(k inference.Key, mask int) int { return int(k[0]) & mask }
func genStripeOf(k inference.Key) int          { return int(k[1]) & (idxStripes - 1) }

// lessKeys orders unit-test keys for a deterministic compacted
// segment.
func lessKeys(a, b Key) bool {
	if c := string(a.Test[:]); c != string(b.Test[:]) {
		return c < string(b.Test[:])
	}
	return string(a.Answer[:]) < string(b.Answer[:])
}

// hotKey addresses one decoded result in the hot cache; gen
// distinguishes the two key spaces (a generation key could otherwise
// collide with a record whose digests happened to match).
type hotKey struct {
	gen  bool
	a, b [sha256.Size]byte
}

// hotHash mixes digest bytes directly — the keys are already uniform
// SHA-256 output, so four bytes of each are a perfectly good shard
// selector.
func hotHash(k hotKey) uint32 {
	return binary.LittleEndian.Uint32(k.a[4:8]) ^ binary.LittleEndian.Uint32(k.b[8:12])
}

// DefaultHotCacheBytes is the hot cache's byte budget when Open is not
// given WithHotCacheBytes: large enough that a typical campaign's
// working set is fully resident, small enough to bound RSS on stores
// that have outgrown memory.
const DefaultHotCacheBytes int64 = 256 << 20

// Option configures Open.
type Option func(*config)

type config struct {
	cacheBytes int64
}

// WithHotCacheBytes caps the hot cache's resident decoded-frame budget
// at n bytes. Zero or negative effectively disables caching (every
// read goes to disk) — useful for benchmarks and for processes that
// only append.
func WithHotCacheBytes(n int64) Option {
	return func(c *config) {
		c.cacheBytes = n
	}
}

// OpenStats describes how the last Open rebuilt the index: how much
// came from index-snapshot sidecars versus frame-by-frame scanning,
// and how long the whole replay took.
type OpenStats struct {
	// SnapshotShards counts shards whose sidecar validated and was
	// used; SnapshotFrames is the index entries they supplied without
	// touching a frame.
	SnapshotShards int
	// SnapshotFrames and ScannedFrames partition the index entries by
	// provenance: supplied by a sidecar vs decoded from the log (the
	// post-snapshot tail, sidecar-less shards, and any legacy file).
	SnapshotFrames int
	ScannedFrames  int
	Duration       time.Duration
}

// Store is a persistent evaluation cache sharded across per-key-range
// segment files. It is safe for concurrent use and implements
// engine.CacheStore and inference.GenStore.
type Store struct {
	path string
	segs []*segment
	mask int

	// cache holds decoded Records/Responses under a byte budget; the
	// index itself holds only offsets. Values are Record or
	// inference.Response; cost is the source frame's byte length.
	cache *memo.Bounded[hotKey, any]

	openStats OpenStats

	// compactMu serializes Compact calls (each shard's compaction also
	// takes that shard's log lock; appends to other shards proceed).
	compactMu sync.Mutex
	// legacyMu guards legacy state: whether the pre-shard single-file
	// log at path still exists (and must be preserved until a full
	// Compact has migrated its records) and the open handle on it that
	// serves on-demand reads of legacy-resident records.
	legacyMu sync.Mutex
	legacy   bool
	legacyLF *logFile
}

// segPath names shard i's segment file.
func segPath(path string, i int) string { return fmt.Sprintf("%s.s%02d", path, i) }

// idxPath names shard i's index-snapshot sidecar.
func idxPath(path string, i int) string { return segPath(path, i) + ".idx" }

// metaPath names the shard-count meta file.
func metaPath(path string) string { return path + ".shards" }

// defaultShardCount picks the shard count for a new store: the
// smallest power of two at least twice GOMAXPROCS, clamped to
// [minShards, maxShards].
func defaultShardCount() int {
	n := 1
	for n < 2*runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	if n < minShards {
		n = minShards
	}
	if n > maxShards {
		n = maxShards
	}
	return n
}

// resolveShardCount determines the shard count for the store at path:
// the meta file if present, else inferred from existing segment files
// (a crash can lose the meta file but not the renamed segments), else
// the default for a fresh store. The resolved count is (re)written to
// the meta file atomically.
func resolveShardCount(path string) (int, error) {
	if data, err := os.ReadFile(metaPath(path)); err == nil {
		n, err := strconv.Atoi(strings.TrimSpace(string(data)))
		if err != nil || n < 1 || n > 1<<16 || n&(n-1) != 0 {
			return 0, fmt.Errorf("store: corrupt shard meta %s: %q", metaPath(path), strings.TrimSpace(string(data)))
		}
		return n, nil
	} else if !os.IsNotExist(err) {
		return 0, err
	}
	n := defaultShardCount()
	if inferred, ok, err := inferShardCount(path); err != nil {
		return 0, err
	} else if ok {
		n = inferred
	}
	if err := writeShardMeta(path, n); err != nil {
		return 0, err
	}
	return n, nil
}

// inferShardCount scans for existing segment files and returns the
// smallest power of two covering every index found.
func inferShardCount(path string) (int, bool, error) {
	dir := filepath.Dir(path)
	prefix := filepath.Base(path) + ".s"
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, err
	}
	maxIdx := -1
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || strings.HasSuffix(name, ".idx") {
			continue
		}
		idx, err := strconv.Atoi(name[len(prefix):])
		if err != nil || idx < 0 {
			continue
		}
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	if maxIdx < 0 {
		return 0, false, nil
	}
	n := 1
	for n <= maxIdx {
		n <<= 1
	}
	if n < minShards {
		n = minShards
	}
	return n, true, nil
}

// writeShardMeta records the shard count atomically (temp + rename),
// so a crash mid-write never leaves a torn meta file.
func writeShardMeta(path string, n int) error {
	tmp := metaPath(path) + ".tmp"
	if err := os.WriteFile(tmp, []byte(strconv.Itoa(n)+"\n"), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, metaPath(path)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Open reads (or creates) the sharded store rooted at path, rebuilding
// the offset index for every intact record: first the legacy
// single-file log at path itself if one exists (the pre-shard layout,
// read through transparently), then all shard segments in parallel. A
// shard whose index-snapshot sidecar validates loads its index
// directly and scans only the post-snapshot tail; anything wrong with
// a sidecar silently falls back to that shard's full scan. A truncated
// or corrupt tail in any file — the signature of a crash mid-append —
// is dropped and that file truncated back to its last intact record,
// not treated as fatal.
func Open(path string, opts ...Option) (*Store, error) {
	start := time.Now()
	cfg := config{cacheBytes: DefaultHotCacheBytes}
	for _, opt := range opts {
		opt(&cfg)
	}
	n, err := resolveShardCount(path)
	if err != nil {
		return nil, err
	}
	s := &Store{
		path:  path,
		mask:  n - 1,
		segs:  make([]*segment, n),
		cache: memo.NewBounded[hotKey, any](hotHash, cfg.cacheBytes),
	}
	for i := range s.segs {
		// O_APPEND: every flush is one write syscall that the kernel
		// positions at the true end of file, so even a second process
		// appending to the same segment (one writer per store is the
		// intended deployment, but fleets misconfigure) interleaves
		// whole batches rather than corrupting them mid-frame at a
		// stale offset.
		f, err := os.OpenFile(segPath(path, i), os.O_RDWR|os.O_APPEND|os.O_CREATE, 0o644)
		if err != nil {
			for j := 0; j < i; j++ {
				s.segs[j].lf.close()
			}
			return nil, err
		}
		s.segs[i] = newSegment(f, idxPath(path, i))
	}
	// Legacy pre-pass: replay the single-file log serially, routing
	// each record to its owning shard's index. It runs before the
	// parallel segment replay so segment records — always at least as
	// new, since appends only ever go to segments once the sharded
	// store exists — overwrite legacy ones on conflict. The handle
	// stays open: legacy-resident records are pread on demand like any
	// others, until Compact migrates them into the segments.
	if fi, err := os.Stat(path); err == nil && fi.Mode().IsRegular() {
		if err := s.replayLegacy(); err != nil {
			s.closeFiles()
			return nil, err
		}
		s.legacy = true
	}
	// Parallel replay: one goroutine per shard, each with its own
	// reusable payload buffer, each truncating its own torn tail.
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, seg := range s.segs {
		wg.Add(1)
		go func(i int, seg *segment) {
			defer wg.Done()
			errs[i] = seg.replay(s)
		}(i, seg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			s.closeFiles()
			return nil, err
		}
	}
	for _, seg := range s.segs {
		if seg.snapFrames > 0 {
			s.openStats.SnapshotShards++
		}
		s.openStats.SnapshotFrames += seg.snapFrames
		s.openStats.ScannedFrames += seg.scanFrames
	}
	s.openStats.Duration = time.Since(start)
	return s, nil
}

func (s *Store) closeFiles() {
	for _, seg := range s.segs {
		seg.lf.close()
	}
	if s.legacyLF != nil {
		s.legacyLF.close()
	}
}

// replayLegacy loads the pre-shard single-file log at s.path into the
// shard indexes and truncates its torn tail. The handle is kept open
// in s.legacyLF — the offset index points into it until the first
// full Compact migrates every record into the segments.
func (s *Store) replayLegacy() error {
	f, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	s.legacyLF = newLogFile(f)
	good, err := scanLog(f, 0, func(fr keyFrame, off int64, n, sum uint32) bool {
		if !s.load(s.legacyLF, fr, off, n, sum) {
			return false
		}
		s.openStats.ScannedFrames++
		return true
	})
	if err != nil {
		return err
	}
	if err := f.Truncate(good); err != nil {
		return fmt.Errorf("store: truncate legacy torn tail: %w", err)
	}
	return nil
}

// load routes one scanned frame's index entry into the owning shard's
// stripe, reporting false on a malformed key (treated like a corrupt
// frame: replay stops there). Stripe locks are taken because segment
// replay goroutines run concurrently and a misplaced record (a
// segment file holding a foreign key, e.g. hand-copied files) must
// still land in its owning shard's index, where Get will look for it.
func (s *Store) load(lf *logFile, fr keyFrame, off int64, n, sum uint32) bool {
	e := entry{src: lf, off: off, n: n, sum: sum}
	switch fr.Kind {
	case genKind:
		key, err := genKeyFromHex(fr.Gen)
		if err != nil {
			return false
		}
		s.loadGen(key, e)
	default:
		key, err := keyFromHex(fr.Test, fr.Answer)
		if err != nil {
			return false
		}
		s.loadRec(key, e)
	}
	return true
}

func (s *Store) loadRec(k Key, e entry) {
	st := &s.segs[recShardOf(k, s.mask)].recs[recStripeOf(k)]
	st.mu.Lock()
	st.m[k] = e
	st.mu.Unlock()
}

func (s *Store) loadGen(k inference.Key, e entry) {
	st := &s.segs[genShardOf(k, s.mask)].gens[genStripeOf(k)]
	st.mu.Lock()
	st.m[k] = e
	st.mu.Unlock()
}

func keyFromHex(test, answer string) (Key, error) {
	var k Key
	tb, err := hex.DecodeString(test)
	if err != nil || len(tb) != sha256.Size {
		return k, fmt.Errorf("store: bad test digest %q", test)
	}
	ab, err := hex.DecodeString(answer)
	if err != nil || len(ab) != sha256.Size {
		return k, fmt.Errorf("store: bad answer digest %q", answer)
	}
	copy(k.Test[:], tb)
	copy(k.Answer[:], ab)
	return k, nil
}

func genKeyFromHex(s string) (inference.Key, error) {
	var k inference.Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != sha256.Size {
		return k, fmt.Errorf("store: bad generation key %q", s)
	}
	copy(k[:], b)
	return k, nil
}

func encodeFrame(key Key, rec Record) ([]byte, error) {
	return framePayload(frame{
		Test:        hex.EncodeToString(key.Test[:]),
		Answer:      hex.EncodeToString(key.Answer[:]),
		Passed:      rec.Passed,
		Output:      rec.Output,
		ExitCode:    rec.ExitCode,
		VirtualSecs: rec.VirtualTime.Seconds(),
	})
}

func encodeGenFrame(key inference.Key, resp inference.Response) ([]byte, error) {
	return framePayload(frame{
		Kind:             genKind,
		Gen:              hex.EncodeToString(key[:]),
		Text:             resp.Text,
		PromptTokens:     resp.Usage.PromptTokens,
		CompletionTokens: resp.Usage.CompletionTokens,
		LatencyNs:        resp.Latency.Nanoseconds(),
	})
}

func framePayload(fr frame) ([]byte, error) {
	payload, err := json.Marshal(fr)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[frameHeaderSize:], payload)
	return buf, nil
}

// readFrame preads and decodes the frame an index entry points at,
// re-verifying the length prefix and payload checksum against the
// entry before trusting a byte of it.
func (s *Store) readFrame(e entry) (frame, error) {
	var fr frame
	buf := make([]byte, e.n)
	if err := e.src.pread(buf, e.off); err != nil {
		return fr, err
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != e.n-frameHeaderSize ||
		binary.LittleEndian.Uint32(buf[4:8]) != e.sum ||
		crc32.Checksum(buf[frameHeaderSize:], castagnoli) != e.sum {
		return fr, errCorruptFrame
	}
	if err := json.Unmarshal(buf[frameHeaderSize:], &fr); err != nil {
		return fr, err
	}
	return fr, nil
}

// getFrame resolves an index entry to its decoded frame, riding out
// the two read races: an entry pointing into a log whose handle
// compaction just swapped out (errLogClosed — re-read the refreshed
// entry and retry), and an entry installed at enqueue time whose
// group-commit batch has not hit the file yet (drain the shard once,
// then retry the pread).
func (s *Store) getFrame(seg *segment, e entry, lookup func() (entry, bool)) (frame, bool) {
	drained := false
	for {
		fr, err := s.readFrame(e)
		if err == nil {
			return fr, true
		}
		if errors.Is(err, errLogClosed) {
			e2, ok := lookup()
			if !ok || e2 == e {
				// The store is closed, or the key vanished: give up.
				return frame{}, false
			}
			e = e2
			continue
		}
		if !drained {
			// The frame may still be in the shard's pending batch
			// (entries become visible at enqueue, durable at flush).
			// Force the flush and try once more.
			seg.mu.Lock()
			seg.drainLocked()
			seg.mu.Unlock()
			drained = true
			continue
		}
		return frame{}, false
	}
}

// Get implements engine.CacheStore: the persisted result for
// (test, answer), if any. A hot-cache hit returns immediately; a miss
// preads the record's frame from its segment, verifies and decodes
// it, and installs it in the cache.
func (s *Store) Get(test, answer [sha256.Size]byte) (unittest.Result, bool) {
	key := Key{Test: test, Answer: answer}
	hk := hotKey{a: test, b: answer}
	if v, ok := s.cache.Get(hk); ok {
		rec := v.(Record)
		return unittest.Result{
			Passed:      rec.Passed,
			Output:      rec.Output,
			ExitCode:    rec.ExitCode,
			VirtualTime: rec.VirtualTime,
		}, true
	}
	seg := s.segs[recShardOf(key, s.mask)]
	st := &seg.recs[recStripeOf(key)]
	lookup := func() (entry, bool) {
		st.mu.RLock()
		e, ok := st.m[key]
		st.mu.RUnlock()
		return e, ok
	}
	e, ok := lookup()
	if !ok {
		return unittest.Result{}, false
	}
	fr, ok := s.getFrame(seg, e, lookup)
	if !ok {
		return unittest.Result{}, false
	}
	rec := Record{
		Passed:      fr.Passed,
		Output:      fr.Output,
		ExitCode:    fr.ExitCode,
		VirtualTime: time.Duration(fr.VirtualSecs * float64(time.Second)),
	}
	s.cache.Add(hk, rec, int64(e.n))
	return unittest.Result{
		Passed:      rec.Passed,
		Output:      rec.Output,
		ExitCode:    rec.ExitCode,
		VirtualTime: rec.VirtualTime,
	}, true
}

// Put implements engine.CacheStore: persist one executed result.
// Errored executions (res.Err != nil) are never recorded — like the
// engine's in-memory tier, a transient outage must not be frozen into
// the cache. An identical re-record is a no-op so warm campaigns don't
// grow the log: JSON encoding is deterministic, so matching frame
// length + payload CRC against the resident entry recognizes the
// duplicate without reading a byte. Append failures latch into
// Err/Sync/Close rather than failing the evaluation that produced the
// result. Put returns with the record on disk (its shard's
// group-commit batch flushed).
func (s *Store) Put(test, answer [sha256.Size]byte, res unittest.Result) {
	if res.Err != nil {
		return
	}
	key := Key{Test: test, Answer: answer}
	rec := Record{
		Passed:      res.Passed,
		Output:      res.Output,
		ExitCode:    res.ExitCode,
		VirtualTime: res.VirtualTime,
	}
	buf, err := encodeFrame(key, rec)
	seg := s.segs[recShardOf(key, s.mask)]
	st := &seg.recs[recStripeOf(key)]
	if err == nil {
		sum := binary.LittleEndian.Uint32(buf[4:8])
		st.mu.RLock()
		old, ok := st.m[key]
		st.mu.RUnlock()
		if ok && old.n == uint32(len(buf)) && old.sum == sum {
			return
		}
		// The write path deliberately skips the hot cache: a campaign's
		// re-reads of its own results hit the engine's memo tier, and a
		// raw read-after-write is already correct through the pending
		// batch (install-at-enqueue + drain retry) — caching here would
		// only add allocations to every append.
		if seg.appendWait(buf, nil, func(lf *logFile, off int64) {
			st.mu.Lock()
			st.m[key] = entry{src: lf, off: off, n: uint32(len(buf)), sum: sum}
			st.mu.Unlock()
		}) {
			seg.appended.Add(1)
		}
		return
	}
	seg.appendWait(nil, err, nil)
}

// GetGen implements inference.GenStore: the persisted generation for
// the given request key, if any — hot cache first, pread on miss.
func (s *Store) GetGen(key inference.Key) (inference.Response, bool) {
	hk := hotKey{gen: true, a: key}
	if v, ok := s.cache.Get(hk); ok {
		return v.(inference.Response), true
	}
	seg := s.segs[genShardOf(key, s.mask)]
	st := &seg.gens[genStripeOf(key)]
	lookup := func() (entry, bool) {
		st.mu.RLock()
		e, ok := st.m[key]
		st.mu.RUnlock()
		return e, ok
	}
	e, ok := lookup()
	if !ok {
		return inference.Response{}, false
	}
	fr, ok := s.getFrame(seg, e, lookup)
	if !ok {
		return inference.Response{}, false
	}
	resp := inference.Response{
		Text: fr.Text,
		Usage: inference.Usage{
			PromptTokens:     fr.PromptTokens,
			CompletionTokens: fr.CompletionTokens,
		},
		Latency: time.Duration(fr.LatencyNs),
	}
	s.cache.Add(hk, resp, int64(e.n))
	return resp, true
}

// PutGen implements inference.GenStore: persist one live generation.
// An identical re-record is a no-op (recognized by frame length +
// CRC, as in Put); append failures latch into Err/Sync/Close, never
// failing the generation that produced the response — the same
// advisory contract as Put.
func (s *Store) PutGen(key inference.Key, resp inference.Response) {
	buf, err := encodeGenFrame(key, resp)
	seg := s.segs[genShardOf(key, s.mask)]
	st := &seg.gens[genStripeOf(key)]
	if err == nil {
		sum := binary.LittleEndian.Uint32(buf[4:8])
		st.mu.RLock()
		old, ok := st.m[key]
		st.mu.RUnlock()
		if ok && old.n == uint32(len(buf)) && old.sum == sum {
			return
		}
		// No hot-cache insert on the write path — see Put.
		if seg.appendWait(buf, nil, func(lf *logFile, off int64) {
			st.mu.Lock()
			st.m[key] = entry{src: lf, off: off, n: uint32(len(buf)), sum: sum}
			st.mu.Unlock()
		}) {
			seg.appended.Add(1)
		}
		return
	}
	seg.appendWait(nil, err, nil)
}

// Len reports how many distinct keys the store holds.
func (s *Store) Len() int {
	n := 0
	for _, seg := range s.segs {
		n += seg.lenRecs()
	}
	return n
}

// GenLen reports how many distinct generations the store holds.
func (s *Store) GenLen() int {
	n := 0
	for _, seg := range s.segs {
		n += seg.lenGens()
	}
	return n
}

// Appended reports how many records this handle has appended since
// Open, across all shards — the store-side mirror of the engine's
// Executed counter.
func (s *Store) Appended() int64 {
	var n int64
	for _, seg := range s.segs {
		n += seg.appended.Load()
	}
	return n
}

// Flushes reports how many group-commit batches this handle has
// written since Open, across all shards. Appended()/Flushes() is the
// average batch size: 1 under serial traffic, climbing with per-shard
// append concurrency as each committer drains more frames per
// syscall.
func (s *Store) Flushes() int64 {
	var n int64
	for _, seg := range s.segs {
		n += seg.flushes.Load()
	}
	return n
}

// Shards reports the store's shard count.
func (s *Store) Shards() int { return len(s.segs) }

// CacheStats snapshots the hot cache: budget, resident bytes, entry
// count, and hit/miss counters since Open.
func (s *Store) CacheStats() memo.BoundedStats { return s.cache.Stats() }

// LastOpen reports how the most recent Open rebuilt the index —
// snapshot-supplied vs scanned frames, and wall time.
func (s *Store) LastOpen() OpenStats { return s.openStats }

// Resident per-entry index cost estimates: key + entry struct + map
// bucket overhead. Estimates, not measurements — the stats surface
// reports magnitude, and the invariant that matters (payloads are not
// resident) is structural.
const (
	residentPerRec = 128
	residentPerGen = 96
)

// ResidentBytes estimates the store's resident memory: the offset
// index (which scales with key count, never payload size) plus the
// hot cache's current byte cost.
func (s *Store) ResidentBytes() int64 {
	return int64(s.Len())*residentPerRec + int64(s.GenLen())*residentPerGen + s.cache.Bytes()
}

// ShardStat is one shard's observable state: index sizes plus this
// handle's append/flush counters (their ratio is the shard's
// group-commit batching factor).
type ShardStat struct {
	Records     int   `json:"records"`
	Generations int   `json:"generations"`
	Appended    int64 `json:"appended"`
	Flushes     int64 `json:"flushes"`
}

// ShardStats snapshots every shard, in shard order. The snapshot is
// per-shard consistent, not cross-shard atomic — it is a monitoring
// surface, not a transaction.
func (s *Store) ShardStats() []ShardStat {
	out := make([]ShardStat, len(s.segs))
	for i, seg := range s.segs {
		out[i] = ShardStat{
			Records:     seg.lenRecs(),
			Generations: seg.lenGens(),
			Appended:    seg.appended.Load(),
			Flushes:     seg.flushes.Load(),
		}
	}
	return out
}

// Err reports the first append failure on any shard, if any.
func (s *Store) Err() error {
	for _, seg := range s.segs {
		if err := seg.err(); err != nil {
			return err
		}
	}
	return nil
}

// Compact rewrites every shard to exactly one record per key — the
// newest — shedding superseded appends, and leaves each non-empty
// shard with a fresh index-snapshot sidecar for the next Open's fast
// path. Shards compact concurrently and independently: each rewrite
// goes to a temp file that atomically renames over that shard's
// segment, holding only that shard's log lock, so appends to other
// shards proceed throughout and a crash mid-compaction of shard k
// loses nothing — neither in shard k (the rename is atomic; the old
// segment stays until it succeeds, and the sidecar is invalidated
// before the swap so it can never describe bytes that aren't there)
// nor in shards ≠ k (their files are untouched). When every shard has
// been durably rewritten, any legacy pre-shard log at path is fully
// migrated into the segments (its frames raw-copied by the rewrites)
// and removed; a crash before that point leaves the legacy file in
// place, and its stale duplicates are resolved on the next Open by
// replay order (legacy first, segments overwrite).
func (s *Store) Compact() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	errs := make([]error, len(s.segs))
	var wg sync.WaitGroup
	for i, seg := range s.segs {
		wg.Add(1)
		go func(i int, seg *segment) {
			defer wg.Done()
			errs[i] = seg.compact(segPath(s.path, i))
		}(i, seg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	s.legacyMu.Lock()
	defer s.legacyMu.Unlock()
	if s.legacy {
		// Every shard rewrite succeeded, so every record that lived in
		// the legacy file now has a byte-identical copy in a segment
		// and no index entry points at the legacy handle anymore.
		if s.legacyLF != nil {
			s.legacyLF.close()
			s.legacyLF = nil
		}
		if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: remove migrated legacy log: %w", err)
		}
		s.legacy = false
	}
	return nil
}

// Sync flushes pending batches and every segment to stable storage,
// and surfaces any latched append error.
func (s *Store) Sync() error {
	var first error
	for _, seg := range s.segs {
		if err := seg.sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close syncs and releases every segment (and the legacy log handle,
// if one is still being read through). The Store must not be used
// after Close.
func (s *Store) Close() error {
	var first error
	for _, seg := range s.segs {
		if err := seg.close(); err != nil && first == nil {
			first = err
		}
	}
	s.legacyMu.Lock()
	if s.legacyLF != nil {
		if err := s.legacyLF.close(); err != nil && first == nil {
			first = err
		}
		s.legacyLF = nil
	}
	s.legacyMu.Unlock()
	return first
}
