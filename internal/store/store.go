// Package store is the persistent, content-addressed evaluation store:
// the second cache tier under engine.Engine.UnitTest. Where the
// engine's in-memory map dies with the process, the store is an
// append-only on-disk log of (unit-test-script digest, answer digest)
// → unit-test result records, so repeated campaigns across processes —
// and across CI runs via cache restore — hit disk instead of the
// simulated cluster.
//
// The log holds two record kinds sharing one frame format: unit-test
// results (the original kind, engine.CacheStore) and generation
// results (inference.GenStore — model responses keyed by the
// generation request's content address), so one store file carries a
// campaign's full warm state: a re-campaign neither generates nor
// executes anything.
//
// On-disk format: a sequence of length-prefixed, checksummed records —
//
//	[4-byte LE payload length][4-byte LE CRC-32C of payload][JSON payload]
//
// Writes are crash-safe by construction: a record torn by a crash or a
// truncated copy fails its length or checksum check, and Open drops
// everything from the first bad frame onward (the log tail) instead of
// failing. The log is append-only — a re-recorded key simply appends a
// newer record, and the newest record per key wins on replay. Compact
// rewrites the log to one record per key (newest wins) via an atomic
// rename.
//
// Concurrency: the index is sharded behind RWMutexes, so warm-store
// reads never contend with appends or each other. Appends group-commit:
// concurrent writers enqueue encoded frames into a shared pending
// buffer and one of them — the committer — drains the whole batch with
// a single write syscall, then releases every writer whose frames it
// carried. A Put still does not return until its frame is on disk (the
// durability contract tests rely on), but N concurrent Puts cost one
// syscall instead of N. The frame bytes are unchanged — a multi-frame
// batch is byte-identical to the same frames written one at a time, so
// logs written before group commit replay unchanged and vice versa.
//
// The full index (including result payloads; outputs are bounded by
// the corpus) is held in memory, so Get never touches disk after Open.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cloudeval/internal/inference"
	"cloudeval/internal/unittest"
)

// Key content-addresses one evaluation, mirroring the engine's cache
// key: the digests of the unit-test script and the candidate answer.
type Key struct {
	Test   [sha256.Size]byte
	Answer [sha256.Size]byte
}

// Record is one persisted unit-test outcome.
type Record struct {
	Passed      bool
	Output      string
	ExitCode    int
	VirtualTime time.Duration
}

// frame is the JSON payload of one on-disk record. Kind selects the
// record type: "" (absent, the original format) is a unit-test
// result, "gen" a generation result. Logs written before the
// generation kind existed replay unchanged.
type frame struct {
	Kind string `json:"kind,omitempty"`

	// Unit-test fields.
	Test        string  `json:"test,omitempty"`   // hex sha256 of the unit-test script
	Answer      string  `json:"answer,omitempty"` // hex sha256 of the answer
	Passed      bool    `json:"passed,omitempty"`
	Output      string  `json:"output,omitempty"`
	ExitCode    int     `json:"exit_code,omitempty"`
	VirtualSecs float64 `json:"virtual_secs,omitempty"`

	// Generation fields.
	Gen              string `json:"gen,omitempty"` // hex generation key
	Text             string `json:"text,omitempty"`
	PromptTokens     int    `json:"prompt_tokens,omitempty"`
	CompletionTokens int    `json:"completion_tokens,omitempty"`
	LatencyNs        int64  `json:"latency_ns,omitempty"`
}

// genKind tags generation frames.
const genKind = "gen"

const frameHeaderSize = 8

// maxPayload rejects absurd length prefixes (a torn header read as a
// huge length must not allocate gigabytes before the CRC check).
const maxPayload = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// idxShards is the index shard count. 32 write-locked stripes keep
// shard collisions rare at fleet concurrency while costing ~one cache
// line of mutexes; digest-prefix hashing spreads keys uniformly.
const idxShards = 32

type recShard struct {
	mu sync.RWMutex
	m  map[Key]Record
}

type genShard struct {
	mu sync.RWMutex
	m  map[inference.Key]inference.Response
}

func recShardOf(k Key) int           { return int(k.Test[0]^k.Answer[0]) & (idxShards - 1) }
func genShardOf(k inference.Key) int { return int(k[0]) & (idxShards - 1) }

// Store is a persistent evaluation cache. It is safe for concurrent
// use and implements engine.CacheStore and inference.GenStore.
type Store struct {
	path string

	recs [idxShards]recShard
	gens [idxShards]genShard

	appended atomic.Int64
	flushes  atomic.Int64

	// mu guards the log half: the file handle, the group-commit
	// pending buffer and its batch/flush bookkeeping, and appendErr.
	// Index reads and writes never take it.
	mu      sync.Mutex
	flushed sync.Cond // signaled whenever flushedBatch advances
	f       *os.File
	// pending accumulates encoded frames for the batch curBatch;
	// flushedBatch is the highest batch durably written. A writer's
	// frames are on disk exactly when flushedBatch has reached the
	// batch it enqueued into.
	pending      []byte
	curBatch     uint64
	flushedBatch uint64
	flushing     bool
	// appendErr latches the first failed append so a sick disk surfaces
	// on Sync/Close instead of being silently swallowed by the cache
	// interface.
	appendErr error
}

// Open reads (or creates) the log at path, replaying every intact
// record into the index. A truncated or corrupt tail — the signature
// of a crash mid-append — is dropped and the file truncated back to
// the last intact record, not treated as fatal.
func Open(path string) (*Store, error) {
	// O_APPEND: every flush is one write syscall that the kernel
	// positions at the true end of file, so even a second process
	// appending to the same log (one writer per store is the intended
	// deployment, but fleets misconfigure) interleaves whole batches
	// rather than corrupting them mid-frame at a stale offset.
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{f: f, path: path, curBatch: 1}
	s.flushed.L = &s.mu
	for i := range s.recs {
		s.recs[i].m = make(map[Key]Record)
	}
	for i := range s.gens {
		s.gens[i].m = make(map[inference.Key]inference.Response)
	}
	good, err := s.replay()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: truncate torn tail: %w", err)
	}
	return s, nil
}

// replay scans the log from the start, loading intact records and
// returning the offset of the first bad (or missing) frame. One
// growable payload buffer is reused across frames — json.Unmarshal
// copies what it keeps, and a warm daemon start on a large log should
// not churn the allocator once per record.
func (s *Store) replay() (int64, error) {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	var off int64
	hdr := make([]byte, frameHeaderSize)
	var payload []byte
	for {
		if _, err := io.ReadFull(s.f, hdr); err != nil {
			// Clean EOF or a torn header: the log ends here.
			return off, nil
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxPayload {
			return off, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(s.f, payload); err != nil {
			return off, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return off, nil // corrupt frame; drop it and everything after
		}
		var fr frame
		if err := json.Unmarshal(payload, &fr); err != nil {
			return off, nil
		}
		switch fr.Kind {
		case genKind:
			key, err := genKeyFromHex(fr.Gen)
			if err != nil {
				return off, nil
			}
			s.gens[genShardOf(key)].m[key] = inference.Response{
				Text: fr.Text,
				Usage: inference.Usage{
					PromptTokens:     fr.PromptTokens,
					CompletionTokens: fr.CompletionTokens,
				},
				Latency: time.Duration(fr.LatencyNs),
			}
		default:
			key, err := keyFromHex(fr.Test, fr.Answer)
			if err != nil {
				return off, nil
			}
			s.recs[recShardOf(key)].m[key] = Record{
				Passed:      fr.Passed,
				Output:      fr.Output,
				ExitCode:    fr.ExitCode,
				VirtualTime: time.Duration(fr.VirtualSecs * float64(time.Second)),
			}
		}
		off += frameHeaderSize + int64(n)
	}
}

func keyFromHex(test, answer string) (Key, error) {
	var k Key
	tb, err := hex.DecodeString(test)
	if err != nil || len(tb) != sha256.Size {
		return k, fmt.Errorf("store: bad test digest %q", test)
	}
	ab, err := hex.DecodeString(answer)
	if err != nil || len(ab) != sha256.Size {
		return k, fmt.Errorf("store: bad answer digest %q", answer)
	}
	copy(k.Test[:], tb)
	copy(k.Answer[:], ab)
	return k, nil
}

func genKeyFromHex(s string) (inference.Key, error) {
	var k inference.Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != sha256.Size {
		return k, fmt.Errorf("store: bad generation key %q", s)
	}
	copy(k[:], b)
	return k, nil
}

func encodeFrame(key Key, rec Record) ([]byte, error) {
	return framePayload(frame{
		Test:        hex.EncodeToString(key.Test[:]),
		Answer:      hex.EncodeToString(key.Answer[:]),
		Passed:      rec.Passed,
		Output:      rec.Output,
		ExitCode:    rec.ExitCode,
		VirtualSecs: rec.VirtualTime.Seconds(),
	})
}

func encodeGenFrame(key inference.Key, resp inference.Response) ([]byte, error) {
	return framePayload(frame{
		Kind:             genKind,
		Gen:              hex.EncodeToString(key[:]),
		Text:             resp.Text,
		PromptTokens:     resp.Usage.PromptTokens,
		CompletionTokens: resp.Usage.CompletionTokens,
		LatencyNs:        resp.Latency.Nanoseconds(),
	})
}

func framePayload(fr frame) ([]byte, error) {
	payload, err := json.Marshal(fr)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[frameHeaderSize:], payload)
	return buf, nil
}

// Get implements engine.CacheStore: the persisted result for
// (test, answer), if any.
func (s *Store) Get(test, answer [sha256.Size]byte) (unittest.Result, bool) {
	key := Key{Test: test, Answer: answer}
	sh := &s.recs[recShardOf(key)]
	sh.mu.RLock()
	rec, ok := sh.m[key]
	sh.mu.RUnlock()
	if !ok {
		return unittest.Result{}, false
	}
	return unittest.Result{
		Passed:      rec.Passed,
		Output:      rec.Output,
		ExitCode:    rec.ExitCode,
		VirtualTime: rec.VirtualTime,
	}, true
}

// Put implements engine.CacheStore: persist one executed result.
// Errored executions (res.Err != nil) are never recorded — like the
// engine's in-memory tier, a transient outage must not be frozen into
// the cache. An identical re-record is a no-op so warm campaigns don't
// grow the log. Append failures latch into Err/Sync/Close rather than
// failing the evaluation that produced the result. Put returns with
// the record on disk (its group-commit batch flushed).
func (s *Store) Put(test, answer [sha256.Size]byte, res unittest.Result) {
	if res.Err != nil {
		return
	}
	key := Key{Test: test, Answer: answer}
	rec := Record{
		Passed:      res.Passed,
		Output:      res.Output,
		ExitCode:    res.ExitCode,
		VirtualTime: res.VirtualTime,
	}
	sh := &s.recs[recShardOf(key)]
	sh.mu.Lock()
	if old, ok := sh.m[key]; ok && old == rec {
		sh.mu.Unlock()
		return
	}
	sh.m[key] = rec
	sh.mu.Unlock()
	buf, err := encodeFrame(key, rec)
	if s.appendWait(buf, err) {
		s.appended.Add(1)
	}
}

// appendWait enqueues one encoded frame into the pending group-commit
// batch and blocks until that batch is on disk, reporting whether the
// frame durably landed. The first writer to find no flush in progress
// becomes the committer: it drains the whole pending buffer — its own
// frame plus everything concurrent writers enqueued behind it — in a
// single write syscall, then releases every writer it carried.
// Writers arriving mid-flush accumulate the next batch; one of them
// commits it when the in-flight flush completes. Frame encoding
// happens in the callers, outside the lock.
func (s *Store) appendWait(buf []byte, encErr error) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.appendErr != nil {
		// The log is broken (failed append or a lost post-compaction
		// reopen): keep serving the in-memory index, but don't pretend
		// further appends persist.
		return false
	}
	if encErr != nil {
		s.appendErr = encErr
		return false
	}
	s.pending = append(s.pending, buf...)
	myBatch := s.curBatch
	for {
		if s.flushedBatch >= myBatch {
			return s.appendErr == nil
		}
		if !s.flushing {
			s.flushBatchLocked()
			continue
		}
		s.flushed.Wait()
	}
}

// flushBatchLocked writes the whole pending buffer as one syscall and
// advances flushedBatch past every frame it carried. Callers hold
// s.mu; the lock is dropped for the write itself so concurrent
// writers keep enqueueing the next batch.
func (s *Store) flushBatchLocked() {
	batch := s.curBatch
	buf := s.pending
	s.pending = nil
	s.curBatch++
	s.flushing = true
	s.mu.Unlock()
	// One write syscall per batch: O_APPEND places it atomically at
	// the end of file, and each frame's checksum still catches a tear
	// inside the batch on the next Open.
	_, werr := s.f.Write(buf)
	s.mu.Lock()
	s.flushing = false
	s.flushedBatch = batch
	s.flushes.Add(1)
	if werr != nil && s.appendErr == nil {
		s.appendErr = fmt.Errorf("store: append: %w", werr)
	}
	s.flushed.Broadcast()
}

// drainLocked flushes until no batch is pending or in flight. Callers
// hold s.mu.
func (s *Store) drainLocked() {
	for s.flushing || len(s.pending) > 0 {
		if !s.flushing {
			s.flushBatchLocked()
			continue
		}
		s.flushed.Wait()
	}
}

// GetGen implements inference.GenStore: the persisted generation for
// the given request key, if any.
func (s *Store) GetGen(key inference.Key) (inference.Response, bool) {
	sh := &s.gens[genShardOf(key)]
	sh.mu.RLock()
	resp, ok := sh.m[key]
	sh.mu.RUnlock()
	return resp, ok
}

// PutGen implements inference.GenStore: persist one live generation.
// An identical re-record is a no-op; append failures latch into
// Err/Sync/Close, never failing the generation that produced the
// response — the same advisory contract as Put.
func (s *Store) PutGen(key inference.Key, resp inference.Response) {
	sh := &s.gens[genShardOf(key)]
	sh.mu.Lock()
	if old, ok := sh.m[key]; ok && old == resp {
		sh.mu.Unlock()
		return
	}
	sh.m[key] = resp
	sh.mu.Unlock()
	buf, err := encodeGenFrame(key, resp)
	if s.appendWait(buf, err) {
		s.appended.Add(1)
	}
}

// GenLen reports how many distinct generations the store holds.
func (s *Store) GenLen() int {
	n := 0
	for i := range s.gens {
		sh := &s.gens[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Len reports how many distinct keys the store holds.
func (s *Store) Len() int {
	n := 0
	for i := range s.recs {
		sh := &s.recs[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Appended reports how many records this handle has appended since
// Open — the store-side mirror of the engine's Executed counter.
func (s *Store) Appended() int64 { return s.appended.Load() }

// Flushes reports how many group-commit batches this handle has
// written since Open. Appended()/Flushes() is the average batch size:
// 1 under serial traffic, climbing with append concurrency as the
// committer drains more frames per syscall.
func (s *Store) Flushes() int64 { return s.flushes.Load() }

// Err reports the first append failure, if any.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendErr
}

// Compact rewrites the log to exactly one record per key — the newest
// — shedding superseded appends. The rewrite goes to a temp file that
// atomically renames over the log, so a crash mid-compaction leaves
// the old intact log in place. Holding the log lock throughout keeps
// concurrent appends queued in pending until the new handle is in
// place; an index entry added after the snapshot re-appends its frame
// to the compacted log, so nothing is lost either side of the rename.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drainLocked()

	// Snapshot the index. Shard read-locks nest inside s.mu here;
	// writers never hold a shard lock while acquiring s.mu, so the
	// order cannot invert.
	index := make(map[Key]Record)
	for i := range s.recs {
		sh := &s.recs[i]
		sh.mu.RLock()
		for k, r := range sh.m {
			index[k] = r
		}
		sh.mu.RUnlock()
	}
	gens := make(map[inference.Key]inference.Response)
	for i := range s.gens {
		sh := &s.gens[i]
		sh.mu.RLock()
		for k, r := range sh.m {
			gens[k] = r
		}
		sh.mu.RUnlock()
	}

	keys := make([]Key, 0, len(index))
	for k := range index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if c := bytes.Compare(keys[i].Test[:], keys[j].Test[:]); c != 0 {
			return c < 0
		}
		return bytes.Compare(keys[i].Answer[:], keys[j].Answer[:]) < 0
	})

	genKeys := make([]inference.Key, 0, len(gens))
	for k := range gens {
		genKeys = append(genKeys, k)
	}
	sort.Slice(genKeys, func(i, j int) bool {
		return bytes.Compare(genKeys[i][:], genKeys[j][:]) < 0
	})

	tmpPath := s.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	for _, k := range keys {
		buf, err := encodeFrame(k, index[k])
		if err != nil {
			return fail(err)
		}
		if _, err := tmp.Write(buf); err != nil {
			return fail(err)
		}
	}
	for _, k := range genKeys {
		buf, err := encodeGenFrame(k, gens[k])
		if err != nil {
			return fail(err)
		}
		if _, err := tmp.Write(buf); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		os.Remove(tmpPath)
		return err
	}
	// Swap the handle to the compacted log. If the reopen fails, the old
	// handle now points at the unlinked pre-compaction inode — latch the
	// error so appends stop being trusted and Sync/Close surface it,
	// instead of silently persisting into an orphan.
	f, err := os.OpenFile(s.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		if s.appendErr == nil {
			s.appendErr = fmt.Errorf("store: reopen after compaction: %w", err)
		}
		return err
	}
	s.f.Close()
	s.f = f
	return nil
}

// Sync flushes pending batches and the log to stable storage, and
// surfaces any latched append error.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drainLocked()
	if s.appendErr != nil {
		return s.appendErr
	}
	return s.f.Sync()
}

// Close syncs and releases the log. The Store must not be used after
// Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drainLocked()
	syncErr := s.f.Sync()
	closeErr := s.f.Close()
	if s.appendErr != nil {
		return s.appendErr
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
