// Package store is the persistent, content-addressed evaluation store:
// the second cache tier under engine.Engine.UnitTest. Where the
// engine's in-memory map dies with the process, the store is an
// append-only on-disk log of (unit-test-script digest, answer digest)
// → unit-test result records, so repeated campaigns across processes —
// and across CI runs via cache restore — hit disk instead of the
// simulated cluster.
//
// The log holds two record kinds sharing one frame format: unit-test
// results (the original kind, engine.CacheStore) and generation
// results (inference.GenStore — model responses keyed by the
// generation request's content address), so one store file carries a
// campaign's full warm state: a re-campaign neither generates nor
// executes anything.
//
// On-disk format: a sequence of length-prefixed, checksummed records —
//
//	[4-byte LE payload length][4-byte LE CRC-32C of payload][JSON payload]
//
// Writes are crash-safe by construction: a record torn by a crash or a
// truncated copy fails its length or checksum check, and Open drops
// everything from the first bad frame onward (the log tail) instead of
// failing. The log is append-only — a re-recorded key simply appends a
// newer record, and the newest record per key wins on replay. Compact
// rewrites the log to one record per key (newest wins) via an atomic
// rename.
//
// The full index (including result payloads; outputs are bounded by
// the corpus) is held in memory, so Get never touches disk after Open.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"cloudeval/internal/inference"
	"cloudeval/internal/unittest"
)

// Key content-addresses one evaluation, mirroring the engine's cache
// key: the digests of the unit-test script and the candidate answer.
type Key struct {
	Test   [sha256.Size]byte
	Answer [sha256.Size]byte
}

// Record is one persisted unit-test outcome.
type Record struct {
	Passed      bool
	Output      string
	ExitCode    int
	VirtualTime time.Duration
}

// frame is the JSON payload of one on-disk record. Kind selects the
// record type: "" (absent, the original format) is a unit-test
// result, "gen" a generation result. Logs written before the
// generation kind existed replay unchanged.
type frame struct {
	Kind string `json:"kind,omitempty"`

	// Unit-test fields.
	Test        string  `json:"test,omitempty"`   // hex sha256 of the unit-test script
	Answer      string  `json:"answer,omitempty"` // hex sha256 of the answer
	Passed      bool    `json:"passed,omitempty"`
	Output      string  `json:"output,omitempty"`
	ExitCode    int     `json:"exit_code,omitempty"`
	VirtualSecs float64 `json:"virtual_secs,omitempty"`

	// Generation fields.
	Gen              string `json:"gen,omitempty"` // hex generation key
	Text             string `json:"text,omitempty"`
	PromptTokens     int    `json:"prompt_tokens,omitempty"`
	CompletionTokens int    `json:"completion_tokens,omitempty"`
	LatencyNs        int64  `json:"latency_ns,omitempty"`
}

// genKind tags generation frames.
const genKind = "gen"

const frameHeaderSize = 8

// maxPayload rejects absurd length prefixes (a torn header read as a
// huge length must not allocate gigabytes before the CRC check).
const maxPayload = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Store is a persistent evaluation cache. It is safe for concurrent
// use and implements engine.CacheStore.
type Store struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	index map[Key]Record
	gens  map[inference.Key]inference.Response
	// appendErr latches the first failed append so a sick disk surfaces
	// on Sync/Close instead of being silently swallowed by the cache
	// interface.
	appendErr error
	appended  int64
}

// Open reads (or creates) the log at path, replaying every intact
// record into the index. A truncated or corrupt tail — the signature
// of a crash mid-append — is dropped and the file truncated back to
// the last intact record, not treated as fatal.
func Open(path string) (*Store, error) {
	// O_APPEND: every frame is one write syscall that the kernel
	// positions at the true end of file, so even a second process
	// appending to the same log (one writer per store is the intended
	// deployment, but fleets misconfigure) interleaves whole frames
	// rather than corrupting them mid-frame at a stale offset.
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{
		f:     f,
		path:  path,
		index: make(map[Key]Record),
		gens:  make(map[inference.Key]inference.Response),
	}
	good, err := s.replay()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: truncate torn tail: %w", err)
	}
	return s, nil
}

// replay scans the log from the start, loading intact records and
// returning the offset of the first bad (or missing) frame.
func (s *Store) replay() (int64, error) {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	var off int64
	hdr := make([]byte, frameHeaderSize)
	for {
		if _, err := io.ReadFull(s.f, hdr); err != nil {
			// Clean EOF or a torn header: the log ends here.
			return off, nil
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxPayload {
			return off, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(s.f, payload); err != nil {
			return off, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return off, nil // corrupt frame; drop it and everything after
		}
		var fr frame
		if err := json.Unmarshal(payload, &fr); err != nil {
			return off, nil
		}
		switch fr.Kind {
		case genKind:
			key, err := genKeyFromHex(fr.Gen)
			if err != nil {
				return off, nil
			}
			s.gens[key] = inference.Response{
				Text: fr.Text,
				Usage: inference.Usage{
					PromptTokens:     fr.PromptTokens,
					CompletionTokens: fr.CompletionTokens,
				},
				Latency: time.Duration(fr.LatencyNs),
			}
		default:
			key, err := keyFromHex(fr.Test, fr.Answer)
			if err != nil {
				return off, nil
			}
			s.index[key] = Record{
				Passed:      fr.Passed,
				Output:      fr.Output,
				ExitCode:    fr.ExitCode,
				VirtualTime: time.Duration(fr.VirtualSecs * float64(time.Second)),
			}
		}
		off += frameHeaderSize + int64(n)
	}
}

func keyFromHex(test, answer string) (Key, error) {
	var k Key
	tb, err := hex.DecodeString(test)
	if err != nil || len(tb) != sha256.Size {
		return k, fmt.Errorf("store: bad test digest %q", test)
	}
	ab, err := hex.DecodeString(answer)
	if err != nil || len(ab) != sha256.Size {
		return k, fmt.Errorf("store: bad answer digest %q", answer)
	}
	copy(k.Test[:], tb)
	copy(k.Answer[:], ab)
	return k, nil
}

func genKeyFromHex(s string) (inference.Key, error) {
	var k inference.Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != sha256.Size {
		return k, fmt.Errorf("store: bad generation key %q", s)
	}
	copy(k[:], b)
	return k, nil
}

func encodeFrame(key Key, rec Record) ([]byte, error) {
	return framePayload(frame{
		Test:        hex.EncodeToString(key.Test[:]),
		Answer:      hex.EncodeToString(key.Answer[:]),
		Passed:      rec.Passed,
		Output:      rec.Output,
		ExitCode:    rec.ExitCode,
		VirtualSecs: rec.VirtualTime.Seconds(),
	})
}

func encodeGenFrame(key inference.Key, resp inference.Response) ([]byte, error) {
	return framePayload(frame{
		Kind:             genKind,
		Gen:              hex.EncodeToString(key[:]),
		Text:             resp.Text,
		PromptTokens:     resp.Usage.PromptTokens,
		CompletionTokens: resp.Usage.CompletionTokens,
		LatencyNs:        resp.Latency.Nanoseconds(),
	})
}

func framePayload(fr frame) ([]byte, error) {
	payload, err := json.Marshal(fr)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[frameHeaderSize:], payload)
	return buf, nil
}

// Get implements engine.CacheStore: the persisted result for
// (test, answer), if any.
func (s *Store) Get(test, answer [sha256.Size]byte) (unittest.Result, bool) {
	s.mu.Lock()
	rec, ok := s.index[Key{Test: test, Answer: answer}]
	s.mu.Unlock()
	if !ok {
		return unittest.Result{}, false
	}
	return unittest.Result{
		Passed:      rec.Passed,
		Output:      rec.Output,
		ExitCode:    rec.ExitCode,
		VirtualTime: rec.VirtualTime,
	}, true
}

// Put implements engine.CacheStore: persist one executed result.
// Errored executions (res.Err != nil) are never recorded — like the
// engine's in-memory tier, a transient outage must not be frozen into
// the cache. An identical re-record is a no-op so warm campaigns don't
// grow the log. Append failures latch into Err/Sync/Close rather than
// failing the evaluation that produced the result.
func (s *Store) Put(test, answer [sha256.Size]byte, res unittest.Result) {
	if res.Err != nil {
		return
	}
	key := Key{Test: test, Answer: answer}
	rec := Record{
		Passed:      res.Passed,
		Output:      res.Output,
		ExitCode:    res.ExitCode,
		VirtualTime: res.VirtualTime,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.index[key]; ok && old == rec {
		return
	}
	if s.appendFrame(func() ([]byte, error) { return encodeFrame(key, rec) }) {
		s.appended++
	}
	s.index[key] = rec
}

// appendFrame encodes and appends one frame, latching failures into
// appendErr. It reports whether the frame landed on disk; on a broken
// log the caller still updates the in-memory index, but must not
// pretend the append persisted. Callers hold s.mu.
func (s *Store) appendFrame(encode func() ([]byte, error)) bool {
	if s.appendErr != nil {
		// The log is broken (failed append or a lost post-compaction
		// reopen): keep serving the in-memory index, but don't pretend
		// further appends persist.
		return false
	}
	buf, err := encode()
	if err != nil {
		s.appendErr = err
		return false
	}
	// One write syscall per record: either the whole frame lands or the
	// checksum catches the tear on the next Open.
	if _, err := s.f.Write(buf); err != nil {
		s.appendErr = fmt.Errorf("store: append: %w", err)
		return false
	}
	return true
}

// GetGen implements inference.GenStore: the persisted generation for
// the given request key, if any.
func (s *Store) GetGen(key inference.Key) (inference.Response, bool) {
	s.mu.Lock()
	resp, ok := s.gens[key]
	s.mu.Unlock()
	return resp, ok
}

// PutGen implements inference.GenStore: persist one live generation.
// An identical re-record is a no-op; append failures latch into
// Err/Sync/Close, never failing the generation that produced the
// response — the same advisory contract as Put.
func (s *Store) PutGen(key inference.Key, resp inference.Response) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.gens[key]; ok && old == resp {
		return
	}
	if s.appendFrame(func() ([]byte, error) { return encodeGenFrame(key, resp) }) {
		s.appended++
	}
	s.gens[key] = resp
}

// GenLen reports how many distinct generations the store holds.
func (s *Store) GenLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.gens)
}

// Len reports how many distinct keys the store holds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Appended reports how many records this handle has appended since
// Open — the store-side mirror of the engine's Executed counter.
func (s *Store) Appended() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appended
}

// Err reports the first append failure, if any.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendErr
}

// Compact rewrites the log to exactly one record per key — the newest
// — shedding superseded appends. The rewrite goes to a temp file that
// atomically renames over the log, so a crash mid-compaction leaves
// the old intact log in place.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()

	keys := make([]Key, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if c := bytes.Compare(keys[i].Test[:], keys[j].Test[:]); c != 0 {
			return c < 0
		}
		return bytes.Compare(keys[i].Answer[:], keys[j].Answer[:]) < 0
	})

	genKeys := make([]inference.Key, 0, len(s.gens))
	for k := range s.gens {
		genKeys = append(genKeys, k)
	}
	sort.Slice(genKeys, func(i, j int) bool {
		return bytes.Compare(genKeys[i][:], genKeys[j][:]) < 0
	})

	tmpPath := s.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	for _, k := range keys {
		buf, err := encodeFrame(k, s.index[k])
		if err != nil {
			return fail(err)
		}
		if _, err := tmp.Write(buf); err != nil {
			return fail(err)
		}
	}
	for _, k := range genKeys {
		buf, err := encodeGenFrame(k, s.gens[k])
		if err != nil {
			return fail(err)
		}
		if _, err := tmp.Write(buf); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		os.Remove(tmpPath)
		return err
	}
	// Swap the handle to the compacted log. If the reopen fails, the old
	// handle now points at the unlinked pre-compaction inode — latch the
	// error so appends stop being trusted and Sync/Close surface it,
	// instead of silently persisting into an orphan.
	f, err := os.OpenFile(s.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		if s.appendErr == nil {
			s.appendErr = fmt.Errorf("store: reopen after compaction: %w", err)
		}
		return err
	}
	s.f.Close()
	s.f = f
	return nil
}

// Sync flushes the log to stable storage and surfaces any latched
// append error.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.appendErr != nil {
		return s.appendErr
	}
	return s.f.Sync()
}

// Close syncs and releases the log. The Store must not be used after
// Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	syncErr := s.f.Sync()
	closeErr := s.f.Close()
	if s.appendErr != nil {
		return s.appendErr
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
