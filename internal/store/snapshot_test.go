package store_test

// Crash-safety matrix for the index-snapshot sidecars (<segment>.idx):
// the sidecar is pure acceleration, so every way it can be wrong —
// corrupt, truncated, version-mismatched, stale against a torn
// segment — must degrade to the full frame-by-frame scan and
// reproduce exactly the contents the segments alone describe. Each
// case seeds a compacted store (every non-empty shard has a sidecar),
// damages sidecars or segments, reopens, and compares the full record
// set against a control opened from the segments with no sidecars at
// all.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cloudeval/internal/inference"
	"cloudeval/internal/store"
	"cloudeval/internal/unittest"
)

// seedCompacted builds a store with nRecs unit-test records and nGens
// generations, compacts it (writing sidecars), and closes it. It
// returns the keys so callers can enumerate the full expected state.
func seedCompacted(t *testing.T, path string, nRecs, nGens int) ([]unittest.Result, []inference.Response) {
	t.Helper()
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]unittest.Result, nRecs)
	for i := range recs {
		tk, ak := digests(fmt.Sprintf("test-%d", i), fmt.Sprintf("answer-%d", i))
		recs[i] = unittest.Result{
			Passed:      i%2 == 0,
			Output:      fmt.Sprintf("output for record %d\n", i),
			ExitCode:    i % 3,
			VirtualTime: time.Duration(i) * time.Second,
		}
		s.Put(tk, ak, recs[i])
	}
	gens := make([]inference.Response, nGens)
	for i := range gens {
		gens[i] = inference.Response{
			Text:    fmt.Sprintf("generated text %d", i),
			Usage:   inference.Usage{PromptTokens: 10 + i, CompletionTokens: 20 + i},
			Latency: time.Duration(i) * time.Millisecond,
		}
		s.PutGen(genKey(fmt.Sprintf("gen-%d", i)), gens[i])
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return recs, gens
}

// verifyContents checks that the store at path holds exactly the
// seeded records, byte for byte (string equality on outputs/texts is
// byte equality).
func verifyContents(t *testing.T, path string, recs []unittest.Result, gens []inference.Response) {
	t.Helper()
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != len(recs) || s.GenLen() != len(gens) {
		t.Fatalf("Len/GenLen = %d/%d, want %d/%d", s.Len(), s.GenLen(), len(recs), len(gens))
	}
	for i, want := range recs {
		tk, ak := digests(fmt.Sprintf("test-%d", i), fmt.Sprintf("answer-%d", i))
		if got, ok := s.Get(tk, ak); !ok || got != want {
			t.Fatalf("record %d: Get = %+v, %v; want %+v", i, got, ok, want)
		}
	}
	for i, want := range gens {
		if got, ok := s.GetGen(genKey(fmt.Sprintf("gen-%d", i))); !ok || got != want {
			t.Fatalf("generation %d: GetGen = %+v, %v; want %+v", i, got, ok, want)
		}
	}
}

// sidecarPaths lists every index sidecar of the store rooted at path.
func sidecarPaths(t *testing.T, path string) []string {
	t.Helper()
	matches, err := filepath.Glob(path + ".s[0-9]*.idx")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no index sidecars found — Compact did not write them")
	}
	return matches
}

// TestSnapshotAcceleratesOpen pins the fast path itself: after
// Compact, a reopen loads every entry from sidecars and scans nothing;
// frames appended after the snapshot are scanned as the tail.
func TestSnapshotAcceleratesOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	recs, gens := seedCompacted(t, path, 40, 20)

	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	st := s.LastOpen()
	if st.ScannedFrames != 0 {
		t.Fatalf("post-compact Open scanned %d frames, want 0", st.ScannedFrames)
	}
	if st.SnapshotFrames != len(recs)+len(gens) {
		t.Fatalf("snapshot supplied %d frames, want %d", st.SnapshotFrames, len(recs)+len(gens))
	}
	if st.SnapshotShards == 0 {
		t.Fatal("no shard used its sidecar")
	}
	// Append a post-snapshot tail; the next Open must scan exactly it.
	tk, ak := digests("tail-test", "tail-answer")
	s.Put(tk, ak, unittest.Result{Passed: true, Output: "tail\n"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st = s2.LastOpen()
	if st.ScannedFrames != 1 {
		t.Fatalf("tail Open scanned %d frames, want 1", st.ScannedFrames)
	}
	if st.SnapshotFrames != len(recs)+len(gens) {
		t.Fatalf("tail Open snapshot frames = %d, want %d", st.SnapshotFrames, len(recs)+len(gens))
	}
	if got, ok := s2.Get(tk, ak); !ok || got.Output != "tail\n" {
		t.Fatalf("tail record lost: %+v, %v", got, ok)
	}
}

// TestSnapshotDamageFallsBackToScan is the sidecar damage matrix:
// every corruption mode must be detected, ignored, and produce the
// same contents a sidecar-less scan produces.
func TestSnapshotDamageFallsBackToScan(t *testing.T) {
	cases := []struct {
		name   string
		damage func(t *testing.T, idx string)
	}{
		{"corrupt_body", func(t *testing.T, idx string) {
			data, err := os.ReadFile(idx)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0xFF
			if err := os.WriteFile(idx, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated", func(t *testing.T, idx string) {
			fi, err := os.Stat(idx)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(idx, fi.Size()/2); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated_to_nothing", func(t *testing.T, idx string) {
			if err := os.Truncate(idx, 0); err != nil {
				t.Fatal(err)
			}
		}},
		{"bad_magic", func(t *testing.T, idx string) {
			data, err := os.ReadFile(idx)
			if err != nil {
				t.Fatal(err)
			}
			copy(data[0:6], "NOTIDX")
			if err := os.WriteFile(idx, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"version_mismatch", func(t *testing.T, idx string) {
			data, err := os.ReadFile(idx)
			if err != nil {
				t.Fatal(err)
			}
			// A future format version: bump the version field and
			// recompute nothing — the CRC check fires first, which is
			// also correct. To isolate the version check, rewrite the
			// CRC over the bumped body.
			data[6] = 99
			fixCRC(t, data)
			if err := os.WriteFile(idx, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage_file", func(t *testing.T, idx string) {
			if err := os.WriteFile(idx, []byte("not a sidecar at all"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "eval.store")
			recs, gens := seedCompacted(t, path, 30, 15)
			for _, idx := range sidecarPaths(t, path) {
				tc.damage(t, idx)
			}
			verifyContents(t, path, recs, gens)

			// And the fallback really was a scan, not a sidecar load.
			s, err := store.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if st := s.LastOpen(); st.SnapshotFrames != 0 || st.ScannedFrames != len(recs)+len(gens) {
				t.Fatalf("damaged sidecars: LastOpen = %+v, want full scan of %d frames", st, len(recs)+len(gens))
			}
		})
	}
}

// fixCRC recomputes a sidecar's trailing checksum over its (possibly
// mutated) body, so tests can isolate validation checks that come
// after the CRC.
func fixCRC(t *testing.T, data []byte) {
	t.Helper()
	sum := crc32.Checksum(data[:len(data)-4], crc32.MakeTable(crc32.Castagnoli))
	binary.LittleEndian.PutUint32(data[len(data)-4:], sum)
}

// TestSnapshotStaleAgainstTornSegment: the segment loses its tail
// (crash tear) after the sidecar was written, so the sidecar describes
// bytes that no longer exist. Open must reject it and scan what
// actually survives, exactly as if the sidecar were absent.
func TestSnapshotStaleAgainstTornSegment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	recs, gens := seedCompacted(t, path, 30, 15)

	// Tear the tail off every non-empty segment: drop its last frame.
	torn := 0
	for _, seg := range segmentPaths(t, path) {
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			continue
		}
		frames := countFramesIn(data, int64(len(data)))
		if frames == 0 {
			continue
		}
		keep := frameEnd(data, frames-1)
		if err := os.Truncate(seg, keep); err != nil {
			t.Fatal(err)
		}
		torn++
	}
	if torn == 0 {
		t.Fatal("no segment had frames to tear")
	}

	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if st := s.LastOpen(); st.SnapshotFrames != 0 {
		t.Fatalf("stale sidecars were trusted: LastOpen = %+v", st)
	}
	if got := s.Len() + s.GenLen(); got != len(recs)+len(gens)-torn {
		t.Fatalf("post-tear store holds %d records, want %d (%d seeded - %d torn)",
			got, len(recs)+len(gens)-torn, len(recs)+len(gens), torn)
	}
}

// frameEnd returns the byte offset just past frame i-1 — i.e. the
// length of a log prefix holding the first i frames.
func frameEnd(data []byte, n int) int64 {
	off := int64(0)
	for i := 0; i < n; i++ {
		payload := int64(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		off += 8 + payload
	}
	return off
}

// TestSnapshotSegLenBeyondSegment: a sidecar whose recorded segment
// length exceeds the file on disk (the inverse tear: segment replaced
// by something shorter) is stale by definition.
func TestSnapshotSegLenBeyondSegment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	recs, gens := seedCompacted(t, path, 20, 10)

	// Empty every segment but keep the sidecars: every entry is now
	// out of bounds. Open must fall back and see an empty store.
	for _, seg := range segmentPaths(t, path) {
		if err := os.Truncate(seg, 0); err != nil {
			t.Fatal(err)
		}
	}
	_ = recs
	_ = gens
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if st := s.LastOpen(); st.SnapshotFrames != 0 {
		t.Fatalf("out-of-bounds sidecars were trusted: LastOpen = %+v", st)
	}
	if s.Len()+s.GenLen() != 0 {
		t.Fatalf("emptied store still holds %d records", s.Len()+s.GenLen())
	}
}

// TestCompactInvalidatesSidecarBeforeRewrite: after a second round of
// appends and a second Compact, the sidecars must describe the new
// segments (reopen uses them and sees the newest records) — the
// remove-before-rename ordering must not leave a first-generation
// sidecar behind.
func TestCompactRefreshesSidecars(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	recs, gens := seedCompacted(t, path, 20, 10)

	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite every record with a newer value, then recompact.
	for i := range recs {
		tk, ak := digests(fmt.Sprintf("test-%d", i), fmt.Sprintf("answer-%d", i))
		recs[i].Output = fmt.Sprintf("rewritten output %d\n", i)
		recs[i].Passed = true
		s.Put(tk, ak, recs[i])
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.LastOpen(); st.ScannedFrames != 0 || st.SnapshotFrames != len(recs)+len(gens) {
		t.Fatalf("recompacted Open = %+v, want all %d frames from sidecars", st, len(recs)+len(gens))
	}
	for i, want := range recs {
		tk, ak := digests(fmt.Sprintf("test-%d", i), fmt.Sprintf("answer-%d", i))
		if got, ok := s2.Get(tk, ak); !ok || got != want {
			t.Fatalf("record %d after recompact: %+v, %v; want %+v", i, got, ok, want)
		}
	}
}

// TestCompactConcurrentWithGets hammers Get/GetGen while Compact
// rewrites every shard: readers must never observe a missing or wrong
// record through the handle swap (they ride errLogClosed retries onto
// the refreshed entries).
func TestCompactConcurrentWithGets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	// A tiny hot cache forces most reads through the pread path, which
	// is the path the handle swap races with.
	s, err := store.Open(path, store.WithHotCacheBytes(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 64
	wantRec := make([]unittest.Result, n)
	wantGen := make([]inference.Response, n)
	for i := 0; i < n; i++ {
		tk, ak := digests(fmt.Sprintf("ct-%d", i), fmt.Sprintf("ca-%d", i))
		wantRec[i] = unittest.Result{Passed: true, Output: fmt.Sprintf("out-%d", i)}
		s.Put(tk, ak, wantRec[i])
		wantGen[i] = inference.Response{Text: fmt.Sprintf("gen-%d", i)}
		s.PutGen(genKey(fmt.Sprintf("cg-%d", i)), wantGen[i])
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := (w + i) % n
				tk, ak := digests(fmt.Sprintf("ct-%d", k), fmt.Sprintf("ca-%d", k))
				if got, ok := s.Get(tk, ak); !ok || got != wantRec[k] {
					select {
					case errc <- fmt.Errorf("Get(%d) = %+v, %v during compact", k, got, ok):
					default:
					}
					return
				}
				if got, ok := s.GetGen(genKey(fmt.Sprintf("cg-%d", k))); !ok || got != wantGen[k] {
					select {
					case errc <- fmt.Errorf("GetGen(%d) = %+v, %v during compact", k, got, ok):
					default:
					}
					return
				}
			}
		}(w)
	}
	for i := 0; i < 5; i++ {
		if err := s.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
