package store_test

import (
	"crypto/sha256"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"cloudeval/internal/inference"
	"cloudeval/internal/store"
	"cloudeval/internal/unittest"
)

func genKey(s string) inference.Key { return inference.Key(sha256.Sum256([]byte(s))) }

func genResp(text string) inference.Response {
	return inference.Response{
		Text:    text,
		Usage:   inference.Usage{PromptTokens: 120, CompletionTokens: 34},
		Latency: 1234567891 * time.Nanosecond, // sub-second precision must survive
	}
}

// TestGenPutGetAcrossReopen proves the generation record kind
// round-trips the log exactly, coexisting with unit-test records in
// one file.
func TestGenPutGetAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave kinds: one unit-test record between two generations.
	k1, k2 := genKey("req-1"), genKey("req-2")
	r1, r2 := genResp("apiVersion: v1\nkind: Pod\n"), genResp("services:\n  web: {}\n")
	s.PutGen(k1, r1)
	tk, ak := digests("echo unit_test_passed", "kind: Pod")
	ut := unittest.Result{Passed: true, Output: "unit_test_passed\n", VirtualTime: 9 * time.Second}
	s.Put(tk, ak, ut)
	s.PutGen(k2, r2)
	if got, ok := s.GetGen(k1); !ok || got != r1 {
		t.Fatalf("in-process GetGen = %+v, %v", got, ok)
	}
	if s.GenLen() != 2 || s.Len() != 1 {
		t.Fatalf("GenLen/Len = %d/%d, want 2/1", s.GenLen(), s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, c := range []struct {
		key  inference.Key
		want inference.Response
	}{{k1, r1}, {k2, r2}} {
		if got, ok := s2.GetGen(c.key); !ok || got != c.want {
			t.Fatalf("reopened GetGen = %+v, %v; want %+v", got, ok, c.want)
		}
	}
	if got, ok := s2.Get(tk, ak); !ok || got != ut {
		t.Fatalf("unit-test record lost among generations: %+v, %v", got, ok)
	}
	if _, ok := s2.GetGen(genKey("absent")); ok {
		t.Fatal("absent generation key must miss")
	}
}

func TestGenIdenticalRecordDoesNotGrowLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k, r := genKey("req"), genResp("kind: Pod\n")
	s.PutGen(k, r)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	before := storeSize(t, path)
	for i := 0; i < 10; i++ {
		s.PutGen(k, r)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if after := storeSize(t, path); after != before {
		t.Fatalf("identical re-records grew the log: %d -> %d bytes", before, after)
	}
}

// TestCompactPreservesGenerations verifies compaction rewrites both
// record kinds, keeping the newest generation per key.
func TestCompactPreservesGenerations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	k := genKey("req")
	tk, ak := digests("echo x", "answer")
	s.Put(tk, ak, unittest.Result{Passed: false, Output: "no"})
	for i := 0; i < 5; i++ {
		s.PutGen(k, genResp(fmt.Sprintf("kind: Pod # rev %d\n", i)))
	}
	newest := genResp("kind: Pod # rev 4\n")
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.GetGen(k); !ok || got != newest {
		t.Fatalf("post-compaction GetGen = %+v, %v", got, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, ok := s2.GetGen(k); !ok || got != newest {
		t.Fatalf("reopened compacted GetGen = %+v, %v", got, ok)
	}
	if _, ok := s2.Get(tk, ak); !ok {
		t.Fatal("compaction lost the unit-test record")
	}
	if s2.GenLen() != 1 {
		t.Fatalf("compacted GenLen = %d, want 1", s2.GenLen())
	}
}

// TestPreGenerationLogReplays pins backward compatibility: a log
// written with only unit-test frames (the pre-provider format, no
// kind field) opens and serves normally, with zero generations.
func TestPreGenerationLogReplays(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tk, ak := digests("echo unit_test_passed", "kind: Pod")
	want := unittest.Result{Passed: true, VirtualTime: 3 * time.Second}
	s.Put(tk, ak, want)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, ok := s2.Get(tk, ak); !ok || got != want {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if s2.GenLen() != 0 {
		t.Fatalf("GenLen = %d, want 0", s2.GenLen())
	}
}
