package store_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cloudeval/internal/inference"
	"cloudeval/internal/store"
	"cloudeval/internal/unittest"
)

// legacyFrame mirrors the on-disk JSON payload the pre-shard writer
// produced, synthesized here byte-for-byte (field order and omitempty
// behavior match the historical layout) so the compatibility tests do
// not depend on the current writer at all.
type legacyFrame struct {
	Kind             string  `json:"kind,omitempty"`
	Test             string  `json:"test,omitempty"`
	Answer           string  `json:"answer,omitempty"`
	Passed           bool    `json:"passed,omitempty"`
	Output           string  `json:"output,omitempty"`
	ExitCode         int     `json:"exit_code,omitempty"`
	VirtualSecs      float64 `json:"virtual_secs,omitempty"`
	Gen              string  `json:"gen,omitempty"`
	Text             string  `json:"text,omitempty"`
	PromptTokens     int     `json:"prompt_tokens,omitempty"`
	CompletionTokens int     `json:"completion_tokens,omitempty"`
	LatencyNs        int64   `json:"latency_ns,omitempty"`
}

var legacyCRC = crc32.MakeTable(crc32.Castagnoli)

// appendLegacyFrame encodes one record in the single-file log format:
// [4-byte LE length][4-byte LE CRC-32C][JSON payload].
func appendLegacyFrame(t *testing.T, buf *bytes.Buffer, fr legacyFrame) {
	t.Helper()
	payload, err := json.Marshal(fr)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, legacyCRC))
	buf.Write(hdr[:])
	buf.Write(payload)
}

func legacyUnitFrame(test, answer string, res unittest.Result) legacyFrame {
	tk, ak := digests(test, answer)
	return legacyFrame{
		Test:        hex.EncodeToString(tk[:]),
		Answer:      hex.EncodeToString(ak[:]),
		Passed:      res.Passed,
		Output:      res.Output,
		ExitCode:    res.ExitCode,
		VirtualSecs: res.VirtualTime.Seconds(),
	}
}

func legacyGenFrame(key inference.Key, resp inference.Response) legacyFrame {
	return legacyFrame{
		Kind:             "gen",
		Gen:              hex.EncodeToString(key[:]),
		Text:             resp.Text,
		PromptTokens:     resp.Usage.PromptTokens,
		CompletionTokens: resp.Usage.CompletionTokens,
		LatencyNs:        resp.Latency.Nanoseconds(),
	}
}

// writeLegacyLog synthesizes a pre-shard single-file store at path
// holding n unit-test records (keys legacy-test-i/legacy-answer-i),
// one superseded duplicate of key 0, and g generation records.
func writeLegacyLog(t *testing.T, path string, n, g int) {
	t.Helper()
	var buf bytes.Buffer
	// A stale first record for key 0: replay must resolve newest-wins
	// within the legacy file itself.
	appendLegacyFrame(t, &buf, legacyUnitFrame("legacy-test-0", "legacy-answer-0",
		unittest.Result{Passed: false, Output: "stale first run"}))
	for i := 0; i < n; i++ {
		appendLegacyFrame(t, &buf, legacyUnitFrame(
			fmt.Sprintf("legacy-test-%d", i), fmt.Sprintf("legacy-answer-%d", i),
			unittest.Result{Passed: true, Output: fmt.Sprintf("out-%d", i), VirtualTime: time.Duration(i) * time.Second}))
	}
	for i := 0; i < g; i++ {
		key := inference.Key(sha256.Sum256([]byte(fmt.Sprintf("legacy-gen-%d", i))))
		appendLegacyFrame(t, &buf, legacyGenFrame(key, inference.Response{
			Text:    fmt.Sprintf("kind: Pod # %d\n", i),
			Usage:   inference.Usage{PromptTokens: 100 + i, CompletionTokens: 30 + i},
			Latency: time.Duration(i+1) * time.Millisecond,
		}))
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLegacySingleFileLogReplays is the backward-compatibility
// contract: a store written in the pre-shard single-file layout opens
// transparently — every unit-test and generation record is visible,
// newest-wins holds within the legacy file, and the legacy bytes are
// read through, not rewritten.
func TestLegacySingleFileLogReplays(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	const records, gens = 40, 10
	writeLegacyLog(t, path, records, gens)
	legacyBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != records || s.GenLen() != gens {
		t.Fatalf("Len/GenLen = %d/%d, want %d/%d", s.Len(), s.GenLen(), records, gens)
	}
	for i := 0; i < records; i++ {
		tk, ak := digests(fmt.Sprintf("legacy-test-%d", i), fmt.Sprintf("legacy-answer-%d", i))
		got, ok := s.Get(tk, ak)
		if !ok || !got.Passed || got.Output != fmt.Sprintf("out-%d", i) {
			t.Fatalf("legacy record %d = %+v, %v", i, got, ok)
		}
	}
	for i := 0; i < gens; i++ {
		key := inference.Key(sha256.Sum256([]byte(fmt.Sprintf("legacy-gen-%d", i))))
		got, ok := s.GetGen(key)
		if !ok || got.Text != fmt.Sprintf("kind: Pod # %d\n", i) {
			t.Fatalf("legacy generation %d = %+v, %v", i, got, ok)
		}
	}

	// Read-through, not rewrite: the legacy log is byte-identical
	// after open, and new appends land in shard segments, never in it.
	tk, ak := digests("new-test", "new-answer")
	s.Put(tk, ak, unittest.Result{Passed: true})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacyBytes, after) {
		t.Fatal("opening a legacy log modified its bytes")
	}

	// A reopen sees legacy and segment records together.
	s2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != records+1 {
		t.Fatalf("reopened Len = %d, want %d", s2.Len(), records+1)
	}
	if _, ok := s2.Get(tk, ak); !ok {
		t.Fatal("post-upgrade append lost on reopen")
	}
}

// TestLegacyRecordSupersededBySegmentAppend pins the conflict rule: a
// key present in the legacy log and re-recorded through the sharded
// store must serve the newer (segment) value after reopen — segments
// replay after the legacy pre-pass.
func TestLegacyRecordSupersededBySegmentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	writeLegacyLog(t, path, 8, 0)

	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tk, ak := digests("legacy-test-3", "legacy-answer-3")
	newer := unittest.Result{Passed: false, Output: "superseded by re-run", ExitCode: 7}
	s.Put(tk, ak, newer)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, ok := s2.Get(tk, ak); !ok || got != newer {
		t.Fatalf("Get = %+v, %v; want the segment record %+v to win over legacy", got, ok, newer)
	}
}

// TestLegacyCompactMigratesToShardedLayout: Compact on a store opened
// from a legacy log rewrites every record into the shard segments and
// removes the single-file log — migrate-on-compact. Everything stays
// visible in memory, after the migration, and across a reopen.
func TestLegacyCompactMigratesToShardedLayout(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	const records, gens = 24, 6
	writeLegacyLog(t, path, records, gens)

	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("legacy log still present after migrating Compact (stat err %v)", err)
	}
	var segBytes int64
	for _, seg := range segmentPaths(t, path) {
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		segBytes += fi.Size()
	}
	if segBytes == 0 {
		t.Fatal("no segment bytes after migrating Compact")
	}
	if s.Len() != records || s.GenLen() != gens {
		t.Fatalf("post-compact Len/GenLen = %d/%d, want %d/%d", s.Len(), s.GenLen(), records, gens)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != records || s2.GenLen() != gens {
		t.Fatalf("reopened Len/GenLen = %d/%d, want %d/%d", s2.Len(), s2.GenLen(), records, gens)
	}
	for i := 0; i < records; i++ {
		tk, ak := digests(fmt.Sprintf("legacy-test-%d", i), fmt.Sprintf("legacy-answer-%d", i))
		if got, ok := s2.Get(tk, ak); !ok || !got.Passed || got.Output != fmt.Sprintf("out-%d", i) {
			t.Fatalf("migrated record %d = %+v, %v", i, got, ok)
		}
	}
	for i := 0; i < gens; i++ {
		key := inference.Key(sha256.Sum256([]byte(fmt.Sprintf("legacy-gen-%d", i))))
		if _, ok := s2.GetGen(key); !ok {
			t.Fatalf("migrated generation %d lost", i)
		}
	}
}

// TestLegacyTornTailDropped: a legacy log with a crash-torn tail
// opens cleanly, dropping only the torn record.
func TestLegacyTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	writeLegacyLog(t, path, 8, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-way through the final frame.
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(path)
	if err != nil {
		t.Fatalf("Open on torn legacy log: %v", err)
	}
	defer s.Close()
	if s.Len() != 7 {
		t.Fatalf("Len = %d, want 7 (torn final record dropped)", s.Len())
	}
	tk, ak := digests("legacy-test-7", "legacy-answer-7")
	if _, ok := s.Get(tk, ak); ok {
		t.Fatal("torn legacy record served")
	}
}
