package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"cloudeval/internal/inference"
)

// segment is one shard of the store: a key range's append-only log
// file plus its slice of the in-memory index. Each segment carries
// its own group-commit machinery — pending buffer, batch sequencing,
// committer election — so appends to different shards batch and
// flush with no shared state at all.
type segment struct {
	recs [idxStripes]recStripe
	gens [idxStripes]genStripe

	appended atomic.Int64
	flushes  atomic.Int64

	// mu guards the log half: the file handle, the group-commit
	// pending buffer and its batch/flush bookkeeping, and appendErr.
	// Index reads and writes never take it.
	mu      sync.Mutex
	flushed sync.Cond // signaled whenever flushedBatch advances
	f       *os.File
	// pending accumulates encoded frames for the batch curBatch;
	// flushedBatch is the highest batch durably written. A writer's
	// frames are on disk exactly when flushedBatch has reached the
	// batch it enqueued into.
	pending      []byte
	curBatch     uint64
	flushedBatch uint64
	flushing     bool
	// appendErr latches the first failed append so a sick disk surfaces
	// on Sync/Close instead of being silently swallowed by the cache
	// interface.
	appendErr error
}

func newSegment(f *os.File) *segment {
	seg := &segment{f: f, curBatch: 1}
	seg.flushed.L = &seg.mu
	for i := range seg.recs {
		seg.recs[i].m = make(map[Key]Record)
	}
	for i := range seg.gens {
		seg.gens[i].m = make(map[inference.Key]inference.Response)
	}
	return seg
}

// scanLog walks one log file from the start, calling apply for each
// intact frame, and returns the offset of the first bad (or missing)
// frame. One growable payload buffer is reused across frames —
// json.Unmarshal copies what it keeps, and a warm daemon start on a
// large log should not churn the allocator once per record. apply
// returning false marks the frame bad (malformed key): the scan stops
// there, exactly like a failed CRC.
func scanLog(f *os.File, apply func(frame) bool) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	var off int64
	hdr := make([]byte, frameHeaderSize)
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			// Clean EOF or a torn header: the log ends here.
			return off, nil
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxPayload {
			return off, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			return off, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return off, nil // corrupt frame; drop it and everything after
		}
		var fr frame
		if err := json.Unmarshal(payload, &fr); err != nil {
			return off, nil
		}
		if !apply(fr) {
			return off, nil
		}
		off += frameHeaderSize + int64(n)
	}
}

// replay loads the segment's log into the store's index (routing by
// key, so even a misplaced record lands where Get looks for it) and
// truncates the segment's torn tail.
func (seg *segment) replay(s *Store) error {
	good, err := scanLog(seg.f, s.load)
	if err != nil {
		return err
	}
	if err := seg.f.Truncate(good); err != nil {
		return fmt.Errorf("store: truncate torn tail: %w", err)
	}
	return nil
}

// appendWait enqueues one encoded frame into the segment's pending
// group-commit batch and blocks until that batch is on disk,
// reporting whether the frame durably landed. The first writer to
// find no flush in progress becomes the committer: it drains the
// whole pending buffer — its own frame plus everything concurrent
// writers enqueued behind it — in a single write syscall, then
// releases every writer it carried. Writers arriving mid-flush
// accumulate the next batch; one of them commits it when the
// in-flight flush completes. Frame encoding happens in the callers,
// outside the lock.
func (seg *segment) appendWait(buf []byte, encErr error) bool {
	seg.mu.Lock()
	defer seg.mu.Unlock()
	if seg.appendErr != nil {
		// The log is broken (failed append or a lost post-compaction
		// reopen): keep serving the in-memory index, but don't pretend
		// further appends persist.
		return false
	}
	if encErr != nil {
		seg.appendErr = encErr
		return false
	}
	seg.pending = append(seg.pending, buf...)
	myBatch := seg.curBatch
	for {
		if seg.flushedBatch >= myBatch {
			return seg.appendErr == nil
		}
		if !seg.flushing {
			seg.flushBatchLocked()
			continue
		}
		seg.flushed.Wait()
	}
}

// flushBatchLocked writes the whole pending buffer as one syscall and
// advances flushedBatch past every frame it carried. Callers hold
// seg.mu; the lock is dropped for the write itself so concurrent
// writers keep enqueueing the next batch.
func (seg *segment) flushBatchLocked() {
	batch := seg.curBatch
	buf := seg.pending
	seg.pending = nil
	seg.curBatch++
	seg.flushing = true
	seg.mu.Unlock()
	// One write syscall per batch: O_APPEND places it atomically at
	// the end of file, and each frame's checksum still catches a tear
	// inside the batch on the next Open.
	_, werr := seg.f.Write(buf)
	seg.mu.Lock()
	seg.flushing = false
	seg.flushedBatch = batch
	seg.flushes.Add(1)
	if werr != nil && seg.appendErr == nil {
		seg.appendErr = fmt.Errorf("store: append: %w", werr)
	}
	seg.flushed.Broadcast()
}

// drainLocked flushes until no batch is pending or in flight. Callers
// hold seg.mu.
func (seg *segment) drainLocked() {
	for seg.flushing || len(seg.pending) > 0 {
		if !seg.flushing {
			seg.flushBatchLocked()
			continue
		}
		seg.flushed.Wait()
	}
}

func (seg *segment) lenRecs() int {
	n := 0
	for i := range seg.recs {
		st := &seg.recs[i]
		st.mu.RLock()
		n += len(st.m)
		st.mu.RUnlock()
	}
	return n
}

func (seg *segment) lenGens() int {
	n := 0
	for i := range seg.gens {
		st := &seg.gens[i]
		st.mu.RLock()
		n += len(st.m)
		st.mu.RUnlock()
	}
	return n
}

func (seg *segment) err() error {
	seg.mu.Lock()
	defer seg.mu.Unlock()
	return seg.appendErr
}

// compact rewrites this shard's segment to exactly one record per key
// — the newest — via a temp file atomically renamed over path.
// Holding the shard's log lock throughout keeps this shard's
// concurrent appends queued in pending until the new handle is in
// place; appends to other shards never touch this lock. An index
// entry added after the snapshot re-appends its frame to the
// compacted segment, so nothing is lost either side of the rename. A
// crash mid-compaction leaves the old intact segment in place.
func (seg *segment) compact(path string) error {
	seg.mu.Lock()
	defer seg.mu.Unlock()
	seg.drainLocked()

	// Snapshot this shard's index slice. Stripe read-locks nest inside
	// seg.mu here; writers never hold a stripe lock while acquiring
	// seg.mu, so the order cannot invert.
	index := make(map[Key]Record)
	for i := range seg.recs {
		st := &seg.recs[i]
		st.mu.RLock()
		for k, r := range st.m {
			index[k] = r
		}
		st.mu.RUnlock()
	}
	gens := make(map[inference.Key]inference.Response)
	for i := range seg.gens {
		st := &seg.gens[i]
		st.mu.RLock()
		for k, r := range st.m {
			gens[k] = r
		}
		st.mu.RUnlock()
	}

	keys := make([]Key, 0, len(index))
	for k := range index {
		keys = append(keys, k)
	}
	sortKeys(keys)

	genKeys := make([]inference.Key, 0, len(gens))
	for k := range gens {
		genKeys = append(genKeys, k)
	}
	sort.Slice(genKeys, func(i, j int) bool {
		return string(genKeys[i][:]) < string(genKeys[j][:])
	})

	tmpPath := path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	for _, k := range keys {
		buf, err := encodeFrame(k, index[k])
		if err != nil {
			return fail(err)
		}
		if _, err := tmp.Write(buf); err != nil {
			return fail(err)
		}
	}
	for _, k := range genKeys {
		buf, err := encodeGenFrame(k, gens[k])
		if err != nil {
			return fail(err)
		}
		if _, err := tmp.Write(buf); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return err
	}
	// Swap the handle to the compacted segment. If the reopen fails,
	// the old handle now points at the unlinked pre-compaction inode —
	// latch the error so appends stop being trusted and Sync/Close
	// surface it, instead of silently persisting into an orphan.
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		if seg.appendErr == nil {
			seg.appendErr = fmt.Errorf("store: reopen after compaction: %w", err)
		}
		return err
	}
	seg.f.Close()
	seg.f = f
	return nil
}

// sync flushes pending batches and the segment to stable storage, and
// surfaces any latched append error.
func (seg *segment) sync() error {
	seg.mu.Lock()
	defer seg.mu.Unlock()
	seg.drainLocked()
	if seg.appendErr != nil {
		return seg.appendErr
	}
	return seg.f.Sync()
}

// close syncs and releases the segment.
func (seg *segment) close() error {
	seg.mu.Lock()
	defer seg.mu.Unlock()
	seg.drainLocked()
	syncErr := seg.f.Sync()
	closeErr := seg.f.Close()
	if seg.appendErr != nil {
		return seg.appendErr
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
