package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"cloudeval/internal/inference"
)

// errLogClosed is returned by logFile.pread after the handle has been
// swapped out (compaction) or the store closed. Readers holding a
// pre-swap index entry retry against the refreshed entry; a pread must
// never land on a recycled file descriptor.
var errLogClosed = errors.New("store: log file closed")

// errCorruptFrame marks an on-demand read whose frame failed its
// length or checksum check — served as a cache miss, never a panic.
var errCorruptFrame = errors.New("store: corrupt frame")

// logFile wraps one log's *os.File behind a close guard so on-demand
// reads (Get pread) can race compaction's handle swap safely: pread
// takes the read half, close takes the write half, and a pread after
// close reports errLogClosed instead of touching a dead (or worse,
// recycled) descriptor.
type logFile struct {
	mu     sync.RWMutex
	f      *os.File
	closed bool
}

func newLogFile(f *os.File) *logFile { return &logFile{f: f} }

// pread fills p from offset off, failing with errLogClosed once the
// file has been closed. Short reads (a torn tail, an offset past EOF)
// surface as io errors and are treated like corruption by callers.
func (lf *logFile) pread(p []byte, off int64) error {
	lf.mu.RLock()
	defer lf.mu.RUnlock()
	if lf.closed {
		return errLogClosed
	}
	_, err := lf.f.ReadAt(p, off)
	return err
}

// close closes the underlying file exactly once, after waiting out any
// pread in flight.
func (lf *logFile) close() error {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	if lf.closed {
		return nil
	}
	lf.closed = true
	return lf.f.Close()
}

// segment is one shard of the store: a key range's append-only log
// file plus its slice of the offset index. Each segment carries its
// own group-commit machinery — pending buffer, batch sequencing,
// committer election — so appends to different shards batch and flush
// with no shared state at all.
type segment struct {
	recs [idxStripes]recStripe
	gens [idxStripes]genStripe

	appended atomic.Int64
	flushes  atomic.Int64

	// idxPath names this shard's index-snapshot sidecar (<seg>.idx).
	idxPath string

	// Open bookkeeping for the store's LastOpen stats: how many index
	// entries came from the snapshot sidecar vs a frame-by-frame scan.
	snapFrames int
	scanFrames int

	// mu guards the log half: the logFile handle, the logical size,
	// the group-commit pending buffer and its batch/flush bookkeeping,
	// and appendErr. Index reads never take it.
	mu      sync.Mutex
	flushed sync.Cond // signaled whenever flushedBatch advances
	lf      *logFile
	// size is the segment's logical end: file length plus enqueued but
	// not yet flushed bytes. Frames are assigned their offsets here, at
	// enqueue time — batches flush strictly in order, so the logical
	// end is exactly where the next frame will land.
	size int64
	// pending accumulates encoded frames for the batch curBatch;
	// flushedBatch is the highest batch durably written. A writer's
	// frames are on disk exactly when flushedBatch has reached the
	// batch it enqueued into.
	pending      []byte
	curBatch     uint64
	flushedBatch uint64
	flushing     bool
	// appendErr latches the first failed append so a sick disk surfaces
	// on Sync/Close instead of being silently swallowed by the cache
	// interface.
	appendErr error
}

func newSegment(f *os.File, idxPath string) *segment {
	seg := &segment{lf: newLogFile(f), idxPath: idxPath, curBatch: 1}
	seg.flushed.L = &seg.mu
	for i := range seg.recs {
		seg.recs[i].m = make(map[Key]entry)
	}
	for i := range seg.gens {
		seg.gens[i].m = make(map[inference.Key]entry)
	}
	return seg
}

// scanLog walks one log file from offset start, calling apply for each
// intact frame with its key fields, absolute offset, total length
// (header included), and payload checksum, and returns the offset of
// the first bad (or missing) frame. One growable payload buffer is
// reused across frames, and the decode goes through keyFrame — only
// the fields that feed the offset index — so a multi-gigabyte log
// replays without ever materializing its payload strings. apply
// returning false marks the frame bad (malformed key): the scan stops
// there, exactly like a failed CRC.
func scanLog(f *os.File, start int64, apply func(fr keyFrame, off int64, n, sum uint32) bool) (int64, error) {
	if _, err := f.Seek(start, io.SeekStart); err != nil {
		return 0, err
	}
	off := start
	hdr := make([]byte, frameHeaderSize)
	var payload []byte
	r := io.Reader(f)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			// Clean EOF or a torn header: the log ends here.
			return off, nil
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxPayload {
			return off, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return off, nil // corrupt frame; drop it and everything after
		}
		var fr keyFrame
		if err := json.Unmarshal(payload, &fr); err != nil {
			return off, nil
		}
		if !apply(fr, off, frameHeaderSize+n, sum) {
			return off, nil
		}
		off += frameHeaderSize + int64(n)
	}
}

// replay loads the segment's log into the store's offset index
// (routing by key, so even a misplaced record lands where Get looks
// for it) and truncates the segment's torn tail. When the shard's
// index-snapshot sidecar is present and consistent with the segment,
// the snapshot supplies every entry up to its recorded byte length and
// only the appended tail is scanned; a missing, stale, truncated or
// corrupt sidecar falls back to the full frame-by-frame scan and
// reproduces byte-identical state.
func (seg *segment) replay(s *Store) error {
	fi, err := seg.lf.f.Stat()
	if err != nil {
		return err
	}
	start := int64(0)
	if snap, err := readSnapshot(seg.idxPath, fi.Size()); err == nil {
		for _, re := range snap.recs {
			s.loadRec(re.key, entry{src: seg.lf, off: re.off, n: re.n, sum: re.sum})
		}
		for _, ge := range snap.gens {
			s.loadGen(ge.key, entry{src: seg.lf, off: ge.off, n: ge.n, sum: ge.sum})
		}
		seg.snapFrames = len(snap.recs) + len(snap.gens)
		start = snap.segLen
	}
	good, err := scanLog(seg.lf.f, start, func(fr keyFrame, off int64, n, sum uint32) bool {
		if !s.load(seg.lf, fr, off, n, sum) {
			return false
		}
		seg.scanFrames++
		return true
	})
	if err != nil {
		return err
	}
	if err := seg.lf.f.Truncate(good); err != nil {
		return fmt.Errorf("store: truncate torn tail: %w", err)
	}
	seg.size = good
	return nil
}

// appendWait enqueues one encoded frame into the segment's pending
// group-commit batch and blocks until that batch is on disk,
// reporting whether the frame durably landed. The first writer to
// find no flush in progress becomes the committer: it drains the
// whole pending buffer — its own frame plus everything concurrent
// writers enqueued behind it — in a single write syscall, then
// releases every writer it carried. Writers arriving mid-flush
// accumulate the next batch; one of them commits it when the
// in-flight flush completes. Frame encoding happens in the callers,
// outside the lock.
//
// install runs at enqueue time, under the segment lock, with the
// frame's assigned offset and owning logFile: callers use it to write
// the offset-index entry. Installing under the lock — before
// durability, not after — is what makes compaction race-free: compact
// holds this same lock, so every frame it drains into the old file is
// already indexed and gets carried into the rewrite. A crash before
// the flush loses the tail frame exactly like the pre-index store.
func (seg *segment) appendWait(buf []byte, encErr error, install func(lf *logFile, off int64)) bool {
	seg.mu.Lock()
	defer seg.mu.Unlock()
	if seg.appendErr != nil {
		// The log is broken (failed append or a lost post-compaction
		// reopen): don't pretend further appends persist.
		return false
	}
	if encErr != nil {
		seg.appendErr = encErr
		return false
	}
	off := seg.size
	seg.pending = append(seg.pending, buf...)
	seg.size += int64(len(buf))
	install(seg.lf, off)
	myBatch := seg.curBatch
	for {
		if seg.flushedBatch >= myBatch {
			return seg.appendErr == nil
		}
		if !seg.flushing {
			seg.flushBatchLocked()
			continue
		}
		seg.flushed.Wait()
	}
}

// flushBatchLocked writes the whole pending buffer as one syscall and
// advances flushedBatch past every frame it carried. Callers hold
// seg.mu; the lock is dropped for the write itself so concurrent
// writers keep enqueueing the next batch.
func (seg *segment) flushBatchLocked() {
	batch := seg.curBatch
	buf := seg.pending
	f := seg.lf.f
	seg.pending = nil
	seg.curBatch++
	seg.flushing = true
	seg.mu.Unlock()
	// One write syscall per batch: O_APPEND places it atomically at
	// the end of file, and each frame's checksum still catches a tear
	// inside the batch on the next Open.
	_, werr := f.Write(buf)
	seg.mu.Lock()
	seg.flushing = false
	seg.flushedBatch = batch
	seg.flushes.Add(1)
	if werr != nil && seg.appendErr == nil {
		seg.appendErr = fmt.Errorf("store: append: %w", werr)
	}
	seg.flushed.Broadcast()
}

// drainLocked flushes until no batch is pending or in flight. Callers
// hold seg.mu.
func (seg *segment) drainLocked() {
	for seg.flushing || len(seg.pending) > 0 {
		if !seg.flushing {
			seg.flushBatchLocked()
			continue
		}
		seg.flushed.Wait()
	}
}

func (seg *segment) lenRecs() int {
	n := 0
	for i := range seg.recs {
		st := &seg.recs[i]
		st.mu.RLock()
		n += len(st.m)
		st.mu.RUnlock()
	}
	return n
}

func (seg *segment) lenGens() int {
	n := 0
	for i := range seg.gens {
		st := &seg.gens[i]
		st.mu.RLock()
		n += len(st.m)
		st.mu.RUnlock()
	}
	return n
}

func (seg *segment) err() error {
	seg.mu.Lock()
	defer seg.mu.Unlock()
	return seg.appendErr
}

// compact rewrites this shard's segment to exactly one frame per key —
// the newest — via a temp file atomically renamed over path, then
// writes the shard's index-snapshot sidecar so the next Open loads the
// index without scanning a single frame. Frames are copied raw from
// their source logs (segment or legacy), byte-identical and
// CRC-reverified in flight — compaction neither decodes nor re-encodes
// a payload.
//
// Holding the shard's log lock throughout keeps this shard's
// concurrent appends queued in pending until the new handle is in
// place; appends to other shards never touch this lock. Entries
// installed at enqueue time under that same lock guarantee the
// collected index covers every frame drained into the old file, so
// nothing racing the rewrite is lost either side of the rename. The
// crash argument for the sidecar is ordering: the old sidecar is
// removed before the segment rename, the new one written (temp +
// rename) only after, so a crash anywhere in between leaves a
// sidecar-less segment that the next Open fully scans — never a
// sidecar describing bytes that are not there.
func (seg *segment) compact(path string) error {
	seg.mu.Lock()
	defer seg.mu.Unlock()
	seg.drainLocked()

	// Snapshot this shard's index slice. Stripe read-locks nest inside
	// seg.mu here; writers never hold a stripe lock while acquiring
	// seg.mu, so the order cannot invert.
	type recKV struct {
		k Key
		e entry
	}
	type genKV struct {
		k inference.Key
		e entry
	}
	var recKVs []recKV
	for i := range seg.recs {
		st := &seg.recs[i]
		st.mu.RLock()
		for k, e := range st.m {
			recKVs = append(recKVs, recKV{k, e})
		}
		st.mu.RUnlock()
	}
	var genKVs []genKV
	for i := range seg.gens {
		st := &seg.gens[i]
		st.mu.RLock()
		for k, e := range st.m {
			genKVs = append(genKVs, genKV{k, e})
		}
		st.mu.RUnlock()
	}
	sort.Slice(recKVs, func(i, j int) bool { return lessKeys(recKVs[i].k, recKVs[j].k) })
	sort.Slice(genKVs, func(i, j int) bool {
		return string(genKVs[i].k[:]) < string(genKVs[j].k[:])
	})

	tmpPath := path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}

	// Copy each newest frame raw, recording its offset in the rewrite.
	var off int64
	var buf []byte
	copyFrame := func(e entry) (int64, error) {
		if cap(buf) < int(e.n) {
			buf = make([]byte, e.n)
		}
		b := buf[:e.n]
		if err := e.src.pread(b, e.off); err != nil {
			return 0, fmt.Errorf("store: compact read: %w", err)
		}
		if n := binary.LittleEndian.Uint32(b[0:4]); n != e.n-frameHeaderSize ||
			binary.LittleEndian.Uint32(b[4:8]) != e.sum ||
			crc32.Checksum(b[frameHeaderSize:], castagnoli) != e.sum {
			return 0, fmt.Errorf("store: compact: %w at offset %d", errCorruptFrame, e.off)
		}
		if _, err := tmp.Write(b); err != nil {
			return 0, err
		}
		at := off
		off += int64(e.n)
		return at, nil
	}
	newRecs := make([]recKV, len(recKVs))
	for i, kv := range recKVs {
		at, err := copyFrame(kv.e)
		if err != nil {
			return fail(err)
		}
		newRecs[i] = recKV{kv.k, entry{off: at, n: kv.e.n, sum: kv.e.sum}}
	}
	newGens := make([]genKV, len(genKVs))
	for i, kv := range genKVs {
		at, err := copyFrame(kv.e)
		if err != nil {
			return fail(err)
		}
		newGens[i] = genKV{kv.k, entry{off: at, n: kv.e.n, sum: kv.e.sum}}
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}

	// Invalidate the old sidecar BEFORE the segment swap: between here
	// and the new sidecar's rename, a crash leaves a segment with no
	// sidecar — a full scan, never a lying fast path.
	if err := os.Remove(seg.idxPath); err != nil && !os.IsNotExist(err) {
		os.Remove(tmpPath)
		return fmt.Errorf("store: remove stale index sidecar: %w", err)
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return err
	}
	// Swap the handle to the compacted segment. If the reopen fails,
	// the old handle now points at the unlinked pre-compaction inode —
	// keep serving reads from it, but latch the error so appends stop
	// being trusted and Sync/Close surface it, instead of silently
	// persisting into an orphan.
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		if seg.appendErr == nil {
			seg.appendErr = fmt.Errorf("store: reopen after compaction: %w", err)
		}
		return err
	}
	newLF := newLogFile(f)

	// Point every index entry at its frame in the rewrite. Appends to
	// this shard are still queued on seg.mu, so the stripe contents are
	// exactly the collected set; concurrent Gets that raced the swap
	// retry via errLogClosed and land on the refreshed entries.
	for _, kv := range newRecs {
		st := &seg.recs[recStripeOf(kv.k)]
		st.mu.Lock()
		st.m[kv.k] = entry{src: newLF, off: kv.e.off, n: kv.e.n, sum: kv.e.sum}
		st.mu.Unlock()
	}
	for _, kv := range newGens {
		st := &seg.gens[genStripeOf(kv.k)]
		st.mu.Lock()
		st.m[kv.k] = entry{src: newLF, off: kv.e.off, n: kv.e.n, sum: kv.e.sum}
		st.mu.Unlock()
	}
	old := seg.lf
	seg.lf = newLF
	seg.size = off
	old.close()

	// The snapshot sidecar: written only after the compacted segment
	// is durably in place, covering exactly its off bytes. An empty
	// shard gets no sidecar — there is nothing to accelerate.
	if len(newRecs)+len(newGens) > 0 {
		snap := snapshot{segLen: off}
		snap.recs = make([]snapRec, len(newRecs))
		for i, kv := range newRecs {
			snap.recs[i] = snapRec{key: kv.k, off: kv.e.off, n: kv.e.n, sum: kv.e.sum}
		}
		snap.gens = make([]snapGen, len(newGens))
		for i, kv := range newGens {
			snap.gens[i] = snapGen{key: kv.k, off: kv.e.off, n: kv.e.n, sum: kv.e.sum}
		}
		if err := writeSnapshot(seg.idxPath, &snap); err != nil {
			return fmt.Errorf("store: write index sidecar: %w", err)
		}
	}
	return nil
}

// sync flushes pending batches and the segment to stable storage, and
// surfaces any latched append error.
func (seg *segment) sync() error {
	seg.mu.Lock()
	defer seg.mu.Unlock()
	seg.drainLocked()
	if seg.appendErr != nil {
		return seg.appendErr
	}
	return seg.lf.f.Sync()
}

// close syncs and releases the segment.
func (seg *segment) close() error {
	seg.mu.Lock()
	defer seg.mu.Unlock()
	seg.drainLocked()
	syncErr := seg.lf.f.Sync()
	closeErr := seg.lf.close()
	if seg.appendErr != nil {
		return seg.appendErr
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
