package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"

	"cloudeval/internal/inference"
)

// Index-snapshot sidecar (<segment>.idx): the shard's offset index,
// serialized at the end of a successful Compact so the next Open can
// load it and scan only the frames appended afterwards. The sidecar is
// pure acceleration — it holds offsets and checksums, never payloads —
// and Open trusts it only after full validation: magic, version, a
// trailing CRC-32C over everything before it, a recorded segment byte
// length no longer than the file on disk, and every entry in bounds.
// Anything less falls back to the frame-by-frame scan, which
// reproduces byte-identical state from the segment alone.
//
// Layout (all integers little-endian):
//
//	[6]  magic "CEVIDX"
//	[2]  version (currently 1)
//	[8]  segLen: segment byte length the index covers
//	[4]  record entry count
//	[4]  generation entry count
//	then per record entry (80 bytes):
//	     [32] test digest  [32] answer digest  [8] offset  [4] frame length  [4] payload CRC
//	then per generation entry (48 bytes):
//	     [32] generation key  [8] offset  [4] frame length  [4] payload CRC
//	[4]  CRC-32C of everything above
const (
	snapMagic   = "CEVIDX"
	snapVersion = 1

	snapHeaderSize = 6 + 2 + 8 + 4 + 4
	snapRecSize    = 32 + 32 + 8 + 4 + 4
	snapGenSize    = 32 + 8 + 4 + 4
)

// errBadSnapshot covers every way a sidecar can fail validation —
// corrupt, truncated, stale, wrong version. Callers treat them all the
// same: ignore the sidecar, scan the segment.
var errBadSnapshot = errors.New("store: invalid index sidecar")

type snapRec struct {
	key Key
	off int64
	n   uint32
	sum uint32
}

type snapGen struct {
	key inference.Key
	off int64
	n   uint32
	sum uint32
}

type snapshot struct {
	segLen int64
	recs   []snapRec
	gens   []snapGen
}

// readSnapshot loads and fully validates the sidecar at path against a
// segment of segSize bytes. Any defect — missing file, bad magic,
// unknown version, checksum mismatch, a recorded length exceeding the
// segment (the segment was truncated or torn after the snapshot), or
// an out-of-bounds entry — returns an error; the caller falls back to
// scanning.
func readSnapshot(path string, segSize int64) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < snapHeaderSize+4 {
		return nil, errBadSnapshot
	}
	body := data[:len(data)-4]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return nil, errBadSnapshot
	}
	if string(body[:6]) != snapMagic {
		return nil, errBadSnapshot
	}
	if binary.LittleEndian.Uint16(body[6:8]) != snapVersion {
		return nil, errBadSnapshot
	}
	segLen := int64(binary.LittleEndian.Uint64(body[8:16]))
	if segLen < 0 || segLen > segSize {
		// Stale: the segment no longer contains the bytes this index
		// describes (a tear or truncation behind the snapshot's back).
		return nil, errBadSnapshot
	}
	nRecs := int64(binary.LittleEndian.Uint32(body[16:20]))
	nGens := int64(binary.LittleEndian.Uint32(body[20:24]))
	if int64(len(body)) != snapHeaderSize+nRecs*snapRecSize+nGens*snapGenSize {
		return nil, errBadSnapshot
	}
	snap := &snapshot{segLen: segLen}
	p := body[snapHeaderSize:]
	entryOK := func(off int64, n uint32) bool {
		return off >= 0 && n > frameHeaderSize && off+int64(n) <= segLen
	}
	snap.recs = make([]snapRec, nRecs)
	for i := range snap.recs {
		e := &snap.recs[i]
		copy(e.key.Test[:], p[0:32])
		copy(e.key.Answer[:], p[32:64])
		e.off = int64(binary.LittleEndian.Uint64(p[64:72]))
		e.n = binary.LittleEndian.Uint32(p[72:76])
		e.sum = binary.LittleEndian.Uint32(p[76:80])
		if !entryOK(e.off, e.n) {
			return nil, errBadSnapshot
		}
		p = p[snapRecSize:]
	}
	snap.gens = make([]snapGen, nGens)
	for i := range snap.gens {
		e := &snap.gens[i]
		copy(e.key[:], p[0:32])
		e.off = int64(binary.LittleEndian.Uint64(p[32:40]))
		e.n = binary.LittleEndian.Uint32(p[40:44])
		e.sum = binary.LittleEndian.Uint32(p[44:48])
		if !entryOK(e.off, e.n) {
			return nil, errBadSnapshot
		}
		p = p[snapGenSize:]
	}
	return snap, nil
}

// writeSnapshot serializes the sidecar atomically: temp file, fsync,
// rename. A crash mid-write leaves either the previous sidecar state
// or a temp file nothing reads — never a half-written .idx.
func writeSnapshot(path string, snap *snapshot) error {
	size := snapHeaderSize + len(snap.recs)*snapRecSize + len(snap.gens)*snapGenSize + 4
	buf := make([]byte, 0, size)
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, snapVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(snap.segLen))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(snap.recs)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(snap.gens)))
	for _, e := range snap.recs {
		buf = append(buf, e.key.Test[:]...)
		buf = append(buf, e.key.Answer[:]...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.off))
		buf = binary.LittleEndian.AppendUint32(buf, e.n)
		buf = binary.LittleEndian.AppendUint32(buf, e.sum)
	}
	for _, e := range snap.gens {
		buf = append(buf, e.key[:]...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.off))
		buf = binary.LittleEndian.AppendUint32(buf, e.n)
		buf = binary.LittleEndian.AppendUint32(buf, e.sum)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))

	tmpPath := path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return err
	}
	return nil
}
