package store_test

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"cloudeval/internal/store"
	"cloudeval/internal/unittest"
)

func digests(test, answer string) (t, a [sha256.Size]byte) {
	return sha256.Sum256([]byte(test)), sha256.Sum256([]byte(answer))
}

// segmentPaths lists the store's shard segment files on disk, sorted.
func segmentPaths(t *testing.T, path string) []string {
	t.Helper()
	matches, err := filepath.Glob(path + ".s[0-9]*")
	if err != nil {
		t.Fatal(err)
	}
	segs := matches[:0]
	for _, m := range matches {
		// Index-snapshot sidecars (<seg>.idx) are derived acceleration
		// state, not record bytes.
		if !strings.HasSuffix(m, ".idx") {
			segs = append(segs, m)
		}
	}
	sort.Strings(segs)
	return segs
}

// dataFiles lists every file holding store records: the legacy
// single-file log at path (if present) plus all shard segments.
func dataFiles(t *testing.T, path string) []string {
	t.Helper()
	files := segmentPaths(t, path)
	if fi, err := os.Stat(path); err == nil && fi.Mode().IsRegular() {
		files = append([]string{path}, files...)
	}
	return files
}

// storeSize sums the on-disk record bytes across the legacy log and
// every shard segment — the sharded replacement for stat(path).Size().
func storeSize(t *testing.T, path string) int64 {
	t.Helper()
	var total int64
	for _, f := range dataFiles(t, path) {
		fi, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// fileSizes snapshots each data file's size, keyed by base name.
func fileSizes(t *testing.T, path string) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	for _, f := range dataFiles(t, path) {
		fi, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		out[f] = fi.Size()
	}
	return out
}

// copyStore clones the store rooted at src (meta, legacy log,
// segments) to an equivalent layout rooted at dst.
func copyStore(t *testing.T, src, dst string) {
	t.Helper()
	cp := func(from, to string) {
		data, err := os.ReadFile(from)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(to, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(src + ".shards"); err == nil {
		cp(src+".shards", dst+".shards")
	}
	if fi, err := os.Stat(src); err == nil && fi.Mode().IsRegular() {
		cp(src, dst)
	}
	for _, seg := range segmentPaths(t, src) {
		cp(seg, dst+strings.TrimPrefix(seg, src))
		if _, err := os.Stat(seg + ".idx"); err == nil {
			cp(seg+".idx", dst+strings.TrimPrefix(seg, src)+".idx")
		}
	}
}

// countFramesIn walks the frame structure of a log prefix and reports
// how many complete frames fit within limit bytes.
func countFramesIn(data []byte, limit int64) int {
	n := 0
	off := int64(0)
	for off+8 <= limit {
		payload := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		if off+8+payload > limit {
			break
		}
		n++
		off += 8 + payload
	}
	return n
}

func TestPutGetAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tk, ak := digests("echo unit_test_passed", "kind: Pod")
	want := unittest.Result{Passed: true, Output: "unit_test_passed\n", VirtualTime: 90 * time.Second}
	s.Put(tk, ak, want)
	if got, ok := s.Get(tk, ak); !ok || got != want {
		t.Fatalf("in-process Get = %+v, %v; want %+v", got, ok, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process sees the same record.
	s2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, ok := s2.Get(tk, ak); !ok || got != want {
		t.Fatalf("reopened Get = %+v, %v; want %+v", got, ok, want)
	}
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s2.Len())
	}
}

// TestShardedLayoutOnDisk pins the file layout a fresh store creates:
// a power-of-two shard count persisted in the meta file, one segment
// file per shard, and no legacy single-file log at path itself.
func TestShardedLayoutOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	n := s.Shards()
	if n < 8 || n&(n-1) != 0 {
		t.Fatalf("Shards() = %d, want a power of two >= 8", n)
	}
	if got := len(segmentPaths(t, path)); got != n {
		t.Fatalf("%d segment files on disk, want %d", got, n)
	}
	meta, err := os.ReadFile(path + ".shards")
	if err != nil {
		t.Fatalf("shard meta file missing: %v", err)
	}
	if got := strings.TrimSpace(string(meta)); got != fmt.Sprint(n) {
		t.Fatalf("meta records %q shards, want %d", got, n)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("fresh sharded store created a legacy file at %s", path)
	}
}

// TestShardCountStableAcrossGOMAXPROCS pins routing stability: a
// store created under high parallelism must reopen with the same
// shard count on a smaller machine — the count is a property of the
// store, not of the opening process.
func TestShardCountStableAcrossGOMAXPROCS(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	prev := runtime.GOMAXPROCS(16)
	defer runtime.GOMAXPROCS(prev)
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	created := s.Shards()
	if created < 32 {
		t.Fatalf("Shards() = %d under GOMAXPROCS=16, want >= 32", created)
	}
	tk, ak := digests("t", "a")
	s.Put(tk, ak, unittest.Result{Passed: true})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	runtime.GOMAXPROCS(1)
	s2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Shards() != created {
		t.Fatalf("reopened with %d shards under GOMAXPROCS=1, created with %d", s2.Shards(), created)
	}
	if _, ok := s2.Get(tk, ak); !ok {
		t.Fatal("record lost across GOMAXPROCS change")
	}
}

// TestShardMetaRebuiltFromSegments simulates losing the meta file: the
// count is re-inferred from the segment files on disk, so records keep
// routing to the shards that hold them.
func TestShardMetaRebuiltFromSegments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	n := s.Shards()
	const records = 32
	for i := 0; i < records; i++ {
		tk, ak := digests(fmt.Sprintf("t-%d", i), fmt.Sprintf("a-%d", i))
		s.Put(tk, ak, unittest.Result{Passed: true})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path + ".shards"); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Shards() != n {
		t.Fatalf("inferred %d shards from segments, created with %d", s2.Shards(), n)
	}
	if s2.Len() != records {
		t.Fatalf("replayed %d records after meta loss, want %d", s2.Len(), records)
	}
}

func TestErroredResultsNeverPersisted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tk, ak := digests("t", "a")
	s.Put(tk, ak, unittest.Result{Err: fmt.Errorf("cluster outage")})
	if _, ok := s.Get(tk, ak); ok {
		t.Fatal("errored result was persisted")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}

func TestIdenticalRecordDoesNotGrowLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tk, ak := digests("t", "a")
	res := unittest.Result{Passed: true}
	s.Put(tk, ak, res)
	s.Put(tk, ak, res)
	s.Put(tk, ak, res)
	if got := s.Appended(); got != 1 {
		t.Fatalf("appended %d records for identical re-puts, want 1", got)
	}
}

// TestCrashSafeReopen is the crash contract: a record torn mid-append
// (simulated by truncating its shard's segment at every possible byte
// boundary of the final frame) is dropped on Open — never fatal — and
// every record before it, in that shard and every other, survives.
func TestCrashSafeReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tk1, ak1 := digests("test-1", "answer-1")
	tk2, ak2 := digests("test-2", "answer-2")
	s.Put(tk1, ak1, unittest.Result{Passed: true, VirtualTime: time.Second})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	before := fileSizes(t, path)
	s.Put(tk2, ak2, unittest.Result{Passed: false, Output: "boom"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Find the segment the second record landed in.
	var grown string
	var intactSize int64
	for f, sz := range fileSizes(t, path) {
		if sz > before[f] {
			grown, intactSize = f, before[f]
		}
	}
	if grown == "" {
		t.Fatal("second record grew no segment")
	}
	full, err := os.ReadFile(grown)
	if err != nil {
		t.Fatal(err)
	}

	for cut := intactSize + 1; cut < int64(len(full)); cut++ {
		torn := filepath.Join(dir, fmt.Sprintf("torn-%d.store", cut))
		copyStore(t, path, torn)
		tornSeg := torn + strings.TrimPrefix(grown, path)
		if err := os.WriteFile(tornSeg, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := store.Open(torn)
		if err != nil {
			t.Fatalf("cut at %d: Open failed: %v", cut, err)
		}
		if _, ok := s2.Get(tk1, ak1); !ok {
			t.Fatalf("cut at %d: intact first record lost", cut)
		}
		if _, ok := s2.Get(tk2, ak2); ok {
			t.Fatalf("cut at %d: torn tail record survived", cut)
		}
		// The torn bytes were truncated away: appends after a crash
		// recovery must replay cleanly too.
		s2.Put(tk2, ak2, unittest.Result{Passed: true})
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
		s3, err := store.Open(torn)
		if err != nil {
			t.Fatalf("cut at %d: reopen after recovery append: %v", cut, err)
		}
		if got, ok := s3.Get(tk2, ak2); !ok || !got.Passed {
			t.Fatalf("cut at %d: post-recovery append lost", cut)
		}
		s3.Close()
	}
}

// TestCorruptTailDropped flips a byte in a shard's last record: the
// CRC rejects the frame and Open drops it (plus everything after it in
// that shard) while other shards replay fully.
func TestCorruptTailDropped(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tk1, ak1 := digests("test-1", "answer-1")
	tk2, ak2 := digests("test-2", "answer-2")
	s.Put(tk1, ak1, unittest.Result{Passed: true})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	before := fileSizes(t, path)
	s.Put(tk2, ak2, unittest.Result{Passed: true})
	s.Close()

	var grown string
	var intactSize int64
	for f, sz := range fileSizes(t, path) {
		if sz > before[f] {
			grown, intactSize = f, before[f]
		}
	}
	if grown == "" {
		t.Fatal("second record grew no segment")
	}
	data, err := os.ReadFile(grown)
	if err != nil {
		t.Fatal(err)
	}
	data[intactSize+12] ^= 0xFF // inside the second record's payload
	if err := os.WriteFile(grown, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Open(path)
	if err != nil {
		t.Fatalf("Open on corrupt tail: %v", err)
	}
	defer s2.Close()
	if _, ok := s2.Get(tk1, ak1); !ok {
		t.Fatal("intact record before corruption lost")
	}
	if _, ok := s2.Get(tk2, ak2); ok {
		t.Fatal("corrupt record served")
	}
}

// TestCompactKeepsNewestPerKey re-records one key with a changed
// outcome, compacts, and requires the newest record to win — both in
// memory and on a replay of the compacted segments.
func TestCompactKeepsNewestPerKey(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tk, ak := digests("test", "answer")
	tk2, ak2 := digests("other-test", "other-answer")
	s.Put(tk, ak, unittest.Result{Passed: false, Output: "flaky first run"})
	s.Put(tk2, ak2, unittest.Result{Passed: true})
	s.Put(tk, ak, unittest.Result{Passed: true, Output: "newest wins"})

	before := storeSize(t, path)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if after := storeSize(t, path); after >= before {
		t.Errorf("compaction did not shrink the store: %d -> %d bytes", before, after)
	}
	if got, ok := s.Get(tk, ak); !ok || !got.Passed || got.Output != "newest wins" {
		t.Fatalf("post-compact Get = %+v, %v", got, ok)
	}
	// The store stays writable after the handle swap.
	tk3, ak3 := digests("post-compact", "append")
	s.Put(tk3, ak3, unittest.Result{Passed: true})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 3 {
		t.Fatalf("replayed %d keys, want 3", s2.Len())
	}
	if got, ok := s2.Get(tk, ak); !ok || !got.Passed || got.Output != "newest wins" {
		t.Fatalf("replayed Get = %+v, %v; want the newest record", got, ok)
	}
	if got, ok := s2.Get(tk3, ak3); !ok || !got.Passed {
		t.Fatal("post-compact append lost")
	}
}

// TestCompactConcurrentWithAppends races repeated full compactions
// against appenders hammering every shard: nothing deadlocks, nothing
// is lost, and the final replay sees every record — the non-blocking
// per-shard compaction claim exercised under -race.
func TestCompactConcurrentWithAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const perWriter = 64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Appenders hammer all shards while Compact runs several times.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tk, ak := digests(fmt.Sprintf("cc-test-%d", w), fmt.Sprintf("cc-answer-%d-%d", w, i))
				s.Put(tk, ak, unittest.Result{Passed: true})
			}
		}(w)
	}
	var compactErr error
	var cwg sync.WaitGroup
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Compact(); err != nil {
				compactErr = err
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	cwg.Wait()
	if compactErr != nil {
		t.Fatal(compactErr)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != writers*perWriter {
		t.Fatalf("replayed %d keys after concurrent compaction, want %d", s2.Len(), writers*perWriter)
	}
}

// TestTornMultiFrameBatchTruncates is the group-commit crash contract,
// run per shard: a batch of several frames written as one syscall and
// torn at any byte boundary must recover to the last intact frame of
// that shard — and every other shard must replay fully. The per-frame
// CRC framing, not the batch, is the unit of crash safety; a torn
// tail in shard k loses nothing in shards != k.
func TestTornMultiFrameBatchTruncates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Force multi-frame flushes: concurrent writers gated to enqueue
	// together so each shard's committer drains several frames in one
	// batch.
	const writers = 32
	var start, wg sync.WaitGroup
	start.Add(1)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			tk, ak := digests(fmt.Sprintf("batch-test-%d", i), fmt.Sprintf("batch-answer-%d", i))
			s.Put(tk, ak, unittest.Result{Passed: true, Output: fmt.Sprintf("out-%d", i)})
		}(i)
	}
	start.Done()
	wg.Wait()
	total := s.Len()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear each shard's segment at byte boundaries; every truncated
	// prefix must open cleanly, hold exactly the frames of that shard
	// that fit intact, and lose nothing from any other shard.
	tornID := 0
	for _, seg := range segmentPaths(t, path) {
		full, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if len(full) == 0 {
			continue
		}
		segFrames := countFramesIn(full, int64(len(full)))
		for cut := int64(0); cut < int64(len(full)); cut += 7 {
			tornID++
			torn := filepath.Join(dir, fmt.Sprintf("torn-%d.store", tornID))
			copyStore(t, path, torn)
			tornSeg := torn + strings.TrimPrefix(seg, path)
			if err := os.WriteFile(tornSeg, full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			s2, err := store.Open(torn)
			if err != nil {
				t.Fatalf("%s cut at %d: Open failed: %v", filepath.Base(seg), cut, err)
			}
			got := s2.Len()
			s2.Close()
			st, err := os.Stat(tornSeg)
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() > cut {
				t.Fatalf("%s cut at %d: recovered segment grew to %d bytes", filepath.Base(seg), cut, st.Size())
			}
			want := total - segFrames + countFramesIn(full, cut)
			if got != want {
				t.Fatalf("%s cut at %d: recovered %d records, want %d (torn shard holds %d of %d)",
					filepath.Base(seg), cut, got, want, segFrames, total)
			}
		}
	}
	if tornID == 0 {
		t.Fatal("no non-empty segment files to tear")
	}
}

// TestGroupCommitBatchesConcurrentAppends verifies the per-shard
// committers actually coalesce: with many concurrent writers, flush
// batches (syscalls) number strictly fewer than appended frames, and
// every record still lands durably.
func TestGroupCommitBatchesConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 32
	const perWriter = 16
	var start, wg sync.WaitGroup
	start.Add(1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start.Wait()
			for i := 0; i < perWriter; i++ {
				tk, ak := digests(fmt.Sprintf("gc-test-%d", w), fmt.Sprintf("gc-answer-%d-%d", w, i))
				s.Put(tk, ak, unittest.Result{Passed: true})
			}
		}(w)
	}
	start.Done()
	wg.Wait()
	appended, flushes := s.Appended(), s.Flushes()
	if appended != writers*perWriter {
		t.Fatalf("appended %d, want %d", appended, writers*perWriter)
	}
	if flushes <= 0 || flushes > appended {
		t.Fatalf("flushes = %d, want in [1, %d]", flushes, appended)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != writers*perWriter {
		t.Fatalf("replayed %d keys, want %d", s2.Len(), writers*perWriter)
	}
}

// TestShardStatsAccounting pins the monitoring surface: per-shard
// record counts sum to Len/GenLen and per-shard append/flush counters
// sum to the aggregates.
func TestShardStatsAccounting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const records = 64
	for i := 0; i < records; i++ {
		tk, ak := digests(fmt.Sprintf("ss-test-%d", i), fmt.Sprintf("ss-answer-%d", i))
		s.Put(tk, ak, unittest.Result{Passed: true})
	}
	stats := s.ShardStats()
	if len(stats) != s.Shards() {
		t.Fatalf("ShardStats returned %d entries, want %d", len(stats), s.Shards())
	}
	var recs int
	var appended, flushes int64
	spread := 0
	for _, st := range stats {
		recs += st.Records
		appended += st.Appended
		flushes += st.Flushes
		if st.Records > 0 {
			spread++
		}
	}
	if recs != s.Len() || recs != records {
		t.Fatalf("per-shard records sum %d, want Len %d = %d", recs, s.Len(), records)
	}
	if appended != s.Appended() {
		t.Fatalf("per-shard appended sum %d, want %d", appended, s.Appended())
	}
	if flushes != s.Flushes() {
		t.Fatalf("per-shard flushes sum %d, want %d", flushes, s.Flushes())
	}
	// 64 digest-distributed keys across >= 8 shards: the routing would
	// have to be badly broken for everything to land in one shard.
	if spread < 2 {
		t.Fatalf("all %d records landed in %d shard(s) — routing is not spreading keys", records, spread)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tk, ak := digests(fmt.Sprintf("test-%d", i%8), fmt.Sprintf("answer-%d", i))
			s.Put(tk, ak, unittest.Result{Passed: i%2 == 0})
			s.Get(tk, ak)
		}(i)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != n {
		t.Fatalf("replayed %d keys, want %d", s2.Len(), n)
	}
}
