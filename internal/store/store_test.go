package store_test

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cloudeval/internal/store"
	"cloudeval/internal/unittest"
)

func digests(test, answer string) (t, a [sha256.Size]byte) {
	return sha256.Sum256([]byte(test)), sha256.Sum256([]byte(answer))
}

func TestPutGetAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tk, ak := digests("echo unit_test_passed", "kind: Pod")
	want := unittest.Result{Passed: true, Output: "unit_test_passed\n", VirtualTime: 90 * time.Second}
	s.Put(tk, ak, want)
	if got, ok := s.Get(tk, ak); !ok || got != want {
		t.Fatalf("in-process Get = %+v, %v; want %+v", got, ok, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process sees the same record.
	s2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, ok := s2.Get(tk, ak); !ok || got != want {
		t.Fatalf("reopened Get = %+v, %v; want %+v", got, ok, want)
	}
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s2.Len())
	}
}

func TestErroredResultsNeverPersisted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tk, ak := digests("t", "a")
	s.Put(tk, ak, unittest.Result{Err: fmt.Errorf("cluster outage")})
	if _, ok := s.Get(tk, ak); ok {
		t.Fatal("errored result was persisted")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}

func TestIdenticalRecordDoesNotGrowLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tk, ak := digests("t", "a")
	res := unittest.Result{Passed: true}
	s.Put(tk, ak, res)
	s.Put(tk, ak, res)
	s.Put(tk, ak, res)
	if got := s.Appended(); got != 1 {
		t.Fatalf("appended %d records for identical re-puts, want 1", got)
	}
}

// TestCrashSafeReopen is the crash contract: a record torn mid-append
// (simulated by truncating the log at every possible byte boundary of
// the final record) is dropped on Open — never fatal — and every
// record before it survives intact.
func TestCrashSafeReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tk1, ak1 := digests("test-1", "answer-1")
	tk2, ak2 := digests("test-2", "answer-2")
	s.Put(tk1, ak1, unittest.Result{Passed: true, VirtualTime: time.Second})
	intact, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(tk2, ak2, unittest.Result{Passed: false, Output: "boom"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := intact.Size() + 1; cut < int64(len(full)); cut++ {
		torn := filepath.Join(dir, fmt.Sprintf("torn-%d.store", cut))
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := store.Open(torn)
		if err != nil {
			t.Fatalf("cut at %d: Open failed: %v", cut, err)
		}
		if _, ok := s2.Get(tk1, ak1); !ok {
			t.Fatalf("cut at %d: intact first record lost", cut)
		}
		if _, ok := s2.Get(tk2, ak2); ok {
			t.Fatalf("cut at %d: torn tail record survived", cut)
		}
		// The torn bytes were truncated away: appends after a crash
		// recovery must replay cleanly too.
		s2.Put(tk2, ak2, unittest.Result{Passed: true})
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
		s3, err := store.Open(torn)
		if err != nil {
			t.Fatalf("cut at %d: reopen after recovery append: %v", cut, err)
		}
		if got, ok := s3.Get(tk2, ak2); !ok || !got.Passed {
			t.Fatalf("cut at %d: post-recovery append lost", cut)
		}
		s3.Close()
	}
}

// TestCorruptTailDropped flips a byte in the last record's payload: the
// CRC rejects the frame and Open drops it plus everything after.
func TestCorruptTailDropped(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tk1, ak1 := digests("test-1", "answer-1")
	tk2, ak2 := digests("test-2", "answer-2")
	s.Put(tk1, ak1, unittest.Result{Passed: true})
	intact, _ := os.Stat(path)
	s.Put(tk2, ak2, unittest.Result{Passed: true})
	s.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[intact.Size()+12] ^= 0xFF // inside the second record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Open(path)
	if err != nil {
		t.Fatalf("Open on corrupt tail: %v", err)
	}
	defer s2.Close()
	if _, ok := s2.Get(tk1, ak1); !ok {
		t.Fatal("intact record before corruption lost")
	}
	if _, ok := s2.Get(tk2, ak2); ok {
		t.Fatal("corrupt record served")
	}
}

// TestCompactKeepsNewestPerKey re-records one key with a changed
// outcome, compacts, and requires the newest record to win — both in
// memory and on a replay of the compacted log.
func TestCompactKeepsNewestPerKey(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tk, ak := digests("test", "answer")
	tk2, ak2 := digests("other-test", "other-answer")
	s.Put(tk, ak, unittest.Result{Passed: false, Output: "flaky first run"})
	s.Put(tk2, ak2, unittest.Result{Passed: true})
	s.Put(tk, ak, unittest.Result{Passed: true, Output: "newest wins"})

	before, _ := os.Stat(path)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink the log: %d -> %d bytes", before.Size(), after.Size())
	}
	if got, ok := s.Get(tk, ak); !ok || !got.Passed || got.Output != "newest wins" {
		t.Fatalf("post-compact Get = %+v, %v", got, ok)
	}
	// The store stays writable after the handle swap.
	tk3, ak3 := digests("post-compact", "append")
	s.Put(tk3, ak3, unittest.Result{Passed: true})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 3 {
		t.Fatalf("replayed %d keys, want 3", s2.Len())
	}
	if got, ok := s2.Get(tk, ak); !ok || !got.Passed || got.Output != "newest wins" {
		t.Fatalf("replayed Get = %+v, %v; want the newest record", got, ok)
	}
	if got, ok := s2.Get(tk3, ak3); !ok || !got.Passed {
		t.Fatal("post-compact append lost")
	}
}

// TestTornMultiFrameBatchTruncates is the group-commit crash
// contract: a batch of several frames written as one syscall and torn
// at ANY byte boundary must recover to the last intact frame — the
// per-frame CRC framing, not the batch, is the unit of crash safety.
func TestTornMultiFrameBatchTruncates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Force a multi-frame flush: concurrent writers gated to enqueue
	// together so the committer drains several frames in one batch.
	const writers = 16
	var start, wg sync.WaitGroup
	start.Add(1)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			tk, ak := digests(fmt.Sprintf("batch-test-%d", i), fmt.Sprintf("batch-answer-%d", i))
			s.Put(tk, ak, unittest.Result{Passed: true, Output: fmt.Sprintf("out-%d", i)})
		}(i)
	}
	start.Done()
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Tear the log at every byte boundary; each truncated prefix must
	// open cleanly and hold exactly the frames that fit intact.
	for cut := int64(0); cut < int64(len(full)); cut += 7 {
		torn := filepath.Join(dir, fmt.Sprintf("torn-%d.store", cut))
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := store.Open(torn)
		if err != nil {
			t.Fatalf("cut at %d: Open failed: %v", cut, err)
		}
		got := s2.Len()
		s2.Close()
		st, err := os.Stat(torn)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() > cut {
			t.Fatalf("cut at %d: recovered log grew to %d bytes", cut, st.Size())
		}
		// Every intact frame before the cut survives. Frames are all
		// the same size here only by accident, so derive the expected
		// count by replaying the intact prefix structure: each record
		// is header + payload; count how many full records fit.
		want := 0
		off := int64(0)
		for off+8 <= cut {
			n := int64(full[off]) | int64(full[off+1])<<8 | int64(full[off+2])<<16 | int64(full[off+3])<<24
			if off+8+n > cut {
				break
			}
			want++
			off += 8 + n
		}
		if got != want {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, got, want)
		}
	}
}

// TestGroupCommitBatchesConcurrentAppends verifies the committer
// actually coalesces: with many concurrent writers, flush batches
// (syscalls) number strictly fewer than appended frames, and every
// record still lands durably.
func TestGroupCommitBatchesConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 32
	const perWriter = 16
	var start, wg sync.WaitGroup
	start.Add(1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start.Wait()
			for i := 0; i < perWriter; i++ {
				tk, ak := digests(fmt.Sprintf("gc-test-%d", w), fmt.Sprintf("gc-answer-%d-%d", w, i))
				s.Put(tk, ak, unittest.Result{Passed: true})
			}
		}(w)
	}
	start.Done()
	wg.Wait()
	appended, flushes := s.Appended(), s.Flushes()
	if appended != writers*perWriter {
		t.Fatalf("appended %d, want %d", appended, writers*perWriter)
	}
	if flushes <= 0 || flushes > appended {
		t.Fatalf("flushes = %d, want in [1, %d]", flushes, appended)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != writers*perWriter {
		t.Fatalf("replayed %d keys, want %d", s2.Len(), writers*perWriter)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tk, ak := digests(fmt.Sprintf("test-%d", i%8), fmt.Sprintf("answer-%d", i))
			s.Put(tk, ak, unittest.Result{Passed: i%2 == 0})
			s.Get(tk, ak)
		}(i)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != n {
		t.Fatalf("replayed %d keys, want %d", s2.Len(), n)
	}
}
