// Package registry models the Docker image distribution path of the
// evaluation platform (Figure 4): an image catalog with realistic
// sizes, a shared internet uplink with fixed bandwidth, per-worker
// local Docker caches, and the optional shared pull-through registry
// cache on the master node.
//
// Time here is virtual: pulls account seconds against a discrete-event
// simulation, which is how Figure 5's evaluation-time curves are
// reproduced without moving real bytes.
package registry

import (
	"sort"
	"strings"
	"time"

	"cloudeval/internal/dataset"
	"cloudeval/internal/scenario"
	"cloudeval/internal/yamlx"
)

// Catalog maps image references to sizes in MB. Unknown images fall
// back to DefaultImageMB.
var Catalog = map[string]float64{
	"nginx:latest":              67,
	"nginx:1.25":                67,
	"httpd:2.4":                 59,
	"redis:7":                   45,
	"node:20-alpine":            55,
	"python:3.11-slim":          48,
	"golang:1.21-alpine":        98,
	"memcached:1.6":             30,
	"busybox:1.36":              2,
	"perl:5.34.0":               142,
	"mysql:latest":              188,
	"postgres:latest":           160,
	"mariadb:latest":            120,
	"mongo:latest":              208,
	"envoyproxy/envoy:v1.27":    62,
	"istio/pilot:1.19":          85,
	"registry.k8s.io/pause:3.9": 1,
	"docker/compose-bin:v2.24":  25,
	"alpine/helm:3.14":          78,
}

// DefaultImageMB is the size assumed for uncataloged images.
const DefaultImageMB = 60

// NormalizeRef canonicalizes an image reference the way Docker does:
// a reference without a tag (or digest) means ":latest". Manifests
// routinely write bare "nginx"; without normalization those miss the
// catalog and silently fall back to DefaultImageMB.
func NormalizeRef(image string) string {
	// The tag separator is a colon after the last slash; a colon before
	// it is a registry port (localhost:5000/app), and "@" marks a
	// digest reference, which is already fully qualified.
	rest := image
	if i := strings.LastIndexByte(image, '/'); i >= 0 {
		rest = image[i+1:]
	}
	if strings.ContainsAny(rest, ":@") {
		return image
	}
	return image + ":latest"
}

// SizeMB returns an image's size, normalizing untagged references so
// "nginx" hits the "nginx:latest" catalog entry.
func SizeMB(image string) float64 {
	if s, ok := Catalog[NormalizeRef(image)]; ok {
		return s
	}
	return DefaultImageMB
}

// ImagesFor extracts the container images a problem's environment must
// pull: every container image in the reference manifest, plus the tool
// images the problem's workload family implies (Envoy problems run the
// Envoy image; every Kubernetes test node pulls the pause image) —
// declared by the family's scenario backend.
func ImagesFor(p dataset.Problem) []string {
	set := map[string]bool{}
	docs, err := yamlx.ParseAllCached([]byte(p.ReferenceYAML))
	if err == nil {
		for _, d := range docs {
			collectImages(d, set)
		}
	}
	for _, img := range scenario.For(p.Category).ImpliedImages {
		set[img] = true
	}
	out := make([]string, 0, len(set))
	for img := range set {
		out = append(out, img)
	}
	sort.Strings(out)
	return out
}

func collectImages(n *yamlx.Node, set map[string]bool) {
	if n == nil {
		return
	}
	switch n.Kind {
	case yamlx.MapKind:
		for _, e := range n.Entries {
			if e.Key == "image" && e.Value.IsScalar() {
				img := e.Value.ScalarString()
				if img != "" && !strings.ContainsAny(img, " \t") {
					set[img] = true
				}
				continue
			}
			collectImages(e.Value, set)
		}
	case yamlx.SeqKind:
		for _, it := range n.Items {
			collectImages(it, set)
		}
	}
}

// Link is a shared, serialized network link: transfers queue behind one
// another, modeling bandwidth contention among workers.
type Link struct {
	// BandwidthMbps is the link capacity.
	BandwidthMbps float64
	busyUntil     time.Duration
	bytesMB       float64
}

// NewLink builds a link with the given capacity.
func NewLink(mbps float64) *Link { return &Link{BandwidthMbps: mbps} }

// Transfer schedules sizeMB of traffic requested at virtual time start
// and returns when the transfer completes. Requests serialize on the
// link, so a busy link delays later transfers.
func (l *Link) Transfer(start time.Duration, sizeMB float64) (end time.Duration) {
	if start > l.busyUntil {
		l.busyUntil = start
	}
	seconds := sizeMB * 8 / l.BandwidthMbps
	l.busyUntil += time.Duration(seconds * float64(time.Second))
	l.bytesMB += sizeMB
	return l.busyUntil
}

// TotalMB reports the bytes the link carried.
func (l *Link) TotalMB() float64 { return l.bytesMB }

// Reset clears the link for another run.
func (l *Link) Reset() {
	l.busyUntil = 0
	l.bytesMB = 0
}

// PullThroughCache is the master-side shared registry cache: the first
// request for an image pays the WAN; later requests are served over the
// (much faster) cluster LAN.
type PullThroughCache struct {
	WAN    *Link
	LAN    *Link
	stored map[string]bool

	Hits   int
	Misses int
}

// NewPullThroughCache wires a cache between a WAN and a LAN link.
func NewPullThroughCache(wan, lan *Link) *PullThroughCache {
	return &PullThroughCache{WAN: wan, LAN: lan, stored: make(map[string]bool)}
}

// Pull fetches an image at virtual time start and returns the completion
// time.
func (c *PullThroughCache) Pull(image string, start time.Duration) time.Duration {
	return c.PullBytes(image, SizeMB(image), start)
}

// PullBytes fetches sizeMB worth of an image's layers (callers discount
// for base layers the worker already holds).
func (c *PullThroughCache) PullBytes(image string, sizeMB float64, start time.Duration) time.Duration {
	if c.stored[image] {
		c.Hits++
		return c.LAN.Transfer(start, sizeMB)
	}
	c.Misses++
	c.stored[image] = true
	end := c.WAN.Transfer(start, sizeMB)
	return c.LAN.Transfer(end, sizeMB)
}

// DirectPuller models the no-cache configuration: every worker request
// goes straight to the internet.
type DirectPuller struct {
	WAN *Link
}

// Pull fetches an image over the WAN.
func (d *DirectPuller) Pull(image string, start time.Duration) time.Duration {
	return d.PullBytes(image, SizeMB(image), start)
}

// PullBytes fetches sizeMB worth of an image's layers over the WAN.
func (d *DirectPuller) PullBytes(image string, sizeMB float64, start time.Duration) time.Duration {
	return d.WAN.Transfer(start, sizeMB)
}

// Puller abstracts the two distribution paths.
type Puller interface {
	Pull(image string, start time.Duration) time.Duration
	PullBytes(image string, sizeMB float64, start time.Duration) time.Duration
}
