package registry

import (
	"testing"
	"time"

	"cloudeval/internal/dataset"
	"cloudeval/internal/scenario"
)

// TestImagesForExtractsContainers checks every problem's image set
// includes the tool images its family's scenario backend implies —
// the registry-driven generalization of the old per-category switch.
func TestImagesForExtractsContainers(t *testing.T) {
	for _, p := range dataset.Generate() {
		imgs := ImagesFor(p)
		if len(imgs) == 0 {
			t.Errorf("%s: no images derived", p.ID)
		}
		for _, implied := range scenario.For(p.Category).ImpliedImages {
			if !contains(imgs, implied) {
				t.Errorf("%s: family-implied image %s missing: %v", p.ID, implied, imgs)
			}
		}
	}
}

func TestNormalizeRef(t *testing.T) {
	cases := map[string]string{
		"nginx":                   "nginx:latest",
		"nginx:1.25":              "nginx:1.25",
		"envoyproxy/envoy":        "envoyproxy/envoy:latest",
		"envoyproxy/envoy:v1.27":  "envoyproxy/envoy:v1.27",
		"localhost:5000/app":      "localhost:5000/app:latest",
		"localhost:5000/app:v2":   "localhost:5000/app:v2",
		"repo/app@sha256:deadbee": "repo/app@sha256:deadbee",
	}
	for in, want := range cases {
		if got := NormalizeRef(in); got != want {
			t.Errorf("NormalizeRef(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestSizeMBNormalizesUntagged is the satellite fix: a bare "nginx"
// must hit the nginx:latest catalog entry instead of silently falling
// back to DefaultImageMB.
func TestSizeMBNormalizesUntagged(t *testing.T) {
	if got := SizeMB("nginx"); got != Catalog["nginx:latest"] {
		t.Errorf("SizeMB(nginx) = %v, want catalog nginx:latest = %v", got, Catalog["nginx:latest"])
	}
	if got := SizeMB("mysql"); got != Catalog["mysql:latest"] {
		t.Errorf("SizeMB(mysql) = %v, want catalog mysql:latest = %v", got, Catalog["mysql:latest"])
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

func TestSizeMBFallback(t *testing.T) {
	if SizeMB("nginx:latest") != 67 {
		t.Error("catalog lookup broken")
	}
	if SizeMB("unknown/image:tag") != DefaultImageMB {
		t.Error("fallback size broken")
	}
}

func TestLinkSerializesTransfers(t *testing.T) {
	l := NewLink(100)          // 100 Mbps -> 12.5 MB/s
	end1 := l.Transfer(0, 125) // 10 s
	if end1 != 10*time.Second {
		t.Errorf("first transfer end = %v", end1)
	}
	// A transfer requested at t=0 while the link is busy queues.
	end2 := l.Transfer(0, 125)
	if end2 != 20*time.Second {
		t.Errorf("queued transfer end = %v", end2)
	}
	// A transfer requested later starts then.
	end3 := l.Transfer(30*time.Second, 125)
	if end3 != 40*time.Second {
		t.Errorf("later transfer end = %v", end3)
	}
	if l.TotalMB() != 375 {
		t.Errorf("traffic = %v", l.TotalMB())
	}
	l.Reset()
	if l.TotalMB() != 0 {
		t.Error("reset failed")
	}
}

func TestPullThroughCacheHitsAndMisses(t *testing.T) {
	wan := NewLink(100)
	lan := NewLink(1000)
	c := NewPullThroughCache(wan, lan)
	end1 := c.Pull("nginx:latest", 0)
	if c.Misses != 1 || c.Hits != 0 {
		t.Fatalf("after first pull: hits=%d misses=%d", c.Hits, c.Misses)
	}
	end2 := c.Pull("nginx:latest", end1)
	if c.Hits != 1 {
		t.Fatalf("second pull should hit: hits=%d", c.Hits)
	}
	// LAN transfers are an order of magnitude faster.
	if end2-end1 >= end1 {
		t.Errorf("cached pull (%v) should be much faster than cold pull (%v)", end2-end1, end1)
	}
	// The WAN only carried the image once.
	if wan.TotalMB() != SizeMB("nginx:latest") {
		t.Errorf("wan traffic = %v", wan.TotalMB())
	}
}

func TestDirectPullerAlwaysWAN(t *testing.T) {
	wan := NewLink(100)
	d := &DirectPuller{WAN: wan}
	d.Pull("redis:7", 0)
	d.Pull("redis:7", 0)
	if wan.TotalMB() != 2*SizeMB("redis:7") {
		t.Errorf("direct pulls must both cross the WAN: %v MB", wan.TotalMB())
	}
}
