// Package related renders Table 7: the comparison of CloudEval-YAML to
// other code-generation benchmarks, transcribed from §5.
package related

import (
	"fmt"
	"strings"
)

// Benchmark is one comparison row.
type Benchmark struct {
	Name       string
	Domain     string
	EvalMetric string
	Problems   string
	DataSource string
	Languages  string
}

// Table7 is the survey of §5.
var Table7 = []Benchmark{
	{"HumanEval", "Python algorithm", "Unit tests", "164", "Hand-written", "EN"},
	{"MBPP", "Basic Python", "Unit tests", "974", "Hand-verified", "EN"},
	{"WikiSQL", "SQL query", "Execution Accuracy", "88k", "Hand-annotated", "EN"},
	{"CodeApex", "C++ algorithm", "Unit tests", "476", "Online judge system", "EN, ZH"},
	{"MCoNaLa", "Python", "-", "896", "StackOverflow", "EN, ES, JA, RU"},
	{"Lyra", "Python w/ embed. SQL", "Code exec./AST", "2000", "GitHub", "EN, ZH"},
	{"APPS", "Python", "Unit tests", "10k", "Codeforces, Kattis", "EN"},
	{"CoNaLa", "Python, Java", "-", "2879", "StackOverflow", "EN"},
	{"Django", "Python Django", "Human study", "19k", "Django codebase", "EN"},
	{"Shellcode_IA32", "Assembly", "-", "3200", "shell-storm, Exploit", "EN"},
	{"CodeXGLUE", "Python, Java", "-", "645k", "Various sources", "EN"},
	{"CONCODE", "Java classes", "-", "100k", "GitHub repositories", "EN"},
	{"DS-1000", "Python data science", "Unit tests", "1000", "StackOverflow", "EN"},
	{"Ansible", "YAML for Ansible", "K-V match", "112k", "GitHub, GitLab", "EN"},
	{"CloudEval-YAML", "YAML for Cloud apps", "Unit tests, K-V wildcard", "1011", "Hand-written (337/1011)", "EN, ZH"},
}

// Format renders the table.
func Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-22s %-26s %-9s %-24s %s\n",
		"Dataset", "Problem Domain", "Special Eval. Metric", "Problems", "Data Source", "Languages")
	for _, r := range Table7 {
		fmt.Fprintf(&b, "%-16s %-22s %-26s %-9s %-24s %s\n",
			r.Name, r.Domain, r.EvalMetric, r.Problems, r.DataSource, r.Languages)
	}
	return b.String()
}
