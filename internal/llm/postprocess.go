package llm

import (
	"strings"

	"cloudeval/internal/scenario"
)

// Postprocess extracts clean YAML from a raw model response, applying
// the policies of §3.1 in order:
//
//  1. remove content before a line containing the keyword "Here";
//  2. remove content before the first line starting with a registered
//     family's document-start marker — "apiVersion:" (Kubernetes),
//     "static_resources:" (Envoy), "services:" (Compose), ... — as
//     declared by the scenario backends;
//  3. extract text enclosed by ``` fences, <code></code>,
//     \begin{code}\end{code}, or START SOLUTION / END SOLUTION.
func Postprocess(response string) string {
	out := response
	// Policy 3 first when explicit delimiters exist: they are the
	// strongest signal, and once a fenced block is extracted the other
	// policies must not trim it further (a document may legally put
	// "kind:" before "apiVersion:").
	if extracted, ok := extractDelimited(out); ok {
		return strings.TrimSpace(extracted) + "\n"
	}
	// Policy 1: strip everything before the last preamble line
	// containing "Here".
	lines := strings.Split(out, "\n")
	for i, ln := range lines {
		if strings.Contains(ln, "Here") && i+1 < len(lines) {
			candidate := strings.Join(lines[i+1:], "\n")
			if looksLikeYAMLStart(candidate) {
				out = candidate
			}
			break
		}
	}
	// Policy 2: cut to the first family document-start line. Postprocess
	// has no problem context, so every family's marker applies to every
	// answer; scenario.IsDocStartLine keeps prose that merely begins
	// with a block marker from matching.
	lines = strings.Split(out, "\n")
	for i, ln := range lines {
		if scenario.IsDocStartLine(strings.TrimSpace(ln)) {
			out = strings.Join(lines[i:], "\n")
			break
		}
	}
	return strings.TrimSpace(out) + "\n"
}

type delimiter struct{ open, close string }

var delimiters = []delimiter{
	{"```yaml", "```"},
	{"```YAML", "```"},
	{"```", "```"},
	{"<code>", "</code>"},
	{`\begin{code}`, `\end{code}`},
	{"START SOLUTION", "END SOLUTION"},
}

func extractDelimited(s string) (string, bool) {
	for _, d := range delimiters {
		start := strings.Index(s, d.open)
		if start < 0 {
			continue
		}
		rest := s[start+len(d.open):]
		end := strings.Index(rest, d.close)
		if end < 0 {
			// Unclosed fence: take everything after it.
			return strings.TrimLeft(rest, "\n"), true
		}
		return strings.Trim(rest[:end], "\n") + "\n", true
	}
	return "", false
}

func looksLikeYAMLStart(s string) bool {
	t := strings.TrimSpace(s)
	if t == "" {
		return false
	}
	first := strings.SplitN(t, "\n", 2)[0]
	return strings.Contains(first, ":") || strings.HasPrefix(first, "-") || strings.HasPrefix(first, "```")
}
