package llm

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strings"

	"cloudeval/internal/dataset"
	"cloudeval/internal/scenario"
	"cloudeval/internal/yamlmatch"
	"cloudeval/internal/yamlx"
)

// GenOptions controls one generation.
type GenOptions struct {
	// Sample selects an independent sample stream (pass@k). Sample 0 at
	// Temperature 0 is the model's greedy answer.
	Sample int
	// Temperature > 0 lets samples differ; 0 pins every sample to the
	// greedy answer.
	Temperature float64
	// Shots is the number of few-shot examples in the prompt (0–3).
	Shots int
}

// Generate produces the model's raw response text for a problem. The
// response typically wraps YAML in the model's characteristic dressing;
// run Postprocess to extract clean YAML.
func (m Model) Generate(p dataset.Problem, opts GenOptions) string {
	rng := m.rng(p, opts, true)
	latent := m.rng(p, opts, false)
	cat := m.drawCategory(p, opts, rng, latent)
	// Functional mistakes (which fields are wrong) are a property of the
	// problem, not the sample: real models get the same thing wrong on
	// every retry. Textual presentation still varies per sample.
	answer := m.emit(cat, p, latent, rng)
	return wrap(m.Profile.Wrap, answer, cat, rng)
}

// rng derives a deterministic stream. With perSample, the stream varies
// by sample index (at temperature > 0), shot count and question
// variant; otherwise it depends only on (model, base problem) — the
// problem's latent stream. Competence is a property of the model and
// the task: rephrasing the question (simplified/translated) or adding
// few-shot examples shifts the success odds through the profile
// factors, it does not re-roll every problem. That is what keeps
// Tables 5-6's deltas small and pass@k gains bounded, as in the paper.
func (m Model) rng(p dataset.Problem, opts GenOptions, perSample bool) *rand.Rand {
	h := fnv.New64a()
	sample, shots := opts.Sample, opts.Shots
	variant := string(p.Variant)
	id := p.ID
	if opts.Temperature == 0 {
		sample = 0
	}
	if !perSample {
		sample, shots, variant = 0, 0, ""
		id = strings.TrimSuffix(strings.TrimSuffix(id, "-s"), "-t")
	}
	// The stream tag keeps the two streams distinct even when all other
	// components coincide; without it the category draw and the cosmetic
	// draws would correlate perfectly.
	tag := "latent"
	if perSample {
		tag = "sample"
	}
	fmt.Fprintf(h, "%s|%s|%s|%s|%d|%d", tag, m.Name, id, variant, shots, sample)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Difficulty scores a problem in [0,1]: the family's base difficulty
// (Envoy hardest, per its scenario backend), then by solution length,
// echoing the paper's Figure 6 analysis.
func Difficulty(p dataset.Problem) float64 {
	base := scenario.For(p.Category).DifficultyBase
	lines := p.SolutionLines()
	var lengthTerm float64
	switch {
	case lines < 15:
		lengthTerm = 0.15
	case lines < 30:
		lengthTerm = 0.35
	default:
		lengthTerm = 0.50
	}
	d := base + lengthTerm
	if d > 1 {
		d = 1
	}
	return d
}

// drawCategory samples the Figure 7 failure category for this response.
func (m Model) drawCategory(p dataset.Problem, opts GenOptions, rng, latent *rand.Rand) int {
	w := m.Profile.CatWeights
	// Difficulty moves success odds down; the lost mass lands on
	// "plausible but wrong" (category 5) and "incomplete" (category 3).
	// Easy problems never boost success above the base rate.
	d := Difficulty(p)
	excess := d - 0.2
	if excess < 0 {
		excess = 0
	}
	factor := math.Exp(-m.Profile.DifficultySlope * excess)
	// Variant sensitivity (Table 5).
	switch p.Variant {
	case dataset.Simplified:
		factor *= m.Profile.SimplifiedFactor
	case dataset.Translated:
		factor *= m.Profile.TranslatedFactor
	}
	// Few-shot sensitivity (Table 6).
	if opts.Shots > 0 && opts.Shots < len(m.Profile.ShotFactors) {
		if f := m.Profile.ShotFactors[opts.Shots]; f > 0 {
			factor *= f
		}
	}
	p6 := w[5] * factor
	if p6 > 0.98 {
		p6 = 0.98
	}
	lost := w[5] - p6
	w[5] = p6
	w[4] += lost * 0.7
	w[2] += lost * 0.3
	total := 0.0
	for _, v := range w {
		total += v
	}
	// Draw against a per-problem latent position u: the same problem
	// lands in the same region of the category distribution on every
	// sample, so failures correlate across samples the way real models'
	// do. Temperature adds a small per-sample jitter around u; only
	// problems near a category boundary flip, which is what bounds the
	// pass@k gains to the paper's 30-40% rather than 1-(1-p)^k.
	u := latent.Float64()
	if opts.Temperature > 0 {
		u += m.Profile.SampleSigma * opts.Temperature * rng.NormFloat64()
		// Reflect into [0,1) to preserve the marginal distribution.
		u = math.Abs(u)
		if u >= 2 {
			u = math.Mod(u, 2)
		}
		if u >= 1 {
			u = 2 - u - 1e-12
		}
	}
	x := u * total
	for i, v := range w {
		if x < v {
			return i + 1
		}
		x -= v
	}
	return 6
}

// emit renders the answer text for a category. Functional content draws
// from the latent (per-problem) stream; cosmetic variation draws from
// the per-sample stream.
func (m Model) emit(cat int, p dataset.Problem, latent, rng *rand.Rand) string {
	clean := yamlmatch.StripLabels(p.ReferenceYAML)
	switch cat {
	case 1: // empty or under three lines
		options := []string{"", "apiVersion: v1", "I cannot help with that.", "yaml"}
		return options[rng.Intn(len(options))]
	case 2: // longer prose without a kind field
		return "To accomplish this task you would configure the resource with the appropriate\n" +
			"settings for your cluster. First create the object, then verify it with kubectl.\n" +
			"The most important settings are the selector and the labels, which must agree.\n" +
			"Afterwards, check the status and repeat as needed until everything is healthy.\n"
	case 3: // contains kind but the YAML is cut off / broken
		return truncateYAML(clean, rng)
	case 4: // valid YAML, wrong kind
		if !scenario.For(p.Category).HasKind {
			// Families without document kinds (Envoy bootstraps, Compose
			// files) have nothing to swap; a confused answer of the
			// "wrong flavor" is a functionally wrong config instead.
			return corruptYAML(clean, p, latent)
		}
		return wrongKind(clean, p, latent)
	case 5: // valid YAML, right kind, functionally wrong
		return corruptYAML(clean, p, latent)
	default: // correct
		if rng.Float64() < m.Profile.NoiseWhenCorrect {
			return harmlessNoise(clean, p, rng)
		}
		return clean
	}
}

// truncateYAML cuts the reference somewhere after the kind line and may
// break indentation, producing category 3 answers.
func truncateYAML(clean string, rng *rand.Rand) string {
	lines := strings.Split(strings.TrimRight(clean, "\n"), "\n")
	if len(lines) < 4 {
		return clean[:len(clean)/2]
	}
	maxCut := len(lines) - 2
	if maxCut < 4 {
		maxCut = 4
	}
	cut := 3 + rng.Intn(maxCut-3)
	if cut > len(lines) {
		cut = len(lines)
	}
	out := lines[:cut]
	// Leave a dangling flow value so the document is unparsable.
	out = append(out, "  spec: [unterminated")
	return strings.Join(out, "\n") + "\n"
}

// wrongKind swaps the resource kind for a plausible but wrong one.
func wrongKind(clean string, p dataset.Problem, rng *rand.Rand) string {
	alternatives := []string{"Pod", "Deployment", "Service", "ConfigMap", "ReplicaSet"}
	doc, err := yamlx.ParseCachedString(clean)
	if err != nil || doc.Kind != yamlx.MapKind {
		return clean
	}
	doc = doc.Clone() // the cached tree is shared; mutate a copy
	cur := doc.Get("kind").ScalarString()
	alt := alternatives[rng.Intn(len(alternatives))]
	for alt == cur {
		alt = alternatives[rng.Intn(len(alternatives))]
	}
	doc.Set("kind", yamlx.String(alt))
	return yamlx.MarshalString(doc)
}

// corruptYAML perturbs functional leaves of the reference: numeric
// values drift, strings get mangled, or a required subtree is dropped.
// The result stays valid YAML with the right kind but fails the unit
// test: corruption is biased toward leaves whose values the unit-test
// script actually asserts on, which is what "plausible but wrong"
// answers get wrong in practice.
func corruptYAML(clean string, p dataset.Problem, rng *rand.Rand) string {
	docs, err := yamlx.ParseAllCached([]byte(clean))
	if err != nil {
		return clean
	}
	docs = yamlx.CloneDocs(docs) // cached trees are shared; mutate copies
	// Collect scalar leaves that the unit test observes.
	type leafRef struct {
		parent *yamlx.Node
		key    string
		idx    int // sequence position, -1 for map entries
	}
	var tested []leafRef
	var visit func(n *yamlx.Node)
	visit = func(n *yamlx.Node) {
		if n == nil {
			return
		}
		switch n.Kind {
		case yamlx.MapKind:
			for i := range n.Entries {
				e := &n.Entries[i]
				if e.Key == "kind" || e.Key == "apiVersion" {
					continue
				}
				if e.Value.IsScalar() {
					v := e.Value.ScalarString()
					if v != "" && strings.Contains(p.UnitTest, v) {
						tested = append(tested, leafRef{parent: n, key: e.Key, idx: -1})
					}
					continue
				}
				visit(e.Value)
			}
		case yamlx.SeqKind:
			for i, it := range n.Items {
				if it.IsScalar() {
					v := it.ScalarString()
					if v != "" && strings.Contains(p.UnitTest, v) {
						tested = append(tested, leafRef{parent: n, idx: i})
					}
					continue
				}
				visit(it)
			}
		}
	}
	for _, d := range docs {
		visit(d)
	}
	// Corrupt most tested leaves (at least one), then a random leaf or
	// two for texture.
	mutated := 0
	for i, l := range tested {
		if i > 0 && rng.Float64() > 0.8 {
			continue
		}
		if l.idx >= 0 {
			l.parent.Items[l.idx] = mutateScalar(l.parent.Items[l.idx], rng)
		} else {
			cur := l.parent.Get(l.key)
			l.parent.Set(l.key, mutateScalar(cur, rng))
		}
		mutated++
	}
	if mutated == 0 {
		// Nothing observable found: break the document structurally by
		// dropping the spec subtree of the first document.
		if len(docs) > 0 && docs[0].Kind == yamlx.MapKind {
			docs[0].Delete("spec")
			docs[0].Delete("data")
			docs[0].Delete("subjects")
		}
	}
	edits := 1 + rng.Intn(2)
	for i := 0; i < edits; i++ {
		doc := docs[rng.Intn(len(docs))]
		corruptNode(doc, rng, 0)
	}
	return string(yamlx.MarshalAll(docs))
}

func corruptNode(n *yamlx.Node, rng *rand.Rand, depth int) bool {
	if n == nil {
		return false
	}
	switch n.Kind {
	case yamlx.MapKind:
		if len(n.Entries) == 0 {
			return false
		}
		idx := rng.Intn(len(n.Entries))
		e := &n.Entries[idx]
		// Never corrupt kind/apiVersion here (that is category 4's job).
		if e.Key == "kind" || e.Key == "apiVersion" {
			idx = (idx + 1) % len(n.Entries)
			e = &n.Entries[idx]
			if e.Key == "kind" || e.Key == "apiVersion" {
				return false
			}
		}
		if e.Value.IsScalar() {
			e.Value = mutateScalar(e.Value, rng)
			return true
		}
		if depth >= 2 && rng.Float64() < 0.25 {
			// Drop an entire subtree.
			n.Entries = append(n.Entries[:idx], n.Entries[idx+1:]...)
			return true
		}
		return corruptNode(e.Value, rng, depth+1)
	case yamlx.SeqKind:
		if len(n.Items) == 0 {
			return false
		}
		idx := rng.Intn(len(n.Items))
		if n.Items[idx].IsScalar() {
			n.Items[idx] = mutateScalar(n.Items[idx], rng)
			return true
		}
		return corruptNode(n.Items[idx], rng, depth+1)
	default:
		return false
	}
}

func mutateScalar(v *yamlx.Node, rng *rand.Rand) *yamlx.Node {
	switch v.Kind {
	case yamlx.IntKind:
		delta := int64(1 + rng.Intn(9))
		if rng.Intn(2) == 0 && v.Int > delta {
			return yamlx.Integer(v.Int - delta)
		}
		return yamlx.Integer(v.Int + delta)
	case yamlx.BoolKind:
		return yamlx.Boolean(!v.Bool)
	case yamlx.StringKind:
		s := v.Str
		// Mangle the middle so substring assertions fail too.
		if len(s) > 3 {
			mid := 1 + rng.Intn(len(s)-2)
			c := byte('x')
			if s[mid] == 'x' {
				c = 'q'
			}
			return yamlx.String(s[:mid] + string(c) + s[mid+1:])
		}
		return yamlx.String(s + "x")
	default:
		return yamlx.String("changed")
	}
}

// harmlessNoise rewrites the reference without changing semantics the
// unit test observes: map keys reorder, wildcard-labeled names change,
// set-labeled values pick another allowed member. Text metrics drop;
// KV-wildcard and unit tests stay at 1.
func harmlessNoise(clean string, p dataset.Problem, rng *rand.Rand) string {
	labeled, err := yamlx.ParseAllCached([]byte(p.ReferenceYAML))
	if err != nil {
		return clean
	}
	labeled = yamlx.CloneDocs(labeled) // cached trees are shared; mutate copies
	for _, doc := range labeled {
		applyHarmless(doc, rng)
	}
	out := yamlmatch.StripLabels(string(yamlx.MarshalAll(labeled)))
	if textEqual(out, clean) {
		// Noise is supposed to be visible: rotate the trailing top-level
		// entries of the first document (YAML-legal, semantics intact).
		doc := labeled[0]
		if doc.Kind == yamlx.MapKind && len(doc.Entries) >= 3 {
			tail := doc.Entries[1:]
			rotated := append([]yamlx.Entry{tail[len(tail)-1]}, tail[:len(tail)-1]...)
			doc.Entries = append(doc.Entries[:1], rotated...)
			out = yamlmatch.StripLabels(string(yamlx.MarshalAll(labeled)))
		}
	}
	return out
}

func textEqual(a, b string) bool {
	return strings.TrimSpace(a) == strings.TrimSpace(b)
}

func applyHarmless(n *yamlx.Node, rng *rand.Rand) {
	if n == nil {
		return
	}
	switch n.Kind {
	case yamlx.MapKind:
		// Shuffle top-level-entry order occasionally (YAML-legal).
		if len(n.Entries) > 1 && rng.Float64() < 0.4 {
			i, j := rng.Intn(len(n.Entries)), rng.Intn(len(n.Entries))
			if n.Entries[i].Key != "apiVersion" && n.Entries[j].Key != "apiVersion" {
				n.Entries[i], n.Entries[j] = n.Entries[j], n.Entries[i]
			}
		}
		for _, e := range n.Entries {
			if e.Value.IsScalar() {
				label := yamlmatch.ParseLabel(e.Value.Comment)
				switch label.Kind {
				case yamlmatch.WildcardLabel:
					if rng.Float64() < 0.85 {
						e.Value.Str = "alt-" + e.Value.ScalarString()
						e.Value.Kind = yamlx.StringKind
					}
				case yamlmatch.SetLabel:
					if len(label.Values) > 0 && rng.Float64() < 0.85 {
						pickVal := label.Values[rng.Intn(len(label.Values))]
						e.Value.Str = pickVal
						e.Value.Kind = yamlx.StringKind
					}
				}
				e.Value.Comment = ""
			} else {
				applyHarmless(e.Value, rng)
			}
		}
	case yamlx.SeqKind:
		for _, it := range n.Items {
			applyHarmless(it, rng)
		}
	}
}

// wrap dresses an answer in the model's response style.
func wrap(style WrapStyle, answer string, cat int, rng *rand.Rand) string {
	if cat <= 2 {
		return answer // degenerate answers are returned bare
	}
	switch style {
	case WrapMarkdown:
		return "Sure! Here's the configuration you asked for:\n```yaml\n" + answer + "```\nLet me know if you need changes.\n"
	case WrapHere:
		return "Here is the YAML file that satisfies the requirements:\n" + answer
	case WrapCodeTags:
		return "<code>\n" + answer + "</code>\n"
	case WrapLatex:
		return "\\begin{code}\n" + answer + "\\end{code}\n"
	case WrapSolution:
		return "START SOLUTION\n" + answer + "END SOLUTION\n"
	default:
		return answer
	}
}
