// Package llm provides the model layer of the benchmark: a uniform
// query interface, the §3.1 post-processing that extracts clean YAML
// from chatty responses, and a family of twelve simulated models.
//
// Substitution note (see DESIGN.md): the paper queries real proprietary
// and open-source LLMs. Offline, each model is simulated as a
// deterministic noisy channel over the problem's reference answer,
// parameterized by a quality profile — the distribution over the six
// failure categories of Figure 7, difficulty sensitivity, response
// wrapping style, and sensitivities to simplified/translated questions
// and few-shot prompts. The benchmark framework only ever sees
// (prompt -> text), so every downstream code path (post-processing,
// six-metric scoring, cluster evaluation, failure analysis, pass@k,
// prediction) is exercised exactly as with real models.
package llm

// Profile parameterizes a simulated model.
type Profile struct {
	// CatWeights is the base probability of emitting each Figure 7
	// category on a median-difficulty problem:
	// [empty, noKind, incomplete, wrongKind, plausibleButWrong, correct].
	CatWeights [6]float64
	// DifficultySlope scales how steeply correctness decays as problem
	// difficulty grows (0 = insensitive).
	DifficultySlope float64
	// NoiseWhenCorrect is the chance that a correct answer still differs
	// textually from the reference (key reordering, renamed wildcard
	// fields, alternate set-label values) — it passes unit tests and
	// KV-wildcard but depresses text-level metrics.
	NoiseWhenCorrect float64
	// SimplifiedFactor and TranslatedFactor multiply the odds of a
	// correct answer on augmented questions (Table 5). 1 = unaffected.
	SimplifiedFactor float64
	TranslatedFactor float64
	// ShotFactors multiply correctness odds for 1/2/3-shot prompts
	// (Table 6). Missing entries mean 1.
	ShotFactors [4]float64
	// Wrap selects the response dressing the post-processor must strip.
	Wrap WrapStyle
	// Temperature-controlled sample diversity: at temperature t, the
	// category draw for sample k uses an independent stream. Sigma
	// controls how much per-sample luck varies (pass@k slope).
	SampleSigma float64
}

// WrapStyle is how a model dresses its YAML answer.
type WrapStyle int

// Wrap styles observed across real models (§3.1).
const (
	WrapPlain    WrapStyle = iota // bare YAML
	WrapMarkdown                  // ```yaml fences with a short preamble
	WrapHere                      // "Here is the YAML..." preamble
	WrapCodeTags                  // <code>...</code>
	WrapLatex                     // \begin{code}...\end{code}
	WrapSolution                  // START SOLUTION ... END SOLUTION
)

// Model is one entry of the benchmark's model zoo.
type Model struct {
	Name       string
	Size       string
	OpenSource bool
	// EnglishOnly marks APIs that reject non-English prompts (the paper
	// footnotes PaLM); aggregation excludes translated questions.
	EnglishOnly bool
	Profile     Profile
}

// Models is the twelve-model zoo of Table 4, in the paper's ranking
// order. CatWeights are calibrated so the corpus-average unit-test
// scores land near the paper's: GPT-4 0.515, GPT-3.5 0.412,
// PaLM-2 0.322, Llama-2-70b 0.085 ... Codellama-13b 0.012, and so the
// Figure 7 category mixes match where the paper reports them.
var Models = []Model{
	{
		Name: "gpt-4", Size: "?", OpenSource: false,
		Profile: Profile{
			// Figure 7 (GPT-4): 8/1/42/30/77/179 of 337.
			CatWeights:       [6]float64{0.024, 0.003, 0.105, 0.079, 0.178, 0.610},
			DifficultySlope:  1.1,
			NoiseWhenCorrect: 0.80,
			SimplifiedFactor: 0.92, TranslatedFactor: 0.99,
			ShotFactors: [4]float64{1, 1.02, 1.0, 1.04},
			Wrap:        WrapMarkdown,
			SampleSigma: 0.06,
		},
	},
	{
		Name: "gpt-3.5", Size: "?", OpenSource: false,
		Profile: Profile{
			CatWeights:       [6]float64{0.03, 0.01, 0.13, 0.09, 0.24, 0.50},
			DifficultySlope:  1.3,
			NoiseWhenCorrect: 0.79,
			SimplifiedFactor: 1.01, TranslatedFactor: 0.93,
			ShotFactors: [4]float64{1, 1.06, 1.01, 1.09},
			Wrap:        WrapHere,
			SampleSigma: 0.09,
		},
	},
	{
		Name: "palm-2-bison", Size: "?", OpenSource: false, EnglishOnly: true,
		Profile: Profile{
			CatWeights:       [6]float64{0.04, 0.02, 0.15, 0.11, 0.27, 0.41},
			DifficultySlope:  1.5,
			NoiseWhenCorrect: 0.85,
			SimplifiedFactor: 0.82, TranslatedFactor: 0, // English-only API
			ShotFactors: [4]float64{1, 1.02, 1.0, 1.03},
			Wrap:        WrapPlain,
			SampleSigma: 0.08,
		},
	},
	{
		Name: "llama-2-70b-chat", Size: "70B", OpenSource: true,
		Profile: Profile{
			// Figure 7 (Llama-2-70B): 0/2/88/37/180/30 of 337.
			CatWeights:       [6]float64{0.00, 0.006, 0.261, 0.110, 0.534, 0.089},
			DifficultySlope:  2.2,
			NoiseWhenCorrect: 0.99,
			SimplifiedFactor: 0.80, TranslatedFactor: 1.07,
			ShotFactors: [4]float64{1, 0.77, 0.87, 0.97},
			Wrap:        WrapHere,
			SampleSigma: 0.015,
		},
	},
	{
		Name: "llama-2-13b-chat", Size: "13B", OpenSource: true,
		Profile: Profile{
			CatWeights:       [6]float64{0.01, 0.01, 0.28, 0.12, 0.518, 0.062},
			DifficultySlope:  2.4,
			NoiseWhenCorrect: 0.99,
			SimplifiedFactor: 0.65, TranslatedFactor: 0.96,
			ShotFactors: [4]float64{1, 1.0, 1.0, 1.0},
			Wrap:        WrapHere,
			SampleSigma: 0.015,
		},
	},
	{
		Name: "wizardcoder-34b-v1.0", Size: "34B", OpenSource: true,
		Profile: Profile{
			CatWeights:       [6]float64{0.02, 0.02, 0.30, 0.13, 0.479, 0.051},
			DifficultySlope:  2.4,
			NoiseWhenCorrect: 0.88,
			SimplifiedFactor: 1.29, TranslatedFactor: 0.08, // collapses on zh
			ShotFactors: [4]float64{1, 1.0, 1.0, 1.0},
			Wrap:        WrapMarkdown,
			SampleSigma: 0.015,
		},
	},
	{
		Name: "llama-2-7b-chat", Size: "7B", OpenSource: true,
		Profile: Profile{
			// Figure 7 (Llama-2-7B): 2/2/97/42/181/13 of 337.
			CatWeights:       [6]float64{0.006, 0.006, 0.288, 0.125, 0.553, 0.023},
			DifficultySlope:  2.6,
			NoiseWhenCorrect: 0.99,
			SimplifiedFactor: 0.69, TranslatedFactor: 0.38,
			ShotFactors: [4]float64{1, 1.08, 1.0, 1.15},
			Wrap:        WrapHere,
			SampleSigma: 0.010,
		},
	},
	{
		Name: "wizardcoder-15b-v1.0", Size: "15B", OpenSource: true,
		Profile: Profile{
			CatWeights:       [6]float64{0.03, 0.03, 0.33, 0.14, 0.442, 0.028},
			DifficultySlope:  2.6,
			NoiseWhenCorrect: 0.95,
			SimplifiedFactor: 0.92, TranslatedFactor: 0.25,
			ShotFactors: [4]float64{1, 1.0, 1.0, 1.0},
			Wrap:        WrapSolution,
			SampleSigma: 0.010,
		},
	},
	{
		Name: "llama-7b", Size: "7B", OpenSource: true,
		Profile: Profile{
			CatWeights:       [6]float64{0.10, 0.12, 0.35, 0.12, 0.285, 0.028},
			DifficultySlope:  2.8,
			NoiseWhenCorrect: 0.85,
			SimplifiedFactor: 0.58, TranslatedFactor: 0.33,
			ShotFactors: [4]float64{1, 1.0, 1.0, 1.0},
			Wrap:        WrapPlain,
			SampleSigma: 0.010,
		},
	},
	{
		Name: "llama-13b-lora", Size: "13B", OpenSource: true,
		Profile: Profile{
			CatWeights:       [6]float64{0.11, 0.13, 0.35, 0.12, 0.271, 0.019},
			DifficultySlope:  2.8,
			NoiseWhenCorrect: 0.95,
			SimplifiedFactor: 1.13, TranslatedFactor: 0.5,
			ShotFactors: [4]float64{1, 1.0, 1.0, 1.0},
			Wrap:        WrapLatex,
			SampleSigma: 0.010,
		},
	},
	{
		Name: "codellama-7b-instruct", Size: "7B", OpenSource: true,
		Profile: Profile{
			CatWeights:       [6]float64{0.05, 0.06, 0.38, 0.15, 0.347, 0.014},
			DifficultySlope:  3.0,
			NoiseWhenCorrect: 0.95,
			SimplifiedFactor: 1.2, TranslatedFactor: 0.8,
			ShotFactors: [4]float64{1, 1.0, 1.0, 1.0},
			Wrap:        WrapCodeTags,
			SampleSigma: 0.008,
		},
	},
	{
		Name: "codellama-13b-instruct", Size: "13B", OpenSource: true,
		Profile: Profile{
			CatWeights:       [6]float64{0.05, 0.06, 0.40, 0.16, 0.323, 0.007},
			DifficultySlope:  3.0,
			NoiseWhenCorrect: 0.93,
			SimplifiedFactor: 0.4, TranslatedFactor: 1.0,
			ShotFactors: [4]float64{1, 1.0, 1.0, 1.0},
			Wrap:        WrapMarkdown,
			SampleSigma: 0.008,
		},
	},
}

// modelsByName and modelNames are built once at init: ByName is on
// the per-generation path (trace replays, server eval requests), so
// it must not rescan the zoo, and Names must not rebuild its slice
// per call.
var (
	modelsByName = func() map[string]Model {
		m := make(map[string]Model, len(Models))
		for _, mm := range Models {
			m[mm.Name] = mm
		}
		return m
	}()
	modelNames = func() []string {
		out := make([]string, len(Models))
		for i, m := range Models {
			out[i] = m.Name
		}
		return out
	}()
)

// ByName returns the model with the given name.
func ByName(name string) (Model, bool) {
	m, ok := modelsByName[name]
	return m, ok
}

// Names lists model names in ranking order. The returned slice is
// cached and shared; callers must not modify it.
func Names() []string { return modelNames }
