package llm

import (
	"strings"
	"testing"

	"cloudeval/internal/dataset"
	"cloudeval/internal/yamlmatch"
	"cloudeval/internal/yamlx"
)

func TestModelsZooShape(t *testing.T) {
	if len(Models) != 12 {
		t.Fatalf("zoo size = %d, want 12 (Table 4)", len(Models))
	}
	if Models[0].Name != "gpt-4" || Models[len(Models)-1].Name != "codellama-13b-instruct" {
		t.Errorf("ranking order broken: %s ... %s", Models[0].Name, Models[len(Models)-1].Name)
	}
	openCount := 0
	for _, m := range Models {
		if m.OpenSource {
			openCount++
		}
		sum := 0.0
		for _, w := range m.Profile.CatWeights {
			sum += w
		}
		if sum < 0.9 || sum > 1.1 {
			t.Errorf("%s: category weights sum to %v", m.Name, sum)
		}
	}
	if openCount != 9 {
		t.Errorf("open-source models = %d, want 9", openCount)
	}
	if _, ok := ByName("gpt-4"); !ok {
		t.Error("ByName lookup broken")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName should miss unknown names")
	}
}

// TestByNameMatchesZoo pins the init-time lookup map to the slice:
// every zoo entry resolves to itself, and Names stays a stable cached
// ranking-order view.
func TestByNameMatchesZoo(t *testing.T) {
	for i, m := range Models {
		got, ok := ByName(m.Name)
		if !ok || got.Name != m.Name || got.Profile != m.Profile {
			t.Errorf("ByName(%q) does not match Models[%d]", m.Name, i)
		}
	}
	names := Names()
	if len(names) != len(Models) {
		t.Fatalf("Names() has %d entries, want %d", len(names), len(Models))
	}
	for i, m := range Models {
		if names[i] != m.Name {
			t.Errorf("Names()[%d] = %q, want %q (ranking order)", i, names[i], m.Name)
		}
	}
	// The cached slice is shared: repeated calls return the same view.
	if &names[0] != &Names()[0] {
		t.Error("Names() should return the cached slice, not rebuild per call")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := dataset.Generate()[0]
	m, _ := ByName("gpt-4")
	a := m.Generate(p, GenOptions{})
	b := m.Generate(p, GenOptions{})
	if a != b {
		t.Error("greedy generation must be deterministic")
	}
	// Different samples at temperature 0 are identical.
	c := m.Generate(p, GenOptions{Sample: 5})
	if a != c {
		t.Error("temperature 0 must pin all samples")
	}
	// At temperature > 0 samples may differ (over many problems, some must).
	diff := 0
	for _, p := range dataset.Generate()[:50] {
		x := m.Generate(p, GenOptions{Sample: 0, Temperature: 0.8})
		y := m.Generate(p, GenOptions{Sample: 1, Temperature: 0.8})
		if x != y {
			diff++
		}
	}
	if diff == 0 {
		t.Error("temperature sampling produced no diversity at all")
	}
}

func TestDifficultyOrdering(t *testing.T) {
	ps := dataset.Generate()
	var envoySum, podSum float64
	var envoyN, podN int
	for _, p := range ps {
		d := Difficulty(p)
		if d < 0 || d > 1 {
			t.Fatalf("difficulty out of range: %v", d)
		}
		switch {
		case p.Subcategory == "envoy":
			envoySum += d
			envoyN++
		case p.Subcategory == "pod":
			podSum += d
			podN++
		}
	}
	if envoySum/float64(envoyN) <= podSum/float64(podN) {
		t.Error("envoy problems should be harder than pod problems")
	}
}

func TestPostprocessPolicies(t *testing.T) {
	yaml := "apiVersion: v1\nkind: Pod\nmetadata:\n  name: x\n"
	cases := []struct {
		name string
		raw  string
	}{
		{"plain", yaml},
		{"markdown", "Sure thing!\n```yaml\n" + yaml + "```\ndone\n"},
		{"bare-fence", "```\n" + yaml + "```\n"},
		{"here", "Here is the YAML file:\n" + yaml},
		{"preamble-apiversion", "The following manifest works.\n" + yaml},
		{"code-tags", "<code>\n" + yaml + "</code>\n"},
		{"latex", "\\begin{code}\n" + yaml + "\\end{code}\n"},
		{"solution", "START SOLUTION\n" + yaml + "END SOLUTION\n"},
		{"unclosed-fence", "```yaml\n" + yaml},
	}
	for _, c := range cases {
		got := Postprocess(c.raw)
		n, err := yamlx.ParseString(got)
		if err != nil {
			t.Errorf("%s: postprocessed output does not parse: %v\n%q", c.name, err, got)
			continue
		}
		if n.Get("kind").ScalarString() != "Pod" {
			t.Errorf("%s: lost the document: %q", c.name, got)
		}
	}
}

// TestPostprocessForeignMarkerProse: a preamble line that merely
// begins with another family's document-start marker must not swallow
// the real document — the policy-2 cut requires the remainder to
// parse. Truncated documents still fall back to the first marker line.
func TestPostprocessForeignMarkerProse(t *testing.T) {
	yaml := "apiVersion: v1\nkind: Pod\nmetadata:\n  name: x\n"
	got := Postprocess("services: web and db, wired as follows\n" + yaml)
	if got != yaml {
		t.Errorf("prose marker swallowed the document: %q", got)
	}
	truncated := "apiVersion: v1\nkind: Pod\nmetadata:\n  spec: [unterminated\n"
	if got := Postprocess("preamble text\n" + truncated); !strings.HasPrefix(got, "apiVersion: v1") {
		t.Errorf("truncated document lost its marker fallback: %q", got)
	}
}

func TestPostprocessEnvoy(t *testing.T) {
	yaml := "static_resources:\n  listeners: []\n"
	got := Postprocess("Let me explain the listener setup first.\n" + yaml)
	if !strings.HasPrefix(got, "static_resources:") {
		t.Errorf("envoy marker not honored: %q", got)
	}
}

func TestWrapStylesRoundTripThroughPostprocess(t *testing.T) {
	p := dataset.Generate()[10]
	for _, m := range Models {
		raw := m.Generate(p, GenOptions{})
		clean := Postprocess(raw)
		// Whatever the dressing, the result must be plausible text (we
		// cannot require valid YAML: weak models emit broken answers by
		// design).
		if strings.Contains(clean, "```") {
			t.Errorf("%s: fences survived post-processing:\n%s", m.Name, clean)
		}
		if strings.Contains(clean, "END SOLUTION") || strings.Contains(clean, "</code>") {
			t.Errorf("%s: delimiters survived post-processing:\n%s", m.Name, clean)
		}
	}
}

func TestCorrectEmissionPassesWildcard(t *testing.T) {
	// Category 6 answers (with harmless noise) must keep KV-wildcard at
	// 1; gpt-4 answers roughly half the corpus correctly, so scanning a
	// problem window must surface perfect answers.
	m, _ := ByName("gpt-4")
	found := 0
	for _, p := range dataset.Generate()[:40] {
		raw := m.Generate(p, GenOptions{})
		ans := Postprocess(raw)
		if yamlmatch.KVWildcardMatch(ans, p.ReferenceYAML) == 1 {
			found++
		}
	}
	if found < 10 {
		t.Errorf("gpt-4 produced only %d/40 wildcard-perfect answers", found)
	}
}

func TestStrongBeatsWeakOnSuccessRate(t *testing.T) {
	ps := dataset.Generate()[:80]
	strong, _ := ByName("gpt-4")
	weak, _ := ByName("codellama-13b-instruct")
	countPerfect := func(m Model) int {
		n := 0
		for _, p := range ps {
			ans := Postprocess(m.Generate(p, GenOptions{}))
			if yamlmatch.KVWildcardMatch(ans, p.ReferenceYAML) == 1 {
				n++
			}
		}
		return n
	}
	s, w := countPerfect(strong), countPerfect(weak)
	if s <= w {
		t.Errorf("gpt-4 perfect answers (%d) should exceed codellama-13b (%d)", s, w)
	}
	if s < 20 {
		t.Errorf("gpt-4 produced only %d/80 perfect answers; calibration looks off", s)
	}
}
