package shell

import (
	"fmt"
	"sync"
	"testing"
)

// sharedASTScript exercises every node type the parser produces —
// pipelines, and/or lists, if/elif/else, for and while loops, [[ ]]
// and [ ] conditions, (( )) arithmetic, redirects, command and
// arithmetic substitution — so running it concurrently from one cached
// AST probes the whole interpreter surface for state leaking into
// shared nodes. Run under -race in CI.
const sharedASTScript = `
COUNT=0
for f in a b c d; do
  COUNT=$((COUNT + 1))
  echo "item $f -> $COUNT"
done
if [[ $COUNT == 4 && -z "$MISSING" ]]; then
  echo four | tr a-z A-Z
else
  echo wrong
fi
while (( COUNT > 0 )); do
  COUNT=$((COUNT - 1))
done
echo "left $COUNT ok_$(echo sub)" > out.txt
cat out.txt
[ "$COUNT" -eq 0 ] && echo zero || echo nonzero
printf '%s\n' done
`

// TestSharedASTConcurrent runs the same script's cached AST from many
// interpreters at once and asserts every run is byte-identical to a
// fresh, uncached parse executed serially. This is the contract that
// makes the parse-once/run-many cache sound: all mutable state lives
// in the Interp, never in the shared nodes.
func TestSharedASTConcurrent(t *testing.T) {
	// Reference output from a fresh parse with the cache off.
	prev := SetASTCache(false)
	ref := New()
	want, err := ref.Run(sharedASTScript)
	SetASTCache(prev)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Warm the cache once, then hammer the shared AST.
	if _, err := ParseCached(sharedASTScript); err != nil {
		t.Fatalf("ParseCached: %v", err)
	}
	const goroutines = 16
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				in := New()
				got, err := in.Run(sharedASTScript)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d round %d: %v", g, r, err)
					return
				}
				if got.Stdout != want.Stdout || got.Stderr != want.Stderr || got.ExitCode != want.ExitCode {
					errs <- fmt.Errorf("goroutine %d round %d diverged from fresh parse:\ngot  %q (%d)\nwant %q (%d)",
						g, r, got.Stdout, got.ExitCode, want.Stdout, want.ExitCode)
					return
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestParseCachedReturnsSameProgram pins the parse-once property: two
// cached parses of identical text hand back the same AST, and parse
// errors are cached alongside successes.
func TestParseCachedReturnsSameProgram(t *testing.T) {
	src := "echo " + t.Name()
	p1, err1 := ParseCached(src)
	p2, err2 := ParseCached(src)
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v / %v", err1, err2)
	}
	if p1 != p2 {
		t.Error("cached parse returned distinct programs for identical text")
	}
	bad := "if missing_fi_" + t.Name()
	if _, err := ParseCached(bad); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := ParseCached(bad); err == nil {
		t.Fatal("expected cached parse error")
	}
}

// TestSetASTCacheBypass ensures the benchmark knob really bypasses the
// cache: with it off, identical text parses to distinct programs.
func TestSetASTCacheBypass(t *testing.T) {
	prev := SetASTCache(false)
	defer SetASTCache(prev)
	src := "echo bypass_" + t.Name()
	p1, _ := ParseCached(src)
	p2, _ := ParseCached(src)
	if p1 == p2 {
		t.Error("cache disabled but identical programs returned")
	}
}
