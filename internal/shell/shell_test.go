package shell

import (
	"strings"
	"testing"
	"time"
)

func run(t *testing.T, script string) Result {
	t.Helper()
	in := New()
	res, err := in.Run(script)
	if err != nil {
		t.Fatalf("run %q: %v", script, err)
	}
	return res
}

func TestEcho(t *testing.T) {
	if got := run(t, `echo hello world`).Stdout; got != "hello world\n" {
		t.Errorf("stdout = %q", got)
	}
	if got := run(t, `echo -n no newline`).Stdout; got != "no newline" {
		t.Errorf("stdout = %q", got)
	}
}

func TestVariablesAndExpansion(t *testing.T) {
	res := run(t, `
name=world
greeting="hello $name"
echo $greeting
echo ${name}
echo "${#name}"
`)
	want := "hello world\nworld\n5\n"
	if res.Stdout != want {
		t.Errorf("stdout = %q, want %q", res.Stdout, want)
	}
}

func TestCommandSubstitution(t *testing.T) {
	res := run(t, `
x=$(echo inner)
echo "got: $x"
echo "ticks: `+"`echo old-style`"+`"
`)
	if res.Stdout != "got: inner\nticks: old-style\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestArithmetic(t *testing.T) {
	res := run(t, `echo $((100+23))`)
	if res.Stdout != "123\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
	res = run(t, `
count=0
((count++))
((count++))
((count+=10))
echo $count
`)
	if res.Stdout != "12\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
	res = run(t, `echo $(( (2+3)*4 ))`)
	if res.Stdout != "20\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestIfElse(t *testing.T) {
	res := run(t, `
x=5
if [ "$x" == "5" ]; then
  echo five
else
  echo other
fi
if [ "$x" == "6" ]; then
  echo six
elif [ "$x" -gt 4 ]; then
  echo big
else
  echo small
fi
`)
	if res.Stdout != "five\nbig\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestDoubleBracketPatterns(t *testing.T) {
	res := run(t, `
env_vars="REGISTRY_HOST REGISTRY_PORT"
if [[ $env_vars == *"REGISTRY_HOST"* && $env_vars == *"REGISTRY_PORT"* ]]; then
  echo both
fi
if [[ $env_vars == *"MISSING"* ]]; then
  echo bad
else
  echo good
fi
`)
	if res.Stdout != "both\ngood\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestConditionOperators(t *testing.T) {
	cases := []struct {
		script string
		want   int
	}{
		{`[[ -z "" ]]`, 0},
		{`[[ -z "x" ]]`, 1},
		{`[[ -n "x" ]]`, 0},
		{`[[ 3 -lt 5 ]]`, 0},
		{`[[ 5 -le 4 ]]`, 1},
		{`[[ abc != abd ]]`, 0},
		{`[[ "a b" == "a b" ]]`, 0},
		{`[[ hello =~ ^h.*o$ ]]`, 0},
		{`! [[ 1 -eq 1 ]]`, 1},
	}
	for _, c := range cases {
		if got := run(t, c.script).ExitCode; got != c.want {
			t.Errorf("%q exit = %d, want %d", c.script, got, c.want)
		}
	}
}

func TestForLoop(t *testing.T) {
	res := run(t, `
total=0
for i in 1 2 3; do
  ((total+=i))
done
echo $total
items="a b c"
for x in $items; do echo -n "$x."; done
echo
`)
	if res.Stdout != "6\na.b.c.\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestWhileLoop(t *testing.T) {
	res := run(t, `
n=0
while [ $n -lt 3 ]; do
  ((n++))
  echo $n
done
`)
	if res.Stdout != "1\n2\n3\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestStepLimitStopsRunawayLoops(t *testing.T) {
	in := New()
	in.MaxSteps = 500
	res, err := in.Run(`while true; do x=1; done`)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 124 {
		t.Errorf("exit = %d, want 124", res.ExitCode)
	}
}

func TestPipelines(t *testing.T) {
	res := run(t, `echo -e "b\na\nc" | sort | head -n 2`)
	if res.Stdout != "a\nb\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestGrep(t *testing.T) {
	res := run(t, `echo -e "apple\nbanana\ncherry" | grep an`)
	if res.Stdout != "banana\n" || res.ExitCode != 0 {
		t.Errorf("stdout = %q exit %d", res.Stdout, res.ExitCode)
	}
	if got := run(t, `echo hello | grep absent`).ExitCode; got != 1 {
		t.Errorf("no-match exit = %d, want 1", got)
	}
	if got := run(t, `echo hello | grep -q hello && echo found`).Stdout; got != "found\n" {
		t.Errorf("grep -q && chain = %q", got)
	}
	res = run(t, `echo -e "a\nb\na" | grep -c a`)
	if res.Stdout != "2\n" {
		t.Errorf("grep -c = %q", res.Stdout)
	}
}

func TestAndOrChains(t *testing.T) {
	if got := run(t, `true && echo yes || echo no`).Stdout; got != "yes\n" {
		t.Errorf("got %q", got)
	}
	if got := run(t, `false && echo yes || echo no`).Stdout; got != "no\n" {
		t.Errorf("got %q", got)
	}
}

func TestExitStopsScript(t *testing.T) {
	res := run(t, `
echo before
exit 3
echo after
`)
	if res.Stdout != "before\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
	if res.ExitCode != 3 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestExitInsideIf(t *testing.T) {
	res := run(t, `
if true; then
  exit 1
fi
echo unreachable
`)
	if strings.Contains(res.Stdout, "unreachable") || res.ExitCode != 1 {
		t.Errorf("res = %+v", res)
	}
}

func TestRedirects(t *testing.T) {
	in := New()
	res, err := in.Run(`
echo first > out.txt
echo second >> out.txt
cat out.txt
echo hidden > /dev/null
`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stdout != "first\nsecond\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
	if in.FS["out.txt"] != "first\nsecond\n" {
		t.Errorf("file = %q", in.FS["out.txt"])
	}
}

func TestStderrRedirect(t *testing.T) {
	in := New()
	res, err := in.Run(`cat missing.yaml > log.txt 2>&1
cat log.txt`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "No such file") {
		t.Errorf("2>&1 did not capture stderr: %+v fs=%q", res, in.FS["log.txt"])
	}
}

func TestStdinRedirect(t *testing.T) {
	in := New()
	in.FS["data.txt"] = "from file\n"
	res, err := in.Run(`cat < data.txt`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stdout != "from file\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestMultilineQuotedEcho(t *testing.T) {
	res := run(t, `echo "line one
line two" | grep two`)
	if res.Stdout != "line two\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestSleepAdvancesVirtualClock(t *testing.T) {
	in := New()
	var advanced time.Duration
	in.AdvanceClock = func(d time.Duration) { advanced += d }
	start := time.Now()
	if _, err := in.Run(`sleep 15; sleep 2s`); err != nil {
		t.Fatal(err)
	}
	if advanced != 17*time.Second {
		t.Errorf("advanced = %v, want 17s", advanced)
	}
	if real := time.Since(start); real > time.Second {
		t.Errorf("sleep took real time: %v", real)
	}
}

func TestTimeoutRunsCommand(t *testing.T) {
	in := New()
	var advanced time.Duration
	in.AdvanceClock = func(d time.Duration) { advanced += d }
	res, err := in.Run(`timeout -s INT 8s echo survived`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stdout != "survived\n" || advanced != 8*time.Second {
		t.Errorf("res=%+v advanced=%v", res, advanced)
	}
}

func TestUnknownCommand(t *testing.T) {
	res := run(t, `definitely-not-a-command`)
	if res.ExitCode != 127 {
		t.Errorf("exit = %d, want 127", res.ExitCode)
	}
	if !strings.Contains(res.Stderr, "command not found") {
		t.Errorf("stderr = %q", res.Stderr)
	}
}

func TestLastExitVariable(t *testing.T) {
	res := run(t, `false
echo $?
true
echo $?`)
	if res.Stdout != "1\n0\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestCommentsIgnored(t *testing.T) {
	res := run(t, `# a comment
echo ok # trailing comment
`)
	if res.Stdout != "ok\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestWordSplittingOfVariables(t *testing.T) {
	res := run(t, `
pods="pod-a pod-b pod-c"
for p in $pods; do echo "[$p]"; done
`)
	if res.Stdout != "[pod-a]\n[pod-b]\n[pod-c]\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
	// Quoted variables do not split.
	res = run(t, `x="a b"; echo "$x" | wc -l`)
	if strings.TrimSpace(res.Stdout) != "1" {
		t.Errorf("quoted split: %q", res.Stdout)
	}
}

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"*", "anything", true},
		{"a*c", "abc", true},
		{"a*c", "ac", true},
		{"a*c", "abd", false},
		{"*REGISTRY_HOST*", "REGISTRY_HOST REGISTRY_PORT", true},
		{"?at", "cat", true},
		{"?at", "flat", false},
		{`\*literal`, "*literal", true},
		{`\*literal`, "xliteral", false},
		{"*apps/v1*", "apiVersion: apps/v1", true},
	}
	for _, c := range cases {
		if got := globMatch(c.pattern, c.s); got != c.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

func TestSampleScriptShape(t *testing.T) {
	// The control-flow skeleton of the paper's Appendix C sample #1.
	res := run(t, `
passed_tests=0
total_tests=3
curl_output="200"
if [ "$curl_output" == "200" ]; then
  ((passed_tests++))
else
  exit 1
fi
env_vars="REGISTRY_HOST REGISTRY_PORT"
if [[ $env_vars == *"REGISTRY_HOST"* && $env_vars == *"REGISTRY_PORT"* ]]; then
  ((passed_tests++))
fi
cpu_limit="100m"
memory_limit="50Mi"
if [ "$cpu_limit" == "100m" ] && [ "$memory_limit" == "50Mi" ]; then
  ((passed_tests++))
fi
if [ $passed_tests -eq $total_tests ]; then
  echo unit_test_passed
fi
`)
	if !strings.Contains(res.Stdout, "unit_test_passed") {
		t.Errorf("sample script failed: %+v", res)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`if true; then echo x`, // missing fi
		`for x in; echo`,       // missing do
		`[[ 1 -eq 1`,           // unterminated cond
		`echo "unterminated`,
		`echo 'unterminated`,
	}
	for _, src := range bad {
		in := New()
		if _, err := in.Run(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestEnvPersistsAcrossRuns(t *testing.T) {
	in := New()
	if _, err := in.Run(`x=keep`); err != nil {
		t.Fatal(err)
	}
	res, err := in.Run(`echo $x`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stdout != "keep\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}
