package shell

import (
	"fmt"
	"strings"
)

// wordPart is a fragment of an expanded word, tagged with whether it was
// quoted (quoted fragments never undergo field splitting or globbing).
type wordPart struct {
	text   string
	quoted bool
}

// plainWord reports whether a raw word contains no quoting, escaping or
// substitution syntax, i.e. it expands to exactly itself. Such words —
// the overwhelming majority of argv words in unit-test scripts — skip
// the expansion machinery entirely.
func plainWord(raw string) bool {
	for i := 0; i < len(raw); i++ {
		switch raw[i] {
		case '\'', '"', '\\', '$', '`':
			return false
		}
	}
	return true
}

// expandParts interprets quotes, backslashes, variables, command and
// arithmetic substitution inside a raw word.
func (in *Interp) expandParts(raw string) ([]wordPart, error) {
	var parts []wordPart
	var cur strings.Builder
	curQuoted := false
	flush := func(quoted bool) {
		if cur.Len() > 0 || quoted {
			parts = append(parts, wordPart{text: cur.String(), quoted: curQuoted})
			cur.Reset()
		}
	}
	i := 0
	for i < len(raw) {
		c := raw[i]
		switch c {
		case '\'':
			end := strings.IndexByte(raw[i+1:], '\'')
			if end < 0 {
				return nil, fmt.Errorf("unterminated single quote")
			}
			flush(false)
			curQuoted = true
			cur.WriteString(raw[i+1 : i+1+end])
			flush(true)
			curQuoted = false
			i += end + 2
		case '"':
			content, n, err := scanDoubleQuoted(raw[i:])
			if err != nil {
				return nil, err
			}
			expanded, err := in.expandInDouble(content)
			if err != nil {
				return nil, err
			}
			flush(false)
			curQuoted = true
			cur.WriteString(expanded)
			flush(true)
			curQuoted = false
			i += n
		case '\\':
			if i+1 < len(raw) {
				flush(false)
				curQuoted = true
				cur.WriteByte(raw[i+1])
				flush(true)
				curQuoted = false
				i += 2
			} else {
				i++
			}
		case '$':
			val, n, err := in.expandDollar(raw[i:])
			if err != nil {
				return nil, err
			}
			cur.WriteString(val)
			i += n
		case '`':
			end := strings.IndexByte(raw[i+1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backtick")
			}
			out, err := in.captureSub(raw[i+1 : i+1+end])
			if err != nil {
				return nil, err
			}
			cur.WriteString(out)
			i += end + 2
		default:
			cur.WriteByte(c)
			i++
		}
	}
	flush(false)
	return parts, nil
}

// scanDoubleQuoted returns the content between double quotes and the
// total bytes consumed including both quotes.
func scanDoubleQuoted(s string) (string, int, error) {
	var b strings.Builder
	i := 1
	for i < len(s) {
		switch s[i] {
		case '\\':
			if i+1 < len(s) {
				b.WriteByte('\\')
				b.WriteByte(s[i+1])
				i += 2
				continue
			}
			i++
		case '"':
			return b.String(), i + 1, nil
		default:
			b.WriteByte(s[i])
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated double quote")
}

// expandInDouble expands $-substitutions inside a double-quoted string.
func (in *Interp) expandInDouble(content string) (string, error) {
	var b strings.Builder
	i := 0
	for i < len(content) {
		c := content[i]
		switch c {
		case '\\':
			if i+1 < len(content) {
				nxt := content[i+1]
				if nxt == '$' || nxt == '`' || nxt == '"' || nxt == '\\' {
					b.WriteByte(nxt)
					i += 2
					continue
				}
			}
			b.WriteByte('\\')
			i++
		case '$':
			val, n, err := in.expandDollar(content[i:])
			if err != nil {
				return "", err
			}
			b.WriteString(val)
			i += n
		case '`':
			end := strings.IndexByte(content[i+1:], '`')
			if end < 0 {
				return "", fmt.Errorf("unterminated backtick")
			}
			out, err := in.captureSub(content[i+1 : i+1+end])
			if err != nil {
				return "", err
			}
			b.WriteString(out)
			i += end + 2
		default:
			b.WriteByte(c)
			i++
		}
	}
	return b.String(), nil
}

// expandDollar expands one $-form at the start of s, returning the value
// and bytes consumed.
func (in *Interp) expandDollar(s string) (string, int, error) {
	if len(s) < 2 {
		return "$", 1, nil
	}
	switch {
	case strings.HasPrefix(s, "$(("):
		inner, n, err := balanced(s[1:], "((", "))")
		if err != nil {
			return "", 0, err
		}
		v, err := in.evalArith(inner)
		if err != nil {
			return "", 0, err
		}
		return fmt.Sprint(v), 1 + n, nil
	case strings.HasPrefix(s, "$("):
		inner, n, err := balanced(s[1:], "(", ")")
		if err != nil {
			return "", 0, err
		}
		out, err := in.captureSub(inner)
		if err != nil {
			return "", 0, err
		}
		return out, 1 + n, nil
	case strings.HasPrefix(s, "${"):
		inner, n, err := balanced(s[1:], "{", "}")
		if err != nil {
			return "", 0, err
		}
		return in.paramValue(inner), 1 + n, nil
	case s[1] == '?':
		return fmt.Sprint(in.lastExit), 2, nil
	case s[1] == '#':
		return "0", 2, nil
	default:
		j := 1
		for j < len(s) && (s[j] == '_' || s[j] >= 'a' && s[j] <= 'z' || s[j] >= 'A' && s[j] <= 'Z' || s[j] >= '0' && s[j] <= '9') {
			j++
		}
		if j == 1 {
			return "$", 1, nil
		}
		return in.Env[s[1:j]], j, nil
	}
}

// paramValue handles ${NAME}, ${NAME:-default}, ${#NAME}.
func (in *Interp) paramValue(inner string) string {
	if rest, ok := strings.CutPrefix(inner, "#"); ok {
		return fmt.Sprint(len(in.Env[rest]))
	}
	if idx := strings.Index(inner, ":-"); idx >= 0 {
		name, def := inner[:idx], inner[idx+2:]
		if v := in.Env[name]; v != "" {
			return v
		}
		return def
	}
	return in.Env[inner]
}

// balanced extracts the content between open..close starting at s[0].
func balanced(s, open, close string) (string, int, error) {
	if !strings.HasPrefix(s, open) {
		return "", 0, fmt.Errorf("expected %q", open)
	}
	depth := 1
	i := len(open)
	for i < len(s) {
		switch {
		case s[i] == '\'':
			end := strings.IndexByte(s[i+1:], '\'')
			if end < 0 {
				return "", 0, fmt.Errorf("unterminated quote in substitution")
			}
			i += end + 2
		case strings.HasPrefix(s[i:], close) && depth == 1:
			return s[len(open):i], i + len(close), nil
		case strings.HasPrefix(s[i:], open):
			depth++
			i += len(open)
		case strings.HasPrefix(s[i:], close):
			depth--
			i += len(close)
		default:
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated %s...%s", open, close)
}

// captureSub runs a command substitution and returns its stdout with
// trailing newlines trimmed. Substitutions inside loops re-run every
// iteration, so their scripts go through the AST cache too.
func (in *Interp) captureSub(script string) (string, error) {
	prog, err := ParseCached(script)
	if err != nil {
		return "", err
	}
	io := newIO("")
	in.execList(prog.stmts, io)
	return strings.TrimRight(io.Out.String(), "\n"), nil
}

// expandFields expands a raw word into argv fields: unquoted expansion
// results undergo IFS whitespace splitting, quoted parts do not.
func (in *Interp) expandFields(raw string) ([]string, error) {
	if plainWord(raw) {
		return []string{raw}, nil
	}
	parts, err := in.expandParts(raw)
	if err != nil {
		return nil, err
	}
	// Fields are accumulated in a builder so that a field assembled
	// from many fragments (adjacent quoted/unquoted parts) costs one
	// final allocation instead of a quadratic chain of string concats.
	var fields []string
	var cur strings.Builder
	open := false // a field is being accumulated
	appendText := func(t string) {
		cur.WriteString(t)
		open = true
	}
	closeField := func() {
		if open {
			fields = append(fields, cur.String())
			cur.Reset()
			open = false
		}
	}
	for _, p := range parts {
		if p.quoted {
			appendText(p.text)
			continue
		}
		rest := p.text
		for len(rest) > 0 {
			idx := strings.IndexAny(rest, " \t\n")
			if idx < 0 {
				appendText(rest)
				break
			}
			if idx > 0 {
				appendText(rest[:idx])
			}
			closeField()
			rest = strings.TrimLeft(rest[idx:], " \t\n")
		}
	}
	closeField()
	return fields, nil
}

// expandOne expands a raw word into a single string with no field
// splitting (assignments, redirect targets, condition operands).
func (in *Interp) expandOne(raw string) (string, error) {
	if plainWord(raw) {
		return raw, nil
	}
	parts, err := in.expandParts(raw)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, p := range parts {
		b.WriteString(p.text)
	}
	return b.String(), nil
}

// expandPattern expands a word for use as a glob pattern: text that was
// quoted has its glob metacharacters escaped so only unquoted * and ?
// act as wildcards.
func (in *Interp) expandPattern(raw string) (string, error) {
	parts, err := in.expandParts(raw)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, p := range parts {
		if p.quoted {
			b.WriteString(escapeGlob(p.text))
		} else {
			b.WriteString(p.text)
		}
	}
	return b.String(), nil
}

func escapeGlob(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '*', '?', '[', ']', '\\':
			b.WriteByte('\\')
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// globMatch matches s against a pattern supporting *, ? and backslash
// escapes. Unlike path.Match, '*' crosses every character including '/'.
func globMatch(pattern, s string) bool {
	return globMatchAt(pattern, s)
}

func globMatchAt(p, s string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '*':
			p = p[1:]
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if globMatchAt(p, s[i:]) {
					return true
				}
			}
			return false
		case '?':
			if len(s) == 0 {
				return false
			}
			p, s = p[1:], s[1:]
		case '\\':
			if len(p) < 2 || len(s) == 0 || p[1] != s[0] {
				return false
			}
			p, s = p[2:], s[1:]
		default:
			if len(s) == 0 || p[0] != s[0] {
				return false
			}
			p, s = p[1:], s[1:]
		}
	}
	return len(s) == 0
}
