package shell

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// randomScript assembles a syntactically valid script from grammar
// fragments, exercising the parser and evaluator broadly.
func randomScript(r *rand.Rand) string {
	var sb strings.Builder
	vars := []string{"a", "b", "c"}
	vals := []string{"1", "42", "hello", "x y z", ""}
	stmts := 1 + r.Intn(6)
	for i := 0; i < stmts; i++ {
		switch r.Intn(7) {
		case 0:
			sb.WriteString(vars[r.Intn(3)] + "=" + quoteMaybe(vals[r.Intn(len(vals))], r) + "\n")
		case 1:
			sb.WriteString("echo $" + vars[r.Intn(3)] + "\n")
		case 2:
			sb.WriteString("if [ \"$" + vars[r.Intn(3)] + "\" == \"42\" ]; then\n  echo yes\nelse\n  echo no\nfi\n")
		case 3:
			sb.WriteString("for x in 1 2 3; do echo $x; done\n")
		case 4:
			sb.WriteString("echo data | grep " + []string{"da", "zz", "a"}[r.Intn(3)] + " || echo miss\n")
		case 5:
			sb.WriteString("((n" + vars[r.Intn(3)] + "++))\n")
		default:
			sb.WriteString("x=$(echo sub); echo \"[$x]\"\n")
		}
	}
	return sb.String()
}

func quoteMaybe(s string, r *rand.Rand) string {
	switch r.Intn(3) {
	case 0:
		return "\"" + s + "\""
	case 1:
		return "'" + s + "'"
	default:
		if s == "" || strings.Contains(s, " ") {
			return "\"" + s + "\""
		}
		return s
	}
}

// TestPropertyScriptsNeverPanicAndTerminate: any grammar-generated
// script parses, runs to completion and stays within the step budget.
func TestPropertyScriptsNeverPanicAndTerminate(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomScript(r))
		},
	}
	prop := func(script string) bool {
		in := New()
		in.MaxSteps = 10000
		res, err := in.Run(script)
		if err != nil {
			t.Logf("script failed to run: %v\n%s", err, script)
			return false
		}
		return res.ExitCode != 124 // never hits the runaway guard
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyRunIsDeterministic: the same script in a fresh
// interpreter produces identical output.
func TestPropertyRunIsDeterministic(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomScript(r))
		},
	}
	prop := func(script string) bool {
		r1, err1 := New().Run(script)
		r2, err2 := New().Run(script)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		return r1 == r2
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyArithmeticMatchesGo: the arithmetic evaluator agrees with
// Go on random integer expressions.
func TestPropertyArithmeticMatchesGo(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(int64(r.Intn(200) - 100))
			vals[1] = reflect.ValueOf(int64(r.Intn(99) + 1))
			vals[2] = reflect.ValueOf(int64(r.Intn(200) - 100))
		},
	}
	prop := func(a, b, c int64) bool {
		in := New()
		expr := sprintf("(%d + %d) * %d - %d / %d", a, c, b, a, b)
		got, err := in.evalArith(expr)
		if err != nil {
			return false
		}
		return got == (a+c)*b-a/b
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func sprintf(format string, args ...any) string {
	var sb strings.Builder
	_, _ = fmtFprintf(&sb, format, args...)
	return sb.String()
}

// fmtFprintf avoids importing fmt solely for the helper above.
func fmtFprintf(sb *strings.Builder, format string, args ...any) (int, error) {
	s := format
	for _, a := range args {
		idx := strings.Index(s, "%d")
		if idx < 0 {
			break
		}
		sb.WriteString(s[:idx])
		sb.WriteString(itoa64(a.(int64)))
		s = s[idx+2:]
	}
	sb.WriteString(s)
	return sb.Len(), nil
}

func itoa64(v int64) string {
	if v < 0 {
		return "-" + itoa64(-v)
	}
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	p := len(buf)
	for v > 0 {
		p--
		buf[p] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[p:])
}
