package shell

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// coreBuiltins is the shared read-only table of coreutils-flavored
// commands every unit test script can rely on. It is built once at
// package init and consulted by Interp.invoke after the per-interp
// Builtins map, so constructing an interpreter never copies it. All
// entries are stateless: each receives the calling Interp explicitly
// and keeps no state of its own, which is what makes sharing the table
// across concurrently running interpreters safe. (Populated in init
// rather than a declaration-time call: invoke referring to the map and
// a builtin referring back to invoke would otherwise form an
// initialization cycle.)
var coreBuiltins map[string]Builtin

func init() { coreBuiltins = buildCoreBuiltins() }

func buildCoreBuiltins() map[string]Builtin {
	b := make(map[string]Builtin, 32)
	b["echo"] = builtinEcho
	b["printf"] = builtinPrintf
	b["cat"] = builtinCat
	b["grep"] = builtinGrep
	b["sleep"] = builtinSleep
	b["true"] = func(*Interp, *IO, []string) int { return 0 }
	b["false"] = func(*Interp, *IO, []string) int { return 1 }
	b[":"] = func(*Interp, *IO, []string) int { return 0 }
	b["exit"] = builtinExit
	b["test"] = builtinTest
	b["wc"] = builtinWC
	b["sort"] = builtinSort
	b["head"] = builtinHead
	b["tail"] = builtinTail
	b["tr"] = builtinTr
	b["cut"] = builtinCut
	b["timeout"] = builtinTimeout
	b["export"] = builtinExport
	b["set"] = func(*Interp, *IO, []string) int { return 0 }
	b["unset"] = func(in *Interp, _ *IO, args []string) int {
		for _, a := range args {
			delete(in.Env, a)
		}
		return 0
	}
	b["rm"] = func(in *Interp, _ *IO, args []string) int {
		for _, a := range args {
			if !strings.HasPrefix(a, "-") {
				delete(in.FS, a)
			}
		}
		return 0
	}
	b["tee"] = builtinTee
	b["seq"] = builtinSeq
	b["basename"] = func(_ *Interp, io *IO, args []string) int {
		if len(args) > 0 {
			parts := strings.Split(args[0], "/")
			fmt.Fprintln(io.Out, parts[len(parts)-1])
		}
		return 0
	}
	return b
}

func builtinEcho(_ *Interp, io *IO, args []string) int {
	newline := true
	interpret := false
	for len(args) > 0 {
		if args[0] == "-n" {
			newline = false
			args = args[1:]
		} else if args[0] == "-e" {
			interpret = true
			args = args[1:]
		} else {
			break
		}
	}
	out := strings.Join(args, " ")
	if interpret {
		out = strings.NewReplacer(`\n`, "\n", `\t`, "\t", `\\`, `\`).Replace(out)
	}
	io.Out.WriteString(out)
	if newline {
		io.Out.WriteString("\n")
	}
	return 0
}

func builtinPrintf(_ *Interp, io *IO, args []string) int {
	if len(args) == 0 {
		return 1
	}
	format := strings.NewReplacer(`\n`, "\n", `\t`, "\t").Replace(args[0])
	rest := make([]any, len(args)-1)
	for i, a := range args[1:] {
		rest[i] = a
	}
	fmt.Fprintf(io.Out, format, rest...)
	return 0
}

func builtinCat(in *Interp, io *IO, args []string) int {
	if len(args) == 0 {
		io.Out.WriteString(io.In)
		return 0
	}
	code := 0
	for _, f := range args {
		if f == "-" {
			io.Out.WriteString(io.In)
			continue
		}
		content, ok := in.FS[f]
		if !ok {
			fmt.Fprintf(io.Err, "cat: %s: No such file or directory\n", f)
			code = 1
			continue
		}
		io.Out.WriteString(content)
	}
	return code
}

func builtinGrep(in *Interp, io *IO, args []string) int {
	quiet, invert, count, ignoreCase, only := false, false, false, false, false
	var pattern string
	var files []string
	havePattern := false
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-q":
			quiet = true
		case a == "-v":
			invert = true
		case a == "-c":
			count = true
		case a == "-i":
			ignoreCase = true
		case a == "-o":
			only = true
		case a == "-E" || a == "-e":
			if a == "-e" && i+1 < len(args) {
				pattern = args[i+1]
				havePattern = true
				i++
			}
		case a == "-m":
			i++ // max-count: with our small outputs, safely ignored
		case strings.HasPrefix(a, "-"):
			// Unknown flag: ignore, matching the forgiving scripts.
		case !havePattern:
			pattern = a
			havePattern = true
		default:
			files = append(files, a)
		}
	}
	if !havePattern {
		fmt.Fprintln(io.Err, "usage: grep [-qvcio] pattern [file...]")
		return 2
	}
	matcher := compileGrep(pattern, ignoreCase)
	var input string
	if len(files) == 0 {
		input = io.In
	} else {
		var sb strings.Builder
		for _, f := range files {
			content, ok := in.FS[f]
			if !ok {
				fmt.Fprintf(io.Err, "grep: %s: No such file or directory\n", f)
				return 2
			}
			sb.WriteString(content)
			if !strings.HasSuffix(content, "\n") {
				sb.WriteString("\n")
			}
		}
		input = sb.String()
	}
	matched := 0
	for _, line := range strings.Split(strings.TrimSuffix(input, "\n"), "\n") {
		hit := matcher.match(line)
		if invert {
			hit = !hit
		}
		if !hit {
			continue
		}
		matched++
		if quiet || count {
			continue
		}
		if only && !invert {
			for _, m := range matcher.findAll(line) {
				fmt.Fprintln(io.Out, m)
			}
		} else {
			fmt.Fprintln(io.Out, line)
		}
	}
	if count {
		fmt.Fprintln(io.Out, matched)
	}
	if matched > 0 {
		return 0
	}
	return 1
}

type grepMatcher struct {
	re      *regexp.Regexp
	literal string
	fold    bool
}

func compileGrep(pattern string, ignoreCase bool) grepMatcher {
	p := pattern
	if ignoreCase {
		p = "(?i)" + p
	}
	if re, err := regexp.Compile(p); err == nil {
		return grepMatcher{re: re}
	}
	return grepMatcher{literal: pattern, fold: ignoreCase}
}

func (g grepMatcher) match(line string) bool {
	if g.re != nil {
		return g.re.MatchString(line)
	}
	if g.fold {
		return strings.Contains(strings.ToLower(line), strings.ToLower(g.literal))
	}
	return strings.Contains(line, g.literal)
}

func (g grepMatcher) findAll(line string) []string {
	if g.re != nil {
		return g.re.FindAllString(line, -1)
	}
	if g.match(line) {
		return []string{g.literal}
	}
	return nil
}

func builtinSleep(in *Interp, io *IO, args []string) int {
	if len(args) == 0 {
		return 0
	}
	d, err := parseDuration(args[0])
	if err != nil {
		fmt.Fprintf(io.Err, "sleep: invalid time interval %q\n", args[0])
		return 1
	}
	in.Advance(d)
	return 0
}

// parseDuration accepts bash sleep/timeout formats: "15", "0.5", "8s",
// "2m", "1h".
func parseDuration(s string) (time.Duration, error) {
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return time.Duration(f * float64(time.Second)), nil
	}
	return time.ParseDuration(s)
}

func builtinExit(in *Interp, io *IO, args []string) int {
	code := in.LastExit()
	if len(args) > 0 {
		if v, err := strconv.Atoi(args[0]); err == nil {
			code = v
		}
	}
	in.Exit(code)
	return code
}

func builtinTest(in *Interp, io *IO, args []string) int {
	ok, err := in.evalCondExpanded(args)
	if err != nil {
		fmt.Fprintf(io.Err, "test: %v\n", err)
		return 2
	}
	if ok {
		return 0
	}
	return 1
}

func builtinWC(in *Interp, io *IO, args []string) int {
	lines := false
	var files []string
	for _, a := range args {
		if a == "-l" {
			lines = true
		} else if !strings.HasPrefix(a, "-") {
			files = append(files, a)
		}
	}
	input := io.In
	if len(files) > 0 {
		input = in.FS[files[0]]
	}
	n := 0
	if input != "" {
		n = strings.Count(input, "\n")
		if !strings.HasSuffix(input, "\n") {
			n++
		}
	}
	if lines {
		fmt.Fprintln(io.Out, n)
	} else {
		words := len(strings.Fields(input))
		fmt.Fprintf(io.Out, "%d %d %d\n", n, words, len(input))
	}
	return 0
}

func builtinSort(in *Interp, io *IO, args []string) int {
	reverse := false
	var files []string
	for _, a := range args {
		if a == "-r" {
			reverse = true
		} else if !strings.HasPrefix(a, "-") {
			files = append(files, a)
		}
	}
	input := io.In
	if len(files) > 0 {
		input = in.FS[files[0]]
	}
	lines := strings.Split(strings.TrimSuffix(input, "\n"), "\n")
	sort.Strings(lines)
	if reverse {
		for i, j := 0, len(lines)-1; i < j; i, j = i+1, j-1 {
			lines[i], lines[j] = lines[j], lines[i]
		}
	}
	for _, ln := range lines {
		fmt.Fprintln(io.Out, ln)
	}
	return 0
}

func headTailCount(args []string) (int, []string) {
	n := 10
	var files []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-n" && i+1 < len(args):
			if v, err := strconv.Atoi(args[i+1]); err == nil {
				n = v
			}
			i++
		case strings.HasPrefix(a, "-n"):
			if v, err := strconv.Atoi(a[2:]); err == nil {
				n = v
			}
		case strings.HasPrefix(a, "-"):
			if v, err := strconv.Atoi(a[1:]); err == nil {
				n = v
			}
		default:
			files = append(files, a)
		}
	}
	return n, files
}

func builtinHead(in *Interp, io *IO, args []string) int {
	n, files := headTailCount(args)
	input := io.In
	if len(files) > 0 {
		input = in.FS[files[0]]
	}
	lines := strings.Split(strings.TrimSuffix(input, "\n"), "\n")
	if n < len(lines) {
		lines = lines[:n]
	}
	for _, ln := range lines {
		fmt.Fprintln(io.Out, ln)
	}
	return 0
}

func builtinTail(in *Interp, io *IO, args []string) int {
	n, files := headTailCount(args)
	input := io.In
	if len(files) > 0 {
		input = in.FS[files[0]]
	}
	lines := strings.Split(strings.TrimSuffix(input, "\n"), "\n")
	if n < len(lines) {
		lines = lines[len(lines)-n:]
	}
	for _, ln := range lines {
		fmt.Fprintln(io.Out, ln)
	}
	return 0
}

func builtinTr(_ *Interp, io *IO, args []string) int {
	// Both forms run in one rune-wise pass over the input instead of
	// one ReplaceAll (a full copy) per character of the spec. For
	// translation this also matches real tr on overlapping sets: each
	// input character is mapped from the original, never re-translated
	// by a later spec pair (`echo ab | tr ab ba` gives "ba", where the
	// old chained-ReplaceAll implementation gave "aa").
	if len(args) == 2 && args[0] == "-d" {
		drop := args[1]
		io.Out.Grow(len(io.In))
		for _, r := range io.In {
			if !strings.ContainsRune(drop, r) {
				io.Out.WriteRune(r)
			}
		}
		return 0
	}
	if len(args) == 2 {
		from := []rune(args[0])
		to := []rune(args[1])
		io.Out.Grow(len(io.In))
		for _, r := range io.In {
			for j, f := range from {
				if f == r && j < len(to) {
					r = to[j]
					break
				}
			}
			io.Out.WriteRune(r)
		}
		return 0
	}
	io.Out.WriteString(io.In)
	return 0
}

func builtinCut(_ *Interp, io *IO, args []string) int {
	delim := "\t"
	field := 1
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case strings.HasPrefix(a, "-d"):
			if a == "-d" && i+1 < len(args) {
				delim = args[i+1]
				i++
			} else {
				delim = strings.Trim(a[2:], "'\"")
			}
		case strings.HasPrefix(a, "-f"):
			spec := a[2:]
			if spec == "" && i+1 < len(args) {
				spec = args[i+1]
				i++
			}
			if v, err := strconv.Atoi(spec); err == nil {
				field = v
			}
		}
	}
	for _, line := range strings.Split(strings.TrimSuffix(io.In, "\n"), "\n") {
		parts := strings.Split(line, delim)
		if field-1 < len(parts) {
			fmt.Fprintln(io.Out, parts[field-1])
		} else {
			fmt.Fprintln(io.Out, line)
		}
	}
	return 0
}

func builtinTimeout(in *Interp, io *IO, args []string) int {
	// timeout [-s SIGNAL] DURATION command args...
	i := 0
	for i < len(args) && strings.HasPrefix(args[i], "-") {
		if args[i] == "-s" {
			i++ // signal name
		}
		i++
	}
	if i >= len(args) {
		fmt.Fprintln(io.Err, "timeout: missing duration")
		return 125
	}
	d, err := parseDuration(args[i])
	if err != nil {
		fmt.Fprintf(io.Err, "timeout: invalid duration %q\n", args[i])
		return 125
	}
	i++
	if i >= len(args) {
		fmt.Fprintln(io.Err, "timeout: missing command")
		return 125
	}
	in.Advance(d)
	return in.invoke(args[i:], io)
}

func builtinExport(in *Interp, io *IO, args []string) int {
	for _, a := range args {
		if name, val, ok := splitAssign(a); ok {
			in.Env[name] = val
		}
	}
	return 0
}

func builtinTee(in *Interp, io *IO, args []string) int {
	appendMode := false
	var files []string
	for _, a := range args {
		if a == "-a" {
			appendMode = true
		} else {
			files = append(files, a)
		}
	}
	io.Out.WriteString(io.In)
	for _, f := range files {
		if appendMode {
			in.FS[f] += io.In
		} else {
			in.FS[f] = io.In
		}
	}
	return 0
}

func builtinSeq(_ *Interp, io *IO, args []string) int {
	lo, hi := 1, 0
	switch len(args) {
	case 1:
		hi, _ = strconv.Atoi(args[0])
	case 2:
		lo, _ = strconv.Atoi(args[0])
		hi, _ = strconv.Atoi(args[1])
	default:
		return 1
	}
	for i := lo; i <= hi; i++ {
		fmt.Fprintln(io.Out, i)
	}
	return 0
}
