package shell

import (
	"fmt"
	"strings"
)

// AST node types. The grammar, smallest to largest:
//
//	program  := list EOF
//	list     := andOr ((";" | newline)+ andOr)*
//	andOr    := pipeline (("&&" | "||") pipeline)*
//	pipeline := command ("|" command)*
//	command  := ifCmd | forCmd | whileCmd | condCmd | arithCmd | simple
type (
	program struct{ stmts []node }

	node interface{ nodeTag() }

	andOr struct {
		left  node
		op    string // "&&" or "||"
		right node
	}

	pipeline struct{ cmds []node }

	simpleCmd struct {
		assigns []assign
		words   []string // raw word texts
		redirs  []redir
		line    int
	}

	ifCmd struct {
		cond     []node
		then     []node
		elifs    []elifClause
		elseBody []node
	}

	elifClause struct {
		cond []node
		then []node
	}

	forCmd struct {
		varName string
		items   []string // raw words
		body    []node
	}

	whileCmd struct {
		cond []node
		body []node
	}

	condCmd struct { // [[ ... ]]
		words []string
		line  int
	}

	notCmd struct{ cmd node } // ! command

	arithCmd struct { // (( ... ))
		expr string
		line int
	}
)

func (program) nodeTag()   {}
func (andOr) nodeTag()     {}
func (pipeline) nodeTag()  {}
func (simpleCmd) nodeTag() {}
func (ifCmd) nodeTag()     {}
func (forCmd) nodeTag()    {}
func (whileCmd) nodeTag()  {}
func (condCmd) nodeTag()   {}
func (arithCmd) nodeTag()  {}
func (notCmd) nodeTag()    {}

type assign struct {
	name string
	raw  string // raw value text, expanded at exec time
}

type redir struct {
	fd     int    // source fd
	op     string // > >> < >&
	target string // raw word
}

// Parse compiles a script into its AST.
func Parse(src string) (*program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("shell: line %d: %s", p.peek().line, fmt.Sprintf(format, args...))
}

func (p *parser) skipSeparators() {
	for p.peek().kind == tokNewline || p.peek().kind == tokOp && p.peek().text == ";" {
		p.pos++
	}
}

func (p *parser) parseProgram() (*program, error) {
	stmts, err := p.parseList(nil)
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected token %q", p.peek())
	}
	return &program{stmts: stmts}, nil
}

// parseList parses statements until EOF or one of the stop keywords
// (then, fi, do, done, else, elif) appears in command position.
func (p *parser) parseList(stops []string) ([]node, error) {
	var stmts []node
	for {
		p.skipSeparators()
		t := p.peek()
		if t.kind == tokEOF {
			return stmts, nil
		}
		if t.kind == tokWord && contains(stops, t.text) {
			return stmts, nil
		}
		stmt, err := p.parseAndOr(stops)
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, stmt)
	}
}

func (p *parser) parseAndOr(stops []string) (node, error) {
	left, err := p.parsePipeline(stops)
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || t.text != "&&" && t.text != "||" {
			return left, nil
		}
		op := p.next().text
		// Allow a newline after && / ||.
		for p.peek().kind == tokNewline {
			p.pos++
		}
		right, err := p.parsePipeline(stops)
		if err != nil {
			return nil, err
		}
		left = &andOr{left: left, op: op, right: right}
	}
}

func (p *parser) parsePipeline(stops []string) (node, error) {
	first, err := p.parseCommand(stops)
	if err != nil {
		return nil, err
	}
	cmds := []node{first}
	for p.peek().kind == tokOp && p.peek().text == "|" {
		p.next()
		for p.peek().kind == tokNewline {
			p.pos++
		}
		cmd, err := p.parseCommand(stops)
		if err != nil {
			return nil, err
		}
		cmds = append(cmds, cmd)
	}
	if len(cmds) == 1 {
		return first, nil
	}
	return &pipeline{cmds: cmds}, nil
}

func (p *parser) parseCommand(stops []string) (node, error) {
	t := p.peek()
	if t.kind != tokWord {
		return nil, p.errf("expected command, got %q", t)
	}
	switch {
	case t.text == "!":
		p.next()
		inner, err := p.parseCommand(stops)
		if err != nil {
			return nil, err
		}
		return &notCmd{cmd: inner}, nil
	case t.text == "if":
		return p.parseIf()
	case t.text == "for":
		return p.parseFor()
	case t.text == "while" || t.text == "until":
		return p.parseWhile(t.text == "until")
	case t.text == "[[":
		return p.parseCond()
	case strings.HasPrefix(t.text, "((") && strings.HasSuffix(t.text, "))"):
		p.next()
		return &arithCmd{expr: t.text[2 : len(t.text)-2], line: t.line}, nil
	}
	return p.parseSimple()
}

func (p *parser) parseIf() (node, error) {
	p.next() // "if"
	cond, err := p.parseList([]string{"then"})
	if err != nil {
		return nil, err
	}
	if err := p.expectWord("then"); err != nil {
		return nil, err
	}
	then, err := p.parseList([]string{"fi", "else", "elif"})
	if err != nil {
		return nil, err
	}
	cmd := &ifCmd{cond: cond, then: then}
	for p.peek().kind == tokWord && p.peek().text == "elif" {
		p.next()
		econd, err := p.parseList([]string{"then"})
		if err != nil {
			return nil, err
		}
		if err := p.expectWord("then"); err != nil {
			return nil, err
		}
		ethen, err := p.parseList([]string{"fi", "else", "elif"})
		if err != nil {
			return nil, err
		}
		cmd.elifs = append(cmd.elifs, elifClause{cond: econd, then: ethen})
	}
	if p.peek().kind == tokWord && p.peek().text == "else" {
		p.next()
		elseBody, err := p.parseList([]string{"fi"})
		if err != nil {
			return nil, err
		}
		cmd.elseBody = elseBody
	}
	if err := p.expectWord("fi"); err != nil {
		return nil, err
	}
	return cmd, nil
}

func (p *parser) parseFor() (node, error) {
	p.next() // "for"
	nameTok := p.next()
	if nameTok.kind != tokWord {
		return nil, p.errf("for: expected variable name")
	}
	cmd := &forCmd{varName: nameTok.text}
	p.skipSeparators()
	if p.peek().kind == tokWord && p.peek().text == "in" {
		p.next()
		for p.peek().kind == tokWord && p.peek().text != "do" {
			cmd.items = append(cmd.items, p.next().text)
		}
	}
	p.skipSeparators()
	if err := p.expectWord("do"); err != nil {
		return nil, err
	}
	body, err := p.parseList([]string{"done"})
	if err != nil {
		return nil, err
	}
	cmd.body = body
	if err := p.expectWord("done"); err != nil {
		return nil, err
	}
	return cmd, nil
}

func (p *parser) parseWhile(until bool) (node, error) {
	p.next() // "while"/"until"
	cond, err := p.parseList([]string{"do"})
	if err != nil {
		return nil, err
	}
	if err := p.expectWord("do"); err != nil {
		return nil, err
	}
	body, err := p.parseList([]string{"done"})
	if err != nil {
		return nil, err
	}
	if err := p.expectWord("done"); err != nil {
		return nil, err
	}
	if until {
		// until COND == while ! COND: wrap the condition.
		cond = []node{&ifCmd{cond: cond, then: []node{&simpleCmd{words: []string{"false"}}}, elseBody: []node{&simpleCmd{words: []string{"true"}}}}}
	}
	return &whileCmd{cond: cond, body: body}, nil
}

func (p *parser) parseCond() (node, error) {
	start := p.next() // "[["
	var words []string
	for {
		t := p.peek()
		if t.kind == tokEOF || t.kind == tokNewline {
			return nil, p.errf("unterminated [[ ]]")
		}
		// Inside [[ ]], && and || are condition operators.
		if t.kind == tokOp && (t.text == "&&" || t.text == "||") {
			words = append(words, t.text)
			p.next()
			continue
		}
		if t.kind != tokWord {
			return nil, p.errf("unexpected %q inside [[ ]]", t)
		}
		p.next()
		if t.text == "]]" {
			return &condCmd{words: words, line: start.line}, nil
		}
		words = append(words, t.text)
	}
}

func (p *parser) parseSimple() (node, error) {
	cmd := &simpleCmd{line: p.peek().line}
	// Leading assignments: NAME=value words before the command name.
	for p.peek().kind == tokWord && len(cmd.words) == 0 {
		if name, raw, ok := splitAssign(p.peek().text); ok {
			cmd.assigns = append(cmd.assigns, assign{name: name, raw: raw})
			p.next()
			continue
		}
		break
	}
	for {
		t := p.peek()
		switch t.kind {
		case tokWord:
			cmd.words = append(cmd.words, t.text)
			p.next()
		case tokRedir:
			r := redir{fd: t.fd, op: t.text}
			p.next()
			target := p.peek()
			if target.kind != tokWord {
				return nil, p.errf("redirect needs a target")
			}
			r.target = target.text
			p.next()
			cmd.redirs = append(cmd.redirs, r)
		default:
			if len(cmd.words) == 0 && len(cmd.assigns) == 0 {
				return nil, p.errf("expected command")
			}
			return cmd, nil
		}
	}
}

func (p *parser) expectWord(w string) error {
	p.skipSeparators()
	t := p.peek()
	if t.kind != tokWord || t.text != w {
		return p.errf("expected %q, got %q", w, t)
	}
	p.next()
	return nil
}

// splitAssign recognizes NAME=value words (unquoted NAME, first '=').
func splitAssign(word string) (name, raw string, ok bool) {
	for i := 0; i < len(word); i++ {
		c := word[i]
		if c == '=' {
			if i == 0 {
				return "", "", false
			}
			return word[:i], word[i+1:], true
		}
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || i > 0 && c >= '0' && c <= '9') {
			return "", "", false
		}
	}
	return "", "", false
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
