// Package shell implements the subset of bash that CloudEval-YAML unit
// test scripts are written in: pipelines, && / || / ; lists, if/elif/
// else, for loops, [[ ]] and [ ] conditionals, (( )) arithmetic,
// variable and command substitution, pattern matching, and redirects
// onto an in-memory filesystem.
//
// The interpreter is deliberately hermetic: no real processes, no real
// files, no real time. Commands are Go builtins; "sleep" advances a
// virtual clock supplied by the embedder; kubectl/curl/minikube are
// registered by the k8scmd package against a kubesim cluster.
package shell

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokWord  tokenKind = iota
	tokOp              // && || | ; ( )
	tokRedir           // > >> < >&
	tokNewline
	tokEOF
)

type token struct {
	kind tokenKind
	text string // raw text for words; op text for ops
	fd   int    // redirect source fd (default 1 for >, 0 for <)
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokNewline:
		return "<newline>"
	case tokEOF:
		return "<eof>"
	default:
		return t.text
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex splits a script into tokens. Words keep their raw text (quotes,
// $ expansions and all); the expansion pass interprets them later.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		l.skipBlanks()
		if l.pos >= len(l.src) {
			l.emit(token{kind: tokEOF, line: l.line})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.pos++
			l.emit(token{kind: tokNewline, line: l.line})
			l.line++
		case c == '#':
			l.skipComment()
		case c == '\\' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '\n':
			// Line continuation.
			l.pos += 2
			l.line++
		case strings.HasPrefix(l.src[l.pos:], "&&"):
			l.pos += 2
			l.emit(token{kind: tokOp, text: "&&", line: l.line})
		case strings.HasPrefix(l.src[l.pos:], "||"):
			l.pos += 2
			l.emit(token{kind: tokOp, text: "||", line: l.line})
		case c == ';':
			l.pos++
			l.emit(token{kind: tokOp, text: ";", line: l.line})
		case c == '|':
			l.pos++
			l.emit(token{kind: tokOp, text: "|", line: l.line})
		case c == '&':
			// Background execution is treated as sequential.
			l.pos++
			l.emit(token{kind: tokOp, text: ";", line: l.line})
		case c == '>' || c == '<':
			l.lexRedir(1)
		case c >= '0' && c <= '9' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == '>' || l.src[l.pos+1] == '<') && l.atWordStart():
			fd := int(c - '0')
			l.pos++
			l.lexRedir(fd)
		case strings.HasPrefix(l.src[l.pos:], "((") && l.atCommandStart():
			if err := l.lexArith(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexWord(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) skipBlanks() {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' || l.src[l.pos] == '\r') {
		l.pos++
	}
}

func (l *lexer) skipComment() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

// atWordStart reports whether the previous token does not butt up
// against this position (so "2>" is a redirect, but "file2>" is not).
func (l *lexer) atWordStart() bool {
	if l.pos == 0 {
		return true
	}
	prev := l.src[l.pos-1]
	return prev == ' ' || prev == '\t' || prev == '\n' || prev == ';' || prev == '|' || prev == '&'
}

// atCommandStart reports whether the next token would begin a command.
func (l *lexer) atCommandStart() bool {
	for i := len(l.toks) - 1; i >= 0; i-- {
		switch l.toks[i].kind {
		case tokNewline:
			return true
		case tokOp:
			return true
		case tokWord:
			return false
		}
	}
	return true
}

func (l *lexer) lexRedir(fd int) {
	start := l.pos
	c := l.src[l.pos]
	op := string(c)
	l.pos++
	if c == '>' && l.pos < len(l.src) && l.src[l.pos] == '>' {
		op = ">>"
		l.pos++
	} else if c == '>' && l.pos < len(l.src) && l.src[l.pos] == '&' {
		op = ">&"
		l.pos++
	}
	if c == '<' {
		fd = 0
	}
	_ = start
	l.emit(token{kind: tokRedir, text: op, fd: fd, line: l.line})
}

// lexArith captures "(( ... ))" as a single word including delimiters.
func (l *lexer) lexArith() error {
	start := l.pos
	l.pos += 2
	depth := 0
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '(' {
			depth++
		} else if c == ')' {
			if depth > 0 {
				depth--
			} else if l.pos+1 < len(l.src) && l.src[l.pos+1] == ')' {
				l.pos += 2
				l.emit(token{kind: tokWord, text: l.src[start:l.pos], line: l.line})
				return nil
			}
		} else if c == '\n' {
			l.line++
		}
		l.pos++
	}
	return fmt.Errorf("shell: line %d: unterminated (( )) expression", l.line)
}

// lexWord scans one word, tracking quotes and $-substitutions so that
// operators inside them do not split the word. Newlines inside quotes
// are preserved (heredoc-style echo arguments span lines).
func (l *lexer) lexWord() error {
	start := l.pos
	startLine := l.line
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case ' ', '\t', '\r', '\n', ';', '&', '|', '<':
			return l.finishWord(start, startLine)
		case '>':
			return l.finishWord(start, startLine)
		case '#':
			// '#' only starts a comment at the start of a word.
			if l.pos == start {
				l.skipComment()
				return nil
			}
			l.pos++
		case '\'':
			if err := l.scanSingle(); err != nil {
				return err
			}
		case '"':
			if err := l.scanDouble(); err != nil {
				return err
			}
		case '`':
			if err := l.scanBackticks(); err != nil {
				return err
			}
		case '\\':
			l.pos += 2
		case '$':
			if err := l.scanDollar(); err != nil {
				return err
			}
		default:
			l.pos++
		}
	}
	return l.finishWord(start, startLine)
}

func (l *lexer) finishWord(start, line int) error {
	if l.pos > start {
		l.emit(token{kind: tokWord, text: l.src[start:l.pos], line: line})
	}
	return nil
}

func (l *lexer) scanSingle() error {
	startLine := l.line
	l.pos++ // opening quote
	for l.pos < len(l.src) {
		if l.src[l.pos] == '\n' {
			l.line++
		}
		if l.src[l.pos] == '\'' {
			l.pos++
			return nil
		}
		l.pos++
	}
	return fmt.Errorf("shell: line %d: unterminated single quote", startLine)
}

func (l *lexer) scanDouble() error {
	startLine := l.line
	l.pos++ // opening quote
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case '\n':
			l.line++
			l.pos++
		case '\\':
			l.pos += 2
		case '$':
			if err := l.scanDollar(); err != nil {
				return err
			}
		case '"':
			l.pos++
			return nil
		default:
			l.pos++
		}
	}
	return fmt.Errorf("shell: line %d: unterminated double quote", startLine)
}

func (l *lexer) scanBackticks() error {
	startLine := l.line
	l.pos++ // opening backtick
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case '\n':
			l.line++
			l.pos++
		case '\\':
			l.pos += 2
		case '`':
			l.pos++
			return nil
		default:
			l.pos++
		}
	}
	return fmt.Errorf("shell: line %d: unterminated backtick substitution", startLine)
}

// scanDollar consumes $VAR, ${...}, $(...), $((...)).
func (l *lexer) scanDollar() error {
	l.pos++ // '$'
	if l.pos >= len(l.src) {
		return nil
	}
	switch l.src[l.pos] {
	case '(':
		// $(( or $(
		if strings.HasPrefix(l.src[l.pos:], "((") {
			return l.scanBalanced("((", "))")
		}
		return l.scanBalanced("(", ")")
	case '{':
		return l.scanBalanced("{", "}")
	default:
		for l.pos < len(l.src) && isVarChar(l.src[l.pos]) {
			l.pos++
		}
		// $?, $#, $0-9 single-char specials.
		return nil
	}
}

func (l *lexer) scanBalanced(open, close string) error {
	startLine := l.line
	l.pos += len(open)
	depth := 1
	for l.pos < len(l.src) {
		switch {
		case l.src[l.pos] == '\n':
			l.line++
			l.pos++
		case l.src[l.pos] == '\'':
			if err := l.scanSingle(); err != nil {
				return err
			}
		case l.src[l.pos] == '"':
			if err := l.scanDouble(); err != nil {
				return err
			}
		case strings.HasPrefix(l.src[l.pos:], close) && depth == 1:
			l.pos += len(close)
			return nil
		case strings.HasPrefix(l.src[l.pos:], open):
			depth++
			l.pos += len(open)
		case strings.HasPrefix(l.src[l.pos:], close):
			depth--
			l.pos += len(close)
		default:
			l.pos++
		}
	}
	return fmt.Errorf("shell: line %d: unterminated %s...%s", startLine, open, close)
}

func isVarChar(c byte) bool {
	return c == '_' || c == '?' || c == '#' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
