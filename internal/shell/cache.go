package shell

import (
	"crypto/sha256"
	"sync/atomic"

	"cloudeval/internal/memo"
)

// The AST cache: scripts are content-addressed by digest and compiled
// exactly once per process. CloudEval-YAML runs the same corpus of unit-test
// scripts for every (model, answer) pair, so on the cold evaluation
// path each script would otherwise be re-lexed and re-parsed thousands
// of times. Cached programs are shared across goroutines; this is safe
// because the AST is immutable after Parse — every piece of mutable
// interpreter state (variables, the virtual FS, step counts, exit
// flags) lives in the Interp, never in the nodes. Parse errors are
// cached too, so a malformed script is also diagnosed only once.
// The entry cap comfortably holds the benchmark's scripts and their
// substitution bodies; see the memo package for the overflow story.

type parseOutcome struct {
	prog *program
	err  error
}

var (
	astCacheOn atomic.Bool
	astCache   = memo.New[[sha256.Size]byte, *parseOutcome](1 << 15)
)

func init() { astCacheOn.Store(true) }

// SetASTCache toggles the process-wide parse cache and returns the
// previous setting. It exists for cold-path benchmarks and tests that
// need to measure or exercise the uncached lex/parse path; production
// callers leave it enabled.
func SetASTCache(enabled bool) (prev bool) {
	return astCacheOn.Swap(enabled)
}

// ParseCached compiles a script through the content-addressed AST
// cache: each distinct script text is lexed and parsed exactly once
// per process. The returned program is shared and must be treated as
// immutable (the interpreter already does).
func ParseCached(src string) (*program, error) {
	if !astCacheOn.Load() {
		return Parse(src)
	}
	o := astCache.Do(sha256.Sum256([]byte(src)), func() *parseOutcome {
		prog, err := Parse(src)
		return &parseOutcome{prog: prog, err: err}
	})
	return o.prog, o.err
}
