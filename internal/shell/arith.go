package shell

import (
	"fmt"
	"strconv"
	"strings"
)

// evalArith evaluates a bash arithmetic expression: integers, variables
// (unset reads as 0), + - * / %, comparisons, && || !, parentheses,
// assignment (x=, x+=, ...) and postfix/prefix ++ --.
func (in *Interp) evalArith(src string) (int64, error) {
	p := &arithParser{in: in, src: strings.TrimSpace(src)}
	v, err := p.parseExpr()
	if err != nil {
		return 0, fmt.Errorf("arithmetic %q: %w", src, err)
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return 0, fmt.Errorf("arithmetic %q: trailing %q", src, p.src[p.pos:])
	}
	return v, nil
}

type arithParser struct {
	in  *Interp
	src string
	pos int
}

func (p *arithParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *arithParser) has(op string) bool {
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.pos:], op) {
		return false
	}
	// Avoid eating "==" as "=", "&&" as "&", "++" as "+".
	after := p.src[p.pos+len(op):]
	switch op {
	case "=", "<", ">":
		if strings.HasPrefix(after, "=") {
			return false
		}
	case "+":
		if strings.HasPrefix(after, "+") || strings.HasPrefix(after, "=") {
			return false
		}
	case "-":
		if strings.HasPrefix(after, "-") || strings.HasPrefix(after, "=") {
			return false
		}
	case "*", "/", "%":
		if strings.HasPrefix(after, "=") {
			return false
		}
	}
	p.pos += len(op)
	return true
}

// parseExpr handles assignment: NAME (=|+=|-=|*=|/=) expr.
func (p *arithParser) parseExpr() (int64, error) {
	save := p.pos
	p.skipSpace()
	name, ok := p.readName()
	if ok {
		p.skipSpace()
		for _, op := range []string{"+=", "-=", "*=", "/=", "="} {
			if p.has(op) {
				rhs, err := p.parseExpr()
				if err != nil {
					return 0, err
				}
				cur, _ := strconv.ParseInt(p.in.Env[name], 10, 64)
				var v int64
				switch op {
				case "=":
					v = rhs
				case "+=":
					v = cur + rhs
				case "-=":
					v = cur - rhs
				case "*=":
					v = cur * rhs
				case "/=":
					if rhs == 0 {
						return 0, fmt.Errorf("division by zero")
					}
					v = cur / rhs
				}
				p.in.Env[name] = strconv.FormatInt(v, 10)
				return v, nil
			}
		}
	}
	p.pos = save
	return p.parseOr()
}

func (p *arithParser) parseOr() (int64, error) {
	v, err := p.parseAnd()
	if err != nil {
		return 0, err
	}
	for p.has("||") {
		r, err := p.parseAnd()
		if err != nil {
			return 0, err
		}
		if v != 0 || r != 0 {
			v = 1
		} else {
			v = 0
		}
	}
	return v, nil
}

func (p *arithParser) parseAnd() (int64, error) {
	v, err := p.parseCmp()
	if err != nil {
		return 0, err
	}
	for p.has("&&") {
		r, err := p.parseCmp()
		if err != nil {
			return 0, err
		}
		if v != 0 && r != 0 {
			v = 1
		} else {
			v = 0
		}
	}
	return v, nil
}

func (p *arithParser) parseCmp() (int64, error) {
	v, err := p.parseAdd()
	if err != nil {
		return 0, err
	}
	for {
		var op string
		switch {
		case p.has("=="):
			op = "=="
		case p.has("!="):
			op = "!="
		case p.has("<="):
			op = "<="
		case p.has(">="):
			op = ">="
		case p.has("<"):
			op = "<"
		case p.has(">"):
			op = ">"
		default:
			return v, nil
		}
		r, err := p.parseAdd()
		if err != nil {
			return 0, err
		}
		var b bool
		switch op {
		case "==":
			b = v == r
		case "!=":
			b = v != r
		case "<=":
			b = v <= r
		case ">=":
			b = v >= r
		case "<":
			b = v < r
		case ">":
			b = v > r
		}
		if b {
			v = 1
		} else {
			v = 0
		}
	}
}

func (p *arithParser) parseAdd() (int64, error) {
	v, err := p.parseMul()
	if err != nil {
		return 0, err
	}
	for {
		switch {
		case p.has("+"):
			r, err := p.parseMul()
			if err != nil {
				return 0, err
			}
			v += r
		case p.has("-"):
			r, err := p.parseMul()
			if err != nil {
				return 0, err
			}
			v -= r
		default:
			return v, nil
		}
	}
}

func (p *arithParser) parseMul() (int64, error) {
	v, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		switch {
		case p.has("*"):
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			v *= r
		case p.has("/"):
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			v /= r
		case p.has("%"):
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			v %= r
		default:
			return v, nil
		}
	}
}

func (p *arithParser) parseUnary() (int64, error) {
	p.skipSpace()
	switch {
	case p.has("!"):
		v, err := p.parseUnary()
		if err != nil {
			return 0, err
		}
		if v == 0 {
			return 1, nil
		}
		return 0, nil
	case strings.HasPrefix(p.src[p.pos:], "++"), strings.HasPrefix(p.src[p.pos:], "--"):
		op := p.src[p.pos : p.pos+2]
		p.pos += 2
		p.skipSpace()
		name, ok := p.readName()
		if !ok {
			return 0, fmt.Errorf("%s needs a variable", op)
		}
		cur, _ := strconv.ParseInt(p.in.Env[name], 10, 64)
		if op == "++" {
			cur++
		} else {
			cur--
		}
		p.in.Env[name] = strconv.FormatInt(cur, 10)
		return cur, nil
	case p.has("-"):
		v, err := p.parseUnary()
		if err != nil {
			return 0, err
		}
		return -v, nil
	}
	return p.parsePrimary()
}

func (p *arithParser) parsePrimary() (int64, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0, fmt.Errorf("unexpected end of expression")
	}
	c := p.src[p.pos]
	if c == '(' {
		p.pos++
		v, err := p.parseExpr()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return 0, fmt.Errorf("missing )")
		}
		p.pos++
		return v, nil
	}
	if c == '$' {
		// $var or $(...) inside arithmetic: expand then parse as number.
		val, n, err := p.in.expandDollar(p.src[p.pos:])
		if err != nil {
			return 0, err
		}
		p.pos += n
		val = strings.TrimSpace(val)
		if val == "" {
			return 0, nil
		}
		return strconv.ParseInt(val, 10, 64)
	}
	if c >= '0' && c <= '9' {
		j := p.pos
		for j < len(p.src) && p.src[j] >= '0' && p.src[j] <= '9' {
			j++
		}
		v, err := strconv.ParseInt(p.src[p.pos:j], 10, 64)
		p.pos = j
		return v, err
	}
	name, ok := p.readName()
	if !ok {
		return 0, fmt.Errorf("unexpected character %q", c)
	}
	// Postfix ++ / --.
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], "++") || strings.HasPrefix(p.src[p.pos:], "--") {
		op := p.src[p.pos : p.pos+2]
		p.pos += 2
		cur, _ := strconv.ParseInt(p.in.Env[name], 10, 64)
		if op == "++" {
			p.in.Env[name] = strconv.FormatInt(cur+1, 10)
		} else {
			p.in.Env[name] = strconv.FormatInt(cur-1, 10)
		}
		return cur, nil
	}
	v, _ := strconv.ParseInt(p.in.Env[name], 10, 64)
	return v, nil
}

func (p *arithParser) readName() (string, bool) {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || p.pos > start && c >= '0' && c <= '9' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", false
	}
	return p.src[start:p.pos], true
}
