package shell

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// evalCond evaluates a [[ ... ]] or [ ... ] condition given the raw
// (unexpanded) operand words. Patterns on the right side of == and !=
// are glob-matched with quoted segments literal, bash style; "test"/[
// mode compares literally.
func (in *Interp) evalCond(words []string, patterns bool) (bool, error) {
	c := &condParser{in: in, words: words, patterns: patterns}
	v, err := c.parseOr()
	if err != nil {
		return false, err
	}
	if c.pos != len(c.words) {
		return false, fmt.Errorf("condition: unexpected %q", c.words[c.pos])
	}
	return v, nil
}

type condParser struct {
	in       *Interp
	words    []string
	pos      int
	patterns bool
}

func (c *condParser) peek() (string, bool) {
	if c.pos >= len(c.words) {
		return "", false
	}
	return c.words[c.pos], true
}

func (c *condParser) parseOr() (bool, error) {
	v, err := c.parseAnd()
	if err != nil {
		return false, err
	}
	for {
		w, ok := c.peek()
		if !ok || w != "||" && w != "-o" {
			return v, nil
		}
		c.pos++
		r, err := c.parseAnd()
		if err != nil {
			return false, err
		}
		v = v || r
	}
}

func (c *condParser) parseAnd() (bool, error) {
	v, err := c.parseNot()
	if err != nil {
		return false, err
	}
	for {
		w, ok := c.peek()
		if !ok || w != "&&" && w != "-a" {
			return v, nil
		}
		c.pos++
		r, err := c.parseNot()
		if err != nil {
			return false, err
		}
		v = v && r
	}
}

func (c *condParser) parseNot() (bool, error) {
	if w, ok := c.peek(); ok && w == "!" {
		c.pos++
		v, err := c.parseNot()
		return !v, err
	}
	return c.parsePrimary()
}

var unaryOps = map[string]bool{
	"-z": true, "-n": true, "-e": true, "-f": true, "-d": true, "-s": true,
}

var binaryOps = map[string]bool{
	"==": true, "=": true, "!=": true, "=~": true, "<": true, ">": true,
	"-eq": true, "-ne": true, "-gt": true, "-ge": true, "-lt": true, "-le": true,
}

func (c *condParser) parsePrimary() (bool, error) {
	w, ok := c.peek()
	if !ok {
		return false, fmt.Errorf("condition: unexpected end")
	}
	if w == "(" {
		c.pos++
		v, err := c.parseOr()
		if err != nil {
			return false, err
		}
		if nw, ok := c.peek(); !ok || nw != ")" {
			return false, fmt.Errorf("condition: missing )")
		}
		c.pos++
		return v, nil
	}
	if unaryOps[w] {
		c.pos++
		operand, ok := c.peek()
		if !ok {
			return false, fmt.Errorf("condition: %s needs an operand", w)
		}
		c.pos++
		val, err := c.in.expandOne(operand)
		if err != nil {
			return false, err
		}
		switch w {
		case "-z":
			return val == "", nil
		case "-n":
			return val != "", nil
		case "-e", "-f":
			_, exists := c.in.FS[val]
			return exists, nil
		case "-d":
			return false, nil // no directories in the virtual FS
		case "-s":
			content, exists := c.in.FS[val]
			return exists && len(content) > 0, nil
		}
	}
	// word [binop word]
	lhsRaw := w
	c.pos++
	opWord, ok := c.peek()
	if !ok || !binaryOps[opWord] {
		// Bare word: true when non-empty.
		val, err := c.in.expandOne(lhsRaw)
		return val != "", err
	}
	c.pos++
	rhsRaw, ok := c.peek()
	if !ok {
		return false, fmt.Errorf("condition: %s needs a right operand", opWord)
	}
	c.pos++
	lhs, err := c.in.expandOne(lhsRaw)
	if err != nil {
		return false, err
	}
	switch opWord {
	case "==", "=", "!=":
		var matched bool
		if c.patterns {
			pat, err := c.in.expandPattern(rhsRaw)
			if err != nil {
				return false, err
			}
			matched = globMatch(pat, lhs)
		} else {
			rhs, err := c.in.expandOne(rhsRaw)
			if err != nil {
				return false, err
			}
			matched = lhs == rhs
		}
		if opWord == "!=" {
			return !matched, nil
		}
		return matched, nil
	case "=~":
		rhs, err := c.in.expandOne(rhsRaw)
		if err != nil {
			return false, err
		}
		re, err := regexp.Compile(rhs)
		if err != nil {
			return false, fmt.Errorf("condition: bad regexp %q: %w", rhs, err)
		}
		return re.MatchString(lhs), nil
	case "<", ">":
		rhs, err := c.in.expandOne(rhsRaw)
		if err != nil {
			return false, err
		}
		if opWord == "<" {
			return lhs < rhs, nil
		}
		return lhs > rhs, nil
	default: // numeric comparisons
		rhs, err := c.in.expandOne(rhsRaw)
		if err != nil {
			return false, err
		}
		ln, err1 := strconv.ParseInt(strings.TrimSpace(lhs), 10, 64)
		rn, err2 := strconv.ParseInt(strings.TrimSpace(rhs), 10, 64)
		if err1 != nil || err2 != nil {
			return false, fmt.Errorf("condition: integer expression expected: %q %s %q", lhs, opWord, rhs)
		}
		switch opWord {
		case "-eq":
			return ln == rn, nil
		case "-ne":
			return ln != rn, nil
		case "-gt":
			return ln > rn, nil
		case "-ge":
			return ln >= rn, nil
		case "-lt":
			return ln < rn, nil
		case "-le":
			return ln <= rn, nil
		}
	}
	return false, fmt.Errorf("condition: unsupported operator %q", opWord)
}
