package shell

import (
	"fmt"
	"strings"
	"time"
)

// IO carries a command's standard streams. Pipelines connect one
// command's Out to the next command's In.
type IO struct {
	In  string
	Out *strings.Builder
	Err *strings.Builder
}

func newIO(stdin string) *IO {
	return &IO{In: stdin, Out: &strings.Builder{}, Err: &strings.Builder{}}
}

// Builtin is a command implementation. It returns the exit status.
type Builtin func(in *Interp, io *IO, args []string) int

// Interp executes parsed scripts. The zero value is not usable; call
// New.
type Interp struct {
	// Env holds shell variables.
	Env map[string]string
	// FS is the virtual filesystem commands read and write.
	FS map[string]string
	// Builtins maps command names to implementations added by the
	// embedder (kubectl and friends). The coreutils set lives in a
	// shared read-only table that lookup falls back to, so building an
	// interpreter does not copy it; an entry here shadows a core
	// builtin of the same name.
	Builtins map[string]Builtin
	// AdvanceClock receives virtual-time advances from sleep/timeout/
	// kubectl wait. Nil means time is discarded.
	AdvanceClock func(time.Duration)
	// MaxSteps bounds total command executions to stop runaway loops.
	MaxSteps int

	steps    int
	lastExit int
	exited   bool
}

// New returns an interpreter with the coreutils builtins installed.
func New() *Interp {
	return &Interp{
		Env:      make(map[string]string),
		FS:       make(map[string]string),
		Builtins: make(map[string]Builtin, 8),
		MaxSteps: 200000,
	}
}

// Reset returns the interpreter to its post-New state — variables,
// virtual files, step budget and exit state cleared — while keeping
// the embedder-registered Builtins wired. Environment pools use this
// to recycle interpreters instead of rebuilding them per execution.
func (in *Interp) Reset() {
	clear(in.Env)
	clear(in.FS)
	in.steps = 0
	in.lastExit = 0
	in.exited = false
}

// Advance forwards virtual time to the embedder's clock.
func (in *Interp) Advance(d time.Duration) {
	if in.AdvanceClock != nil && d > 0 {
		in.AdvanceClock(d)
	}
}

// Result is the outcome of running a script.
type Result struct {
	Stdout   string
	Stderr   string
	ExitCode int
}

// Run parses and executes a script from a clean control-flow state
// (variables, files and builtins persist across calls). Parsing goes
// through the process-wide AST cache, so repeated runs of the same
// script text skip the lexer and parser entirely.
func (in *Interp) Run(script string) (Result, error) {
	prog, err := ParseCached(script)
	if err != nil {
		return Result{}, err
	}
	in.exited = false
	io := newIO("")
	code := in.execList(prog.stmts, io)
	return Result{Stdout: io.Out.String(), Stderr: io.Err.String(), ExitCode: code}, nil
}

func (in *Interp) execList(stmts []node, io *IO) int {
	code := 0
	for _, s := range stmts {
		code = in.execNode(s, io)
		if in.exited {
			return in.lastExit
		}
	}
	return code
}

func (in *Interp) execNode(n node, io *IO) int {
	if in.steps++; in.steps > in.MaxSteps {
		fmt.Fprintf(io.Err, "shell: step limit exceeded (%d); aborting\n", in.MaxSteps)
		in.exited = true
		in.lastExit = 124
		return 124
	}
	var code int
	switch t := n.(type) {
	case *andOr:
		code = in.execNode(t.left, io)
		if in.exited {
			return code
		}
		if t.op == "&&" && code == 0 || t.op == "||" && code != 0 {
			code = in.execNode(t.right, io)
		}
	case *pipeline:
		code = in.execPipeline(t, io)
	case *simpleCmd:
		code = in.execSimple(t, io)
	case *ifCmd:
		code = in.execIf(t, io)
	case *forCmd:
		code = in.execFor(t, io)
	case *whileCmd:
		code = in.execWhile(t, io)
	case *condCmd:
		ok, err := in.evalCond(t.words, true)
		if err != nil {
			fmt.Fprintf(io.Err, "shell: line %d: %v\n", t.line, err)
			code = 2
		} else if ok {
			code = 0
		} else {
			code = 1
		}
	case *notCmd:
		if in.execNode(t.cmd, io) == 0 {
			code = 1
		} else {
			code = 0
		}
	case *arithCmd:
		v, err := in.evalArith(t.expr)
		if err != nil {
			fmt.Fprintf(io.Err, "shell: line %d: %v\n", t.line, err)
			code = 1
		} else if v != 0 {
			code = 0
		} else {
			code = 1
		}
	default:
		fmt.Fprintf(io.Err, "shell: unknown node %T\n", n)
		code = 1
	}
	in.lastExit = code
	return code
}

func (in *Interp) execPipeline(p *pipeline, io *IO) int {
	stdin := io.In
	code := 0
	for i, cmd := range p.cmds {
		stage := &IO{In: stdin, Out: &strings.Builder{}, Err: io.Err}
		if i == len(p.cmds)-1 {
			stage.Out = io.Out
		}
		code = in.execNode(cmd, stage)
		if in.exited {
			return code
		}
		if i < len(p.cmds)-1 {
			stdin = stage.Out.String()
		}
	}
	return code
}

func (in *Interp) execIf(c *ifCmd, io *IO) int {
	if in.execList(c.cond, io) == 0 && !in.exited {
		return in.execList(c.then, io)
	}
	if in.exited {
		return in.lastExit
	}
	for _, e := range c.elifs {
		if in.execList(e.cond, io) == 0 && !in.exited {
			return in.execList(e.then, io)
		}
		if in.exited {
			return in.lastExit
		}
	}
	if c.elseBody != nil {
		return in.execList(c.elseBody, io)
	}
	return 0
}

func (in *Interp) execFor(c *forCmd, io *IO) int {
	var items []string
	for _, raw := range c.items {
		fields, err := in.expandFields(raw)
		if err != nil {
			fmt.Fprintf(io.Err, "shell: for: %v\n", err)
			return 1
		}
		items = append(items, fields...)
	}
	code := 0
	for _, item := range items {
		in.Env[c.varName] = item
		code = in.execList(c.body, io)
		if in.exited {
			return code
		}
	}
	return code
}

func (in *Interp) execWhile(c *whileCmd, io *IO) int {
	code := 0
	for {
		if in.execList(c.cond, io) != 0 || in.exited {
			return code
		}
		code = in.execList(c.body, io)
		if in.exited {
			return code
		}
	}
}

func (in *Interp) execSimple(c *simpleCmd, io *IO) int {
	// Assignment-only command: set variables.
	if len(c.words) == 0 {
		for _, a := range c.assigns {
			val, err := in.expandOne(a.raw)
			if err != nil {
				fmt.Fprintf(io.Err, "shell: %v\n", err)
				return 1
			}
			in.Env[a.name] = val
		}
		return 0
	}
	argv := make([]string, 0, len(c.words))
	for _, w := range c.words {
		// Words with no quotes, escapes or substitutions expand to
		// themselves; skip the expansion machinery for them.
		if plainWord(w) {
			argv = append(argv, w)
			continue
		}
		fields, err := in.expandFields(w)
		if err != nil {
			fmt.Fprintf(io.Err, "shell: line %d: %v\n", c.line, err)
			return 1
		}
		argv = append(argv, fields...)
	}
	if len(argv) == 0 {
		return 0
	}
	// Temporary per-command assignments become plain env updates (our
	// builtins all read Env directly).
	for _, a := range c.assigns {
		val, err := in.expandOne(a.raw)
		if err != nil {
			fmt.Fprintf(io.Err, "shell: %v\n", err)
			return 1
		}
		in.Env[a.name] = val
	}

	cmdIO, finish, err := in.applyRedirs(c.redirs, io)
	if err != nil {
		fmt.Fprintf(io.Err, "shell: line %d: %v\n", c.line, err)
		return 1
	}
	code := in.invoke(argv, cmdIO)
	finish()
	return code
}

// applyRedirs builds the IO a command should run with and a finish
// function that flushes redirected output into the virtual FS.
func (in *Interp) applyRedirs(redirs []redir, io *IO) (*IO, func(), error) {
	if len(redirs) == 0 {
		return io, func() {}, nil
	}
	cmdIO := &IO{In: io.In, Out: io.Out, Err: io.Err}
	var flushes []func()
	for _, r := range redirs {
		target, err := in.expandOne(r.target)
		if err != nil {
			return nil, nil, err
		}
		switch r.op {
		case "<":
			content, ok := in.FS[target]
			if !ok {
				return nil, nil, fmt.Errorf("%s: no such file", target)
			}
			cmdIO.In = content
		case ">", ">>":
			buf := &strings.Builder{}
			tgt, op := target, r.op
			if r.fd == 2 {
				cmdIO.Err = buf
			} else {
				cmdIO.Out = buf
			}
			flushes = append(flushes, func() {
				if tgt == "/dev/null" {
					return
				}
				if op == ">>" {
					in.FS[tgt] = in.FS[tgt] + buf.String()
				} else {
					in.FS[tgt] = buf.String()
				}
			})
		case ">&":
			if r.fd == 2 && target == "1" {
				cmdIO.Err = cmdIO.Out
			} else if r.fd == 1 && target == "2" {
				cmdIO.Out = cmdIO.Err
			}
		}
	}
	return cmdIO, func() {
		for _, f := range flushes {
			f()
		}
	}, nil
}

// invoke dispatches argv[0] to a builtin.
func (in *Interp) invoke(argv []string, io *IO) int {
	name := argv[0]
	if name == "[" {
		args := argv[1:]
		if len(args) == 0 || args[len(args)-1] != "]" {
			fmt.Fprintln(io.Err, "[: missing ]")
			return 2
		}
		ok, err := in.evalCondExpanded(args[:len(args)-1])
		if err != nil {
			fmt.Fprintf(io.Err, "[: %v\n", err)
			return 2
		}
		if ok {
			return 0
		}
		return 1
	}
	if b, ok := in.Builtins[name]; ok {
		return b(in, io, argv[1:])
	}
	if b, ok := coreBuiltins[name]; ok {
		return b(in, io, argv[1:])
	}
	fmt.Fprintf(io.Err, "shell: %s: command not found\n", name)
	return 127
}

// evalCondExpanded evaluates test/[ conditions whose operands are
// already expanded argv words.
func (in *Interp) evalCondExpanded(args []string) (bool, error) {
	// Re-quote each operand so evalCond's expansion pass treats it
	// literally.
	quoted := make([]string, len(args))
	for i, a := range args {
		if binaryOps[a] || unaryOps[a] || a == "!" || a == "(" || a == ")" || a == "&&" || a == "||" || a == "-a" || a == "-o" {
			quoted[i] = a
			continue
		}
		quoted[i] = "'" + strings.ReplaceAll(a, "'", `'\''`) + "'"
	}
	return in.evalCond(quoted, false)
}

// LastExit exposes the last command's exit code ($?).
func (in *Interp) LastExit() int { return in.lastExit }

// Exit terminates the running script with the given code. Exposed for
// builtins.
func (in *Interp) Exit(code int) {
	in.exited = true
	in.lastExit = code
}
