// Package repostats reproduces Appendix A (Table 8): YAML-file counts
// across the top-100 most-starred cloud-native repositories, supporting
// the paper's motivating claim that 90 of 100 contain more than ten
// YAML files.
//
// Offline substitution: instead of crawling GitHub, the package ships
// the surveyed repository manifest (name, stars, total files, YAML
// files) transcribed from the paper's Table 8, plus a scanner that can
// recount a synthetic file tree so the counting logic itself is
// exercised end to end.
package repostats

import (
	"fmt"
	"sort"
	"strings"
)

// Repo is one surveyed repository.
type Repo struct {
	Name       string
	Stars      int
	TotalFiles int
	YAMLFiles  int
}

// Table8 is the paper's survey, transcribed.
var Table8 = []Repo{
	{"GitLab", 23368, 58372, 4721}, {"Kubernetes", 101881, 29662, 4715},
	{"Elastic", 65213, 35747, 3143}, {"GraphQL", 30135, 13667, 2169},
	{"Istio", 33694, 6261, 2081}, {"Ansible", 58659, 7236, 1914},
	{"ShardingSphere", 18807, 21945, 1632}, {"llvm", 21975, 148442, 1202},
	{"Argo", 14145, 4172, 1118}, {"Skaffold", 14219, 16345, 1044},
	{"Kubespray", 14472, 2093, 900}, {"SkyWalking", 22442, 5999, 802},
	{"Cilium", 16516, 19972, 780}, {"MongoDB", 24425, 49784, 743},
	{"Backstage", 23285, 12300, 613}, {"Grafana Loki", 20163, 15520, 554},
	{"Helm", 24953, 1784, 540}, {"Envoy", 22759, 13470, 520},
	{"Pulumi", 17622, 8179, 467}, {"Teleport", 14225, 8884, 419},
	{"Traefik", 44719, 1870, 339}, {"minikube", 27261, 2368, 316},
	{"SlimToolkit", 17269, 6545, 305}, {"Prometheus", 49987, 1389, 255},
	{"Grafana", 57207, 15782, 242}, {"Podman", 19128, 10589, 203},
	{"ClickHouse", 30874, 27331, 200}, {"Rancher K8s", 21560, 3655, 196},
	{"Netdata", 65199, 3069, 190}, {"Dapr", 22320, 2027, 186},
	{"Trivy", 18709, 2250, 178}, {"Vector", 14432, 9320, 174},
	{"JHipster", 20853, 3874, 173}, {"RethinkDB", 26257, 2121, 165},
	{"Dgraph", 19620, 2231, 161}, {"Salt Project", 13513, 7242, 153},
	{"Docker Compose", 30543, 466, 147}, {"Vitess", 16897, 5579, 142},
	{"containerd", 14857, 6523, 138}, {"Serverless", 45187, 1805, 131},
	{"CockroachDB", 27828, 18499, 118}, {"k3s", 24517, 750, 97},
	{"Logstash", 13639, 3835, 88}, {"Apache Spark", 36800, 24415, 85},
	{"Kong", 35947, 1888, 75}, {"SST", 17715, 4683, 73},
	{"Rust", 85579, 46998, 69}, {"gRPC", 39066, 12629, 68},
	{"Vault", 27546, 9175, 66}, {"DragonflyDB", 21064, 615, 64},
	{"Consul", 26921, 13084, 62}, {"Keycloak", 17472, 14535, 59},
	{"Presto", 15087, 13493, 57}, {"InfluxData", 26133, 2007, 56},
	{"ORY Hydra", 14434, 2556, 56}, {"OpenAPI", 27136, 181, 55},
	{"Sentry", 35169, 14388, 54}, {"TDengine", 21762, 4620, 51},
	{"Jaeger", 18318, 1469, 48}, {"MinIO", 40904, 1391, 46},
	{"Zipkin", 16425, 1076, 43}, {"k6", 21566, 3382, 40},
	{"Nomad", 13968, 6080, 39}, {"Timescale", 15534, 2289, 39},
	{"etcd", 44537, 1600, 38}, {"Gradle Build Tool", 15205, 35647, 38},
	{"Terraform", 38875, 5704, 36}, {"Apache RocketMQ", 19814, 2985, 36},
	{"Flink", 21993, 27228, 30}, {"Apollo", 28360, 1512, 28},
	{"gVisor", 14172, 3723, 26}, {"Sentinel", 21422, 3487, 25},
	{"go-zero", 25550, 1382, 22}, {"Seata", 24226, 3904, 21},
	{"Packer", 14612, 1450, 20}, {"Wasmer", 16300, 2007, 19},
	{"Portainer", 26644, 3063, 19}, {"Golang", 114620, 14022, 18},
	{"SOPS", 13823, 190, 18}, {"Redis", 61572, 1679, 16},
	{"kratos", 21387, 861, 16}, {"NATS", 24451, 580, 16},
	{"Zig", 26009, 16173, 15}, {"Jenkins", 21453, 13139, 15},
	{"Apache Hadoop", 13858, 9562, 14}, {"Dubbo", 39400, 5399, 14},
	{"TiDB", 34880, 6235, 14}, {"OpenFaaS", 23512, 1100, 14},
	{"emscripten", 24266, 9596, 11}, {"OpenCV", 71360, 8613, 10},
	{"Caddy", 49844, 465, 9}, {"Apache bRPC", 15290, 1632, 9},
	{"Firecracker", 22578, 822, 8}, {"Nacos", 27577, 3501, 6},
	{"Kotlin", 45845, 98293, 5}, {"TiKV", 13617, 1705, 3},
	{"Kafka", 25883, 7020, 2}, {"V8", 21722, 14237, 1},
	{"FFmpeg", 38520, 8287, 1}, {"NGINX(Wasm)", 19089, 559, 0},
}

// CountMoreThan reports repositories with more than n YAML files.
func CountMoreThan(repos []Repo, n int) int {
	c := 0
	for _, r := range repos {
		if r.YAMLFiles > n {
			c++
		}
	}
	return c
}

// CountAtLeast reports repositories with n or more YAML files. The
// paper's "90 out of 100 use more than 10 YAML files" counts this way
// (OpenCV sits exactly at 10).
func CountAtLeast(repos []Repo, n int) int {
	c := 0
	for _, r := range repos {
		if r.YAMLFiles >= n {
			c++
		}
	}
	return c
}

// IsYAMLPath reports whether a path names a YAML file.
func IsYAMLPath(path string) bool {
	lower := strings.ToLower(path)
	return strings.HasSuffix(lower, ".yaml") || strings.HasSuffix(lower, ".yml")
}

// ScanTree counts YAML files in a file listing (the scanner the survey
// would run against a checkout).
func ScanTree(paths []string) (total, yaml int) {
	for _, p := range paths {
		total++
		if IsYAMLPath(p) {
			yaml++
		}
	}
	return total, yaml
}

// SyntheticTree fabricates a deterministic file listing matching a
// repo's recorded totals, so the scanner can be validated against the
// survey numbers.
func SyntheticTree(r Repo) []string {
	paths := make([]string, 0, r.TotalFiles)
	for i := 0; i < r.YAMLFiles; i++ {
		ext := ".yaml"
		if i%3 == 0 {
			ext = ".yml"
		}
		paths = append(paths, fmt.Sprintf("%s/config/manifest_%d%s", strings.ToLower(r.Name), i, ext))
	}
	for i := r.YAMLFiles; i < r.TotalFiles; i++ {
		paths = append(paths, fmt.Sprintf("%s/src/file_%d.go", strings.ToLower(r.Name), i))
	}
	return paths
}

// FormatTable8 renders the survey summary.
func FormatTable8(repos []Repo) string {
	byYAML := make([]Repo, len(repos))
	copy(byYAML, repos)
	sort.Slice(byYAML, func(i, j int) bool { return byYAML[i].YAMLFiles > byYAML[j].YAMLFiles })
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %8s %10s %8s\n", "Repo", "Stars", "Files", "YAML")
	for _, r := range byYAML[:10] {
		fmt.Fprintf(&b, "%-20s %8d %10d %8d\n", r.Name, r.Stars, r.TotalFiles, r.YAMLFiles)
	}
	fmt.Fprintf(&b, "... %d repositories surveyed; %d/%d have 10+ YAML files\n",
		len(repos), CountAtLeast(repos, 10), len(repos))
	return b.String()
}
