package repostats

import (
	"strings"
	"testing"
)

func TestSurveySize(t *testing.T) {
	if len(Table8) != 100 {
		t.Fatalf("survey covers %d repos, want 100", len(Table8))
	}
}

func TestNinetyOfHundredClaim(t *testing.T) {
	// The paper's headline: 90 of the top 100 use more than 10 YAML
	// files (counting repos at 10 or above; OpenCV sits exactly at 10).
	if got := CountAtLeast(Table8, 10); got != 90 {
		t.Errorf("repos with 10+ YAML files = %d, want 90", got)
	}
	if got := CountMoreThan(Table8, 100); got >= 50 {
		t.Errorf("repos with >100 YAML files = %d, expected a minority", got)
	}
}

func TestIsYAMLPath(t *testing.T) {
	cases := map[string]bool{
		"config/app.yaml":  true,
		"deploy/chart.YML": true,
		"a/b/c.yml":        true,
		"main.go":          false,
		"yaml/readme.md":   false,
		"values.yaml.bak":  false,
		"weird.yaml":       true,
	}
	for path, want := range cases {
		if got := IsYAMLPath(path); got != want {
			t.Errorf("IsYAMLPath(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestScanMatchesSurvey(t *testing.T) {
	for _, r := range Table8[:20] {
		total, yaml := ScanTree(SyntheticTree(r))
		if total != r.TotalFiles || yaml != r.YAMLFiles {
			t.Errorf("%s: scan = %d/%d files, survey says %d/%d", r.Name, yaml, total, r.YAMLFiles, r.TotalFiles)
		}
	}
}

func TestFormatTable8(t *testing.T) {
	out := FormatTable8(Table8)
	for _, want := range []string{"GitLab", "Kubernetes", "90/100 have 10+"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 8 missing %q:\n%s", want, out)
		}
	}
}
