package scenario

import (
	"cloudeval/internal/composesim"
	"cloudeval/internal/dataset"
	"cloudeval/internal/helmsim"
	"cloudeval/internal/k8scmd"
)

// The built-in families, registered in the paper's presentation order
// (Table 2) followed by the extension families. The paper families'
// DifficultyBase values and the absence of PromptHints are pinned: they
// are what keeps Tables 2/4 byte-identical to the seed reproduction.
func init() {
	Register(&Backend{
		Category:      dataset.Kubernetes,
		Paper:         true,
		NewEnv:        func() Env { return k8scmd.NewEnv() },
		ImpliedImages: []string{"registry.k8s.io/pause:3.9"},
		Marker:        "kind",
		HasKind:       true,
		DocStart:      "apiVersion:",
	})
	Register(&Backend{
		Category:       dataset.Envoy,
		Paper:          true,
		NewEnv:         func() Env { return k8scmd.NewEnv() },
		ImpliedImages:  []string{"envoyproxy/envoy:v1.27"},
		Marker:         "static_resources",
		HasKind:        false,
		DocStart:       "static_resources:",
		DifficultyBase: 0.55,
	})
	Register(&Backend{
		Category:       dataset.Istio,
		Paper:          true,
		NewEnv:         func() Env { return k8scmd.NewEnv() },
		ImpliedImages:  []string{"istio/pilot:1.19"},
		Marker:         "kind",
		HasKind:        true,
		DocStart:       "apiVersion:",
		DifficultyBase: 0.25,
	})
	Register(&Backend{
		Category:       dataset.Compose,
		NewEnv:         func() Env { return composesim.NewEnv() },
		ImpliedImages:  []string{"docker/compose-bin:v2.24"},
		Marker:         "services",
		HasKind:        false,
		DocStart:       "services:",
		DifficultyBase: 0.10,
		PromptHint:     "Answer with a single Docker Compose YAML file (a top-level services mapping).",
	})
	Register(&Backend{
		Category:       dataset.Helm,
		NewEnv:         func() Env { return helmsim.NewEnv() },
		ImpliedImages:  []string{"alpine/helm:3.14", "registry.k8s.io/pause:3.9"},
		Marker:         "kind",
		HasKind:        true,
		DocStart:       "apiVersion:",
		DifficultyBase: 0.20,
		PromptHint:     "Answer with the Kubernetes manifests the Helm chart renders; they will be installed with `helm install -f`.",
	})
}
