// Package scenario is the workload-family registry of the benchmark:
// one Backend per application family (Kubernetes, Envoy, Istio, Docker
// Compose, Helm, ...) declaring everything the rest of the stack used
// to hardwire per category — the simulated environment factory with
// per-backend pooling (generalizing the k8scmd env pool), the tool
// images an environment implies (registry.ImagesFor), the answer-shape
// markers the format checker and failure categorizer inspect
// (strategy.FormatCheck, analysis.Categorize), the reference-corruptor
// profile and difficulty base the simulated models draw on (llm), and
// the per-family analysis grouping (analysis.Figure6Slices, the
// cloudevald family leaderboard).
//
// Adding a workload family is one Register call: provide an
// environment whose shell binds the family's tools, point the backend
// at it, and every layer — unittest execution, image accounting,
// generation, format checking, failure analysis, per-family
// leaderboards — picks the family up from the registry. See DESIGN.md
// §2.7 and CONTRIBUTING.md ("Adding a workload family").
package scenario

import (
	"strings"
	"sync"
	"time"

	"cloudeval/internal/dataset"
	"cloudeval/internal/shell"
)

// Env is one simulated execution environment: a shell whose builtins
// are wired to the family's simulated backend, on a virtual clock.
// Implementations must make Reset restore the exact post-construction
// state, because environments are pooled and recycled across
// executions.
type Env interface {
	// Interp returns the shell the unit-test script runs in.
	Interp() *shell.Interp
	// Now returns the environment's virtual time.
	Now() time.Time
	// Reset wipes all execution state for pool recycling.
	Reset()
}

// Backend describes one workload family.
type Backend struct {
	// Category is the dataset category the backend serves.
	Category dataset.Category
	// Paper marks the families of the source paper's corpus; Tables 2
	// and 4 are pinned to these so the reproduction stays byte-stable
	// as extension families are added.
	Paper bool
	// NewEnv builds a fresh simulated environment with the family's
	// tool builtins registered.
	NewEnv func() Env
	// ImpliedImages are the tool images every unit-test environment of
	// this family pulls on top of the images named by the reference
	// manifest (the Envoy image for Envoy problems, the pause image for
	// every Kubernetes test node, ...).
	ImpliedImages []string
	// Marker is the top-level key that identifies a family-shaped
	// answer ("kind" for manifest families, "static_resources" for
	// Envoy, "services" for Compose). Failure categorization and the
	// cheap format check key off it.
	Marker string
	// HasKind reports whether the family's documents carry Kubernetes
	// kind/apiVersion identity. It selects the "wrong kind" corruption
	// for category-4 answers (families without document kinds produce
	// functionally wrong configs instead) and the kind+apiVersion form
	// of the format check.
	HasKind bool
	// DocStart is the line prefix a document of this family starts
	// with; the §3.1 post-processor cuts chatty preambles at the first
	// such line.
	DocStart string
	// DifficultyBase is the family's base difficulty in [0,1] before
	// the solution-length term (the paper's Figure 6: Envoy hardest).
	DifficultyBase float64
	// PromptHint is family-specific prompt scaffolding appended to the
	// Appendix B template. Empty for the paper families, whose prompts
	// are pinned by the paper.
	PromptHint string

	pool sync.Pool
}

// GetEnv returns a pristine environment for this family, reusing a
// pooled one when available. Callers must return it with PutEnv and
// must not retain any reference into it afterwards.
func (b *Backend) GetEnv() Env {
	if v := b.pool.Get(); v != nil {
		return v.(Env)
	}
	return b.NewEnv()
}

// PutEnv wipes an environment and recycles it into this family's pool.
// The wipe happens on Put rather than Get so a leaked reference can at
// most observe an empty environment, never a later execution's state.
func (b *Backend) PutEnv(e Env) {
	e.Reset()
	b.pool.Put(e)
}

var (
	mu       sync.RWMutex
	backends = map[dataset.Category]*Backend{}
	order    []*Backend
)

// Register installs a backend. Registering a category twice panics:
// families are process-wide singletons.
func Register(b *Backend) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := backends[b.Category]; dup {
		panic("scenario: duplicate backend for category " + string(b.Category))
	}
	backends[b.Category] = b
	order = append(order, b)
}

// For resolves a category's backend. Unknown categories resolve to the
// Kubernetes backend, mirroring the default arms of the category
// switches this registry replaced.
func For(c dataset.Category) *Backend {
	mu.RLock()
	defer mu.RUnlock()
	if b, ok := backends[c]; ok {
		return b
	}
	return backends[dataset.Kubernetes]
}

// All lists backends in registration order (the paper families first,
// in the paper's presentation order, then extensions). Per-family
// breakdowns across the stack iterate this, so row and column order is
// stable everywhere.
func All() []*Backend {
	mu.RLock()
	defer mu.RUnlock()
	return append([]*Backend(nil), order...)
}

// DocStarts lists the distinct document-start prefixes across all
// families, in registration order — the post-processor's policy-2
// marker set.
func DocStarts() []string {
	mu.RLock()
	defer mu.RUnlock()
	var out []string
	seen := map[string]bool{}
	for _, b := range order {
		if b.DocStart != "" && !seen[b.DocStart] {
			seen[b.DocStart] = true
			out = append(out, b.DocStart)
		}
	}
	return out
}

// docStartRules snapshots the marker set once: backends register at
// package init and the post-processor calls IsDocStartLine per answer
// line, so the set is immutable by the time it is read.
var docStartRules = sync.OnceValues(func() (prefix, exact []string) {
	mu.RLock()
	defer mu.RUnlock()
	seenP, seenE := map[string]bool{}, map[string]bool{}
	for _, b := range order {
		if b.DocStart == "" {
			continue
		}
		if b.HasKind {
			if !seenP[b.DocStart] {
				seenP[b.DocStart] = true
				prefix = append(prefix, b.DocStart)
			}
		} else if !seenE[b.DocStart] {
			seenE[b.DocStart] = true
			exact = append(exact, b.DocStart)
		}
	}
	return prefix, exact
})

// IsDocStartLine reports whether a trimmed answer line opens some
// family's document — the post-processor's policy-2 predicate.
// Manifest families' DocStart ("apiVersion:") carries a scalar value,
// so any suffix qualifies; kindless families' markers introduce a
// block mapping, so only the bare key counts — a prose line like
// "services: web and db" is not a Compose document start and must not
// swallow the manifest that follows it.
func IsDocStartLine(trimmed string) bool {
	prefix, exact := docStartRules()
	for _, p := range prefix {
		if strings.HasPrefix(trimmed, p) {
			return true
		}
	}
	for _, e := range exact {
		if trimmed == e {
			return true
		}
	}
	return false
}
