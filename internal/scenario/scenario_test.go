package scenario

import (
	"testing"

	"cloudeval/internal/dataset"
)

func TestEveryCorpusCategoryHasBackend(t *testing.T) {
	cats := map[dataset.Category]bool{}
	for _, p := range dataset.Generate() {
		cats[p.Category] = true
	}
	registered := map[dataset.Category]bool{}
	for _, b := range All() {
		registered[b.Category] = true
	}
	for c := range cats {
		if !registered[c] {
			t.Errorf("category %s has no scenario backend", c)
		}
	}
}

func TestBackendContracts(t *testing.T) {
	paper := 0
	for _, b := range All() {
		if b.NewEnv == nil {
			t.Fatalf("%s: no environment factory", b.Category)
		}
		if b.Marker == "" {
			t.Errorf("%s: no answer marker", b.Category)
		}
		if b.DocStart == "" {
			t.Errorf("%s: no document-start prefix", b.Category)
		}
		if len(b.ImpliedImages) == 0 {
			t.Errorf("%s: no implied tool images", b.Category)
		}
		if b.Paper {
			paper++
			if b.PromptHint != "" {
				t.Errorf("%s: paper families must not add prompt scaffolding (prompts are pinned)", b.Category)
			}
		}
	}
	if paper != 3 {
		t.Errorf("paper families = %d, want the original three", paper)
	}
}

func TestForFallsBackToKubernetes(t *testing.T) {
	if got := For("no-such-family"); got.Category != dataset.Kubernetes {
		t.Errorf("unknown category resolved to %s", got.Category)
	}
}

func TestDocStartsDeduplicated(t *testing.T) {
	starts := DocStarts()
	seen := map[string]bool{}
	for _, s := range starts {
		if seen[s] {
			t.Errorf("duplicate doc start %q", s)
		}
		seen[s] = true
	}
	for _, want := range []string{"apiVersion:", "static_resources:", "services:"} {
		if !seen[want] {
			t.Errorf("doc starts missing %q: %v", want, starts)
		}
	}
}
