package scenario

import (
	"strings"
	"testing"

	"cloudeval/internal/dataset"
)

// Family-specific scripts that pollute an environment with every kind
// of state a unit test can create, and probes whose output must be
// identical between a recycled and a brand-new environment. This is
// TestPooledEnvNoLeak (internal/k8scmd/envpool_test.go) generalized to
// the scenario registry: every registered family's pool must recycle
// to pristine, and no state may ever cross family pools.
var poolFixtures = map[dataset.Category]struct {
	seed  map[string]string // files installed before the dirty script
	dirty string
	probe string
}{
	dataset.Kubernetes: {
		dirty: "kubectl create namespace leaky\nkubectl create deployment web --image=nginx -n leaky\necho secret > leak.txt\nexport LEAKVAR=oops\nsleep 5\n",
		probe: "kubectl get ns default -o name && cat leak.txt; echo [$LEAKVAR]",
	},
	dataset.Envoy: {
		dirty: "kubectl create namespace leaky\necho secret > leak.txt\nexport LEAKVAR=oops\nsleep 5\n",
		probe: "kubectl get ns default -o name && cat leak.txt; echo [$LEAKVAR]",
	},
	dataset.Istio: {
		dirty: "kubectl create namespace leaky\necho secret > leak.txt\nexport LEAKVAR=oops\nsleep 5\n",
		probe: "kubectl get ns default -o name && cat leak.txt; echo [$LEAKVAR]",
	},
	dataset.Compose: {
		seed:  map[string]string{"app.yaml": "services:\n  leakweb:\n    image: nginx:latest\n    ports:\n    - \"8080:80\"\n"},
		dirty: "docker compose -f app.yaml up -d\necho secret > leak.txt\nexport LEAKVAR=oops\nsleep 5\n",
		probe: "docker compose ps; curl -s -o /dev/null -w \"%{http_code}\" http://localhost:8080/; cat leak.txt; echo [$LEAKVAR]",
	},
	dataset.Helm: {
		seed:  map[string]string{"chart.yaml": "apiVersion: v1\nkind: ConfigMap\nmetadata:\n  name: leaky\ndata:\n  k: v\n"},
		dirty: "helm install leaky -f chart.yaml\necho secret > leak.txt\nexport LEAKVAR=oops\nsleep 5\n",
		probe: "helm ls; kubectl get configmap leaky; cat leak.txt; echo [$LEAKVAR]",
	},
}

// TestScenarioPoolNoLeakPerFamily recycles a polluted environment
// through each family's pool and requires it to be indistinguishable
// from a fresh one.
func TestScenarioPoolNoLeakPerFamily(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(string(b.Category), func(t *testing.T) {
			fx, ok := poolFixtures[b.Category]
			if !ok {
				t.Fatalf("no pool fixture for family %s — add one when registering a backend", b.Category)
			}
			dirty := b.GetEnv()
			for name, content := range fx.seed {
				dirty.Interp().FS[name] = content
			}
			if _, err := dirty.Interp().Run(fx.dirty); err != nil {
				t.Fatalf("dirty script: %v", err)
			}
			b.PutEnv(dirty)

			recycled := b.GetEnv()
			defer b.PutEnv(recycled)
			fresh := b.NewEnv()
			if _, ok := recycled.Interp().FS["leak.txt"]; ok {
				t.Error("file leaked through the pool")
			}
			for name := range fx.seed {
				if _, ok := recycled.Interp().FS[name]; ok {
					t.Errorf("seeded file %s leaked through the pool", name)
				}
			}
			if v, ok := recycled.Interp().Env["LEAKVAR"]; ok {
				t.Errorf("variable leaked through the pool: LEAKVAR=%q", v)
			}
			if !recycled.Now().Equal(fresh.Now()) {
				t.Errorf("virtual clock leaked: recycled %v, fresh %v", recycled.Now(), fresh.Now())
			}
			out1, err1 := recycled.Interp().Run(fx.probe)
			out2, err2 := fresh.Interp().Run(fx.probe)
			if err1 != nil || err2 != nil {
				t.Fatalf("probes errored: %v / %v", err1, err2)
			}
			if out1.Stdout != out2.Stdout || out1.ExitCode != out2.ExitCode {
				t.Errorf("recycled env diverged from fresh env:\nrecycled: %q (%d)\nfresh:    %q (%d)",
					out1.Stdout, out1.ExitCode, out2.Stdout, out2.ExitCode)
			}
			if strings.Contains(out1.Stdout, "oops") || strings.Contains(out1.Stdout, "secret") {
				t.Error("leaked state observable in probe output")
			}
		})
	}
}

// TestScenarioPoolNoCrossFamilyLeak pollutes one family's environment,
// recycles it, then draws an environment from every other family and
// requires it pristine — state must never cross pools.
func TestScenarioPoolNoCrossFamilyLeak(t *testing.T) {
	for _, polluter := range All() {
		fx := poolFixtures[polluter.Category]
		e := polluter.GetEnv()
		for name, content := range fx.seed {
			e.Interp().FS[name] = content
		}
		if _, err := e.Interp().Run(fx.dirty); err != nil {
			t.Fatalf("%s dirty script: %v", polluter.Category, err)
		}
		polluter.PutEnv(e)

		for _, other := range All() {
			if other.Category == polluter.Category {
				continue
			}
			got := other.GetEnv()
			if _, ok := got.Interp().FS["leak.txt"]; ok {
				t.Errorf("%s → %s: file crossed family pools", polluter.Category, other.Category)
			}
			if _, ok := got.Interp().Env["LEAKVAR"]; ok {
				t.Errorf("%s → %s: variable crossed family pools", polluter.Category, other.Category)
			}
			other.PutEnv(got)
		}
	}
}
