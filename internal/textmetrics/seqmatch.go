package textmetrics

// SequenceMatcher is a from-scratch port of the core algorithm of
// Python's difflib.SequenceMatcher (without the junk/popularity
// heuristics): it recursively finds the longest matching block and
// emits equal/replace/delete/insert opcodes.
type SequenceMatcher struct {
	a, b   []string
	b2j    map[string][]int
	opcode []OpCode
}

// OpTag labels an opcode region.
type OpTag int

// Opcode tags, mirroring difflib's "equal", "replace", "delete", "insert".
const (
	OpEqual OpTag = iota
	OpReplace
	OpDelete
	OpInsert
)

func (t OpTag) String() string {
	switch t {
	case OpEqual:
		return "equal"
	case OpReplace:
		return "replace"
	case OpDelete:
		return "delete"
	case OpInsert:
		return "insert"
	}
	return "?"
}

// OpCode describes how a[AStart:AEnd] maps onto b[BStart:BEnd].
type OpCode struct {
	Tag          OpTag
	AStart, AEnd int
	BStart, BEnd int
}

// NewSequenceMatcher prepares a matcher comparing a to b.
func NewSequenceMatcher(a, b []string) *SequenceMatcher {
	m := &SequenceMatcher{a: a, b: b, b2j: make(map[string][]int)}
	for j, s := range b {
		m.b2j[s] = append(m.b2j[s], j)
	}
	return m
}

type match struct{ a, b, size int }

// findLongestMatch finds the longest matching block within
// a[alo:ahi] and b[blo:bhi].
func (m *SequenceMatcher) findLongestMatch(alo, ahi, blo, bhi int) match {
	best := match{alo, blo, 0}
	// j2len[j] = length of longest match ending at a[i-1], b[j-1].
	j2len := make(map[int]int)
	for i := alo; i < ahi; i++ {
		newj2len := make(map[int]int)
		for _, j := range m.b2j[m.a[i]] {
			if j < blo {
				continue
			}
			if j >= bhi {
				break
			}
			k := j2len[j-1] + 1
			newj2len[j] = k
			if k > best.size {
				best = match{i - k + 1, j - k + 1, k}
			}
		}
		j2len = newj2len
	}
	return best
}

func (m *SequenceMatcher) matchingBlocks() []match {
	type q struct{ alo, ahi, blo, bhi int }
	queue := []q{{0, len(m.a), 0, len(m.b)}}
	var matched []match
	for len(queue) > 0 {
		cur := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		mt := m.findLongestMatch(cur.alo, cur.ahi, cur.blo, cur.bhi)
		if mt.size == 0 {
			continue
		}
		matched = append(matched, mt)
		if cur.alo < mt.a && cur.blo < mt.b {
			queue = append(queue, q{cur.alo, mt.a, cur.blo, mt.b})
		}
		if mt.a+mt.size < cur.ahi && mt.b+mt.size < cur.bhi {
			queue = append(queue, q{mt.a + mt.size, cur.ahi, mt.b + mt.size, cur.bhi})
		}
	}
	sortMatches(matched)
	// Merge adjacent blocks.
	var merged []match
	for _, mt := range matched {
		if n := len(merged); n > 0 && merged[n-1].a+merged[n-1].size == mt.a && merged[n-1].b+merged[n-1].size == mt.b {
			merged[n-1].size += mt.size
			continue
		}
		merged = append(merged, mt)
	}
	merged = append(merged, match{len(m.a), len(m.b), 0})
	return merged
}

func sortMatches(ms []match) {
	// Insertion sort by (a, b): block lists are short.
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && (ms[j].a < ms[j-1].a || ms[j].a == ms[j-1].a && ms[j].b < ms[j-1].b); j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

// OpCodes returns the edit script as difflib-style opcodes.
func (m *SequenceMatcher) OpCodes() []OpCode {
	if m.opcode != nil {
		return m.opcode
	}
	var ops []OpCode
	ai, bj := 0, 0
	for _, mt := range m.matchingBlocks() {
		tag := OpTag(-1)
		switch {
		case ai < mt.a && bj < mt.b:
			tag = OpReplace
		case ai < mt.a:
			tag = OpDelete
		case bj < mt.b:
			tag = OpInsert
		}
		if tag >= 0 {
			ops = append(ops, OpCode{tag, ai, mt.a, bj, mt.b})
		}
		ai, bj = mt.a+mt.size, mt.b+mt.size
		if mt.size > 0 {
			ops = append(ops, OpCode{OpEqual, mt.a, ai, mt.b, bj})
		}
	}
	m.opcode = ops
	return ops
}
