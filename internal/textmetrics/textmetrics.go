// Package textmetrics implements the text-level scores of the
// CloudEval-YAML benchmark (§3.2 of the paper): BLEU, line-based edit
// distance in the style of Python's difflib, and exact match. It also
// provides the tokenizers used for dataset statistics.
//
// All metrics return values in [0, 1]; higher is better.
package textmetrics

import (
	"math"
	"strings"
	"unicode"
)

// Tokenize splits text into word tokens: runs of letters/digits and
// individual punctuation characters. It mirrors the whitespace+punct
// tokenization commonly fed into NLTK's BLEU.
func Tokenize(s string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.':
			cur.WriteRune(r)
		case unicode.IsSpace(r):
			flush()
		default:
			flush()
			toks = append(toks, string(r))
		}
	}
	flush()
	return toks
}

// Words counts whitespace-separated words, the unit of the paper's
// "Avg. words" statistics (Tables 1 and 2).
func Words(s string) int { return len(strings.Fields(s)) }

// EstimateTokens approximates an LLM tokenizer's token count. English
// words average roughly 1.3 tokens and CJK characters roughly 1 token
// each; punctuation tokenizes alone. The paper used a proprietary
// tokenizer; this deterministic estimator preserves relative sizes,
// which is all Tables 1–2 consume.
// EstimateTokens runs on every generation (usage metering estimates
// both the prompt and the completion), so it streams over the runes in
// a single allocation-free pass instead of materializing the token
// slice the way Tokenize does. TestEstimateTokensMatchesTokenize pins
// it to the tokenizer-based definition.
func EstimateTokens(s string) int {
	n, runes := 0, 0
	var first rune
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.':
			if runes == 0 {
				first = r
			}
			runes++
		case unicode.IsSpace(r):
			n += wordTokens(first, runes)
			runes = 0
		default:
			n += wordTokens(first, runes)
			runes = 0
			n += wordTokens(r, 1) // punctuation tokenizes alone
		}
	}
	return n + wordTokens(first, runes)
}

// wordTokens estimates one word token's cost: CJK-leading tokens count
// one per character; others split into subword pieces of about 4
// characters, long words usually once more.
func wordTokens(first rune, runes int) int {
	if runes == 0 {
		return 0
	}
	if isCJK(first) {
		return runes
	}
	n := (runes + 3) / 4
	if runes > 4 {
		n++
	}
	return n
}

func isCJK(r rune) bool {
	return unicode.Is(unicode.Han, r) || unicode.Is(unicode.Hiragana, r) || unicode.Is(unicode.Katakana, r)
}

// BLEU computes the sentence BLEU score of candidate against reference
// with uniform weights over 1..4-grams and the standard brevity penalty.
// Like NLTK's default sentence_bleu, it is unsmoothed: any n-gram order
// with zero matches collapses the score to zero.
func BLEU(candidate, reference string) float64 {
	return bleuTokens(Tokenize(candidate), Tokenize(reference), false)
}

// BLEUSmoothed is BLEU with NLTK smoothing method 1 (epsilon counts for
// zero-match orders), useful as a denser feature for score prediction.
func BLEUSmoothed(candidate, reference string) float64 {
	return bleuTokens(Tokenize(candidate), Tokenize(reference), true)
}

// BLEUTokens is unsmoothed BLEU over pre-tokenized inputs.
func BLEUTokens(cand, ref []string) float64 { return bleuTokens(cand, ref, false) }

const bleuMaxN = 4

// BLEURef holds the reference side of a BLEU comparison — tokens and
// 1..4-gram counts — computed once and reused across candidates. The
// benchmark scores twelve models against the same reference, so
// re-tokenizing the reference per candidate is pure waste. A BLEURef is
// immutable after construction and safe for concurrent use.
type BLEURef struct {
	refLen int
	counts [bleuMaxN]map[string]int
}

// NewBLEURef precomputes reference n-gram statistics.
func NewBLEURef(reference string) *BLEURef {
	toks := Tokenize(reference)
	r := &BLEURef{refLen: len(toks)}
	for n := 1; n <= bleuMaxN; n++ {
		r.counts[n-1] = ngramCounts(toks, n)
	}
	return r
}

// Score computes unsmoothed BLEU of candidate against the precomputed
// reference; identical to BLEU(candidate, reference).
func (r *BLEURef) Score(candidate string) float64 {
	cand := Tokenize(candidate)
	if len(cand) == 0 || r.refLen == 0 {
		return 0
	}
	logSum := 0.0
	for n := 1; n <= bleuMaxN; n++ {
		match, total := clippedMatches(cand, r.counts[n-1], n)
		if match == 0 || total == 0 {
			return 0
		}
		logSum += math.Log(float64(match) / float64(total))
	}
	bp := 1.0
	if len(cand) < r.refLen {
		bp = math.Exp(1 - float64(r.refLen)/float64(len(cand)))
	}
	return bp * math.Exp(logSum/bleuMaxN)
}

func bleuTokens(cand, ref []string, smooth bool) float64 {
	if len(cand) == 0 || len(ref) == 0 {
		return 0
	}
	logSum := 0.0
	for n := 1; n <= bleuMaxN; n++ {
		match, total := modifiedPrecision(cand, ref, n)
		if match == 0 || total == 0 {
			if !smooth {
				return 0
			}
			if total == 0 {
				total = 1
			}
			logSum += math.Log(1.0 / (2 * float64(total)))
			continue
		}
		logSum += math.Log(float64(match) / float64(total))
	}
	bp := 1.0
	if len(cand) < len(ref) {
		bp = math.Exp(1 - float64(len(ref))/float64(len(cand)))
	}
	return bp * math.Exp(logSum/bleuMaxN)
}

// modifiedPrecision counts clipped n-gram matches.
func modifiedPrecision(cand, ref []string, n int) (match, total int) {
	if len(cand) < n {
		return 0, 0
	}
	return clippedMatches(cand, ngramCounts(ref, n), n)
}

// clippedMatches counts candidate n-grams clipped by reference counts.
func clippedMatches(cand []string, refCounts map[string]int, n int) (match, total int) {
	for g, c := range ngramCounts(cand, n) {
		total += c
		if rc, ok := refCounts[g]; ok {
			if c < rc {
				match += c
			} else {
				match += rc
			}
		}
	}
	return match, total
}

func ngramCounts(toks []string, n int) map[string]int {
	m := make(map[string]int)
	for i := 0; i+n <= len(toks); i++ {
		m[strings.Join(toks[i:i+n], "\x00")]++
	}
	return m
}

// ExactMatch reports 1 when the candidate text equals the reference
// after normalizing line endings and trailing whitespace, else 0.
func ExactMatch(candidate, reference string) float64 {
	if normalize(candidate) == normalize(reference) {
		return 1
	}
	return 0
}

func normalize(s string) string {
	lines := strings.Split(strings.ReplaceAll(s, "\r\n", "\n"), "\n")
	for i := range lines {
		lines[i] = strings.TrimRight(lines[i], " \t")
	}
	joined := strings.Join(lines, "\n")
	return strings.Trim(joined, "\n")
}

// EditDistanceScore computes the paper's scaled line edit distance:
// 1 - edit_distance/len(reference_YAML), clamped to [0, 1], where
// edit_distance counts the lines a difflib.Differ-style comparison marks
// as removed or added.
func EditDistanceScore(candidate, reference string) float64 {
	candLines := nonEmptyLines(candidate)
	refLines := nonEmptyLines(reference)
	if len(refLines) == 0 {
		if len(candLines) == 0 {
			return 1
		}
		return 0
	}
	dist := LineEditDistance(candLines, refLines)
	score := 1 - float64(dist)/float64(len(refLines))
	if score < 0 {
		return 0
	}
	return score
}

func nonEmptyLines(s string) []string {
	var out []string
	for _, ln := range strings.Split(strings.ReplaceAll(s, "\r\n", "\n"), "\n") {
		t := strings.TrimRight(ln, " \t")
		if strings.TrimSpace(t) != "" {
			out = append(out, t)
		}
	}
	return out
}

// LineEditDistance counts the replace/delete/insert line operations
// turning a into b, using the SequenceMatcher opcodes (a deletion plus
// an insertion at the same spot counts as the larger of the two, the
// difflib convention for replacements).
func LineEditDistance(a, b []string) int {
	dist := 0
	for _, op := range NewSequenceMatcher(a, b).OpCodes() {
		switch op.Tag {
		case OpReplace:
			da := op.AEnd - op.AStart
			db := op.BEnd - op.BStart
			if da > db {
				dist += da
			} else {
				dist += db
			}
		case OpDelete:
			dist += op.AEnd - op.AStart
		case OpInsert:
			dist += op.BEnd - op.BStart
		}
	}
	return dist
}

// Ratio returns the difflib similarity ratio 2*M/T over lines.
func Ratio(a, b []string) float64 {
	matches := 0
	for _, op := range NewSequenceMatcher(a, b).OpCodes() {
		if op.Tag == OpEqual {
			matches += op.AEnd - op.AStart
		}
	}
	total := len(a) + len(b)
	if total == 0 {
		return 1
	}
	return 2 * float64(matches) / float64(total)
}
