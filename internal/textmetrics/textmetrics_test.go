package textmetrics

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("apiVersion: apps/v1 kind: Deployment")
	want := []string{"apiVersion", ":", "apps", "/", "v1", "kind", ":", "Deployment"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
	if len(Tokenize("")) != 0 {
		t.Error("empty input should yield no tokens")
	}
}

// tokenizeEstimate is the tokenizer-based definition EstimateTokens
// must match: one token per character for CJK-leading words, subword
// pieces of ~4 characters otherwise, long words once more.
func tokenizeEstimate(s string) int {
	n := 0
	for _, tok := range Tokenize(s) {
		runes := []rune(tok)
		if isCJK(runes[0]) {
			n += len(runes)
			continue
		}
		n += (len(runes) + 3) / 4
		if len(runes) > 4 {
			n++
		}
	}
	return n
}

// TestEstimateTokensMatchesTokenize pins the streaming allocation-free
// EstimateTokens to the tokenizer-based definition it replaced, across
// English, CJK, mixed scripts, punctuation runs, and YAML shapes.
func TestEstimateTokensMatchesTokenize(t *testing.T) {
	cases := []string{
		"",
		"word",
		"Create a Kubernetes deployment with three replicas",
		"创建一个负载均衡器服务",
		"部署 nginx 服务，并暴露 port: 80",
		"クラスタにPodをデプロイする",
		"apiVersion: apps/v1\nkind: Deployment\nmetadata:\n  name: web\nspec:\n  replicas: 3",
		"!!!",
		"a_b-c.d/e:f{g}h",
		"   leading and   trailing   ",
		"mixed中文words和English混合",
		"supercalifragilisticexpialidocious",
		strings.Repeat("word ", 100),
		"-- flags --set key=value,other=值",
	}
	for _, s := range cases {
		if got, want := EstimateTokens(s), tokenizeEstimate(s); got != want {
			t.Errorf("EstimateTokens(%q) = %d, tokenize-based = %d", s, got, want)
		}
	}
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(strings.Join(randomLines(r), "\n"))
		},
	}
	prop := func(s string) bool {
		return EstimateTokens(s) == tokenizeEstimate(s)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestWords(t *testing.T) {
	if got := Words("create an svc with LB"); got != 5 {
		t.Errorf("Words = %d, want 5", got)
	}
}

func TestEstimateTokens(t *testing.T) {
	en := EstimateTokens("Create a Kubernetes deployment with three replicas")
	if en <= 0 {
		t.Fatal("expected positive token estimate")
	}
	zh := EstimateTokens("创建一个负载均衡器服务")
	if zh < 10 {
		t.Errorf("CJK estimate = %d, want >= rune count 11", zh)
	}
	long := EstimateTokens(strings.Repeat("word ", 100))
	short := EstimateTokens("word")
	if long < 90*short {
		t.Errorf("long text estimate %d should scale with length (unit %d)", long, short)
	}
}

func TestBLEUIdentity(t *testing.T) {
	text := "apiVersion: v1 kind: Service metadata: name: nginx-service spec: selector: app: nginx"
	if got := BLEU(text, text); got < 0.999 {
		t.Errorf("BLEU(x,x) = %v, want ~1", got)
	}
}

func TestBLEUDisjoint(t *testing.T) {
	got := BLEU("aa bb cc dd ee ff gg hh", "qq ww ee2 rr tt yy uu ii")
	if got != 0 {
		t.Errorf("unsmoothed BLEU of disjoint texts = %v, want 0", got)
	}
	smoothed := BLEUSmoothed("aa bb cc dd ee ff gg hh", "qq ww ee2 rr tt yy uu ii")
	if smoothed <= 0 || smoothed > 0.2 {
		t.Errorf("smoothed BLEU = %v, want small positive", smoothed)
	}
}

func TestBLEUOrdering(t *testing.T) {
	ref := "kind: Deployment metadata: name: web spec: replicas: 3 selector: matchLabels: app: web"
	close := "kind: Deployment metadata: name: web spec: replicas: 4 selector: matchLabels: app: web"
	far := "kind: Pod metadata: labels: context: lab name: mysql containers: image: mysql"
	bc, bf := BLEU(close, ref), BLEU(far, ref)
	if bc <= bf {
		t.Errorf("BLEU(close)=%v should exceed BLEU(far)=%v", bc, bf)
	}
	if bc <= 0.5 {
		t.Errorf("BLEU(one-token-off) = %v, want > 0.5", bc)
	}
}

func TestBLEUBrevityPenalty(t *testing.T) {
	ref := "a b c d e f g h i j"
	full := BLEU("a b c d e f g h i j", ref)
	half := BLEU("a b c d e", ref)
	if half >= full {
		t.Errorf("brevity penalty missing: half=%v full=%v", half, full)
	}
}

func TestBLEUEmpty(t *testing.T) {
	if BLEU("", "x") != 0 || BLEU("x", "") != 0 {
		t.Error("empty side should score 0")
	}
}

func TestExactMatch(t *testing.T) {
	if ExactMatch("a: 1\nb: 2\n", "a: 1\nb: 2") != 1 {
		t.Error("trailing newline should not break exact match")
	}
	if ExactMatch("a: 1  \nb: 2", "a: 1\nb: 2") != 1 {
		t.Error("trailing spaces should not break exact match")
	}
	if ExactMatch("a: 1\nb: 3", "a: 1\nb: 2") != 0 {
		t.Error("different content must not match")
	}
}

func TestEditDistanceScore(t *testing.T) {
	ref := "a: 1\nb: 2\nc: 3\nd: 4"
	if got := EditDistanceScore(ref, ref); got != 1 {
		t.Errorf("identical = %v, want 1", got)
	}
	oneOff := "a: 1\nb: 2\nc: 999\nd: 4"
	if got := EditDistanceScore(oneOff, ref); got != 0.75 {
		t.Errorf("one line changed over 4 = %v, want 0.75", got)
	}
	if got := EditDistanceScore("zzz\nyyy\nxxx\nwww\nvvv\nuuu\nttt\nsss", ref); got != 0 {
		t.Errorf("fully different longer text = %v, want clamped 0", got)
	}
	if got := EditDistanceScore("", ref); got != 0 {
		t.Errorf("empty candidate = %v, want 0", got)
	}
	if got := EditDistanceScore("", ""); got != 1 {
		t.Errorf("both empty = %v, want 1", got)
	}
}

func TestEditDistanceInsertion(t *testing.T) {
	ref := "a: 1\nb: 2"
	cand := "a: 1\nextra: 9\nb: 2"
	// One inserted line over two reference lines.
	if got := EditDistanceScore(cand, ref); got != 0.5 {
		t.Errorf("insert = %v, want 0.5", got)
	}
}

func TestSequenceMatcherOpcodes(t *testing.T) {
	a := []string{"one", "two", "three", "four"}
	b := []string{"zero", "one", "two", "four"}
	ops := NewSequenceMatcher(a, b).OpCodes()
	// Expect: insert zero, equal one..two, delete three, equal four.
	var tags []OpTag
	for _, op := range ops {
		tags = append(tags, op.Tag)
	}
	want := []OpTag{OpInsert, OpEqual, OpDelete, OpEqual}
	if !reflect.DeepEqual(tags, want) {
		t.Errorf("tags = %v, want %v (ops %v)", tags, want, ops)
	}
}

func TestSequenceMatcherEmpty(t *testing.T) {
	if ops := NewSequenceMatcher(nil, nil).OpCodes(); len(ops) != 0 {
		t.Errorf("empty vs empty ops = %v", ops)
	}
	ops := NewSequenceMatcher([]string{"a"}, nil).OpCodes()
	if len(ops) != 1 || ops[0].Tag != OpDelete {
		t.Errorf("a vs empty = %v", ops)
	}
}

func TestRatio(t *testing.T) {
	if r := Ratio([]string{"a", "b"}, []string{"a", "b"}); r != 1 {
		t.Errorf("identical ratio = %v", r)
	}
	if r := Ratio([]string{"a"}, []string{"b"}); r != 0 {
		t.Errorf("disjoint ratio = %v", r)
	}
}

func randomLines(r *rand.Rand) []string {
	n := r.Intn(12)
	lines := make([]string, n)
	vocab := []string{"a: 1", "b: 2", "kind: Pod", "  name: x", "spec:", "- item", "image: nginx"}
	for i := range lines {
		lines[i] = vocab[r.Intn(len(vocab))]
	}
	return lines
}

func TestPropertyEditDistanceBounds(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomLines(r))
			vals[1] = reflect.ValueOf(randomLines(r))
		},
	}
	prop := func(a, b []string) bool {
		d := LineEditDistance(a, b)
		if d < 0 || d > len(a)+len(b) {
			return false
		}
		// Symmetry of zero distance with equality.
		eq := reflect.DeepEqual(a, b)
		return (d == 0) == eq || (len(a) == 0 && len(b) == 0)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyBLEURange(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(strings.Join(randomLines(r), " "))
			vals[1] = reflect.ValueOf(strings.Join(randomLines(r), " "))
		},
	}
	prop := func(a, b string) bool {
		s := BLEU(a, b)
		return s >= 0 && s <= 1.0000001
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertySelfScoresPerfect(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			lines := randomLines(r)
			for len(lines) < 4 {
				lines = append(lines, "pad: line")
			}
			vals[0] = reflect.ValueOf(strings.Join(lines, "\n"))
		},
	}
	prop := func(s string) bool {
		return ExactMatch(s, s) == 1 && EditDistanceScore(s, s) == 1
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
