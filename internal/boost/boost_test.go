package boost

import (
	"math"
	"math/rand"
	"testing"

	"cloudeval/internal/dataset"
	"cloudeval/internal/llm"
	"cloudeval/internal/score"
)

func TestTrainLearnsThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var rows [][]float64
	var labels []float64
	for i := 0; i < 800; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		y := 0.0
		if x[0] > 0.6 {
			y = 1
		}
		rows = append(rows, x)
		labels = append(labels, y)
	}
	m, err := Train(rows, labels, []string{"a", "b"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		want := 0.0
		if x[0] > 0.6 {
			want = 1
		}
		if m.Predict(x) == want {
			correct++
		}
	}
	if correct < 185 {
		t.Errorf("threshold accuracy = %d/200", correct)
	}
}

func TestTrainLearnsInteraction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var rows [][]float64
	var labels []float64
	for i := 0; i < 1500; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		y := 0.0
		if (x[0] > 0.5) != (x[1] > 0.5) { // XOR-style interaction
			y = 1
		}
		rows = append(rows, x)
		labels = append(labels, y)
	}
	cfg := DefaultConfig()
	cfg.Trees = 120
	m, err := Train(rows, labels, []string{"a", "b"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < 400; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		want := 0.0
		if (x[0] > 0.5) != (x[1] > 0.5) {
			want = 1
		}
		if m.Predict(x) == want {
			correct++
		}
	}
	if correct < 340 {
		t.Errorf("XOR accuracy = %d/400; trees cannot be depth-1 stumps", correct)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, nil, DefaultConfig()); err == nil {
		t.Error("empty training set should error")
	}
	if _, err := Train([][]float64{{1}}, []float64{1}, []string{"a", "b"}, DefaultConfig()); err == nil {
		t.Error("row width mismatch should error")
	}
}

// TestSHAPLocalAccuracy checks the defining Shapley property:
// sum(phi) == Margin(x) - E[Margin].
func TestSHAPLocalAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var rows [][]float64
	var labels []float64
	for i := 0; i < 600; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y := 0.0
		if 0.7*x[0]+0.3*x[2] > 0.5 {
			y = 1
		}
		rows = append(rows, x)
		labels = append(labels, y)
	}
	m, err := Train(rows, labels, []string{"a", "b", "c"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// E[Margin] with no features present == v(empty set).
	present := make([]bool, 3)
	base := m.Bias
	for _, tr := range m.Trees {
		base += tr.expectedValue(rows[0], present)
	}
	for i := 0; i < 50; i++ {
		x := rows[i]
		phi := m.SHAP(x)
		sum := 0.0
		for _, p := range phi {
			sum += p
		}
		if math.Abs(sum-(m.Margin(x)-base)) > 1e-9 {
			t.Fatalf("local accuracy violated: sum(phi)=%v, margin-base=%v", sum, m.Margin(x)-base)
		}
	}
	// The irrelevant feature b gets near-zero attribution on average.
	imp := m.MeanAbsSHAP(rows[:200])
	if imp[1] > imp[0]/3 || imp[1] > imp[2] {
		t.Errorf("irrelevant feature importance too high: %v", imp)
	}
}

// TestLeaveOneModelOut runs the Figure 9 experiment on a subset of the
// corpus and checks that predictions track the ranking.
func TestLeaveOneModelOut(t *testing.T) {
	if testing.Short() {
		t.Skip("trains 12 models in -short mode")
	}
	problems := dataset.Generate()
	raw := make(map[string][]score.ProblemScore)
	for _, m := range llm.Models {
		raw[m.Name] = score.EvaluateModel(m, problems, llm.GenOptions{})
	}
	results, err := LeaveOneModelOut(raw, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(llm.Models) {
		t.Fatalf("results = %d", len(results))
	}
	// The predictor should keep gpt-4 clearly above llama-2-70b.
	byName := map[string]LeaveOneOutResult{}
	for _, r := range results {
		byName[r.Model] = r
	}
	if byName["gpt-4"].Predicted <= byName["llama-2-70b-chat"].Predicted {
		t.Errorf("predicted order broken: gpt-4 %.1f vs llama-70b %.1f",
			byName["gpt-4"].Predicted, byName["llama-2-70b-chat"].Predicted)
	}
	// Errors are rough but bounded, echoing the paper's 5-30%-with-
	// outliers observation.
	if byName["gpt-4"].ErrorPercent > 60 {
		t.Errorf("gpt-4 prediction error = %.1f%%", byName["gpt-4"].ErrorPercent)
	}

	imp, err := GlobalImportance(raw, DefaultConfig(), 400)
	if err != nil {
		t.Fatal(err)
	}
	// kv_wildcard must be the most informative feature, as in Fig 9(b).
	for name, v := range imp {
		if name == "kv_wildcard" {
			continue
		}
		if v > imp["kv_wildcard"] {
			t.Errorf("feature %s (%.4f) outranks kv_wildcard (%.4f)", name, v, imp["kv_wildcard"])
		}
	}
}
