package boost

import (
	"fmt"
	"sort"
	"strings"

	"cloudeval/internal/engine"
	"cloudeval/internal/score"
)

// FeatureNames are the predictor's inputs: the five text-level and
// YAML-aware metrics (§4.4 predicts the sixth, the unit test, from
// them).
var FeatureNames = []string{"bleu", "edit_distance", "exact_match", "kv_exact", "kv_wildcard"}

// FeatureVector extracts the predictor features from a problem score.
func FeatureVector(s score.ProblemScore) []float64 {
	return []float64{s.BLEU, s.EditDist, s.ExactMatch, s.KVExact, s.KVWildcard}
}

// LeaveOneOutResult is one held-out model's prediction (Figure 9a).
type LeaveOneOutResult struct {
	Model        string
	Predicted    float64 // sum of predicted pass probabilities
	GroundTruth  float64 // actual unit-test passes
	ErrorPercent float64
}

// LeaveOneModelOut reproduces §4.4's protocol through the default
// engine: for each model, train on the other eleven models' scored
// answers and predict the held-out model's unit-test score.
func LeaveOneModelOut(raw map[string][]score.ProblemScore, cfg Config) ([]LeaveOneOutResult, error) {
	return LeaveOneModelOutWith(engine.Default(), raw, cfg)
}

// LeaveOneModelOutWith fans the twelve independent hold-out trainings
// out on eng's scheduler; results land in model-name order, so the
// output is identical to the serial protocol.
func LeaveOneModelOutWith(eng *engine.Engine, raw map[string][]score.ProblemScore, cfg Config) ([]LeaveOneOutResult, error) {
	models := make([]string, 0, len(raw))
	for m := range raw {
		models = append(models, m)
	}
	sort.Strings(models)
	out := make([]LeaveOneOutResult, len(models))
	errs := make([]error, len(models))
	eng.ForEach(len(models), func(i int) {
		held := models[i]
		var rows [][]float64
		var labels []float64
		for _, m := range models {
			if m == held {
				continue
			}
			for _, s := range raw[m] {
				rows = append(rows, FeatureVector(s))
				labels = append(labels, s.UnitTest)
			}
		}
		model, err := Train(rows, labels, FeatureNames, cfg)
		if err != nil {
			errs[i] = err
			return
		}
		pred, truth := 0.0, 0.0
		for _, s := range raw[held] {
			pred += model.PredictProba(FeatureVector(s))
			truth += s.UnitTest
		}
		errPct := 0.0
		if truth > 0 {
			errPct = (pred - truth) / truth * 100
			if errPct < 0 {
				errPct = -errPct
			}
		}
		out[i] = LeaveOneOutResult{Model: held, Predicted: pred, GroundTruth: truth, ErrorPercent: errPct}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].GroundTruth > out[j].GroundTruth })
	return out, nil
}

// FormatFigure9A renders the predicted-vs-truth table.
func FormatFigure9A(results []LeaveOneOutResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %10s %12s %8s\n", "Model", "Predicted", "GroundTruth", "Err%")
	for _, r := range results {
		fmt.Fprintf(&b, "%-24s %10.1f %12.0f %7.1f%%\n", r.Model, r.Predicted, r.GroundTruth, r.ErrorPercent)
	}
	return b.String()
}

// GlobalImportance trains on all models' scores and reports mean |SHAP|
// per feature (Figure 9b) through the default engine.
func GlobalImportance(raw map[string][]score.ProblemScore, cfg Config, sample int) (map[string]float64, error) {
	return GlobalImportanceWith(engine.Default(), raw, cfg, sample)
}

// GlobalImportanceWith is GlobalImportance with the exact per-instance
// Shapley evaluations — the dominant cost, 2^5 coalition passes per
// sampled row — scheduled on eng. Training data is assembled in model-
// name order so the fitted ensemble is deterministic.
func GlobalImportanceWith(eng *engine.Engine, raw map[string][]score.ProblemScore, cfg Config, sample int) (map[string]float64, error) {
	models := make([]string, 0, len(raw))
	for m := range raw {
		models = append(models, m)
	}
	sort.Strings(models)
	var rows [][]float64
	var labels []float64
	for _, m := range models {
		for _, s := range raw[m] {
			rows = append(rows, FeatureVector(s))
			labels = append(labels, s.UnitTest)
		}
	}
	model, err := Train(rows, labels, FeatureNames, cfg)
	if err != nil {
		return nil, err
	}
	if sample <= 0 || sample > len(rows) {
		sample = len(rows)
	}
	stride := len(rows) / sample
	if stride < 1 {
		stride = 1
	}
	var sampled [][]float64
	for i := 0; i < len(rows); i += stride {
		sampled = append(sampled, rows[i])
	}
	imp := model.meanAbsSHAP(sampled, eng.ForEach)
	out := make(map[string]float64, len(FeatureNames))
	for i, name := range FeatureNames {
		out[name] = imp[i]
	}
	return out, nil
}

// FormatFigure9B renders feature importances sorted descending.
func FormatFigure9B(importance map[string]float64) string {
	type kv struct {
		name string
		v    float64
	}
	var items []kv
	for k, v := range importance {
		items = append(items, kv{k, v})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v > items[j].v })
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s\n", "Feature", "mean |SHAP|")
	for _, it := range items {
		fmt.Fprintf(&b, "%-16s %12.4f\n", it.name, it.v)
	}
	return b.String()
}
