// Package boost implements the unit-test predictor of §4.4: a gradient-
// boosted decision-tree classifier (XGBoost-style: Newton leaf weights
// on the logistic loss) trained to predict whether a generated YAML
// passes its unit test from the five text-level and YAML-aware scores,
// plus exact Shapley-value feature attribution for Figure 9(b).
package boost

import (
	"fmt"
	"math"
	"sort"
)

// Config holds training hyperparameters.
type Config struct {
	Trees        int
	MaxDepth     int
	LearningRate float64
	MinSamples   int
	// Lambda is the L2 regularization on leaf weights.
	Lambda float64
}

// DefaultConfig mirrors a small XGBoost setup adequate for five dense
// features.
func DefaultConfig() Config {
	return Config{Trees: 60, MaxDepth: 3, LearningRate: 0.2, MinSamples: 20, Lambda: 1.0}
}

// Model is a trained boosted ensemble.
type Model struct {
	Bias     float64
	Trees    []*node
	Features []string
}

type node struct {
	// Leaf fields.
	leaf  bool
	value float64
	// Split fields.
	feature   int
	threshold float64
	left      *node
	right     *node
	// cover is the fraction of training rows that reached this node,
	// used to marginalize absent features during Shapley evaluation.
	coverLeft float64
}

// Train fits a binary classifier: rows are feature vectors, labels are
// 0/1 outcomes.
func Train(rows [][]float64, labels []float64, features []string, cfg Config) (*Model, error) {
	if len(rows) == 0 || len(rows) != len(labels) {
		return nil, fmt.Errorf("boost: need matching rows and labels, got %d/%d", len(rows), len(labels))
	}
	for _, r := range rows {
		if len(r) != len(features) {
			return nil, fmt.Errorf("boost: row width %d != features %d", len(r), len(features))
		}
	}
	pos := 0.0
	for _, y := range labels {
		pos += y
	}
	p := clamp(pos/float64(len(labels)), 1e-4, 1-1e-4)
	m := &Model{Bias: math.Log(p / (1 - p)), Features: features}

	f := make([]float64, len(rows)) // current margins
	for i := range f {
		f[i] = m.Bias
	}
	grad := make([]float64, len(rows))
	hess := make([]float64, len(rows))
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	for t := 0; t < cfg.Trees; t++ {
		for i := range rows {
			pi := sigmoid(f[i])
			grad[i] = labels[i] - pi
			hess[i] = pi * (1 - pi)
		}
		tree := buildTree(rows, grad, hess, idx, cfg, 0)
		m.Trees = append(m.Trees, tree)
		for i := range rows {
			f[i] += cfg.LearningRate * tree.eval(rows[i])
		}
	}
	// Bake the learning rate into leaf values for simpler inference.
	for _, tr := range m.Trees {
		scaleLeaves(tr, cfg.LearningRate)
	}
	return m, nil
}

func scaleLeaves(n *node, lr float64) {
	if n.leaf {
		n.value *= lr
		return
	}
	scaleLeaves(n.left, lr)
	scaleLeaves(n.right, lr)
}

func buildTree(rows [][]float64, grad, hess []float64, idx []int, cfg Config, depth int) *node {
	sumG, sumH := 0.0, 0.0
	for _, i := range idx {
		sumG += grad[i]
		sumH += hess[i]
	}
	leaf := &node{leaf: true, value: sumG / (sumH + cfg.Lambda)}
	if depth >= cfg.MaxDepth || len(idx) < cfg.MinSamples {
		return leaf
	}
	bestGain := 1e-6
	bestFeature, bestThreshold := -1, 0.0
	nf := len(rows[idx[0]])
	parentScore := sumG * sumG / (sumH + cfg.Lambda)
	for feat := 0; feat < nf; feat++ {
		order := make([]int, len(idx))
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return rows[order[a]][feat] < rows[order[b]][feat] })
		gLeft, hLeft := 0.0, 0.0
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			gLeft += grad[i]
			hLeft += hess[i]
			v, next := rows[i][feat], rows[order[k+1]][feat]
			if v == next {
				continue
			}
			gRight, hRight := sumG-gLeft, sumH-hLeft
			gain := gLeft*gLeft/(hLeft+cfg.Lambda) + gRight*gRight/(hRight+cfg.Lambda) - parentScore
			if gain > bestGain {
				bestGain = gain
				bestFeature = feat
				bestThreshold = (v + next) / 2
			}
		}
	}
	if bestFeature < 0 {
		return leaf
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if rows[i][bestFeature] <= bestThreshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return leaf
	}
	return &node{
		feature:   bestFeature,
		threshold: bestThreshold,
		coverLeft: float64(len(leftIdx)) / float64(len(idx)),
		left:      buildTree(rows, grad, hess, leftIdx, cfg, depth+1),
		right:     buildTree(rows, grad, hess, rightIdx, cfg, depth+1),
	}
}

func (n *node) eval(x []float64) float64 {
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Margin returns the raw additive score before the sigmoid.
func (m *Model) Margin(x []float64) float64 {
	f := m.Bias
	for _, t := range m.Trees {
		f += t.eval(x)
	}
	return f
}

// PredictProba returns P(pass | features).
func (m *Model) PredictProba(x []float64) float64 { return sigmoid(m.Margin(x)) }

// Predict returns the 0/1 classification at threshold 0.5.
func (m *Model) Predict(x []float64) float64 {
	if m.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// expectedValue computes E[tree(x) | x_S = given] by descending the
// tree: present features follow the instance, absent features average
// both children weighted by training coverage.
func (n *node) expectedValue(x []float64, present []bool) float64 {
	if n.leaf {
		return n.value
	}
	if present[n.feature] {
		if x[n.feature] <= n.threshold {
			return n.left.expectedValue(x, present)
		}
		return n.right.expectedValue(x, present)
	}
	return n.coverLeft*n.left.expectedValue(x, present) +
		(1-n.coverLeft)*n.right.expectedValue(x, present)
}

// SHAP computes exact Shapley values of the margin for one instance by
// enumerating feature coalitions (feasible for the benchmark's five
// features). The values satisfy sum(phi) = Margin(x) - E[Margin].
func (m *Model) SHAP(x []float64) []float64 {
	nf := len(m.Features)
	// Cache v(S) for every subset mask.
	v := make([]float64, 1<<nf)
	present := make([]bool, nf)
	for mask := 0; mask < 1<<nf; mask++ {
		for j := 0; j < nf; j++ {
			present[j] = mask&(1<<j) != 0
		}
		total := m.Bias
		for _, t := range m.Trees {
			total += t.expectedValue(x, present)
		}
		v[mask] = total
	}
	fact := make([]float64, nf+1)
	fact[0] = 1
	for i := 1; i <= nf; i++ {
		fact[i] = fact[i-1] * float64(i)
	}
	phi := make([]float64, nf)
	for j := 0; j < nf; j++ {
		for mask := 0; mask < 1<<nf; mask++ {
			if mask&(1<<j) != 0 {
				continue
			}
			s := popcount(mask)
			weight := fact[s] * fact[nf-s-1] / fact[nf]
			phi[j] += weight * (v[mask|1<<j] - v[mask])
		}
	}
	return phi
}

// MeanAbsSHAP averages |phi| per feature over a set of instances, the
// global importance of Figure 9(b).
func (m *Model) MeanAbsSHAP(rows [][]float64) []float64 {
	return m.meanAbsSHAP(rows, func(n int, fn func(int)) {
		for i := 0; i < n; i++ {
			fn(i)
		}
	})
}

// meanAbsSHAP computes the per-row Shapley evaluations — the dominant
// cost, 2^5 coalition passes each — through forEach (the engine's
// scheduler or a serial loop). Each row's vector lands in its own slot
// before the reduction, so the averages do not depend on schedule.
func (m *Model) meanAbsSHAP(rows [][]float64, forEach func(int, func(int))) []float64 {
	out := make([]float64, len(m.Features))
	if len(rows) == 0 {
		return out
	}
	perRow := make([][]float64, len(rows))
	forEach(len(rows), func(i int) { perRow[i] = m.SHAP(rows[i]) })
	for _, phi := range perRow {
		for j, p := range phi {
			out[j] += math.Abs(p)
		}
	}
	for j := range out {
		out[j] /= float64(len(rows))
	}
	return out
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
