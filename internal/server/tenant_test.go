package server_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"cloudeval/client"
	"cloudeval/internal/core"
	"cloudeval/internal/dataset"
	"cloudeval/internal/engine"
	"cloudeval/internal/inference"
	"cloudeval/internal/llm"
	"cloudeval/internal/server"
)

// TestTenantIsolationCampaigns is the tenancy acceptance test: two
// tenants run campaigns over the same experiment IDs concurrently, and
// nothing bleeds — campaign IDs differ, checkpoints land under
// separate per-tenant directories, one tenant cannot poll the other's
// campaign, and each tenant's leaderboard stays byte-identical to
// core.Benchmark.
func TestTenantIsolationCampaigns(t *testing.T) {
	ctx := context.Background()
	dataDir := t.TempDir()
	bench := smallBench(engine.New())
	ts := httptest.NewServer(server.New(bench, dataDir).Handler())
	defer ts.Close()

	defTenant := client.New(ts.URL) // default tenant
	beta := client.New(ts.URL, client.WithTenant("beta"))

	ids := []string{"table2", "table4"}
	var wg sync.WaitGroup
	var defStart, betaStart client.CampaignStatus
	var defErr, betaErr error
	wg.Add(2)
	go func() { defer wg.Done(); defStart, defErr = defTenant.StartCampaign(ctx, ids) }()
	go func() { defer wg.Done(); betaStart, betaErr = beta.StartCampaign(ctx, ids) }()
	wg.Wait()
	if defErr != nil || betaErr != nil {
		t.Fatalf("campaign starts: %v / %v", defErr, betaErr)
	}
	if defStart.ID == betaStart.ID {
		t.Fatalf("tenants share campaign ID %s for the same experiment set", defStart.ID)
	}

	defDone := waitCampaignDone(t, defTenant, defStart.ID)
	betaDone := waitCampaignDone(t, beta, betaStart.ID)
	if defDone.Outputs["table4"] != betaDone.Outputs["table4"] {
		t.Error("the same deterministic experiment rendered differently per tenant")
	}

	// Checkpoints: the default tenant keeps the historical layout, the
	// named tenant is rooted under tenants/<name>/.
	if _, err := os.Stat(filepath.Join(dataDir, "campaigns", defStart.ID, "table4.txt")); err != nil {
		t.Errorf("default-tenant checkpoint not in legacy layout: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dataDir, "tenants", "beta", "campaigns", betaStart.ID, "table4.txt")); err != nil {
		t.Errorf("beta-tenant checkpoint not under tenants/beta: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dataDir, "campaigns", betaStart.ID)); !os.IsNotExist(err) {
		t.Errorf("beta campaign leaked into the default tenant's checkpoint root (err %v)", err)
	}

	// Cross-tenant polling 404s, in memory and from disk.
	_, err := beta.Campaign(ctx, defStart.ID)
	apiErr(t, err, 404, "not_found")
	_, err = defTenant.Campaign(ctx, betaStart.ID)
	apiErr(t, err, 404, "not_found")

	// Both tenants' leaderboards are byte-identical to core.
	want := bench.Table4()
	for name, c := range map[string]*client.Client{"default": defTenant, "beta": beta} {
		if got, err := c.Leaderboard(ctx); err != nil || got != want {
			t.Errorf("tenant %s leaderboard differs from core.Table4 (err %v)", name, err)
		}
	}
}

// TestRateLimit429 pins the admission-control contract: a tenant that
// saturates its token bucket gets 429 + Retry-After (code
// rate_limited) while a second tenant's requests keep succeeding.
func TestRateLimit429(t *testing.T) {
	ctx := context.Background()
	bench := smallBench(engine.New())
	// A glacial refill: the two-token burst is all a tenant gets within
	// this test's lifetime, so the third request deterministically 429s.
	cfg := server.Config{TenantRate: 0.001, TenantBurst: 2}
	ts := httptest.NewServer(server.NewWithConfig(bench, t.TempDir(), cfg).Handler())
	defer ts.Close()

	hot := client.New(ts.URL, client.WithTenant("hot"))
	calm := client.New(ts.URL, client.WithTenant("calm"))
	req := client.EvalRequest{Problem: bench.Originals[0].ID, Answer: "x"}

	for i := 0; i < 2; i++ {
		if _, err := hot.Eval(ctx, req); err != nil {
			t.Fatalf("eval %d within burst: %v", i, err)
		}
	}
	_, err := hot.Eval(ctx, req)
	ae := apiErr(t, err, http.StatusTooManyRequests, "rate_limited")
	if ae.RetryAfter <= 0 {
		t.Errorf("429 without a Retry-After hint: %+v", ae)
	}
	if !client.IsRateLimited(err) {
		t.Error("IsRateLimited(err) = false for a 429")
	}
	// The saturated tenant's campaign POSTs are limited too.
	_, err = hot.StartCampaign(ctx, []string{"table2"})
	apiErr(t, err, http.StatusTooManyRequests, "rate_limited")

	// The second tenant's bucket is its own: still admitted.
	if _, err := calm.Eval(ctx, req); err != nil {
		t.Fatalf("calm tenant eval during hot tenant saturation: %v", err)
	}
	start, err := calm.StartCampaign(ctx, []string{"table2"})
	if err != nil {
		t.Fatalf("calm tenant campaign during hot tenant saturation: %v", err)
	}
	waitCampaignDone(t, calm, start.ID)
}

// gatedProvider parks every generation until release is closed.
type gatedProvider struct {
	release chan struct{}
	inner   inference.Provider
}

func (g gatedProvider) Name() string { return "gated" }
func (g gatedProvider) Generate(ctx context.Context, req inference.Request) (inference.Response, error) {
	<-g.release
	return g.inner.Generate(ctx, req)
}
func (g gatedProvider) Close() error { return nil }

// TestCampaignQueueBounded pins the bounded-queue half of admission
// control: with a one-slot campaign queue occupied by a campaign
// parked on its provider, a second campaign gets 429 + Retry-After
// (code campaign_queue_full) instead of an unbounded goroutine — and
// is admitted normally once the first campaign drains.
func TestCampaignQueueBounded(t *testing.T) {
	ctx := context.Background()
	release := make(chan struct{})
	models := llm.Models[:2]
	disp := inference.NewDispatcher(gatedProvider{release: release, inner: inference.NewSim(models)})
	bench := core.NewCustomVia(engine.New(), disp, dataset.Generate()[:4], models)
	cfg := server.Config{CampaignQueue: 1}
	ts := httptest.NewServer(server.NewWithConfig(bench, t.TempDir(), cfg).Handler())
	defer ts.Close()
	c := client.New(ts.URL)

	// Campaign 1 blocks generating table4, holding the queue's only slot.
	first, err := c.StartCampaign(ctx, []string{"table4"})
	if err != nil {
		t.Fatal(err)
	}

	// Campaign 2 (a different experiment set, so a fresh campaign) is
	// refused with backpressure, not queued without bound.
	_, err = c.StartCampaign(ctx, []string{"table2"})
	ae := apiErr(t, err, http.StatusTooManyRequests, "campaign_queue_full")
	if ae.RetryAfter <= 0 {
		t.Errorf("queue-full 429 without a Retry-After hint: %+v", ae)
	}

	// Re-posting the *same* campaign coalesces onto the running one —
	// no new queue slot, no 429.
	again, err := c.StartCampaign(ctx, []string{"table4"})
	if err != nil || again.ID != first.ID {
		t.Fatalf("re-post of the running campaign = %+v, %v; want coalesce onto %s", again, err, first.ID)
	}

	close(release)
	waitCampaignDone(t, c, first.ID)

	// The slot freed: the refused campaign is admitted now.
	second, err := c.StartCampaign(ctx, []string{"table2"})
	if err != nil {
		t.Fatalf("campaign after queue drain: %v", err)
	}
	waitCampaignDone(t, c, second.ID)
}

// TestInvalidTenantRejected: tenant names that could escape the
// checkpoint root (or are otherwise malformed) are 400s with their own
// envelope code, from both the header and the query parameter.
func TestInvalidTenantRejected(t *testing.T) {
	ctx := context.Background()
	bench := smallBench(engine.New())
	ts := newTestServer(t, bench)

	for _, bad := range []string{"../evil", "a/b", "dots.not.allowed", "-leading", "x y"} {
		c := client.New(ts.URL, client.WithTenant(bad))
		_, err := c.Leaderboard(ctx)
		apiErr(t, err, 400, "invalid_tenant")
	}

	// The ?tenant= form is validated identically.
	resp, err := http.Get(ts.URL + "/v1/leaderboard?tenant=..%2Fevil")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("query-parameter tenant escape = %d, want 400", resp.StatusCode)
	}

	// A valid ?tenant= is accepted and scopes like the header.
	resp, err = http.Get(ts.URL + "/v1/leaderboard?tenant=query-tenant")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("valid query-parameter tenant = %d, want 200", resp.StatusCode)
	}
}

// TestRequestIDMiddleware: every response carries X-Request-ID — the
// caller's echoed when plausible, a generated one otherwise.
func TestRequestIDMiddleware(t *testing.T) {
	bench := smallBench(engine.New())
	ts := newTestServer(t, bench)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "my-trace-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "my-trace-42" {
		t.Errorf("caller request ID not echoed: got %q", got)
	}

	// No ID supplied: one is generated, and consecutive requests get
	// distinct ones.
	ids := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Request-ID")
		if id == "" {
			t.Fatal("no X-Request-ID generated")
		}
		if ids[id] {
			t.Fatalf("duplicate generated request ID %q", id)
		}
		ids[id] = true
	}
}

// TestRouteMetricsInStats: /v1/stats surfaces per-route request,
// error and latency counters fed by the middleware.
func TestRouteMetricsInStats(t *testing.T) {
	ctx := context.Background()
	bench := smallBench(engine.New())
	c := newTestClient(t, bench)

	req := client.EvalRequest{Problem: bench.Originals[0].ID, Answer: "x"}
	for i := 0; i < 3; i++ {
		if _, err := c.Eval(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	// One 404 to feed the error counter.
	if _, err := c.Eval(ctx, client.EvalRequest{Problem: "nope", Answer: "x"}); err == nil {
		t.Fatal("eval of unknown problem succeeded")
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	evalStats, ok := stats.Routes["POST /v1/eval"]
	if !ok {
		t.Fatalf("stats carries no POST /v1/eval route entry: %+v", stats.Routes)
	}
	if evalStats.Requests != 4 || evalStats.Errors != 1 {
		t.Errorf("eval route = %d requests / %d errors, want 4 / 1", evalStats.Requests, evalStats.Errors)
	}
	if evalStats.AvgMs < 0 {
		t.Errorf("negative average latency %v", evalStats.AvgMs)
	}
	if stats.Tenants == 0 {
		t.Error("stats reports zero known tenants after requests")
	}
}
