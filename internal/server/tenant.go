package server

import (
	"fmt"
	"net/http"

	"cloudeval/internal/core"
)

// Multi-tenancy. Every request belongs to a tenant, named by the
// X-Tenant header (or, for header-less clients, the ?tenant= query
// parameter); requests naming neither belong to core.TenantDefault,
// which keeps the single-tenant wire contract — default-tenant
// campaign IDs and checkpoint directories are byte- and
// layout-identical to the pre-tenancy daemon.
//
// Tenant state is the serving layer only: experiment result caches,
// in-flight coalescing and campaign bookkeeping are per-tenant, so
// tenants share nothing above the engine. The engine, store and
// dispatcher tiers below stay shared deliberately — they are
// content-addressed, so one tenant's warm cache can never show another
// tenant anything but the deterministic output of the same
// computation.

// tenantState is one tenant's slice of the serving layer.
type tenantState struct {
	name      string
	flights   map[string]*flight // experiment ID → in-flight generation
	results   map[string]string  // experiment ID → completed output
	campaigns map[string]*campaign
}

// tenantName extracts and validates the requesting tenant.
func tenantName(r *http.Request) (string, error) {
	t := r.Header.Get("X-Tenant")
	if t == "" {
		t = r.URL.Query().Get("tenant")
	}
	if t == "" {
		return core.TenantDefault, nil
	}
	if !core.ValidTenant(t) {
		return "", fmt.Errorf("invalid tenant %q: want 1-64 letters, digits, '-' or '_'", t)
	}
	return t, nil
}

// tenantLocked returns (creating on first use) the named tenant's
// state. Callers must hold s.mu.
func (s *Server) tenantLocked(name string) *tenantState {
	tn, ok := s.tenants[name]
	if !ok {
		tn = &tenantState{
			name:      name,
			flights:   make(map[string]*flight),
			results:   make(map[string]string),
			campaigns: make(map[string]*campaign),
		}
		s.tenants[name] = tn
	}
	return tn
}

// tenantFor resolves the request's tenant state, writing the error
// envelope itself on an invalid name.
func (s *Server) tenantFor(w http.ResponseWriter, r *http.Request) (*tenantState, bool) {
	name, err := tenantName(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidTenant, err.Error())
		return nil, false
	}
	s.mu.Lock()
	tn := s.tenantLocked(name)
	s.mu.Unlock()
	return tn, true
}

// campaignRoot is the tenant's checkpoint root under the server's data
// directory.
func (s *Server) campaignRoot(tenant string) string {
	return core.CampaignRoot(s.dataDir, tenant)
}
