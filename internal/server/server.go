// Package server implements the cloudevald HTTP service: the
// CloudEval-YAML benchmark as a long-lived daemon over a shared engine
// and persistent evaluation store. Endpoints:
//
//	POST /v1/eval            score one answer (or one model's answer) on one problem
//	POST /v1/campaign        start (or resume) an async experiment campaign
//	GET  /v1/campaign/{id}   poll campaign status and outputs
//	GET  /v1/leaderboard     the cached Table 4 (byte-identical to core.Benchmark)
//	GET  /v1/leaderboard/families  per-workload-family rows (one column per scenario backend)
//	GET  /v1/stats           engine counters (executed / cache / store hits) plus
//	                         inference counters (generated / generation cache and
//	                         store hits / metered token usage)
//	GET  /healthz            liveness
//
// The inference provider — sim zoo, replayed trace, or live HTTP
// endpoint — is configured at construction via the benchmark's
// dispatcher (core.NewVia); every model generation the server performs
// routes through it and its generation cache.
//
// Every experiment computation is coalesced: concurrent requests for
// the same experiment share one in-flight generation, and completed
// outputs are served from memory. Campaigns are checkpointed via
// core.Benchmark.RunCampaign under the server's data directory, so a
// restarted daemon resumes them instead of recomputing.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"cloudeval/internal/core"
	"cloudeval/internal/dataset"
	"cloudeval/internal/inference"
	"cloudeval/internal/llm"
	"cloudeval/internal/score"
)

// Server serves one benchmark instance. Construct with New.
type Server struct {
	bench   *core.Benchmark
	dataDir string
	mux     *http.ServeMux

	problems map[string]dataset.Problem
	models   map[string]llm.Model

	mu        sync.Mutex
	flights   map[string]*flight // experiment ID → in-flight generation
	results   map[string]string  // experiment ID → completed output
	campaigns map[string]*campaign
}

// flight coalesces concurrent requests for one experiment into a
// single generation.
type flight struct {
	done chan struct{}
	out  string
	err  error
}

// campaign tracks one async experiment run.
type campaign struct {
	ID          string   `json:"id"`
	Experiments []string `json:"experiments"`

	mu        sync.Mutex
	state     string // "running", "done", "failed"
	completed []string
	errMsg    string
}

// New builds a server over bench. dataDir roots campaign checkpoints
// (<dataDir>/campaigns/<id>); it is created on demand.
func New(bench *core.Benchmark, dataDir string) *Server {
	s := &Server{
		bench:     bench,
		dataDir:   dataDir,
		mux:       http.NewServeMux(),
		problems:  make(map[string]dataset.Problem, len(bench.Problems)),
		models:    make(map[string]llm.Model, len(bench.Models)),
		flights:   make(map[string]*flight),
		results:   make(map[string]string),
		campaigns: make(map[string]*campaign),
	}
	for _, p := range bench.Problems {
		s.problems[p.ID] = p
	}
	for _, m := range bench.Models {
		s.models[m.Name] = m
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/leaderboard", s.handleLeaderboard)
	s.mux.HandleFunc("GET /v1/leaderboard/families", s.handleFamilyLeaderboard)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/eval", s.handleEval)
	s.mux.HandleFunc("POST /v1/campaign", s.handleCampaignStart)
	s.mux.HandleFunc("GET /v1/campaign/{id}", s.handleCampaignStatus)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// experiment generates (or replays) one experiment with request
// coalescing: the first caller computes, concurrent callers park on
// the flight, later callers hit the in-memory result.
func (s *Server) experiment(id string) (string, error) {
	gens := s.bench.Experiments()
	gen, ok := gens[id]
	if !ok {
		return "", fmt.Errorf("unknown experiment %q", id)
	}
	s.mu.Lock()
	if out, ok := s.results[id]; ok {
		s.mu.Unlock()
		return out, nil
	}
	if f, ok := s.flights[id]; ok {
		s.mu.Unlock()
		<-f.done
		return f.out, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.flights[id] = f
	s.mu.Unlock()

	// Generation failures surface as failed experiments, not as
	// silently zero-scored tables: campaign paths render an errored
	// generation as an empty answer so the run completes, latching the
	// error into the dispatcher — so count failures across the run and
	// refuse to cache (or checkpoint) an output produced with any. The
	// counter is process-wide, so a concurrent failing request can fail
	// an unrelated clean experiment — deliberately conservative: a
	// retry succeeds, a corrupt output is never cached.
	genStats := s.bench.Generator().Stats()
	func() {
		defer func() {
			if r := recover(); r != nil {
				f.err = fmt.Errorf("experiment %s: %v", id, r)
			}
		}()
		f.out = gen()
	}()
	if f.err == nil {
		if failed := s.bench.Generator().Stats().Errors - genStats.Errors; failed > 0 {
			f.err = fmt.Errorf("experiment %s: %d generation failures (first: %v)",
				id, failed, s.bench.Generator().Err())
		}
	}
	close(f.done)

	s.mu.Lock()
	delete(s.flights, id)
	if f.err == nil {
		s.results[id] = f.out
	}
	s.mu.Unlock()
	return f.out, f.err
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleLeaderboard serves Table 4 byte-identical to
// core.Benchmark.Table4, cached and coalesced.
func (s *Server) handleLeaderboard(w http.ResponseWriter, r *http.Request) {
	out, err := s.experiment("table4")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, out)
}

// handleFamilyLeaderboard serves the per-workload-family breakdown
// (core.Benchmark.FamilyLeaderboard): one column per registered
// scenario backend, including the extension families the pinned
// Table 4 excludes. It shares the ZeroShot campaign with the main
// leaderboard, so serving both costs one evaluation.
func (s *Server) handleFamilyLeaderboard(w http.ResponseWriter, r *http.Request) {
	out, err := s.experiment("families")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, out)
}

// statsResponse is the engine and inference counter snapshot.
type statsResponse struct {
	Executor  string `json:"executor"`
	Workers   int    `json:"workers"`
	Executed  int64  `json:"executed"`
	CacheHits int64  `json:"cache_hits"`
	StoreHits int64  `json:"store_hits"`

	// Inference-side counters: live provider calls, generation cache
	// tiers, and the metered token usage of live generations.
	Provider         string `json:"provider"`
	Generated        int64  `json:"generated"`
	GenCacheHits     int64  `json:"gen_cache_hits"`
	GenStoreHits     int64  `json:"gen_store_hits"`
	GenErrors        int64  `json:"gen_errors,omitempty"`
	PromptTokens     int64  `json:"prompt_tokens"`
	CompletionTokens int64  `json:"completion_tokens"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	eng := s.bench.Engine()
	st := eng.Stats()
	gen := s.bench.Generator()
	gst := gen.Stats()
	writeJSON(w, http.StatusOK, statsResponse{
		Executor:  eng.Executor().Name(),
		Workers:   eng.Workers(),
		Executed:  st.Executed,
		CacheHits: st.CacheHits,
		StoreHits: st.StoreHits,

		Provider:         gen.Provider().Name(),
		Generated:        gst.Generated,
		GenCacheHits:     gst.CacheHits,
		GenStoreHits:     gst.StoreHits,
		GenErrors:        gst.Errors,
		PromptTokens:     int64(gst.Usage.PromptTokens),
		CompletionTokens: int64(gst.Usage.CompletionTokens),
	})
}

// evalRequest scores one problem: either a literal candidate answer,
// or the named zoo model's generated answer. Exactly one of Answer and
// Model must be set.
type evalRequest struct {
	Problem string `json:"problem"`
	Answer  string `json:"answer,omitempty"`
	Model   string `json:"model,omitempty"`
}

type evalResponse struct {
	Problem string             `json:"problem"`
	Model   string             `json:"model,omitempty"`
	Answer  string             `json:"answer"`
	Scores  map[string]float64 `json:"scores"`
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	var req evalRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	p, ok := s.problems[req.Problem]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown problem %q", req.Problem), http.StatusNotFound)
		return
	}
	if (req.Answer == "") == (req.Model == "") {
		http.Error(w, "exactly one of answer and model must be set", http.StatusBadRequest)
		return
	}
	answer := req.Answer
	if req.Model != "" {
		m, ok := s.models[req.Model]
		if !ok {
			http.Error(w, fmt.Sprintf("unknown model %q", req.Model), http.StatusNotFound)
			return
		}
		resp, err := s.bench.Generator().Generate(r.Context(), inference.Request{Model: m.Name, Problem: p})
		if err != nil {
			http.Error(w, "generation failed: "+err.Error(), http.StatusBadGateway)
			return
		}
		answer = llm.Postprocess(resp.Text)
	}
	sc := score.ScoreAnswerWith(s.bench.Engine(), p, answer)
	scores := make(map[string]float64, len(score.Metrics))
	for _, name := range score.Metrics {
		scores[name] = sc.Metric(name)
	}
	writeJSON(w, http.StatusOK, evalResponse{
		Problem: p.ID,
		Model:   req.Model,
		Answer:  answer,
		Scores:  scores,
	})
}

type campaignRequest struct {
	// Experiments to run; empty means every experiment.
	Experiments []string `json:"experiments,omitempty"`
}

type campaignResponse struct {
	ID          string   `json:"id"`
	State       string   `json:"state"`
	Experiments []string `json:"experiments"`
	Completed   []string `json:"completed"`
	Error       string   `json:"error,omitempty"`
	// Outputs holds each completed experiment's rendered text.
	Outputs map[string]string `json:"outputs,omitempty"`
}

// campaignID derives a deterministic ID from the experiment set, so
// re-posting the same campaign — against this daemon or a restarted
// one — coalesces onto (or resumes) the same checkpointed run.
func campaignID(ids []string) string {
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	sum := sha256.Sum256([]byte(strings.Join(sorted, ",")))
	return "c-" + hex.EncodeToString(sum[:6])
}

func (s *Server) handleCampaignStart(w http.ResponseWriter, r *http.Request) {
	var req campaignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	ids := req.Experiments
	if len(ids) == 0 {
		ids = core.ExperimentIDs
	}
	gens := s.bench.Experiments()
	for _, id := range ids {
		if _, ok := gens[id]; !ok {
			http.Error(w, fmt.Sprintf("unknown experiment %q", id), http.StatusBadRequest)
			return
		}
	}

	id := campaignID(ids)
	s.mu.Lock()
	c, ok := s.campaigns[id]
	if ok {
		// A failed campaign must not wedge its ID: re-posting retries
		// it (from its checkpoints) instead of echoing the stale
		// failure forever.
		c.mu.Lock()
		if c.state == "failed" {
			ok = false
		}
		c.mu.Unlock()
	}
	if !ok {
		c = &campaign{ID: id, Experiments: ids, state: "running"}
		s.campaigns[id] = c
		go s.runCampaign(c)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, s.campaignStatus(c, false))
}

// campaignMeta is persisted as campaign.json inside each campaign
// directory, so a restarted daemon can identify and resume on-disk
// campaigns it no longer holds in memory.
type campaignMeta struct {
	ID          string   `json:"id"`
	Experiments []string `json:"experiments"`
}

// runCampaign drives one checkpointed campaign in the background,
// routing fresh generations through the coalescing layer (so a
// campaign and a concurrent direct request share one computation, and
// campaign outputs warm the request cache).
func (s *Server) runCampaign(c *campaign) {
	dir := filepath.Join(s.dataDir, "campaigns", c.ID)
	fail := func(err error) {
		c.mu.Lock()
		c.state = "failed"
		c.errMsg = err.Error()
		c.mu.Unlock()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail(err)
		return
	}
	meta, err := json.Marshal(campaignMeta{ID: c.ID, Experiments: c.Experiments})
	if err != nil {
		fail(err)
		return
	}
	// Temp-file + rename, like every other checkpoint write: a crash
	// mid-write must not leave torn JSON that hides the campaign from a
	// restarted daemon.
	metaPath := filepath.Join(dir, "campaign.json")
	if err := os.WriteFile(metaPath+".tmp", meta, 0o644); err != nil {
		fail(err)
		return
	}
	if err := os.Rename(metaPath+".tmp", metaPath); err != nil {
		fail(err)
		return
	}
	_, err = s.bench.RunCampaignVia(dir, c.Experiments, nil, s.experiment, func(id string, skipped bool) {
		if skipped {
			// A checkpoint replay warms the request cache too.
			if out, err := readCampaignOutput(dir, id); err == nil {
				s.mu.Lock()
				if _, ok := s.results[id]; !ok {
					s.results[id] = out
				}
				s.mu.Unlock()
			}
		}
		c.mu.Lock()
		c.completed = append(c.completed, id)
		c.mu.Unlock()
	})
	if err != nil {
		fail(err)
		return
	}
	c.mu.Lock()
	c.state = "done"
	c.mu.Unlock()
}

func (s *Server) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	c, ok := s.campaigns[id]
	s.mu.Unlock()
	if !ok {
		// Not in memory — maybe a previous daemon's campaign. Serve its
		// on-disk checkpoint state as "interrupted": re-posting the same
		// experiment set resumes it.
		if resp, err := s.campaignFromDisk(id); err == nil {
			writeJSON(w, http.StatusOK, resp)
			return
		}
		http.Error(w, fmt.Sprintf("unknown campaign %q", id), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, s.campaignStatus(c, true))
}

// campaignFromDisk reconstructs a campaign's status from its directory
// after a daemon restart.
func (s *Server) campaignFromDisk(id string) (campaignResponse, error) {
	dir := filepath.Join(s.dataDir, "campaigns", id)
	data, err := os.ReadFile(filepath.Join(dir, "campaign.json"))
	if err != nil {
		return campaignResponse{}, err
	}
	var meta campaignMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return campaignResponse{}, err
	}
	completed, err := core.CampaignCompleted(dir)
	if err != nil {
		return campaignResponse{}, err
	}
	state := "interrupted"
	if len(completed) >= len(meta.Experiments) {
		state = "done"
	}
	resp := campaignResponse{
		ID:          meta.ID,
		State:       state,
		Experiments: meta.Experiments,
		Completed:   completed,
		Outputs:     make(map[string]string, len(completed)),
	}
	for _, eid := range completed {
		if out, err := readCampaignOutput(dir, eid); err == nil {
			resp.Outputs[eid] = out
		}
	}
	return resp, nil
}

func (s *Server) campaignStatus(c *campaign, includeOutputs bool) campaignResponse {
	c.mu.Lock()
	resp := campaignResponse{
		ID:          c.ID,
		State:       c.state,
		Experiments: c.Experiments,
		Completed:   append([]string(nil), c.completed...),
		Error:       c.errMsg,
	}
	c.mu.Unlock()
	// Outputs ride along only once the campaign stops running: polls of
	// an in-flight campaign need state/completed, not a re-read of every
	// checkpoint file shipped on each request.
	if includeOutputs && resp.State != "running" && len(resp.Completed) > 0 {
		dir := filepath.Join(s.dataDir, "campaigns", c.ID)
		outputs := make(map[string]string, len(resp.Completed))
		for _, id := range resp.Completed {
			data, err := readCampaignOutput(dir, id)
			if err == nil {
				outputs[id] = data
			}
		}
		resp.Outputs = outputs
	}
	return resp
}

func readCampaignOutput(dir, id string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, id+".txt"))
	return string(data), err
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
