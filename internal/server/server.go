// Package server implements the cloudevald HTTP service: the
// CloudEval-YAML benchmark as a long-lived, multi-tenant daemon over a
// shared engine and persistent evaluation store. Endpoints (documented
// in detail in API.md at the repository root):
//
//	POST /v1/eval            score one answer (or one model's answer) on one problem
//	POST /v1/campaign        start (or resume) an async experiment campaign
//	GET  /v1/campaign/{id}   poll campaign status and outputs
//	GET  /v1/leaderboard     the cached Table 4 (byte-identical to core.Benchmark)
//	GET  /v1/leaderboard/families  per-workload-family rows (one column per scenario backend)
//	GET  /v1/stats           engine counters (executed / cache / store hits),
//	                         inference counters (generated / generation cache and
//	                         store hits / metered token usage) and per-route
//	                         request/latency counters
//	GET  /healthz            liveness
//
// Every request belongs to a tenant (X-Tenant header or ?tenant=;
// absent means the default tenant, which keeps the single-tenant wire
// contract byte-for-byte). Experiment caches, in-flight coalescing,
// campaign IDs and checkpoint directories are tenant-scoped; the
// engine, store and dispatcher underneath are shared content-addressed
// tiers. Admission control guards the two POST endpoints: a per-tenant
// token bucket and a bounded campaign queue, both answering 429 +
// Retry-After when exhausted, so one tenant's flood degrades into
// polite backpressure instead of starving the fleet.
//
// All error responses share one JSON envelope,
// {"error":{"code","message"}}, decoded by the typed client in
// cloudeval/client.
//
// The inference provider — sim zoo, replayed trace, or live HTTP
// endpoint — is configured at construction via the benchmark's
// dispatcher (core.NewVia); every model generation the server performs
// routes through it and its generation cache.
//
// Every experiment computation is coalesced per tenant: concurrent
// requests for the same experiment share one in-flight generation, and
// completed outputs are served from memory. Campaigns are checkpointed
// via core.Benchmark.RunCampaign under the server's data directory, so
// a restarted daemon resumes them instead of recomputing.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"cloudeval/internal/core"
	"cloudeval/internal/dataset"
	"cloudeval/internal/inference"
	"cloudeval/internal/llm"
	"cloudeval/internal/score"
	"cloudeval/internal/store"
)

// Config tunes the service tier. The zero value is fully permissive —
// no rate limit, unbounded campaign admission — matching the
// pre-tenancy daemon, so embedded and test servers need no
// configuration. cloudevald exposes each knob as a flag.
type Config struct {
	// TenantRate is the per-tenant token-bucket refill rate, in
	// requests per second, applied to POST /v1/eval and POST
	// /v1/campaign. 0 disables rate limiting.
	TenantRate float64
	// TenantBurst is the bucket capacity — the instantaneous burst a
	// tenant may spend before the rate applies. Values below 1 are
	// clamped to 1 when TenantRate is set.
	TenantBurst int
	// CampaignQueue bounds campaigns admitted but not yet finished,
	// across all tenants; a full queue answers 429 + Retry-After.
	// 0 means unbounded.
	CampaignQueue int
	// CampaignWorkers bounds concurrently running campaigns; admitted
	// campaigns beyond it wait in state "queued". 0 means unbounded.
	CampaignWorkers int
	// Store, when set, is the persistent evaluation store backing the
	// benchmark; GET /v1/stats then surfaces its shard layout and
	// group-commit batching counters. Nil (a store-less daemon) simply
	// omits the block.
	Store *store.Store
}

// Server serves one benchmark instance. Construct with New or
// NewWithConfig.
type Server struct {
	bench   *core.Benchmark
	dataDir string
	mux     *http.ServeMux
	cfg     Config
	limiter *tenantLimiter
	routes  map[string]*routeStats

	problems map[string]dataset.Problem
	models   map[string]llm.Model

	mu              sync.Mutex
	tenants         map[string]*tenantState
	campaignPending int           // campaigns admitted and not yet finished
	campaignSem     chan struct{} // nil = unbounded concurrent campaigns

	start time.Time
}

// flight coalesces concurrent requests for one experiment into a
// single generation.
type flight struct {
	done chan struct{}
	out  string
	err  error
}

// campaign tracks one async experiment run.
type campaign struct {
	ID          string   `json:"id"`
	Experiments []string `json:"experiments"`
	tenant      string

	mu        sync.Mutex
	state     string // "queued", "running", "done", "failed"
	completed []string
	errMsg    string
}

// New builds a permissive (unlimited) server over bench. dataDir roots
// campaign checkpoints; it is created on demand.
func New(bench *core.Benchmark, dataDir string) *Server {
	return NewWithConfig(bench, dataDir, Config{})
}

// NewWithConfig builds a server over bench with admission control per
// cfg. dataDir roots campaign checkpoints (the default tenant's under
// <dataDir>/campaigns/<id>, other tenants' under
// <dataDir>/tenants/<tenant>/campaigns/<id>).
func NewWithConfig(bench *core.Benchmark, dataDir string, cfg Config) *Server {
	s := &Server{
		bench:    bench,
		dataDir:  dataDir,
		mux:      http.NewServeMux(),
		cfg:      cfg,
		limiter:  newTenantLimiter(cfg.TenantRate, cfg.TenantBurst),
		routes:   make(map[string]*routeStats),
		problems: make(map[string]dataset.Problem, len(bench.Problems)),
		models:   make(map[string]llm.Model, len(bench.Models)),
		tenants:  make(map[string]*tenantState),
		start:    time.Now(),
	}
	if cfg.CampaignWorkers > 0 {
		s.campaignSem = make(chan struct{}, cfg.CampaignWorkers)
	}
	for _, p := range bench.Problems {
		s.problems[p.ID] = p
	}
	for _, m := range bench.Models {
		s.models[m.Name] = m
	}
	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /v1/leaderboard", s.handleLeaderboard)
	s.handle("GET /v1/leaderboard/families", s.handleFamilyLeaderboard)
	s.handle("GET /v1/stats", s.handleStats)
	s.handle("POST /v1/eval", s.handleEval)
	s.handle("POST /v1/campaign", s.handleCampaignStart)
	s.handle("GET /v1/campaign/{id}", s.handleCampaignStatus)
	return s
}

// Handler returns the server's HTTP handler: the /v1 routes behind the
// request-ID middleware.
func (s *Server) Handler() http.Handler { return withRequestID(s.mux) }

// admit runs the per-tenant token bucket for one POST request, writing
// the 429 itself when the bucket is dry.
func (s *Server) admit(w http.ResponseWriter, tn *tenantState) bool {
	ok, retry := s.limiter.allow(tn.name)
	if !ok {
		writeRetryError(w, http.StatusTooManyRequests, codeRateLimited,
			fmt.Sprintf("tenant %q is over its request rate", tn.name), retry)
		return false
	}
	return true
}

// experiment generates (or replays) one experiment with per-tenant
// request coalescing: the first caller computes, concurrent callers of
// the same tenant park on the flight, later callers hit the in-memory
// result. Distinct tenants compute independently — the shared engine
// and dispatcher underneath make the recompute a cache walk, and the
// serving layer never hands one tenant an object another tenant's
// request produced.
func (s *Server) experiment(tn *tenantState, id string) (string, error) {
	gens := s.bench.Experiments()
	gen, ok := gens[id]
	if !ok {
		return "", fmt.Errorf("unknown experiment %q", id)
	}
	s.mu.Lock()
	if out, ok := tn.results[id]; ok {
		s.mu.Unlock()
		return out, nil
	}
	if f, ok := tn.flights[id]; ok {
		s.mu.Unlock()
		<-f.done
		return f.out, f.err
	}
	f := &flight{done: make(chan struct{})}
	tn.flights[id] = f
	s.mu.Unlock()

	// Generation failures surface as failed experiments, not as
	// silently zero-scored tables: campaign paths render an errored
	// generation as an empty answer so the run completes, latching the
	// error into the dispatcher — so count failures across the run and
	// refuse to cache (or checkpoint) an output produced with any. The
	// counter is process-wide, so a concurrent failing request can fail
	// an unrelated clean experiment — deliberately conservative: a
	// retry succeeds, a corrupt output is never cached.
	genStats := s.bench.Generator().Stats()
	func() {
		defer func() {
			if r := recover(); r != nil {
				f.err = fmt.Errorf("experiment %s: %v", id, r)
			}
		}()
		f.out = gen()
	}()
	if f.err == nil {
		if failed := s.bench.Generator().Stats().Errors - genStats.Errors; failed > 0 {
			f.err = fmt.Errorf("experiment %s: %d generation failures (first: %v)",
				id, failed, s.bench.Generator().Err())
		}
	}
	close(f.done)

	s.mu.Lock()
	delete(tn.flights, id)
	if f.err == nil {
		tn.results[id] = f.out
	}
	s.mu.Unlock()
	return f.out, f.err
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleLeaderboard serves Table 4 byte-identical to
// core.Benchmark.Table4, cached and coalesced per tenant.
func (s *Server) handleLeaderboard(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	out, err := s.experiment(tn, "table4")
	if err != nil {
		writeError(w, http.StatusInternalServerError, codeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, out)
}

// handleFamilyLeaderboard serves the per-workload-family breakdown
// (core.Benchmark.FamilyLeaderboard): one column per registered
// scenario backend, including the extension families the pinned
// Table 4 excludes. It shares the ZeroShot campaign with the main
// leaderboard, so serving both costs one evaluation.
func (s *Server) handleFamilyLeaderboard(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	out, err := s.experiment(tn, "families")
	if err != nil {
		writeError(w, http.StatusInternalServerError, codeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, out)
}

// statsResponse is the engine, inference and serving-layer counter
// snapshot.
type statsResponse struct {
	Executor  string `json:"executor"`
	Workers   int    `json:"workers"`
	Executed  int64  `json:"executed"`
	CacheHits int64  `json:"cache_hits"`
	StoreHits int64  `json:"store_hits"`

	// Pipeline depth gauges: instantaneous occupancy of the streaming
	// generation→execution pipeline (DESIGN.md §2.12). All three read
	// zero when no campaign is mid-flight.
	GenInflight        int64 `json:"gen_inflight"`
	PipelineQueueDepth int64 `json:"pipeline_queue_depth"`
	ExecBusy           int64 `json:"exec_busy"`

	// Inference-side counters: live provider calls, generation cache
	// tiers, and the metered token usage of live generations.
	Provider         string `json:"provider"`
	Generated        int64  `json:"generated"`
	GenCacheHits     int64  `json:"gen_cache_hits"`
	GenStoreHits     int64  `json:"gen_store_hits"`
	GenErrors        int64  `json:"gen_errors,omitempty"`
	PromptTokens     int64  `json:"prompt_tokens"`
	CompletionTokens int64  `json:"completion_tokens"`

	// Serving-layer counters: daemon uptime, known tenants, and
	// per-route request/latency aggregates.
	UptimeSec float64                   `json:"uptime_sec"`
	Tenants   int                       `json:"tenants"`
	Routes    map[string]routeStatsJSON `json:"routes"`

	// Store is the persistent store's shard layout and group-commit
	// batching snapshot; omitted when the daemon runs store-less.
	Store *storeStatsJSON `json:"store,omitempty"`
}

// storeStatsJSON is the GET /v1/stats view of the sharded store:
// layout, aggregate counters, and the frames-per-flush batching ratio
// whose collapse toward 1.0 is the contention-regression tell.
type storeStatsJSON struct {
	Shards      int   `json:"shards"`
	Records     int   `json:"records"`
	Generations int   `json:"generations"`
	Appended    int64 `json:"appended"`
	Flushes     int64 `json:"flushes"`
	// FramesPerFlush is Appended/Flushes: >1 means group commit is
	// batching concurrent writers into shared fsyncs.
	FramesPerFlush float64           `json:"frames_per_flush"`
	PerShard       []store.ShardStat `json:"per_shard"`

	// Out-of-core economics: resident memory (offset index + hot
	// cache, never payload-proportional), the bounded hot cache's
	// occupancy and hit rates, and how the last Open rebuilt the index
	// (snapshot sidecars vs frame scanning).
	ResidentBytes int64              `json:"resident_bytes"`
	HotCache      hotCacheStatsJSON  `json:"hot_cache"`
	LastOpen      storeOpenStatsJSON `json:"last_open"`
}

// hotCacheStatsJSON is the bounded hot cache's stats block.
type hotCacheStatsJSON struct {
	CapacityBytes int64 `json:"capacity_bytes"`
	Bytes         int64 `json:"bytes"`
	Entries       int   `json:"entries"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
}

// storeOpenStatsJSON describes the last Open's index rebuild.
type storeOpenStatsJSON struct {
	SnapshotShards int     `json:"snapshot_shards"`
	SnapshotFrames int     `json:"snapshot_frames"`
	ScannedFrames  int     `json:"scanned_frames"`
	DurationMs     float64 `json:"duration_ms"`
}

func storeStatsFor(st *store.Store) *storeStatsJSON {
	cs := st.CacheStats()
	op := st.LastOpen()
	out := &storeStatsJSON{
		Shards:        st.Shards(),
		Records:       st.Len(),
		Generations:   st.GenLen(),
		Appended:      st.Appended(),
		Flushes:       st.Flushes(),
		PerShard:      st.ShardStats(),
		ResidentBytes: st.ResidentBytes(),
		HotCache: hotCacheStatsJSON{
			CapacityBytes: cs.Capacity,
			Bytes:         cs.Bytes,
			Entries:       cs.Entries,
			Hits:          cs.Hits,
			Misses:        cs.Misses,
		},
		LastOpen: storeOpenStatsJSON{
			SnapshotShards: op.SnapshotShards,
			SnapshotFrames: op.SnapshotFrames,
			ScannedFrames:  op.ScannedFrames,
			DurationMs:     float64(op.Duration.Microseconds()) / 1e3,
		},
	}
	if out.Flushes > 0 {
		out.FramesPerFlush = float64(out.Appended) / float64(out.Flushes)
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	eng := s.bench.Engine()
	st := eng.Stats()
	gen := s.bench.Generator()
	gst := gen.Stats()
	routes := make(map[string]routeStatsJSON, len(s.routes))
	for pattern, rs := range s.routes {
		routes[pattern] = rs.snapshot()
	}
	s.mu.Lock()
	tenants := len(s.tenants)
	s.mu.Unlock()
	var storeStats *storeStatsJSON
	if s.cfg.Store != nil {
		storeStats = storeStatsFor(s.cfg.Store)
	}
	writeJSON(w, http.StatusOK, statsResponse{
		Executor:  eng.Executor().Name(),
		Workers:   eng.Workers(),
		Executed:  st.Executed,
		CacheHits: st.CacheHits,
		StoreHits: st.StoreHits,

		GenInflight:        st.GenInflight,
		PipelineQueueDepth: st.QueueDepth,
		ExecBusy:           st.ExecBusy,

		Provider:         gen.Provider().Name(),
		Generated:        gst.Generated,
		GenCacheHits:     gst.CacheHits,
		GenStoreHits:     gst.StoreHits,
		GenErrors:        gst.Errors,
		PromptTokens:     int64(gst.Usage.PromptTokens),
		CompletionTokens: int64(gst.Usage.CompletionTokens),

		UptimeSec: time.Since(s.start).Seconds(),
		Tenants:   tenants,
		Routes:    routes,
		Store:     storeStats,
	})
}

// evalRequest scores one problem: either a literal candidate answer,
// or the named zoo model's generated answer. Exactly one of Answer and
// Model must be set.
type evalRequest struct {
	Problem string `json:"problem"`
	Answer  string `json:"answer,omitempty"`
	Model   string `json:"model,omitempty"`
}

type evalResponse struct {
	Problem string             `json:"problem"`
	Model   string             `json:"model,omitempty"`
	Answer  string             `json:"answer"`
	Scores  map[string]float64 `json:"scores"`
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	if !s.admit(w, tn) {
		return
	}
	var req evalRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "bad request: "+err.Error())
		return
	}
	p, ok := s.problems[req.Problem]
	if !ok {
		writeError(w, http.StatusNotFound, codeNotFound, fmt.Sprintf("unknown problem %q", req.Problem))
		return
	}
	if (req.Answer == "") == (req.Model == "") {
		writeError(w, http.StatusBadRequest, codeBadRequest, "exactly one of answer and model must be set")
		return
	}
	answer := req.Answer
	if req.Model != "" {
		m, ok := s.models[req.Model]
		if !ok {
			writeError(w, http.StatusNotFound, codeNotFound, fmt.Sprintf("unknown model %q", req.Model))
			return
		}
		resp, err := s.bench.Generator().Generate(r.Context(), inference.Request{Model: m.Name, Problem: p})
		if err != nil {
			writeError(w, http.StatusBadGateway, codeBadGateway, "generation failed: "+err.Error())
			return
		}
		answer = llm.Postprocess(resp.Text)
	}
	sc := score.ScoreAnswerWith(s.bench.Engine(), p, answer)
	scores := make(map[string]float64, len(score.Metrics))
	for _, name := range score.Metrics {
		scores[name] = sc.Metric(name)
	}
	writeJSON(w, http.StatusOK, evalResponse{
		Problem: p.ID,
		Model:   req.Model,
		Answer:  answer,
		Scores:  scores,
	})
}

type campaignRequest struct {
	// Experiments to run; empty means every experiment.
	Experiments []string `json:"experiments,omitempty"`
}

type campaignResponse struct {
	ID          string   `json:"id"`
	State       string   `json:"state"`
	Experiments []string `json:"experiments"`
	Completed   []string `json:"completed"`
	Error       string   `json:"error,omitempty"`
	// Outputs holds each completed experiment's rendered text.
	Outputs map[string]string `json:"outputs,omitempty"`
}

// campaignID derives a deterministic ID from the tenant and experiment
// set, so re-posting the same campaign — against this daemon or a
// restarted one — coalesces onto (or resumes) the same checkpointed
// run. The default tenant hashes the experiment set alone, keeping its
// IDs byte-identical to the pre-tenancy daemon; every other tenant's
// IDs mix the tenant in, so two tenants running the same experiments
// never collide on an ID (or a checkpoint directory).
func campaignID(tenant string, ids []string) string {
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	key := strings.Join(sorted, ",")
	if tenant != core.TenantDefault {
		key = tenant + "\x00" + key
	}
	sum := sha256.Sum256([]byte(key))
	return "c-" + hex.EncodeToString(sum[:6])
}

// campaignRetryAfter is the Retry-After hint for a full campaign
// queue: campaigns run for seconds, so an immediate retry would only
// find the same full queue.
const campaignRetryAfter = 2 * time.Second

func (s *Server) handleCampaignStart(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	if !s.admit(w, tn) {
		return
	}
	var req campaignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "bad request: "+err.Error())
		return
	}
	ids := req.Experiments
	if len(ids) == 0 {
		ids = core.ExperimentIDs
	}
	gens := s.bench.Experiments()
	for _, id := range ids {
		if _, ok := gens[id]; !ok {
			writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Sprintf("unknown experiment %q", id))
			return
		}
	}

	id := campaignID(tn.name, ids)
	s.mu.Lock()
	c, ok := tn.campaigns[id]
	if ok {
		// A failed campaign must not wedge its ID: re-posting retries
		// it (from its checkpoints) instead of echoing the stale
		// failure forever.
		c.mu.Lock()
		if c.state == "failed" {
			ok = false
		}
		c.mu.Unlock()
	}
	if !ok {
		// Bounded admission: a fresh campaign takes a queue slot until
		// it finishes. A full queue is backpressure, not an error in
		// the campaign itself — 429 and come back.
		if s.cfg.CampaignQueue > 0 && s.campaignPending >= s.cfg.CampaignQueue {
			pending := s.campaignPending
			s.mu.Unlock()
			writeRetryError(w, http.StatusTooManyRequests, codeQueueFull,
				fmt.Sprintf("campaign queue is full (%d pending)", pending), campaignRetryAfter)
			return
		}
		state := "running"
		if s.campaignSem != nil {
			state = "queued"
		}
		c = &campaign{ID: id, Experiments: ids, tenant: tn.name, state: state}
		tn.campaigns[id] = c
		s.campaignPending++
		go s.runCampaign(tn, c)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, s.campaignStatus(c, false))
}

// campaignMeta is persisted as campaign.json inside each campaign
// directory, so a restarted daemon can identify and resume on-disk
// campaigns it no longer holds in memory.
type campaignMeta struct {
	ID          string   `json:"id"`
	Experiments []string `json:"experiments"`
}

// runCampaign drives one checkpointed campaign in the background,
// routing fresh generations through the tenant's coalescing layer (so
// a campaign and a concurrent direct request share one computation,
// and campaign outputs warm the request cache). When the server bounds
// campaign concurrency, the campaign waits in state "queued" for a
// worker slot first; either way it releases its admission-queue slot
// when it finishes.
func (s *Server) runCampaign(tn *tenantState, c *campaign) {
	defer func() {
		s.mu.Lock()
		s.campaignPending--
		s.mu.Unlock()
	}()
	if s.campaignSem != nil {
		s.campaignSem <- struct{}{}
		defer func() { <-s.campaignSem }()
		c.mu.Lock()
		c.state = "running"
		c.mu.Unlock()
	}
	dir := filepath.Join(s.campaignRoot(tn.name), c.ID)
	fail := func(err error) {
		c.mu.Lock()
		c.state = "failed"
		c.errMsg = err.Error()
		c.mu.Unlock()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail(err)
		return
	}
	meta, err := json.Marshal(campaignMeta{ID: c.ID, Experiments: c.Experiments})
	if err != nil {
		fail(err)
		return
	}
	// Temp-file + rename, like every other checkpoint write: a crash
	// mid-write must not leave torn JSON that hides the campaign from a
	// restarted daemon.
	metaPath := filepath.Join(dir, "campaign.json")
	if err := os.WriteFile(metaPath+".tmp", meta, 0o644); err != nil {
		fail(err)
		return
	}
	if err := os.Rename(metaPath+".tmp", metaPath); err != nil {
		fail(err)
		return
	}
	_, err = s.bench.RunCampaignVia(dir, c.Experiments, nil,
		func(id string) (string, error) { return s.experiment(tn, id) },
		func(id string, skipped bool) {
			if skipped {
				// A checkpoint replay warms the request cache too.
				if out, err := readCampaignOutput(dir, id); err == nil {
					s.mu.Lock()
					if _, ok := tn.results[id]; !ok {
						tn.results[id] = out
					}
					s.mu.Unlock()
				}
			}
			c.mu.Lock()
			c.completed = append(c.completed, id)
			c.mu.Unlock()
		})
	if err != nil {
		fail(err)
		return
	}
	c.mu.Lock()
	c.state = "done"
	c.mu.Unlock()
}

func (s *Server) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	s.mu.Lock()
	c, ok := tn.campaigns[id]
	s.mu.Unlock()
	if !ok {
		// Not in memory — maybe a previous daemon's campaign. Serve its
		// on-disk checkpoint state as "interrupted": re-posting the same
		// experiment set resumes it. The lookup stays inside this
		// tenant's checkpoint root, so one tenant can never read
		// another's campaign by guessing its ID.
		if resp, err := s.campaignFromDisk(tn.name, id); err == nil {
			writeJSON(w, http.StatusOK, resp)
			return
		}
		writeError(w, http.StatusNotFound, codeNotFound, fmt.Sprintf("unknown campaign %q", id))
		return
	}
	writeJSON(w, http.StatusOK, s.campaignStatus(c, true))
}

// campaignFromDisk reconstructs a campaign's status from its directory
// under the tenant's checkpoint root after a daemon restart.
func (s *Server) campaignFromDisk(tenant, id string) (campaignResponse, error) {
	dir := filepath.Join(s.campaignRoot(tenant), id)
	data, err := os.ReadFile(filepath.Join(dir, "campaign.json"))
	if err != nil {
		return campaignResponse{}, err
	}
	var meta campaignMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return campaignResponse{}, err
	}
	completed, err := core.CampaignCompleted(dir)
	if err != nil {
		return campaignResponse{}, err
	}
	state := "interrupted"
	if len(completed) >= len(meta.Experiments) {
		state = "done"
	}
	resp := campaignResponse{
		ID:          meta.ID,
		State:       state,
		Experiments: meta.Experiments,
		Completed:   completed,
		Outputs:     make(map[string]string, len(completed)),
	}
	for _, eid := range completed {
		if out, err := readCampaignOutput(dir, eid); err == nil {
			resp.Outputs[eid] = out
		}
	}
	return resp, nil
}

func (s *Server) campaignStatus(c *campaign, includeOutputs bool) campaignResponse {
	c.mu.Lock()
	resp := campaignResponse{
		ID:          c.ID,
		State:       c.state,
		Experiments: c.Experiments,
		Completed:   append([]string(nil), c.completed...),
		Error:       c.errMsg,
	}
	c.mu.Unlock()
	// Outputs ride along only once the campaign stops running: polls of
	// an in-flight campaign need state/completed, not a re-read of every
	// checkpoint file shipped on each request.
	if includeOutputs && resp.State != "running" && resp.State != "queued" && len(resp.Completed) > 0 {
		dir := filepath.Join(s.campaignRoot(c.tenant), c.ID)
		outputs := make(map[string]string, len(resp.Completed))
		for _, id := range resp.Completed {
			data, err := readCampaignOutput(dir, id)
			if err == nil {
				outputs[id] = data
			}
		}
		resp.Outputs = outputs
	}
	return resp
}

func readCampaignOutput(dir, id string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, id+".txt"))
	return string(data), err
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
