package server

import (
	"net/http"
	"strconv"
	"time"
)

// Every /v1 error response is one JSON envelope:
//
//	{"error": {"code": "rate_limited", "message": "..."}}
//
// The HTTP status carries the class (400/404/429/500/502), the code a
// machine-readable cause within it, and the message the human detail.
// Handlers never call http.Error directly — the envelope is the wire
// contract the typed client (cloudeval/client) decodes.

// Error codes used across the /v1 surface.
const (
	codeBadRequest    = "bad_request"
	codeInvalidTenant = "invalid_tenant"
	codeNotFound      = "not_found"
	codeRateLimited   = "rate_limited"
	codeQueueFull     = "campaign_queue_full"
	codeBadGateway    = "bad_gateway"
	codeInternal      = "internal"
)

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorEnvelope struct {
	Error errorDetail `json:"error"`
}

// writeError renders the shared error envelope with the given status.
func writeError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, errorEnvelope{Error: errorDetail{Code: code, Message: message}})
}

// writeRetryError is writeError with a Retry-After header: the
// admission-control contract for 429s. retryAfter is rounded up to
// whole seconds, never below 1 — a Retry-After of 0 invites an
// immediate, equally doomed retry.
func writeRetryError(w http.ResponseWriter, status int, code, message string, retryAfter time.Duration) {
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeError(w, status, code, message)
}
