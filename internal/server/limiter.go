package server

import (
	"sync"
	"time"
)

// tenantLimiter is the admission-control rate limiter: one token
// bucket per tenant, refilled continuously at rate tokens/second up to
// burst. POST /v1/eval and POST /v1/campaign each spend one token; an
// empty bucket yields 429 + Retry-After instead of unbounded work.
//
// Buckets are created on first use and never expire — the tenant
// cardinality a daemon sees is bounded by its user base, and one
// bucket is two floats. The clock is injectable for tests.
type tenantLimiter struct {
	rate  float64 // tokens per second; <= 0 disables the limiter
	burst float64 // bucket capacity
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newTenantLimiter builds a limiter refilling rate tokens/second with
// capacity burst. burst < 1 is clamped to 1 (a bucket that can never
// hold a whole token admits nothing). rate <= 0 returns nil: a nil
// limiter admits everything.
func newTenantLimiter(rate float64, burst int) *tenantLimiter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &tenantLimiter{
		rate:    rate,
		burst:   b,
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// allow spends one token from tenant's bucket. When the bucket is
// empty it reports false plus how long until a whole token will have
// refilled — the Retry-After the caller surfaces.
func (l *tenantLimiter) allow(tenant string) (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[tenant]
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}
