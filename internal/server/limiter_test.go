package server

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"time"

	"cloudeval/internal/core"
)

// TestTenantLimiterRefill drives the token bucket on a fake clock:
// burst spends down, denial reports the exact refill wait, and time
// restores tokens up to (and never past) the burst.
func TestTenantLimiterRefill(t *testing.T) {
	l := newTenantLimiter(10, 2) // 10 tokens/s, burst 2
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("a"); !ok {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	ok, retry := l.allow("a")
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	// An empty bucket at 10 tokens/s refills one token in 100ms.
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Errorf("retry hint = %v, want (0, 100ms]", retry)
	}

	// 150ms later: one token refilled, a second not yet.
	now = now.Add(150 * time.Millisecond)
	if ok, _ := l.allow("a"); !ok {
		t.Error("request after refill denied")
	}
	if ok, _ := l.allow("a"); ok {
		t.Error("second request admitted before its token refilled")
	}

	// A long idle stretch caps at burst, not unbounded credit.
	now = now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("a"); !ok {
			t.Fatalf("request %d after long idle denied", i)
		}
	}
	if ok, _ := l.allow("a"); ok {
		t.Error("idle time accumulated more than burst tokens")
	}
}

// TestTenantLimiterIsolation: tenants draw from independent buckets.
func TestTenantLimiterIsolation(t *testing.T) {
	l := newTenantLimiter(0.001, 1)
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }

	if ok, _ := l.allow("a"); !ok {
		t.Fatal("tenant a's first request denied")
	}
	if ok, _ := l.allow("a"); ok {
		t.Fatal("tenant a admitted past its burst")
	}
	if ok, _ := l.allow("b"); !ok {
		t.Error("tenant b starved by tenant a's bucket")
	}
}

// TestNilLimiterAdmitsEverything: rate 0 disables admission control.
func TestNilLimiterAdmitsEverything(t *testing.T) {
	l := newTenantLimiter(0, 5)
	if l != nil {
		t.Fatalf("rate 0 built a limiter: %+v", l)
	}
	for i := 0; i < 100; i++ {
		if ok, _ := l.allow("a"); !ok {
			t.Fatal("nil limiter denied a request")
		}
	}
}

// TestCampaignIDTenantScoping pins two contracts: the default tenant's
// campaign IDs are byte-identical to the pre-tenancy scheme (so
// existing data directories resume under the same IDs), and named
// tenants' IDs mix the tenant in.
func TestCampaignIDTenantScoping(t *testing.T) {
	ids := []string{"table4", "table2"}

	// The historical derivation: sorted IDs, comma-joined, sha256.
	sum := sha256.Sum256([]byte("table2,table4"))
	legacy := "c-" + hex.EncodeToString(sum[:6])
	if got := campaignID(core.TenantDefault, ids); got != legacy {
		t.Errorf("default-tenant campaign ID %s != legacy %s", got, legacy)
	}

	beta := campaignID("beta", ids)
	if beta == legacy {
		t.Error("named tenant shares the default tenant's campaign ID")
	}
	if campaignID("gamma", ids) == beta {
		t.Error("two named tenants share a campaign ID")
	}
	// Order-insensitive within a tenant.
	if campaignID("beta", []string{"table2", "table4"}) != beta {
		t.Error("campaign ID depends on experiment order")
	}
}
