package server

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Request-ID middleware and per-route counters. Every response carries
// an X-Request-ID — the caller's, echoed, when it sent a plausible
// one; a generated one otherwise — so a request can be correlated
// across client logs, loadgen traces and daemon output. Each route
// keeps a request count, an error count and cumulative latency,
// surfaced by GET /v1/stats.

// idSeed is a per-process random prefix; generated request IDs are
// seed-counter, unique within and (with high probability) across
// daemon processes.
var (
	idSeed    = func() string { var b [4]byte; rand.Read(b[:]); return hex.EncodeToString(b[:]) }()
	idCounter atomic.Int64
)

const requestIDHeader = "X-Request-ID"

// validRequestID bounds what we echo back: printable ASCII without
// separators, at most 128 bytes. Anything else gets a generated ID
// instead — a response header is no place for caller-controlled
// control characters.
func validRequestID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		if c := id[i]; c <= ' ' || c > '~' {
			return false
		}
	}
	return true
}

// withRequestID wraps h so every response carries an X-Request-ID.
func withRequestID(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(requestIDHeader)
		if !validRequestID(id) {
			id = idSeed + "-" + strconv.FormatInt(idCounter.Add(1), 10)
		}
		w.Header().Set(requestIDHeader, id)
		h.ServeHTTP(w, r)
	})
}

// routeStats is one route's counters. All fields are atomics: routes
// are registered once at construction, so the map itself is read-only
// while serving.
type routeStats struct {
	requests atomic.Int64
	errors   atomic.Int64 // responses with status >= 400
	totalNs  atomic.Int64
}

// routeStatsJSON is the /v1/stats rendering of one route's counters.
type routeStatsJSON struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors,omitempty"`
	AvgMs    float64 `json:"avg_latency_ms"`
}

func (rs *routeStats) snapshot() routeStatsJSON {
	n := rs.requests.Load()
	out := routeStatsJSON{Requests: n, Errors: rs.errors.Load()}
	if n > 0 {
		out.AvgMs = float64(rs.totalNs.Load()) / float64(n) / 1e6
	}
	return out
}

// statusRecorder captures the response status for the error counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(status int) {
	sr.status = status
	sr.ResponseWriter.WriteHeader(status)
}

// handle registers pattern on the server's mux wrapped in a per-route
// request/latency counter.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	rs := &routeStats{}
	s.routes[pattern] = rs
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		rs.requests.Add(1)
		rs.totalNs.Add(time.Since(start).Nanoseconds())
		if rec.status >= 400 {
			rs.errors.Add(1)
		}
	})
}
