package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cloudeval/internal/core"
	"cloudeval/internal/dataset"
	"cloudeval/internal/engine"
	"cloudeval/internal/inference"
	"cloudeval/internal/llm"
	"cloudeval/internal/server"
	"cloudeval/internal/store"
	"cloudeval/internal/yamlmatch"
)

func smallBench(eng *engine.Engine) *core.Benchmark {
	return core.NewCustomWith(eng, dataset.Generate()[:10], llm.Models[:3])
}

func newTestServer(t *testing.T, bench *core.Benchmark) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(bench, t.TempDir()).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getBody(t *testing.T, url string, wantStatus int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d: %s", url, resp.StatusCode, wantStatus, body)
	}
	return string(body)
}

func postJSON(t *testing.T, url, payload string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestEvalEndpoint(t *testing.T) {
	bench := smallBench(engine.New())
	ts := newTestServer(t, bench)
	p := bench.Originals[0]
	ref := yamlmatch.StripLabels(p.ReferenceYAML)

	// A literal reference answer scores a perfect unit test.
	payload, _ := json.Marshal(map[string]string{"problem": p.ID, "answer": ref})
	status, body := postJSON(t, ts.URL+"/v1/eval", string(payload))
	if status != http.StatusOK {
		t.Fatalf("eval = %d: %s", status, body)
	}
	var got struct {
		Problem string             `json:"problem"`
		Scores  map[string]float64 `json:"scores"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.Problem != p.ID || got.Scores["unit_test"] != 1 || got.Scores["kv_wildcard"] != 1 {
		t.Fatalf("reference answer scored %+v", got)
	}

	// Model-generated evaluation.
	status, body = postJSON(t, ts.URL+"/v1/eval",
		fmt.Sprintf(`{"problem": %q, "model": %q}`, p.ID, bench.Models[0].Name))
	if status != http.StatusOK {
		t.Fatalf("model eval = %d: %s", status, body)
	}

	// Error shapes.
	if status, _ := postJSON(t, ts.URL+"/v1/eval", `{"problem": "nope", "answer": "x"}`); status != http.StatusNotFound {
		t.Errorf("unknown problem = %d, want 404", status)
	}
	if status, _ := postJSON(t, ts.URL+"/v1/eval",
		fmt.Sprintf(`{"problem": %q}`, p.ID)); status != http.StatusBadRequest {
		t.Errorf("neither answer nor model = %d, want 400", status)
	}
	if status, _ := postJSON(t, ts.URL+"/v1/eval",
		fmt.Sprintf(`{"problem": %q, "answer": "x", "model": "gpt-4"}`, p.ID)); status != http.StatusBadRequest {
		t.Errorf("both answer and model = %d, want 400", status)
	}
}

// TestLeaderboardByteIdentical: /v1/leaderboard must render exactly
// core.Benchmark's Table 4, including under concurrent (coalesced)
// requests.
func TestLeaderboardByteIdentical(t *testing.T) {
	bench := smallBench(engine.New())
	ts := newTestServer(t, bench)

	const n = 8
	bodies := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/leaderboard")
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			bodies[i] = string(b)
		}(i)
	}
	wg.Wait()

	want := bench.Table4()
	for i, b := range bodies {
		if b != want {
			t.Fatalf("leaderboard %d differs from core.Benchmark.Table4:\n--- got ---\n%s--- want ---\n%s", i, b, want)
		}
	}
}

// TestFamilyLeaderboardEndpoint: /v1/leaderboard/families serves the
// per-workload-family rows, one column per registered scenario backend
// (including the compose and helm extension families), byte-identical
// to core.Benchmark.FamilyLeaderboard.
func TestFamilyLeaderboardEndpoint(t *testing.T) {
	// A cross-family slice of the corpus: two problems per family.
	var subset []dataset.Problem
	seen := map[dataset.Category]int{}
	for _, p := range dataset.Generate() {
		if seen[p.Category] < 2 {
			seen[p.Category]++
			subset = append(subset, p)
		}
	}
	bench := core.NewCustomWith(engine.New(), subset, llm.Models[:2])
	ts := newTestServer(t, bench)
	body := getBody(t, ts.URL+"/v1/leaderboard/families", http.StatusOK)
	for _, col := range []string{"kubernetes", "envoy", "istio", "compose", "helm", "overall"} {
		if !strings.Contains(body, col) {
			t.Errorf("family leaderboard missing %q column:\n%s", col, body)
		}
	}
	if want := bench.FamilyLeaderboard(); body != want {
		t.Fatalf("family leaderboard differs from core:\n--- got ---\n%s--- want ---\n%s", body, want)
	}
}

func waitCampaignDone(t *testing.T, base, id string) string {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		body := getBody(t, base+"/v1/campaign/"+id, http.StatusOK)
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case "done":
			return body
		case "failed":
			t.Fatalf("campaign failed: %s", st.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("campaign did not finish in time")
	return ""
}

// TestCampaignAsyncResume drives the async campaign API, then restarts
// the daemon (fresh server, fresh benchmark, same data dir) and
// requires the resumed campaign to replay from checkpoints without
// executing a single unit test.
func TestCampaignAsyncResume(t *testing.T) {
	dataDir := t.TempDir()
	ids := `{"experiments": ["table2", "table4"]}`

	ts := httptest.NewServer(server.New(smallBench(engine.New()), dataDir).Handler())
	status, body := postJSON(t, ts.URL+"/v1/campaign", ids)
	if status != http.StatusAccepted {
		t.Fatalf("campaign start = %d: %s", status, body)
	}
	var started struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(body), &started); err != nil {
		t.Fatal(err)
	}
	final := waitCampaignDone(t, ts.URL, started.ID)
	var done struct {
		Completed []string          `json:"completed"`
		Outputs   map[string]string `json:"outputs"`
	}
	if err := json.Unmarshal([]byte(final), &done); err != nil {
		t.Fatal(err)
	}
	if len(done.Completed) != 2 || done.Outputs["table4"] == "" {
		t.Fatalf("campaign status = %s", final)
	}
	firstTable4 := done.Outputs["table4"]
	ts.Close()

	// Re-posting the identical experiment set yields the same campaign
	// ID, and the restarted daemon serves it from checkpoints: the new
	// engine never executes.
	eng2 := engine.New()
	ts2 := httptest.NewServer(server.New(smallBench(eng2), dataDir).Handler())
	defer ts2.Close()

	// Before any re-POST, the restarted daemon reconstructs the
	// campaign's status from its on-disk checkpoints instead of 404ing.
	var fromDisk struct {
		State     string            `json:"state"`
		Completed []string          `json:"completed"`
		Outputs   map[string]string `json:"outputs"`
	}
	if err := json.Unmarshal([]byte(getBody(t, ts2.URL+"/v1/campaign/"+started.ID, http.StatusOK)), &fromDisk); err != nil {
		t.Fatal(err)
	}
	if fromDisk.State != "done" || len(fromDisk.Completed) != 2 || fromDisk.Outputs["table4"] != firstTable4 {
		t.Fatalf("rehydrated campaign status = %+v", fromDisk)
	}

	status, body = postJSON(t, ts2.URL+"/v1/campaign", ids)
	if status != http.StatusAccepted {
		t.Fatalf("campaign restart = %d: %s", status, body)
	}
	var restarted struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(body), &restarted); err != nil {
		t.Fatal(err)
	}
	if restarted.ID != started.ID {
		t.Fatalf("campaign ID changed across restart: %s vs %s", restarted.ID, started.ID)
	}
	final = waitCampaignDone(t, ts2.URL, restarted.ID)
	if err := json.Unmarshal([]byte(final), &done); err != nil {
		t.Fatal(err)
	}
	if done.Outputs["table4"] != firstTable4 {
		t.Error("resumed campaign's table4 differs from the original run")
	}
	if st := eng2.Stats(); st.Executed != 0 {
		t.Errorf("resumed campaign executed %d unit tests, want 0", st.Executed)
	}
}

// TestColdStartWarmStore is the daemon-side acceptance contract: a
// cold-started cloudevald whose engine sits on a warm persistent store
// serves the Table 4 leaderboard byte-identical to core.Benchmark
// without executing a single unit test.
func TestColdStartWarmStore(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "eval.store")

	// Warm the store with one full campaign in a "previous process".
	st, err := store.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	warmBench := smallBench(engine.New(engine.WithStore(st)))
	want := warmBench.Table4()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold start: fresh store handle, fresh engine, fresh benchmark,
	// fresh server.
	st2, err := store.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	eng := engine.New(engine.WithStore(st2))
	ts := newTestServer(t, smallBench(eng))

	got := getBody(t, ts.URL+"/v1/leaderboard", http.StatusOK)
	if got != want {
		t.Errorf("cold-start leaderboard differs from warm benchmark's Table 4:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	var stats struct {
		Executed  int64 `json:"executed"`
		StoreHits int64 `json:"store_hits"`
	}
	if err := json.Unmarshal([]byte(getBody(t, ts.URL+"/v1/stats", http.StatusOK)), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 0 {
		t.Errorf("cold-start daemon executed %d unit tests, want 0", stats.Executed)
	}
	if stats.StoreHits == 0 {
		t.Error("cold-start daemon recorded no store hits")
	}
}

// TestStatsExposeGenerationCounters verifies /v1/stats carries the
// inference-side counters: provider name, live generations, generation
// cache tiers and metered token usage.
func TestStatsExposeGenerationCounters(t *testing.T) {
	eng := engine.New()
	bench := smallBench(eng)
	ts := newTestServer(t, bench)

	getBody(t, ts.URL+"/v1/leaderboard", http.StatusOK)

	var stats struct {
		Provider         string `json:"provider"`
		Generated        int64  `json:"generated"`
		GenCacheHits     int64  `json:"gen_cache_hits"`
		GenStoreHits     int64  `json:"gen_store_hits"`
		PromptTokens     int64  `json:"prompt_tokens"`
		CompletionTokens int64  `json:"completion_tokens"`
	}
	if err := json.Unmarshal([]byte(getBody(t, ts.URL+"/v1/stats", http.StatusOK)), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Provider != "sim" {
		t.Errorf("provider = %q, want sim", stats.Provider)
	}
	if stats.Generated == 0 {
		t.Error("leaderboard campaign reported zero generations")
	}
	if stats.PromptTokens == 0 || stats.CompletionTokens == 0 {
		t.Errorf("no token usage metered: %+v", stats)
	}
}

// TestColdStartWarmGenerationStore extends the warm-store contract to
// the generation side: a cold-started daemon whose dispatcher sits on
// a store warmed by a previous process serves the leaderboard with
// zero live generations.
func TestColdStartWarmGenerationStore(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "eval.store")
	originals := dataset.Generate()[:10]
	models := llm.Models[:3]

	st, err := store.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	warmDisp := inference.NewDispatcher(inference.NewSim(models), inference.WithGenStore(st))
	warmBench := core.NewCustomVia(engine.New(engine.WithStore(st)), warmDisp, originals, models)
	want := warmBench.Table4()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	coldDisp := inference.NewDispatcher(inference.NewSim(models), inference.WithGenStore(st2))
	bench := core.NewCustomVia(engine.New(engine.WithStore(st2)), coldDisp, originals, models)
	ts := newTestServer(t, bench)

	if got := getBody(t, ts.URL+"/v1/leaderboard", http.StatusOK); got != want {
		t.Error("cold-start leaderboard differs from the warm campaign")
	}
	var stats struct {
		Generated    int64 `json:"generated"`
		GenStoreHits int64 `json:"gen_store_hits"`
	}
	if err := json.Unmarshal([]byte(getBody(t, ts.URL+"/v1/stats", http.StatusOK)), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Generated != 0 {
		t.Errorf("cold-start daemon generated %d live responses, want 0", stats.Generated)
	}
	if stats.GenStoreHits == 0 {
		t.Error("cold-start daemon recorded no generation store hits")
	}
}

// failingProvider errors on every generation.
type failingProvider struct{}

func (failingProvider) Name() string { return "failing" }
func (failingProvider) Generate(ctx context.Context, req inference.Request) (inference.Response, error) {
	return inference.Response{}, fmt.Errorf("backend down")
}
func (failingProvider) Close() error { return nil }

// TestGenerationFailuresFailExperiments pins the daemon's error
// surfacing: a campaign whose provider fails must produce a 500 with
// the generation-failure count — never a silently zero-scored
// leaderboard cached as complete.
func TestGenerationFailuresFailExperiments(t *testing.T) {
	disp := inference.NewDispatcher(failingProvider{})
	bench := core.NewCustomVia(engine.New(), disp, dataset.Generate()[:4], llm.Models[:2])
	ts := newTestServer(t, bench)

	resp, err := http.Get(ts.URL + "/v1/leaderboard")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("leaderboard over a dead provider = %d, want 500: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "generation failures") {
		t.Errorf("error does not name the cause: %s", body)
	}
	// The model-generation eval path reports the failure directly.
	status, body2 := postJSON(t, ts.URL+"/v1/eval", `{"problem":"`+bench.Problems[0].ID+`","model":"`+bench.Models[0].Name+`"}`)
	if status != http.StatusBadGateway {
		t.Fatalf("eval with dead provider = %d, want 502: %s", status, body2)
	}
}
