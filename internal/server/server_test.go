package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cloudeval/client"
	"cloudeval/internal/core"
	"cloudeval/internal/dataset"
	"cloudeval/internal/engine"
	"cloudeval/internal/inference"
	"cloudeval/internal/llm"
	"cloudeval/internal/server"
	"cloudeval/internal/store"
	"cloudeval/internal/yamlmatch"
)

func smallBench(eng *engine.Engine) *core.Benchmark {
	return core.NewCustomWith(eng, dataset.Generate()[:10], llm.Models[:3])
}

func newTestServer(t *testing.T, bench *core.Benchmark) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(bench, t.TempDir()).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// newTestClient stands up a server over bench and returns the typed
// client every test speaks — the same package loadgen drives load
// through.
func newTestClient(t *testing.T, bench *core.Benchmark) *client.Client {
	t.Helper()
	return client.New(newTestServer(t, bench).URL)
}

// apiErr asserts err is an *client.APIError with the given status and
// envelope code.
func apiErr(t *testing.T, err error, status int, code string) *client.APIError {
	t.Helper()
	ae, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("error %v (%T), want *client.APIError", err, err)
	}
	if ae.Status != status || ae.Code != code {
		t.Fatalf("APIError = %d %q, want %d %q (%s)", ae.Status, ae.Code, status, code, ae.Message)
	}
	return ae
}

func TestEvalEndpoint(t *testing.T) {
	ctx := context.Background()
	bench := smallBench(engine.New())
	c := newTestClient(t, bench)
	p := bench.Originals[0]
	ref := yamlmatch.StripLabels(p.ReferenceYAML)

	// A literal reference answer scores a perfect unit test.
	got, err := c.Eval(ctx, client.EvalRequest{Problem: p.ID, Answer: ref})
	if err != nil {
		t.Fatal(err)
	}
	if got.Problem != p.ID || got.Scores["unit_test"] != 1 || got.Scores["kv_wildcard"] != 1 {
		t.Fatalf("reference answer scored %+v", got)
	}

	// Model-generated evaluation.
	if _, err := c.Eval(ctx, client.EvalRequest{Problem: p.ID, Model: bench.Models[0].Name}); err != nil {
		t.Fatalf("model eval: %v", err)
	}

	// Error shapes: status + envelope code.
	_, err = c.Eval(ctx, client.EvalRequest{Problem: "nope", Answer: "x"})
	apiErr(t, err, 404, "not_found")
	_, err = c.Eval(ctx, client.EvalRequest{Problem: p.ID})
	apiErr(t, err, 400, "bad_request")
	_, err = c.Eval(ctx, client.EvalRequest{Problem: p.ID, Answer: "x", Model: "gpt-4"})
	apiErr(t, err, 400, "bad_request")
}

// TestLeaderboardByteIdentical: /v1/leaderboard must render exactly
// core.Benchmark's Table 4, including under concurrent (coalesced)
// requests.
func TestLeaderboardByteIdentical(t *testing.T) {
	bench := smallBench(engine.New())
	c := newTestClient(t, bench)

	const n = 8
	bodies := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bodies[i], errs[i] = c.Leaderboard(context.Background())
		}(i)
	}
	wg.Wait()

	want := bench.Table4()
	for i, b := range bodies {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if b != want {
			t.Fatalf("leaderboard %d differs from core.Benchmark.Table4:\n--- got ---\n%s--- want ---\n%s", i, b, want)
		}
	}
}

// TestFamilyLeaderboardEndpoint: /v1/leaderboard/families serves the
// per-workload-family rows, one column per registered scenario backend
// (including the compose and helm extension families), byte-identical
// to core.Benchmark.FamilyLeaderboard.
func TestFamilyLeaderboardEndpoint(t *testing.T) {
	// A cross-family slice of the corpus: two problems per family.
	var subset []dataset.Problem
	seen := map[dataset.Category]int{}
	for _, p := range dataset.Generate() {
		if seen[p.Category] < 2 {
			seen[p.Category]++
			subset = append(subset, p)
		}
	}
	bench := core.NewCustomWith(engine.New(), subset, llm.Models[:2])
	c := newTestClient(t, bench)
	body, err := c.FamilyLeaderboard(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"kubernetes", "envoy", "istio", "compose", "helm", "overall"} {
		if !strings.Contains(body, col) {
			t.Errorf("family leaderboard missing %q column:\n%s", col, body)
		}
	}
	if want := bench.FamilyLeaderboard(); body != want {
		t.Fatalf("family leaderboard differs from core:\n--- got ---\n%s--- want ---\n%s", body, want)
	}
}

func waitCampaignDone(t *testing.T, c *client.Client, id string) client.CampaignStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := c.WaitCampaign(ctx, id, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("campaign %s: %v", id, err)
	}
	return st
}

// TestCampaignAsyncResume drives the async campaign API, then restarts
// the daemon (fresh server, fresh benchmark, same data dir) and
// requires the resumed campaign to replay from checkpoints without
// executing a single unit test.
func TestCampaignAsyncResume(t *testing.T) {
	ctx := context.Background()
	dataDir := t.TempDir()
	ids := []string{"table2", "table4"}

	ts := httptest.NewServer(server.New(smallBench(engine.New()), dataDir).Handler())
	c := client.New(ts.URL)
	started, err := c.StartCampaign(ctx, ids)
	if err != nil {
		t.Fatalf("campaign start: %v", err)
	}
	done := waitCampaignDone(t, c, started.ID)
	if len(done.Completed) != 2 || done.Outputs["table4"] == "" {
		t.Fatalf("campaign status = %+v", done)
	}
	firstTable4 := done.Outputs["table4"]
	ts.Close()

	// Re-posting the identical experiment set yields the same campaign
	// ID, and the restarted daemon serves it from checkpoints: the new
	// engine never executes.
	eng2 := engine.New()
	ts2 := httptest.NewServer(server.New(smallBench(eng2), dataDir).Handler())
	defer ts2.Close()
	c2 := client.New(ts2.URL)

	// Before any re-POST, the restarted daemon reconstructs the
	// campaign's status from its on-disk checkpoints instead of 404ing.
	fromDisk, err := c2.Campaign(ctx, started.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fromDisk.State != "done" || len(fromDisk.Completed) != 2 || fromDisk.Outputs["table4"] != firstTable4 {
		t.Fatalf("rehydrated campaign status = %+v", fromDisk)
	}

	restarted, err := c2.StartCampaign(ctx, ids)
	if err != nil {
		t.Fatalf("campaign restart: %v", err)
	}
	if restarted.ID != started.ID {
		t.Fatalf("campaign ID changed across restart: %s vs %s", restarted.ID, started.ID)
	}
	done = waitCampaignDone(t, c2, restarted.ID)
	if done.Outputs["table4"] != firstTable4 {
		t.Error("resumed campaign's table4 differs from the original run")
	}
	if st := eng2.Stats(); st.Executed != 0 {
		t.Errorf("resumed campaign executed %d unit tests, want 0", st.Executed)
	}
}

// TestColdStartWarmStore is the daemon-side acceptance contract: a
// cold-started cloudevald whose engine sits on a warm persistent store
// serves the Table 4 leaderboard byte-identical to core.Benchmark
// without executing a single unit test.
func TestColdStartWarmStore(t *testing.T) {
	ctx := context.Background()
	storePath := filepath.Join(t.TempDir(), "eval.store")

	// Warm the store with one full campaign in a "previous process".
	st, err := store.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	warmBench := smallBench(engine.New(engine.WithStore(st)))
	want := warmBench.Table4()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold start: fresh store handle, fresh engine, fresh benchmark,
	// fresh server.
	st2, err := store.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	eng := engine.New(engine.WithStore(st2))
	c := newTestClient(t, smallBench(eng))

	got, err := c.Leaderboard(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("cold-start leaderboard differs from warm benchmark's Table 4:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 0 {
		t.Errorf("cold-start daemon executed %d unit tests, want 0", stats.Executed)
	}
	if stats.StoreHits == 0 {
		t.Error("cold-start daemon recorded no store hits")
	}
}

// TestStatsExposeGenerationCounters verifies /v1/stats carries the
// inference-side counters: provider name, live generations, generation
// cache tiers and metered token usage.
func TestStatsExposeGenerationCounters(t *testing.T) {
	ctx := context.Background()
	eng := engine.New()
	bench := smallBench(eng)
	c := newTestClient(t, bench)

	if _, err := c.Leaderboard(ctx); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Provider != "sim" {
		t.Errorf("provider = %q, want sim", stats.Provider)
	}
	if stats.Generated == 0 {
		t.Error("leaderboard campaign reported zero generations")
	}
	if stats.PromptTokens == 0 || stats.CompletionTokens == 0 {
		t.Errorf("no token usage metered: %+v", stats)
	}
}

// TestStatsExposeStoreShards pins the store block of GET /v1/stats: a
// store-backed daemon surfaces shard count, per-shard record counts
// and the aggregate group-commit batching ratio, with the exact JSON
// key names the dashboards and benchguard consume; a store-less daemon
// omits the block entirely.
func TestStatsExposeStoreShards(t *testing.T) {
	ctx := context.Background()
	st, err := store.Open(filepath.Join(t.TempDir(), "eval.store"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	bench := smallBench(engine.New(engine.WithStore(st)))
	ts := httptest.NewServer(server.NewWithConfig(bench, t.TempDir(), server.Config{Store: st}).Handler())
	t.Cleanup(ts.Close)
	c := client.New(ts.URL)

	if _, err := c.Leaderboard(ctx); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Store == nil {
		t.Fatal("store-backed daemon omitted the store stats block")
	}
	ss := stats.Store
	if ss.Shards < 2 || ss.Shards&(ss.Shards-1) != 0 {
		t.Errorf("shards = %d, want a power of two >= 2", ss.Shards)
	}
	if len(ss.PerShard) != ss.Shards {
		t.Errorf("per_shard has %d entries, want %d", len(ss.PerShard), ss.Shards)
	}
	if ss.Records == 0 || ss.Appended == 0 || ss.Flushes == 0 {
		t.Errorf("campaign left empty store counters: %+v", ss)
	}
	if ss.FramesPerFlush <= 0 {
		t.Errorf("frames_per_flush = %v, want > 0", ss.FramesPerFlush)
	}
	var recs int
	var appended, flushes int64
	for _, sh := range ss.PerShard {
		recs += sh.Records
		appended += sh.Appended
		flushes += sh.Flushes
	}
	if recs != ss.Records || appended != ss.Appended || flushes != ss.Flushes {
		t.Errorf("per-shard sums %d/%d/%d disagree with aggregates %d/%d/%d",
			recs, appended, flushes, ss.Records, ss.Appended, ss.Flushes)
	}

	// Pin the wire shape: exact key names, per_shard as an array of
	// objects carrying the four counters.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	var storeBlock map[string]json.RawMessage
	if err := json.Unmarshal(raw["store"], &storeBlock); err != nil {
		t.Fatalf("store block: %v", err)
	}
	for _, key := range []string{"shards", "records", "generations", "appended", "flushes", "frames_per_flush", "per_shard", "resident_bytes", "hot_cache", "last_open"} {
		if _, ok := storeBlock[key]; !ok {
			t.Errorf("store block missing key %q", key)
		}
	}
	var hotCache map[string]json.RawMessage
	if err := json.Unmarshal(storeBlock["hot_cache"], &hotCache); err != nil {
		t.Fatalf("hot_cache block: %v", err)
	}
	for _, key := range []string{"capacity_bytes", "bytes", "entries", "hits", "misses"} {
		if _, ok := hotCache[key]; !ok {
			t.Errorf("hot_cache block missing key %q", key)
		}
	}
	var lastOpen map[string]json.RawMessage
	if err := json.Unmarshal(storeBlock["last_open"], &lastOpen); err != nil {
		t.Fatalf("last_open block: %v", err)
	}
	for _, key := range []string{"snapshot_shards", "snapshot_frames", "scanned_frames", "duration_ms"} {
		if _, ok := lastOpen[key]; !ok {
			t.Errorf("last_open block missing key %q", key)
		}
	}

	// The typed client decodes the out-of-core economics: a campaign's
	// records are resident as index + cache, never as raw payload maps.
	if ss.ResidentBytes <= 0 {
		t.Errorf("resident_bytes = %d, want > 0 on a populated store", ss.ResidentBytes)
	}
	if ss.HotCache.CapacityBytes <= 0 {
		t.Errorf("hot_cache.capacity_bytes = %d, want > 0", ss.HotCache.CapacityBytes)
	}
	if ss.HotCache.Entries == 0 && ss.HotCache.Misses == 0 {
		t.Errorf("hot cache untouched by a store-backed campaign: %+v", ss.HotCache)
	}
	var perShard []map[string]json.RawMessage
	if err := json.Unmarshal(storeBlock["per_shard"], &perShard); err != nil {
		t.Fatalf("per_shard: %v", err)
	}
	for _, key := range []string{"records", "generations", "appended", "flushes"} {
		if _, ok := perShard[0][key]; !ok {
			t.Errorf("per_shard entries missing key %q", key)
		}
	}

	// A store-less daemon omits the block — single-tenant wire contract
	// stays byte-compatible.
	plain := newTestClient(t, smallBench(engine.New()))
	pstats, err := plain.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pstats.Store != nil {
		t.Errorf("store-less daemon served a store block: %+v", pstats.Store)
	}
}

// TestColdStartWarmGenerationStore extends the warm-store contract to
// the generation side: a cold-started daemon whose dispatcher sits on
// a store warmed by a previous process serves the leaderboard with
// zero live generations.
func TestColdStartWarmGenerationStore(t *testing.T) {
	ctx := context.Background()
	storePath := filepath.Join(t.TempDir(), "eval.store")
	originals := dataset.Generate()[:10]
	models := llm.Models[:3]

	st, err := store.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	warmDisp := inference.NewDispatcher(inference.NewSim(models), inference.WithGenStore(st))
	warmBench := core.NewCustomVia(engine.New(engine.WithStore(st)), warmDisp, originals, models)
	want := warmBench.Table4()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	coldDisp := inference.NewDispatcher(inference.NewSim(models), inference.WithGenStore(st2))
	bench := core.NewCustomVia(engine.New(engine.WithStore(st2)), coldDisp, originals, models)
	c := newTestClient(t, bench)

	if got, err := c.Leaderboard(ctx); err != nil || got != want {
		t.Errorf("cold-start leaderboard differs from the warm campaign (err %v)", err)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Generated != 0 {
		t.Errorf("cold-start daemon generated %d live responses, want 0", stats.Generated)
	}
	if stats.GenStoreHits == 0 {
		t.Error("cold-start daemon recorded no generation store hits")
	}
}

// failingProvider errors on every generation.
type failingProvider struct{}

func (failingProvider) Name() string { return "failing" }
func (failingProvider) Generate(ctx context.Context, req inference.Request) (inference.Response, error) {
	return inference.Response{}, fmt.Errorf("backend down")
}
func (failingProvider) Close() error { return nil }

// TestGenerationFailuresFailExperiments pins the daemon's error
// surfacing: a campaign whose provider fails must produce a 500 with
// the generation-failure count — never a silently zero-scored
// leaderboard cached as complete.
func TestGenerationFailuresFailExperiments(t *testing.T) {
	ctx := context.Background()
	disp := inference.NewDispatcher(failingProvider{})
	bench := core.NewCustomVia(engine.New(), disp, dataset.Generate()[:4], llm.Models[:2])
	c := newTestClient(t, bench)

	_, err := c.Leaderboard(ctx)
	ae := apiErr(t, err, 500, "internal")
	if !strings.Contains(ae.Message, "generation failures") {
		t.Errorf("error does not name the cause: %s", ae.Message)
	}
	// The model-generation eval path reports the failure directly.
	_, err = c.Eval(ctx, client.EvalRequest{Problem: bench.Problems[0].ID, Model: bench.Models[0].Name})
	apiErr(t, err, 502, "bad_gateway")
}
