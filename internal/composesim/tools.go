package composesim

import (
	"fmt"
	"strconv"
	"strings"

	"cloudeval/internal/shell"
	"cloudeval/internal/yamlx"
)

// docker implements the `docker compose` verbs the benchmark's compose
// unit tests use (config, up, ps, logs, down, version) plus the classic
// `docker ps` form, all against the simulated project.
func (e *Env) docker(in *shell.Interp, io *shell.IO, args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(io.Err, "docker: missing command")
		return 1
	}
	if args[0] != "compose" {
		switch args[0] {
		case "ps":
			return e.ps(io)
		case "version", "info", "images", "pull":
			fmt.Fprintf(io.Out, "docker %s: ok\n", args[0])
			return 0
		default:
			fmt.Fprintf(io.Err, "docker: unknown command %q\n", args[0])
			return 1
		}
	}

	// docker compose [-f FILE] [-p NAME] VERB [args...]. The global
	// -f/--file and -p flags only exist before the verb, exactly like
	// real compose: after the verb, -f means the verb's own flag
	// (`logs -f` is --follow) and must pass through untouched.
	file := "compose.yaml"
	var verb string
	var rest []string
	for i := 1; i < len(args); i++ {
		a := args[i]
		switch {
		case verb != "":
			rest = append(rest, a)
		case (a == "-f" || a == "--file") && i+1 < len(args):
			file = args[i+1]
			i++
		case (a == "-p" || a == "--project-name") && i+1 < len(args):
			e.Project.Name = args[i+1]
			i++
		case !strings.HasPrefix(a, "-"):
			verb = a
		}
	}
	if verb == "" {
		fmt.Fprintln(io.Err, "docker compose: missing subcommand")
		return 1
	}

	load := func() (string, bool) {
		src, ok := in.FS[file]
		if !ok {
			fmt.Fprintf(io.Err, "open %s: no such file or directory\n", file)
			return "", false
		}
		if err := e.Project.Load(src); err != nil {
			fmt.Fprintf(io.Err, "docker compose: %s: %v\n", file, err)
			return "", false
		}
		return src, true
	}

	switch verb {
	case "config":
		src, ok := load()
		if !ok {
			return 1
		}
		if !hasFlag(rest, "-q", "--quiet") {
			docs, err := yamlx.ParseAllCached([]byte(src))
			if err == nil {
				io.Out.Write(yamlx.MarshalAll(docs))
			}
		}
		return 0
	case "up":
		if _, ok := load(); !ok {
			return 1
		}
		for _, c := range e.Project.Up() {
			fmt.Fprintf(io.Out, " Container %s  Started\n", c.Name)
		}
		return 0
	case "ps":
		return e.ps(io)
	case "logs":
		// Skip the verb's own flags (-f/--follow, --tail, ...); the
		// first positional argument names the service.
		var service string
		for _, a := range rest {
			if !strings.HasPrefix(a, "-") {
				service = a
				break
			}
		}
		var targets []*Container
		if service != "" {
			c, ok := e.Project.ContainerFor(service)
			if !ok {
				fmt.Fprintf(io.Err, "no such service: %s\n", service)
				return 1
			}
			targets = []*Container{c}
		} else {
			targets = e.Project.Running()
		}
		for _, c := range targets {
			io.Out.WriteString(e.Project.Logs(c))
		}
		return 0
	case "down":
		for _, c := range e.Project.Running() {
			fmt.Fprintf(io.Out, " Container %s  Removed\n", c.Name)
		}
		e.Project.Down()
		return 0
	case "version":
		fmt.Fprintln(io.Out, "Docker Compose version v2.24.0 (composesim)")
		return 0
	default:
		fmt.Fprintf(io.Err, "docker compose: unknown subcommand %q\n", verb)
		return 1
	}
}

func hasFlag(args []string, names ...string) bool {
	for _, a := range args {
		for _, n := range names {
			if a == n {
				return true
			}
		}
	}
	return false
}

// ps renders the `docker compose ps` table for running containers.
func (e *Env) ps(io *shell.IO) int {
	fmt.Fprintf(io.Out, "%-24s %-24s %-16s %-12s %s\n", "NAME", "IMAGE", "SERVICE", "STATUS", "PORTS")
	for _, c := range e.Project.Running() {
		var ports []string
		for _, pm := range c.Service.Ports {
			if pm.Host == 0 {
				ports = append(ports, fmt.Sprintf("%d/tcp", pm.Container))
				continue
			}
			ports = append(ports, fmt.Sprintf("0.0.0.0:%d->%d/tcp", pm.Host, pm.Container))
		}
		fmt.Fprintf(io.Out, "%-24s %-24s %-16s %-12s %s\n",
			c.Name, c.Service.Image, c.Service.Name, "Up", strings.Join(ports, ", "))
	}
	return 0
}

// curl answers HTTP probes against the project's published ports and
// service network, supporting the same flag shapes k8scmd's curl does.
func (e *Env) curl(in *shell.Interp, io *shell.IO, args []string) int {
	var url, outFile, writeFmt string
	silent := false
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-s" || a == "--silent":
			silent = true
		case a == "-o" && i+1 < len(args):
			outFile = args[i+1]
			i++
		case a == "-w" && i+1 < len(args):
			writeFmt = args[i+1]
			i++
		case (a == "-m" || a == "--max-time") && i+1 < len(args):
			i++
		case strings.HasPrefix(a, "-"):
			// Accepted and ignored.
		default:
			url = a
		}
	}
	if url == "" {
		fmt.Fprintln(io.Err, "curl: no URL specified")
		return 2
	}
	host, port := splitHostPort(url)
	code, body, ok := e.Project.HTTPProbe(host, port)
	if !ok {
		if !silent {
			fmt.Fprintf(io.Err, "curl: (7) Failed to connect to %s port %d: Connection refused\n", host, port)
		}
		if writeFmt != "" {
			io.Out.WriteString(strings.ReplaceAll(writeFmt, "%{http_code}", "000"))
		}
		return 7
	}
	if outFile != "" {
		if outFile != "/dev/null" {
			in.FS[outFile] = body
		}
	} else {
		io.Out.WriteString(body)
		if body != "" && !strings.HasSuffix(body, "\n") {
			io.Out.WriteString("\n")
		}
	}
	if writeFmt != "" {
		io.Out.WriteString(strings.ReplaceAll(writeFmt, "%{http_code}", fmt.Sprint(code)))
	}
	return 0
}

func splitHostPort(url string) (host string, port int) {
	rest := url
	if i := strings.Index(rest, "://"); i >= 0 {
		rest = rest[i+3:]
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	host = rest
	port = 80
	if i := strings.LastIndexByte(rest, ':'); i >= 0 {
		host = rest[:i]
		if p, err := strconv.Atoi(rest[i+1:]); err == nil {
			port = p
		}
	}
	return host, port
}
