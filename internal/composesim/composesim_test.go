package composesim

import (
	"strings"
	"testing"
)

const sampleCompose = `services:
  web:
    image: nginx:1.25
    restart: always
    ports:
    - "8080:80"
    depends_on:
    - cache
    environment:
      CACHE_URL: redis://cache:6379
  cache:
    image: redis:7
`

func TestLoadParsesServices(t *testing.T) {
	p := NewProject()
	if err := p.Load(sampleCompose); err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(p.Services) != 2 {
		t.Fatalf("services = %d", len(p.Services))
	}
	// Dependency order: cache starts before web.
	if p.Services[0].Name != "cache" || p.Services[1].Name != "web" {
		t.Errorf("start order = %s, %s", p.Services[0].Name, p.Services[1].Name)
	}
	web := p.Services[1]
	if web.Image != "nginx:1.25" || web.Restart != "always" {
		t.Errorf("web parsed wrong: %+v", web)
	}
	if len(web.Ports) != 1 || web.Ports[0] != (PortMapping{Host: 8080, Container: 80}) {
		t.Errorf("ports = %+v", web.Ports)
	}
	if web.Environment["CACHE_URL"] != "redis://cache:6379" {
		t.Errorf("environment = %+v", web.Environment)
	}
}

func TestParsePortForms(t *testing.T) {
	valid := map[string]PortMapping{
		"8080:80":           {Host: 8080, Container: 80},
		"8080:80/tcp":       {Host: 8080, Container: 80},
		"53:53/udp":         {Host: 53, Container: 53},
		"127.0.0.1:8080:80": {Host: 8080, Container: 80},
		"80":                {Host: 0, Container: 80},
		" 8080:80 ":         {Host: 8080, Container: 80},
	}
	for spec, want := range valid {
		got, err := parsePort(spec)
		if err != nil || got != want {
			t.Errorf("parsePort(%q) = %+v, %v; want %+v", spec, got, err, want)
		}
	}
	for _, spec := range []string{"eighty:80", "8080:80/icmp", "0:80", "8080:", "a:b:c:d", "70000"} {
		if _, err := parsePort(spec); err == nil {
			t.Errorf("parsePort(%q) accepted invalid spec", spec)
		}
	}
}

// TestContainerOnlyPortNotPublished: the "80" short form publishes on
// an ephemeral host port in real Compose, so localhost probes on the
// container port must fail while service-DNS probes succeed — an
// answer that skips the host mapping must not pass a published-port
// unit test.
func TestContainerOnlyPortNotPublished(t *testing.T) {
	p := NewProject()
	if err := p.Load("services:\n  web:\n    image: nginx:latest\n    ports:\n    - \"80\"\n"); err != nil {
		t.Fatal(err)
	}
	p.Up()
	if _, _, ok := p.HTTPProbe("localhost", 80); ok {
		t.Error("container-only port answered on localhost")
	}
	if code, _, ok := p.HTTPProbe("web", 80); !ok || code != 200 {
		t.Error("container-only port unreachable over the project network")
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"no-services":    "volumes:\n  data: {}\n",
		"empty-services": "services: {}\n",
		"no-image":       "services:\n  web:\n    restart: always\n",
		"bad-port":       "services:\n  web:\n    image: nginx\n    ports:\n    - \"eighty:80\"\n",
		"unknown-dep":    "services:\n  web:\n    image: nginx\n    depends_on:\n    - ghost\n",
		"dep-cycle":      "services:\n  a:\n    image: nginx\n    depends_on:\n    - b\n  b:\n    image: nginx\n    depends_on:\n    - a\n",
		"not-yaml":       "services: [unterminated\n",
	}
	for name, src := range cases {
		if err := NewProject().Load(src); err == nil {
			t.Errorf("%s: load accepted invalid file", name)
		}
	}
}

func TestUpProbeAndVirtualTime(t *testing.T) {
	p := NewProject()
	if err := p.Load(sampleCompose); err != nil {
		t.Fatal(err)
	}
	start := p.Now()
	p.Up()
	if got := p.Now().Sub(start); got != 2*StartDelay {
		t.Errorf("up consumed %v virtual time, want %v", got, 2*StartDelay)
	}
	if code, body, ok := p.HTTPProbe("localhost", 8080); !ok || code != 200 || !strings.Contains(body, "web ok") {
		t.Errorf("published port probe = %d %q %v", code, body, ok)
	}
	// Service-name DNS resolves container ports.
	if code, _, ok := p.HTTPProbe("cache", 6379); ok || code != 0 {
		t.Error("cache publishes no ports and declares none; probe must fail")
	}
	if _, _, ok := p.HTTPProbe("localhost", 9999); ok {
		t.Error("unpublished port answered")
	}
	p.Down()
	if _, _, ok := p.HTTPProbe("localhost", 8080); ok {
		t.Error("probe answered after down")
	}
}

func TestEnvScriptEndToEnd(t *testing.T) {
	e := NewEnv()
	e.Shell.FS["labeled_code.yaml"] = sampleCompose
	res, err := e.Shell.Run(`docker compose -f labeled_code.yaml config -q || exit 1
docker compose -f labeled_code.yaml up -d
docker compose ps | grep web | grep -q Up || exit 1
docker compose logs cache | grep -q 'Ready to accept connections' || exit 1
status=$(curl -s -o /dev/null -w "%{http_code}" http://localhost:8080/)
echo status=$status`)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.ExitCode != 0 || !strings.Contains(res.Stdout, "status=200") {
		t.Fatalf("script failed (exit %d):\n%s%s", res.ExitCode, res.Stdout, res.Stderr)
	}
}

// TestLogsFollowFlag: `-f` after the verb is the verb's own flag
// (`logs --follow`), never the global --file — the service argument
// must still select a single service's logs.
func TestLogsFollowFlag(t *testing.T) {
	e := NewEnv()
	e.Shell.FS["labeled_code.yaml"] = sampleCompose
	if _, err := e.Shell.Run("docker compose -f labeled_code.yaml up -d"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Shell.Run("docker compose logs -f cache")
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 || !strings.Contains(res.Stdout, "Ready to accept connections") {
		t.Fatalf("logs -f cache failed (exit %d):\n%s%s", res.ExitCode, res.Stdout, res.Stderr)
	}
	if strings.Contains(res.Stdout, "app-web-1") {
		t.Errorf("logs -f cache leaked other services' logs:\n%s", res.Stdout)
	}
}

func TestEnvConfigEchoesCanonicalYAML(t *testing.T) {
	e := NewEnv()
	e.Shell.FS["labeled_code.yaml"] = sampleCompose
	res, err := e.Shell.Run("docker compose -f labeled_code.yaml config")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"image: nginx:1.25", "restart: always", "8080:80", "CACHE_URL: redis://cache:6379"} {
		if !strings.Contains(res.Stdout, want) {
			t.Errorf("config output missing %q:\n%s", want, res.Stdout)
		}
	}
}

func TestEnvResetIsPristine(t *testing.T) {
	e := NewEnv()
	e.Shell.FS["labeled_code.yaml"] = sampleCompose
	if _, err := e.Shell.Run("docker compose -f labeled_code.yaml up -d\nexport LEAK=1"); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	fresh := NewEnv()
	if !e.Now().Equal(fresh.Now()) {
		t.Errorf("virtual clock survived reset: %v vs %v", e.Now(), fresh.Now())
	}
	if len(e.Shell.FS) != 0 || len(e.Shell.Env) != 0 {
		t.Error("shell state survived reset")
	}
	if _, _, ok := e.Project.HTTPProbe("localhost", 8080); ok {
		t.Error("containers survived reset")
	}
}
