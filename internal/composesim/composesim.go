// Package composesim implements an in-memory Docker Compose project
// that stands in for `docker compose` in the CloudEval-YAML evaluation
// platform, the way kubesim stands in for minikube.
//
// The simulator parses a compose file (top-level services mapping with
// image, ports, environment, command, depends_on, restart, volumes),
// starts containers in dependency order against a virtual clock, and
// answers the probes the benchmark's unit tests make: `docker compose
// config/up/ps/logs/down`, plus curl against published host ports and
// service-name DNS. Like kubesim, state is a function of virtual time
// and fully deterministic.
package composesim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"cloudeval/internal/shell"
	"cloudeval/internal/yamlx"
)

// StartDelay is the virtual time one container takes to start, charged
// against the project clock by `up` (compose pulls and starts are
// seconds-scale in the real world; here they cost nothing in real
// time).
const StartDelay = 2 * time.Second

// epoch is the fixed virtual time every fresh (or reset) project
// starts at, so evaluations are deterministic.
var epoch = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

// Service is one parsed compose service.
type Service struct {
	Name        string
	Image       string
	Command     string
	Restart     string
	DependsOn   []string
	Environment map[string]string
	// Ports are the published "host:container" mappings.
	Ports []PortMapping
	// Volumes are the raw volume strings.
	Volumes []string
}

// PortMapping is one port entry. Host 0 means the port is not
// published to the host (the container-port-only short form, which
// real Compose binds to an ephemeral host port): it is reachable over
// the project network by service name, never via localhost.
type PortMapping struct {
	Host      int
	Container int
}

// Container is one running instance of a service.
type Container struct {
	Name      string // <project>-<service>-1
	Service   *Service
	StartedAt time.Time
}

// Project is the simulated compose project: parsed services plus the
// containers `up` created, on a virtual clock.
type Project struct {
	Name       string
	Services   []*Service // dependency order (topological, then by name)
	containers map[string]*Container
	now        time.Time
}

// NewProject returns an empty project named "app".
func NewProject() *Project {
	return &Project{Name: "app", containers: make(map[string]*Container), now: epoch}
}

// Reset returns the project to its pristine state while retaining map
// capacity, so environment pools can recycle it.
func (p *Project) Reset() {
	p.Name = "app"
	p.Services = nil
	clear(p.containers)
	p.now = epoch
}

// Now returns the project's virtual time.
func (p *Project) Now() time.Time { return p.now }

// AdvanceTime moves the virtual clock forward.
func (p *Project) AdvanceTime(d time.Duration) {
	if d > 0 {
		p.now = p.now.Add(d)
	}
}

// Load parses a compose file and installs its services (without
// starting anything). It validates the schema the benchmark's corpus
// relies on: a top-level `services` mapping of service maps, each with
// an image, and ports in "host:container" form.
func (p *Project) Load(src string) error {
	docs, err := yamlx.ParseAllCached([]byte(src))
	if err != nil {
		return fmt.Errorf("parsing compose file: %v", err)
	}
	var root *yamlx.Node
	for _, d := range docs {
		if d != nil && d.Kind != yamlx.NullKind {
			if root != nil {
				return fmt.Errorf("compose file must be a single document")
			}
			root = d
		}
	}
	if root == nil || root.Kind != yamlx.MapKind {
		return fmt.Errorf("top-level object must be a mapping")
	}
	svcs := root.Get("services")
	if svcs == nil || svcs.Kind != yamlx.MapKind || len(svcs.Entries) == 0 {
		return fmt.Errorf("missing or empty `services` mapping")
	}
	if n := root.Get("name"); n != nil && n.ScalarString() != "" {
		p.Name = n.ScalarString()
	}
	var parsed []*Service
	for _, e := range svcs.Entries {
		s, err := parseService(e.Key, e.Value)
		if err != nil {
			return err
		}
		parsed = append(parsed, s)
	}
	ordered, err := orderServices(parsed)
	if err != nil {
		return err
	}
	p.Services = ordered
	return nil
}

func parseService(name string, n *yamlx.Node) (*Service, error) {
	if n == nil || n.Kind != yamlx.MapKind {
		return nil, fmt.Errorf("service %q must be a mapping", name)
	}
	s := &Service{Name: name, Environment: map[string]string{}}
	if img := n.Get("image"); img != nil && img.IsScalar() {
		s.Image = img.ScalarString()
	}
	if s.Image == "" {
		return nil, fmt.Errorf("service %q has no image", name)
	}
	if r := n.Get("restart"); r != nil {
		s.Restart = r.ScalarString()
	}
	if c := n.Get("command"); c != nil {
		if c.Kind == yamlx.SeqKind {
			var parts []string
			for _, it := range c.Items {
				parts = append(parts, it.ScalarString())
			}
			s.Command = strings.Join(parts, " ")
		} else {
			s.Command = c.ScalarString()
		}
	}
	if d := n.Get("depends_on"); d != nil && d.Kind == yamlx.SeqKind {
		for _, it := range d.Items {
			s.DependsOn = append(s.DependsOn, it.ScalarString())
		}
	}
	if env := n.Get("environment"); env != nil {
		switch env.Kind {
		case yamlx.MapKind:
			for _, e := range env.Entries {
				s.Environment[e.Key] = e.Value.ScalarString()
			}
		case yamlx.SeqKind:
			for _, it := range env.Items {
				kv := it.ScalarString()
				if k, v, ok := strings.Cut(kv, "="); ok {
					s.Environment[k] = v
				}
			}
		}
	}
	if ports := n.Get("ports"); ports != nil && ports.Kind == yamlx.SeqKind {
		for _, it := range ports.Items {
			pm, err := parsePort(it.ScalarString())
			if err != nil {
				return nil, fmt.Errorf("service %q: %v", name, err)
			}
			s.Ports = append(s.Ports, pm)
		}
	}
	if vols := n.Get("volumes"); vols != nil && vols.Kind == yamlx.SeqKind {
		for _, it := range vols.Items {
			s.Volumes = append(s.Volumes, it.ScalarString())
		}
	}
	return s, nil
}

// parsePort parses the Compose short port syntax:
// [ip:]host:container[/protocol]. A bare container port ("80") is
// valid Compose but publishes on an ephemeral host port, modeled here
// as unpublished (Host 0).
func parsePort(spec string) (PortMapping, error) {
	s := strings.TrimSpace(spec)
	if i := strings.IndexByte(s, '/'); i >= 0 {
		proto := s[i+1:]
		if proto != "tcp" && proto != "udp" {
			return PortMapping{}, fmt.Errorf("invalid port protocol in %q", spec)
		}
		s = s[:i]
	}
	port := func(p string) (int, bool) {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		return n, err == nil && n > 0 && n < 65536
	}
	parts := strings.Split(s, ":")
	switch len(parts) {
	case 1:
		c, ok := port(parts[0])
		if !ok {
			return PortMapping{}, fmt.Errorf("invalid port mapping %q", spec)
		}
		return PortMapping{Container: c}, nil
	case 2:
		h, ok1 := port(parts[0])
		c, ok2 := port(parts[1])
		if !ok1 || !ok2 {
			return PortMapping{}, fmt.Errorf("invalid port mapping %q", spec)
		}
		return PortMapping{Host: h, Container: c}, nil
	case 3:
		// ip:host:container — the bind address is accepted and ignored
		// (the simulated host has one interface).
		h, ok1 := port(parts[1])
		c, ok2 := port(parts[2])
		if !ok1 || !ok2 {
			return PortMapping{}, fmt.Errorf("invalid port mapping %q", spec)
		}
		return PortMapping{Host: h, Container: c}, nil
	}
	return PortMapping{}, fmt.Errorf("invalid port mapping %q", spec)
}

// orderServices sorts services into a deterministic start order:
// dependencies before dependents, ties broken by name.
func orderServices(in []*Service) ([]*Service, error) {
	byName := make(map[string]*Service, len(in))
	for _, s := range in {
		byName[s.Name] = s
	}
	names := make([]string, 0, len(in))
	for _, s := range in {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	var out []*Service
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(name string) error
	visit = func(name string) error {
		s, ok := byName[name]
		if !ok {
			return fmt.Errorf("depends_on references undefined service %q", name)
		}
		switch state[name] {
		case 1:
			return fmt.Errorf("dependency cycle through service %q", name)
		case 2:
			return nil
		}
		state[name] = 1
		deps := append([]string(nil), s.DependsOn...)
		sort.Strings(deps)
		for _, d := range deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[name] = 2
		out = append(out, s)
		return nil
	}
	for _, n := range names {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Up starts every loaded service in dependency order, advancing the
// virtual clock StartDelay per container.
func (p *Project) Up() []*Container {
	var started []*Container
	for _, s := range p.Services {
		p.AdvanceTime(StartDelay)
		c := &Container{
			Name:      fmt.Sprintf("%s-%s-1", p.Name, s.Name),
			Service:   s,
			StartedAt: p.now,
		}
		p.containers[s.Name] = c
		started = append(started, c)
	}
	return started
}

// Down removes every container.
func (p *Project) Down() { clear(p.containers) }

// Running lists containers in service start order.
func (p *Project) Running() []*Container {
	var out []*Container
	for _, s := range p.Services {
		if c, ok := p.containers[s.Name]; ok {
			out = append(out, c)
		}
	}
	return out
}

// ContainerFor returns the running container of a service.
func (p *Project) ContainerFor(service string) (*Container, bool) {
	c, ok := p.containers[service]
	return c, ok
}

// HTTPProbe answers a GET against the project: localhost targets
// resolve through published host ports; service-name targets resolve
// through container ports, like a client attached to the project
// network.
func (p *Project) HTTPProbe(host string, port int) (code int, body string, ok bool) {
	if host == "localhost" || host == "127.0.0.1" || host == "0.0.0.0" {
		for _, c := range p.Running() {
			for _, pm := range c.Service.Ports {
				if pm.Host != 0 && pm.Host == port {
					return 200, fmt.Sprintf("%s ok", c.Service.Name), true
				}
			}
		}
		return 0, "", false
	}
	if c, ok := p.containers[host]; ok {
		for _, pm := range c.Service.Ports {
			if pm.Container == port {
				return 200, fmt.Sprintf("%s ok", c.Service.Name), true
			}
		}
	}
	return 0, "", false
}

// Logs renders deterministic startup logs for one container, shaped by
// its image the way unit tests grep for them.
func (p *Project) Logs(c *Container) string {
	var b strings.Builder
	prefix := c.Name
	emit := func(line string) { fmt.Fprintf(&b, "%s  | %s\n", prefix, line) }
	img := c.Service.Image
	switch {
	case strings.HasPrefix(img, "redis"):
		emit("* monotonic clock: POSIX clock_gettime")
		emit("* Ready to accept connections tcp")
	case strings.HasPrefix(img, "nginx"):
		emit("/docker-entrypoint.sh: Configuration complete; ready for start up")
		emit("start worker processes")
	case strings.HasPrefix(img, "httpd"):
		emit("AH00094: Command line: 'httpd -D FOREGROUND'")
		emit("resuming normal operations")
	case strings.HasPrefix(img, "memcached"):
		emit("server listening")
	case strings.HasPrefix(img, "postgres"), strings.HasPrefix(img, "mysql"), strings.HasPrefix(img, "mariadb"):
		emit("database system is ready to accept connections")
	default:
		emit(fmt.Sprintf("%s started", c.Service.Name))
	}
	if c.Service.Command != "" {
		emit(fmt.Sprintf("exec: %s", c.Service.Command))
	}
	return b.String()
}

// Env is the execution environment for one compose-family unit test: a
// fresh project and the shell interpreter wired to it. It satisfies
// scenario.Env.
type Env struct {
	Project *Project
	Shell   *shell.Interp
}

// NewEnv builds a fresh environment with the compose tools registered.
func NewEnv() *Env {
	e := &Env{Project: NewProject(), Shell: shell.New()}
	e.Shell.AdvanceClock = e.Project.AdvanceTime
	e.Shell.Builtins["docker"] = e.docker
	e.Shell.Builtins["curl"] = e.curl
	return e
}

// Interp returns the environment's shell.
func (e *Env) Interp() *shell.Interp { return e.Shell }

// Now returns the environment's virtual time.
func (e *Env) Now() time.Time { return e.Project.Now() }

// Reset wipes the environment for pool recycling; builtin bindings
// survive, mirroring k8scmd.Env.Reset.
func (e *Env) Reset() {
	e.Project.Reset()
	e.Shell.Reset()
}
