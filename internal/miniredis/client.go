package miniredis

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Client is a synchronous RESP2 client. It is safe for concurrent use;
// commands serialize over one connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a Redis-compatible server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends a command and returns the decoded reply: string for simple/
// bulk replies, int for integers, []string for arrays, nil for null.
func (c *Client) Do(args ...string) (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "*%d\r\n", len(args))
	for _, a := range args {
		fmt.Fprintf(&b, "$%d\r\n%s\r\n", len(a), a)
	}
	if _, err := c.w.WriteString(b.String()); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	return c.readReply()
}

func (c *Client) readReply() (any, error) {
	line, err := readLine(c.r)
	if err != nil {
		return nil, err
	}
	if line == "" {
		return nil, fmt.Errorf("miniredis: empty reply")
	}
	switch line[0] {
	case '+':
		return line[1:], nil
	case '-':
		return nil, fmt.Errorf("miniredis: %s", line[1:])
	case ':':
		return strconv.Atoi(line[1:])
	case '$':
		n, err := strconv.Atoi(line[1:])
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, nil
		}
		buf := make([]byte, n+2)
		if _, err := ioReadFull(c.r, buf); err != nil {
			return nil, err
		}
		return string(buf[:n]), nil
	case '*':
		n, err := strconv.Atoi(line[1:])
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, nil
		}
		out := make([]string, 0, n)
		for i := 0; i < n; i++ {
			item, err := c.readReply()
			if err != nil {
				return nil, err
			}
			s, _ := item.(string)
			out = append(out, s)
		}
		return out, nil
	}
	return nil, fmt.Errorf("miniredis: unexpected reply %q", line)
}

// Convenience wrappers used by the evaluation cluster.

// Ping checks liveness.
func (c *Client) Ping() error {
	v, err := c.Do("PING")
	if err != nil {
		return err
	}
	if v != "PONG" {
		return fmt.Errorf("miniredis: unexpected ping reply %v", v)
	}
	return nil
}

// Set stores a string value.
func (c *Client) Set(key, value string) error {
	_, err := c.Do("SET", key, value)
	return err
}

// Get fetches a string value; ok is false when the key is absent.
func (c *Client) Get(key string) (string, bool, error) {
	v, err := c.Do("GET", key)
	if err != nil {
		return "", false, err
	}
	if v == nil {
		return "", false, nil
	}
	return v.(string), true, nil
}

// LPush prepends values to a list.
func (c *Client) LPush(key string, values ...string) error {
	_, err := c.Do(append([]string{"LPUSH", key}, values...)...)
	return err
}

// RPush appends values to a list.
func (c *Client) RPush(key string, values ...string) error {
	_, err := c.Do(append([]string{"RPUSH", key}, values...)...)
	return err
}

// BRPop blocks until a value is available or the timeout elapses; ok is
// false on timeout.
func (c *Client) BRPop(timeout time.Duration, keys ...string) (key, value string, ok bool, err error) {
	secs := fmt.Sprintf("%.3f", timeout.Seconds())
	v, err := c.Do(append(append([]string{"BRPOP"}, keys...), secs)...)
	if err != nil || v == nil {
		return "", "", false, err
	}
	pair := v.([]string)
	if len(pair) != 2 {
		return "", "", false, fmt.Errorf("miniredis: malformed brpop reply %v", pair)
	}
	return pair[0], pair[1], true, nil
}

// LLen returns a list's length.
func (c *Client) LLen(key string) (int, error) {
	v, err := c.Do("LLEN", key)
	if err != nil {
		return 0, err
	}
	return v.(int), nil
}

// HSet stores hash fields.
func (c *Client) HSet(key string, fieldValues ...string) error {
	_, err := c.Do(append([]string{"HSET", key}, fieldValues...)...)
	return err
}

// HGetAll fetches a hash as a map.
func (c *Client) HGetAll(key string) (map[string]string, error) {
	v, err := c.Do("HGETALL", key)
	if err != nil {
		return nil, err
	}
	flat, _ := v.([]string)
	out := make(map[string]string, len(flat)/2)
	for i := 0; i+1 < len(flat); i += 2 {
		out[flat[i]] = flat[i+1]
	}
	return out, nil
}

// Incr increments a counter.
func (c *Client) Incr(key string) (int, error) {
	v, err := c.Do("INCR", key)
	if err != nil {
		return 0, err
	}
	return v.(int), nil
}

// Keys lists keys matching a prefix pattern ("jobs:*").
func (c *Client) Keys(pattern string) ([]string, error) {
	v, err := c.Do("KEYS", pattern)
	if err != nil {
		return nil, err
	}
	out, _ := v.([]string)
	return out, nil
}
