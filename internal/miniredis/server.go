// Package miniredis implements the slice of Redis the evaluation
// platform's master node uses to "manage unit test contexts, inputs,
// and outputs" (§3.3): a RESP2 server and client over TCP supporting
// strings, counters, hashes, lists and blocking pops.
//
// It speaks the real wire protocol, so the evalcluster package's
// master/worker code has the same shape it would have against Redis.
package miniredis

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Server is a minimal Redis-compatible server.
type Server struct {
	mu      sync.Mutex
	strings map[string]string
	hashes  map[string]map[string]string
	lists   map[string][]string
	expiry  map[string]time.Time
	cond    *sync.Cond

	ln     net.Listener
	closed chan struct{}
}

// NewServer returns an unstarted server.
func NewServer() *Server {
	s := &Server{
		strings: make(map[string]string),
		hashes:  make(map[string]map[string]string),
		lists:   make(map[string][]string),
		expiry:  make(map[string]time.Time),
		closed:  make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Listen starts serving on addr ("127.0.0.1:0" for an ephemeral port)
// and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the server and wakes all blocked clients.
func (s *Server) Close() {
	select {
	case <-s.closed:
		return
	default:
	}
	close(s.closed)
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		args, err := readCommand(r)
		if err != nil {
			return
		}
		var reply string
		var rollback func()
		if len(args) == 0 {
			// e.g. the RESP empty array `*0`: dispatch's guard turns it
			// into an error reply rather than an args[0] panic here.
			reply = s.dispatch(args)
		} else if cmd := strings.ToUpper(args[0]); (cmd == "BRPOP" || cmd == "BLPOP") && r.Buffered() == 0 {
			reply, rollback = s.blockingPopConn(conn, cmd, args[1:])
			if reply == "" {
				return // client vanished while blocked; nothing was popped
			}
		} else {
			reply = s.dispatch(args)
		}
		if _, err := w.WriteString(reply); err != nil {
			if rollback != nil {
				rollback()
			}
			return
		}
		if err := w.Flush(); err != nil {
			if rollback != nil {
				rollback()
			}
			return
		}
	}
}

// blockingPopConn runs a blocking pop while watching conn for client
// death. Without the watch, a master that exits mid-BRPOP leaves a
// parked waiter that the next push is handed to: the element vanishes
// into a dead socket (the first write after a peer FIN reports
// success), silently starving the next campaign. The watcher blocks on
// a raw read — our clients are strictly request/response, so no bytes
// can legitimately arrive while a pop is pending — and an EOF marks
// the client gone before anything is popped for it. An empty reply
// means exactly that; the caller drops the connection.
func (s *Server) blockingPopConn(conn net.Conn, cmd string, args []string) (string, func()) {
	// Fast path: on a busy cluster the queue is rarely empty, and a pop
	// that can resolve immediately needs none of the watcher machinery.
	if len(args) >= 2 {
		if _, err := strconv.ParseFloat(args[len(args)-1], 64); err == nil {
			s.mu.Lock()
			reply, rollback := s.tryPopLocked(cmd, args[:len(args)-1])
			s.mu.Unlock()
			if reply != "" {
				return reply, rollback
			}
		}
	}
	gone := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		buf := make([]byte, 1)
		if _, err := conn.Read(buf); err != nil {
			// A timeout is the main loop reclaiming the connection
			// after the pop resolved; anything else is a dead client.
			if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
				close(gone)
				s.mu.Lock()
				s.cond.Broadcast()
				s.mu.Unlock()
			}
		}
	}()
	reply, rollback := s.cmdBlockingPopWatch(cmd, args, gone)
	conn.SetReadDeadline(time.Now())
	<-watchDone
	conn.SetReadDeadline(time.Time{})
	select {
	case <-gone:
		// The client died while (or right after) the pop resolved: put
		// any popped element back for a live waiter.
		if rollback != nil {
			rollback()
		}
		return "", nil
	default:
	}
	return reply, rollback
}

// readCommand parses one RESP array of bulk strings (also tolerating
// inline commands).
func readCommand(r *bufio.Reader) ([]string, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	if len(line) == 0 {
		return nil, fmt.Errorf("empty command")
	}
	if line[0] != '*' {
		return strings.Fields(line), nil
	}
	n, err := strconv.Atoi(line[1:])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("bad array header %q", line)
	}
	args := make([]string, 0, n)
	for i := 0; i < n; i++ {
		hdr, err := readLine(r)
		if err != nil {
			return nil, err
		}
		if len(hdr) == 0 || hdr[0] != '$' {
			return nil, fmt.Errorf("expected bulk string, got %q", hdr)
		}
		size, err := strconv.Atoi(hdr[1:])
		if err != nil || size < 0 {
			return nil, fmt.Errorf("bad bulk length %q", hdr)
		}
		buf := make([]byte, size+2)
		if _, err := ioReadFull(r, buf); err != nil {
			return nil, err
		}
		args = append(args, string(buf[:size]))
	}
	return args, nil
}

func ioReadFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// RESP reply encoders.
func simple(s string) string   { return "+" + s + "\r\n" }
func errReply(s string) string { return "-ERR " + s + "\r\n" }
func intReply(n int) string    { return ":" + strconv.Itoa(n) + "\r\n" }
func bulk(s string) string     { return "$" + strconv.Itoa(len(s)) + "\r\n" + s + "\r\n" }
func nilBulk() string          { return "$-1\r\n" }
func arrayReply(ss []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "*%d\r\n", len(ss))
	for _, s := range ss {
		b.WriteString(bulk(s))
	}
	return b.String()
}
func nilArray() string { return "*-1\r\n" }

func (s *Server) dispatch(args []string) string {
	if len(args) == 0 {
		return errReply("empty command")
	}
	cmd := strings.ToUpper(args[0])
	switch cmd {
	case "PING":
		return simple("PONG")
	case "ECHO":
		if len(args) != 2 {
			return errReply("wrong number of arguments for 'echo'")
		}
		return bulk(args[1])
	case "SET":
		return s.cmdSet(args[1:])
	case "GET":
		return s.cmdGet(args[1:])
	case "DEL":
		return s.cmdDel(args[1:])
	case "EXISTS":
		return s.cmdExists(args[1:])
	case "INCR":
		return s.cmdIncrBy(args[1], 1)
	case "INCRBY":
		if len(args) != 3 {
			return errReply("wrong number of arguments for 'incrby'")
		}
		n, err := strconv.Atoi(args[2])
		if err != nil {
			return errReply("value is not an integer or out of range")
		}
		return s.cmdIncrBy(args[1], n)
	case "LPUSH", "RPUSH":
		return s.cmdPush(cmd, args[1:])
	case "LPOP", "RPOP":
		return s.cmdPop(cmd, args[1:])
	case "BRPOP", "BLPOP":
		return s.cmdBlockingPop(cmd, args[1:])
	case "LLEN":
		return s.cmdLLen(args[1:])
	case "LRANGE":
		return s.cmdLRange(args[1:])
	case "HSET":
		return s.cmdHSet(args[1:])
	case "HGET":
		return s.cmdHGet(args[1:])
	case "HGETALL":
		return s.cmdHGetAll(args[1:])
	case "HLEN":
		return s.cmdHLen(args[1:])
	case "KEYS":
		return s.cmdKeys(args[1:])
	case "EXPIRE":
		return s.cmdExpire(args[1:])
	case "TTL":
		return s.cmdTTL(args[1:])
	case "FLUSHALL":
		s.mu.Lock()
		s.strings = map[string]string{}
		s.hashes = map[string]map[string]string{}
		s.lists = map[string][]string{}
		s.expiry = map[string]time.Time{}
		s.mu.Unlock()
		return simple("OK")
	default:
		return errReply("unknown command '" + args[0] + "'")
	}
}

// expireLocked drops a key whose TTL has elapsed. Callers hold mu.
func (s *Server) expireLocked(key string) {
	if t, ok := s.expiry[key]; ok && time.Now().After(t) {
		delete(s.strings, key)
		delete(s.hashes, key)
		delete(s.lists, key)
		delete(s.expiry, key)
	}
}

func (s *Server) cmdSet(args []string) string {
	if len(args) < 2 {
		return errReply("wrong number of arguments for 'set'")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.strings[args[0]] = args[1]
	delete(s.expiry, args[0])
	for i := 2; i+1 < len(args); i += 2 {
		if strings.ToUpper(args[i]) == "EX" {
			if secs, err := strconv.Atoi(args[i+1]); err == nil {
				s.expiry[args[0]] = time.Now().Add(time.Duration(secs) * time.Second)
			}
		}
	}
	return simple("OK")
}

func (s *Server) cmdGet(args []string) string {
	if len(args) != 1 {
		return errReply("wrong number of arguments for 'get'")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(args[0])
	v, ok := s.strings[args[0]]
	if !ok {
		return nilBulk()
	}
	return bulk(v)
}

func (s *Server) cmdDel(args []string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, k := range args {
		if _, ok := s.strings[k]; ok {
			delete(s.strings, k)
			n++
		}
		if _, ok := s.hashes[k]; ok {
			delete(s.hashes, k)
			n++
		}
		if _, ok := s.lists[k]; ok {
			delete(s.lists, k)
			n++
		}
	}
	return intReply(n)
}

func (s *Server) cmdExists(args []string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, k := range args {
		s.expireLocked(k)
		if _, ok := s.strings[k]; ok {
			n++
		} else if _, ok := s.hashes[k]; ok {
			n++
		} else if _, ok := s.lists[k]; ok {
			n++
		}
	}
	return intReply(n)
}

func (s *Server) cmdIncrBy(key string, delta int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := 0
	if v, ok := s.strings[key]; ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return errReply("value is not an integer or out of range")
		}
		cur = n
	}
	cur += delta
	s.strings[key] = strconv.Itoa(cur)
	return intReply(cur)
}

func (s *Server) cmdPush(cmd string, args []string) string {
	if len(args) < 2 {
		return errReply("wrong number of arguments for 'push'")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := args[0]
	for _, v := range args[1:] {
		if cmd == "LPUSH" {
			s.lists[key] = append([]string{v}, s.lists[key]...)
		} else {
			s.lists[key] = append(s.lists[key], v)
		}
	}
	s.cond.Broadcast()
	return intReply(len(s.lists[key]))
}

func (s *Server) cmdPop(cmd string, args []string) string {
	if len(args) != 1 {
		return errReply("wrong number of arguments for 'pop'")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := args[0]
	lst := s.lists[key]
	if len(lst) == 0 {
		return nilBulk()
	}
	var v string
	if cmd == "LPOP" {
		v, s.lists[key] = lst[0], lst[1:]
	} else {
		v, s.lists[key] = lst[len(lst)-1], lst[:len(lst)-1]
	}
	return bulk(v)
}

// cmdBlockingPop implements BRPOP/BLPOP with a timeout in seconds
// (0 = wait forever) for dispatch paths with no connection to watch.
func (s *Server) cmdBlockingPop(cmd string, args []string) string {
	reply, _ := s.cmdBlockingPopWatch(cmd, args, nil)
	return reply
}

// cmdBlockingPopWatch is the blocking pop core. When gone closes, it
// returns an empty reply without popping anything. A successful pop
// comes with a rollback that re-pushes the element (for a reply that
// could not be delivered).
func (s *Server) cmdBlockingPopWatch(cmd string, args []string, gone <-chan struct{}) (string, func()) {
	if len(args) < 2 {
		return errReply("wrong number of arguments for 'brpop'"), nil
	}
	timeoutSecs, err := strconv.ParseFloat(args[len(args)-1], 64)
	if err != nil {
		return errReply("timeout is not a float or out of range"), nil
	}
	keys := args[:len(args)-1]
	deadline := time.Now().Add(time.Duration(timeoutSecs * float64(time.Second)))

	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if gone != nil {
			select {
			case <-gone:
				return "", nil
			default:
			}
		}
		if reply, rollback := s.tryPopLocked(cmd, keys); reply != "" {
			return reply, rollback
		}
		select {
		case <-s.closed:
			return nilArray(), nil
		default:
		}
		if timeoutSecs > 0 && time.Now().After(deadline) {
			return nilArray(), nil
		}
		// Wake periodically to honor timeouts even without pushes.
		waker := time.AfterFunc(50*time.Millisecond, func() {
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		})
		s.cond.Wait()
		waker.Stop()
	}
}

// tryPopLocked pops from the first non-empty key, returning the RESP
// reply and a rollback that re-pushes the element (for replies that
// cannot be delivered). Empty reply means every key was empty. Callers
// hold mu; rollback must be called without it.
func (s *Server) tryPopLocked(cmd string, keys []string) (string, func()) {
	for _, key := range keys {
		lst := s.lists[key]
		if len(lst) == 0 {
			continue
		}
		var v string
		if cmd == "BLPOP" {
			v, s.lists[key] = lst[0], lst[1:]
		} else {
			v, s.lists[key] = lst[len(lst)-1], lst[:len(lst)-1]
		}
		rollback := func() {
			s.mu.Lock()
			if cmd == "BLPOP" {
				s.lists[key] = append([]string{v}, s.lists[key]...)
			} else {
				s.lists[key] = append(s.lists[key], v)
			}
			s.cond.Broadcast()
			s.mu.Unlock()
		}
		return arrayReply([]string{key, v}), rollback
	}
	return "", nil
}

func (s *Server) cmdLLen(args []string) string {
	if len(args) != 1 {
		return errReply("wrong number of arguments for 'llen'")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return intReply(len(s.lists[args[0]]))
}

func (s *Server) cmdLRange(args []string) string {
	if len(args) != 3 {
		return errReply("wrong number of arguments for 'lrange'")
	}
	start, err1 := strconv.Atoi(args[1])
	stop, err2 := strconv.Atoi(args[2])
	if err1 != nil || err2 != nil {
		return errReply("value is not an integer or out of range")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	lst := s.lists[args[0]]
	n := len(lst)
	if start < 0 {
		start += n
	}
	if stop < 0 {
		stop += n
	}
	if start < 0 {
		start = 0
	}
	if stop >= n {
		stop = n - 1
	}
	if start > stop || n == 0 {
		return arrayReply(nil)
	}
	return arrayReply(lst[start : stop+1])
}

func (s *Server) cmdHSet(args []string) string {
	if len(args) < 3 || len(args)%2 == 0 {
		return errReply("wrong number of arguments for 'hset'")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.hashes[args[0]]
	if !ok {
		h = map[string]string{}
		s.hashes[args[0]] = h
	}
	added := 0
	for i := 1; i+1 < len(args); i += 2 {
		if _, exists := h[args[i]]; !exists {
			added++
		}
		h[args[i]] = args[i+1]
	}
	return intReply(added)
}

func (s *Server) cmdHGet(args []string) string {
	if len(args) != 2 {
		return errReply("wrong number of arguments for 'hget'")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.hashes[args[0]][args[1]]
	if !ok {
		return nilBulk()
	}
	return bulk(v)
}

func (s *Server) cmdHGetAll(args []string) string {
	if len(args) != 1 {
		return errReply("wrong number of arguments for 'hgetall'")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.hashes[args[0]]
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	// Deterministic order for tests.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var flat []string
	for _, k := range keys {
		flat = append(flat, k, h[k])
	}
	return arrayReply(flat)
}

func (s *Server) cmdHLen(args []string) string {
	if len(args) != 1 {
		return errReply("wrong number of arguments for 'hlen'")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return intReply(len(s.hashes[args[0]]))
}

func (s *Server) cmdKeys(args []string) string {
	if len(args) != 1 {
		return errReply("wrong number of arguments for 'keys'")
	}
	pattern := args[0]
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	match := func(k string) bool {
		if pattern == "*" {
			return true
		}
		if strings.HasSuffix(pattern, "*") {
			return strings.HasPrefix(k, strings.TrimSuffix(pattern, "*"))
		}
		return k == pattern
	}
	for k := range s.strings {
		if match(k) {
			out = append(out, k)
		}
	}
	for k := range s.hashes {
		if match(k) {
			out = append(out, k)
		}
	}
	for k := range s.lists {
		if match(k) {
			out = append(out, k)
		}
	}
	return arrayReply(out)
}

func (s *Server) cmdExpire(args []string) string {
	if len(args) != 2 {
		return errReply("wrong number of arguments for 'expire'")
	}
	secs, err := strconv.Atoi(args[1])
	if err != nil {
		return errReply("value is not an integer or out of range")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.strings[args[0]]; !ok {
		return intReply(0)
	}
	s.expiry[args[0]] = time.Now().Add(time.Duration(secs) * time.Second)
	return intReply(1)
}

func (s *Server) cmdTTL(args []string) string {
	if len(args) != 1 {
		return errReply("wrong number of arguments for 'ttl'")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.strings[args[0]]; !ok {
		return intReply(-2)
	}
	t, ok := s.expiry[args[0]]
	if !ok {
		return intReply(-1)
	}
	rem := int(time.Until(t).Seconds())
	if rem < 0 {
		rem = 0
	}
	return intReply(rem)
}
