package miniredis

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

func TestPingSetGet(t *testing.T) {
	_, c := startServer(t)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("k", "value with spaces\nand newlines"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("k")
	if err != nil || !ok || v != "value with spaces\nand newlines" {
		t.Fatalf("get = %q %v %v", v, ok, err)
	}
	_, ok, err = c.Get("missing")
	if err != nil || ok {
		t.Fatalf("missing key: ok=%v err=%v", ok, err)
	}
}

func TestListsAndBlockingPop(t *testing.T) {
	_, c := startServer(t)
	if err := c.RPush("q", "a", "b"); err != nil {
		t.Fatal(err)
	}
	n, err := c.LLen("q")
	if err != nil || n != 2 {
		t.Fatalf("llen = %d %v", n, err)
	}
	// BRPOP takes from the tail.
	_, v, ok, err := c.BRPop(time.Second, "q")
	if err != nil || !ok || v != "b" {
		t.Fatalf("brpop = %q %v %v", v, ok, err)
	}
	// Blocking path: a second client pushes after a delay.
	c2, err := Dial(c.conn.RemoteAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	go func() {
		time.Sleep(50 * time.Millisecond)
		c2.LPush("q2", "wake")
	}()
	start := time.Now()
	_, v, ok, err = c.BRPop(2*time.Second, "q2")
	if err != nil || !ok || v != "wake" {
		t.Fatalf("blocking brpop = %q %v %v", v, ok, err)
	}
	if time.Since(start) > time.Second {
		t.Error("brpop took too long after push")
	}
	// Timeout path.
	_, _, ok, err = c.BRPop(100*time.Millisecond, "empty")
	if err != nil || ok {
		t.Fatalf("timeout brpop: ok=%v err=%v", ok, err)
	}
}

func TestHashes(t *testing.T) {
	_, c := startServer(t)
	if err := c.HSet("job:1", "status", "done", "score", "1"); err != nil {
		t.Fatal(err)
	}
	m, err := c.HGetAll("job:1")
	if err != nil {
		t.Fatal(err)
	}
	if m["status"] != "done" || m["score"] != "1" {
		t.Fatalf("hgetall = %v", m)
	}
}

func TestIncrAndKeys(t *testing.T) {
	_, c := startServer(t)
	for i := 1; i <= 3; i++ {
		n, err := c.Incr("counter")
		if err != nil || n != i {
			t.Fatalf("incr = %d %v", n, err)
		}
	}
	c.Set("job:1", "x")
	c.Set("job:2", "y")
	c.Set("other", "z")
	keys, err := c.Keys("job:*")
	if err != nil || len(keys) != 2 {
		t.Fatalf("keys = %v %v", keys, err)
	}
}

func TestConcurrentWorkersDrainQueue(t *testing.T) {
	srv, producer := startServer(t)
	_ = srv
	const jobs = 200
	for i := 0; i < jobs; i++ {
		if err := producer.LPush("jobs", fmt.Sprintf("job-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	seen := map[string]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := Dial(producer.conn.RemoteAddr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			for {
				_, v, ok, err := cli.BRPop(200*time.Millisecond, "jobs")
				if err != nil || !ok {
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("job %s delivered twice", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != jobs {
		t.Fatalf("drained %d jobs, want %d", len(seen), jobs)
	}
}

func TestExpiry(t *testing.T) {
	_, c := startServer(t)
	c.Set("temp", "v")
	if _, err := c.Do("EXPIRE", "temp", "1"); err != nil {
		t.Fatal(err)
	}
	v, err := c.Do("TTL", "temp")
	if err != nil || v.(int) < 0 || v.(int) > 1 {
		t.Fatalf("ttl = %v %v", v, err)
	}
	if _, err := c.Do("TTL", "absent"); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolErrors(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.Do("NOSUCHCMD"); err == nil {
		t.Error("unknown command should error")
	}
	if _, err := c.Do("GET"); err == nil {
		t.Error("arity error should surface")
	}
}

// TestDeadBlockedClientDoesNotStealElements is the regression test for
// the sequential-campaign hang: a client parked in BRPOP whose process
// dies must not be handed the next pushed element (the first write
// after a peer FIN "succeeds", so the element would vanish into a dead
// socket). The push that arrives after the client's death must go to a
// live waiter.
func TestDeadBlockedClientDoesNotStealElements(t *testing.T) {
	srv, cli := startServer(t)
	addr := srv.ln.Addr().String()

	dead, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	// Park the doomed client in a long BRPOP, then sever its
	// connection while it is blocked.
	parked := make(chan struct{})
	go func() {
		close(parked)
		dead.BRPop(30*time.Second, "q")
	}()
	<-parked
	time.Sleep(100 * time.Millisecond) // let the server register the waiter
	if err := dead.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the server notice the EOF

	if err := cli.LPush("q", "payload"); err != nil {
		t.Fatal(err)
	}
	_, v, ok, err := cli.BRPop(5*time.Second, "q")
	if err != nil {
		t.Fatal(err)
	}
	if !ok || v != "payload" {
		t.Fatalf("live waiter got (%q, %v); the dead client stole the element", v, ok)
	}
}

// TestEmptyCommandDoesNotKillServer: a RESP empty array (`*0`) must
// produce an error reply, not an args[0] panic in the serve goroutine
// (which would take down the whole coordination store).
func TestEmptyCommandDoesNotKillServer(t *testing.T) {
	srv, cli := startServer(t)
	raw, err := net.Dial("tcp", srv.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte("*0\r\n")); err != nil {
		t.Fatal(err)
	}
	reply := make([]byte, 64)
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := raw.Read(reply)
	if err != nil || n == 0 || reply[0] != '-' {
		t.Fatalf("empty command reply = %q, %v; want an error reply", reply[:n], err)
	}
	// The server survived: a normal client still works.
	if err := cli.Ping(); err != nil {
		t.Fatalf("server unhealthy after empty command: %v", err)
	}
}
