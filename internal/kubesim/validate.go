package kubesim

import (
	"fmt"

	"cloudeval/internal/yamlx"
)

// ValidateManifest performs the schema checks kubectl's server-side
// strict decoding would apply for the kinds the benchmark exercises. It
// is intentionally unforgiving about the classic mistakes the dataset's
// debugging problems revolve around (for example the pre-v1 Ingress
// backend fields).
func ValidateManifest(doc *yamlx.Node) error {
	if doc == nil || doc.Kind != yamlx.MapKind {
		return fmt.Errorf("error: unable to decode: document is not a mapping")
	}
	kind := doc.Get("kind")
	if kind == nil || kind.ScalarString() == "" {
		return fmt.Errorf("error: unable to decode: Object 'Kind' is missing")
	}
	apiVersion := doc.Get("apiVersion")
	if apiVersion == nil || apiVersion.ScalarString() == "" {
		return fmt.Errorf("error: unable to decode: Object 'apiVersion' is missing")
	}
	k := kind.ScalarString()
	av := apiVersion.ScalarString()
	meta := doc.Get("metadata")
	if kindKey(k) != "list" {
		if meta == nil || meta.Get("name") == nil || meta.Get("name").ScalarString() == "" {
			return fmt.Errorf("error: resource name may not be empty (%s)", k)
		}
	}
	if want, ok := expectedAPIVersions[kindKey(k)]; ok {
		if !apiVersionAllowed(av, want) {
			return fmt.Errorf("error: unable to recognize: no matches for kind %q in version %q", k, av)
		}
	}
	switch kindKey(k) {
	case "ingress":
		return validateIngress(doc, av)
	case "deployment", "daemonset", "statefulset", "replicaset":
		return validateWorkload(doc, k)
	case "job":
		return validateJob(doc)
	case "cronjob":
		return validateCronJob(doc)
	case "service":
		return validateService(doc)
	case "rolebinding", "clusterrolebinding":
		return validateRoleBinding(doc, k)
	case "pod":
		return validatePodSpec(doc.Get("spec"), k)
	case "destinationrule":
		if doc.Path("spec", "host") == nil {
			return fmt.Errorf("error validating DestinationRule: spec.host is required")
		}
	case "virtualservice":
		if doc.Path("spec", "hosts") == nil {
			return fmt.Errorf("error validating VirtualService: spec.hosts is required")
		}
	case "persistentvolumeclaim":
		if doc.Path("spec", "accessModes") == nil {
			return fmt.Errorf("error validating PersistentVolumeClaim: spec.accessModes is required")
		}
	case "horizontalpodautoscaler":
		if doc.Path("spec", "scaleTargetRef") == nil {
			return fmt.Errorf("error validating HorizontalPodAutoscaler: spec.scaleTargetRef is required")
		}
	}
	return nil
}

// expectedAPIVersions pins the kinds with a single valid group/version
// in current clusters.
var expectedAPIVersions = map[string][]string{
	"deployment":              {"apps/v1"},
	"daemonset":               {"apps/v1"},
	"statefulset":             {"apps/v1"},
	"replicaset":              {"apps/v1"},
	"pod":                     {"v1"},
	"service":                 {"v1"},
	"namespace":               {"v1"},
	"configmap":               {"v1"},
	"secret":                  {"v1"},
	"serviceaccount":          {"v1"},
	"limitrange":              {"v1"},
	"persistentvolume":        {"v1"},
	"persistentvolumeclaim":   {"v1"},
	"job":                     {"batch/v1"},
	"cronjob":                 {"batch/v1"},
	"ingress":                 {"networking.k8s.io/v1"},
	"networkpolicy":           {"networking.k8s.io/v1"},
	"role":                    {"rbac.authorization.k8s.io/v1"},
	"rolebinding":             {"rbac.authorization.k8s.io/v1"},
	"clusterrole":             {"rbac.authorization.k8s.io/v1"},
	"clusterrolebinding":      {"rbac.authorization.k8s.io/v1"},
	"horizontalpodautoscaler": {"autoscaling/v2", "autoscaling/v1"},
	"destinationrule":         {"networking.istio.io/v1alpha3", "networking.istio.io/v1beta1", "networking.istio.io/v1"},
	"virtualservice":          {"networking.istio.io/v1alpha3", "networking.istio.io/v1beta1", "networking.istio.io/v1"},
	"gateway":                 {"networking.istio.io/v1alpha3", "networking.istio.io/v1beta1", "networking.istio.io/v1"},
}

func apiVersionAllowed(got string, want []string) bool {
	for _, w := range want {
		if got == w {
			return true
		}
	}
	return false
}

func validateIngress(doc *yamlx.Node, apiVersion string) error {
	rules := doc.Path("spec", "rules")
	if rules == nil || rules.Kind != yamlx.SeqKind {
		return nil // an Ingress with only a defaultBackend is legal
	}
	for _, rule := range rules.Items {
		paths := rule.Path("http", "paths")
		if paths == nil || paths.Kind != yamlx.SeqKind {
			continue
		}
		for _, p := range paths.Items {
			backend := p.Get("backend")
			if backend == nil {
				return fmt.Errorf("error validating Ingress: spec.rules[0].http.paths[0].backend is required")
			}
			// The classic migration bug: v1 dropped serviceName/servicePort.
			if backend.Has("serviceName") || backend.Has("servicePort") {
				return fmt.Errorf(`Ingress in version "v1" cannot be handled as a Ingress: strict decoding error: unknown field "spec.rules[0].http.paths[0].backend.serviceName", unknown field "spec.rules[0].http.paths[0].backend.servicePort"`)
			}
			svc := backend.Get("service")
			if svc == nil || svc.Get("name") == nil {
				return fmt.Errorf("error validating Ingress: backend.service.name is required")
			}
			if svc.Path("port") == nil {
				return fmt.Errorf("error validating Ingress: backend.service.port is required")
			}
			if p.Get("pathType") == nil {
				return fmt.Errorf("error validating Ingress: spec.rules[0].http.paths[0].pathType: Required value: pathType must be specified")
			}
		}
	}
	return nil
}

func validateWorkload(doc *yamlx.Node, kind string) error {
	spec := doc.Get("spec")
	if spec == nil {
		return fmt.Errorf("error validating %s: spec is required", kind)
	}
	sel := spec.Path("selector", "matchLabels")
	if sel == nil {
		return fmt.Errorf("error validating %s: spec.selector: Required value", kind)
	}
	tmpl := spec.Get("template")
	if tmpl == nil {
		return fmt.Errorf("error validating %s: spec.template: Required value", kind)
	}
	tmplLabels := tmpl.Path("metadata", "labels")
	for _, e := range sel.Entries {
		lv := tmplLabels.Get(e.Key)
		if lv == nil || lv.ScalarString() != e.Value.ScalarString() {
			return fmt.Errorf(`error validating %s: "spec.template.metadata.labels" does not match selector %q`, kind, e.Key+"="+e.Value.ScalarString())
		}
	}
	return validatePodSpec(tmpl.Get("spec"), kind)
}

func validateJob(doc *yamlx.Node) error {
	tmpl := doc.Path("spec", "template")
	if tmpl == nil {
		return fmt.Errorf("error validating Job: spec.template: Required value")
	}
	return validatePodSpec(tmpl.Get("spec"), "Job")
}

func validateCronJob(doc *yamlx.Node) error {
	if doc.Path("spec", "schedule") == nil {
		return fmt.Errorf("error validating CronJob: spec.schedule: Required value")
	}
	if doc.Path("spec", "jobTemplate") == nil {
		return fmt.Errorf("error validating CronJob: spec.jobTemplate: Required value")
	}
	return nil
}

func validatePodSpec(spec *yamlx.Node, kind string) error {
	if spec == nil {
		return fmt.Errorf("error validating %s: spec: Required value", kind)
	}
	containers := spec.Get("containers")
	if containers == nil || containers.Kind != yamlx.SeqKind || len(containers.Items) == 0 {
		return fmt.Errorf("error validating %s: spec.containers: Required value", kind)
	}
	for i, ct := range containers.Items {
		if ct.Get("name") == nil || ct.Get("name").ScalarString() == "" {
			return fmt.Errorf("error validating %s: spec.containers[%d].name: Required value", kind, i)
		}
		if ct.Get("image") == nil || ct.Get("image").ScalarString() == "" {
			return fmt.Errorf("error validating %s: spec.containers[%d].image: Required value", kind, i)
		}
		if env := ct.Get("env"); env != nil && env.Kind == yamlx.SeqKind {
			for j, e := range env.Items {
				if e.Get("name") == nil {
					return fmt.Errorf("error validating %s: spec.containers[%d].env[%d].name: Required value", kind, i, j)
				}
				// Env values must be strings in strict decoding.
				if v := e.Get("value"); v != nil && (v.Kind == yamlx.IntKind || v.Kind == yamlx.FloatKind || v.Kind == yamlx.BoolKind) {
					return fmt.Errorf(`error validating %s: cannot unmarshal number into Go struct field EnvVar.spec.containers[%d].env[%d].value of type string`, kind, i, j)
				}
			}
		}
		if ports := ct.Get("ports"); ports != nil && ports.Kind == yamlx.SeqKind {
			for j, prt := range ports.Items {
				cp := prt.Get("containerPort")
				if cp == nil {
					return fmt.Errorf("error validating %s: spec.containers[%d].ports[%d].containerPort: Required value", kind, i, j)
				}
				if v, ok := cp.AsInt(); !ok || v < 1 || v > 65535 {
					return fmt.Errorf("error validating %s: spec.containers[%d].ports[%d].containerPort: Invalid value: %s", kind, i, j, cp.ScalarString())
				}
			}
		}
	}
	return nil
}

func validateService(doc *yamlx.Node) error {
	spec := doc.Get("spec")
	if spec == nil {
		return fmt.Errorf("error validating Service: spec is required")
	}
	ports := spec.Get("ports")
	if ports == nil || ports.Kind != yamlx.SeqKind || len(ports.Items) == 0 {
		return fmt.Errorf("error validating Service: spec.ports: Required value")
	}
	for i, p := range ports.Items {
		pn := p.Get("port")
		if pn == nil {
			return fmt.Errorf("error validating Service: spec.ports[%d].port: Required value", i)
		}
		if v, ok := pn.AsInt(); !ok || v < 1 || v > 65535 {
			return fmt.Errorf("error validating Service: spec.ports[%d].port: Invalid value: %s", i, pn.ScalarString())
		}
	}
	if typ := spec.Get("type"); typ != nil {
		switch typ.ScalarString() {
		case "ClusterIP", "NodePort", "LoadBalancer", "ExternalName":
		default:
			return fmt.Errorf("error validating Service: spec.type: Unsupported value: %q", typ.ScalarString())
		}
	}
	return nil
}

func validateRoleBinding(doc *yamlx.Node, kind string) error {
	roleRef := doc.Get("roleRef")
	if roleRef == nil {
		return fmt.Errorf("error validating %s: roleRef: Required value", kind)
	}
	for _, f := range []string{"kind", "name", "apiGroup"} {
		if roleRef.Get(f) == nil {
			return fmt.Errorf("error validating %s: roleRef.%s: Required value", kind, f)
		}
	}
	if subjects := doc.Get("subjects"); subjects != nil && subjects.Kind == yamlx.SeqKind {
		for i, s := range subjects.Items {
			if s.Get("kind") == nil || s.Get("name") == nil {
				return fmt.Errorf("error validating %s: subjects[%d]: kind and name are required", kind, i)
			}
		}
	}
	return nil
}

// KindOf returns the canonical kind key for a manifest, or "".
func KindOf(doc *yamlx.Node) string {
	if doc == nil {
		return ""
	}
	k := doc.Get("kind")
	if k == nil {
		return ""
	}
	return kindKey(k.ScalarString())
}

// FirstKind extracts the first document kind from raw YAML text, the way
// the benchmark's failure-mode analysis classifies answers.
func FirstKind(src string) string {
	docs, err := yamlx.ParseAllCached([]byte(src))
	if err != nil {
		return ""
	}
	for _, d := range docs {
		if d != nil && d.Kind == yamlx.MapKind {
			if k := d.Get("kind"); k != nil {
				return k.ScalarString()
			}
		}
	}
	return ""
}
