// Package kubesim implements an in-memory Kubernetes cluster that
// stands in for minikube in the CloudEval-YAML evaluation platform.
//
// The simulator stores applied manifests as YAML trees, runs the
// controllers the benchmark's unit tests observe (Deployments,
// ReplicaSets, DaemonSets, Jobs and StatefulSets create Pods; Services
// select endpoints; LoadBalancers acquire ingress IPs), and advances a
// virtual clock so that "kubectl wait" and "sleep" in test scripts
// complete in microseconds of real time.
//
// State is a function of virtual time: every derived object records the
// virtual timestamps at which it transitions (scheduled, ready,
// complete), so there is no background reconcile loop and the cluster
// is fully deterministic.
package kubesim

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cloudeval/internal/memo"
	"cloudeval/internal/yamlx"
)

// Default latencies of the virtual control plane. They model the real
// timings the paper's unit tests wait on (pods take seconds to pull and
// start; LoadBalancers take longer) while costing nothing in real time.
const (
	PodReadyDelay   = 3 * time.Second
	JobCompleteTime = 5 * time.Second
	LBProvisionTime = 4 * time.Second
	NodeIP          = "192.168.49.2"
)

// Object is one stored resource: the manifest as applied plus the
// virtual timestamps driving its lifecycle.
type Object struct {
	Manifest  *yamlx.Node
	Kind      string
	Name      string
	Namespace string
	CreatedAt time.Time
	ReadyAt   time.Time // pods: when Ready flips true
	DoneAt    time.Time // jobs: completion time
	OwnerKind string
	OwnerName string
	Failed    bool   // image pull errors and the like
	FailMsg   string // reason for Failed
	PodIP     string

	createdStampCache string // lazily rendered CreatedAt, see createdStamp
}

// createdStamp renders CreatedAt in the kubectl timestamp format,
// caching the result: withStatus runs on every get and the timestamp
// never changes after creation.
func (o *Object) createdStamp() string {
	if o.createdStampCache == "" {
		o.createdStampCache = o.CreatedAt.Format("2006-01-02T15:04:05Z")
	}
	return o.createdStampCache
}

// Cluster is a simulated Kubernetes cluster.
type Cluster struct {
	now        time.Time
	objects    map[string]map[string]*Object // kindKey -> ns/name -> obj
	namespaces map[string]bool
	nextPodIP  int
	nextPort   int
	events     []string
}

// epoch is the fixed virtual time every fresh (or reset) cluster
// starts at, so evaluations are deterministic.
var epoch = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

// NewCluster returns an empty cluster with the "default", "kube-system"
// namespaces and a virtual clock starting at a fixed epoch.
func NewCluster() *Cluster {
	return &Cluster{
		now:        epoch,
		objects:    make(map[string]map[string]*Object),
		namespaces: map[string]bool{"default": true, "kube-system": true},
		nextPodIP:  2,
		nextPort:   30000,
	}
}

// Reset returns the cluster to its pristine NewCluster state while
// retaining allocated bucket capacity, so environment pools can stamp
// out executions without rebuilding the world. Equivalence with a
// fresh cluster is what TestPooledEnvNoLeak pins down.
func (c *Cluster) Reset() {
	c.now = epoch
	for _, b := range c.objects {
		clear(b)
	}
	clear(c.namespaces)
	c.namespaces["default"] = true
	c.namespaces["kube-system"] = true
	c.nextPodIP = 2
	c.nextPort = 30000
	c.events = c.events[:0]
}

// Now returns the current virtual time.
func (c *Cluster) Now() time.Time { return c.now }

// AdvanceTime moves the virtual clock forward.
func (c *Cluster) AdvanceTime(d time.Duration) {
	if d > 0 {
		c.now = c.now.Add(d)
	}
}

// Event records a control-plane event visible in describe output.
func (c *Cluster) Event(format string, args ...any) {
	c.events = append(c.events, fmt.Sprintf(format, args...))
}

// CanonicalKind returns the canonical lowercase singular for any
// accepted kind spelling ("pods", "po", "Pod" -> "pod").
func CanonicalKind(kind string) string { return kindKey(kind) }

// kindKey canonicalizes resource kind spellings ("pod", "pods", "po",
// "Pod" all name the same store). The canonicalization runs on every
// store access, so results are memoized process-wide; spellings are
// usually a small fixed vocabulary, but kind: values parsed out of
// model-generated answers can be arbitrary, hence the capped cache.
func kindKey(kind string) string {
	return kindKeyCache.Do(kind, func() string { return kindKeySlow(kind) })
}

var kindKeyCache = memo.New[string, string](1 << 12)

func kindKeySlow(kind string) string {
	k := strings.ToLower(strings.TrimSpace(kind))
	k = strings.TrimSuffix(k, "es")
	if strings.HasSuffix(k, "s") && k != "ingress" && k != "statefulset" && k != "daemonset" && k != "limitrange" {
		k = strings.TrimSuffix(k, "s")
	}
	switch k {
	case "po":
		return "pod"
	case "svc", "servic": // "services" loses its "es" above
		return "service"
	case "deploy":
		return "deployment"
	case "ds":
		return "daemonset"
	case "sts":
		return "statefulset"
	case "ns", "namespac":
		return "namespace"
	case "cm", "configmap":
		return "configmap"
	case "ing", "ingres":
		return "ingress"
	case "sa":
		return "serviceaccount"
	case "pvc", "persistentvolumeclaim":
		return "persistentvolumeclaim"
	case "pv", "persistentvolume":
		return "persistentvolume"
	case "hpa", "horizontalpodautoscaler":
		return "horizontalpodautoscaler"
	case "rs", "replicaset":
		return "replicaset"
	case "netpol", "networkpolic":
		return "networkpolicy"
	case "destinationrule", "destinationrul":
		return "destinationrule"
	case "virtualservice", "virtualservic":
		return "virtualservice"
	}
	return k
}

func nsName(ns, name string) string { return ns + "/" + name }

func (c *Cluster) bucket(kind string) map[string]*Object {
	k := kindKey(kind)
	b, ok := c.objects[k]
	if !ok {
		b = make(map[string]*Object)
		c.objects[k] = b
	}
	return b
}

// namespaced reports whether a kind lives inside namespaces.
func namespaced(kind string) bool {
	switch kindKey(kind) {
	case "namespace", "clusterrole", "clusterrolebinding", "persistentvolume", "storageclass", "node":
		return false
	}
	return true
}

// CreateNamespace creates a namespace; creating an existing one errors
// like kubectl does.
func (c *Cluster) CreateNamespace(name string) error {
	if c.namespaces[name] {
		return fmt.Errorf("namespaces %q already exists", name)
	}
	c.namespaces[name] = true
	return nil
}

// HasNamespace reports whether the namespace exists.
func (c *Cluster) HasNamespace(name string) bool { return c.namespaces[name] }

// DeleteNamespace removes a namespace and everything inside it.
func (c *Cluster) DeleteNamespace(name string) error {
	if !c.namespaces[name] {
		return fmt.Errorf("namespaces %q not found", name)
	}
	delete(c.namespaces, name)
	for _, bucket := range c.objects {
		for key, obj := range bucket {
			if obj.Namespace == name {
				delete(bucket, key)
			}
		}
	}
	return nil
}

// ApplyResult describes one applied manifest.
type ApplyResult struct {
	Kind      string
	Name      string
	Namespace string
	Created   bool // false: configured (updated)
}

func (r ApplyResult) String() string {
	verb := "configured"
	if r.Created {
		verb = "created"
	}
	return fmt.Sprintf("%s/%s %s", strings.ToLower(r.Kind), r.Name, verb)
}

// ApplyYAML parses a (possibly multi-document) manifest and applies
// every document, mimicking "kubectl apply -f". The defaultNS applies
// to namespaced resources without an explicit metadata.namespace.
// Parsing goes through the yamlx document cache — the same answer text
// is applied once per model sample but parsed once per process — and
// Apply deep-copies each document before storing it, so the cached
// trees stay pristine.
func (c *Cluster) ApplyYAML(src string, defaultNS string) ([]ApplyResult, error) {
	docs, err := yamlx.ParseAllCached([]byte(src))
	if err != nil {
		return nil, fmt.Errorf("error parsing YAML: %w", err)
	}
	var results []ApplyResult
	for _, doc := range docs {
		if doc == nil || doc.Kind == yamlx.NullKind {
			continue
		}
		res, err := c.Apply(doc, defaultNS)
		if err != nil {
			return results, err
		}
		results = append(results, res)
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("error: no objects passed to apply")
	}
	return results, nil
}

// Apply validates and stores a single manifest, then runs the
// controllers that materialize derived objects (pods, endpoints).
func (c *Cluster) Apply(doc *yamlx.Node, defaultNS string) (ApplyResult, error) {
	if err := ValidateManifest(doc); err != nil {
		return ApplyResult{}, err
	}
	kind := doc.Get("kind").ScalarString()
	meta := doc.Get("metadata")
	name := meta.Get("name").ScalarString()
	ns := defaultNS
	if ns == "" {
		ns = "default"
	}
	if nsNode := meta.Get("namespace"); nsNode != nil && nsNode.ScalarString() != "" {
		ns = nsNode.ScalarString()
	}
	if !namespaced(kind) {
		ns = ""
	} else if !c.namespaces[ns] {
		return ApplyResult{}, fmt.Errorf("namespaces %q not found", ns)
	}

	if kindKey(kind) == "namespace" {
		created := !c.namespaces[name]
		c.namespaces[name] = true
		c.bucket(kind)[nsName("", name)] = &Object{
			Manifest: doc, Kind: kind, Name: name, CreatedAt: c.now,
		}
		return ApplyResult{Kind: kind, Name: name, Created: created}, nil
	}

	bucket := c.bucket(kind)
	key := nsName(ns, name)
	_, existed := bucket[key]
	// Stored manifests are immutable after apply for every kind except
	// Service, whose controller writes allocated values (clusterIP,
	// nodePort) into the stored tree. Everything else stores the parsed
	// document as-is — which may come from the shared yamlx cache — so
	// applying a manifest costs no deep copy.
	manifest := doc
	if kindKey(kind) == "service" {
		manifest = doc.Clone()
	}
	obj := &Object{
		Manifest:  manifest,
		Kind:      kind,
		Name:      name,
		Namespace: ns,
		CreatedAt: c.now,
	}
	bucket[key] = obj
	c.runControllers(obj)
	return ApplyResult{Kind: kind, Name: name, Namespace: ns, Created: !existed}, nil
}

// DeleteYAML deletes every resource named in a manifest, mimicking
// "kubectl delete -f".
func (c *Cluster) DeleteYAML(src string, defaultNS string) ([]string, error) {
	docs, err := yamlx.ParseAllCached([]byte(src))
	if err != nil {
		return nil, fmt.Errorf("error parsing YAML: %w", err)
	}
	var out []string
	for _, doc := range docs {
		if doc == nil || doc.Kind == yamlx.NullKind {
			continue
		}
		kind := doc.Get("kind").ScalarString()
		name := doc.Path("metadata", "name").ScalarString()
		ns := defaultNS
		if v := doc.Path("metadata", "namespace"); v != nil {
			ns = v.ScalarString()
		}
		if err := c.Delete(kind, ns, name); err != nil {
			return out, err
		}
		out = append(out, fmt.Sprintf("%s %q deleted", strings.ToLower(kind), name))
	}
	return out, nil
}

// Delete removes one resource and any objects it owns.
func (c *Cluster) Delete(kind, ns, name string) error {
	if kindKey(kind) == "namespace" {
		return c.DeleteNamespace(name)
	}
	if !namespaced(kind) {
		ns = ""
	} else if ns == "" {
		ns = "default"
	}
	bucket := c.bucket(kind)
	key := nsName(ns, name)
	if _, ok := bucket[key]; !ok {
		return fmt.Errorf("%s %q not found", strings.ToLower(kind), name)
	}
	delete(bucket, key)
	// Cascade to owned objects (pods of a deployment, etc.).
	for _, b := range c.objects {
		for k, o := range b {
			if o.OwnerKind == kindKey(kind) && o.OwnerName == name && o.Namespace == ns {
				delete(b, k)
			}
		}
	}
	return nil
}

// GetObject fetches one stored resource without materializing status.
func (c *Cluster) GetObject(kind, ns, name string) (*Object, bool) {
	if !namespaced(kind) {
		ns = ""
	} else if ns == "" {
		ns = "default"
	}
	obj, ok := c.bucket(kind)[nsName(ns, name)]
	return obj, ok
}

// GetByName fetches one resource with live status populated.
func (c *Cluster) GetByName(kind, ns, name string) (*yamlx.Node, bool) {
	obj, ok := c.GetObject(kind, ns, name)
	if !ok {
		return nil, false
	}
	return c.withStatus(obj), true
}

// ListObjects returns the stored objects of a kind in a namespace (all
// namespaces when ns is "*"), filtered by an equality label selector
// like "app=web" (empty selector matches all), sorted by name. The
// wait loop uses this to poll conditions without building kubectl-style
// documents each step.
func (c *Cluster) ListObjects(kind, ns, selector string) []*Object {
	sel := parseSelector(selector)
	var objs []*Object
	for _, obj := range c.bucket(kind) {
		if ns != "*" && namespaced(kind) {
			effNS := ns
			if effNS == "" {
				effNS = "default"
			}
			if obj.Namespace != effNS {
				continue
			}
		}
		if !matchesSelector(obj.Manifest, sel) {
			continue
		}
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Name < objs[j].Name })
	return objs
}

// List returns resources of a kind with live status populated, in the
// same order and under the same filters as ListObjects.
func (c *Cluster) List(kind, ns, selector string) []*yamlx.Node {
	objs := c.ListObjects(kind, ns, selector)
	out := make([]*yamlx.Node, len(objs))
	for i, o := range objs {
		out[i] = c.withStatus(o)
	}
	return out
}

// ListNode wraps List results in a {apiVersion, kind: List, items: []}
// node, the shape kubectl presents to JSONPath queries.
func (c *Cluster) ListNode(kind, ns, selector string) *yamlx.Node {
	items := yamlx.Seq()
	for _, n := range c.List(kind, ns, selector) {
		items.Append(n)
	}
	list := yamlx.Map()
	list.Set("apiVersion", yamlx.String("v1"))
	list.Set("kind", yamlx.String("List"))
	list.Set("items", items)
	return list
}

func parseSelector(s string) map[string]string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	sel := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) == 2 {
			sel[kv[0]] = strings.Trim(kv[1], "\"'")
		}
	}
	return sel
}

func matchesSelector(manifest *yamlx.Node, sel map[string]string) bool {
	if len(sel) == 0 {
		return true
	}
	labels := manifest.Path("metadata", "labels")
	for k, v := range sel {
		lv := labels.Get(k)
		if lv == nil || lv.ScalarString() != v {
			return false
		}
	}
	return true
}

// labelsOf returns a resource's metadata.labels as a map.
func labelsOf(manifest *yamlx.Node) map[string]string {
	out := map[string]string{}
	labels := manifest.Path("metadata", "labels")
	if labels == nil || labels.Kind != yamlx.MapKind {
		return out
	}
	for _, e := range labels.Entries {
		out[e.Key] = e.Value.ScalarString()
	}
	return out
}
