package kubesim

import (
	"fmt"
	"strings"
	"time"

	"cloudeval/internal/yamlx"
)

// WaitOptions mirror the flags of "kubectl wait".
type WaitOptions struct {
	Kind      string
	Namespace string
	Names     []string // explicit resource names; empty means selector/all
	Selector  string   // -l app=web
	All       bool     // --all
	Condition string   // condition name from --for=condition=X
	Timeout   time.Duration
}

// WaitFor advances the virtual clock until every targeted resource
// reports the condition with status True, or the timeout elapses. Like
// kubectl, it errors when no resources match or the condition never
// becomes true.
//
// The wait loop is the hottest polling path of a unit test (up to 60
// probes per wait), so conditions are evaluated directly on the stored
// objects via ObjectCondition instead of materializing kubectl-style
// status documents each step; TestObjectConditionMatchesStatus pins
// the two representations together.
func (c *Cluster) WaitFor(opts WaitOptions) error {
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	deadline := c.now.Add(opts.Timeout)
	const step = 500 * time.Millisecond
	for {
		targets := c.waitTargets(opts)
		if len(targets) == 0 {
			if len(opts.Names) > 0 {
				return fmt.Errorf("error: %s %q not found", kindKey(opts.Kind), strings.Join(opts.Names, ", "))
			}
			return fmt.Errorf("error: no matching resources found")
		}
		if c.allConditionsTrue(targets, opts.Condition) {
			return nil
		}
		if !c.now.Before(deadline) {
			return fmt.Errorf("error: timed out waiting for the condition on %s", kindKey(opts.Kind))
		}
		c.AdvanceTime(step)
	}
}

func (c *Cluster) waitTargets(opts WaitOptions) []*Object {
	if len(opts.Names) > 0 {
		var out []*Object
		for _, name := range opts.Names {
			if o, ok := c.GetObject(opts.Kind, opts.Namespace, name); ok {
				out = append(out, o)
			}
		}
		return out
	}
	return c.ListObjects(opts.Kind, opts.Namespace, opts.Selector)
}

func (c *Cluster) allConditionsTrue(objs []*Object, condType string) bool {
	for _, o := range objs {
		if !c.ObjectCondition(o, condType) {
			return false
		}
	}
	return true
}

// HasCondition reports whether a resource's status.conditions include
// the given type (case-insensitive) with status "True".
func HasCondition(n *yamlx.Node, condType string) bool {
	conds := n.Path("status", "conditions")
	if conds == nil || conds.Kind != yamlx.SeqKind {
		return false
	}
	for _, cd := range conds.Items {
		if strings.EqualFold(cd.Get("type").ScalarString(), condType) {
			return strings.EqualFold(cd.Get("status").ScalarString(), "True")
		}
	}
	return false
}
