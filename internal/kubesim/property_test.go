package kubesim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// randomManifest builds an arbitrary valid manifest of a random
// supported kind.
func randomManifest(r *rand.Rand) (kind, name, src string) {
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	images := []string{"nginx:latest", "redis:7", "busybox:1.36"}
	name = names[r.Intn(len(names))] + fmt.Sprintf("-%d", r.Intn(100))
	switch r.Intn(4) {
	case 0:
		return "Pod", name, fmt.Sprintf(`apiVersion: v1
kind: Pod
metadata:
  name: %s
  labels:
    app: %s
spec:
  containers:
  - name: c
    image: %s
`, name, name, images[r.Intn(len(images))])
	case 1:
		return "Deployment", name, fmt.Sprintf(`apiVersion: apps/v1
kind: Deployment
metadata:
  name: %s
spec:
  replicas: %d
  selector:
    matchLabels:
      app: %s
  template:
    metadata:
      labels:
        app: %s
    spec:
      containers:
      - name: c
        image: %s
`, name, 1+r.Intn(4), name, name, images[r.Intn(len(images))])
	case 2:
		return "ConfigMap", name, fmt.Sprintf(`apiVersion: v1
kind: ConfigMap
metadata:
  name: %s
data:
  key: value-%d
`, name, r.Intn(10))
	default:
		return "Service", name, fmt.Sprintf(`apiVersion: v1
kind: Service
metadata:
  name: %s
spec:
  selector:
    app: %s
  ports:
  - port: %d
`, name, name, 80+r.Intn(1000))
	}
}

// TestPropertyApplyIsIdempotent: re-applying any manifest yields the
// same observable object and never duplicates derived pods.
func TestPropertyApplyIsIdempotent(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			kind, name, src := randomManifest(r)
			vals[0] = reflect.ValueOf(kind)
			vals[1] = reflect.ValueOf(name)
			vals[2] = reflect.ValueOf(src)
		},
	}
	prop := func(kind, name, src string) bool {
		c := NewCluster()
		if _, err := c.ApplyYAML(src, "default"); err != nil {
			t.Logf("first apply failed: %v\n%s", err, src)
			return false
		}
		c.AdvanceTime(10 * time.Second)
		before, ok1 := c.GetByName(kind, "default", name)
		podsBefore := len(c.List("pod", "default", ""))
		if _, err := c.ApplyYAML(src, "default"); err != nil {
			return false
		}
		c.AdvanceTime(10 * time.Second)
		after, ok2 := c.GetByName(kind, "default", name)
		podsAfter := len(c.List("pod", "default", ""))
		if !ok1 || !ok2 {
			return false
		}
		_ = before
		_ = after
		return podsBefore == podsAfter
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyDeleteRemovesEverything: after delete, neither the object
// nor any derived pod remains.
func TestPropertyDeleteRemovesEverything(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			kind, name, src := randomManifest(r)
			vals[0] = reflect.ValueOf(kind)
			vals[1] = reflect.ValueOf(name)
			vals[2] = reflect.ValueOf(src)
		},
	}
	prop := func(kind, name, src string) bool {
		c := NewCluster()
		if _, err := c.ApplyYAML(src, "default"); err != nil {
			return false
		}
		if err := c.Delete(kind, "default", name); err != nil {
			return false
		}
		if _, ok := c.GetByName(kind, "default", name); ok {
			return false
		}
		return len(c.List("pod", "default", "")) == 0
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyReadinessMonotone: once a pod reports Ready it stays
// Ready as time advances (no flapping in the virtual control plane).
func TestPropertyReadinessMonotone(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63n(int64(20 * time.Second)))
			vals[1] = reflect.ValueOf(r.Int63n(int64(20 * time.Second)))
		},
	}
	prop := func(d1, d2 int64) bool {
		c := NewCluster()
		if _, err := c.ApplyYAML(`apiVersion: v1
kind: Pod
metadata:
  name: mono
  labels:
    app: mono
spec:
  containers:
  - name: c
    image: nginx:latest
`, "default"); err != nil {
			return false
		}
		c.AdvanceTime(time.Duration(d1))
		n, _ := c.GetByName("pod", "default", "mono")
		readyBefore := HasCondition(n, "Ready")
		c.AdvanceTime(time.Duration(d2))
		n, _ = c.GetByName("pod", "default", "mono")
		readyAfter := HasCondition(n, "Ready")
		if readyBefore && !readyAfter {
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
