package kubesim

import (
	"fmt"
	"strings"

	"cloudeval/internal/yamlx"
)

// runControllers materializes the derived state a freshly applied object
// implies: workloads spawn pods, services acquire cluster IPs and node
// ports. Derived objects carry their owner so deletes cascade and
// re-applies replace.
func (c *Cluster) runControllers(obj *Object) {
	switch kindKey(obj.Kind) {
	case "pod":
		c.schedulePod(obj)
	case "deployment", "replicaset", "statefulset":
		c.reapOwnedPods(obj)
		replicas := int64(1)
		if r, ok := obj.Manifest.Path("spec", "replicas").AsInt(); ok {
			replicas = r
		}
		c.spawnPods(obj, int(replicas))
	case "daemonset":
		c.reapOwnedPods(obj)
		// A single-node cluster: one pod per daemonset.
		c.spawnPods(obj, 1)
	case "job":
		c.reapOwnedPods(obj)
		obj.DoneAt = c.now.Add(JobCompleteTime)
		c.spawnPods(obj, 1)
	case "service":
		c.initService(obj)
	}
}

// reapOwnedPods deletes pods owned by obj, for idempotent re-applies.
func (c *Cluster) reapOwnedPods(owner *Object) {
	bucket := c.bucket("pod")
	for k, p := range bucket {
		if p.OwnerKind == kindKey(owner.Kind) && p.OwnerName == owner.Name && p.Namespace == owner.Namespace {
			delete(bucket, k)
		}
	}
}

// spawnPods creates n pods from the workload's pod template.
func (c *Cluster) spawnPods(owner *Object, n int) {
	template := owner.Manifest.Path("spec", "template")
	if template == nil {
		return
	}
	hash := shortHash(owner.Name)
	for i := 0; i < n; i++ {
		pod := yamlx.Map()
		pod.Set("apiVersion", yamlx.String("v1"))
		pod.Set("kind", yamlx.String("Pod"))
		meta := yamlx.Map()
		podName := fmt.Sprintf("%s-%s-%d", owner.Name, hash, i)
		if kindKey(owner.Kind) == "statefulset" {
			podName = fmt.Sprintf("%s-%d", owner.Name, i)
		}
		meta.Set("name", yamlx.String(podName))
		meta.Set("namespace", yamlx.String(owner.Namespace))
		// The template's labels and spec subtrees are shared, not
		// cloned: pod manifests are never mutated after creation (only
		// service manifests are, in initService), so every replica can
		// reference the owner's template directly.
		if lbl := template.Path("metadata", "labels"); lbl != nil {
			meta.Set("labels", lbl)
		}
		pod.Set("metadata", meta)
		if spec := template.Get("spec"); spec != nil {
			pod.Set("spec", spec)
		}
		p := &Object{
			Manifest:  pod,
			Kind:      "Pod",
			Name:      podName,
			Namespace: owner.Namespace,
			CreatedAt: c.now,
			OwnerKind: kindKey(owner.Kind),
			OwnerName: owner.Name,
		}
		c.bucket("pod")[nsName(owner.Namespace, podName)] = p
		c.schedulePod(p)
	}
}

// schedulePod assigns IPs and the readiness timestamp, or marks the pod
// failed when its images cannot be pulled.
func (c *Cluster) schedulePod(p *Object) {
	p.PodIP = fmt.Sprintf("10.244.0.%d", c.nextPodIP)
	c.nextPodIP++
	if reason, bad := badImage(p.Manifest); bad {
		p.Failed = true
		p.FailMsg = reason
		c.Event("Failed to pull image for pod %s/%s: %s", p.Namespace, p.Name, reason)
		return
	}
	p.ReadyAt = p.CreatedAt.Add(PodReadyDelay)
}

func badImage(pod *yamlx.Node) (string, bool) {
	containers := pod.Path("spec", "containers")
	if containers == nil || containers.Kind != yamlx.SeqKind || len(containers.Items) == 0 {
		return "no containers in pod spec", true
	}
	for _, ct := range containers.Items {
		img := ct.Get("image")
		if img == nil || img.ScalarString() == "" {
			return "container has no image", true
		}
		s := img.ScalarString()
		if strings.ContainsAny(s, " \t") || strings.Contains(s, "://") {
			return fmt.Sprintf("invalid image reference %q", s), true
		}
	}
	return "", false
}

// initService assigns a cluster IP and node ports once, mutating the
// stored manifest so repeated gets are stable.
func (c *Cluster) initService(svc *Object) {
	spec := svc.Manifest.Get("spec")
	if spec == nil {
		spec = yamlx.Map()
		svc.Manifest.Set("spec", spec)
	}
	if spec.Get("clusterIP") == nil {
		c.nextPodIP++
		spec.Set("clusterIP", yamlx.String(fmt.Sprintf("10.96.0.%d", c.nextPodIP)))
	}
	typ := spec.Get("type").ScalarString()
	if typ == "NodePort" || typ == "LoadBalancer" {
		ports := spec.Get("ports")
		if ports != nil && ports.Kind == yamlx.SeqKind {
			for _, p := range ports.Items {
				if p.Get("nodePort") == nil {
					p.Set("nodePort", yamlx.Integer(int64(c.nextPort)))
					c.nextPort++
				}
			}
		}
	}
}

// withStatus decorates the stored manifest with the live status fields
// a kubectl user would see at the current virtual time. Only the spine
// is copied (root and metadata, via ShallowClone); all other subtrees
// are shared with the stored manifest, which is safe because every
// consumer of the returned document — table renderers, jsonpath,
// marshalers, condition checks — is read-only.
func (c *Cluster) withStatus(obj *Object) *yamlx.Node {
	n := obj.Manifest.ShallowClone()
	meta := n.Get("metadata")
	if meta == nil {
		meta = yamlx.Map()
	} else {
		meta = meta.ShallowClone()
	}
	n.Set("metadata", meta)
	if meta.Get("namespace") == nil && namespaced(obj.Kind) {
		meta.Set("namespace", yamlx.String(obj.Namespace))
	}
	if meta.Get("creationTimestamp") == nil {
		meta.Set("creationTimestamp", yamlx.String(obj.createdStamp()))
	}
	switch kindKey(obj.Kind) {
	case "pod":
		n.Set("status", c.podStatus(obj))
	case "deployment", "replicaset", "statefulset":
		n.Set("status", c.workloadStatus(obj, "Available"))
	case "daemonset":
		n.Set("status", c.daemonSetStatus(obj))
	case "job":
		n.Set("status", c.jobStatus(obj))
	case "service":
		n.Set("status", c.serviceStatus(obj))
	case "ingress":
		n.Set("status", c.ingressStatus(obj))
	}
	return n
}

func boolStatus(b bool) *yamlx.Node {
	if b {
		return yamlx.String("True")
	}
	return yamlx.String("False")
}

func condition(condType string, status bool) *yamlx.Node {
	m := yamlx.Map()
	m.Set("type", yamlx.String(condType))
	m.Set("status", boolStatus(status))
	return m
}

// PodReady reports whether a pod object is Ready at the current time.
func (c *Cluster) PodReady(obj *Object) bool {
	return !obj.Failed && !obj.ReadyAt.IsZero() && !c.now.Before(obj.ReadyAt)
}

// ObjectCondition reports whether a stored resource currently satisfies
// the named status condition — exactly the predicate that
// HasCondition(withStatus(obj), condType) computes, but evaluated
// directly on the object so the wait loop's polling never materializes
// status documents. TestObjectConditionMatchesStatus asserts the
// equivalence for every kind and condition the status builders emit.
func (c *Cluster) ObjectCondition(obj *Object, condType string) bool {
	switch kindKey(obj.Kind) {
	case "pod":
		switch {
		case strings.EqualFold(condType, "Ready"), strings.EqualFold(condType, "ContainersReady"):
			return c.PodReady(obj)
		case strings.EqualFold(condType, "Initialized"):
			return !obj.Failed
		case strings.EqualFold(condType, "PodScheduled"):
			return true
		}
	case "deployment", "replicaset", "statefulset":
		switch {
		case strings.EqualFold(condType, "Progressing"):
			return true
		case strings.EqualFold(condType, "Available"), strings.EqualFold(condType, "Ready"):
			return c.workloadAllReady(obj)
		}
	case "daemonset":
		if strings.EqualFold(condType, "Ready") {
			return c.readyOwnedPods(obj) >= 1
		}
	case "job":
		if strings.EqualFold(condType, "Complete") {
			return !obj.DoneAt.IsZero() && !c.now.Before(obj.DoneAt)
		}
	}
	return false
}

// workloadAllReady reports whether a workload's ready pods meet its
// desired replica count, the predicate behind its Available/Ready
// conditions.
func (c *Cluster) workloadAllReady(obj *Object) bool {
	desired := int64(1)
	if r, ok := obj.Manifest.Path("spec", "replicas").AsInt(); ok {
		desired = r
	}
	return c.readyOwnedPods(obj) >= desired && desired > 0
}

// readyOwnedPods counts the Ready pods a workload owns.
func (c *Cluster) readyOwnedPods(obj *Object) int64 {
	ready := int64(0)
	for _, p := range c.ownedPods(obj) {
		if c.PodReady(p) {
			ready++
		}
	}
	return ready
}

func (c *Cluster) podStatus(obj *Object) *yamlx.Node {
	st := yamlx.Map()
	ready := c.PodReady(obj)
	switch {
	case obj.Failed:
		st.Set("phase", yamlx.String("Pending"))
		st.Set("reason", yamlx.String("ErrImagePull"))
		st.Set("message", yamlx.String(obj.FailMsg))
	case ready:
		st.Set("phase", yamlx.String("Running"))
	default:
		st.Set("phase", yamlx.String("Pending"))
	}
	st.Set("hostIP", yamlx.String(NodeIP))
	st.Set("podIP", yamlx.String(obj.PodIP))
	conds := yamlx.Seq(
		condition("Initialized", !obj.Failed),
		condition("Ready", ready),
		condition("ContainersReady", ready),
		condition("PodScheduled", true),
	)
	st.Set("conditions", conds)
	ctStatuses := yamlx.Seq()
	if containers := obj.Manifest.Path("spec", "containers"); containers != nil {
		for _, ct := range containers.Items {
			cs := yamlx.Map()
			cs.Set("name", ct.Get("name").Clone())
			cs.Set("image", ct.Get("image").Clone())
			cs.Set("ready", yamlx.Boolean(ready))
			restarts := yamlx.Integer(0)
			cs.Set("restartCount", restarts)
			ctStatuses.Append(cs)
		}
	}
	st.Set("containerStatuses", ctStatuses)
	return st
}

func (c *Cluster) workloadStatus(obj *Object, condType string) *yamlx.Node {
	desired := int64(1)
	if r, ok := obj.Manifest.Path("spec", "replicas").AsInt(); ok {
		desired = r
	}
	ready := c.readyOwnedPods(obj)
	st := yamlx.Map()
	st.Set("replicas", yamlx.Integer(desired))
	st.Set("readyReplicas", yamlx.Integer(ready))
	st.Set("availableReplicas", yamlx.Integer(ready))
	st.Set("updatedReplicas", yamlx.Integer(desired))
	allReady := ready >= desired && desired > 0
	st.Set("conditions", yamlx.Seq(
		condition(condType, allReady),
		condition("Progressing", true),
		condition("Ready", allReady),
	))
	return st
}

func (c *Cluster) daemonSetStatus(obj *Object) *yamlx.Node {
	ready := c.readyOwnedPods(obj)
	st := yamlx.Map()
	st.Set("desiredNumberScheduled", yamlx.Integer(1))
	st.Set("currentNumberScheduled", yamlx.Integer(1))
	st.Set("numberReady", yamlx.Integer(ready))
	st.Set("conditions", yamlx.Seq(condition("Ready", ready >= 1)))
	return st
}

func (c *Cluster) jobStatus(obj *Object) *yamlx.Node {
	done := !obj.DoneAt.IsZero() && !c.now.Before(obj.DoneAt)
	st := yamlx.Map()
	if done {
		st.Set("succeeded", yamlx.Integer(1))
		st.Set("completionTime", yamlx.String(obj.DoneAt.Format("2006-01-02T15:04:05Z")))
	} else {
		st.Set("active", yamlx.Integer(1))
	}
	st.Set("conditions", yamlx.Seq(condition("Complete", done)))
	return st
}

func (c *Cluster) serviceStatus(obj *Object) *yamlx.Node {
	st := yamlx.Map()
	lb := yamlx.Map()
	typ := obj.Manifest.Path("spec", "type").ScalarString()
	if typ == "LoadBalancer" && !c.now.Before(obj.CreatedAt.Add(LBProvisionTime)) {
		ing := yamlx.Map()
		ing.Set("ip", yamlx.String(NodeIP))
		lb.Set("ingress", yamlx.Seq(ing))
	}
	st.Set("loadBalancer", lb)
	return st
}

func (c *Cluster) ingressStatus(obj *Object) *yamlx.Node {
	st := yamlx.Map()
	lb := yamlx.Map()
	if !c.now.Before(obj.CreatedAt.Add(LBProvisionTime)) {
		ing := yamlx.Map()
		ing.Set("ip", yamlx.String(NodeIP))
		lb.Set("ingress", yamlx.Seq(ing))
	}
	st.Set("loadBalancer", lb)
	return st
}

// ownedPods lists pod objects owned by a workload.
func (c *Cluster) ownedPods(owner *Object) []*Object {
	var out []*Object
	for _, p := range c.bucket("pod") {
		if p.OwnerKind == kindKey(owner.Kind) && p.OwnerName == owner.Name && p.Namespace == owner.Namespace {
			out = append(out, p)
		}
	}
	return out
}

// shortHash derives a stable 6-character suffix from a name, like the
// hashes in real pod names.
func shortHash(s string) string {
	const alphabet = "bcdfghjklmnpqrstvwxz2456789"
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	var out [6]byte
	for i := range out {
		out[i] = alphabet[h%uint32(len(alphabet))]
		h /= uint32(len(alphabet))
		if h == 0 {
			h = 7 + uint32(i)*31
		}
	}
	return string(out[:])
}
