package kubesim

import (
	"fmt"
	"strings"

	"cloudeval/internal/yamlx"
)

// HTTPProbe simulates an HTTP GET against the cluster's virtual data
// plane, the way the unit tests' "curl" observes deployments. It
// resolves, in order: pod hostPorts on the node IP, NodePort and
// LoadBalancer services on the node IP, pod IPs with containerPorts,
// service cluster IPs and DNS names. It returns the status code (200 on
// success, 503 when a service exists but has no ready endpoints) and a
// body; ok is false when nothing listens there at all (connection
// refused).
func (c *Cluster) HTTPProbe(host string, port int) (code int, body string, ok bool) {
	// Pod hostPort on the node address.
	if host == NodeIP {
		for _, p := range c.bucket("pod") {
			if pod := c.podListeningOnHostPort(p, port); pod != nil {
				return 200, serveBody(p), true
			}
		}
		// NodePort / LoadBalancer services.
		for _, s := range c.bucket("service") {
			spec := s.Manifest.Get("spec")
			typ := spec.Get("type").ScalarString()
			if typ != "NodePort" && typ != "LoadBalancer" {
				continue
			}
			if c.serviceHasPort(s, port, true) {
				return c.serveThroughService(s)
			}
			// A provisioned LoadBalancer also answers on its service port.
			if typ == "LoadBalancer" && !c.now.Before(s.CreatedAt.Add(LBProvisionTime)) && c.serviceHasPort(s, port, false) {
				return c.serveThroughService(s)
			}
		}
		return 0, "", false
	}
	// Direct pod IP.
	for _, p := range c.bucket("pod") {
		if p.PodIP == host {
			if c.podListeningOnContainerPort(p, port) {
				return 200, serveBody(p), true
			}
			return 0, "", false
		}
	}
	// Service by cluster IP or DNS name.
	if svc := c.resolveService(host); svc != nil {
		if c.serviceHasPort(svc, port, false) {
			return c.serveThroughService(svc)
		}
		return 0, "", false
	}
	return 0, "", false
}

func (c *Cluster) podListeningOnHostPort(p *Object, port int) *Object {
	if !c.PodReady(p) {
		return nil
	}
	for _, ct := range containerPorts(p.Manifest) {
		if ct.hostPort == port {
			return p
		}
	}
	return nil
}

func (c *Cluster) podListeningOnContainerPort(p *Object, port int) bool {
	if !c.PodReady(p) {
		return false
	}
	for _, ct := range containerPorts(p.Manifest) {
		if ct.containerPort == port {
			return true
		}
	}
	return false
}

type portPair struct {
	containerPort int
	hostPort      int
}

func containerPorts(pod *yamlx.Node) []portPair {
	var out []portPair
	containers := pod.Path("spec", "containers")
	if containers == nil {
		return nil
	}
	for _, ct := range containers.Items {
		ports := ct.Get("ports")
		if ports == nil || ports.Kind != yamlx.SeqKind {
			continue
		}
		for _, p := range ports.Items {
			var pp portPair
			if v, ok := p.Get("containerPort").AsInt(); ok {
				pp.containerPort = int(v)
			}
			if v, ok := p.Get("hostPort").AsInt(); ok {
				pp.hostPort = int(v)
			}
			out = append(out, pp)
		}
	}
	return out
}

// serviceHasPort reports whether a service exposes the port; nodePort
// selects matching against allocated node ports instead of service ports.
func (c *Cluster) serviceHasPort(s *Object, port int, nodePort bool) bool {
	ports := s.Manifest.Path("spec", "ports")
	if ports == nil || ports.Kind != yamlx.SeqKind {
		return false
	}
	field := "port"
	if nodePort {
		field = "nodePort"
	}
	for _, p := range ports.Items {
		if v, ok := p.Get(field).AsInt(); ok && int(v) == port {
			return true
		}
	}
	return false
}

func (c *Cluster) resolveService(host string) *Object {
	for _, s := range c.bucket("service") {
		if s.Manifest.Path("spec", "clusterIP").ScalarString() == host {
			return s
		}
		names := []string{
			s.Name,
			s.Name + "." + s.Namespace,
			s.Name + "." + s.Namespace + ".svc",
			s.Name + "." + s.Namespace + ".svc.cluster.local",
		}
		for _, n := range names {
			if host == n {
				return s
			}
		}
	}
	return nil
}

func (c *Cluster) serveThroughService(s *Object) (int, string, bool) {
	eps := c.ServiceEndpoints(s)
	if len(eps) == 0 {
		return 503, "no endpoints available for service " + s.Name, true
	}
	return 200, serveBody(eps[0]), true
}

// ServiceEndpoints lists the ready pods a service selects.
func (c *Cluster) ServiceEndpoints(s *Object) []*Object {
	sel := s.Manifest.Path("spec", "selector")
	if sel == nil || sel.Kind != yamlx.MapKind || len(sel.Entries) == 0 {
		return nil
	}
	want := map[string]string{}
	for _, e := range sel.Entries {
		want[e.Key] = e.Value.ScalarString()
	}
	var out []*Object
	for _, p := range c.bucket("pod") {
		if p.Namespace != s.Namespace || !c.PodReady(p) {
			continue
		}
		labels := labelsOf(p.Manifest)
		match := true
		for k, v := range want {
			if labels[k] != v {
				match = false
				break
			}
		}
		if match {
			out = append(out, p)
		}
	}
	return out
}

// EndpointsString renders a service's ready endpoints as kubectl
// describe shows them: "10.244.0.5:80,10.244.0.6:80".
func (c *Cluster) EndpointsString(s *Object) string {
	targetPort := 0
	if ports := s.Manifest.Path("spec", "ports"); ports != nil && len(ports.Items) > 0 {
		if v, ok := ports.Items[0].Get("targetPort").AsInt(); ok {
			targetPort = int(v)
		} else if v, ok := ports.Items[0].Get("port").AsInt(); ok {
			targetPort = int(v)
		}
	}
	var parts []string
	for _, p := range c.ServiceEndpoints(s) {
		parts = append(parts, fmt.Sprintf("%s:%d", p.PodIP, targetPort))
	}
	if len(parts) == 0 {
		return "<none>"
	}
	return strings.Join(parts, ",")
}

// ServiceURL resolves the externally reachable URL for a service the
// way "minikube service" does. Only NodePort and LoadBalancer services
// are reachable from outside the cluster.
func (c *Cluster) ServiceURL(ns, name string) (string, error) {
	if ns == "" {
		ns = "default"
	}
	s, ok := c.bucket("service")[nsName(ns, name)]
	if !ok {
		return "", fmt.Errorf("service %q not found in namespace %q", name, ns)
	}
	spec := s.Manifest.Get("spec")
	typ := spec.Get("type").ScalarString()
	if typ != "NodePort" && typ != "LoadBalancer" {
		return "", fmt.Errorf("service %s/%s has no node port", ns, name)
	}
	ports := spec.Get("ports")
	if ports == nil || len(ports.Items) == 0 {
		return "", fmt.Errorf("service %s/%s exposes no ports", ns, name)
	}
	np, _ := ports.Items[0].Get("nodePort").AsInt()
	return fmt.Sprintf("http://%s:%d", NodeIP, np), nil
}

// serveBody fabricates a response body hinting at the serving image, so
// tests can grep for application banners.
func serveBody(p *Object) string {
	img := p.Manifest.Path("spec", "containers", 0, "image").ScalarString()
	switch {
	case strings.Contains(img, "nginx"):
		return "<html><title>Welcome to nginx!</title></html>"
	case strings.Contains(img, "httpd"):
		return "<html><body><h1>It works!</h1></body></html>"
	case strings.Contains(img, "echo"):
		return "hello from " + p.Name
	default:
		return "OK " + p.Name
	}
}
