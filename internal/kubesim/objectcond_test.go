package kubesim

import (
	"testing"
	"time"
)

// TestObjectConditionMatchesStatus pins ObjectCondition — the fast
// predicate the wait loop polls — to HasCondition over the rendered
// status document, for every kind and condition the status builders
// emit, at times before and after each transition. If a status builder
// gains or changes a condition, this test forces ObjectCondition to
// follow.
func TestObjectConditionMatchesStatus(t *testing.T) {
	manifests := map[string]string{
		"pod": `apiVersion: v1
kind: Pod
metadata:
  name: probe
spec:
  containers:
  - name: c
    image: nginx
`,
		"pod-bad": `apiVersion: v1
kind: Pod
metadata:
  name: broken
spec:
  containers:
  - name: c
    image: "not a valid image"
`,
		"deployment": `apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: 2
  selector:
    matchLabels: {app: web}
  template:
    metadata:
      labels: {app: web}
    spec:
      containers:
      - name: web
        image: nginx
`,
		"statefulset": `apiVersion: apps/v1
kind: StatefulSet
metadata:
  name: db
spec:
  replicas: 1
  selector:
    matchLabels: {app: db}
  template:
    metadata:
      labels: {app: db}
    spec:
      containers:
      - name: db
        image: postgres:16
`,
		"daemonset": `apiVersion: apps/v1
kind: DaemonSet
metadata:
  name: agent
spec:
  selector:
    matchLabels: {app: agent}
  template:
    metadata:
      labels: {app: agent}
    spec:
      containers:
      - name: agent
        image: fluentd
`,
		"job": `apiVersion: batch/v1
kind: Job
metadata:
  name: once
spec:
  template:
    spec:
      containers:
      - name: run
        image: busybox
`,
		"service": `apiVersion: v1
kind: Service
metadata:
  name: svc
spec:
  selector: {app: web}
  ports:
  - port: 80
`,
	}
	conditions := []string{
		"Ready", "ContainersReady", "Initialized", "PodScheduled",
		"Available", "Progressing", "Complete", "ready", "COMPLETE",
		"Nonexistent",
	}
	// Probe instants: creation, mid-flight, after pod readiness, after
	// job completion.
	offsets := []time.Duration{0, time.Second, PodReadyDelay, JobCompleteTime, 10 * time.Second}

	c := NewCluster()
	for name, src := range manifests {
		if _, err := c.ApplyYAML(src, "default"); err != nil {
			t.Fatalf("apply %s: %v", name, err)
		}
	}
	for _, off := range offsets {
		c.AdvanceTime(off)
		for _, kind := range []string{"pod", "deployment", "statefulset", "daemonset", "job", "service", "replicaset"} {
			for _, obj := range c.ListObjects(kind, "*", "") {
				doc := c.withStatus(obj)
				for _, cond := range conditions {
					fast := c.ObjectCondition(obj, cond)
					slow := HasCondition(doc, cond)
					if fast != slow {
						t.Errorf("at +%v: %s %s condition %q: ObjectCondition=%v, HasCondition(withStatus)=%v",
							off, obj.Kind, obj.Name, cond, fast, slow)
					}
				}
			}
		}
	}
}
