package kubesim

import (
	"fmt"
	"strings"

	"cloudeval/internal/yamlx"
)

// Describe renders a "kubectl describe"-style text block for one
// resource. Only the fields the benchmark's unit tests grep for are
// guaranteed; the rest is a readable summary.
func (c *Cluster) Describe(kind, ns, name string) (string, error) {
	if !namespaced(kind) {
		ns = ""
	} else if ns == "" {
		ns = "default"
	}
	obj, ok := c.bucket(kind)[nsName(ns, name)]
	if !ok {
		return "", fmt.Errorf(`Error from server (NotFound): %s %q not found`, kindKey(kind), name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Name:             %s\n", obj.Name)
	if namespaced(kind) {
		fmt.Fprintf(&b, "Namespace:        %s\n", obj.Namespace)
	}
	labels := labelsOf(obj.Manifest)
	if len(labels) > 0 {
		var parts []string
		for _, k := range obj.Manifest.Path("metadata", "labels").Keys() {
			parts = append(parts, k+"="+labels[k])
		}
		fmt.Fprintf(&b, "Labels:           %s\n", strings.Join(parts, ","))
	} else {
		b.WriteString("Labels:           <none>\n")
	}
	if ann := obj.Manifest.Path("metadata", "annotations"); ann != nil && ann.Kind == yamlx.MapKind {
		b.WriteString("Annotations:      ")
		var parts []string
		for _, e := range ann.Entries {
			parts = append(parts, e.Key+": "+e.Value.ScalarString())
		}
		b.WriteString(strings.Join(parts, "\n                  ") + "\n")
	}
	switch kindKey(kind) {
	case "ingress":
		c.describeIngress(&b, obj)
	case "service":
		c.describeService(&b, obj)
	case "pod":
		c.describePod(&b, obj)
	case "deployment", "daemonset", "statefulset", "replicaset":
		c.describeWorkload(&b, obj)
	default:
		b.WriteString("Spec:\n")
		if spec := obj.Manifest.Get("spec"); spec != nil {
			indented(&b, yamlx.MarshalString(spec))
		}
	}
	b.WriteString("Events:           <none>\n")
	return b.String(), nil
}

func (c *Cluster) describeIngress(b *strings.Builder, obj *Object) {
	addr := ""
	if !c.now.Before(obj.CreatedAt.Add(LBProvisionTime)) {
		addr = NodeIP
	}
	fmt.Fprintf(b, "Address:          %s\n", addr)
	b.WriteString("Ingress Class:    nginx\n")
	b.WriteString("Default backend:  <default>\n")
	b.WriteString("Rules:\n")
	b.WriteString("  Host        Path  Backends\n")
	b.WriteString("  ----        ----  --------\n")
	rules := obj.Manifest.Path("spec", "rules")
	if rules == nil {
		return
	}
	for _, rule := range rules.Items {
		host := rule.Get("host").ScalarString()
		if host == "" {
			host = "*"
		}
		paths := rule.Path("http", "paths")
		if paths == nil {
			continue
		}
		for _, p := range paths.Items {
			path := p.Get("path").ScalarString()
			svcName := p.Path("backend", "service", "name").ScalarString()
			port := p.Path("backend", "service", "port", "number")
			portStr := port.ScalarString()
			if portStr == "" {
				portStr = p.Path("backend", "service", "port", "name").ScalarString()
			}
			// Resolve endpoints for the backend hint kubectl shows.
			epHint := "<error: services \"" + svcName + "\" not found>"
			if svc, ok := c.bucket("service")[nsName(obj.Namespace, svcName)]; ok {
				epHint = c.EndpointsString(svc)
			}
			fmt.Fprintf(b, "  %-10s  %-4s  %s:%s (%s)\n", host, path, svcName, portStr, epHint)
		}
	}
}

func (c *Cluster) describeService(b *strings.Builder, obj *Object) {
	spec := obj.Manifest.Get("spec")
	typ := spec.Get("type").ScalarString()
	if typ == "" {
		typ = "ClusterIP"
	}
	fmt.Fprintf(b, "Type:             %s\n", typ)
	fmt.Fprintf(b, "IP:               %s\n", spec.Get("clusterIP").ScalarString())
	if sel := spec.Get("selector"); sel != nil && sel.Kind == yamlx.MapKind {
		var parts []string
		for _, e := range sel.Entries {
			parts = append(parts, e.Key+"="+e.Value.ScalarString())
		}
		fmt.Fprintf(b, "Selector:         %s\n", strings.Join(parts, ","))
	}
	if typ == "LoadBalancer" && !c.now.Before(obj.CreatedAt.Add(LBProvisionTime)) {
		fmt.Fprintf(b, "LoadBalancer Ingress:  %s\n", NodeIP)
	}
	if ports := spec.Get("ports"); ports != nil {
		for _, p := range ports.Items {
			name := p.Get("name").ScalarString()
			if name == "" {
				name = "<unset>"
			}
			fmt.Fprintf(b, "Port:             %s  %s/TCP\n", name, p.Get("port").ScalarString())
			if tp := p.Get("targetPort"); tp != nil {
				fmt.Fprintf(b, "TargetPort:       %s/TCP\n", tp.ScalarString())
			}
			if np := p.Get("nodePort"); np != nil {
				fmt.Fprintf(b, "NodePort:         %s  %s/TCP\n", name, np.ScalarString())
			}
		}
	}
	fmt.Fprintf(b, "Endpoints:        %s\n", c.EndpointsString(obj))
}

func (c *Cluster) describePod(b *strings.Builder, obj *Object) {
	status := "Pending"
	if obj.Failed {
		status = "Pending (ErrImagePull)"
	} else if c.PodReady(obj) {
		status = "Running"
	}
	fmt.Fprintf(b, "Node:             minikube/%s\n", NodeIP)
	fmt.Fprintf(b, "Status:           %s\n", status)
	fmt.Fprintf(b, "IP:               %s\n", obj.PodIP)
	b.WriteString("Containers:\n")
	if containers := obj.Manifest.Path("spec", "containers"); containers != nil {
		for _, ct := range containers.Items {
			fmt.Fprintf(b, "  %s:\n    Image:  %s\n", ct.Get("name").ScalarString(), ct.Get("image").ScalarString())
			if ports := ct.Get("ports"); ports != nil {
				for _, p := range ports.Items {
					fmt.Fprintf(b, "    Port:   %s/TCP\n", p.Get("containerPort").ScalarString())
				}
			}
		}
	}
}

func (c *Cluster) describeWorkload(b *strings.Builder, obj *Object) {
	desired := int64(1)
	if r, ok := obj.Manifest.Path("spec", "replicas").AsInt(); ok {
		desired = r
	}
	ready := 0
	for _, p := range c.ownedPods(obj) {
		if c.PodReady(p) {
			ready++
		}
	}
	fmt.Fprintf(b, "Replicas:         %d desired | %d ready\n", desired, ready)
	if img := obj.Manifest.Path("spec", "template", "spec", "containers", 0, "image"); img != nil {
		fmt.Fprintf(b, "Image:            %s\n", img.ScalarString())
	}
}

func indented(b *strings.Builder, s string) {
	for _, ln := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		b.WriteString("  " + ln + "\n")
	}
}
