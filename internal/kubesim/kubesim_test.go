package kubesim

import (
	"strings"
	"testing"
	"time"

	"cloudeval/internal/jsonpath"
)

const nginxDeployment = `apiVersion: apps/v1
kind: Deployment
metadata:
  name: nginx-deployment
spec:
  replicas: 3
  selector:
    matchLabels:
      app: nginx
  template:
    metadata:
      labels:
        app: nginx
    spec:
      containers:
      - name: nginx-container
        image: nginx:latest
        ports:
        - containerPort: 80
`

const nginxLBService = `apiVersion: v1
kind: Service
metadata:
  name: nginx-service
spec:
  selector:
    app: nginx
  ports:
  - name: http
    port: 80
    targetPort: 80
  type: LoadBalancer
`

const registryDaemonSet = `apiVersion: apps/v1
kind: DaemonSet
metadata:
  name: kube-registry-proxy
spec:
  selector:
    matchLabels:
      app: kube-registry
  template:
    metadata:
      labels:
        app: kube-registry
    spec:
      containers:
      - name: kube-registry-proxy
        image: nginx:latest
        env:
        - name: REGISTRY_HOST
          value: kube-registry.svc.cluster.local
        - name: REGISTRY_PORT
          value: "5000"
        resources:
          limits:
            cpu: 100m
            memory: 50Mi
        ports:
        - name: registry
          containerPort: 80
          hostPort: 5000
`

func TestApplyDeploymentCreatesPods(t *testing.T) {
	c := NewCluster()
	res, err := c.ApplyYAML(nginxDeployment, "default")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || !res[0].Created {
		t.Fatalf("apply results = %+v", res)
	}
	pods := c.List("pods", "default", "app=nginx")
	if len(pods) != 3 {
		t.Fatalf("got %d pods, want 3", len(pods))
	}
	// Not ready yet: no time has passed.
	for _, p := range pods {
		if HasCondition(p, "Ready") {
			t.Error("pod should not be Ready at t=0")
		}
	}
	c.AdvanceTime(PodReadyDelay)
	for _, p := range c.List("pods", "default", "app=nginx") {
		if !HasCondition(p, "Ready") {
			t.Error("pod should be Ready after the readiness delay")
		}
	}
}

func TestWaitForPodsReady(t *testing.T) {
	c := NewCluster()
	if _, err := c.ApplyYAML(nginxDeployment, "default"); err != nil {
		t.Fatal(err)
	}
	start := c.Now()
	err := c.WaitFor(WaitOptions{Kind: "pod", Namespace: "default", Selector: "app=nginx", Condition: "Ready", Timeout: 60 * time.Second})
	if err != nil {
		t.Fatalf("wait failed: %v", err)
	}
	if elapsed := c.Now().Sub(start); elapsed > 10*time.Second {
		t.Errorf("wait advanced %v of virtual time, want about %v", elapsed, PodReadyDelay)
	}
}

func TestWaitTimesOut(t *testing.T) {
	c := NewCluster()
	err := c.WaitFor(WaitOptions{Kind: "pod", Selector: "app=missing", Condition: "Ready", Timeout: 5 * time.Second})
	if err == nil {
		t.Fatal("wait on nothing should error")
	}
	if !strings.Contains(err.Error(), "no matching resources") {
		t.Errorf("err = %v", err)
	}
}

func TestDeploymentAvailableCondition(t *testing.T) {
	c := NewCluster()
	if _, err := c.ApplyYAML(nginxDeployment, "default"); err != nil {
		t.Fatal(err)
	}
	err := c.WaitFor(WaitOptions{Kind: "deployment", Namespace: "default", All: true, Condition: "available", Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("deployment never became available: %v", err)
	}
}

func TestServiceEndpointsAndURL(t *testing.T) {
	c := NewCluster()
	if _, err := c.ApplyYAML(nginxDeployment, "default"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ApplyYAML(nginxLBService, "default"); err != nil {
		t.Fatal(err)
	}
	c.AdvanceTime(10 * time.Second)
	url, err := c.ServiceURL("default", "nginx-service")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(url, "http://"+NodeIP+":3") {
		t.Errorf("url = %q", url)
	}
	svc, _ := c.bucket("service")[nsName("default", "nginx-service")]
	if got := len(c.ServiceEndpoints(svc)); got != 3 {
		t.Errorf("endpoints = %d, want 3", got)
	}
	// LB answers on its service port at the node IP.
	code, body, ok := c.HTTPProbe(NodeIP, 80)
	if !ok || code != 200 {
		t.Errorf("probe = %d %v", code, ok)
	}
	if !strings.Contains(body, "nginx") {
		t.Errorf("body = %q", body)
	}
}

func TestServiceWithoutEndpointsIs503(t *testing.T) {
	c := NewCluster()
	if _, err := c.ApplyYAML(nginxLBService, "default"); err != nil {
		t.Fatal(err)
	}
	c.AdvanceTime(10 * time.Second)
	code, _, ok := c.HTTPProbe(NodeIP, 80)
	if !ok || code != 503 {
		t.Errorf("probe with no endpoints = %d %v, want 503", code, ok)
	}
}

func TestDaemonSetHostPortProbe(t *testing.T) {
	c := NewCluster()
	if _, err := c.ApplyYAML(registryDaemonSet, "default"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitFor(WaitOptions{Kind: "pod", Namespace: "default", Selector: "app=kube-registry", Condition: "Ready", Timeout: 60 * time.Second}); err != nil {
		t.Fatal(err)
	}
	pods := c.List("pods", "default", "app=kube-registry")
	if len(pods) != 1 {
		t.Fatalf("daemonset pods = %d, want 1 on single-node cluster", len(pods))
	}
	hostIP, err := jsonpath.Eval(pods[0], "{.status.hostIP}")
	if err != nil || hostIP != NodeIP {
		t.Fatalf("hostIP = %q, %v", hostIP, err)
	}
	code, _, ok := c.HTTPProbe(hostIP, 5000)
	if !ok || code != 200 {
		t.Errorf("hostPort probe = %d %v, want 200", code, ok)
	}
	if _, _, ok := c.HTTPProbe(hostIP, 5001); ok {
		t.Error("probe on unexposed port should refuse")
	}
}

func TestJSONPathOverListNode(t *testing.T) {
	c := NewCluster()
	if _, err := c.ApplyYAML(registryDaemonSet, "default"); err != nil {
		t.Fatal(err)
	}
	c.AdvanceTime(5 * time.Second)
	list := c.ListNode("pods", "default", "app=kube-registry")
	envNames, err := jsonpath.Eval(list, "{.items[0].spec.containers[0].env[*].name}")
	if err != nil {
		t.Fatal(err)
	}
	if envNames != "REGISTRY_HOST REGISTRY_PORT" {
		t.Errorf("env names = %q", envNames)
	}
	cpu, _ := jsonpath.Eval(list, "{.items[0].spec.containers[0].resources.limits.cpu}")
	if cpu != "100m" {
		t.Errorf("cpu = %q", cpu)
	}
}

func TestNamespaces(t *testing.T) {
	c := NewCluster()
	if err := c.CreateNamespace("development"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateNamespace("development"); err == nil {
		t.Error("duplicate namespace should error")
	}
	rb := `apiVersion: rbac.authorization.k8s.io/v1
kind: RoleBinding
metadata:
  name: read-secrets
  namespace: development
subjects:
- kind: User
  name: dave
  apiGroup: rbac.authorization.k8s.io
roleRef:
  kind: ClusterRole
  name: secret-reader
  apiGroup: rbac.authorization.k8s.io
`
	if _, err := c.ApplyYAML(rb, "default"); err != nil {
		t.Fatal(err)
	}
	n, ok := c.GetByName("rolebinding", "development", "read-secrets")
	if !ok {
		t.Fatal("rolebinding not stored in its namespace")
	}
	subj, _ := jsonpath.Eval(n, "{.subjects[0].name}")
	if subj != "dave" {
		t.Errorf("subject = %q", subj)
	}
	// Applying into a namespace that does not exist fails.
	c2 := NewCluster()
	if _, err := c2.ApplyYAML(rb, "default"); err == nil {
		t.Error("apply into missing namespace should fail")
	}
}

func TestDeleteCascades(t *testing.T) {
	c := NewCluster()
	if _, err := c.ApplyYAML(nginxDeployment, "default"); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("deployment", "default", "nginx-deployment"); err != nil {
		t.Fatal(err)
	}
	if pods := c.List("pods", "default", ""); len(pods) != 0 {
		t.Errorf("pods after delete = %d, want 0", len(pods))
	}
}

func TestReapplyReplacesPods(t *testing.T) {
	c := NewCluster()
	if _, err := c.ApplyYAML(nginxDeployment, "default"); err != nil {
		t.Fatal(err)
	}
	scaled := strings.Replace(nginxDeployment, "replicas: 3", "replicas: 2", 1)
	res, err := c.ApplyYAML(scaled, "default")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Created {
		t.Error("re-apply should report configured, not created")
	}
	if pods := c.List("pods", "default", "app=nginx"); len(pods) != 2 {
		t.Errorf("pods after scale down = %d, want 2", len(pods))
	}
}

func TestJobCompletes(t *testing.T) {
	c := NewCluster()
	job := `apiVersion: batch/v1
kind: Job
metadata:
  name: pi
spec:
  template:
    spec:
      containers:
      - name: pi
        image: perl:5.34.0
      restartPolicy: Never
`
	if _, err := c.ApplyYAML(job, "default"); err != nil {
		t.Fatal(err)
	}
	n, _ := c.GetByName("job", "default", "pi")
	if HasCondition(n, "Complete") {
		t.Error("job complete at t=0")
	}
	if err := c.WaitFor(WaitOptions{Kind: "job", Namespace: "default", Names: []string{"pi"}, Condition: "complete", Timeout: 30 * time.Second}); err != nil {
		t.Fatalf("job never completed: %v", err)
	}
	n, _ = c.GetByName("job", "default", "pi")
	succeeded, _ := jsonpath.Eval(n, "{.status.succeeded}")
	if succeeded != "1" {
		t.Errorf("succeeded = %q", succeeded)
	}
}

func TestBadImageNeverReady(t *testing.T) {
	c := NewCluster()
	pod := `apiVersion: v1
kind: Pod
metadata:
  name: broken
spec:
  containers:
  - name: app
    image: "not a valid image"
`
	if _, err := c.ApplyYAML(pod, "default"); err != nil {
		t.Fatal(err)
	}
	err := c.WaitFor(WaitOptions{Kind: "pod", Namespace: "default", Names: []string{"broken"}, Condition: "Ready", Timeout: 10 * time.Second})
	if err == nil {
		t.Error("pod with bad image should never become Ready")
	}
	n, _ := c.GetByName("pod", "default", "broken")
	phase, _ := jsonpath.Eval(n, "{.status.phase}")
	if phase != "Pending" {
		t.Errorf("phase = %q", phase)
	}
}

func TestValidateIngressStrictDecoding(t *testing.T) {
	c := NewCluster()
	legacy := `apiVersion: networking.k8s.io/v1
kind: Ingress
metadata:
  name: test-ingress
spec:
  rules:
  - http:
      paths:
      - path: /
        backend:
          serviceName: test-app
          servicePort: 5000
`
	_, err := c.ApplyYAML(legacy, "default")
	if err == nil || !strings.Contains(err.Error(), "strict decoding error") {
		t.Fatalf("legacy ingress error = %v", err)
	}
	fixed := `apiVersion: networking.k8s.io/v1
kind: Ingress
metadata:
  name: minimal-ingress
  annotations:
    nginx.ingress.kubernetes.io/rewrite-target: /
spec:
  rules:
  - http:
      paths:
      - path: /
        pathType: Prefix
        backend:
          service:
            name: test-app
            port:
              number: 5000
`
	if _, err := c.ApplyYAML(fixed, "default"); err != nil {
		t.Fatalf("fixed ingress rejected: %v", err)
	}
	out, err := c.Describe("ingress", "default", "minimal-ingress")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "test-app:5000") {
		t.Errorf("describe missing backend:\n%s", out)
	}
}

func TestValidateWorkloadSelectorMismatch(t *testing.T) {
	c := NewCluster()
	bad := strings.Replace(nginxDeployment, "app: nginx\n  template", "app: other\n  template", 1)
	if _, err := c.ApplyYAML(bad, "default"); err == nil {
		t.Error("selector/template mismatch should be rejected")
	}
}

func TestValidateMissingKind(t *testing.T) {
	c := NewCluster()
	if _, err := c.ApplyYAML("metadata:\n  name: x\n", "default"); err == nil {
		t.Error("manifest without kind should fail")
	}
	if _, err := c.ApplyYAML("kind: Pod\nmetadata:\n  name: x\n", "default"); err == nil {
		t.Error("manifest without apiVersion should fail")
	}
	if _, err := c.ApplyYAML("apiVersion: v1\nkind: Pod\nmetadata: {}\n", "default"); err == nil {
		t.Error("manifest without name should fail")
	}
}

func TestValidateWrongAPIVersion(t *testing.T) {
	c := NewCluster()
	old := strings.Replace(nginxDeployment, "apps/v1", "extensions/v1beta1", 1)
	_, err := c.ApplyYAML(old, "default")
	if err == nil || !strings.Contains(err.Error(), "no matches for kind") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateEnvNumberValue(t *testing.T) {
	c := NewCluster()
	pod := `apiVersion: v1
kind: Pod
metadata:
  name: envpod
spec:
  containers:
  - name: app
    image: nginx
    env:
    - name: PORT
      value: 5000
`
	if _, err := c.ApplyYAML(pod, "default"); err == nil {
		t.Error("unquoted numeric env value must fail strict decoding")
	}
	quoted := strings.Replace(pod, "value: 5000", `value: "5000"`, 1)
	if _, err := c.ApplyYAML(quoted, "default"); err != nil {
		t.Errorf("quoted env value rejected: %v", err)
	}
}

func TestKindAliases(t *testing.T) {
	for _, alias := range []string{"pod", "pods", "po", "Pod", "PODS"} {
		if kindKey(alias) != "pod" {
			t.Errorf("kindKey(%q) = %q", alias, kindKey(alias))
		}
	}
	for _, alias := range []string{"svc", "service", "services", "Service"} {
		if kindKey(alias) != "service" {
			t.Errorf("kindKey(%q) = %q", alias, kindKey(alias))
		}
	}
	if kindKey("ingress") != "ingress" || kindKey("ing") != "ingress" {
		t.Error("ingress alias broken")
	}
	if kindKey("deploy") != "deployment" || kindKey("deployments") != "deployment" {
		t.Error("deployment alias broken")
	}
}

func TestDescribeService(t *testing.T) {
	c := NewCluster()
	if _, err := c.ApplyYAML(nginxDeployment, "default"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ApplyYAML(nginxLBService, "default"); err != nil {
		t.Fatal(err)
	}
	c.AdvanceTime(10 * time.Second)
	out, err := c.Describe("svc", "default", "nginx-service")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Type:             LoadBalancer", "Selector:         app=nginx", "LoadBalancer Ingress"} {
		if !strings.Contains(out, want) {
			t.Errorf("describe missing %q:\n%s", want, out)
		}
	}
}

func TestStatefulSetPodNames(t *testing.T) {
	c := NewCluster()
	sts := `apiVersion: apps/v1
kind: StatefulSet
metadata:
  name: web
spec:
  replicas: 2
  selector:
    matchLabels:
      app: web
  template:
    metadata:
      labels:
        app: web
    spec:
      containers:
      - name: nginx
        image: nginx
`
	if _, err := c.ApplyYAML(sts, "default"); err != nil {
		t.Fatal(err)
	}
	pods := c.List("pod", "default", "app=web")
	if len(pods) != 2 {
		t.Fatalf("pods = %d", len(pods))
	}
	name0, _ := jsonpath.Eval(pods[0], "{.metadata.name}")
	if name0 != "web-0" {
		t.Errorf("statefulset pod name = %q, want web-0", name0)
	}
}
