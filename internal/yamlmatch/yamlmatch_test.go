package yamlmatch

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"cloudeval/internal/yamlx"
)

const labeledDaemonSet = `apiVersion: apps/v1
kind: DaemonSet
metadata:
  name: kube-registry-proxy-modified # *
spec:
  selector:
    matchLabels:
      app: kube-registry-modified
  template:
    metadata:
      labels:
        app: kube-registry-modified
    spec:
      containers:
      - name: kube-registry-proxy-modified # *
        image: nginx:latest
        resources:
          limits:
            cpu: 100m
            memory: 50Mi
        env:
        - name: REGISTRY_HOST
          value: kube-registry-modified.svc.cluster.local
        - name: REGISTRY_PORT
          value: "5000"
        ports:
        - name: registry # *
          containerPort: 80
          hostPort: 5000
`

func TestParseLabel(t *testing.T) {
	cases := []struct {
		comment string
		kind    LabelKind
		values  []string
	}{
		{"*", WildcardLabel, nil},
		{"", ExactLabel, nil},
		{"just a note", ExactLabel, nil},
		{"v in [2, 3, 4]", SetLabel, []string{"2", "3", "4"}},
		{"v in ['20.04', '22.04']", SetLabel, []string{"20.04", "22.04"}},
	}
	for _, c := range cases {
		l := ParseLabel(c.comment)
		if l.Kind != c.kind {
			t.Errorf("ParseLabel(%q).Kind = %v, want %v", c.comment, l.Kind, c.kind)
		}
		if !reflect.DeepEqual(l.Values, c.values) {
			t.Errorf("ParseLabel(%q).Values = %v, want %v", c.comment, l.Values, c.values)
		}
	}
}

func TestLabelMatch(t *testing.T) {
	if !(Label{Kind: WildcardLabel}).Match("anything", "ref") {
		t.Error("wildcard should match anything")
	}
	set := Label{Kind: SetLabel, Values: []string{"20.04", "22.04"}}
	if !set.Match("20.04", "22.04") || set.Match("18.04", "22.04") {
		t.Error("set label misbehaves")
	}
	exact := Label{}
	if !exact.Match("x", "x") || exact.Match("x", "y") {
		t.Error("exact label misbehaves")
	}
}

func TestKVExactMatchOrderInsensitive(t *testing.T) {
	a := "kind: Service\nmetadata:\n  name: svc\n"
	b := "metadata:\n  name: svc\nkind: Service\n"
	if KVExactMatch(a, b) != 1 {
		t.Error("key order should not matter")
	}
	c := "kind: Service\nmetadata:\n  name: other\n"
	if KVExactMatch(a, c) != 0 {
		t.Error("different values must not match")
	}
}

func TestKVExactMatchUnparsable(t *testing.T) {
	if KVExactMatch("{{{{", "kind: Pod") != 0 {
		t.Error("unparsable generated YAML scores 0")
	}
}

func TestKVExactMatchMultiDoc(t *testing.T) {
	two := "kind: Service\n---\nkind: Deployment\n"
	if KVExactMatch(two, two) != 1 {
		t.Error("identical multi-doc should match")
	}
	if KVExactMatch(two, "kind: Service\n") != 0 {
		t.Error("doc count mismatch must fail")
	}
}

func TestKVWildcardPerfect(t *testing.T) {
	if got := KVWildcardMatch(StripLabels(labeledDaemonSet), labeledDaemonSet); got != 1 {
		t.Errorf("reference against itself = %v, want 1", got)
	}
}

func TestKVWildcardHonorsWildcardLabel(t *testing.T) {
	gen := strings.ReplaceAll(StripLabels(labeledDaemonSet), "kube-registry-proxy-modified", "my-own-name")
	got := KVWildcardMatch(gen, labeledDaemonSet)
	if got != 1 {
		t.Errorf("wildcard-labeled names changed = %v, want 1", got)
	}
}

func TestKVWildcardPenalizesExactFields(t *testing.T) {
	gen := strings.ReplaceAll(StripLabels(labeledDaemonSet), "nginx:latest", "httpd:latest")
	got := KVWildcardMatch(gen, labeledDaemonSet)
	if got >= 1 || got < 0.8 {
		t.Errorf("one wrong leaf of ~13 = %v, want just below 1", got)
	}
}

func TestKVWildcardSetLabel(t *testing.T) {
	ref := "image: ubuntu:22.04 # v in ['ubuntu:20.04', 'ubuntu:22.04']\n"
	if got := KVWildcardMatch("image: ubuntu:20.04\n", ref); got != 1 {
		t.Errorf("in-set value = %v, want 1", got)
	}
	if got := KVWildcardMatch("image: ubuntu:18.04\n", ref); got != 0 {
		t.Errorf("out-of-set value = %v, want 0", got)
	}
}

func TestKVWildcardMissingAndExtra(t *testing.T) {
	ref := "a: 1\nb: 2\n"
	// Missing one leaf: intersection 1, union 2.
	if got := KVWildcardMatch("a: 1\n", ref); got != 0.5 {
		t.Errorf("missing leaf = %v, want 0.5", got)
	}
	// Extra leaf: intersection 2, union 3.
	if got := KVWildcardMatch("a: 1\nb: 2\nc: 3\n", ref); got < 0.66 || got > 0.67 {
		t.Errorf("extra leaf = %v, want 2/3", got)
	}
}

func TestKVWildcardUnparsableGen(t *testing.T) {
	if KVWildcardMatch(":::{bad", "a: 1\n") != 0 {
		t.Error("unparsable generated YAML scores 0")
	}
}

func TestFlattenPaths(t *testing.T) {
	n, err := yamlx.ParseString("spec:\n  containers:\n  - name: web\n    ports:\n    - containerPort: 80\n")
	if err != nil {
		t.Fatal(err)
	}
	leaves := Flatten(n)
	want := map[string]string{
		"spec.containers[0].name":                   "web",
		"spec.containers[0].ports[0].containerPort": "80",
	}
	if len(leaves) != len(want) {
		t.Fatalf("got %d leaves: %+v", len(leaves), leaves)
	}
	for _, l := range leaves {
		if want[l.Path] != l.Value {
			t.Errorf("leaf %q = %q, want %q", l.Path, l.Value, want[l.Path])
		}
	}
}

func TestFlattenEmptyContainers(t *testing.T) {
	n, _ := yamlx.ParseString("a: {}\nb: []\n")
	leaves := Flatten(n)
	if len(leaves) != 2 {
		t.Fatalf("got %d leaves, want 2 structural leaves", len(leaves))
	}
}

func TestStripLabels(t *testing.T) {
	out := StripLabels(labeledDaemonSet)
	if strings.Contains(out, "# *") {
		t.Error("wildcard labels should be stripped")
	}
	// Plain comments and quoted hashes survive.
	src := "a: 1 # keep me\nb: \"x # y\"\n"
	if got := StripLabels(src); got != src {
		t.Errorf("non-label content changed: %q", got)
	}
	// The stripped text must still parse identically.
	n1, err1 := yamlx.ParseString(labeledDaemonSet)
	n2, err2 := yamlx.ParseString(out)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !yamlx.Equal(n1, n2) {
		t.Error("StripLabels altered semantics")
	}
}

func randomYAMLPair(r *rand.Rand) (string, string) {
	keys := []string{"a", "b", "c", "d", "e"}
	build := func() string {
		var sb strings.Builder
		for _, k := range keys {
			if r.Intn(3) == 0 {
				continue
			}
			sb.WriteString(k)
			sb.WriteString(": ")
			sb.WriteString([]string{"1", "2", "x", "y"}[r.Intn(4)])
			sb.WriteString("\n")
		}
		return sb.String()
	}
	return build(), build()
}

func TestPropertyWildcardBounds(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 400,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			g, ref := randomYAMLPair(r)
			vals[0] = reflect.ValueOf(g)
			vals[1] = reflect.ValueOf(ref)
		},
	}
	prop := func(gen, ref string) bool {
		s := KVWildcardMatch(gen, ref)
		if s < 0 || s > 1 {
			return false
		}
		// Self-match is always 1; exact match implies wildcard match 1.
		if KVExactMatch(gen, ref) == 1 && s != 1 {
			return false
		}
		return KVWildcardMatch(ref, ref) == 1
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyExactImpliesWildcard(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			g, _ := randomYAMLPair(r)
			vals[0] = reflect.ValueOf(g)
		},
	}
	prop := func(doc string) bool {
		return KVExactMatch(doc, doc) == 1 && KVWildcardMatch(doc, doc) == 1
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
