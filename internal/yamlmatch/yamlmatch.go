// Package yamlmatch implements the YAML-aware scores of CloudEval-YAML
// (§3.2): key-value exact match and key-value wildcard match.
//
// Reference YAML files carry match labels as trailing comments:
//
//	name: kube-registry-proxy   # *                     (wildcard match)
//	image: ubuntu:22.04         # v in ['20.04','22.04'] (conditional)
//	replicas: 3                                          (exact, default)
//
// The wildcard score loads both files into trees, marks reference leaves
// with their label kind, and computes the IoU (intersection over union)
// of matched leaves, per the paper.
package yamlmatch

import (
	"strings"

	"cloudeval/internal/yamlx"
)

// LabelKind describes how a reference leaf is compared.
type LabelKind int

// Label kinds.
const (
	ExactLabel    LabelKind = iota // default: values must be equal
	WildcardLabel                  // "# *": any value matches
	SetLabel                       // "# v in [a, b]": value must be in set
)

// Label is a parsed reference-YAML match label.
type Label struct {
	Kind   LabelKind
	Values []string // SetLabel only: allowed scalar renderings
}

// ParseLabel interprets a trailing comment as a match label. Comments
// that are not labels parse as ExactLabel.
func ParseLabel(comment string) Label {
	c := strings.TrimSpace(comment)
	if c == "*" {
		return Label{Kind: WildcardLabel}
	}
	if rest, ok := strings.CutPrefix(c, "v in "); ok {
		rest = strings.TrimSpace(rest)
		if strings.HasPrefix(rest, "[") {
			if n, err := yamlx.ParseString("vals: " + rest); err == nil {
				vals := n.Get("vals")
				if vals != nil && vals.Kind == yamlx.SeqKind {
					var out []string
					for _, it := range vals.Items {
						out = append(out, it.ScalarString())
					}
					return Label{Kind: SetLabel, Values: out}
				}
			}
		}
	}
	return Label{Kind: ExactLabel}
}

// Match reports whether a generated scalar rendering satisfies the label
// against the reference scalar rendering.
func (l Label) Match(genValue, refValue string) bool {
	switch l.Kind {
	case WildcardLabel:
		return true
	case SetLabel:
		for _, v := range l.Values {
			if genValue == v {
				return true
			}
		}
		return false
	default:
		return genValue == refValue
	}
}

// KVExactMatch loads both YAML texts and reports 1 when they are
// semantically identical (mapping order ignored, labels ignored), 0
// otherwise — including when either side fails to parse.
func KVExactMatch(generated, reference string) float64 {
	g, err := yamlx.ParseAllCached([]byte(generated))
	if err != nil {
		return 0
	}
	r, err := yamlx.ParseAllCached([]byte(reference))
	if err != nil {
		return 0
	}
	g, r = dropNullDocs(g), dropNullDocs(r)
	if len(g) != len(r) {
		return 0
	}
	for i := range g {
		if !yamlx.Equal(g[i], r[i]) {
			return 0
		}
	}
	return 1
}

func dropNullDocs(docs []*yamlx.Node) []*yamlx.Node {
	var out []*yamlx.Node
	for _, d := range docs {
		if d != nil && d.Kind != yamlx.NullKind {
			out = append(out, d)
		}
	}
	return out
}

// Leaf is a flattened scalar position in a YAML tree.
type Leaf struct {
	Path  string
	Value string
	Label Label
}

// Flatten lists every scalar leaf of a tree with its dotted path.
// Sequence elements use [i] path segments. Empty maps/seqs count as a
// single leaf so structural presence is scored.
func Flatten(n *yamlx.Node) []Leaf {
	var out []Leaf
	flattenInto(n, "", &out)
	return out
}

func flattenInto(n *yamlx.Node, path string, out *[]Leaf) {
	if n == nil {
		return
	}
	switch n.Kind {
	case yamlx.MapKind:
		if len(n.Entries) == 0 {
			*out = append(*out, Leaf{Path: path, Value: "{}", Label: ParseLabel(n.Comment)})
			return
		}
		for _, e := range n.Entries {
			p := e.Key
			if path != "" {
				p = path + "." + e.Key
			}
			flattenInto(e.Value, p, out)
		}
	case yamlx.SeqKind:
		if len(n.Items) == 0 {
			*out = append(*out, Leaf{Path: path, Value: "[]", Label: ParseLabel(n.Comment)})
			return
		}
		for i, it := range n.Items {
			flattenInto(it, path+"["+itoa(i)+"]", out)
		}
	default:
		*out = append(*out, Leaf{Path: path, Value: n.ScalarString(), Label: ParseLabel(n.Comment)})
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

// KVWildcardMatch computes the IoU of matched leaves between generated
// and reference YAML, honoring reference labels. It returns 0 when the
// generated text does not parse.
func KVWildcardMatch(generated, reference string) float64 {
	gDocs, err := yamlx.ParseAllCached([]byte(generated))
	if err != nil {
		return 0
	}
	rDocs, err := yamlx.ParseAllCached([]byte(reference))
	if err != nil {
		return 0
	}
	gDocs, rDocs = dropNullDocs(gDocs), dropNullDocs(rDocs)
	var gen, ref []Leaf
	for i, d := range gDocs {
		prefix := docPrefix(i, len(gDocs))
		for _, l := range Flatten(d) {
			l.Path = prefix + l.Path
			gen = append(gen, l)
		}
	}
	for i, d := range rDocs {
		prefix := docPrefix(i, len(rDocs))
		for _, l := range Flatten(d) {
			l.Path = prefix + l.Path
			ref = append(ref, l)
		}
	}
	return leafIoU(gen, ref)
}

func docPrefix(i, total int) string {
	if total <= 1 {
		return ""
	}
	return "doc[" + itoa(i) + "]."
}

func leafIoU(gen, ref []Leaf) float64 {
	if len(gen) == 0 && len(ref) == 0 {
		return 1
	}
	genByPath := make(map[string][]Leaf, len(gen))
	for _, l := range gen {
		genByPath[l.Path] = append(genByPath[l.Path], l)
	}
	matched := 0
	for _, rl := range ref {
		cands := genByPath[rl.Path]
		for i, gl := range cands {
			if rl.Label.Match(gl.Value, rl.Value) {
				matched++
				// Consume the matched generated leaf.
				genByPath[rl.Path] = append(cands[:i:i], cands[i+1:]...)
				break
			}
		}
	}
	union := len(gen) + len(ref) - matched
	if union == 0 {
		return 1
	}
	return float64(matched) / float64(union)
}

// StripLabels removes label comments ("# *", "# v in [...]") from raw
// reference YAML text, preserving all other formatting, so the cleaned
// text can serve as the target for text-level metrics and as prompt
// context.
func StripLabels(reference string) string {
	lines := strings.Split(reference, "\n")
	for i, ln := range lines {
		value, comment := yamlx.SplitTrailingComment(ln)
		if comment == "" {
			continue
		}
		l := ParseLabel(comment)
		if l.Kind != ExactLabel {
			// Re-assemble without the comment, preserving leading space.
			indent := ln[:len(ln)-len(strings.TrimLeft(ln, " "))]
			lines[i] = indent + strings.TrimRight(value, " ")
		}
	}
	return strings.Join(lines, "\n")
}
