// Package evalcluster implements the scalable evaluation cluster of
// §3.3 twice over:
//
//   - Simulate: a deterministic discrete-event model of N workers
//     draining the corpus's unit-test jobs behind a shared 100 Mbps uplink,
//     with or without the shared Docker image cache — the generator of
//     Figure 5's evaluation-time curves;
//   - Master/Worker: real components coordinating through a Redis-
//     compatible store over TCP, executing unit tests in the simulated
//     cluster. They power cmd/evalnode and the cluster-eval example.
package evalcluster

import (
	"sort"
	"time"

	"cloudeval/internal/dataset"
	"cloudeval/internal/engine"
	"cloudeval/internal/registry"
	"cloudeval/internal/unittest"
	"cloudeval/internal/yamlmatch"
)

// SimConfig parameterizes a Figure 5 run.
type SimConfig struct {
	Workers int
	// SharedCache enables the master's pull-through registry cache.
	SharedCache bool
	// WANMbps is the internet bandwidth shared by the whole cluster
	// (the paper provisions 100 Mbps).
	WANMbps float64
	// LANMbps is the intra-cluster bandwidth to the shared cache.
	LANMbps float64
	// SetupTime is the fixed per-job environment cost (cluster create,
	// apply, cleanup) on top of the script's own waits.
	SetupTime time.Duration
	// DispatchOverhead is the serialized master-side cost of assigning a
	// job and recording its result; it bounds scaling like any
	// coordinator.
	DispatchOverhead time.Duration
	// ImageScale discounts pull sizes for shared base layers between
	// images already present on a worker (1 = no sharing).
	ImageScale float64
}

// DefaultSimConfig mirrors the paper's testbed: 100 Mbps shared
// internet, 1 Gbps LAN, and a cluster-setup cost of tens of seconds.
func DefaultSimConfig(workers int, sharedCache bool) SimConfig {
	return SimConfig{
		Workers:          workers,
		SharedCache:      sharedCache,
		WANMbps:          100,
		LANMbps:          1000,
		SetupTime:        32 * time.Second,
		DispatchOverhead: 1200 * time.Millisecond,
		ImageScale:       0.6,
	}
}

// Job is one unit-test execution request in the simulation.
type Job struct {
	ProblemID string
	// TestTime is the virtual time the script itself consumes.
	TestTime time.Duration
	// Images are the container images the test environment pulls.
	Images []string
}

// JobsFromProblems derives the simulation workload from the corpus by
// measuring each problem's actual unit-test virtual time (running the
// reference answer) and extracting its image set.
func JobsFromProblems(problems []dataset.Problem) []Job {
	jobs := make([]Job, 0, len(problems))
	for _, p := range problems {
		res := unittest.Run(p, yamlmatch.StripLabels(p.ReferenceYAML))
		jobs = append(jobs, Job{
			ProblemID: p.ID,
			TestTime:  res.VirtualTime,
			Images:    registry.ImagesFor(p),
		})
	}
	return jobs
}

// JobsFromProblemsWith is JobsFromProblems with the reference-answer
// measurement runs scheduled on eng — and memoized there, so campaigns
// that later evaluate a correct answer (textually the clean reference)
// reuse these executions for free.
func JobsFromProblemsWith(eng *engine.Engine, problems []dataset.Problem) []Job {
	jobs := make([]Job, len(problems))
	eng.ForEach(len(problems), func(i int) {
		p := problems[i]
		res := eng.UnitTest(p, yamlmatch.StripLabels(p.ReferenceYAML))
		jobs[i] = Job{
			ProblemID: p.ID,
			TestTime:  res.VirtualTime,
			Images:    registry.ImagesFor(p),
		}
	})
	return jobs
}

// SimResult is one simulated evaluation campaign.
type SimResult struct {
	Workers     int
	SharedCache bool
	// Total is the campaign makespan in virtual time.
	Total time.Duration
	// WANTrafficMB is the internet traffic the campaign generated.
	WANTrafficMB float64
	CacheHits    int
	CacheMisses  int
}

// Simulate runs the discrete-event model: jobs dispatch FIFO to the
// earliest-available worker; each worker holds a local Docker cache, so
// it pulls any given image at most once; without the shared cache every
// first-touch pull crosses the WAN, with it only the cluster-wide first
// touch does.
func Simulate(jobs []Job, cfg SimConfig) SimResult {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	wan := registry.NewLink(cfg.WANMbps)
	lan := registry.NewLink(cfg.LANMbps)
	var puller registry.Puller
	var cache *registry.PullThroughCache
	if cfg.SharedCache {
		cache = registry.NewPullThroughCache(wan, lan)
		puller = cache
	} else {
		puller = &registry.DirectPuller{WAN: wan}
	}

	freeAt := make([]time.Duration, cfg.Workers)
	localCache := make([]map[string]bool, cfg.Workers)
	for i := range localCache {
		localCache[i] = make(map[string]bool)
	}
	if cfg.ImageScale <= 0 {
		cfg.ImageScale = 1
	}

	var makespan, masterBusy time.Duration
	for _, job := range jobs {
		// Earliest-available worker takes the next job.
		w := 0
		for i := 1; i < cfg.Workers; i++ {
			if freeAt[i] < freeAt[w] {
				w = i
			}
		}
		// The master serializes job dispatch and result bookkeeping.
		t := freeAt[w]
		if masterBusy > t {
			t = masterBusy
		}
		masterBusy = t + cfg.DispatchOverhead
		t = masterBusy
		for _, img := range job.Images {
			if localCache[w][img] {
				continue
			}
			size := registry.SizeMB(img)
			if len(localCache[w]) > 0 {
				// Later images share base layers already on the worker.
				size *= cfg.ImageScale
			}
			t = puller.PullBytes(img, size, t)
			localCache[w][img] = true
		}
		t += cfg.SetupTime + job.TestTime
		freeAt[w] = t
		if t > makespan {
			makespan = t
		}
	}
	res := SimResult{
		Workers:      cfg.Workers,
		SharedCache:  cfg.SharedCache,
		Total:        makespan,
		WANTrafficMB: wan.TotalMB(),
	}
	if cache != nil {
		res.CacheHits = cache.Hits
		res.CacheMisses = cache.Misses
	}
	return res
}

// Figure5 sweeps worker counts with and without the shared cache,
// producing the paper's Figure 5 series.
func Figure5(jobs []Job, workerCounts []int) []SimResult {
	var out []SimResult
	for _, cached := range []bool{false, true} {
		for _, w := range workerCounts {
			out = append(out, Simulate(jobs, DefaultSimConfig(w, cached)))
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].SharedCache != out[j].SharedCache {
			return !out[i].SharedCache
		}
		return out[i].Workers < out[j].Workers
	})
	return out
}
