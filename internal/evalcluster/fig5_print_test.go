package evalcluster

import (
	"cloudeval/internal/augment"
	"cloudeval/internal/dataset"
	"testing"
)

func TestPrintFigure5(t *testing.T) {
	jobs := JobsFromProblems(augment.ExpandCorpus(dataset.Generate()))
	for _, r := range Figure5(jobs, []int{1, 4, 16, 64}) {
		t.Logf("workers=%2d cache=%-5v total=%6.2fh wan=%8.0fMB", r.Workers, r.SharedCache, r.Total.Hours(), r.WANTrafficMB)
	}
}
