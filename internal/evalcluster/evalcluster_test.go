package evalcluster

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cloudeval/internal/dataset"
	"cloudeval/internal/miniredis"
	"cloudeval/internal/store"
	"cloudeval/internal/yamlmatch"
)

func TestSimulateScalingShape(t *testing.T) {
	jobs := JobsFromProblems(dataset.Generate())
	if len(jobs) != dataset.TotalOriginal {
		t.Fatalf("jobs = %d", len(jobs))
	}
	t1 := Simulate(jobs, DefaultSimConfig(1, false))
	t4 := Simulate(jobs, DefaultSimConfig(4, false))
	t16 := Simulate(jobs, DefaultSimConfig(16, false))
	t64 := Simulate(jobs, DefaultSimConfig(64, false))
	t64c := Simulate(jobs, DefaultSimConfig(64, true))
	t1c := Simulate(jobs, DefaultSimConfig(1, true))

	// Monotone speedup with workers.
	if !(t1.Total > t4.Total && t4.Total > t16.Total && t16.Total > t64.Total) {
		t.Errorf("scaling not monotone: %v %v %v %v", t1.Total, t4.Total, t16.Total, t64.Total)
	}
	// Single-machine evaluation takes hours of virtual time, like the
	// paper's 10.4 h.
	if t1.Total < 2*time.Hour || t1.Total > 24*time.Hour {
		t.Errorf("single-worker campaign = %v, expected hours", t1.Total)
	}
	// Parallel speedup at 64 workers is an order of magnitude but far
	// from perfectly linear (the paper reports 13x).
	speedup := float64(t1.Total) / float64(t64.Total)
	if speedup < 6 || speedup > 40 {
		t.Errorf("64-worker speedup = %.1fx, want order-of-magnitude", speedup)
	}
	// Shared caching helps meaningfully at 64 workers (paper: 1.6x)...
	cacheGain := float64(t64.Total) / float64(t64c.Total)
	if cacheGain < 1.15 || cacheGain > 4 {
		t.Errorf("cache gain at 64 workers = %.2fx, want >1.15x", cacheGain)
	}
	// ...but barely matters on one machine (paper: 10.4 vs 10.3 h).
	singleGain := float64(t1.Total) / float64(t1c.Total)
	if singleGain > 1.10 {
		t.Errorf("cache gain at 1 worker = %.2fx, should be marginal", singleGain)
	}
	// Caching cuts WAN traffic.
	if t64c.WANTrafficMB >= t64.WANTrafficMB {
		t.Errorf("cached WAN traffic %v >= uncached %v", t64c.WANTrafficMB, t64.WANTrafficMB)
	}
	if t64c.CacheHits == 0 {
		t.Error("cache recorded no hits")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	jobs := JobsFromProblems(dataset.Generate()[:60])
	a := Simulate(jobs, DefaultSimConfig(8, true))
	b := Simulate(jobs, DefaultSimConfig(8, true))
	if a != b {
		t.Errorf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestFigure5Sweep(t *testing.T) {
	jobs := JobsFromProblems(dataset.Generate()[:100])
	results := Figure5(jobs, []int{1, 4, 16, 64})
	if len(results) != 8 {
		t.Fatalf("results = %d, want 8", len(results))
	}
	// First half uncached ascending workers, second half cached.
	if results[0].SharedCache || !results[4].SharedCache {
		t.Errorf("ordering broken: %+v", results)
	}
}

// TestMasterWorkerOverTCP exercises the real coordination path: a
// miniredis server, one master, several workers, real sockets.
func TestMasterWorkerOverTCP(t *testing.T) {
	srv := miniredis.NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	problems := dataset.Generate()[:24]
	master, err := NewMaster(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	// Half the answers are correct (the reference), half empty.
	wantPass := map[string]bool{}
	for i, p := range problems {
		answer := ""
		if i%2 == 0 {
			answer = yamlmatch.StripLabels(p.ReferenceYAML)
		}
		wantPass[p.ID] = i%2 == 0
		if _, err := master.Submit(p.ID, answer); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		w, err := NewWorker(addr, fmt.Sprintf("worker-%d", i), problems)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer w.Close()
			if _, err := w.Run(300 * time.Millisecond); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}

	results, err := master.Collect(len(problems), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(results) != len(problems) {
		t.Fatalf("results = %d, want %d", len(results), len(problems))
	}
	workersSeen := map[string]bool{}
	for _, r := range results {
		if r.Passed != wantPass[r.ProblemID] {
			t.Errorf("%s: passed = %v, want %v (%s)", r.ProblemID, r.Passed, wantPass[r.ProblemID], r.Output)
		}
		workersSeen[r.Worker] = true
	}
	if len(workersSeen) < 2 {
		t.Errorf("only %d workers participated; expected parallel draining", len(workersSeen))
	}
	if n, _ := master.Pending(); n != 0 {
		t.Errorf("queue not drained: %d left", n)
	}
}

// TestWorkerConsultsStore: a fleet worker backed by a persistent store
// executes each distinct (problem, answer) once; repeated jobs — even
// after the worker restarts against a reopened store — are answered
// from disk with CacheHit set.
func TestWorkerConsultsStore(t *testing.T) {
	srv := miniredis.NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	path := filepath.Join(t.TempDir(), "worker.store")
	problems := dataset.Generate()[:4]
	answer := yamlmatch.StripLabels(problems[0].ReferenceYAML)

	master, err := NewMaster(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	runBatch := func(n int) []WireResult {
		t.Helper()
		st, err := store.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		w, err := NewWorker(addr, "store-worker", problems)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		w.UseStore(st)
		for i := 0; i < n; i++ {
			if _, err := master.Submit(problems[0].ID, answer); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := w.Run(300 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		results, err := master.Collect(n, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}

	first := runBatch(3)
	hits := 0
	for _, r := range first {
		if !r.Passed {
			t.Fatalf("reference answer failed: %s", r.Output)
		}
		if r.CacheHit {
			hits++
		}
	}
	if hits != 2 {
		t.Errorf("first batch: %d cache hits, want 2 (one execution)", hits)
	}

	// A restarted worker against the reopened store never executes.
	second := runBatch(2)
	for _, r := range second {
		if !r.Passed || !r.CacheHit {
			t.Errorf("restarted worker result = %+v, want a passing store hit", r)
		}
	}
}
