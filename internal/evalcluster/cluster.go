package evalcluster

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"cloudeval/internal/dataset"
	"cloudeval/internal/engine"
	"cloudeval/internal/miniredis"
	"cloudeval/internal/unittest"
)

// Queue and key names in the coordination store.
const (
	jobQueue    = "cloudeval:jobs"
	resultQueue = "cloudeval:results"
	jobPrefix   = "cloudeval:job:"
)

// WireJob is the JSON payload a master enqueues for workers — the
// engine's job type, so the distributed and in-process paths share one
// schema.
type WireJob = engine.Job

// WireResult is the JSON payload a worker reports back — the engine's
// result type.
type WireResult = engine.Result

// Master dispatches unit-test jobs through the store and collects
// results. It is safe for concurrent use; submissions serialize over
// one connection.
type Master struct {
	mu     sync.Mutex
	client *miniredis.Client
	nextID int
}

// NewMaster connects a master to the coordination store.
func NewMaster(addr string) (*Master, error) {
	cli, err := miniredis.Dial(addr)
	if err != nil {
		return nil, err
	}
	if err := cli.Ping(); err != nil {
		return nil, err
	}
	return &Master{client: cli}, nil
}

// Close releases the master's connection.
func (m *Master) Close() error { return m.client.Close() }

// Submit enqueues one answer for evaluation and returns the job id.
func (m *Master) Submit(problemID, answer string) (string, error) {
	m.mu.Lock()
	m.nextID++
	id := fmt.Sprintf("job-%d", m.nextID)
	m.mu.Unlock()
	return id, m.SubmitJob(engine.Job{ID: id, ProblemID: problemID, Answer: answer})
}

// SubmitJob enqueues a fully formed job (the caller owns ID
// uniqueness).
func (m *Master) SubmitJob(job engine.Job) error {
	payload, err := json.Marshal(job)
	if err != nil {
		return err
	}
	if err := m.client.HSet(jobPrefix+job.ID, "status", "queued"); err != nil {
		return err
	}
	return m.client.LPush(jobQueue, string(payload))
}

// Collect blocks for up to timeout gathering n results.
func (m *Master) Collect(n int, timeout time.Duration) ([]WireResult, error) {
	deadline := time.Now().Add(timeout)
	out := make([]WireResult, 0, n)
	for len(out) < n {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return out, fmt.Errorf("evalcluster: collected %d/%d results before timeout", len(out), n)
		}
		_, payload, ok, err := m.client.BRPop(remaining, resultQueue)
		if err != nil {
			return out, err
		}
		if !ok {
			return out, fmt.Errorf("evalcluster: collected %d/%d results before timeout", len(out), n)
		}
		var res WireResult
		if err := json.Unmarshal([]byte(payload), &res); err != nil {
			return out, fmt.Errorf("evalcluster: bad result payload: %w", err)
		}
		out = append(out, res)
	}
	return out, nil
}

// Pending reports queued jobs.
func (m *Master) Pending() (int, error) { return m.client.LLen(jobQueue) }

// Worker claims jobs, runs unit tests in a fresh simulated environment
// per job, and reports results.
type Worker struct {
	Name    string
	client  *miniredis.Client
	lookup  map[string]dataset.Problem
	store   engine.CacheStore
	stopped chan struct{}
}

// NewWorker connects a worker; problems supplies the unit-test scripts
// by problem ID (workers hold the dataset locally, as in the paper).
func NewWorker(addr, name string, problems []dataset.Problem) (*Worker, error) {
	cli, err := miniredis.Dial(addr)
	if err != nil {
		return nil, err
	}
	lookup := make(map[string]dataset.Problem, len(problems))
	for _, p := range problems {
		lookup[p.ID] = p
	}
	return &Worker{Name: name, client: cli, lookup: lookup, stopped: make(chan struct{})}, nil
}

// UseStore attaches a persistent evaluation store (store.Store): the
// worker consults it before executing a claimed job and records fresh
// executions back into it, so a fleet node restarted against a warm
// store answers repeated jobs from disk instead of the simulated
// cluster. Must be called before Run.
func (w *Worker) UseStore(s engine.CacheStore) { w.store = s }

// Close releases the worker's connection.
func (w *Worker) Close() error { return w.client.Close() }

// Stop makes Run return after its current job.
func (w *Worker) Stop() {
	select {
	case <-w.stopped:
	default:
		close(w.stopped)
	}
}

// Run processes jobs until Stop is called or the queue stays empty for
// idleTimeout. It returns the number of jobs processed.
func (w *Worker) Run(idleTimeout time.Duration) (int, error) {
	processed := 0
	for {
		select {
		case <-w.stopped:
			return processed, nil
		default:
		}
		_, payload, ok, err := w.client.BRPop(idleTimeout, jobQueue)
		if err != nil {
			return processed, err
		}
		if !ok {
			return processed, nil // idle: queue drained
		}
		var job WireJob
		if err := json.Unmarshal([]byte(payload), &job); err != nil {
			continue // poison message; skip
		}
		res := w.execute(job)
		data, err := json.Marshal(res)
		if err != nil {
			return processed, err
		}
		if err := w.client.HSet(jobPrefix+job.ID, "status", "done", "passed", fmt.Sprint(res.Passed)); err != nil {
			return processed, err
		}
		if err := w.client.LPush(resultQueue, string(data)); err != nil {
			return processed, err
		}
		processed++
	}
}

func (w *Worker) execute(job WireJob) WireResult {
	res := WireResult{ID: job.ID, ProblemID: job.ProblemID, Worker: w.Name}
	p, ok := w.lookup[job.ProblemID]
	if !ok {
		res.Output = "unknown problem " + job.ProblemID
		return res
	}
	var testDigest, answerDigest [sha256.Size]byte
	if w.store != nil {
		testDigest = sha256.Sum256([]byte(p.UnitTest))
		answerDigest = sha256.Sum256([]byte(job.Answer))
		if r, ok := w.store.Get(testDigest, answerDigest); ok {
			res.Passed = r.Passed
			res.VirtualSecs = r.VirtualTime.Seconds()
			res.CacheHit = true
			if !r.Passed {
				res.Output = tail(r.Output, 400)
			}
			return res
		}
	}
	r := unittest.Run(p, job.Answer)
	if w.store != nil {
		w.store.Put(testDigest, answerDigest, r)
	}
	res.Passed = r.Passed
	res.VirtualSecs = r.VirtualTime.Seconds()
	if !r.Passed {
		res.Output = tail(r.Output, 400)
	}
	return res
}

func tail(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[len(s)-n:]
}
