package evalcluster

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cloudeval/internal/dataset"
	"cloudeval/internal/engine"
	"cloudeval/internal/miniredis"
	"cloudeval/internal/unittest"
)

// ClusterExecutor drives engine jobs through the master/worker wire
// protocol: each RunUnitTest submits a job to the coordination store
// and blocks until a worker reports the matching result. It implements
// engine.Executor, so the same scheduler that runs the in-process pool
// can fan out over TCP; the engine keeps as many jobs in flight as it
// has scheduler workers.
type ClusterExecutor struct {
	master  *Master
	collect *miniredis.Client
	timeout time.Duration

	nextID atomic.Int64

	mu      sync.Mutex
	waiters map[string]chan engine.Result

	done chan struct{}
	wg   sync.WaitGroup
}

// NewClusterExecutor connects to the coordination store at addr. It
// uses one connection for submissions and a second for the result
// collector, so a blocked collect never stalls a submit. timeout bounds
// how long one job may wait for a worker (0 means a 2-minute default).
func NewClusterExecutor(addr string, timeout time.Duration) (*ClusterExecutor, error) {
	master, err := NewMaster(addr)
	if err != nil {
		return nil, err
	}
	collect, err := miniredis.Dial(addr)
	if err != nil {
		master.Close()
		return nil, err
	}
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	e := &ClusterExecutor{
		master:  master,
		collect: collect,
		timeout: timeout,
		waiters: make(map[string]chan engine.Result),
		done:    make(chan struct{}),
	}
	e.wg.Add(1)
	go e.collector()
	return e, nil
}

// Name implements engine.Executor.
func (e *ClusterExecutor) Name() string { return "cluster" }

// RunUnitTest implements engine.Executor: the unit test executes on
// whichever cluster worker claims the job. Problem bodies stay with the
// workers (as in the paper); only the ID and answer cross the wire.
// Missing workers or timeouts surface through the result's Err field.
func (e *ClusterExecutor) RunUnitTest(p dataset.Problem, answer string) unittest.Result {
	id := fmt.Sprintf("xjob-%d", e.nextID.Add(1))
	ch := make(chan engine.Result, 1)
	e.mu.Lock()
	e.waiters[id] = ch
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.waiters, id)
		e.mu.Unlock()
	}()

	if err := e.master.SubmitJob(engine.Job{ID: id, ProblemID: p.ID, Answer: answer}); err != nil {
		return unittest.Result{Err: fmt.Errorf("evalcluster: submit: %w", err)}
	}
	select {
	case res := <-ch:
		return unittest.Result{
			Passed:      res.Passed,
			Output:      res.Output,
			VirtualTime: time.Duration(res.VirtualSecs * float64(time.Second)),
		}
	case <-time.After(e.timeout):
		return unittest.Result{Err: fmt.Errorf("evalcluster: no result for %s within %v", id, e.timeout)}
	case <-e.done:
		return unittest.Result{Err: fmt.Errorf("evalcluster: executor closed")}
	}
}

// collector drains the result queue and routes each result to the
// goroutine waiting on its job ID.
func (e *ClusterExecutor) collector() {
	defer e.wg.Done()
	for {
		select {
		case <-e.done:
			return
		default:
		}
		_, payload, ok, err := e.collect.BRPop(500*time.Millisecond, resultQueue)
		if err != nil {
			return // connection gone; waiters time out
		}
		if !ok {
			continue
		}
		var res engine.Result
		if err := json.Unmarshal([]byte(payload), &res); err != nil {
			continue
		}
		e.mu.Lock()
		ch := e.waiters[res.ID]
		e.mu.Unlock()
		if ch != nil {
			ch <- res
		}
	}
}

// Close implements engine.Executor, releasing both connections and
// stopping the collector.
func (e *ClusterExecutor) Close() error {
	select {
	case <-e.done:
	default:
		close(e.done)
	}
	err := e.collect.Close()
	e.wg.Wait()
	if merr := e.master.Close(); err == nil {
		err = merr
	}
	return err
}
