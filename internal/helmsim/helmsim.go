// Package helmsim binds a simulated `helm` CLI to the kubesim cluster:
// charts are single-file manifest bundles (the documents a real chart's
// templates would render), `helm template` renders and validates them,
// and `helm install` applies them into the same simulated cluster the
// kubectl builtin reads — so Helm-family unit tests can mix helm verbs
// with kubectl assertions, exactly like the Kubernetes families do.
//
// The environment wraps k8scmd.Env, inheriting kubectl, curl, minikube
// and the rest of the tool set, and adds release bookkeeping on top.
package helmsim

import (
	"fmt"
	"strings"
	"time"

	"cloudeval/internal/k8scmd"
	"cloudeval/internal/kubesim"
	"cloudeval/internal/shell"
	"cloudeval/internal/yamlx"
)

// release records one installed chart.
type release struct {
	Name       string
	Namespace  string
	Revision   int
	DeployedAt time.Time
	Applied    []kubesim.ApplyResult
}

// Env is the execution environment for one Helm-family unit test: the
// full Kubernetes tool environment plus the helm builtin and its
// release table. It satisfies scenario.Env.
type Env struct {
	*k8scmd.Env
	releases map[string]*release // ns/name
	order    []string            // install order of release keys
}

// NewEnv builds a fresh environment with helm registered alongside the
// Kubernetes tools.
func NewEnv() *Env {
	e := &Env{Env: k8scmd.NewEnv(), releases: make(map[string]*release)}
	e.Shell.Builtins["helm"] = e.helm
	return e
}

// Reset wipes the environment — cluster, shell and release table — for
// pool recycling.
func (e *Env) Reset() {
	e.Env.Reset()
	clear(e.releases)
	e.order = e.order[:0]
}

func relKey(ns, name string) string { return ns + "/" + name }

// helm implements template, install, upgrade, ls/list, status and
// uninstall against the simulated cluster.
func (e *Env) helm(in *shell.Interp, io *shell.IO, args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(io.Err, "helm: missing command")
		return 1
	}
	verb := args[0]
	var positional []string
	ns := "default"
	file := ""
	createNS := false
	for i := 1; i < len(args); i++ {
		a := args[i]
		switch {
		case (a == "-n" || a == "--namespace") && i+1 < len(args):
			ns = args[i+1]
			i++
		case (a == "-f" || a == "--values") && i+1 < len(args):
			file = args[i+1]
			i++
		case a == "--create-namespace":
			createNS = true
		case strings.HasPrefix(a, "-"):
			// Accepted and ignored (e.g. --wait).
		default:
			positional = append(positional, a)
		}
	}

	switch verb {
	case "version":
		fmt.Fprintln(io.Out, `version.BuildInfo{Version:"v3.14.0 (helmsim)"}`)
		return 0
	case "template", "install", "upgrade":
		if len(positional) == 0 {
			fmt.Fprintf(io.Err, "Error: %s requires a release name\n", verb)
			return 1
		}
		name := positional[0]
		docs, code := e.renderChart(in, io, file)
		if code != 0 {
			return code
		}
		if verb == "template" {
			for _, d := range docs {
				kind := strings.ToLower(d.Get("kind").ScalarString())
				fmt.Fprintf(io.Out, "---\n# Source: %s/templates/%s.yaml\n", name, kind)
				io.Out.Write(yamlx.Marshal(d))
			}
			return 0
		}
		return e.install(io, verb, name, ns, createNS, docs)
	case "ls", "list":
		fmt.Fprintf(io.Out, "%-16s %-12s %-9s %-10s %s\n", "NAME", "NAMESPACE", "REVISION", "STATUS", "CHART")
		for _, key := range e.order {
			r := e.releases[key]
			if r.Namespace != ns && !hasAllNamespaces(args) {
				continue
			}
			fmt.Fprintf(io.Out, "%-16s %-12s %-9d %-10s %s-0.1.0\n", r.Name, r.Namespace, r.Revision, "deployed", r.Name)
		}
		return 0
	case "status":
		if len(positional) == 0 {
			fmt.Fprintln(io.Err, "Error: status requires a release name")
			return 1
		}
		r, ok := e.releases[relKey(ns, positional[0])]
		if !ok {
			fmt.Fprintf(io.Err, "Error: release: not found\n")
			return 1
		}
		fmt.Fprintf(io.Out, "NAME: %s\nLAST DEPLOYED: %s\nNAMESPACE: %s\nSTATUS: deployed\nREVISION: %d\nRESOURCES: %d\n",
			r.Name, r.DeployedAt.Format("Mon Jan  2 15:04:05 2006"), r.Namespace, r.Revision, len(r.Applied))
		return 0
	case "uninstall", "delete":
		if len(positional) == 0 {
			fmt.Fprintln(io.Err, "Error: uninstall requires a release name")
			return 1
		}
		key := relKey(ns, positional[0])
		r, ok := e.releases[key]
		if !ok {
			fmt.Fprintf(io.Err, "Error: uninstall: Release not loaded: %s: release: not found\n", positional[0])
			return 1
		}
		for _, a := range r.Applied {
			e.Cluster.Delete(a.Kind, a.Namespace, a.Name)
		}
		delete(e.releases, key)
		for i, k := range e.order {
			if k == key {
				e.order = append(e.order[:i], e.order[i+1:]...)
				break
			}
		}
		fmt.Fprintf(io.Out, "release \"%s\" uninstalled\n", positional[0])
		return 0
	default:
		fmt.Fprintf(io.Err, "Error: unknown command %q for \"helm\"\n", verb)
		return 1
	}
}

func hasAllNamespaces(args []string) bool {
	for _, a := range args {
		if a == "-A" || a == "--all-namespaces" {
			return true
		}
	}
	return false
}

// renderChart reads and validates the chart bundle: every document must
// be a well-formed manifest (apiVersion, kind, metadata.name), the same
// contract `helm template` enforces on rendered output.
func (e *Env) renderChart(in *shell.Interp, io *shell.IO, file string) ([]*yamlx.Node, int) {
	if file == "" {
		fmt.Fprintln(io.Err, "Error: chart bundle required: pass -f <file>")
		return nil, 1
	}
	src, ok := in.FS[file]
	if !ok {
		fmt.Fprintf(io.Err, "Error: open %s: no such file or directory\n", file)
		return nil, 1
	}
	docs, err := yamlx.ParseAllCached([]byte(src))
	if err != nil {
		fmt.Fprintf(io.Err, "Error: YAML parse error on %s: %v\n", file, err)
		return nil, 1
	}
	var out []*yamlx.Node
	for _, d := range docs {
		if d == nil || d.Kind == yamlx.NullKind {
			continue
		}
		if err := kubesim.ValidateManifest(d); err != nil {
			fmt.Fprintf(io.Err, "Error: unable to build kubernetes objects from release manifest: %v\n", err)
			return nil, 1
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		fmt.Fprintf(io.Err, "Error: release manifest contains no resources\n")
		return nil, 1
	}
	return out, 0
}

// install applies rendered documents into the cluster and records the
// release. A failed apply rolls back the documents applied so far and
// records nothing, mirroring helm's atomic failure mode — the release
// table and install order are only touched once every document landed.
func (e *Env) install(io *shell.IO, verb, name, ns string, createNS bool, docs []*yamlx.Node) int {
	if createNS && !e.Cluster.HasNamespace(ns) {
		e.Cluster.CreateNamespace(ns)
	}
	r := &release{Name: name, Namespace: ns, Revision: 1, DeployedAt: e.Cluster.Now()}
	key := relKey(ns, name)
	prev, existed := e.releases[key]
	if existed {
		r.Revision = prev.Revision + 1
	}
	for _, d := range docs {
		res, err := e.Cluster.Apply(d.Clone(), ns)
		if err != nil {
			if !existed {
				// Fresh install: roll back what landed so a failed
				// release leaves no trace. A failed upgrade must NOT
				// delete — the applied objects are the live release's
				// own resources; like helm without --atomic, the
				// release stays at its previous revision.
				for _, a := range r.Applied {
					e.Cluster.Delete(a.Kind, a.Namespace, a.Name)
				}
			}
			fmt.Fprintf(io.Err, "Error: %s failed: %v\n", verb, err)
			return 1
		}
		r.Applied = append(r.Applied, res)
	}
	if !existed {
		e.order = append(e.order, key)
	}
	e.releases[key] = r
	fmt.Fprintf(io.Out, "NAME: %s\nNAMESPACE: %s\nSTATUS: deployed\nREVISION: %d\n", name, ns, r.Revision)
	return 0
}
