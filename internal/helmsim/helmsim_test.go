package helmsim

import (
	"strings"
	"testing"
)

const sampleChart = `apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: 2
  selector:
    matchLabels:
      app: web
  template:
    metadata:
      labels:
        app: web
    spec:
      containers:
      - name: web
        image: nginx:1.25
        ports:
        - containerPort: 80
---
apiVersion: v1
kind: Service
metadata:
  name: web
spec:
  selector:
    app: web
  ports:
  - port: 80
    targetPort: 80
`

func run(t *testing.T, e *Env, script string) (string, int) {
	t.Helper()
	res, err := e.Shell.Run(script)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Stdout + res.Stderr, res.ExitCode
}

func TestTemplateRendersAndValidates(t *testing.T) {
	e := NewEnv()
	e.Shell.FS["labeled_code.yaml"] = sampleChart
	out, code := run(t, e, "helm template web -f labeled_code.yaml")
	if code != 0 {
		t.Fatalf("template failed:\n%s", out)
	}
	for _, want := range []string{"# Source: web/templates/deployment.yaml", "kind: Deployment", "kind: Service"} {
		if !strings.Contains(out, want) {
			t.Errorf("template output missing %q:\n%s", want, out)
		}
	}
	// Template must not install anything.
	if _, code := run(t, e, "kubectl get deployment web"); code == 0 {
		t.Error("helm template applied resources")
	}
}

func TestTemplateRejectsBrokenManifests(t *testing.T) {
	e := NewEnv()
	e.Shell.FS["labeled_code.yaml"] = "kind: Deployment\nmetadata:\n  name: x\n" // no apiVersion
	if out, code := run(t, e, "helm template web -f labeled_code.yaml"); code == 0 {
		t.Fatalf("template accepted manifest without apiVersion:\n%s", out)
	}
	e.Shell.FS["labeled_code.yaml"] = "not: [valid"
	if _, code := run(t, e, "helm template web -f labeled_code.yaml"); code == 0 {
		t.Fatal("template accepted unparsable YAML")
	}
}

func TestInstallStatusUninstall(t *testing.T) {
	e := NewEnv()
	e.Shell.FS["labeled_code.yaml"] = sampleChart
	out, code := run(t, e, "helm install web -f labeled_code.yaml")
	if code != 0 {
		t.Fatalf("install failed:\n%s", out)
	}
	out, _ = run(t, e, "helm status web")
	for _, want := range []string{"STATUS: deployed", "REVISION: 1", "RESOURCES: 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("status missing %q:\n%s", want, out)
		}
	}
	// Released resources are visible to kubectl in the same cluster.
	out, code = run(t, e, "kubectl get deployment web -o=jsonpath='{.spec.replicas}'")
	if code != 0 || !strings.Contains(out, "2") {
		t.Errorf("kubectl does not see the release: %q (exit %d)", out, code)
	}
	out, _ = run(t, e, "helm ls")
	if !strings.Contains(out, "web") || !strings.Contains(out, "deployed") {
		t.Errorf("ls missing release:\n%s", out)
	}
	// Uninstall removes the released objects.
	run(t, e, "helm uninstall web")
	if _, code := run(t, e, "kubectl get deployment web"); code == 0 {
		t.Error("deployment survived uninstall")
	}
	if _, code := run(t, e, "helm status web"); code == 0 {
		t.Error("status of uninstalled release succeeded")
	}
}

func TestInstallIntoCreatedNamespace(t *testing.T) {
	e := NewEnv()
	e.Shell.FS["labeled_code.yaml"] = sampleChart
	out, code := run(t, e, "helm install web -f labeled_code.yaml -n apps --create-namespace")
	if code != 0 {
		t.Fatalf("install failed:\n%s", out)
	}
	out, code = run(t, e, "kubectl get deployment web -n apps -o=jsonpath='{.spec.template.spec.containers[0].image}'")
	if code != 0 || !strings.Contains(out, "nginx:1.25") {
		t.Errorf("release not in namespace: %q", out)
	}
	out, _ = run(t, e, "helm ls -n apps")
	if !strings.Contains(out, "web") {
		t.Errorf("ls -n apps missing release:\n%s", out)
	}
	out, _ = run(t, e, "helm ls")
	if strings.Contains(out, "web") {
		t.Errorf("default-namespace ls shows foreign release:\n%s", out)
	}
}

// TestFailedInstallLeavesNoTrace: a release whose apply fails mid-way
// (here: target namespace missing) must roll back what it applied,
// record nothing, and leave `helm ls` working — a dangling order entry
// used to panic the process on the next listing.
func TestFailedInstallLeavesNoTrace(t *testing.T) {
	e := NewEnv()
	e.Shell.FS["labeled_code.yaml"] = sampleChart
	out, code := run(t, e, "helm install web -f labeled_code.yaml -n missing")
	if code == 0 {
		t.Fatalf("install into a missing namespace succeeded:\n%s", out)
	}
	out, code = run(t, e, "helm ls -n missing")
	if code != 0 {
		t.Fatalf("helm ls after failed install broke (exit %d):\n%s", code, out)
	}
	if strings.Contains(out, "web") {
		t.Errorf("failed install recorded a release:\n%s", out)
	}
	if _, code := run(t, e, "helm status web -n missing"); code == 0 {
		t.Error("failed install has a status")
	}
	// Nothing stranded in the cluster either.
	if _, code := run(t, e, "kubectl get deployment web -n missing"); code == 0 {
		t.Error("failed install stranded objects in the cluster")
	}
}

func TestUpgradeBumpsRevision(t *testing.T) {
	e := NewEnv()
	e.Shell.FS["labeled_code.yaml"] = sampleChart
	run(t, e, "helm install web -f labeled_code.yaml")
	run(t, e, "helm upgrade web -f labeled_code.yaml")
	out, _ := run(t, e, "helm status web")
	if !strings.Contains(out, "REVISION: 2") {
		t.Errorf("upgrade did not bump revision:\n%s", out)
	}
}

// TestFailedUpgradeKeepsLiveRelease: a failed upgrade must not delete
// the live release's objects — unlike a failed fresh install, there is
// a running revision to preserve.
func TestFailedUpgradeKeepsLiveRelease(t *testing.T) {
	e := NewEnv()
	e.Shell.FS["labeled_code.yaml"] = sampleChart
	run(t, e, "helm install web -f labeled_code.yaml")
	// An upgrade whose chart targets a missing namespace fails.
	e.Shell.FS["bad.yaml"] = strings.Replace(sampleChart, "metadata:\n  name: web\nspec:\n  replicas: 2",
		"metadata:\n  name: web\n  namespace: missing\nspec:\n  replicas: 2", 1)
	if out, code := run(t, e, "helm upgrade web -f bad.yaml"); code == 0 {
		t.Fatalf("upgrade into a missing namespace succeeded:\n%s", out)
	}
	if _, code := run(t, e, "kubectl get deployment web"); code != 0 {
		t.Error("failed upgrade deleted the live release's deployment")
	}
	out, _ := run(t, e, "helm status web")
	if !strings.Contains(out, "REVISION: 1") {
		t.Errorf("failed upgrade changed the release revision:\n%s", out)
	}
}

func TestResetClearsReleases(t *testing.T) {
	e := NewEnv()
	e.Shell.FS["labeled_code.yaml"] = sampleChart
	run(t, e, "helm install web -f labeled_code.yaml")
	e.Reset()
	if _, code := run(t, e, "helm status web"); code == 0 {
		t.Error("release survived reset")
	}
	if _, code := run(t, e, "kubectl get deployment web"); code == 0 {
		t.Error("cluster objects survived reset")
	}
}
