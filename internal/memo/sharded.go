package memo

import (
	"errors"
	"runtime"
	"sync"
)

// Sharded is a sharded singleflight cache for expensive, fallible
// computations: unit-test executions and provider generations. Keys
// hash into GOMAXPROCS-scaled shards, each with its own mutex and map,
// so concurrent misses and hits on different keys never serialize on
// one lock the way the pre-shard engine and dispatcher caches did.
//
// Per-key in-flight entries give the singleflight contract: concurrent
// calls with the same key collapse into one fn call; laggards park on
// the winner's entry and share its result. A fn error is handed to
// every parked waiter but never cached — the entry is removed, so the
// next call recomputes. That is the engine's and dispatcher's shared
// requirement: a transient executor or API failure must not be frozen
// into the cache.
//
// The zero value is not usable; construct with NewSharded.
type Sharded[K comparable, V any] struct {
	shards []paddedShard[K, V]
	mask   uint32
	hash   func(K) uint32
}

type flight[V any] struct {
	done chan struct{}
	v    V
	err  error
}

type shardMap[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*flight[V]
}

// paddedShard keeps adjacent shards on distinct cache lines so a hot
// shard's lock traffic does not false-share with its neighbors. The
// embedded shard is 16 bytes on 64-bit (mutex + map header); the pad
// rounds it up to a 64-byte line.
type paddedShard[K comparable, V any] struct {
	shardMap[K, V]
	_ [48]byte
}

// errPanicked is handed to waiters parked on a computation whose fn
// panicked; the panicking caller itself propagates the panic.
var errPanicked = errors.New("memo: in-flight computation panicked")

// NewSharded builds a sharded singleflight cache keyed by hash. The
// shard count is the smallest power of two at least four times
// GOMAXPROCS (minimum 8, capped at 512), fixed at construction.
func NewSharded[K comparable, V any](hash func(K) uint32) *Sharded[K, V] {
	n := 1
	for n < 4*runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	if n < 8 {
		n = 8
	}
	if n > 512 {
		n = 512
	}
	s := &Sharded[K, V]{
		shards: make([]paddedShard[K, V], n),
		mask:   uint32(n - 1),
		hash:   hash,
	}
	for i := range s.shards {
		s.shards[i].m = make(map[K]*flight[V])
	}
	return s
}

// Do returns the cached value for key, computing it via fn on a miss.
// hit reports whether this call was served by an existing entry —
// either completed or in flight (parked on another caller's
// computation) — as opposed to running fn itself. When fn returns an
// error, the entry is removed before waiters are released: the error
// is shared with every parked caller, but the next Do recomputes.
func (s *Sharded[K, V]) Do(key K, fn func() (V, error)) (v V, err error, hit bool) {
	sh := &s.shards[s.hash(key)&s.mask].shardMap
	sh.mu.Lock()
	if fl, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		<-fl.done
		return fl.v, fl.err, true
	}
	fl := &flight[V]{done: make(chan struct{})}
	sh.m[key] = fl
	sh.mu.Unlock()

	committed := false
	defer func() {
		if !committed {
			// fn panicked: behave like an error — drop the entry so
			// future calls retry, and unpark waiters with an error.
			fl.err = errPanicked
			sh.mu.Lock()
			delete(sh.m, key)
			sh.mu.Unlock()
			close(fl.done)
		}
	}()
	fl.v, fl.err = fn()
	committed = true
	if fl.err != nil {
		sh.mu.Lock()
		delete(sh.m, key)
		sh.mu.Unlock()
	}
	close(fl.done)
	return fl.v, fl.err, false
}

// Len reports the number of entries across all shards, in-flight
// entries included.
func (s *Sharded[K, V]) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i].shardMap
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Shards reports the shard count (a power of two).
func (s *Sharded[K, V]) Shards() int { return len(s.shards) }
