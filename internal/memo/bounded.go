package memo

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Bounded is a byte-budgeted sharded LRU cache: the hot tier in front
// of an out-of-core structure (the persistent store's on-demand frame
// reads). Where Sharded grows without limit — correct for indexes
// whose size is bounded by the corpus — Bounded holds resident memory
// under a fixed byte budget regardless of how much passes through it:
// every entry carries a caller-supplied cost, and inserting past the
// budget evicts least-recently-used entries until the new one fits.
//
// The budget is divided evenly across the shards, so eviction never
// takes a global lock: a hot key in one shard cannot pin memory
// another shard needs, and concurrent Gets on different shards never
// serialize. An entry costlier than a whole shard's budget is not
// cached at all — admitting it would evict the entire shard to hold
// one element the next eviction removes anyway.
//
// The zero value is not usable; construct with NewBounded.
type Bounded[K comparable, V any] struct {
	shards []boundedShard[K, V]
	mask   uint32
	hash   func(K) uint32
	// perShard is the byte budget each shard enforces independently.
	perShard int64
	capacity int64
	hits     atomic.Int64
	misses   atomic.Int64
}

// bnode is one cache entry threaded on its shard's LRU list.
type bnode[K comparable, V any] struct {
	key        K
	v          V
	cost       int64
	prev, next *bnode[K, V]
}

type boundedShard[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*bnode[K, V]
	// head is the most recently used entry, tail the eviction victim.
	head, tail *bnode[K, V]
	bytes      int64
	_          [24]byte // keep neighboring shards off one cache line
}

// NewBounded builds a bounded LRU cache keyed by hash, holding at most
// capBytes of entry cost. The shard count matches NewSharded's policy
// (power of two scaled to GOMAXPROCS, in [8, 512]); capBytes splits
// evenly across shards. A capBytes below the shard count still grants
// each shard one byte, degenerating to a cache that admits nothing —
// legal, and useful for forcing the uncached path in benchmarks.
func NewBounded[K comparable, V any](hash func(K) uint32, capBytes int64) *Bounded[K, V] {
	n := 1
	for n < 4*runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	if n < 8 {
		n = 8
	}
	if n > 512 {
		n = 512
	}
	per := capBytes / int64(n)
	if per < 1 {
		per = 1
	}
	b := &Bounded[K, V]{
		shards:   make([]boundedShard[K, V], n),
		mask:     uint32(n - 1),
		hash:     hash,
		perShard: per,
		capacity: per * int64(n),
	}
	for i := range b.shards {
		b.shards[i].m = make(map[K]*bnode[K, V])
	}
	return b
}

// Get returns the cached value for key, marking it most recently used.
func (b *Bounded[K, V]) Get(key K) (V, bool) {
	sh := &b.shards[b.hash(key)&b.mask]
	sh.mu.Lock()
	nd, ok := sh.m[key]
	if !ok {
		sh.mu.Unlock()
		b.misses.Add(1)
		var zero V
		return zero, false
	}
	sh.moveToFront(nd)
	v := nd.v
	sh.mu.Unlock()
	b.hits.Add(1)
	return v, true
}

// Add inserts (or refreshes) key with the given byte cost, evicting
// LRU entries until the shard is back under budget. Entries costlier
// than a shard's whole budget are silently not cached.
func (b *Bounded[K, V]) Add(key K, v V, cost int64) {
	if cost < 1 {
		cost = 1
	}
	if cost > b.perShard {
		return
	}
	sh := &b.shards[b.hash(key)&b.mask]
	sh.mu.Lock()
	if nd, ok := sh.m[key]; ok {
		sh.bytes += cost - nd.cost
		nd.v, nd.cost = v, cost
		sh.moveToFront(nd)
	} else {
		nd := &bnode[K, V]{key: key, v: v, cost: cost}
		sh.m[key] = nd
		sh.pushFront(nd)
		sh.bytes += cost
	}
	for sh.bytes > b.perShard && sh.tail != nil {
		victim := sh.tail
		sh.unlink(victim)
		delete(sh.m, victim.key)
		sh.bytes -= victim.cost
	}
	sh.mu.Unlock()
}

func (sh *boundedShard[K, V]) pushFront(nd *bnode[K, V]) {
	nd.prev = nil
	nd.next = sh.head
	if sh.head != nil {
		sh.head.prev = nd
	}
	sh.head = nd
	if sh.tail == nil {
		sh.tail = nd
	}
}

func (sh *boundedShard[K, V]) unlink(nd *bnode[K, V]) {
	if nd.prev != nil {
		nd.prev.next = nd.next
	} else {
		sh.head = nd.next
	}
	if nd.next != nil {
		nd.next.prev = nd.prev
	} else {
		sh.tail = nd.prev
	}
	nd.prev, nd.next = nil, nil
}

func (sh *boundedShard[K, V]) moveToFront(nd *bnode[K, V]) {
	if sh.head == nd {
		return
	}
	sh.unlink(nd)
	sh.pushFront(nd)
}

// BoundedStats is a Bounded cache's observable state.
type BoundedStats struct {
	Capacity int64 // total byte budget across shards
	Bytes    int64 // current resident entry cost
	Entries  int
	Hits     int64
	Misses   int64
}

// Stats snapshots the cache counters. Per-shard consistent, not
// cross-shard atomic — a monitoring surface.
func (b *Bounded[K, V]) Stats() BoundedStats {
	st := BoundedStats{
		Capacity: b.capacity,
		Hits:     b.hits.Load(),
		Misses:   b.misses.Load(),
	}
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.Lock()
		st.Bytes += sh.bytes
		st.Entries += len(sh.m)
		sh.mu.Unlock()
	}
	return st
}

// Bytes reports the current resident entry cost across all shards.
func (b *Bounded[K, V]) Bytes() int64 {
	var n int64
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.Lock()
		n += sh.bytes
		sh.mu.Unlock()
	}
	return n
}

// Len reports the entry count across all shards.
func (b *Bounded[K, V]) Len() int {
	n := 0
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Capacity reports the total byte budget.
func (b *Bounded[K, V]) Capacity() int64 { return b.capacity }
